/**
 * @file
 * A small statistics package in the spirit of gem5's: named scalar
 * counters, averages, and fixed-bucket distributions, grouped in a
 * registry that can render a human-readable report. Simulation
 * objects register their stats against a StatGroup; benches and
 * examples query them by name.
 */

#ifndef PRI_COMMON_STATS_HH
#define PRI_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pri
{

/** A named monotonically updated scalar statistic. */
class StatScalar
{
  public:
    StatScalar() = default;

    StatScalar &operator++() { val += 1.0; return *this; }
    StatScalar &operator+=(double x) { val += x; return *this; }
    StatScalar &operator-=(double x) { val -= x; return *this; }
    void set(double x) { val = x; }
    double value() const { return val; }
    void reset() { val = 0.0; }

  private:
    double val = 0.0;
};

/** Accumulates samples; reports count / sum / mean / min / max. */
class StatAverage
{
  public:
    /** Record one sample. */
    void
    sample(double x)
    {
        cnt += 1;
        sum += x;
        if (cnt == 1 || x < mn)
            mn = x;
        if (cnt == 1 || x > mx)
            mx = x;
    }

    uint64_t count() const { return cnt; }
    double total() const { return sum; }
    double mean() const { return cnt ? sum / cnt : 0.0; }
    double min() const { return mn; }
    double max() const { return mx; }

    void
    reset()
    {
        cnt = 0;
        sum = mn = mx = 0.0;
    }

  private:
    uint64_t cnt = 0;
    double sum = 0.0;
    double mn = 0.0;
    double mx = 0.0;
};

/**
 * Histogram over integer buckets [0, size); samples beyond the last
 * bucket are clamped into it. Used for operand-significance CDFs and
 * lifetime distributions.
 */
class StatDistribution
{
  public:
    explicit StatDistribution(size_t size = 0) : buckets(size, 0) {}

    /** Resize and clear. */
    void
    init(size_t size)
    {
        buckets.assign(size, 0);
        samples = 0;
    }

    /** Record a sample at integer position @p x (clamped). */
    void
    sample(uint64_t x)
    {
        if (buckets.empty())
            return;
        const size_t i =
            x >= buckets.size() ? buckets.size() - 1
                                : static_cast<size_t>(x);
        ++buckets[i];
        ++samples;
    }

    uint64_t count() const { return samples; }
    size_t size() const { return buckets.size(); }
    uint64_t bucket(size_t i) const { return buckets.at(i); }

    /** Fraction of samples at positions <= i (cumulative). */
    double
    cdfAt(size_t i) const
    {
        if (samples == 0)
            return 0.0;
        uint64_t acc = 0;
        for (size_t k = 0; k <= i && k < buckets.size(); ++k)
            acc += buckets[k];
        return static_cast<double>(acc) / samples;
    }

    /** Mean bucket position of all samples. */
    double
    mean() const
    {
        if (samples == 0)
            return 0.0;
        double acc = 0.0;
        for (size_t k = 0; k < buckets.size(); ++k)
            acc += static_cast<double>(k) * buckets[k];
        return acc / samples;
    }

    void
    reset()
    {
        buckets.assign(buckets.size(), 0);
        samples = 0;
    }

  private:
    std::vector<uint64_t> buckets;
    uint64_t samples = 0;
};

/**
 * A registry of named stats owned by one simulated component.
 * Names are dotted paths ("core.commit.insts").
 */
class StatGroup
{
  public:
    /** Create or fetch a scalar stat. */
    StatScalar &scalar(const std::string &name) { return scalars[name]; }
    /** Create or fetch an average stat. */
    StatAverage &average(const std::string &name) { return avgs[name]; }

    /**
     * Register a brand-new scalar, panicking if @p name already
     * exists. Components intern their hot-path counters through
     * this at construction time and keep the returned reference —
     * updates then cost one add, never a map lookup. References
     * stay valid for the StatGroup's lifetime (node-based map).
     */
    StatScalar &registerScalar(const std::string &name);
    /** Register a brand-new average; panics on duplicates. */
    StatAverage &registerAverage(const std::string &name);
    /** Create or fetch a distribution stat. */
    StatDistribution &
    distribution(const std::string &name)
    {
        return dists[name];
    }

    /** Read-only lookup; returns 0 for unknown names. */
    double scalarValue(const std::string &name) const;

    /** Render a sorted "name value" report. */
    std::string report(const std::string &prefix = "") const;

    /** Zero every registered stat. */
    void resetAll();

    const std::map<std::string, StatScalar> &
    allScalars() const
    {
        return scalars;
    }
    const std::map<std::string, StatAverage> &
    allAverages() const
    {
        return avgs;
    }
    const std::map<std::string, StatDistribution> &
    allDistributions() const
    {
        return dists;
    }

  private:
    std::map<std::string, StatScalar> scalars;
    std::map<std::string, StatAverage> avgs;
    std::map<std::string, StatDistribution> dists;
};

} // namespace pri

#endif // PRI_COMMON_STATS_HH
