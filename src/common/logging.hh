/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for simulator bugs
 * (conditions that can never legally occur), fatal() is for user
 * errors (bad configuration), warn()/inform() report status without
 * stopping the simulation.
 */

#ifndef PRI_COMMON_LOGGING_HH
#define PRI_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <source_location>
#include <string>
#include <string_view>

#include "common/strfmt.hh"

namespace pri
{

/** Severity used by the message sinks. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail
{

/** Emit one formatted diagnostic line to stderr. */
void logMessage(LogLevel level, std::string_view msg,
                const std::source_location &loc);

[[noreturn]] void panicStr(const std::string &msg,
                           const std::source_location &loc);
[[noreturn]] void fatalStr(const std::string &msg,
                           const std::source_location &loc);

} // namespace detail

/** Arguments bundled with the call site's source location. */
struct FmtWithLoc
{
    std::string_view fmt;
    std::source_location loc;

    // Implicit so callers can pass plain string literals.
    FmtWithLoc(const char *f, std::source_location l =
                                  std::source_location::current())
        : fmt(f), loc(l)
    {
    }
};

/**
 * Report a condition that indicates a simulator bug and abort.
 * Never returns.
 */
template <typename... Args>
[[noreturn]] void
panic(FmtWithLoc fmt, Args &&...args)
{
    detail::panicStr(fmtStr(fmt.fmt, std::forward<Args>(args)...),
                     fmt.loc);
}

/**
 * Report a condition caused by bad user input / configuration and
 * exit with status 1. Never returns.
 */
template <typename... Args>
[[noreturn]] void
fatal(FmtWithLoc fmt, Args &&...args)
{
    detail::fatalStr(fmtStr(fmt.fmt, std::forward<Args>(args)...),
                     fmt.loc);
}

/** Report suspicious but survivable behaviour. */
template <typename... Args>
void
warn(FmtWithLoc fmt, Args &&...args)
{
    detail::logMessage(LogLevel::Warn,
                       fmtStr(fmt.fmt, std::forward<Args>(args)...),
                       fmt.loc);
}

/** Report normal operating status. */
template <typename... Args>
void
inform(FmtWithLoc fmt, Args &&...args)
{
    detail::logMessage(LogLevel::Inform,
                       fmtStr(fmt.fmt, std::forward<Args>(args)...),
                       fmt.loc);
}

/**
 * Check an invariant that must hold regardless of user input.
 * Active in all build types (unlike assert).
 */
#define PRI_ASSERT(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::pri::panic("assertion failed: {} {}", #cond,                \
                         ::std::string(__VA_ARGS__ ""));                  \
        }                                                                 \
    } while (0)

} // namespace pri

#endif // PRI_COMMON_LOGGING_HH
