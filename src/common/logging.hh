/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for simulator bugs
 * (conditions that can never legally occur), fatal() is for user
 * errors (bad configuration), warn()/inform() report status without
 * stopping the simulation.
 */

#ifndef PRI_COMMON_LOGGING_HH
#define PRI_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/strfmt.hh"

namespace pri
{

/**
 * Exception thrown in place of std::abort() when a panic (simulator
 * bug, failed PRI_ASSERT, golden divergence) fires inside a
 * ScopedErrorCapture region. The message already carries the
 * source location and the flight-recorder trace.
 */
class PanicError : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * Exception thrown in place of std::exit(1) when fatal() (bad user
 * input / configuration) fires inside a ScopedErrorCapture region.
 */
class FatalError : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * While alive on a thread, panic() and fatal() on that thread throw
 * PanicError / FatalError instead of terminating the process. The
 * sweep runner wraps each worker's simulate() call in one of these
 * so a single wedged or buggy simulation point is captured as a
 * per-run error while sibling workers keep draining the batch.
 * Nestable; strictly thread-local (other threads are unaffected).
 */
class ScopedErrorCapture
{
  public:
    ScopedErrorCapture();
    ~ScopedErrorCapture();

    ScopedErrorCapture(const ScopedErrorCapture &) = delete;
    ScopedErrorCapture &operator=(const ScopedErrorCapture &) = delete;

    /** Is a capture region active on this thread? */
    static bool active();

  private:
    bool prev;
};

/**
 * Install process-wide handlers for fatal signals (SIGSEGV, SIGABRT,
 * SIGBUS, SIGFPE, SIGILL) that dump the faulting thread's flight
 * recorder and run context to stderr before re-raising with default
 * disposition. Idempotent; called by the CLI drivers and the bench
 * harnesses so any simulator crash leaves forensics behind.
 */
void installCrashHandlers();

/** Severity used by the message sinks. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail
{

/** Emit one formatted diagnostic line to stderr. */
void logMessage(LogLevel level, std::string_view msg,
                const std::source_location &loc);

[[noreturn]] void panicStr(const std::string &msg,
                           const std::source_location &loc);
[[noreturn]] void fatalStr(const std::string &msg,
                           const std::source_location &loc);

} // namespace detail

/** Arguments bundled with the call site's source location. */
struct FmtWithLoc
{
    std::string_view fmt;
    std::source_location loc;

    // Implicit so callers can pass plain string literals.
    FmtWithLoc(const char *f, std::source_location l =
                                  std::source_location::current())
        : fmt(f), loc(l)
    {
    }
};

/**
 * Report a condition that indicates a simulator bug and abort.
 * Never returns.
 */
template <typename... Args>
[[noreturn]] void
panic(FmtWithLoc fmt, Args &&...args)
{
    detail::panicStr(fmtStr(fmt.fmt, std::forward<Args>(args)...),
                     fmt.loc);
}

/**
 * Report a condition caused by bad user input / configuration and
 * exit with status 1. Never returns.
 */
template <typename... Args>
[[noreturn]] void
fatal(FmtWithLoc fmt, Args &&...args)
{
    detail::fatalStr(fmtStr(fmt.fmt, std::forward<Args>(args)...),
                     fmt.loc);
}

/** Report suspicious but survivable behaviour. */
template <typename... Args>
void
warn(FmtWithLoc fmt, Args &&...args)
{
    detail::logMessage(LogLevel::Warn,
                       fmtStr(fmt.fmt, std::forward<Args>(args)...),
                       fmt.loc);
}

/** Report normal operating status. */
template <typename... Args>
void
inform(FmtWithLoc fmt, Args &&...args)
{
    detail::logMessage(LogLevel::Inform,
                       fmtStr(fmt.fmt, std::forward<Args>(args)...),
                       fmt.loc);
}

/**
 * Check an invariant that must hold regardless of user input.
 * Active in all build types (unlike assert).
 */
#define PRI_ASSERT(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::pri::panic("assertion failed: {} {}", #cond,                \
                         ::std::string(__VA_ARGS__ ""));                  \
        }                                                                 \
    } while (0)

} // namespace pri

#endif // PRI_COMMON_LOGGING_HH
