/**
 * @file
 * Bounded undo journal: the storage behind pooled checkpointing.
 *
 * Instead of copying a whole structure at every checkpoint, mutators
 * append one undo record per destructive write and a checkpoint is
 * just the journal position (a 64-bit sequence number). Restoring a
 * checkpoint pops records in LIFO order, re-applying the saved old
 * values; releasing the oldest live checkpoint trims the dead prefix
 * so the buffer stays bounded by the in-flight window. The backing
 * vector grows once to the high-water mark and is never freed, so
 * steady-state operation performs no heap allocation.
 */

#ifndef PRI_COMMON_UNDO_JOURNAL_HH
#define PRI_COMMON_UNDO_JOURNAL_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace pri
{

template <typename Entry>
class UndoJournal
{
  public:
    /** Position after the most recent record (monotonic). */
    uint64_t
    seq() const
    {
        return base + (buf.size() - head);
    }

    /** Record the pre-write state of one destructive mutation. */
    void push(const Entry &e) { buf.push_back(e); }

    /**
     * Pop records newer than @p target, invoking @p undo on each in
     * LIFO order. @p target must be the seq() observed at a live
     * checkpoint — unwinding past trimmed history is a bug.
     */
    template <typename UndoFn>
    void
    unwindTo(uint64_t target, UndoFn &&undo)
    {
        PRI_ASSERT(target >= base, "unwind past trimmed history");
        while (seq() > target) {
            undo(buf.back());
            buf.pop_back();
        }
    }

    /**
     * Discard records no live checkpoint can unwind to (those with
     * seq <= @p min_seq). Compaction shifts in place; the vector's
     * capacity is retained, so trimming never allocates.
     */
    void
    trimTo(uint64_t min_seq)
    {
        if (min_seq <= base)
            return;
        PRI_ASSERT(min_seq <= seq(), "trim beyond journal head");
        head += static_cast<size_t>(min_seq - base);
        base = min_seq;
        if (head >= kCompactAt && head >= buf.size() - head) {
            buf.erase(buf.begin(),
                      buf.begin() + static_cast<ptrdiff_t>(head));
            head = 0;
        }
    }

    /** Records currently replayable (between trim point and seq). */
    size_t liveRecords() const { return buf.size() - head; }

    void reserve(size_t n) { buf.reserve(n); }
    size_t capacity() const { return buf.capacity(); }

    /**
     * Reserve enough for @p live_span live records plus the largest
     * dead prefix trimTo() tolerates before compacting, so a
     * correctly sized journal never reallocates after construction.
     */
    void
    reserveForLiveSpan(size_t live_span)
    {
        buf.reserve(live_span + 2 * kCompactAt);
    }

    static constexpr size_t kCompactAt = 1024;

  private:

    std::vector<Entry> buf;
    size_t head = 0;   ///< index of the oldest live record
    uint64_t base = 0; ///< seq represented by buf[head]
};

} // namespace pri

#endif // PRI_COMMON_UNDO_JOURNAL_HH
