/**
 * @file
 * Bit-manipulation helpers used throughout the simulator, most
 * importantly the operand-significance checks that decide whether a
 * value qualifies for physical register inlining (paper §3.1: "all n
 * high-order bits of a computed result are either 1 or 0").
 */

#ifndef PRI_COMMON_BITUTILS_HH
#define PRI_COMMON_BITUTILS_HH

#include <bit>
#include <cstdint>

namespace pri
{

/** Sign-extend the low @p bits bits of @p value to 64 bits. */
constexpr int64_t
signExtend(uint64_t value, unsigned bits)
{
    if (bits == 0)
        return 0;
    if (bits >= 64)
        return static_cast<int64_t>(value);
    const uint64_t mask = (uint64_t{1} << bits) - 1;
    const uint64_t sign = uint64_t{1} << (bits - 1);
    const uint64_t low = value & mask;
    return static_cast<int64_t>((low ^ sign) - sign);
}

/**
 * True if @p value is representable as a @p bits -bit two's-complement
 * integer, i.e. all high-order bits above position bits-1 are copies
 * of the sign bit. This is the significance check that gates inlining
 * of integer operands into the map table.
 */
constexpr bool
fitsInSignedBits(uint64_t value, unsigned bits)
{
    if (bits == 0)
        return false;
    if (bits >= 64)
        return true;
    return static_cast<uint64_t>(
        signExtend(value, bits)) == value;
}

/**
 * Minimum number of two's-complement bits needed to represent
 * @p value (1..64). Used by the Figure 2 operand-significance study.
 */
constexpr unsigned
significantBits(uint64_t value)
{
    const auto s = static_cast<int64_t>(value);
    // Number of redundant leading sign bits.
    const uint64_t x = (s < 0) ? ~value : value;
    const unsigned lead = x == 0 ? 64 : std::countl_zero(x);
    const unsigned bits = 64 - lead + 1;
    return bits > 64 ? 64 : bits;
}

/** Fields of an IEEE-754 double, as the FP significance study uses. */
struct FpFields
{
    uint64_t sign;        ///< 1 bit
    uint64_t exponent;    ///< 11 bits
    uint64_t significand; ///< 52 bits
};

/** Decompose the raw bits of a double into sign/exponent/significand. */
constexpr FpFields
fpFields(uint64_t raw)
{
    return FpFields{
        .sign = raw >> 63,
        .exponent = (raw >> 52) & 0x7ff,
        .significand = raw & ((uint64_t{1} << 52) - 1),
    };
}

/** True if the 11-bit exponent field is all zeroes or all ones. */
constexpr bool
fpExponentTrivial(uint64_t raw)
{
    const uint64_t e = fpFields(raw).exponent;
    return e == 0 || e == 0x7ff;
}

/** True if the 52-bit significand field is all zeroes or all ones. */
constexpr bool
fpSignificandTrivial(uint64_t raw)
{
    const uint64_t s = fpFields(raw).significand;
    return s == 0 || s == ((uint64_t{1} << 52) - 1);
}

/**
 * The paper inlines FP registers only when the *entire* value is all
 * zeroes or all ones (Table 1: "all values that are all zeroes or
 * ones are stored in the map table").
 */
constexpr bool
fpValueTrivial(uint64_t raw)
{
    return raw == 0 || raw == ~uint64_t{0};
}

/** Round @p v up to the next power of two (v must be >= 1). */
constexpr uint64_t
nextPow2(uint64_t v)
{
    return std::bit_ceil(v);
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(uint64_t v)
{
    return std::countr_zero(v);
}

/** True when @p v is a power of two (and nonzero). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace pri

#endif // PRI_COMMON_BITUTILS_HH
