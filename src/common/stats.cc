#include "stats.hh"

#include <cstdio>

#include "common/logging.hh"

namespace pri
{

StatScalar &
StatGroup::registerScalar(const std::string &name)
{
    auto [it, inserted] = scalars.try_emplace(name);
    if (!inserted)
        panic("duplicate scalar stat registration: {}", name);
    return it->second;
}

StatAverage &
StatGroup::registerAverage(const std::string &name)
{
    auto [it, inserted] = avgs.try_emplace(name);
    if (!inserted)
        panic("duplicate average stat registration: {}", name);
    return it->second;
}

double
StatGroup::scalarValue(const std::string &name) const
{
    auto it = scalars.find(name);
    return it == scalars.end() ? 0.0 : it->second.value();
}

std::string
StatGroup::report(const std::string &prefix) const
{
    std::string out;
    char line[256];
    for (const auto &[name, s] : scalars) {
        std::snprintf(line, sizeof(line), "%s%-44s %16.4f\n",
                      prefix.c_str(), name.c_str(), s.value());
        out += line;
    }
    for (const auto &[name, a] : avgs) {
        std::snprintf(line, sizeof(line),
                      "%s%-44s mean %12.4f  n %10llu  min %.2f  "
                      "max %.2f\n",
                      prefix.c_str(), name.c_str(), a.mean(),
                      static_cast<unsigned long long>(a.count()),
                      a.min(), a.max());
        out += line;
    }
    for (const auto &[name, d] : dists) {
        std::snprintf(line, sizeof(line),
                      "%s%-44s n %10llu  mean %10.3f\n",
                      prefix.c_str(), name.c_str(),
                      static_cast<unsigned long long>(d.count()),
                      d.mean());
        out += line;
    }
    return out;
}

void
StatGroup::resetAll()
{
    for (auto &[name, s] : scalars)
        s.reset();
    for (auto &[name, a] : avgs)
        a.reset();
    for (auto &[name, d] : dists)
        d.reset();
}

} // namespace pri
