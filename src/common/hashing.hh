/**
 * @file
 * Counter-based deterministic pseudo-randomness.
 *
 * All workload randomness in this reproduction is a pure function of
 * (seed, static-entity id, dynamic index). This makes the committed
 * instruction stream bit-identical across machine configurations and
 * register-management schemes regardless of timing, squashes, or
 * wrong-path depth — so scheme-vs-scheme comparisons carry no
 * generator noise (DESIGN.md §5).
 */

#ifndef PRI_COMMON_HASHING_HH
#define PRI_COMMON_HASHING_HH

#include <cstdint>

namespace pri
{

/** The SplitMix64 finalizer: a high-quality 64-bit mixing function. */
constexpr uint64_t
splitMix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine up to three keys into one well-mixed 64-bit hash. */
constexpr uint64_t
hashCombine(uint64_t a, uint64_t b, uint64_t c = 0)
{
    return splitMix64(splitMix64(splitMix64(a) ^ b) ^ c);
}

/**
 * Stateless uniform double in [0, 1) derived from three keys.
 * Uses the top 53 bits of the hash.
 */
constexpr double
hashUniform(uint64_t a, uint64_t b, uint64_t c = 0)
{
    return static_cast<double>(hashCombine(a, b, c) >> 11) *
        0x1.0p-53;
}

/** Stateless uniform integer in [0, bound) derived from three keys. */
constexpr uint64_t
hashRange(uint64_t bound, uint64_t a, uint64_t b, uint64_t c = 0)
{
    return bound == 0 ? 0 : hashCombine(a, b, c) % bound;
}

/**
 * Small stateful generator for one-time structure generation (static
 * program construction), where statefulness is harmless because the
 * structure is built exactly once per run.
 */
class SplitMixRng
{
  public:
    explicit SplitMixRng(uint64_t seed) : state(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        state += 0x9e3779b97f4a7c15ULL;
        return splitMix64(state);
    }

    /** Uniform double in [0, 1). */
    double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

    /** Uniform integer in [0, bound). */
    uint64_t
    nextRange(uint64_t bound)
    {
        return bound == 0 ? 0 : next() % bound;
    }

  private:
    uint64_t state;
};

} // namespace pri

#endif // PRI_COMMON_HASHING_HH
