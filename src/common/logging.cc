#include "logging.hh"

namespace pri
{
namespace detail
{

namespace
{

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
logMessage(LogLevel level, std::string_view msg,
           const std::source_location &loc)
{
    if (level == LogLevel::Inform || level == LogLevel::Warn) {
        std::fprintf(stderr, "%s: %.*s\n", levelName(level),
                     static_cast<int>(msg.size()), msg.data());
    } else {
        std::fprintf(stderr, "%s: %.*s (%s:%u)\n", levelName(level),
                     static_cast<int>(msg.size()), msg.data(),
                     loc.file_name(), loc.line());
    }
    std::fflush(stderr);
}

void
panicStr(const std::string &msg, const std::source_location &loc)
{
    logMessage(LogLevel::Panic, msg, loc);
    std::abort();
}

void
fatalStr(const std::string &msg, const std::source_location &loc)
{
    logMessage(LogLevel::Fatal, msg, loc);
    std::exit(1);
}

} // namespace detail
} // namespace pri
