#include "logging.hh"

#include <csignal>
#include <cstring>
#include <unistd.h>

#include "common/flight_recorder.hh"

namespace pri
{
namespace detail
{

namespace
{

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

/** This thread's panics/fatals throw instead of terminating. */
thread_local bool captureErrors = false;

/** Set once this thread has already dumped its flight recorder on
 *  the way down, so the SIGABRT crash handler does not dump twice. */
thread_local bool flightDumped = false;

} // namespace

void
logMessage(LogLevel level, std::string_view msg,
           const std::source_location &loc)
{
    if (level == LogLevel::Inform || level == LogLevel::Warn) {
        std::fprintf(stderr, "%s: %.*s\n", levelName(level),
                     static_cast<int>(msg.size()), msg.data());
    } else {
        std::fprintf(stderr, "%s: %.*s (%s:%u)\n", levelName(level),
                     static_cast<int>(msg.size()), msg.data(),
                     loc.file_name(), loc.line());
    }
    std::fflush(stderr);
}

void
panicStr(const std::string &msg, const std::source_location &loc)
{
    // Panics are simulator bugs: attach the last-events trace so a
    // one-off failure deep inside a sweep is diagnosable post-hoc.
    std::string full = msg;
    const FlightRecorder &fr = flightRecorder();
    if (!fr.empty()) {
        full += "\n";
        full += fr.dump();
    }
    if (captureErrors) {
        throw PanicError(fmtStr("panic: {} ({}:{})", full,
                                loc.file_name(), loc.line()));
    }
    flightDumped = true;
    logMessage(LogLevel::Panic, full, loc);
    std::abort();
}

void
fatalStr(const std::string &msg, const std::source_location &loc)
{
    if (captureErrors) {
        throw FatalError(msg);
    }
    logMessage(LogLevel::Fatal, msg, loc);
    std::exit(1);
}

} // namespace detail

ScopedErrorCapture::ScopedErrorCapture() : prev(detail::captureErrors)
{
    detail::captureErrors = true;
}

ScopedErrorCapture::~ScopedErrorCapture()
{
    detail::captureErrors = prev;
}

bool
ScopedErrorCapture::active()
{
    return detail::captureErrors;
}

namespace
{

void
crashHandler(int sig)
{
    // Restore default disposition first so anything going wrong
    // below (or the re-raise) terminates rather than recursing.
    std::signal(sig, SIG_DFL);

    char head[64];
    const char *name = sig == SIGSEGV ? "SIGSEGV"
        : sig == SIGABRT             ? "SIGABRT"
        : sig == SIGBUS              ? "SIGBUS"
        : sig == SIGFPE              ? "SIGFPE"
        : sig == SIGILL              ? "SIGILL"
                                     : "signal";
    const size_t n = std::strlen(name);
    std::memcpy(head, "\nfatal signal ", 14);
    std::memcpy(head + 14, name, n);
    head[14 + n] = '\n';
    [[maybe_unused]] ssize_t rc = write(2, head, 15 + n);

    // A panic that just abort()ed already printed the trace as part
    // of its message; only signals arriving out of the blue (real
    // crashes) dump here.
    if (!detail::flightDumped)
        flightRecorder().dumpTo(2);

    raise(sig);
}

} // namespace

void
installCrashHandlers()
{
    static bool installed = false;
    if (installed)
        return;
    installed = true;
    for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = crashHandler;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = SA_NODEFER;
        sigaction(sig, &sa, nullptr);
    }
}

} // namespace pri
