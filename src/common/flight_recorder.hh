/**
 * @file
 * Flight recorder: a fixed-size, allocation-free ring of recent
 * pipeline events kept per simulation thread, for post-mortem
 * forensics.
 *
 * The core appends one record per fetch/rename/issue/replay/commit/
 * squash as it simulates; the ring keeps only the most recent
 * kCapacity records, so steady-state cost is one 32-byte store and
 * an increment per event and memory use is constant. When anything
 * dies — panic(), a failed PRI_ASSERT, a fatal signal caught by the
 * crash handler in logging.cc, a golden-model divergence, or a
 * watchdog ProgressStall — the last K events plus the active run
 * context (a one-line RunParams summary installed by simulate())
 * are dumped alongside the error, so a wedged or crashed simulation
 * point is diagnosable without a rerun.
 *
 * Every record lives in thread-local storage: each worker thread of
 * a sweep owns exactly one recorder, appends are wait-free by
 * construction (no sharing, no locks), and the crash handler — which
 * runs on the faulting thread — reads only its own thread's ring.
 * dumpTo() formats with a local integer printer and write(2) so it
 * is safe to call from a signal handler.
 */

#ifndef PRI_COMMON_FLIGHT_RECORDER_HH
#define PRI_COMMON_FLIGHT_RECORDER_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pri
{

/** Pipeline event classes the recorder distinguishes. */
enum class FlightEvent : uint8_t
{
    Fetch,   ///< instruction fetched (arg = predTaken for branches)
    Rename,  ///< renamed/dispatched (arg = dest preg or ~0)
    Issue,   ///< selected for execution (arg = dest preg or ~0)
    Replay,  ///< latency mispredict, selectively replayed
    Commit,  ///< architecturally committed (arg = dest preg or ~0)
    Squash,  ///< misprediction recovery (arg = entries squashed)
    Note,    ///< free-form marker (watchdog audits etc.)
};

/** Short display tag for one event kind. */
const char *flightEventName(FlightEvent ev);

/** Fixed-size ring of recent pipeline events (one per thread). */
class FlightRecorder
{
  public:
    /** Ring capacity; dump() reports at most the last kCapacity. */
    static constexpr size_t kCapacity = 256;

    /** One recorded event; preg-sized arg doubles as a detail slot
     *  (squash length, branch direction) per FlightEvent. */
    struct Record
    {
        uint64_t cycle = 0;
        uint64_t pc = 0;
        uint64_t gidx = 0; ///< dynamic instruction index (wi.seq)
        uint32_t arg = 0;  ///< dest preg / squash count / detail
        FlightEvent ev = FlightEvent::Note;
    };

    /** Append one event (constant time, never allocates). */
    void
    record(FlightEvent ev, uint64_t cycle, uint64_t pc,
           uint64_t gidx, uint32_t arg)
    {
        Record &r = ring[head & (kCapacity - 1)];
        r.cycle = cycle;
        r.pc = pc;
        r.gidx = gidx;
        r.arg = arg;
        r.ev = ev;
        ++head;
    }

    /** Total events ever recorded (ring keeps the last kCapacity). */
    uint64_t eventsRecorded() const { return head; }

    bool empty() const { return head == 0; }

    /** Drop all events and the run context (start of a new run). */
    void clear();

    /**
     * Install the active run's one-line description (typically a
     * RunParams summary). Copied into a fixed buffer — no
     * allocation — and emitted at the top of every dump.
     */
    void setContext(const char *ctx);

    const char *context() const { return ctxBuf.data(); }

    /**
     * Human-readable trace of the last @p maxEvents events (oldest
     * first), headed by the run context. Allocates; not for signal
     * context — crash handlers use dumpTo().
     */
    std::string dump(size_t maxEvents = 64) const;

    /**
     * Async-signal-safe dump of the last @p maxEvents events to a
     * file descriptor: formats each line into a stack buffer with a
     * local integer printer and emits it via write(2).
     */
    void dumpTo(int fd, size_t maxEvents = 64) const;

  private:
    std::array<Record, kCapacity> ring{};
    uint64_t head = 0;
    std::array<char, 192> ctxBuf{};
};

/** This thread's recorder (created on first use). */
FlightRecorder &flightRecorder();

/**
 * Convenience: install @p ctx as this thread's run context (see
 * FlightRecorder::setContext).
 */
void setFlightContext(const std::string &ctx);

} // namespace pri

#endif // PRI_COMMON_FLIGHT_RECORDER_HH
