#include "common/flight_recorder.hh"

#include <cstring>
#include <unistd.h>

#include "common/strfmt.hh"

namespace pri
{

namespace
{

/** Formatting scratch used by the signal-safe path. */
struct LineBuf
{
    char buf[256];
    size_t len = 0;

    void
    putStr(const char *s)
    {
        while (*s != '\0' && len < sizeof(buf) - 1)
            buf[len++] = *s++;
    }

    void
    putU64(uint64_t v)
    {
        char digits[24];
        size_t n = 0;
        do {
            digits[n++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v != 0);
        while (n > 0 && len < sizeof(buf) - 1)
            buf[len++] = digits[--n];
    }

    void
    putHex(uint64_t v)
    {
        putStr("0x");
        char digits[18];
        size_t n = 0;
        do {
            const unsigned d = v & 0xf;
            digits[n++] = static_cast<char>(
                d < 10 ? '0' + d : 'a' + (d - 10));
            v >>= 4;
        } while (v != 0);
        while (n > 0 && len < sizeof(buf) - 1)
            buf[len++] = digits[--n];
    }

    void
    flush(int fd)
    {
        if (len > 0) {
            // Best effort: nothing useful to do on a short write
            // from a crash handler.
            [[maybe_unused]] ssize_t rc = ::write(fd, buf, len);
        }
        len = 0;
    }
};

void
formatRecord(LineBuf &line, const FlightRecorder::Record &r)
{
    line.putStr("  cycle ");
    line.putU64(r.cycle);
    line.putStr("  ");
    line.putStr(flightEventName(r.ev));
    line.putStr("  gidx ");
    line.putU64(r.gidx);
    line.putStr("  pc ");
    line.putHex(r.pc);
    line.putStr("  arg ");
    line.putU64(r.arg);
    line.putStr("\n");
}

} // namespace

const char *
flightEventName(FlightEvent ev)
{
    switch (ev) {
      case FlightEvent::Fetch:  return "fetch ";
      case FlightEvent::Rename: return "rename";
      case FlightEvent::Issue:  return "issue ";
      case FlightEvent::Replay: return "replay";
      case FlightEvent::Commit: return "commit";
      case FlightEvent::Squash: return "squash";
      case FlightEvent::Note:   return "note  ";
    }
    return "?";
}

void
FlightRecorder::clear()
{
    head = 0;
    ctxBuf[0] = '\0';
}

void
FlightRecorder::setContext(const char *ctx)
{
    std::strncpy(ctxBuf.data(), ctx, ctxBuf.size() - 1);
    ctxBuf[ctxBuf.size() - 1] = '\0';
}

std::string
FlightRecorder::dump(size_t maxEvents) const
{
    std::string out = "flight recorder";
    if (ctxBuf[0] != '\0') {
        out += " [";
        out += ctxBuf.data();
        out += "]";
    }
    if (head == 0) {
        out += ": no events recorded\n";
        return out;
    }
    const uint64_t kept = head < kCapacity ? head : kCapacity;
    const uint64_t show =
        kept < maxEvents ? kept : static_cast<uint64_t>(maxEvents);
    out += fmtStr(": last {} of {} events (oldest first):\n", show,
                  head);
    for (uint64_t k = head - show; k < head; ++k) {
        LineBuf line;
        formatRecord(line, ring[k & (kCapacity - 1)]);
        out.append(line.buf, line.len);
    }
    return out;
}

void
FlightRecorder::dumpTo(int fd, size_t maxEvents) const
{
    LineBuf line;
    line.putStr("flight recorder");
    if (ctxBuf[0] != '\0') {
        line.putStr(" [");
        line.putStr(ctxBuf.data());
        line.putStr("]");
    }
    if (head == 0) {
        line.putStr(": no events recorded\n");
        line.flush(fd);
        return;
    }
    const uint64_t kept = head < kCapacity ? head : kCapacity;
    const uint64_t show =
        kept < maxEvents ? kept : static_cast<uint64_t>(maxEvents);
    line.putStr(": last ");
    line.putU64(show);
    line.putStr(" of ");
    line.putU64(head);
    line.putStr(" events (oldest first):\n");
    line.flush(fd);
    for (uint64_t k = head - show; k < head; ++k) {
        formatRecord(line, ring[k & (kCapacity - 1)]);
        line.flush(fd);
    }
}

FlightRecorder &
flightRecorder()
{
    static thread_local FlightRecorder recorder;
    return recorder;
}

void
setFlightContext(const std::string &ctx)
{
    flightRecorder().setContext(ctx.c_str());
}

} // namespace pri
