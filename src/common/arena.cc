#include "arena.hh"

#include <algorithm>
#include <cstdlib>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "common/logging.hh"

namespace pri
{

namespace
{

constexpr size_t kHugePage = 2u << 20;

thread_local LaneArena *tlsArena = nullptr;

size_t
roundUp(size_t v, size_t align)
{
    return (v + align - 1) & ~(align - 1);
}

std::byte *
allocSlab(size_t bytes)
{
    void *mem = nullptr;
    if (posix_memalign(&mem, kHugePage, bytes) != 0)
        throw std::bad_alloc();
#if defined(__linux__)
    // Advisory only: with THP in madvise mode this backs the slab
    // with huge pages; elsewhere it is a no-op. PRI_ARENA_NOHUGE
    // opts out (e.g. for memory-constrained CI runners).
    static const bool no_huge =
        std::getenv("PRI_ARENA_NOHUGE") != nullptr;
    if (!no_huge)
        madvise(mem, bytes, MADV_HUGEPAGE);
#endif
    return static_cast<std::byte *>(mem);
}

} // namespace

LaneArena *
currentArena()
{
    return tlsArena;
}

ArenaScope::ArenaScope(LaneArena *arena) : prev(tlsArena)
{
    tlsArena = arena;
}

ArenaScope::~ArenaScope()
{
    tlsArena = prev;
}

LaneArena::LaneArena(size_t slab_bytes)
    : slabBytes(roundUp(slab_bytes, kHugePage))
{
}

LaneArena::~LaneArena()
{
    for (auto &s : slabs)
        std::free(s.mem);
}

void
LaneArena::grow(size_t min_bytes)
{
    // Advance through retained slabs first; only allocate fresh
    // storage when every retained slab is exhausted or too small.
    while (curSlab + 1 < slabs.size()) {
        ++curSlab;
        offset = 0;
        if (slabs[curSlab].cap >= min_bytes)
            return;
    }
    const size_t cap = roundUp(std::max(min_bytes, slabBytes),
                               kHugePage);
    slabs.push_back(Slab{allocSlab(cap), cap});
    reserved += cap;
    curSlab = slabs.size() - 1;
    offset = 0;
}

void *
LaneArena::allocate(size_t bytes, size_t align)
{
    PRI_ASSERT((align & (align - 1)) == 0,
               "arena alignment must be a power of two");
    if (slabs.empty())
        grow(bytes);
    size_t at = roundUp(offset, align);
    if (at + bytes > slabs[curSlab].cap) {
        grow(bytes);
        at = 0;
    }
    std::byte *p = slabs[curSlab].mem + at;
    offset = at + bytes;
    used += bytes;
    return p;
}

void
LaneArena::reset()
{
    curSlab = 0;
    offset = 0;
    used = 0;
}

} // namespace pri
