/**
 * @file
 * Minimal string formatting for diagnostics: replaces each "{...}"
 * placeholder in a format string with the textual form of the next
 * argument (format specs inside the braces are ignored). Used by the
 * logging layer; report tables use snprintf directly for alignment.
 */

#ifndef PRI_COMMON_STRFMT_HH
#define PRI_COMMON_STRFMT_HH

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace pri
{

namespace detail
{

template <typename T>
std::string
toDiagString(const T &v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

inline std::string
miniFormat(std::string_view fmt,
           const std::vector<std::string> &args)
{
    std::string out;
    out.reserve(fmt.size() + 16 * args.size());
    size_t arg = 0;
    for (size_t i = 0; i < fmt.size(); ++i) {
        const char c = fmt[i];
        if (c == '{') {
            if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
                out.push_back('{');
                ++i;
                continue;
            }
            const size_t close = fmt.find('}', i);
            if (close == std::string_view::npos) {
                out.append(fmt.substr(i));
                break;
            }
            out += arg < args.size() ? args[arg++] : "{?}";
            i = close;
        } else if (c == '}' && i + 1 < fmt.size() &&
                   fmt[i + 1] == '}') {
            out.push_back('}');
            ++i;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace detail

/** Format @p fmt, substituting "{}" placeholders left to right. */
template <typename... Args>
std::string
fmtStr(std::string_view fmt, Args &&...args)
{
    return detail::miniFormat(
        fmt, {detail::toDiagString(std::forward<Args>(args))...});
}

} // namespace pri

#endif // PRI_COMMON_STRFMT_HH
