/**
 * @file
 * LaneArena: a slab bump allocator backing the per-lane simulator
 * state of one SweepBatch (DESIGN.md §14).
 *
 * A batch constructs its K lanes back to back inside one ArenaScope,
 * so every fixed-size container a lane allocates at construction —
 * ROB hot/cold arrays, scheduler bitmaps, event wheel slots, rename
 * free lists, cache tag arrays, predictor tables — lands contiguous
 * and lane-major in the arena instead of scattered across the heap.
 * Between batches the arena is reset (slabs retained, bump pointers
 * rewound), so the second and later batches on a worker thread reuse
 * already-faulted, already-hot pages: per-point construction cost
 * drops from "malloc + page fault + zero" to "zero".
 *
 * Deallocation is a no-op; memory is reclaimed only by reset(). That
 * is safe exactly because every lane object is destroyed before its
 * batch finishes and the next batch (the only caller of reset())
 * starts. Containers that grow mid-run leak their old block into the
 * slab — bounded, because steady-state simulation does not grow
 * (core.scratchGrowths gates that invariant).
 *
 * Slabs are 2 MiB-aligned and advised MADV_HUGEPAGE on Linux: the
 * simulator's per-lane working set is pointer-dense, so backing it
 * with huge pages measurably cuts dTLB pressure in batched replay.
 *
 * ArenaAlloc<T> is a minimal allocator over the *ambient* arena: the
 * thread-local currentArena() set by ArenaScope. A container
 * captures the arena active when it is constructed (null = plain
 * heap, byte-for-byte the legacy behavior), so arena-backing a
 * member is a type change only — no constructor plumbing through
 * core/rename/memory/branch.
 */

#ifndef PRI_COMMON_ARENA_HH
#define PRI_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace pri
{

/** Slab bump allocator; see file comment. Not thread-safe: one
 *  arena belongs to one worker thread. */
class LaneArena
{
  public:
    /** @param slab_bytes granularity of slab growth (rounded up to
     *  2 MiB multiples so huge-page backing lines up). */
    explicit LaneArena(size_t slab_bytes = kDefaultSlabBytes);
    ~LaneArena();

    LaneArena(const LaneArena &) = delete;
    LaneArena &operator=(const LaneArena &) = delete;

    /** Bump-allocate @p bytes aligned to @p align. Never fails soft:
     *  grows a new slab (or a dedicated oversized one) on demand. */
    void *allocate(size_t bytes, size_t align);

    /** Rewind every slab; all outstanding allocations must be dead.
     *  Slab storage is retained for reuse. */
    void reset();

    /** Total bytes of slab storage owned (diagnostics). */
    size_t reservedBytes() const { return reserved; }
    /** Bytes handed out since the last reset() (diagnostics). */
    size_t usedBytes() const { return used; }

    static constexpr size_t kDefaultSlabBytes = 8u << 20;

  private:
    struct Slab
    {
        std::byte *mem = nullptr;
        size_t cap = 0;
    };

    void grow(size_t min_bytes);

    std::vector<Slab> slabs;
    size_t curSlab = 0; ///< slab currently bumping
    size_t offset = 0;  ///< bump offset within curSlab
    size_t slabBytes;
    size_t reserved = 0;
    size_t used = 0;
};

/** The thread's ambient arena (null outside any ArenaScope). */
LaneArena *currentArena();

/** RAII: containers constructed inside the scope allocate from
 *  @p arena. Nests; restores the previous ambient arena on exit. */
class ArenaScope
{
  public:
    explicit ArenaScope(LaneArena *arena);
    ~ArenaScope();

    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

  private:
    LaneArena *prev;
};

/**
 * Allocator over the ambient arena. Captures currentArena() at
 * construction; a null arena falls back to operator new/delete, so
 * containers built outside any ArenaScope behave exactly as before.
 */
template <class T>
struct ArenaAlloc
{
    using value_type = T;

    LaneArena *arena;

    ArenaAlloc() : arena(currentArena()) {}
    explicit ArenaAlloc(LaneArena *a) : arena(a) {}
    template <class U>
    ArenaAlloc(const ArenaAlloc<U> &o) : arena(o.arena)
    {
    }

    T *
    allocate(size_t n)
    {
        const size_t bytes = n * sizeof(T);
        if (arena != nullptr) {
            return static_cast<T *>(
                arena->allocate(bytes, alignof(T)));
        }
        return static_cast<T *>(
            ::operator new(bytes, std::align_val_t{alignof(T)}));
    }

    void
    deallocate(T *p, size_t n)
    {
        if (arena != nullptr)
            return; // reclaimed wholesale by LaneArena::reset()
        ::operator delete(p, n * sizeof(T),
                          std::align_val_t{alignof(T)});
    }

    bool
    operator==(const ArenaAlloc &o) const
    {
        return arena == o.arena;
    }
};

/**
 * A std::vector whose storage comes from the ambient arena when one
 * is active at construction time (and from the heap otherwise). The
 * hot per-lane simulator containers are declared with this alias so
 * batched lanes pack lane-major (DESIGN.md §14) with zero call-site
 * changes.
 */
template <class T>
using HotVec = std::vector<T, ArenaAlloc<T>>;

} // namespace pri

#endif // PRI_COMMON_ARENA_HH
