/**
 * @file
 * Shared parameters of the workload value/outcome generators.
 *
 * The legacy Walker decode path (walker.cc) and the trace compiler
 * (trace/block_compiler.cc) must draw from *identical* hash streams:
 * every salt and distribution constant lives here exactly once so the
 * two paths cannot drift apart.
 *
 * Pre-folding: every per-instance draw in the generators has the form
 * hashCombine(seed ^ salt, id, g) with (seed, salt, id) fixed per
 * static instruction. hashCombine expands to
 *
 *   splitMix64(splitMix64(splitMix64(seed ^ salt) ^ id) ^ g)
 *
 * so the two inner rounds — hashPrefix(seed, salt, id) — can be baked
 * into a MicroOp at trace-compile time, and a replay draw is a single
 * splitMix64 round: foldHash(prefix, g). The static_asserts below pin
 * this identity, which is the whole byte-identity argument for the
 * traced front end (DESIGN.md §13).
 */

#ifndef PRI_WORKLOAD_GEN_PARAMS_HH
#define PRI_WORKLOAD_GEN_PARAMS_HH

#include <cstdint>

#include "common/hashing.hh"

namespace pri::workload::genp
{

// Independent hash salts, one per random decision.
constexpr uint64_t kSaltWidthSel = 0x77d1;
constexpr uint64_t kSaltWidthJit = 0x77d2;
constexpr uint64_t kSaltWidthNew = 0x77d3;
constexpr uint64_t kSaltMag = 0x77d4;
constexpr uint64_t kSaltNeg = 0x77d5;
constexpr uint64_t kSaltFpZero = 0xf901;
constexpr uint64_t kSaltFpExp = 0xf902;
constexpr uint64_t kSaltFpSig = 0xf903;
constexpr uint64_t kSaltFpSign = 0xf904;
constexpr uint64_t kSaltFpTriv = 0xf905;
constexpr uint64_t kSaltAddr = 0xadd1;
constexpr uint64_t kSaltAddrCold = 0xadd2;
constexpr uint64_t kSaltStreamSel = 0xadd3;
constexpr uint64_t kSaltCorrSel = 0xbc01;
constexpr uint64_t kSaltCorrOut = 0xbc02;
constexpr uint64_t kSaltBias = 0xbc03;

// Random streams have two-level locality: most accesses fall in a
// hot region (temporal reuse the DL1 can capture), a fixed fraction
// go cold anywhere in the working set. Real pointer-chasing codes
// show exactly this skew; without it any working set larger than
// the DL1 would miss on every access.
constexpr double kColdAccessFrac = 0.30;
constexpr uint64_t kHotRegionBytes = 8 * 1024;

// History bits used for correlated branch outcomes. Kept narrow
// (64 patterns per branch) so a 4k-entry gshare can learn the
// pattern tables without catastrophic aliasing.
constexpr uint64_t kHistMask = 0x3f;

// Distribution constants shared by both decode paths.
constexpr double kWidthStaySelFrac = 0.7;  ///< stay near width class
constexpr double kOneBitNegFrac = 0.05;    ///< 1-bit values: P(-1)
constexpr double kFpSignNegFrac = 0.3;     ///< FP sign bit bias
constexpr uint64_t kFpExpBase = 1003;      ///< exponent window base
constexpr uint64_t kFpExpRange = 30;       ///< exponent window width

/** The (seed, salt, id)-dependent part of hashCombine, baked per
 *  static instruction at trace-compile time. */
constexpr uint64_t
hashPrefix(uint64_t seed, uint64_t salt, uint64_t id)
{
    return splitMix64(splitMix64(seed ^ salt) ^ id);
}

/** Complete a pre-folded draw: one splitMix64 round per instance. */
constexpr uint64_t
foldHash(uint64_t prefix, uint64_t g)
{
    return splitMix64(prefix ^ g);
}

/** Pre-folded equivalent of hashUniform(seed ^ salt, id, g). */
constexpr double
foldUniform(uint64_t prefix, uint64_t g)
{
    return static_cast<double>(foldHash(prefix, g) >> 11) * 0x1.0p-53;
}

/** Pre-folded equivalent of hashRange(bound, seed ^ salt, id, g). */
constexpr uint64_t
foldRange(uint64_t bound, uint64_t prefix, uint64_t g)
{
    return bound == 0 ? 0 : foldHash(prefix, g) % bound;
}

// The identity the traced front end rests on: folding a baked prefix
// reproduces the three-round hash bit-for-bit, for every key shape
// the generators use (g as third key, and history h for correlated
// branch draws).
static_assert(foldHash(hashPrefix(0x12345678, kSaltMag, 77), 991) ==
              hashCombine(0x12345678 ^ kSaltMag, 77, 991));
static_assert(foldUniform(hashPrefix(7, kSaltBias, 3), 0) ==
              hashUniform(7 ^ kSaltBias, 3, 0));
static_assert(foldRange(30, hashPrefix(9, kSaltFpExp, 5), 63) ==
              hashRange(30, 9 ^ kSaltFpExp, 5, 63));

} // namespace pri::workload::genp

#endif // PRI_WORKLOAD_GEN_PARAMS_HH
