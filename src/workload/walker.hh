/**
 * @file
 * Dynamic instruction-stream walker.
 *
 * Walks a SyntheticProgram under front-end control: the core fetches
 * instructions with next(); for every branch the core must steer()
 * the walker down the direction it chose to *fetch* (the predicted
 * one), which may be the wrong path. On a misprediction the core
 * restores the checkpoint it took at the branch and re-steers with
 * the actual outcome. All value/outcome/address randomness is a pure
 * function of walker state that is saved in the checkpoint, so the
 * committed path is identical regardless of timing (DESIGN.md §5).
 *
 * Two decode paths produce byte-identical streams (DESIGN.md §13):
 * the legacy path re-derives everything from the StaticInst per
 * dynamic instance, while the traced path (constructed with compiled
 * ProgramTraces) replays flat pre-decoded MicroOp arrays with a
 * pointer bump and single-round pre-folded hash draws. Walker state
 * (loc, stack, gidx, hist) and checkpoint/steer/restore semantics are
 * identical in both modes.
 */

#ifndef PRI_WORKLOAD_WALKER_HH
#define PRI_WORKLOAD_WALKER_HH

#include <cstdint>
#include <vector>

#include "workload/program.hh"
#include "workload/trace/micro_op.hh"
#include "workload/winst.hh"

namespace pri::workload
{

namespace trace
{
class ProgramTraces;
} // namespace trace

class ReplayTape;

/** Restorable walker state, captured at every fetched branch. */
struct WalkerCkpt
{
    ProgLoc loc;                  ///< position of the branch itself
    std::vector<ProgLoc> stack;   ///< call-stack of return locations
    uint64_t gidx = 0;            ///< dynamic index counter
    uint64_t hist = 0;            ///< speculative global history
    /** Walker was on the committed path at this branch (replay-tape
     *  eligibility; restored along with the rest of the state). */
    bool onPath = false;
};

/** Front-end instruction supplier for one benchmark run. */
class Walker
{
  public:
    /**
     * @p traces, when non-null, switches the walker to trace replay;
     * it must be the compiled form of @p program (same fingerprint)
     * and must outlive the walker. Null selects the legacy decode
     * path (the golden model always uses it, so golden-checked runs
     * cross-check the two paths instruction by instruction).
     *
     * @p tape, when non-null, short-circuits next() with pre-built
     * committed-path entries while the walker is on the committed
     * path (requires traced mode; see ReplayTape). Byte-identical
     * output either way — the tape holds exactly what the
     * generators would produce.
     */
    explicit Walker(const SyntheticProgram &program,
                    const trace::ProgramTraces *traces = nullptr,
                    const ReplayTape *tape = nullptr);
    ~Walker();

    Walker(const Walker &) = delete;
    Walker &operator=(const Walker &) = delete;

    /**
     * Generate the instruction at the current location. Non-branches
     * advance the walker; a branch leaves it paused at the branch
     * until steer() is called.
     */
    WInst next();

    /**
     * Move past the pending branch in the direction the front-end
     * fetches. @p taken is the fetched direction and @p target_pc the
     * fetched target (must be a block-start PC); ignored when not
     * taken.
     */
    void steer(const WInst &branch, bool taken, uint64_t target_pc);

    /** True when next() returned a branch that has not been steered. */
    bool branchPending() const { return pending; }

    /** PC of the instruction next() will return (fetch address).
     *  Called once per fetch cycle; the traced form is a single
     *  load off the current MicroOp. */
    uint64_t
    currentPc() const
    {
        return cur != nullptr
            ? cur->pc
            : prog.block(loc.block).insts.at(loc.idx).pc;
    }

    /** Capture restorable state (legal only while a branch pends). */
    WalkerCkpt checkpoint() const;

    /**
     * Capture restorable state into caller-owned storage. @p out's
     * stack vector is reused (assign, not reallocate), so a pooled
     * checkpoint slot grows once to the deepest call stack seen and
     * never allocates again.
     */
    void checkpointInto(WalkerCkpt &out) const;

    /** Restore state captured at a mispredicted branch. */
    void restore(const WalkerCkpt &ckpt);

    const SyntheticProgram &program() const { return prog; }

    /** Is this walker replaying compiled micro-traces? */
    bool traced() const { return cur != nullptr; }

    /** Still fetching the committed path (trivially true without a
     *  tape — the flag is only maintained for tape eligibility)? */
    bool onCommittedPath() const { return onPath_; }

    /** Current position (tape construction and tests). */
    ProgLoc location() const { return loc; }

    /** MicroOp at the current position; null on the legacy path. */
    const trace::MicroOp *currentOp() const { return cur; }

    // --- value generators (exposed for tests and the Figure 2
    //     operand-significance study) ---

    /** Deterministic integer result for (static inst, dynamic idx). */
    uint64_t genIntValue(const StaticInst &si, uint64_t g) const;
    /** Deterministic FP result (raw IEEE-754 bits). */
    uint64_t genFpValue(const StaticInst &si, uint64_t g) const;
    /** Deterministic effective address. */
    uint64_t genAddress(const StaticInst &si, uint64_t g) const;

  private:
    /** Resolve the actual outcome of a conditional branch. */
    bool branchOutcome(const StaticInst &si, uint64_t g) const;

    /** Trace-replay twin of next(): pointer bump + kind dispatch. */
    WInst nextTraced();

    /** Committed-path twin of next(): copy the pre-built tape entry
     *  and stamp this lane's seq (batched replay fast path). */
    WInst nextFromTape();

    // Pre-folded replay generators (byte-identical to the ones above
    // by the gen_params.hh folding identity).
    uint64_t replayIntValue(const trace::MicroOp &op, uint64_t g) const;
    uint64_t replayFpValue(const trace::MicroOp &op, uint64_t g) const;
    uint64_t replayAddress(const trace::MicroOp &op, uint64_t g) const;
    bool replayBranchOutcome(const trace::MicroOp &op,
                             uint64_t g) const;

    const SyntheticProgram &prog;
    uint64_t seed;

    ProgLoc loc;
    std::vector<ProgLoc> stack;
    uint64_t gidx = 0;
    uint64_t hist = 0;
    uint64_t seqCounter = 0; ///< monotonic; never rolled back
    bool pending = false;

    // --- trace replay state ---
    const trace::ProgramTraces *tr = nullptr;
    /** The MicroOp at loc; kept in lock-step with (loc.block, loc.idx)
     *  by next/steer/restore. Null on the legacy path. */
    const trace::MicroOp *cur = nullptr;
    uint64_t nReplayed = 0;     ///< flushed to TraceCache stats
    uint64_t nLegacyDecoded = 0;

    // --- committed-path tape replay state ---
    /** Shared pre-built committed-path stream; null = always
     *  generate live. */
    const ReplayTape *tape_ = nullptr;
    /** Every fetch so far was down the committed path, i.e. (loc,
     *  stack, gidx, hist) equal the tape walker's state at gidx and
     *  tape entries may substitute for live generation. Cleared by
     *  steer() down a wrong direction, restored with checkpoints. */
    bool onPath_ = true;
};

} // namespace pri::workload

#endif // PRI_WORKLOAD_WALKER_HH
