/**
 * @file
 * Dynamic instruction-stream walker.
 *
 * Walks a SyntheticProgram under front-end control: the core fetches
 * instructions with next(); for every branch the core must steer()
 * the walker down the direction it chose to *fetch* (the predicted
 * one), which may be the wrong path. On a misprediction the core
 * restores the checkpoint it took at the branch and re-steers with
 * the actual outcome. All value/outcome/address randomness is a pure
 * function of walker state that is saved in the checkpoint, so the
 * committed path is identical regardless of timing (DESIGN.md §5).
 */

#ifndef PRI_WORKLOAD_WALKER_HH
#define PRI_WORKLOAD_WALKER_HH

#include <cstdint>
#include <vector>

#include "workload/program.hh"
#include "workload/winst.hh"

namespace pri::workload
{

/** Restorable walker state, captured at every fetched branch. */
struct WalkerCkpt
{
    ProgLoc loc;                  ///< position of the branch itself
    std::vector<ProgLoc> stack;   ///< call-stack of return locations
    uint64_t gidx = 0;            ///< dynamic index counter
    uint64_t hist = 0;            ///< speculative global history
};

/** Front-end instruction supplier for one benchmark run. */
class Walker
{
  public:
    explicit Walker(const SyntheticProgram &program);

    /**
     * Generate the instruction at the current location. Non-branches
     * advance the walker; a branch leaves it paused at the branch
     * until steer() is called.
     */
    WInst next();

    /**
     * Move past the pending branch in the direction the front-end
     * fetches. @p taken is the fetched direction and @p target_pc the
     * fetched target (must be a block-start PC); ignored when not
     * taken.
     */
    void steer(const WInst &branch, bool taken, uint64_t target_pc);

    /** True when next() returned a branch that has not been steered. */
    bool branchPending() const { return pending; }

    /** PC of the instruction next() will return (fetch address). */
    uint64_t currentPc() const;

    /** Capture restorable state (legal only while a branch pends). */
    WalkerCkpt checkpoint() const;

    /**
     * Capture restorable state into caller-owned storage. @p out's
     * stack vector is reused (assign, not reallocate), so a pooled
     * checkpoint slot grows once to the deepest call stack seen and
     * never allocates again.
     */
    void checkpointInto(WalkerCkpt &out) const;

    /** Restore state captured at a mispredicted branch. */
    void restore(const WalkerCkpt &ckpt);

    const SyntheticProgram &program() const { return prog; }

    // --- value generators (exposed for tests and the Figure 2
    //     operand-significance study) ---

    /** Deterministic integer result for (static inst, dynamic idx). */
    uint64_t genIntValue(const StaticInst &si, uint64_t g) const;
    /** Deterministic FP result (raw IEEE-754 bits). */
    uint64_t genFpValue(const StaticInst &si, uint64_t g) const;
    /** Deterministic effective address. */
    uint64_t genAddress(const StaticInst &si, uint64_t g) const;

  private:
    /** Resolve the actual outcome of a conditional branch. */
    bool branchOutcome(const StaticInst &si, uint64_t g) const;

    const SyntheticProgram &prog;
    uint64_t seed;

    ProgLoc loc;
    std::vector<ProgLoc> stack;
    uint64_t gidx = 0;
    uint64_t hist = 0;
    uint64_t seqCounter = 0; ///< monotonic; never rolled back
    bool pending = false;
};

} // namespace pri::workload

#endif // PRI_WORKLOAD_WALKER_HH
