#include "profile.hh"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hh"

namespace pri::workload
{

WidthCdf::WidthCdf(const WidthPoints &points)
{
    PRI_ASSERT(!points.empty());
    cdf[0] = 0.0;
    // Piecewise-linear interpolation between control points, with an
    // implicit (0, 0) start. The final point must reach 1.0 at 64.
    unsigned prev_b = 0;
    double prev_f = 0.0;
    size_t pi = 0;
    for (unsigned b = 1; b <= 64; ++b) {
        while (pi < points.size() && points[pi].first < b) {
            prev_b = points[pi].first;
            prev_f = points[pi].second;
            ++pi;
        }
        if (pi >= points.size()) {
            cdf[b] = 1.0;
            continue;
        }
        const unsigned nb = points[pi].first;
        const double nf = points[pi].second;
        if (nb == b) {
            cdf[b] = nf;
        } else {
            const double t = static_cast<double>(b - prev_b) /
                static_cast<double>(nb - prev_b);
            cdf[b] = prev_f + t * (nf - prev_f);
        }
    }
    cdf[64] = 1.0;
    for (unsigned b = 1; b <= 64; ++b)
        PRI_ASSERT(cdf[b] + 1e-12 >= cdf[b - 1],
                   "width CDF must be non-decreasing");
}

double
WidthCdf::at(unsigned bits) const
{
    return cdf[std::min<unsigned>(bits, 64)];
}

unsigned
WidthCdf::sample(double u) const
{
    // Smallest width whose cumulative fraction exceeds u.
    for (unsigned b = 1; b <= 64; ++b) {
        if (u < cdf[b])
            return b;
    }
    return 64;
}

namespace
{

/** Base template for SPECint-like profiles. */
BenchmarkProfile
intBase(const std::string &name)
{
    BenchmarkProfile p;
    p.name = name;
    p.suite = Suite::Int;
    return p;
}

/** Base template for SPECfp-like profiles. */
BenchmarkProfile
fpBase(const std::string &name)
{
    BenchmarkProfile p;
    p.name = name;
    p.suite = Suite::Fp;
    p.fracLoad = 0.28;
    p.fracStore = 0.10;
    p.fracBranch = 0.08;
    p.fracFpAdd = 0.22;
    p.fracFpMult = 0.16;
    p.fracFpDiv = 0.005;
    p.branchEasyFrac = 0.94;      // FP loops are very predictable
    p.loopBackProb = 0.55;
    p.loopTakenBias = 0.96;
    p.randomAccessFrac = 0.05;    // mostly unit-stride array sweeps
    p.chainedLoadFrac = 0.01;
    p.depLocality = 0.16;
    p.widthPoints = {{1, 0.22}, {4, 0.38}, {8, 0.55}, {12, 0.66},
                     {16, 0.75}, {32, 0.92}, {64, 1.0}};
    return p;
}

std::vector<BenchmarkProfile>
buildIntProfiles()
{
    std::vector<BenchmarkProfile> v;

    {   // bzip2: compression, narrow byte-oriented values, small WS.
        auto p = intBase("bzip2");
        p.widthPoints = {{1, 0.20}, {4, 0.38}, {8, 0.62}, {12, 0.74},
                         {16, 0.82}, {32, 0.96}, {64, 1.0}};
        p.workingSetBytes = 320 * 1024;
        p.branchEasyFrac = 0.85;
        p.depLocality = 0.13;
        p.paperIpc4 = 1.62; p.paperIpc8 = 1.67;
        p.randomAccessFrac = 0.03;
        v.push_back(p);
    }
    {   // crafty: chess bitboards -> wide 64-bit operands (paper's
        // worst case ~23% under 10 bits), cache friendly.
        auto p = intBase("crafty");
        p.widthPoints = {{1, 0.07}, {4, 0.11}, {8, 0.18}, {12, 0.27},
                         {16, 0.34}, {32, 0.52}, {48, 0.68},
                         {64, 1.0}};
        p.workingSetBytes = 192 * 1024;
        p.branchEasyFrac = 0.76;
        p.branchCorrelatedFrac = 0.60;
        p.depLocality = 0.20;
        p.paperIpc4 = 1.35; p.paperIpc8 = 1.40;
        p.randomAccessFrac = 0.05;
        v.push_back(p);
    }
    {   // eon: C++ ray tracer; some FP mixed in, very predictable.
        auto p = intBase("eon");
        p.fracFpAdd = 0.08;
        p.fracFpMult = 0.06;
        p.fracBranch = 0.11;
        p.widthPoints = {{1, 0.12}, {4, 0.22}, {8, 0.34}, {12, 0.44},
                         {16, 0.54}, {32, 0.82}, {64, 1.0}};
        p.fpFracZero = 0.30;
        p.workingSetBytes = 96 * 1024;
        p.branchEasyFrac = 0.93;
        p.depLocality = 0.10;
        p.paperIpc4 = 1.81; p.paperIpc8 = 2.11;
        p.randomAccessFrac = 0.02;
        v.push_back(p);
    }
    {   // gap: group theory, mixed widths, multiplies.
        auto p = intBase("gap");
        p.fracIntMult = 0.03;
        p.widthPoints = {{1, 0.18}, {4, 0.32}, {8, 0.48}, {12, 0.60},
                         {16, 0.70}, {32, 0.90}, {64, 1.0}};
        p.workingSetBytes = 384 * 1024;
        p.branchEasyFrac = 0.84;
        p.paperIpc4 = 1.55; p.paperIpc8 = 1.59;
        p.randomAccessFrac = 0.04;
        p.depLocality = 0.12;
        v.push_back(p);
    }
    {   // gcc: branchy, large code footprint, mid-narrow values.
        auto p = intBase("gcc");
        p.fracBranch = 0.20;
        p.widthPoints = {{1, 0.20}, {4, 0.33}, {8, 0.45}, {12, 0.55},
                         {16, 0.64}, {32, 0.88}, {64, 1.0}};
        p.workingSetBytes = 640 * 1024;
        p.branchEasyFrac = 0.76;
        p.branchCorrelatedFrac = 0.45;
        p.numFunctions = 24;
        p.blocksPerFunction = 20;
        p.paperIpc4 = 1.16; p.paperIpc8 = 1.23;
        p.randomAccessFrac = 0.08;
        p.depLocality = 0.18;
        v.push_back(p);
    }
    {   // gzip: compression; paper's best case (~82% under 10 bits).
        auto p = intBase("gzip");
        p.widthPoints = {{1, 0.30}, {4, 0.52}, {8, 0.74}, {12, 0.85},
                         {16, 0.90}, {32, 0.98}, {64, 1.0}};
        p.workingSetBytes = 256 * 1024;
        p.branchEasyFrac = 0.84;
        p.paperIpc4 = 1.51; p.paperIpc8 = 1.54;
        p.randomAccessFrac = 0.03;
        p.depLocality = 0.12;
        v.push_back(p);
    }
    {   // mcf: pointer-chasing over a graph far larger than L2.
        auto p = intBase("mcf");
        p.fracLoad = 0.32;
        p.widthPoints = {{1, 0.28}, {4, 0.48}, {8, 0.70}, {12, 0.82},
                         {16, 0.88}, {32, 0.97}, {64, 1.0}};
        p.workingSetBytes = 24ull * 1024 * 1024;
        p.randomAccessFrac = 0.50;
        p.chainedLoadFrac = 0.10;
        p.branchEasyFrac = 0.74;
        p.depLocality = 0.35;
        p.paperIpc4 = 0.36; p.paperIpc8 = 0.37;
        p.chainCount = 6;
        v.push_back(p);
    }
    {   // parser: dictionary lookups, hard branches, mid WS.
        auto p = intBase("parser");
        p.fracBranch = 0.19;
        p.widthPoints = {{1, 0.22}, {4, 0.36}, {8, 0.50}, {12, 0.60},
                         {16, 0.68}, {32, 0.90}, {64, 1.0}};
        p.workingSetBytes = 768 * 1024;
        p.randomAccessFrac = 0.08;
        p.chainedLoadFrac = 0.05;
        p.branchEasyFrac = 0.68;
        p.branchCorrelatedFrac = 0.40;
        p.paperIpc4 = 0.98; p.paperIpc8 = 1.00;
        p.depLocality = 0.18;
        v.push_back(p);
    }
    {   // perlbmk: interpreter dispatch, branchy, indirect-ish.
        auto p = intBase("perlbmk");
        p.fracBranch = 0.21;
        p.widthPoints = {{1, 0.16}, {4, 0.28}, {8, 0.42}, {12, 0.52},
                         {16, 0.62}, {32, 0.86}, {64, 1.0}};
        p.workingSetBytes = 512 * 1024;
        p.branchEasyFrac = 0.75;
        p.branchCorrelatedFrac = 0.50;
        p.numFunctions = 20;
        p.paperIpc4 = 1.15; p.paperIpc8 = 1.21;
        p.randomAccessFrac = 0.06;
        p.depLocality = 0.16;
        v.push_back(p);
    }
    {   // twolf: place & route; random-ish pointer access, mid WS.
        auto p = intBase("twolf");
        p.widthPoints = {{1, 0.18}, {4, 0.32}, {8, 0.48}, {12, 0.58},
                         {16, 0.68}, {32, 0.90}, {64, 1.0}};
        p.workingSetBytes = 512 * 1024;
        p.randomAccessFrac = 0.08;
        p.chainedLoadFrac = 0.04;
        p.branchEasyFrac = 0.72;
        p.paperIpc4 = 1.17; p.paperIpc8 = 1.22;
        p.depLocality = 0.18;
        v.push_back(p);
    }
    {   // vortex: OO database; stores-heavy, predictable branches.
        auto p = intBase("vortex");
        p.fracStore = 0.18;
        p.widthPoints = {{1, 0.15}, {4, 0.27}, {8, 0.42}, {12, 0.52},
                         {16, 0.62}, {32, 0.88}, {64, 1.0}};
        p.workingSetBytes = 384 * 1024;
        p.branchEasyFrac = 0.88;
        p.paperIpc4 = 1.40; p.paperIpc8 = 1.52;
        p.randomAccessFrac = 0.03;
        p.depLocality = 0.14;
        v.push_back(p);
    }
    {   // vpr (reduced input): small working set.
        auto p = intBase("vpr");
        p.widthPoints = {{1, 0.20}, {4, 0.34}, {8, 0.50}, {12, 0.60},
                         {16, 0.70}, {32, 0.92}, {64, 1.0}};
        p.workingSetBytes = 256 * 1024;
        p.branchEasyFrac = 0.76;
        p.paperIpc4 = 1.36; p.paperIpc8 = 1.42;
        p.randomAccessFrac = 0.07;
        p.depLocality = 0.18;
        v.push_back(p);
    }
    {   // vpr_ref: reference input; working set spills out of L2.
        auto p = intBase("vpr_ref");
        p.widthPoints = {{1, 0.20}, {4, 0.34}, {8, 0.50}, {12, 0.60},
                         {16, 0.70}, {32, 0.92}, {64, 1.0}};
        p.workingSetBytes = 6ull * 1024 * 1024;
        p.randomAccessFrac = 0.15;
        p.chainedLoadFrac = 0.08;
        p.branchEasyFrac = 0.72;
        p.paperIpc4 = 0.63; p.paperIpc8 = 0.64;
        p.depLocality = 0.26;
        p.chainCount = 3;
        v.push_back(p);
    }
    return v;
}

std::vector<BenchmarkProfile>
buildFpProfiles()
{
    std::vector<BenchmarkProfile> v;

    {   // ammp: molecular dynamics w/ pointer lists; paper IPC 0.06:
        // serialised memory-bound chains missing all the way out.
        auto p = fpBase("ammp");
        p.fracLoad = 0.34;
        p.workingSetBytes = 48ull * 1024 * 1024;
        p.randomAccessFrac = 0.85;
        p.chainedLoadFrac = 0.75;
        p.depLocality = 0.85;
        p.fpFracZero = 0.40;
        p.paperIpc4 = 0.06; p.paperIpc8 = 0.06;
        p.chainCount = 1;
        v.push_back(p);
    }
    {   // applu: dense solver, unit stride, high ILP.
        auto p = fpBase("applu");
        p.workingSetBytes = 1024 * 1024;
        p.fpFracZero = 0.45;
        p.depLocality = 0.07;
        p.paperIpc4 = 2.05; p.paperIpc8 = 2.20;
        p.randomAccessFrac = 0.02;
        v.push_back(p);
    }
    {   // apsi: meteorology; moderate WS and ILP.
        auto p = fpBase("apsi");
        p.workingSetBytes = 2048 * 1024;
        p.fpFracZero = 0.50;
        p.depLocality = 0.18;
        p.paperIpc4 = 1.37; p.paperIpc8 = 1.50;
        p.randomAccessFrac = 0.04;
        v.push_back(p);
    }
    {   // art: neural net over big arrays; memory bound.
        auto p = fpBase("art");
        p.fracLoad = 0.33;
        p.workingSetBytes = 16ull * 1024 * 1024;
        p.randomAccessFrac = 0.30;
        p.chainedLoadFrac = 0.12;
        p.depLocality = 0.40;
        p.fpFracZero = 0.86;     // paper best case: mostly zeroes
        p.paperIpc4 = 0.37; p.paperIpc8 = 0.38;
        p.chainCount = 3;
        v.push_back(p);
    }
    {   // equake: sparse matrix; high IPC in paper.
        auto p = fpBase("equake");
        p.workingSetBytes = 768 * 1024;
        p.fpFracZero = 0.55;
        p.depLocality = 0.06;
        p.paperIpc4 = 2.28; p.paperIpc8 = 2.38;
        p.randomAccessFrac = 0.02;
        v.push_back(p);
    }
    {   // facerec: image processing; moderate.
        auto p = fpBase("facerec");
        p.workingSetBytes = 2048 * 1024;
        p.fpFracZero = 0.45;
        p.depLocality = 0.18;
        p.paperIpc4 = 1.35; p.paperIpc8 = 1.41;
        p.randomAccessFrac = 0.04;
        v.push_back(p);
    }
    {   // fma3d: crash simulation; good ILP.
        auto p = fpBase("fma3d");
        p.workingSetBytes = 1024 * 1024;
        p.fpFracZero = 0.50;
        p.depLocality = 0.08;
        p.paperIpc4 = 1.91; p.paperIpc8 = 1.94;
        p.randomAccessFrac = 0.02;
        v.push_back(p);
    }
    {   // galgel: fluid dynamics; L2-thrashing working set.
        auto p = fpBase("galgel");
        p.workingSetBytes = 8ull * 1024 * 1024;
        p.randomAccessFrac = 0.12;
        p.chainedLoadFrac = 0.08;
        p.depLocality = 0.35;
        p.fpFracZero = 0.55;
        p.paperIpc4 = 0.65; p.paperIpc8 = 0.66;
        p.chainCount = 2;
        v.push_back(p);
    }
    {   // lucas: number theory FFT; very regular, high IPC.
        auto p = fpBase("lucas");
        p.workingSetBytes = 512 * 1024;
        p.fpFracZero = 0.60;
        p.depLocality = 0.05;
        p.paperIpc4 = 2.29; p.paperIpc8 = 2.43;
        p.randomAccessFrac = 0.02;
        v.push_back(p);
    }
    {   // mesa: software rendering; int/fp mix.
        auto p = fpBase("mesa");
        p.fracFpAdd = 0.14;
        p.fracFpMult = 0.10;
        p.fracBranch = 0.12;
        p.workingSetBytes = 512 * 1024;
        p.fpFracZero = 0.35;
        p.depLocality = 0.07;
        p.paperIpc4 = 1.97; p.paperIpc8 = 2.08;
        p.randomAccessFrac = 0.03;
        p.branchEasyFrac = 0.92;
        v.push_back(p);
    }
    {   // mgrid: multigrid stencil; regular strides.
        auto p = fpBase("mgrid");
        p.workingSetBytes = 3ull * 1024 * 1024;
        p.fpFracZero = 0.50;
        p.depLocality = 0.12;
        p.paperIpc4 = 1.54; p.paperIpc8 = 1.59;
        p.randomAccessFrac = 0.04;
        v.push_back(p);
    }
    {   // sixtrack: particle tracking; low zero fraction (paper's
        // worst FP inlining case).
        auto p = fpBase("sixtrack");
        p.workingSetBytes = 1024 * 1024;
        p.fpFracZero = 0.23;
        p.depLocality = 0.18;
        p.paperIpc4 = 1.38; p.paperIpc8 = 1.44;
        p.randomAccessFrac = 0.04;
        v.push_back(p);
    }
    {   // swim: shallow water stencil; streaming.
        auto p = fpBase("swim");
        p.workingSetBytes = 2048 * 1024;
        p.fpFracZero = 0.55;
        p.depLocality = 0.07;
        p.paperIpc4 = 1.86; p.paperIpc8 = 1.99;
        p.randomAccessFrac = 0.03;
        v.push_back(p);
    }
    {   // wupwise: lattice QCD; dense linear algebra.
        auto p = fpBase("wupwise");
        p.workingSetBytes = 1536 * 1024;
        p.fpFracZero = 0.45;
        p.depLocality = 0.07;
        p.paperIpc4 = 1.83; p.paperIpc8 = 1.86;
        p.randomAccessFrac = 0.03;
        v.push_back(p);
    }
    return v;
}

} // namespace

const std::vector<BenchmarkProfile> &
specIntProfiles()
{
    static const std::vector<BenchmarkProfile> v = buildIntProfiles();
    return v;
}

const std::vector<BenchmarkProfile> &
specFpProfiles()
{
    static const std::vector<BenchmarkProfile> v = buildFpProfiles();
    return v;
}

const std::vector<BenchmarkProfile> &
allProfiles()
{
    static const std::vector<BenchmarkProfile> v = [] {
        std::vector<BenchmarkProfile> all = specIntProfiles();
        const auto &fp = specFpProfiles();
        all.insert(all.end(), fp.begin(), fp.end());
        return all;
    }();
    return v;
}

const BenchmarkProfile &
profileByName(const std::string &name)
{
    for (const auto &p : allProfiles()) {
        if (p.name == name)
            return p;
    }
    // Thrown (not fatal()) so a parallel sweep can capture one bad
    // RunParams without killing the other runs in the batch.
    throw std::invalid_argument("unknown benchmark profile '" +
                                name + "'");
}

} // namespace pri::workload
