#include "walker.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/hashing.hh"
#include "common/logging.hh"

namespace pri::workload
{

namespace
{

// Independent hash salts, one per random decision.
constexpr uint64_t kSaltWidthSel = 0x77d1;
constexpr uint64_t kSaltWidthJit = 0x77d2;
constexpr uint64_t kSaltWidthNew = 0x77d3;
constexpr uint64_t kSaltMag = 0x77d4;
constexpr uint64_t kSaltNeg = 0x77d5;
constexpr uint64_t kSaltFpZero = 0xf901;
constexpr uint64_t kSaltFpExp = 0xf902;
constexpr uint64_t kSaltFpSig = 0xf903;
constexpr uint64_t kSaltFpSign = 0xf904;
constexpr uint64_t kSaltFpTriv = 0xf905;
constexpr uint64_t kSaltAddr = 0xadd1;
constexpr uint64_t kSaltAddrCold = 0xadd2;
constexpr uint64_t kSaltStreamSel = 0xadd3;

// Random streams have two-level locality: most accesses fall in a
// hot region (temporal reuse the DL1 can capture), a fixed fraction
// go cold anywhere in the working set. Real pointer-chasing codes
// show exactly this skew; without it any working set larger than
// the DL1 would miss on every access.
constexpr double kColdAccessFrac = 0.30;
constexpr uint64_t kHotRegionBytes = 8 * 1024;
constexpr uint64_t kSaltCorrSel = 0xbc01;
constexpr uint64_t kSaltCorrOut = 0xbc02;
constexpr uint64_t kSaltBias = 0xbc03;

// History bits used for correlated branch outcomes. Kept narrow
// (64 patterns per branch) so a 4k-entry gshare can learn the
// pattern tables without catastrophic aliasing.
constexpr uint64_t kHistMask = 0x3f;

} // namespace

Walker::Walker(const SyntheticProgram &program)
    : prog(program), seed(program.seed()), loc(program.entry())
{
}

uint64_t
Walker::genIntValue(const StaticInst &si, uint64_t g) const
{
    const auto &p = prog.profile();
    unsigned w;
    if (hashUniform(seed ^ kSaltWidthSel, si.id, g) < 0.7) {
        // Stay near this static instruction's width class.
        const int jit = static_cast<int>(
            hashRange(5, seed ^ kSaltWidthJit, si.id, g)) - 2;
        const int bw = static_cast<int>(si.widthClass) + jit;
        w = static_cast<unsigned>(std::clamp(bw, 1, 64));
    } else {
        // Fresh sample from the benchmark-wide CDF.
        w = prog.widthCdf().sample(
            hashUniform(seed ^ kSaltWidthNew, si.id, g));
    }

    if (w == 1) {
        // 1-bit two's complement: 0 or -1; zeroes dominate.
        return hashUniform(seed ^ kSaltNeg, si.id, g) < 0.05
            ? ~uint64_t{0} : 0;
    }
    const uint64_t base = uint64_t{1} << (w - 2);
    const uint64_t mag =
        base + hashRange(base, seed ^ kSaltMag, si.id, g);
    const bool neg =
        hashUniform(seed ^ kSaltNeg, si.id, g) < p.fracNegative;
    return neg ? static_cast<uint64_t>(-static_cast<int64_t>(mag) - 1)
               : mag;
}

uint64_t
Walker::genFpValue(const StaticInst &si, uint64_t g) const
{
    const auto &p = prog.profile();
    if (hashUniform(seed ^ kSaltFpZero, si.id, g) < p.fpFracZero)
        return 0; // +0.0: the inlineable case

    // A plausible non-zero normal double.
    const uint64_t exp = 1003 +
        hashRange(30, seed ^ kSaltFpExp, si.id, g); // [2^-20, 2^9]
    uint64_t sig;
    if (hashUniform(seed ^ kSaltFpTriv, si.id, g) <
            p.fpFracSigTrivialNonZero) {
        sig = 0; // integral power of two (1.0, 2.0, 0.5, ...)
    } else {
        sig = hashCombine(seed ^ kSaltFpSig, si.id, g) &
            ((uint64_t{1} << 52) - 1);
    }
    const uint64_t sign =
        hashUniform(seed ^ kSaltFpSign, si.id, g) < 0.3 ? 1 : 0;
    return (sign << 63) | (exp << 52) | sig;
}

uint64_t
Walker::genAddress(const StaticInst &si, uint64_t g) const
{
    PRI_ASSERT(si.memStream >= 0);
    int32_t stream = si.memStream;
    if (si.altStream >= 0 &&
        hashUniform(seed ^ kSaltStreamSel, si.id, g) <
            prog.profile().randomAccessFrac) {
        stream = si.altStream;
    }
    const MemStream &st = prog.streams()[stream];
    if (st.random) {
        const bool cold =
            hashUniform(seed ^ kSaltAddrCold, si.id, g) <
            kColdAccessFrac;
        const uint64_t span =
            cold ? st.bytes : std::min(st.bytes, kHotRegionBytes);
        return st.base +
            (hashRange(span >> 3, seed ^ kSaltAddr, si.id, g) << 3);
    }
    // Sequential-ish: the stream position advances one 8-byte word
    // every 16 dynamic instructions, so consecutive executions of a
    // static load reuse cache lines and the whole (small) buffer
    // stays DL1-resident. st.bytes is a power of two.
    return st.base + (((g >> 4) << 3) & (st.bytes - 1));
}

bool
Walker::branchOutcome(const StaticInst &si, uint64_t g) const
{
    const auto &p = prog.profile();
    if (si.correlatable) {
        const uint64_t h = hist & kHistMask;
        if (hashUniform(seed ^ kSaltCorrSel, si.id, h) <
                p.branchCorrelatedFrac) {
            // Outcome is a pure function of recent history:
            // learnable by the gshare component.
            return hashCombine(seed ^ kSaltCorrOut, si.id, h) & 1;
        }
    }
    return hashUniform(seed ^ kSaltBias, si.id, g) < si.bias;
}

uint64_t
Walker::currentPc() const
{
    return prog.block(loc.block).insts.at(loc.idx).pc;
}

WInst
Walker::next()
{
    PRI_ASSERT(!pending, "next() called with an unsteered branch");

    const BasicBlock &blk = prog.block(loc.block);
    const StaticInst &si = blk.insts.at(loc.idx);
    const uint64_t g = gidx++;

    WInst wi;
    wi.seq = seqCounter++;
    wi.staticId = si.id;
    wi.pc = si.pc;
    wi.cls = si.cls;
    wi.dst = si.dst;
    wi.src1 = si.src1;
    wi.src2 = si.src2;

    if (wi.hasDst()) {
        if (si.isDeadHint) {
            wi.resultValue = 0; // load-immediate of a narrow value
        } else {
            wi.resultValue = wi.dst.cls == isa::RegClass::Fp
                ? genFpValue(si, g) : genIntValue(si, g);
        }
    }
    if (si.memStream >= 0)
        wi.memAddr = genAddress(si, g);

    if (si.cls == isa::OpClass::Branch) {
        wi.isCall = si.isCall;
        wi.isReturn = si.isReturn;
        wi.isUncond = si.isUncond;
        wi.fallThrough = prog.block(blk.fallthrough).startPc;
        if (si.isReturn) {
            wi.taken = true;
            wi.actualTarget = stack.empty()
                ? prog.block(prog.entry().block).startPc
                : prog.block(stack.back().block).startPc;
        } else if (si.isUncond) {
            wi.taken = true;
            wi.actualTarget = prog.block(si.takenBlock).startPc;
        } else {
            wi.taken = branchOutcome(si, g);
            wi.actualTarget = prog.block(si.takenBlock).startPc;
        }
        pending = true;
        return wi;
    }

    // Advance within the block / fall through to the successor.
    if (++loc.idx >= blk.insts.size())
        loc = ProgLoc{blk.fallthrough, 0};
    return wi;
}

void
Walker::steer(const WInst &branch, bool taken, uint64_t target_pc)
{
    PRI_ASSERT(pending, "steer() without a pending branch");
    pending = false;

    if (!branch.isUncond)
        hist = (hist << 1) | (taken ? 1 : 0);

    const BasicBlock &blk = prog.block(loc.block);
    if (branch.isCall) {
        // Return address: the fall-through block.
        stack.push_back(ProgLoc{blk.fallthrough, 0});
    } else if (branch.isReturn) {
        if (!stack.empty())
            stack.pop_back();
    }

    if (taken)
        loc = prog.locateBlockStart(target_pc);
    else
        loc = ProgLoc{blk.fallthrough, 0};
}

WalkerCkpt
Walker::checkpoint() const
{
    PRI_ASSERT(pending,
               "walker checkpoints are taken at pending branches");
    return WalkerCkpt{loc, stack, gidx, hist};
}

void
Walker::checkpointInto(WalkerCkpt &out) const
{
    PRI_ASSERT(pending,
               "walker checkpoints are taken at pending branches");
    out.loc = loc;
    out.stack.assign(stack.begin(), stack.end());
    out.gidx = gidx;
    out.hist = hist;
}

void
Walker::restore(const WalkerCkpt &ckpt)
{
    loc = ckpt.loc;
    stack.assign(ckpt.stack.begin(), ckpt.stack.end());
    gidx = ckpt.gidx;
    hist = ckpt.hist;
    // The branch at `loc` has already been generated; the core must
    // immediately steer() it down the actual path.
    pending = true;
}

} // namespace pri::workload
