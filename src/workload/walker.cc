#include "walker.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/hashing.hh"
#include "common/logging.hh"
#include "workload/gen_params.hh"
#include "workload/replay_tape.hh"
#include "workload/trace/trace_cache.hh"

namespace pri::workload
{

using namespace genp;

Walker::Walker(const SyntheticProgram &program,
               const trace::ProgramTraces *traces,
               const ReplayTape *tape)
    : prog(program), seed(program.seed()), loc(program.entry()),
      tr(traces),
      cur(traces != nullptr ? traces->blockOps(loc.block) + loc.idx
                            : nullptr),
      tape_(tape)
{
    PRI_ASSERT(traces == nullptr ||
                   traces->fingerprint() ==
                       trace::programFingerprint(program),
               "walker given traces compiled from another program");
    PRI_ASSERT(tape == nullptr || traces != nullptr,
               "tape replay requires the traced walker");
}

Walker::~Walker()
{
    if (nReplayed != 0 || nLegacyDecoded != 0) {
        trace::TraceCache::global().noteWalkerOps(nReplayed,
                                                  nLegacyDecoded);
    }
}

uint64_t
Walker::genIntValue(const StaticInst &si, uint64_t g) const
{
    const auto &p = prog.profile();
    unsigned w;
    if (hashUniform(seed ^ kSaltWidthSel, si.id, g) <
        kWidthStaySelFrac) {
        // Stay near this static instruction's width class.
        const int jit = static_cast<int>(
            hashRange(5, seed ^ kSaltWidthJit, si.id, g)) - 2;
        const int bw = static_cast<int>(si.widthClass) + jit;
        w = static_cast<unsigned>(std::clamp(bw, 1, 64));
    } else {
        // Fresh sample from the benchmark-wide CDF.
        w = prog.widthCdf().sample(
            hashUniform(seed ^ kSaltWidthNew, si.id, g));
    }

    if (w == 1) {
        // 1-bit two's complement: 0 or -1; zeroes dominate.
        return hashUniform(seed ^ kSaltNeg, si.id, g) < kOneBitNegFrac
            ? ~uint64_t{0} : 0;
    }
    const uint64_t base = uint64_t{1} << (w - 2);
    const uint64_t mag =
        base + hashRange(base, seed ^ kSaltMag, si.id, g);
    const bool neg =
        hashUniform(seed ^ kSaltNeg, si.id, g) < p.fracNegative;
    return neg ? static_cast<uint64_t>(-static_cast<int64_t>(mag) - 1)
               : mag;
}

uint64_t
Walker::genFpValue(const StaticInst &si, uint64_t g) const
{
    const auto &p = prog.profile();
    if (hashUniform(seed ^ kSaltFpZero, si.id, g) < p.fpFracZero)
        return 0; // +0.0: the inlineable case

    // A plausible non-zero normal double.
    const uint64_t exp = kFpExpBase +
        hashRange(kFpExpRange, seed ^ kSaltFpExp, si.id, g);
    uint64_t sig;
    if (hashUniform(seed ^ kSaltFpTriv, si.id, g) <
            p.fpFracSigTrivialNonZero) {
        sig = 0; // integral power of two (1.0, 2.0, 0.5, ...)
    } else {
        sig = hashCombine(seed ^ kSaltFpSig, si.id, g) &
            ((uint64_t{1} << 52) - 1);
    }
    const uint64_t sign =
        hashUniform(seed ^ kSaltFpSign, si.id, g) < kFpSignNegFrac
            ? 1 : 0;
    return (sign << 63) | (exp << 52) | sig;
}

uint64_t
Walker::genAddress(const StaticInst &si, uint64_t g) const
{
    PRI_ASSERT(si.memStream >= 0);
    int32_t stream = si.memStream;
    if (si.altStream >= 0 &&
        hashUniform(seed ^ kSaltStreamSel, si.id, g) <
            prog.profile().randomAccessFrac) {
        stream = si.altStream;
    }
    const MemStream &st = prog.streams()[stream];
    if (st.random) {
        const bool cold =
            hashUniform(seed ^ kSaltAddrCold, si.id, g) <
            kColdAccessFrac;
        const uint64_t span =
            cold ? st.bytes : std::min(st.bytes, kHotRegionBytes);
        return st.base +
            (hashRange(span >> 3, seed ^ kSaltAddr, si.id, g) << 3);
    }
    // Sequential-ish: the stream position advances one 8-byte word
    // every 16 dynamic instructions, so consecutive executions of a
    // static load reuse cache lines and the whole (small) buffer
    // stays DL1-resident. st.bytes is a power of two.
    return st.base + (((g >> 4) << 3) & (st.bytes - 1));
}

bool
Walker::branchOutcome(const StaticInst &si, uint64_t g) const
{
    const auto &p = prog.profile();
    if (si.correlatable) {
        const uint64_t h = hist & kHistMask;
        if (hashUniform(seed ^ kSaltCorrSel, si.id, h) <
                p.branchCorrelatedFrac) {
            // Outcome is a pure function of recent history:
            // learnable by the gshare component.
            return hashCombine(seed ^ kSaltCorrOut, si.id, h) & 1;
        }
    }
    return hashUniform(seed ^ kSaltBias, si.id, g) < si.bias;
}

// --- pre-folded replay generators -------------------------------
// Each is the fold of its legacy twin above: identical draws in the
// same order, with the (seed, salt, id) rounds baked into the
// MicroOp prefixes (gen_params.hh pins the folding identity).

uint64_t
Walker::replayIntValue(const trace::MicroOp &op, uint64_t g) const
{
    unsigned w;
    if (foldUniform(op.preWidthSel, g) < kWidthStaySelFrac) {
        const int jit =
            static_cast<int>(foldRange(5, op.preWidthJit, g)) - 2;
        const int bw = static_cast<int>(op.widthClass) + jit;
        w = static_cast<unsigned>(std::clamp(bw, 1, 64));
    } else {
        w = prog.widthCdf().sample(foldUniform(op.preWidthNew, g));
    }

    if (w == 1) {
        return foldUniform(op.preNeg, g) < kOneBitNegFrac
            ? ~uint64_t{0} : 0;
    }
    const uint64_t base = uint64_t{1} << (w - 2);
    const uint64_t mag = base + foldRange(base, op.preMag, g);
    const bool neg = foldUniform(op.preNeg, g) < tr->fracNegative;
    return neg ? static_cast<uint64_t>(-static_cast<int64_t>(mag) - 1)
               : mag;
}

uint64_t
Walker::replayFpValue(const trace::MicroOp &op, uint64_t g) const
{
    if (foldUniform(op.preFpZero, g) < tr->fpFracZero)
        return 0;

    const uint64_t exp =
        kFpExpBase + foldRange(kFpExpRange, op.preFpExp, g);
    uint64_t sig;
    if (foldUniform(op.preFpTriv, g) < tr->fpFracSigTrivialNonZero) {
        sig = 0;
    } else {
        sig = foldHash(op.preFpSig, g) & ((uint64_t{1} << 52) - 1);
    }
    const uint64_t sign =
        foldUniform(op.preFpSign, g) < kFpSignNegFrac ? 1 : 0;
    return (sign << 63) | (exp << 52) | sig;
}

uint64_t
Walker::replayAddress(const trace::MicroOp &op, uint64_t g) const
{
    const trace::TraceStream *st = &tr->streams()[op.stream];
    if (op.altStream != trace::kNoStream &&
        foldUniform(op.preStreamSel, g) < tr->randomAccessFrac) {
        st = &tr->streams()[op.altStream];
    }
    if (st->random) {
        const uint64_t words =
            foldUniform(op.preAddrCold, g) < kColdAccessFrac
                ? st->coldWords : st->hotWords;
        return st->base + (foldRange(words, op.preAddr, g) << 3);
    }
    return st->base + (((g >> 4) << 3) & st->seqMask);
}

bool
Walker::replayBranchOutcome(const trace::MicroOp &op,
                            uint64_t g) const
{
    if ((op.flags & trace::kFlagCorrelatable) != 0) {
        const uint64_t h = hist & kHistMask;
        if (foldUniform(op.preCorrSel, h) < tr->branchCorrelatedFrac)
            return foldHash(op.preCorrOut, h) & 1;
    }
    return foldUniform(op.preBias, g) < op.bias;
}

WInst
Walker::next()
{
    if (cur != nullptr) {
        if (tape_ != nullptr && onPath_ && gidx < tape_->size())
            return nextFromTape();
        return nextTraced();
    }

    PRI_ASSERT(!pending, "next() called with an unsteered branch");
    ++nLegacyDecoded;

    const BasicBlock &blk = prog.block(loc.block);
    const StaticInst &si = blk.insts.at(loc.idx);
    const uint64_t g = gidx++;

    WInst wi;
    wi.seq = seqCounter++;
    wi.staticId = si.id;
    wi.pc = si.pc;
    wi.cls = si.cls;
    wi.dst = si.dst;
    wi.src1 = si.src1;
    wi.src2 = si.src2;

    if (wi.hasDst()) {
        if (si.isDeadHint) {
            wi.resultValue = 0; // load-immediate of a narrow value
        } else {
            wi.resultValue = wi.dst.cls == isa::RegClass::Fp
                ? genFpValue(si, g) : genIntValue(si, g);
        }
    }
    if (si.memStream >= 0)
        wi.memAddr = genAddress(si, g);

    if (si.cls == isa::OpClass::Branch) {
        wi.isCall = si.isCall;
        wi.isReturn = si.isReturn;
        wi.isUncond = si.isUncond;
        wi.fallThrough = prog.block(blk.fallthrough).startPc;
        if (si.isReturn) {
            wi.taken = true;
            wi.actualTarget = stack.empty()
                ? prog.block(prog.entry().block).startPc
                : prog.block(stack.back().block).startPc;
        } else if (si.isUncond) {
            wi.taken = true;
            wi.actualTarget = prog.block(si.takenBlock).startPc;
        } else {
            wi.taken = branchOutcome(si, g);
            wi.actualTarget = prog.block(si.takenBlock).startPc;
        }
        pending = true;
        return wi;
    }

    // Advance within the block / fall through to the successor.
    if (++loc.idx >= blk.insts.size())
        loc = ProgLoc{blk.fallthrough, 0};
    return wi;
}

WInst
Walker::nextFromTape()
{
    PRI_ASSERT(!pending, "next() called with an unsteered branch");
    ++nReplayed;

    // On the committed path (loc, stack, gidx, hist) match the tape
    // walker at this gidx, so the pre-built entry *is* what live
    // generation would produce; copy it and adopt the recorded
    // post-fetch position. seq alone is lane-local: it counts
    // wrong-path fetches too and never rolls back.
    const ReplayTape::Entry &e = tape_->entry(gidx);
    ++gidx;
    WInst wi = e.wi;
    wi.seq = seqCounter++;
    loc = e.nextLoc;
    cur = e.nextCur;
    pending = e.isBranch;
    return wi;
}

WInst
Walker::nextTraced()
{
    PRI_ASSERT(!pending, "next() called with an unsteered branch");
    ++nReplayed;

    const trace::MicroOp &op = *cur;
    const uint64_t g = gidx++;

    WInst wi;
    wi.seq = seqCounter++;
    wi.staticId = op.staticId;
    wi.pc = op.pc;
    wi.cls = op.cls;
    wi.dst = op.dst;
    wi.src1 = op.src1;
    wi.src2 = op.src2;

    switch (op.kind) {
      case trace::OpKind::IntDst:
        wi.resultValue = replayIntValue(op, g);
        break;
      case trace::OpKind::FpDst:
        wi.resultValue = replayFpValue(op, g);
        break;
      case trace::OpKind::ZeroDst:
      case trace::OpKind::NoDst:
        break;
      case trace::OpKind::LoadInt:
        wi.resultValue = replayIntValue(op, g);
        wi.memAddr = replayAddress(op, g);
        break;
      case trace::OpKind::LoadFp:
        wi.resultValue = replayFpValue(op, g);
        wi.memAddr = replayAddress(op, g);
        break;
      case trace::OpKind::Store:
        wi.memAddr = replayAddress(op, g);
        break;
      case trace::OpKind::BranchCond:
      case trace::OpKind::BranchJmp:
      case trace::OpKind::BranchRet:
        wi.isCall = (op.flags & trace::kFlagCall) != 0;
        wi.isReturn = (op.flags & trace::kFlagReturn) != 0;
        wi.isUncond = (op.flags & trace::kFlagUncond) != 0;
        wi.fallThrough = op.fallThroughPc;
        if (op.kind == trace::OpKind::BranchRet) {
            wi.taken = true;
            wi.actualTarget = stack.empty()
                ? tr->entryPc()
                : tr->startPc(stack.back().block);
        } else if (op.kind == trace::OpKind::BranchJmp) {
            wi.taken = true;
            wi.actualTarget = op.takenTargetPc;
        } else {
            wi.taken = replayBranchOutcome(op, g);
            wi.actualTarget = op.takenTargetPc;
        }
        pending = true;
        return wi;
    }

    // Advance within the block / fall through to the successor.
    if ((op.flags & trace::kFlagLast) != 0) {
        loc = ProgLoc{op.fallthroughBlock, 0};
        cur = tr->blockOps(op.fallthroughBlock);
    } else {
        ++loc.idx;
        ++cur;
    }
    return wi;
}

void
Walker::steer(const WInst &branch, bool taken, uint64_t target_pc)
{
    PRI_ASSERT(pending, "steer() without a pending branch");
    pending = false;

    // Committed-path tracking: fetching the actual direction (and,
    // when taken, the actual target) keeps the walker on the tape;
    // any other steer leaves it until a checkpoint restore returns
    // to an on-path branch.
    if (onPath_) {
        onPath_ = taken == branch.taken &&
            (!taken || target_pc == branch.actualTarget);
    }

    if (!branch.isUncond)
        hist = (hist << 1) | (taken ? 1 : 0);

    if (cur != nullptr) {
        // Traced fast path: the branch's successors were resolved at
        // compile time; only foreign targets (wrong-path steers to
        // some other block's start, e.g. under fault injection) fall
        // back to the PC map. Identical state updates to the legacy
        // path below.
        const trace::MicroOp &op = *cur;
        if (branch.isCall) {
            stack.push_back(ProgLoc{op.fallthroughBlock, 0});
        } else if (branch.isReturn && !stack.empty()) {
            const ProgLoc ret = stack.back();
            stack.pop_back();
            if (taken && target_pc == tr->startPc(ret.block)) {
                loc = ret; // pushed as {block, 0}
                cur = tr->blockOps(ret.block);
                return;
            }
        }
        if (!taken)
            loc = ProgLoc{op.fallthroughBlock, 0};
        else if (target_pc == op.takenTargetPc &&
                 op.takenBlock != kNoBlock)
            loc = ProgLoc{op.takenBlock, 0};
        else
            loc = prog.locateBlockStart(target_pc);
        cur = tr->blockOps(loc.block) + loc.idx;
        return;
    }

    const BasicBlock &blk = prog.block(loc.block);
    if (branch.isCall) {
        // Return address: the fall-through block.
        stack.push_back(ProgLoc{blk.fallthrough, 0});
    } else if (branch.isReturn) {
        if (!stack.empty())
            stack.pop_back();
    }

    if (taken)
        loc = prog.locateBlockStart(target_pc);
    else
        loc = ProgLoc{blk.fallthrough, 0};
}

WalkerCkpt
Walker::checkpoint() const
{
    PRI_ASSERT(pending,
               "walker checkpoints are taken at pending branches");
    return WalkerCkpt{loc, stack, gidx, hist, onPath_};
}

void
Walker::checkpointInto(WalkerCkpt &out) const
{
    PRI_ASSERT(pending,
               "walker checkpoints are taken at pending branches");
    out.loc = loc;
    out.stack.assign(stack.begin(), stack.end());
    out.gidx = gidx;
    out.hist = hist;
    out.onPath = onPath_;
}

void
Walker::restore(const WalkerCkpt &ckpt)
{
    loc = ckpt.loc;
    stack.assign(ckpt.stack.begin(), ckpt.stack.end());
    gidx = ckpt.gidx;
    hist = ckpt.hist;
    onPath_ = ckpt.onPath;
    if (tr != nullptr)
        cur = tr->blockOps(loc.block) + loc.idx;
    // The branch at `loc` has already been generated; the core must
    // immediately steer() it down the actual path.
    pending = true;
}

} // namespace pri::workload
