/**
 * @file
 * Benchmark profiles: the per-benchmark parameter sets that make the
 * synthetic workloads SPEC2000-like (DESIGN.md §5 substitution).
 *
 * Each profile controls instruction mix, operand significance (the
 * property PRI exploits, calibrated to paper Figure 2), branch
 * predictability, memory working sets, and dependence structure
 * (which together set the base IPC near paper Table 2).
 */

#ifndef PRI_WORKLOAD_PROFILE_HH
#define PRI_WORKLOAD_PROFILE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace pri::workload
{

/** Which SPEC2000 suite a profile imitates. */
enum class Suite
{
    Int,
    Fp,
};

/**
 * Control points of the integer operand-significance CDF:
 * (bits, cumulative fraction of operands representable in <= bits).
 * The full 64-entry CDF is produced by linear interpolation.
 */
using WidthPoints = std::vector<std::pair<unsigned, double>>;

/** All knobs describing one SPEC2000-like benchmark. */
struct BenchmarkProfile
{
    std::string name;
    Suite suite = Suite::Int;

    // ---- instruction mix (fractions of the dynamic stream; the
    //      remainder after all classes is IntAlu) ----
    double fracLoad = 0.25;
    double fracStore = 0.12;
    double fracBranch = 0.16;
    double fracIntMult = 0.01;
    double fracIntDiv = 0.001;
    double fracFpAdd = 0.0;
    double fracFpMult = 0.0;
    double fracFpDiv = 0.0;

    // ---- operand significance ----
    /** Integer result-width CDF control points. */
    WidthPoints widthPoints;
    /** Probability a generated integer value is negative. */
    double fracNegative = 0.12;
    /** Fraction of FP values that are exactly all-zero (inlineable). */
    double fpFracZero = 0.45;
    /** Of the non-zero FP values, fraction with trivial significand
     *  (e.g. small integral constants like 1.0, 2.0). */
    double fpFracSigTrivialNonZero = 0.15;

    // ---- branch behaviour ----
    /** Fraction of static conditional branches that are strongly
     *  biased (easy for bimodal). */
    double branchEasyFrac = 0.75;
    /** Fraction of hard-branch instances whose outcome is a pure
     *  function of recent global history (learnable by gshare). */
    double branchCorrelatedFrac = 0.55;
    /** Probability a conditional terminator is a loop back-edge. */
    double loopBackProb = 0.35;
    /** Mean loop trip bias for back edges (taken probability). */
    double loopTakenBias = 0.93;

    // ---- memory behaviour ----
    /** Data working-set size in bytes (drives DL1/L2/memory misses). */
    uint64_t workingSetBytes = 256 * 1024;
    /** Fraction of memory streams with random (vs strided) access. */
    double randomAccessFrac = 0.3;
    /** Fraction of loads that feed another load's address
     *  (pointer-chasing; serialises execution). */
    double chainedLoadFrac = 0.05;
    /** Number of independent pointer-chase chains per function;
     *  more chains = more memory-level parallelism. */
    unsigned chainCount = 2;

    // ---- dependence / ILP structure ----
    /** Probability a source register is one of the most recently
     *  written registers (short dependence chains). */
    double depLocality = 0.45;
    /** Window of recent destinations considered "recent". */
    unsigned depWindow = 4;

    // ---- software dead-value hints (paper §6 future work) ----
    /** Probability that a basic block ends with a compiler-inserted
     *  "load-immediate 0" to a dead register. With PRI, the zero
     *  inlines into the map and the dead register is freed without
     *  any ISA change (the paper's binary-compatible liveness
     *  communication). Zero for all SPEC-like profiles. */
    double deadHintFrac = 0.0;

    // ---- program shape ----
    unsigned numFunctions = 16;
    unsigned blocksPerFunction = 20;
    // Mean basic-block body length is derived from fracBranch:
    // (1 - fracBranch) / fracBranch non-branch instructions per block.

    // ---- base IPC the paper reports (for EXPERIMENTS.md only) ----
    double paperIpc4 = 0.0;
    double paperIpc8 = 0.0;
};

/** Dense 1..64-bit cumulative width distribution. */
class WidthCdf
{
  public:
    WidthCdf() = default;
    /** Build the dense CDF from control points. */
    explicit WidthCdf(const WidthPoints &points);

    /** Cumulative fraction of operands with <= bits significance. */
    double at(unsigned bits) const;

    /** Inverse transform: map u in [0,1) to a bit width 1..64. */
    unsigned sample(double u) const;

  private:
    std::array<double, 65> cdf{}; // index by bits, [1..64]
};

/** All SPEC2000-like integer benchmark profiles (13, incl. vpr_ref). */
const std::vector<BenchmarkProfile> &specIntProfiles();

/** All SPEC2000-like floating-point benchmark profiles (14). */
const std::vector<BenchmarkProfile> &specFpProfiles();

/** Both suites concatenated. */
const std::vector<BenchmarkProfile> &allProfiles();

/** Look up a profile by name; throws std::invalid_argument if
 *  unknown (catchable, so parallel sweeps can capture it). */
const BenchmarkProfile &profileByName(const std::string &name);

} // namespace pri::workload

#endif // PRI_WORKLOAD_PROFILE_HH
