/**
 * @file
 * The dynamic instruction record produced by the workload walker and
 * consumed by the timing core. This is the ISA-level view of one
 * dynamic instruction: operation class, logical operands, produced
 * value, memory address, and branch semantics. All microarchitectural
 * state (physical registers, timestamps) lives in the core's ROB
 * entry, not here.
 */

#ifndef PRI_WORKLOAD_WINST_HH
#define PRI_WORKLOAD_WINST_HH

#include <cstdint>

#include "isa/op_class.hh"
#include "isa/reg.hh"

namespace pri::workload
{

/** One dynamic instruction from the synthetic instruction stream. */
struct WInst
{
    /** Global fetch sequence number assigned by the walker. */
    uint64_t seq = 0;
    /** Index of the static instruction this instance came from. */
    uint32_t staticId = 0;
    /** Program counter of the static instruction. */
    uint64_t pc = 0;

    isa::OpClass cls = isa::OpClass::Nop;
    isa::RegId dst = isa::noReg();
    isa::RegId src1 = isa::noReg();
    isa::RegId src2 = isa::noReg();

    /** Architectural result value (raw bits for FP). */
    uint64_t resultValue = 0;

    /** Effective address for loads/stores (8-byte accesses). */
    uint64_t memAddr = 0;

    // --- branch semantics (valid when cls == Branch) ---
    bool taken = false;        ///< actual direction
    uint64_t actualTarget = 0; ///< actual taken-path target PC
    uint64_t fallThrough = 0;  ///< not-taken successor PC
    bool isCall = false;
    bool isReturn = false;
    bool isUncond = false;     ///< unconditional (incl. call/return)

    bool hasDst() const { return dst.valid(); }
    bool isBranch() const { return isa::isBranch(cls); }
    bool isLoad() const { return isa::isLoad(cls); }
    bool isStore() const { return isa::isStore(cls); }
};

} // namespace pri::workload

#endif // PRI_WORKLOAD_WINST_HH
