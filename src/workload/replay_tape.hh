/**
 * @file
 * ReplayTape: the committed-path instruction stream of one program,
 * generated once and shared read-only by every lane of a SweepBatch
 * (DESIGN.md §14).
 *
 * The committed path is timing-independent (DESIGN.md §5): every
 * config point of the same (program, seed) fetches the identical
 * sequence of correctly-steered instructions, differing only in how
 * far it speculates down wrong paths and when it rolls back. The
 * tape exploits that: an always-correctly-steered walker is run once
 * per batch, recording for each dynamic index g the generated WInst
 * plus the walker's post-fetch position, and each lane that is still
 * on the committed path replays entry g with a copy and a pointer
 * bump instead of re-deriving values, addresses, and branch outcomes
 * from the hash generators. Off the committed path (after steering a
 * mispredicted direction) a lane falls back to live generation until
 * a checkpoint restore returns it to an on-path state; past the end
 * of the tape it also falls back, so tape length is a performance
 * knob, never a correctness one.
 *
 * The per-lane `seq` field is the one WInst field that is *not*
 * shared: it counts every fetch including wrong-path fetches and is
 * never rolled back, so each lane stamps its own.
 */

#ifndef PRI_WORKLOAD_REPLAY_TAPE_HH
#define PRI_WORKLOAD_REPLAY_TAPE_HH

#include <cstdint>
#include <vector>

#include "workload/program.hh"
#include "workload/winst.hh"

namespace pri::workload
{

namespace trace
{
class ProgramTraces;
struct MicroOp;
} // namespace trace

class ReplayTape
{
  public:
    /** One committed-path dynamic instruction, plus the walker state
     *  a lane needs to continue without touching the generators. */
    struct Entry
    {
        WInst wi;
        /** Walker position after next() returns entry g (for a
         *  branch: the branch's own location, pre-steer). */
        ProgLoc nextLoc;
        /** MicroOp at nextLoc (traced replay pointer). */
        const trace::MicroOp *nextCur = nullptr;
        /** Entry is a branch: the lane's walker pauses pending a
         *  steer, exactly as live generation would. */
        bool isBranch = false;
    };

    /**
     * Record @p length committed-path instructions of @p program by
     * running a fresh walker steered down every actual outcome.
     * @p traces must be the compiled form of @p program and outlive
     * the tape (lane walkers chase its MicroOp pointers).
     */
    ReplayTape(const SyntheticProgram &program,
               const trace::ProgramTraces *traces, uint64_t length);

    uint64_t size() const { return entries.size(); }

    const Entry &
    entry(uint64_t g) const
    {
        return entries[g];
    }

    /** Resident bytes (diagnostics). */
    uint64_t
    tapeBytes() const
    {
        return entries.size() * sizeof(Entry);
    }

  private:
    std::vector<Entry> entries;
};

} // namespace pri::workload

#endif // PRI_WORKLOAD_REPLAY_TAPE_HH
