#include "replay_tape.hh"

#include "common/logging.hh"
#include "workload/trace/trace_cache.hh"
#include "workload/walker.hh"

namespace pri::workload
{

ReplayTape::ReplayTape(const SyntheticProgram &program,
                       const trace::ProgramTraces *traces,
                       uint64_t length)
{
    PRI_ASSERT(traces != nullptr,
               "the tape records traced-walker positions");
    Walker w(program, traces);
    entries.reserve(length);
    for (uint64_t g = 0; g < length; ++g) {
        Entry e;
        e.wi = w.next();
        e.isBranch = w.branchPending();
        // Position *before* any steer: a lane replaying a branch
        // entry must land paused at the branch, like live next().
        e.nextLoc = w.location();
        e.nextCur = w.currentOp();
        if (e.isBranch)
            w.steer(e.wi, e.wi.taken, e.wi.actualTarget);
        entries.push_back(e);
    }
}

} // namespace pri::workload
