#include "program.hh"

#include <algorithm>
#include <array>
#include <deque>

#include "common/bitutils.hh"
#include "common/hashing.hh"
#include "common/logging.hh"

namespace pri::workload
{

namespace
{

constexpr uint64_t kCodeBase = 0x10000;
constexpr uint64_t kRandomHeapBase = 0x10000000;
constexpr uint64_t kHotHeapBase = 0x20000000;

/** Clamp a double into [lo, hi]. */
double
clampd(double v, double lo, double hi)
{
    return std::min(hi, std::max(lo, v));
}

} // namespace

SyntheticProgram::SyntheticProgram(const BenchmarkProfile &profile,
                                   uint64_t seed)
    : prof(profile), theSeed(seed), cdf(profile.widthPoints)
{
    SplitMixRng rng(splitMix64(seed ^ 0xb10c5));
    buildStreams();
    buildFunctions(rng);
}

void
SyntheticProgram::buildStreams()
{
    // Random streams share the same big heap region, mimicking
    // pointer-chasing over one large data structure; hot streams are
    // small disjoint power-of-two buffers that fit in the DL1.
    const unsigned num_random = std::max(2u, prof.numFunctions / 2);
    const unsigned num_hot = std::max(4u, prof.numFunctions);

    for (unsigned i = 0; i < num_random; ++i) {
        MemStream s;
        s.base = kRandomHeapBase;
        s.bytes = std::max<uint64_t>(prof.workingSetBytes, 4096);
        s.random = true;
        streams_.push_back(s);
    }
    for (unsigned i = 0; i < num_hot; ++i) {
        MemStream s;
        // Stagger bases so distinct streams land in distinct cache
        // sets (1MB-aligned bases would alias the same DL1 indices).
        s.base = kHotHeapBase + uint64_t{i} * ((1 << 20) + 1040);
        s.bytes = 512; // small enough that every stream stays DL1-resident
        s.random = false;
        streams_.push_back(s);
    }
}

void
SyntheticProgram::buildFunctions(SplitMixRng &rng)
{
    const unsigned num_funcs = prof.numFunctions;
    const unsigned bpf = prof.blocksPerFunction;
    const double body_mean =
        (1.0 - prof.fracBranch) / std::max(prof.fracBranch, 0.02);

    // Conditional class probabilities for block bodies (branches are
    // terminators, so renormalise the rest of the mix).
    const double non_br = 1.0 - prof.fracBranch;
    const double p_load = prof.fracLoad / non_br;
    const double p_store = prof.fracStore / non_br;
    const double p_imul = prof.fracIntMult / non_br;
    const double p_idiv = prof.fracIntDiv / non_br;
    const double p_fadd = prof.fracFpAdd / non_br;
    const double p_fmul = prof.fracFpMult / non_br;
    const double p_fdiv = prof.fracFpDiv / non_br;

    const unsigned num_random =
        std::max(2u, prof.numFunctions / 2);
    const unsigned num_hot = std::max(4u, prof.numFunctions);

    funcEntry.resize(num_funcs);
    for (unsigned f = 0; f < num_funcs; ++f)
        funcEntry[f] = f * bpf;

    uint64_t pc = kCodeBase;
    uint32_t inst_id = 0;
    blocks_.reserve(size_t{num_funcs} * bpf);

    for (unsigned f = 0; f < num_funcs; ++f) {
        // Per-function generation state.
        std::deque<uint8_t> recent_int;
        std::deque<uint8_t> recent_fp;
        // Dedicated pointer registers for loop-carried load chains.
        // Several independent chains expose memory-level
        // parallelism; a single chain serialises (ammp-style).
        const unsigned n_chain =
            std::max(1u, std::min(8u, prof.chainCount));
        std::array<uint8_t, 8> chain_regs{};
        for (unsigned i = 0; i < n_chain; ++i)
            chain_regs[i] = static_cast<uint8_t>(24 + i);
        auto is_chain_reg = [&](uint8_t r) {
            for (unsigned i = 0; i < n_chain; ++i)
                if (chain_regs[i] == r)
                    return true;
            return false;
        };
        // This function's preferred streams.
        const uint32_t chase_stream =
            static_cast<uint32_t>(rng.nextRange(num_random));
        const uint32_t hot_stream = static_cast<uint32_t>(
            num_random + rng.nextRange(num_hot));

        // Compiled code recycles a small set of temporaries rapidly;
        // bias destination selection toward per-function "hot"
        // registers so write-after-write reuse distances match real
        // programs (this is what bounds baseline register lifetime).
        std::array<uint8_t, 6> hot_int{};
        std::array<uint8_t, 6> hot_fp{};
        for (unsigned i = 0; i < hot_int.size(); ++i) {
            do {
                hot_int[i] = static_cast<uint8_t>(
                    rng.nextRange(isa::kNumLogicalRegs));
            } while (is_chain_reg(hot_int[i]));
            hot_fp[i] = static_cast<uint8_t>(
                rng.nextRange(isa::kNumLogicalRegs));
        }
        auto pick_int_reg = [&]() -> uint8_t {
            if (rng.nextDouble() < 0.70)
                return hot_int[rng.nextRange(hot_int.size())];
            uint8_t r;
            do {
                r = static_cast<uint8_t>(rng.nextRange(
                    isa::kNumLogicalRegs));
            } while (is_chain_reg(r));
            return r;
        };
        auto pick_fp_reg = [&]() -> uint8_t {
            if (rng.nextDouble() < 0.70)
                return hot_fp[rng.nextRange(hot_fp.size())];
            return static_cast<uint8_t>(
                rng.nextRange(isa::kNumLogicalRegs));
        };
        auto pick_src = [&](isa::RegClass cls) -> isa::RegId {
            auto &recent = cls == isa::RegClass::Int ? recent_int
                                                     : recent_fp;
            if (!recent.empty() &&
                rng.nextDouble() < prof.depLocality) {
                const uint8_t r =
                    recent[rng.nextRange(recent.size())];
                return isa::RegId{cls, r};
            }
            const uint8_t r = cls == isa::RegClass::Int
                ? pick_int_reg() : pick_fp_reg();
            return isa::RegId{cls, r};
        };
        auto note_dest = [&](isa::RegId dst) {
            auto &recent = dst.cls == isa::RegClass::Int ? recent_int
                                                         : recent_fp;
            recent.push_back(dst.idx);
            while (recent.size() > prof.depWindow)
                recent.pop_front();
        };

        for (unsigned b = 0; b < bpf; ++b) {
            BasicBlock blk;
            blk.id = funcEntry[f] + b;
            blk.startPc = pc;
            blk.fallthrough =
                (b + 1 < bpf) ? blk.id + 1 : funcEntry[f];

            // --- body ---
            const unsigned body_len = std::max<unsigned>(
                1, static_cast<unsigned>(
                       body_mean * (0.5 + rng.nextDouble()) + 0.5));
            for (unsigned i = 0; i < body_len; ++i) {
                StaticInst si;
                si.id = inst_id++;
                si.pc = pc;
                pc += 4;

                const double roll = rng.nextDouble();
                double acc = p_load;
                if (roll < acc) {
                    si.cls = isa::OpClass::Load;
                } else if (roll < (acc += p_store)) {
                    si.cls = isa::OpClass::Store;
                } else if (roll < (acc += p_imul)) {
                    si.cls = isa::OpClass::IntMult;
                } else if (roll < (acc += p_idiv)) {
                    si.cls = isa::OpClass::IntDiv;
                } else if (roll < (acc += p_fadd)) {
                    si.cls = isa::OpClass::FpAdd;
                } else if (roll < (acc += p_fmul)) {
                    si.cls = isa::OpClass::FpMult;
                } else if (roll < (acc += p_fdiv)) {
                    si.cls = isa::OpClass::FpDiv;
                } else {
                    si.cls = isa::OpClass::IntAlu;
                }

                switch (si.cls) {
                  case isa::OpClass::Load:
                    if (rng.nextDouble() < prof.chainedLoadFrac) {
                        // Loop-carried pointer chase on one of the
                        // function's chain registers.
                        const uint8_t cr = chain_regs[rng.nextRange(
                            n_chain)];
                        si.dst = isa::intReg(cr);
                        si.src1 = isa::intReg(cr);
                        si.memStream =
                            static_cast<int32_t>(chase_stream);
                    } else {
                        const bool fp_dst =
                            prof.suite == Suite::Fp &&
                            rng.nextDouble() < 0.55;
                        si.dst = fp_dst
                            ? isa::fpReg(pick_fp_reg())
                            : isa::intReg(pick_int_reg());
                        si.src1 = pick_src(isa::RegClass::Int);
                        si.memStream = static_cast<int32_t>(hot_stream);
                        si.altStream = static_cast<int32_t>(
                            rng.nextRange(num_random));
                    }
                    break;
                  case isa::OpClass::Store:
                    si.src1 = pick_src(isa::RegClass::Int);
                    si.src2 = prof.suite == Suite::Fp &&
                            rng.nextDouble() < 0.5
                        ? pick_src(isa::RegClass::Fp)
                        : pick_src(isa::RegClass::Int);
                    si.memStream = static_cast<int32_t>(hot_stream);
                    si.altStream = static_cast<int32_t>(
                        rng.nextRange(num_random));
                    break;
                  case isa::OpClass::FpAdd:
                  case isa::OpClass::FpMult:
                  case isa::OpClass::FpDiv:
                    si.dst = isa::fpReg(pick_fp_reg());
                    si.src1 = pick_src(isa::RegClass::Fp);
                    si.src2 = pick_src(isa::RegClass::Fp);
                    break;
                  default: // IntAlu, IntMult, IntDiv
                    si.dst = isa::intReg(pick_int_reg());
                    si.src1 = pick_src(isa::RegClass::Int);
                    if (rng.nextDouble() < 0.7)
                        si.src2 = pick_src(isa::RegClass::Int);
                    break;
                }

                if (si.dst.valid() &&
                    si.dst.cls == isa::RegClass::Int) {
                    si.widthClass = static_cast<uint8_t>(
                        cdf.sample(rng.nextDouble()));
                }
                if (si.dst.valid())
                    note_dest(si.dst);
                blk.insts.push_back(si);
            }

            // --- software dead-value hint (paper §6) ---
            // The id/pc slot and both random draws are consumed
            // unconditionally so programs at different hint
            // densities are otherwise identical (sweepable).
            {
                const double hint_roll = rng.nextDouble();
                const uint64_t reg_roll = rng.next();
                const uint32_t hint_id = inst_id++;
                const uint64_t hint_pc = pc;
                pc += 4;
                if (hint_roll < prof.deadHintFrac &&
                    !recent_int.empty()) {
                    StaticInst hint;
                    hint.id = hint_id;
                    hint.pc = hint_pc;
                    hint.cls = isa::OpClass::IntAlu;
                    hint.isDeadHint = true;
                    hint.widthClass = 1;
                    // The compiler knows this register is dead past
                    // the block; overwrite it with a narrow value.
                    hint.dst = isa::intReg(recent_int[
                        reg_roll % recent_int.size()]);
                    blk.insts.push_back(hint);
                }
            }

            // --- terminator ---
            StaticInst br;
            br.id = inst_id++;
            br.pc = pc;
            pc += 4;
            br.cls = isa::OpClass::Branch;
            br.src1 = pick_src(isa::RegClass::Int);

            if (b + 1 == bpf) {
                // Final block: function 0 loops forever; others
                // return to their caller.
                if (f == 0) {
                    br.isUncond = true;
                    br.takenBlock = funcEntry[0];
                    br.bias = 1.0f;
                } else {
                    br.isReturn = true;
                    br.isUncond = true;
                    br.bias = 1.0f;
                }
            } else {
                const double roll = rng.nextDouble();
                if (roll < 0.08 && f + 1 < num_funcs) {
                    // Call a higher-numbered function (no recursion).
                    br.isCall = true;
                    br.isUncond = true;
                    br.bias = 1.0f;
                    const unsigned g = f + 1 +
                        rng.nextRange(num_funcs - f - 1);
                    br.takenBlock = funcEntry[g];
                } else if (roll < 0.12) {
                    // Unconditional forward jump within function.
                    br.isUncond = true;
                    br.bias = 1.0f;
                    br.takenBlock = funcEntry[f] + b + 1 +
                        rng.nextRange(bpf - b - 1);
                } else if (rng.nextDouble() < prof.loopBackProb) {
                    // Loop back-edge, strongly taken.
                    br.takenBlock =
                        funcEntry[f] + rng.nextRange(b + 1);
                    br.bias = static_cast<float>(clampd(
                        prof.loopTakenBias +
                            0.08 * (rng.nextDouble() - 0.5),
                        0.60, 0.99));
                } else {
                    // Forward conditional.
                    br.takenBlock = funcEntry[f] + b + 1 +
                        rng.nextRange(bpf - b - 1);
                    if (rng.nextDouble() < prof.branchEasyFrac) {
                        const double lo = rng.nextDouble() < 0.5
                            ? 0.005 : 0.955;
                        br.bias = static_cast<float>(
                            lo + 0.04 * rng.nextDouble());
                    } else {
                        br.bias = static_cast<float>(
                            0.25 + 0.5 * rng.nextDouble());
                        br.correlatable = true;
                    }
                }
            }
            blk.insts.push_back(br);
            blockByPc[blk.startPc] = blk.id;
            numInsts += blk.insts.size();
            blocks_.push_back(std::move(blk));
        }
    }

    PRI_ASSERT(blocks_.size() == size_t{num_funcs} * bpf);
}

ProgLoc
SyntheticProgram::locateBlockStart(uint64_t pc) const
{
    auto it = blockByPc.find(pc);
    if (it == blockByPc.end())
        panic("pc {:#x} is not a block start", pc);
    return ProgLoc{it->second, 0};
}

} // namespace pri::workload
