#include "workload/trace/block_compiler.hh"

#include "common/logging.hh"
#include "workload/gen_params.hh"

namespace pri::workload::trace
{

namespace
{

/** Pick the dispatch kind mirroring the legacy decode structure. */
OpKind
classify(const StaticInst &si)
{
    if (si.cls == isa::OpClass::Branch) {
        // The program builder never gives terminators a destination
        // or a memory stream; the replay dispatch relies on it.
        PRI_ASSERT(!si.dst.valid() && si.memStream < 0,
                   "branch with dst/mem is not trace-compilable");
        if (si.isReturn)
            return OpKind::BranchRet;
        return si.isUncond ? OpKind::BranchJmp : OpKind::BranchCond;
    }
    if (si.memStream >= 0) {
        PRI_ASSERT(!si.isDeadHint,
                   "dead-hint memory op is not trace-compilable");
        if (!si.dst.valid())
            return OpKind::Store;
        return si.dst.cls == isa::RegClass::Fp ? OpKind::LoadFp
                                               : OpKind::LoadInt;
    }
    if (!si.dst.valid())
        return OpKind::NoDst;
    if (si.isDeadHint)
        return OpKind::ZeroDst;
    return si.dst.cls == isa::RegClass::Fp ? OpKind::FpDst
                                           : OpKind::IntDst;
}

} // namespace

BlockCompiler::BlockCompiler(const SyntheticProgram &program)
    : prog(program), seed(program.seed())
{
}

MicroOp
BlockCompiler::compileInst(const StaticInst &si, const BasicBlock &blk,
                           bool last) const
{
    using namespace genp;

    MicroOp op;
    op.pc = si.pc;
    op.staticId = si.id;
    op.cls = si.cls;
    op.dst = si.dst;
    op.src1 = si.src1;
    op.src2 = si.src2;
    op.widthClass = si.widthClass;
    op.kind = classify(si);
    op.fallthroughBlock = blk.fallthrough;
    op.flags = (si.isCall ? kFlagCall : 0) |
        (si.isReturn ? kFlagReturn : 0) |
        (si.isUncond ? kFlagUncond : 0) |
        (si.correlatable ? kFlagCorrelatable : 0) |
        (last ? kFlagLast : 0);

    const auto pre = [&](uint64_t salt) {
        return hashPrefix(seed, salt, si.id);
    };

    switch (op.kind) {
      case OpKind::IntDst:
      case OpKind::LoadInt:
        op.preWidthSel = pre(kSaltWidthSel);
        op.preWidthJit = pre(kSaltWidthJit);
        op.preWidthNew = pre(kSaltWidthNew);
        op.preMag = pre(kSaltMag);
        op.preNeg = pre(kSaltNeg);
        break;
      case OpKind::FpDst:
      case OpKind::LoadFp:
        op.preFpZero = pre(kSaltFpZero);
        op.preFpExp = pre(kSaltFpExp);
        op.preFpSig = pre(kSaltFpSig);
        op.preFpSign = pre(kSaltFpSign);
        op.preFpTriv = pre(kSaltFpTriv);
        break;
      case OpKind::ZeroDst:
      case OpKind::NoDst:
      case OpKind::Store:
        break;
      case OpKind::BranchCond:
        op.preBias = pre(kSaltBias);
        op.preCorrSel = pre(kSaltCorrSel);
        op.preCorrOut = pre(kSaltCorrOut);
        op.bias = static_cast<double>(si.bias);
        [[fallthrough]];
      case OpKind::BranchJmp:
        op.takenBlock = si.takenBlock;
        op.takenTargetPc = prog.block(si.takenBlock).startPc;
        op.fallThroughPc = prog.block(blk.fallthrough).startPc;
        break;
      case OpKind::BranchRet:
        // Taken target comes from the walker's call stack at replay.
        op.takenTargetPc = 0;
        op.fallThroughPc = prog.block(blk.fallthrough).startPc;
        break;
    }

    if (si.memStream >= 0) {
        op.stream = static_cast<uint16_t>(si.memStream);
        op.altStream = si.altStream >= 0
            ? static_cast<uint16_t>(si.altStream) : kNoStream;
        op.preStreamSel = pre(kSaltStreamSel);
        op.preAddr = pre(kSaltAddr);
        op.preAddrCold = pre(kSaltAddrCold);
    }
    return op;
}

void
BlockCompiler::compileBlock(const BasicBlock &blk,
                            std::vector<MicroOp> &out) const
{
    PRI_ASSERT(!blk.insts.empty(), "empty basic block");
    for (size_t i = 0; i < blk.insts.size(); ++i) {
        out.push_back(compileInst(blk.insts[i], blk,
                                  i + 1 == blk.insts.size()));
    }
}

} // namespace pri::workload::trace
