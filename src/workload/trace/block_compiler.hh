/**
 * @file
 * Basic-block to micro-trace compiler.
 *
 * Resolves everything about a StaticInst that does not depend on the
 * dynamic instance: dispatch kind, branch targets (as both PCs and
 * block ids), stream indices, and the pre-folded hash prefixes of
 * every draw the generators can make (gen_params.hh). Compilation is
 * O(static instructions) and runs once per program via the
 * TraceCache; correctness is pinned by the byte-identity tests in
 * tests/test_trace_cache.cpp.
 */

#ifndef PRI_WORKLOAD_TRACE_BLOCK_COMPILER_HH
#define PRI_WORKLOAD_TRACE_BLOCK_COMPILER_HH

#include <vector>

#include "workload/program.hh"
#include "workload/trace/micro_op.hh"

namespace pri::workload::trace
{

/** Compiles one program's basic blocks into MicroOp arrays. */
class BlockCompiler
{
  public:
    explicit BlockCompiler(const SyntheticProgram &program);

    /** Append block @p blk's MicroOps (one per StaticInst) to @p out. */
    void compileBlock(const BasicBlock &blk,
                      std::vector<MicroOp> &out) const;

  private:
    MicroOp compileInst(const StaticInst &si, const BasicBlock &blk,
                        bool last) const;

    const SyntheticProgram &prog;
    uint64_t seed;
};

} // namespace pri::workload::trace

#endif // PRI_WORKLOAD_TRACE_BLOCK_COMPILER_HH
