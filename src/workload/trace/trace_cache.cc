#include "workload/trace/trace_cache.hh"

#include <algorithm>
#include <bit>

#include "common/hashing.hh"
#include "common/logging.hh"
#include "workload/gen_params.hh"
#include "workload/trace/block_compiler.hh"

namespace pri::workload::trace
{

namespace
{

uint64_t
mixDouble(uint64_t h, double v)
{
    return hashCombine(h, std::bit_cast<uint64_t>(v));
}

} // namespace

uint64_t
programFingerprint(const SyntheticProgram &prog)
{
    const auto &p = prog.profile();
    uint64_t h = hashCombine(0x7472616365ULL /* "trace" */,
                             prog.seed(), prog.numBlocks());
    h = hashCombine(h, prog.numStaticInsts());

    // Every scalar the replay generators compare against.
    h = mixDouble(h, p.fracNegative);
    h = mixDouble(h, p.fpFracZero);
    h = mixDouble(h, p.fpFracSigTrivialNonZero);
    h = mixDouble(h, p.randomAccessFrac);
    h = mixDouble(h, p.branchCorrelatedFrac);
    for (unsigned bits = 1; bits <= 64; ++bits)
        h = mixDouble(h, prog.widthCdf().at(bits));

    for (const MemStream &st : prog.streams()) {
        h = hashCombine(h, st.base, st.bytes);
        h = hashCombine(h, st.random ? 1 : 0);
    }

    for (uint32_t b = 0; b < prog.numBlocks(); ++b) {
        const BasicBlock &blk = prog.block(b);
        h = hashCombine(h, blk.startPc, blk.fallthrough);
        for (const StaticInst &si : blk.insts) {
            h = hashCombine(h, si.id, si.pc);
            h = hashCombine(h, static_cast<uint64_t>(si.cls),
                            (uint64_t{si.dst.flat()} << 32) |
                                (uint64_t{si.src1.flat()} << 16) |
                                si.src2.flat());
            h = hashCombine(h,
                            std::bit_cast<uint32_t>(si.memStream),
                            std::bit_cast<uint32_t>(si.altStream));
            h = hashCombine(h, si.takenBlock,
                            std::bit_cast<uint32_t>(si.bias));
            h = hashCombine(h,
                            (uint64_t{si.isCall} << 5) |
                                (uint64_t{si.isReturn} << 4) |
                                (uint64_t{si.isUncond} << 3) |
                                (uint64_t{si.correlatable} << 2) |
                                (uint64_t{si.isDeadHint} << 1),
                            si.widthClass);
        }
    }
    return h;
}

ProgramTraces::ProgramTraces(const SyntheticProgram &prog)
{
    const auto &p = prog.profile();
    fracNegative = p.fracNegative;
    fpFracZero = p.fpFracZero;
    fpFracSigTrivialNonZero = p.fpFracSigTrivialNonZero;
    randomAccessFrac = p.randomAccessFrac;
    branchCorrelatedFrac = p.branchCorrelatedFrac;
    fp = programFingerprint(prog);
    entryPc_ = prog.block(prog.entry().block).startPc;

    const size_t nb = prog.numBlocks();
    blockFirst.resize(nb);
    startPcs.resize(nb);
    ops_.reserve(prog.numStaticInsts());
    const BlockCompiler compiler(prog);
    for (uint32_t b = 0; b < nb; ++b) {
        const BasicBlock &blk = prog.block(b);
        blockFirst[b] = static_cast<uint32_t>(ops_.size());
        startPcs[b] = blk.startPc;
        compiler.compileBlock(blk, ops_);
    }
    PRI_ASSERT(ops_.size() == prog.numStaticInsts());

    streams_.reserve(prog.streams().size());
    for (const MemStream &st : prog.streams()) {
        TraceStream ts;
        ts.base = st.base;
        ts.hotWords =
            std::min(st.bytes, genp::kHotRegionBytes) >> 3;
        ts.coldWords = st.bytes >> 3;
        ts.seqMask = st.bytes - 1;
        ts.random = st.random;
        streams_.push_back(ts);
    }
}

TraceCache &
TraceCache::global()
{
    static TraceCache cache;
    return cache;
}

std::shared_ptr<const ProgramTraces>
TraceCache::acquire(const SyntheticProgram &prog)
{
    const uint64_t key = programFingerprint(prog);
    std::lock_guard<std::mutex> lock(mu);
    if (auto it = entries.find(key); it != entries.end()) {
        ++nShared;
        return it->second;
    }
    if (entries.size() >= kMaxPrograms) {
        // Rare wholesale trim (fuzzers draw fresh seeds forever).
        // Live walkers hold shared_ptrs, so nothing is invalidated.
        nEvicted += entries.size();
        entries.clear();
    }
    auto traces = std::make_shared<const ProgramTraces>(prog);
    ++nCompiled;
    nBlocks += traces->numBlocks();
    nOps += traces->numOps();
    entries.emplace(key, traces);
    return traces;
}

TraceCache::Stats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    Stats s;
    s.programsCompiled = nCompiled;
    s.programsShared = nShared;
    s.programsEvicted = nEvicted;
    s.blocksCompiled = nBlocks;
    s.microOps = nOps;
    for (const auto &[key, traces] : entries)
        s.traceBytes += traces->traceBytes();
    s.opsReplayed = opsReplayed.load(std::memory_order_relaxed);
    s.opsLegacyDecoded = opsLegacy.load(std::memory_order_relaxed);
    return s;
}

void
TraceCache::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    entries.clear();
    nCompiled = nShared = nEvicted = nBlocks = nOps = 0;
    opsReplayed.store(0, std::memory_order_relaxed);
    opsLegacy.store(0, std::memory_order_relaxed);
}

} // namespace pri::workload::trace
