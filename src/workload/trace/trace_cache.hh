/**
 * @file
 * Compiled program traces and the process-global trace cache.
 *
 * A ProgramTraces is the MicroTrace set for one SyntheticProgram:
 * every basic block compiled to a flat, contiguous MicroOp array
 * (one allocation for the whole program), plus the block-start PC
 * table, the pre-resolved memory-stream parameters, and the handful
 * of profile scalars the replay generators read. It is immutable
 * after compilation.
 *
 * The TraceCache shares ProgramTraces across all sweep points of the
 * same workload: keyed by a content fingerprint of the program, built
 * once under a mutex on first acquire, then handed out read-only — so
 * `--jobs N` workers and whole fig10-style sweeps stop re-decoding
 * (DESIGN.md §13).
 */

#ifndef PRI_WORKLOAD_TRACE_TRACE_CACHE_HH
#define PRI_WORKLOAD_TRACE_TRACE_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "workload/program.hh"
#include "workload/trace/micro_op.hh"

namespace pri::workload::trace
{

/**
 * Pre-resolved replay form of one MemStream: bounds are stored as
 * 8-byte word counts so the replay path does no min/shift work.
 */
struct TraceStream
{
    uint64_t base = 0;
    uint64_t hotWords = 0;  ///< min(bytes, kHotRegionBytes) >> 3
    uint64_t coldWords = 0; ///< bytes >> 3
    uint64_t seqMask = 0;   ///< bytes - 1 (bytes is a power of two)
    bool random = false;
};

/** The compiled, immutable micro-trace set for one program. */
class ProgramTraces
{
  public:
    /** Compile every block of @p prog (done by TraceCache/tests). */
    explicit ProgramTraces(const SyntheticProgram &prog);

    /** Contiguous MicroOps of block @p b (one per StaticInst). */
    const MicroOp *
    blockOps(uint32_t b) const
    {
        return ops_.data() + blockFirst[b];
    }

    /** Start PC of block @p b (for fast return-target matching). */
    uint64_t startPc(uint32_t b) const { return startPcs[b]; }

    uint64_t entryPc() const { return entryPc_; }
    const std::vector<TraceStream> &streams() const { return streams_; }

    // Profile scalars the replay generators compare against.
    double fracNegative = 0.0;
    double fpFracZero = 0.0;
    double fpFracSigTrivialNonZero = 0.0;
    double randomAccessFrac = 0.0;
    double branchCorrelatedFrac = 0.0;

    uint64_t fingerprint() const { return fp; }
    size_t numBlocks() const { return blockFirst.size(); }
    size_t numOps() const { return ops_.size(); }

    /** Resident bytes of the compiled form (stats only). */
    uint64_t
    traceBytes() const
    {
        return ops_.size() * sizeof(MicroOp) +
            blockFirst.size() * sizeof(uint32_t) +
            startPcs.size() * sizeof(uint64_t) +
            streams_.size() * sizeof(TraceStream);
    }

  private:
    std::vector<MicroOp> ops_;        ///< all blocks, back to back
    std::vector<uint32_t> blockFirst; ///< block id -> index into ops_
    std::vector<uint64_t> startPcs;   ///< block id -> start PC
    std::vector<TraceStream> streams_;
    uint64_t entryPc_ = 0;
    uint64_t fp = 0;
};

/**
 * Content fingerprint of a program: a hash over every StaticInst
 * field, stream, and profile scalar that influences compiled traces
 * or replay draws. Keying the cache by content (not by profile name)
 * keeps sharing correct even for hand-built profiles reusing a name.
 */
uint64_t programFingerprint(const SyntheticProgram &prog);

/**
 * Process-global, thread-safe cache of compiled program traces.
 * First acquire of a program compiles under the mutex; concurrent
 * acquirers of the same program wait and share the one compilation.
 */
class TraceCache
{
  public:
    static TraceCache &global();

    /** Get (compiling if needed) the traces for @p prog. */
    std::shared_ptr<const ProgramTraces>
    acquire(const SyntheticProgram &prog);

    struct Stats
    {
        uint64_t programsCompiled = 0; ///< acquire() misses
        uint64_t programsShared = 0;   ///< acquire() hits
        uint64_t programsEvicted = 0;  ///< capacity-trim drops
        uint64_t blocksCompiled = 0;   ///< cumulative
        uint64_t microOps = 0;         ///< cumulative
        uint64_t traceBytes = 0;       ///< currently resident
        uint64_t opsReplayed = 0;      ///< traced next() calls
        uint64_t opsLegacyDecoded = 0; ///< legacy next() calls

        /** Fraction of all front-end ops served by trace replay. */
        double
        replayHitRate() const
        {
            const uint64_t total = opsReplayed + opsLegacyDecoded;
            return total == 0
                ? 0.0
                : static_cast<double>(opsReplayed) /
                    static_cast<double>(total);
        }
    };
    Stats stats() const;

    /** Walker teardown flushes its op counters here (atomic). */
    void
    noteWalkerOps(uint64_t replayed, uint64_t legacy)
    {
        opsReplayed.fetch_add(replayed, std::memory_order_relaxed);
        opsLegacy.fetch_add(legacy, std::memory_order_relaxed);
    }

    /** Drop all cached programs and zero statistics (tests/bench). */
    void reset();

  private:
    // Fuzzers draw a fresh seed per point, so the map could otherwise
    // grow without bound across a long process. Live walkers keep
    // their shared_ptr, so a trim never invalidates anyone.
    static constexpr size_t kMaxPrograms = 128;

    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::shared_ptr<const ProgramTraces>>
        entries;
    uint64_t nCompiled = 0;
    uint64_t nShared = 0;
    uint64_t nEvicted = 0;
    uint64_t nBlocks = 0;
    uint64_t nOps = 0;
    std::atomic<uint64_t> opsReplayed{0};
    std::atomic<uint64_t> opsLegacy{0};
};

} // namespace pri::workload::trace

#endif // PRI_WORKLOAD_TRACE_TRACE_CACHE_HH
