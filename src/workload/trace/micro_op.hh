/**
 * @file
 * The pre-decoded micro-op record replayed by the traced front end.
 *
 * One MicroOp is the fully-resolved form of one StaticInst: operation
 * class and register ids copied through, branch targets resolved to
 * both PCs and block ids, and — the performance core of the design —
 * every hash draw the value/outcome/address generators will ever make
 * for this instruction pre-folded down to a single splitMix64 round
 * (see gen_params.hh). A MicroTrace is the flat, contiguous array of
 * MicroOps for one basic block; the Walker replays it with a pointer
 * bump and a switch on OpKind (DESIGN.md §13).
 *
 * Records are immutable after compilation and shared read-only across
 * every walker (and every sweep worker) using the same program.
 */

#ifndef PRI_WORKLOAD_TRACE_MICRO_OP_HH
#define PRI_WORKLOAD_TRACE_MICRO_OP_HH

#include <cstdint>

#include "isa/op_class.hh"
#include "isa/reg.hh"

namespace pri::workload::trace
{

/**
 * Dispatch kind: collapses (op class, has-dst, dst class, has-mem,
 * branch flavour) into one enum so the replay loop is a single
 * jump-table switch. The partitioning mirrors exactly which
 * generators the legacy decode path would invoke.
 */
enum class OpKind : uint8_t
{
    IntDst,     ///< integer-destination producer, no memory
    FpDst,      ///< FP-destination producer, no memory
    ZeroDst,    ///< dead-value hint: result is always 0
    NoDst,      ///< no destination, no memory (e.g. nop)
    LoadInt,    ///< memory read into an integer register
    LoadFp,     ///< memory read into an FP register
    Store,      ///< memory write, no destination
    BranchCond, ///< conditional terminator: outcome drawn per instance
    BranchJmp,  ///< unconditional jump/call: taken, baked target
    BranchRet,  ///< return: taken, target from the walker call stack
};

/** Behaviour flags copied from the StaticInst plus trace layout. */
enum : uint8_t
{
    kFlagCall = 1u << 0,
    kFlagReturn = 1u << 1,
    kFlagUncond = 1u << 2,
    kFlagCorrelatable = 1u << 3,
    kFlagLast = 1u << 4, ///< last op of its block (advance to successor)
};

/** No alternate stream (uint16_t form of StaticInst::altStream<0). */
constexpr uint16_t kNoStream = 0xffff;

struct MicroOp
{
    uint64_t pc = 0;

    // ---- pre-folded hash prefixes ----
    // Five role-shared slots: a given kind only ever reads the slot
    // members of its own role (integer value, FP value, or branch),
    // so the unions never mix active members. Slots 3/4 double as
    // resolved branch PCs, which no value-generating kind reads.
    union {
        uint64_t preWidthSel = 0; ///< int: width-class vs fresh draw
        uint64_t preFpZero;       ///< fp: zero-value draw
        uint64_t preBias;         ///< branch: per-instance bias draw
    };
    union {
        uint64_t preWidthJit = 0; ///< int: +-2 width jitter
        uint64_t preFpExp;        ///< fp: exponent draw
        uint64_t preCorrSel;      ///< branch: correlated-instance draw
    };
    union {
        uint64_t preWidthNew = 0; ///< int: fresh CDF width draw
        uint64_t preFpSig;        ///< fp: significand draw
        uint64_t preCorrOut;      ///< branch: correlated outcome draw
    };
    union {
        uint64_t preMag = 0;      ///< int: magnitude draw
        uint64_t preFpSign;       ///< fp: sign draw
        uint64_t takenTargetPc;   ///< branch: resolved taken-target PC
    };
    union {
        uint64_t preNeg = 0;      ///< int: sign draw (also 1-bit case)
        uint64_t preFpTriv;       ///< fp: trivial-significand draw
        uint64_t fallThroughPc;   ///< branch: resolved fall-through PC
    };
    // Memory-op slots (loads use these *and* a value role above).
    uint64_t preStreamSel = 0;    ///< mem: alt-stream selection draw
    union {
        uint64_t preAddr = 0;     ///< mem: random-offset draw
        double bias;              ///< cond branch: taken probability
    };
    uint64_t preAddrCold = 0;     ///< mem: hot/cold region draw

    uint32_t staticId = 0;
    uint32_t takenBlock = 0xffffffff;   ///< kNoBlock when not baked
    uint32_t fallthroughBlock = 0xffffffff;
    uint16_t stream = kNoStream;        ///< ProgramTraces::streams idx
    uint16_t altStream = kNoStream;

    isa::RegId dst = isa::noReg();
    isa::RegId src1 = isa::noReg();
    isa::RegId src2 = isa::noReg();
    isa::OpClass cls = isa::OpClass::Nop;
    OpKind kind = OpKind::NoDst;
    uint8_t flags = 0;
    uint8_t widthClass = 32;
};

// Replay walks arrays of these; keep the record within two cache
// lines so a typical ~6-op block stays under one page of traffic.
static_assert(sizeof(MicroOp) <= 128, "MicroOp grew past 2 lines");

} // namespace pri::workload::trace

#endif // PRI_WORKLOAD_TRACE_MICRO_OP_HH
