/**
 * @file
 * Static synthetic programs.
 *
 * A SyntheticProgram is a real control-flow graph: functions made of
 * basic blocks, blocks made of static instructions, terminators with
 * taken-targets and biases, calls/returns, and memory streams. Built
 * deterministically from (profile, seed), it is walked dynamically by
 * the Walker — including down mispredicted paths, which is what lets
 * the timing core model wrong-path register pressure the way the
 * paper's execution-driven simulator does.
 */

#ifndef PRI_WORKLOAD_PROGRAM_HH
#define PRI_WORKLOAD_PROGRAM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hashing.hh"
#include "isa/op_class.hh"
#include "isa/reg.hh"
#include "workload/profile.hh"

namespace pri::workload
{

constexpr uint32_t kNoBlock = 0xffffffff;

/** Memory access stream: where a static load/store's addresses go. */
struct MemStream
{
    uint64_t base = 0;       ///< base virtual address
    uint64_t bytes = 4096;   ///< working-set size of this stream
    bool random = false;     ///< random within the set vs sequential
};

/** One static instruction. */
struct StaticInst
{
    uint32_t id = 0;
    uint64_t pc = 0;
    isa::OpClass cls = isa::OpClass::IntAlu;
    isa::RegId dst = isa::noReg();
    isa::RegId src1 = isa::noReg();
    isa::RegId src2 = isa::noReg();

    /** Index into SyntheticProgram::streams for loads/stores. */
    int32_t memStream = -1;
    /** Alternate (random) stream: the walker picks it with
     *  probability randomAccessFrac per dynamic instance, which
     *  keeps the dynamic stream-type mix on-profile even when a few
     *  hot static loads dominate execution. */
    int32_t altStream = -1;

    // --- terminator info (cls == Branch) ---
    uint32_t takenBlock = kNoBlock; ///< taken-target block id
    float bias = 0.5f;              ///< taken probability
    bool isCall = false;
    bool isReturn = false;
    bool isUncond = false;
    /** Hard branch whose instances may be history-correlated. */
    bool correlatable = false;

    /** Per-static operand width bias (integer destinations). */
    uint8_t widthClass = 32;

    /** Compiler dead-value hint: always produces the value 0. */
    bool isDeadHint = false;
};

/** A basic block: a body, an optional terminator, and a successor. */
struct BasicBlock
{
    uint32_t id = 0;
    uint64_t startPc = 0;
    std::vector<StaticInst> insts;
    /** Successor when falling through (kNoBlock never happens: every
     *  block either falls through or ends in an unconditional
     *  transfer). */
    uint32_t fallthrough = kNoBlock;

    /** True when the last instruction is a control transfer. */
    bool
    endsInBranch() const
    {
        return !insts.empty() &&
            insts.back().cls == isa::OpClass::Branch;
    }
};

/** A position inside the program: block id + instruction index. */
struct ProgLoc
{
    uint32_t block = 0;
    uint32_t idx = 0;

    bool
    operator==(const ProgLoc &o) const
    {
        return block == o.block && idx == o.idx;
    }
};

/**
 * The static program for one benchmark profile. Immutable after
 * construction; shared by the walker and (read-only) by tests.
 */
class SyntheticProgram
{
  public:
    /** Build the CFG, registers, streams from (profile, seed). */
    SyntheticProgram(const BenchmarkProfile &profile, uint64_t seed);

    const BenchmarkProfile &profile() const { return prof; }
    uint64_t seed() const { return theSeed; }

    const BasicBlock &
    block(uint32_t id) const
    {
        return blocks_.at(id);
    }
    size_t numBlocks() const { return blocks_.size(); }
    size_t numStaticInsts() const { return numInsts; }
    const std::vector<MemStream> &streams() const { return streams_; }

    /** Entry point: function 0, block 0, instruction 0. */
    ProgLoc entry() const { return ProgLoc{0, 0}; }

    /**
     * Map a control-transfer target PC back to a location. Targets
     * are always block starts (branch targets, call entries, return
     * addresses). Panics on a PC that is not a block start.
     */
    ProgLoc locateBlockStart(uint64_t pc) const;

    /** The dense width CDF for integer value generation. */
    const WidthCdf &widthCdf() const { return cdf; }

    /** Entry block id of each function (for tests/examples). */
    const std::vector<uint32_t> &
    functionEntries() const
    {
        return funcEntry;
    }

  private:
    void buildStreams();
    void buildFunctions(SplitMixRng &rng);

    const BenchmarkProfile &prof;
    uint64_t theSeed;
    WidthCdf cdf;
    std::vector<BasicBlock> blocks_;
    std::vector<MemStream> streams_;
    std::vector<uint32_t> funcEntry;
    std::unordered_map<uint64_t, uint32_t> blockByPc;
    size_t numInsts = 0;
};

} // namespace pri::workload

#endif // PRI_WORKLOAD_PROGRAM_HH
