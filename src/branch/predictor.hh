/**
 * @file
 * Branch direction prediction: a combined predictor (paper Table 1)
 * made of a 4k-entry bimodal table, a 4k-entry gshare table, and a
 * 4k-entry selector, plus a 1k-entry 4-way BTB and a 16-entry return
 * address stack.
 *
 * Tables are updated at commit (correct path only). The global
 * history register is updated speculatively at predict time and
 * repaired from a snapshot on misprediction recovery; the RAS is
 * likewise snapshotted per branch and restored on squash.
 */

#ifndef PRI_BRANCH_PREDICTOR_HH
#define PRI_BRANCH_PREDICTOR_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/arena.hh"
#include "common/stats.hh"
#include "common/undo_journal.hh"

namespace pri::branch
{

/** Saturating 2-bit counter helpers. */
constexpr uint8_t
counterUpdate(uint8_t ctr, bool up)
{
    if (up)
        return ctr == 3 ? 3 : ctr + 1;
    return ctr == 0 ? 0 : ctr - 1;
}

/** Everything needed to update the tables at commit time. */
struct PredictToken
{
    bool bimodalTaken = false;
    bool gshareTaken = false;
    bool predTaken = false;
    uint64_t histAtPredict = 0; ///< history used for gshare index
};

/** Return-address-stack depth (paper Table 1). */
constexpr unsigned kRasDepth = 16;

/**
 * Restorable front-end prediction state, recorded per branch.
 *
 * This is the pooled (journal-based) form: instead of copying the
 * whole RAS array, it records only the stack geometry and the RAS
 * undo-journal position; Ras::restore() repairs the entries that
 * were overwritten since from the journal. 24 bytes per branch
 * instead of 144.
 */
struct PredictorSnapshot
{
    uint64_t history = 0;
    uint64_t rasSeq = 0; ///< RAS undo-journal position
    uint8_t rasTop = 0;
    uint8_t rasCount = 0;
};

/**
 * Legacy full-copy form: the entire RAS array travels with every
 * fetched branch. Kept behind CoreConfig::pooledCheckpoints=false
 * so the perf harness can measure what the journal removes.
 */
struct PredictorSnapshotFull
{
    uint64_t history = 0;
    std::array<uint64_t, kRasDepth> ras{};
    uint8_t rasTop = 0;
    uint8_t rasCount = 0;
};

/**
 * Combined bimodal/gshare predictor with selector.
 * All three tables have 4k 2-bit entries.
 */
class CombinedPredictor
{
  public:
    static constexpr unsigned kTableBits = 12; // 4k entries
    static constexpr unsigned kHistBits = 8;

    CombinedPredictor();

    /**
     * Predict a conditional branch at @p pc and speculatively shift
     * the predicted outcome into the history register.
     */
    PredictToken predict(uint64_t pc);

    /**
     * Commit-time table update with the actual outcome.
     * @p token must be the one produced at predict time.
     */
    void update(uint64_t pc, bool taken, const PredictToken &token);

    uint64_t history() const { return ghist; }
    void setHistory(uint64_t h) { ghist = h; }

  private:
    unsigned bimodalIndex(uint64_t pc) const;
    unsigned gshareIndex(uint64_t pc, uint64_t hist) const;

    HotVec<uint8_t> bimodal;
    HotVec<uint8_t> gshare;
    HotVec<uint8_t> selector; ///< >=2 selects gshare
    uint64_t ghist = 0;
};

/** 4-way set-associative branch target buffer (1k entries total). */
class Btb
{
  public:
    static constexpr unsigned kEntries = 1024;
    static constexpr unsigned kAssoc = 4;

    Btb();

    /** Target for @p pc if present. */
    std::optional<uint64_t> lookup(uint64_t pc) const;

    /** Install/update the target for a taken branch. */
    void update(uint64_t pc, uint64_t target);

  private:
    struct Entry
    {
        uint64_t pc = 0;
        uint64_t target = 0;
        uint64_t lruStamp = 0;
        bool valid = false;
    };

    HotVec<Entry> entries;
    uint64_t stamp = 0;
};

/**
 * 16-entry circular return address stack.
 *
 * Every push overwrites one slot; with journaling enabled (the
 * default) the pre-push value is appended to an undo journal so a
 * snapshot needs to record only {topIdx, count, journal position}.
 * Pops destroy nothing (the slot value survives), so they need no
 * journal record. The journal is bounded: the checkpoint owner trims
 * it to the oldest live snapshot via trimJournal().
 */
class Ras
{
  public:
    static constexpr unsigned kDepth = kRasDepth;

    void push(uint64_t return_pc);
    /** Pop the predicted return target (0 when empty). */
    uint64_t pop();
    uint64_t top() const;
    bool empty() const { return count == 0; }

    /** Journal-based snapshot / restore (pooled checkpoints). */
    void snapshot(PredictorSnapshot &snap) const;
    void restore(const PredictorSnapshot &snap);

    /** Legacy full-copy snapshot / restore. */
    void snapshot(PredictorSnapshotFull &snap) const;
    void restore(const PredictorSnapshotFull &snap);

    /**
     * Disable the undo journal when only full-copy restore will be
     * used (legacy checkpointing); journal-based restore is then
     * illegal.
     */
    void setJournaling(bool on);

    /** Current journal position (see UndoJournal::seq). */
    uint64_t journalSeq() const { return journal.seq(); }

    /** Pre-size the journal for @p live_span in-flight records. */
    void
    reserveJournal(size_t live_span)
    {
        journal.reserveForLiveSpan(live_span);
    }

    /** Drop journal records no live snapshot can unwind to. */
    void trimJournal(uint64_t min_seq) { journal.trimTo(min_seq); }

  private:
    struct Undo
    {
        uint64_t value;
        uint8_t slot;
    };

    std::array<uint64_t, kDepth> stack{};
    UndoJournal<Undo> journal;
    uint8_t topIdx = 0;
    uint8_t count = 0;
    bool journaling = true;
};

} // namespace pri::branch

#endif // PRI_BRANCH_PREDICTOR_HH
