/**
 * @file
 * Branch direction prediction: a combined predictor (paper Table 1)
 * made of a 4k-entry bimodal table, a 4k-entry gshare table, and a
 * 4k-entry selector, plus a 1k-entry 4-way BTB and a 16-entry return
 * address stack.
 *
 * Tables are updated at commit (correct path only). The global
 * history register is updated speculatively at predict time and
 * repaired from a snapshot on misprediction recovery; the RAS is
 * likewise snapshotted per branch and restored on squash.
 */

#ifndef PRI_BRANCH_PREDICTOR_HH
#define PRI_BRANCH_PREDICTOR_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"

namespace pri::branch
{

/** Saturating 2-bit counter helpers. */
constexpr uint8_t
counterUpdate(uint8_t ctr, bool up)
{
    if (up)
        return ctr == 3 ? 3 : ctr + 1;
    return ctr == 0 ? 0 : ctr - 1;
}

/** Everything needed to update the tables at commit time. */
struct PredictToken
{
    bool bimodalTaken = false;
    bool gshareTaken = false;
    bool predTaken = false;
    uint64_t histAtPredict = 0; ///< history used for gshare index
};

/** Restorable front-end prediction state, snapshotted per branch. */
struct PredictorSnapshot
{
    uint64_t history = 0;
    std::array<uint64_t, 16> ras{};
    uint8_t rasTop = 0;
    uint8_t rasCount = 0;
};

/**
 * Combined bimodal/gshare predictor with selector.
 * All three tables have 4k 2-bit entries.
 */
class CombinedPredictor
{
  public:
    static constexpr unsigned kTableBits = 12; // 4k entries
    static constexpr unsigned kHistBits = 8;

    CombinedPredictor();

    /**
     * Predict a conditional branch at @p pc and speculatively shift
     * the predicted outcome into the history register.
     */
    PredictToken predict(uint64_t pc);

    /**
     * Commit-time table update with the actual outcome.
     * @p token must be the one produced at predict time.
     */
    void update(uint64_t pc, bool taken, const PredictToken &token);

    uint64_t history() const { return ghist; }
    void setHistory(uint64_t h) { ghist = h; }

  private:
    unsigned bimodalIndex(uint64_t pc) const;
    unsigned gshareIndex(uint64_t pc, uint64_t hist) const;

    std::vector<uint8_t> bimodal;
    std::vector<uint8_t> gshare;
    std::vector<uint8_t> selector; ///< >=2 selects gshare
    uint64_t ghist = 0;
};

/** 4-way set-associative branch target buffer (1k entries total). */
class Btb
{
  public:
    static constexpr unsigned kEntries = 1024;
    static constexpr unsigned kAssoc = 4;

    Btb();

    /** Target for @p pc if present. */
    std::optional<uint64_t> lookup(uint64_t pc) const;

    /** Install/update the target for a taken branch. */
    void update(uint64_t pc, uint64_t target);

  private:
    struct Entry
    {
        uint64_t pc = 0;
        uint64_t target = 0;
        uint64_t lruStamp = 0;
        bool valid = false;
    };

    std::vector<Entry> entries;
    uint64_t stamp = 0;
};

/** 16-entry circular return address stack. */
class Ras
{
  public:
    static constexpr unsigned kDepth = 16;

    void push(uint64_t return_pc);
    /** Pop the predicted return target (0 when empty). */
    uint64_t pop();
    uint64_t top() const;
    bool empty() const { return count == 0; }

    /** Snapshot / restore for misprediction recovery. */
    void snapshot(PredictorSnapshot &snap) const;
    void restore(const PredictorSnapshot &snap);

  private:
    std::array<uint64_t, kDepth> stack{};
    uint8_t topIdx = 0;
    uint8_t count = 0;
};

} // namespace pri::branch

#endif // PRI_BRANCH_PREDICTOR_HH
