#include "predictor.hh"

#include "common/logging.hh"

namespace pri::branch
{

CombinedPredictor::CombinedPredictor()
    : bimodal(1u << kTableBits, 1),
      gshare(1u << kTableBits, 1),
      selector(1u << kTableBits, 1)
{
}

unsigned
CombinedPredictor::bimodalIndex(uint64_t pc) const
{
    return static_cast<unsigned>((pc >> 2) & ((1u << kTableBits) - 1));
}

unsigned
CombinedPredictor::gshareIndex(uint64_t pc, uint64_t hist) const
{
    const uint64_t h = hist & ((uint64_t{1} << kHistBits) - 1);
    return static_cast<unsigned>(((pc >> 2) ^ h) &
                                 ((1u << kTableBits) - 1));
}

PredictToken
CombinedPredictor::predict(uint64_t pc)
{
    PredictToken tok;
    tok.histAtPredict = ghist;
    tok.bimodalTaken = bimodal[bimodalIndex(pc)] >= 2;
    tok.gshareTaken = gshare[gshareIndex(pc, ghist)] >= 2;
    const bool use_gshare = selector[bimodalIndex(pc)] >= 2;
    tok.predTaken = use_gshare ? tok.gshareTaken : tok.bimodalTaken;
    // Speculative history update with the predicted outcome.
    ghist = (ghist << 1) | (tok.predTaken ? 1 : 0);
    return tok;
}

void
CombinedPredictor::update(uint64_t pc, bool taken,
                          const PredictToken &token)
{
    auto &bi = bimodal[bimodalIndex(pc)];
    auto &gs = gshare[gshareIndex(pc, token.histAtPredict)];
    auto &sel = selector[bimodalIndex(pc)];

    // Selector trains toward the component that was right.
    const bool bi_right = token.bimodalTaken == taken;
    const bool gs_right = token.gshareTaken == taken;
    if (bi_right != gs_right)
        sel = counterUpdate(sel, gs_right);

    bi = counterUpdate(bi, taken);
    gs = counterUpdate(gs, taken);
}

Btb::Btb() : entries(kEntries)
{
}

std::optional<uint64_t>
Btb::lookup(uint64_t pc) const
{
    const unsigned sets = kEntries / kAssoc;
    const unsigned set =
        static_cast<unsigned>((pc >> 2) & (sets - 1));
    const Entry *base = &entries[size_t{set} * kAssoc];
    for (unsigned w = 0; w < kAssoc; ++w) {
        if (base[w].valid && base[w].pc == pc)
            return base[w].target;
    }
    return std::nullopt;
}

void
Btb::update(uint64_t pc, uint64_t target)
{
    const unsigned sets = kEntries / kAssoc;
    const unsigned set =
        static_cast<unsigned>((pc >> 2) & (sets - 1));
    Entry *base = &entries[size_t{set} * kAssoc];
    ++stamp;

    Entry *victim = base;
    for (unsigned w = 0; w < kAssoc; ++w) {
        Entry &e = base[w];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.lruStamp = stamp;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid &&
                   e.lruStamp < victim->lruStamp) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->lruStamp = stamp;
}

void
Ras::push(uint64_t return_pc)
{
    topIdx = (topIdx + 1) % kDepth;
    if (journaling)
        journal.push(Undo{stack[topIdx], topIdx});
    stack[topIdx] = return_pc;
    if (count < kDepth)
        ++count;
}

uint64_t
Ras::pop()
{
    if (count == 0)
        return 0;
    const uint64_t t = stack[topIdx];
    topIdx = (topIdx + kDepth - 1) % kDepth;
    --count;
    return t;
}

uint64_t
Ras::top() const
{
    return count == 0 ? 0 : stack[topIdx];
}

void
Ras::snapshot(PredictorSnapshot &snap) const
{
    PRI_ASSERT(journaling,
               "journal-based RAS snapshot with journaling off");
    snap.rasSeq = journal.seq();
    snap.rasTop = topIdx;
    snap.rasCount = count;
}

void
Ras::restore(const PredictorSnapshot &snap)
{
    PRI_ASSERT(journaling,
               "journal-based RAS restore with journaling off");
    // Re-apply overwritten values newest-first; the oldest record
    // per slot (the snapshot-time value) lands last.
    journal.unwindTo(snap.rasSeq, [this](const Undo &u) {
        stack[u.slot] = u.value;
    });
    topIdx = snap.rasTop;
    count = snap.rasCount;
}

void
Ras::snapshot(PredictorSnapshotFull &snap) const
{
    snap.ras = stack;
    snap.rasTop = topIdx;
    snap.rasCount = count;
}

void
Ras::restore(const PredictorSnapshotFull &snap)
{
    stack = snap.ras;
    topIdx = snap.rasTop;
    count = snap.rasCount;
}

void
Ras::setJournaling(bool on)
{
    journaling = on;
    if (!on)
        journal.trimTo(journal.seq());
}

} // namespace pri::branch
