/**
 * @file
 * First-order analytical model of physical register file access
 * delay, area, and energy, after the style of Farkas et al. [6] and
 * Rixner et al. — the paper's §1 motivation: access time grows with
 * the register count, forcing multicycle access, and PRI's payoff is
 * that fewer registers (or the same count used better) buy back
 * delay, area, and energy.
 *
 * The model is deliberately simple and normalised: it captures the
 * scaling shape (decoder depth ~ log2 R, word/bitline RC ~ wire
 * length, cell pitch growing linearly with ports in each dimension),
 * not absolute silicon numbers.
 */

#ifndef PRI_RENAME_PRF_MODEL_HH
#define PRI_RENAME_PRF_MODEL_HH

#include <cstdint>

namespace pri::rename
{

/** Geometry of one register file. */
struct PrfGeometry
{
    unsigned entries = 64;   ///< physical registers
    unsigned bits = 64;      ///< width of each register
    unsigned readPorts = 8;  ///< 2 per issue slot, typically
    unsigned writePorts = 4; ///< 1 per issue slot
};

/** Normalised outputs (unit: the 64x64, 8R4W baseline = 1.0). */
struct PrfEstimate
{
    double accessDelay = 1.0;
    double area = 1.0;
    double energyPerAccess = 1.0;
};

/**
 * Analytical register file model.
 *
 * Cell pitch grows linearly with ports in each dimension (every
 * port adds a wordline horizontally and a bitline vertically):
 *   cellW = 1 + kPortPitch * ports
 *   cellH = 1 + kPortPitch * ports
 * Wordline length  ~ bits    * cellW
 * Bitline length   ~ entries * cellH
 * Decode depth     ~ log2(entries)
 * Delay  = kDec*log2(R) + kWire*(wordline + bitline)   (RC, linear
 *          in length at constant drive per segment)
 * Area   = entries * bits * cellW * cellH
 * Energy ~ wordline + bitline switched per access.
 */
class PrfModel
{
  public:
    /** Fraction of cell pitch added per port. */
    static constexpr double kPortPitch = 0.25;
    static constexpr double kDec = 0.12;  ///< decode weight
    static constexpr double kWire = 1.0;  ///< wire RC weight

    /** Estimate normalised to the paper's 64-entry baseline. */
    static PrfEstimate estimate(const PrfGeometry &g);

    /** Raw (unnormalised) delay in model units. */
    static double rawDelay(const PrfGeometry &g);
    static double rawArea(const PrfGeometry &g);
    static double rawEnergy(const PrfGeometry &g);

    /**
     * Smallest register count (searching @p lo..@p hi) whose raw
     * delay does not exceed @p delay_budget model units.
     */
    static unsigned entriesWithinDelay(double delay_budget,
                                       const PrfGeometry &base,
                                       unsigned lo, unsigned hi);

    /**
     * Largest read-port count (searching @p lo..@p hi) whose raw
     * delay does not exceed @p delay_budget model units — the port
     * dual of entriesWithinDelay: given a cycle-time budget, how
     * many read ports can the array afford?
     */
    static unsigned readPortsWithinDelay(double delay_budget,
                                         const PrfGeometry &base,
                                         unsigned lo, unsigned hi);

    /**
     * Read ports a @p width -issue machine needs when a fraction
     * @p inlined_frac of source operands is served from the map as
     * inlined immediates (PRI) instead of the array: the classic
     * 2 * width, scaled by the operands that still read the PRF,
     * clamped to the arbiter's floor of 2.
     */
    static unsigned portsForIssueWidth(unsigned width,
                                       double inlined_frac);
};

} // namespace pri::rename

#endif // PRI_RENAME_PRF_MODEL_HH
