#include "prf_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace pri::rename
{

namespace
{

double
cellPitch(unsigned ports)
{
    return 1.0 + PrfModel::kPortPitch * ports;
}

} // namespace

double
PrfModel::rawDelay(const PrfGeometry &g)
{
    PRI_ASSERT(g.entries >= 2 && g.bits >= 1);
    const unsigned ports = g.readPorts + g.writePorts;
    const double pitch = cellPitch(ports);
    const double wordline = g.bits * pitch;
    const double bitline = g.entries * pitch;
    const double decode = kDec * std::log2(
        static_cast<double>(g.entries));
    // Normalise wire lengths against a 64x64 single-pitch array so
    // the constants are dimensionless and comparable.
    return decode + kWire * (wordline + bitline) / 128.0;
}

double
PrfModel::rawArea(const PrfGeometry &g)
{
    const unsigned ports = g.readPorts + g.writePorts;
    const double pitch = cellPitch(ports);
    return static_cast<double>(g.entries) * g.bits * pitch * pitch;
}

double
PrfModel::rawEnergy(const PrfGeometry &g)
{
    const unsigned ports = g.readPorts + g.writePorts;
    const double pitch = cellPitch(ports);
    // One wordline and one bitline pair switch per access.
    return (g.bits * pitch + g.entries * pitch) / 128.0;
}

PrfEstimate
PrfModel::estimate(const PrfGeometry &g)
{
    PrfGeometry base;
    PrfEstimate e;
    e.accessDelay = rawDelay(g) / rawDelay(base);
    e.area = rawArea(g) / rawArea(base);
    e.energyPerAccess = rawEnergy(g) / rawEnergy(base);
    return e;
}

unsigned
PrfModel::entriesWithinDelay(double delay_budget,
                             const PrfGeometry &base, unsigned lo,
                             unsigned hi)
{
    PRI_ASSERT(lo >= 2 && lo <= hi);
    unsigned best = lo;
    for (unsigned r = lo; r <= hi; ++r) {
        PrfGeometry g = base;
        g.entries = r;
        if (rawDelay(g) <= delay_budget)
            best = r;
        else
            break;
    }
    return best;
}

unsigned
PrfModel::readPortsWithinDelay(double delay_budget,
                               const PrfGeometry &base, unsigned lo,
                               unsigned hi)
{
    PRI_ASSERT(lo >= 1 && lo <= hi);
    unsigned best = lo;
    for (unsigned p = lo; p <= hi; ++p) {
        PrfGeometry g = base;
        g.readPorts = p;
        if (rawDelay(g) <= delay_budget)
            best = p;
        else
            break;
    }
    return best;
}

unsigned
PrfModel::portsForIssueWidth(unsigned width, double inlined_frac)
{
    PRI_ASSERT(width >= 1 &&
               inlined_frac >= 0.0 && inlined_frac <= 1.0);
    const double needed = 2.0 * width * (1.0 - inlined_frac);
    const unsigned p = static_cast<unsigned>(std::ceil(needed));
    return p < 2 ? 2 : p;
}

} // namespace pri::rename
