#include "free_list.hh"

#include "common/logging.hh"

namespace pri::rename
{

FreeList::FreeList(unsigned num_phys_regs,
                   unsigned initially_allocated)
    : total(num_phys_regs), allocated(num_phys_regs, false)
{
    PRI_ASSERT(initially_allocated <= num_phys_regs);
    for (unsigned p = 0; p < initially_allocated; ++p)
        allocated[p] = true;
    allocatedCount = initially_allocated;
    // Stack order: highest-numbered register allocated first; order
    // is irrelevant to correctness.
    freeStack.reserve(num_phys_regs);
    for (unsigned p = initially_allocated; p < num_phys_regs; ++p)
        freeStack.push_back(static_cast<isa::PhysRegId>(p));
}

isa::PhysRegId
FreeList::allocate()
{
    PRI_ASSERT(!freeStack.empty(), "allocate from empty free list");
    const isa::PhysRegId p = freeStack.back();
    freeStack.pop_back();
    PRI_ASSERT(!allocated[p]);
    allocated[p] = true;
    ++allocatedCount;
    return p;
}

bool
FreeList::free(isa::PhysRegId preg)
{
    PRI_ASSERT(preg < total);
    if (!allocated[preg]) {
        ++nDuplicate;
        return false;
    }
    allocated[preg] = false;
    --allocatedCount;
    freeStack.push_back(preg);
    return true;
}

bool
FreeList::isAllocated(isa::PhysRegId preg) const
{
    PRI_ASSERT(preg < total);
    return allocated[preg];
}

} // namespace pri::rename
