/**
 * @file
 * Register rename map tables (paper §2.1).
 *
 * RamMapTable: one entry per logical register, each holding either a
 * physical register number or — with physical register inlining — an
 * immediate value (the paper's second "addressing mode" for the map).
 *
 * CamMapTable: one entry per physical register, tag-matched by
 * logical register number. Implemented to document and test the
 * paper's argument that PRI is NOT practical with CAM maps: a CAM
 * encodes physical register numbers positionally, so a value stored
 * as a "register number" could only be associated with one logical
 * register at a time.
 */

#ifndef PRI_RENAME_MAP_TABLE_HH
#define PRI_RENAME_MAP_TABLE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "isa/reg.hh"

namespace pri::rename
{

/**
 * One rename-map entry: a tagged union of physical register pointer
 * (register-indirect mode) and inlined immediate value.
 */
struct MapEntry
{
    bool imm = false;             ///< addressing mode bit
    isa::PhysRegId preg = isa::kInvalidPhysReg;
    uint64_t value = 0;           ///< inlined value when imm

    bool
    operator==(const MapEntry &o) const
    {
        if (imm != o.imm)
            return false;
        return imm ? value == o.value : preg == o.preg;
    }

    static MapEntry
    makePreg(isa::PhysRegId p)
    {
        return MapEntry{false, p, 0};
    }
    static MapEntry
    makeImm(uint64_t v)
    {
        return MapEntry{true, isa::kInvalidPhysReg, v};
    }
};

/**
 * RAM-style map table for one register class: 32 entries indexed by
 * logical register number. Checkpoints are whole-table copies, as in
 * the MIPS R10000 shadow maps.
 */
class RamMapTable
{
  public:
    using Table = std::array<MapEntry, isa::kNumLogicalRegs>;

    RamMapTable();

    const MapEntry &read(unsigned logical) const;
    void write(unsigned logical, const MapEntry &entry);

    /** Full-table copy, used for branch checkpoints. */
    Table copy() const { return table; }
    void restore(const Table &snapshot) { table = snapshot; }

    const Table &raw() const { return table; }

  private:
    Table table;
};

/**
 * CAM-style map table model: entries equal to the number of physical
 * registers, tag-matched on (logical register, valid bit). Provided
 * for the paper's §2.1 comparison; the out-of-order core always uses
 * the RAM map because inlining requires it.
 */
class CamMapTable
{
  public:
    explicit CamMapTable(unsigned num_phys_regs);

    /**
     * Associative lookup: the physical register currently holding
     * @p logical, or nullopt when unmapped.
     */
    std::optional<isa::PhysRegId> lookup(unsigned logical) const;

    /**
     * Map @p logical to @p preg: writes the tag at entry @p preg and
     * clears the valid bit of the previous mapping.
     * @return the previous physical register, if any.
     */
    std::optional<isa::PhysRegId> map(unsigned logical,
                                      isa::PhysRegId preg);

    /** Clear the valid bit of entry @p preg. */
    void unmap(isa::PhysRegId preg);

    /** Checkpoint is just the valid bits (the paper's observation). */
    std::vector<bool> checkpointValidBits() const;
    void restoreValidBits(const std::vector<bool> &bits);

    unsigned size() const { return static_cast<unsigned>(tags.size()); }

  private:
    std::vector<uint8_t> tags;  ///< logical register per entry
    std::vector<bool> valid;
};

} // namespace pri::rename

#endif // PRI_RENAME_MAP_TABLE_HH
