/**
 * @file
 * Physical register free list.
 *
 * The paper (§3.2) requires the free-list manager to tolerate
 * duplicate deallocations: a register freed early at retire (because
 * its value was inlined into the map) will be freed again when the
 * next writer of the same architected register commits. The free
 * list must enqueue each register at most once per allocation.
 */

#ifndef PRI_RENAME_FREE_LIST_HH
#define PRI_RENAME_FREE_LIST_HH

#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "isa/reg.hh"

namespace pri::rename
{

/** Duplicate-tolerant free list over one class's physical registers. */
class FreeList
{
  public:
    /**
     * @param num_phys_regs total physical registers in the class
     * @param initially_allocated how many low-numbered registers
     *        start out allocated (the committed architected state)
     */
    FreeList(unsigned num_phys_regs, unsigned initially_allocated);

    bool hasFree() const { return !freeStack.empty(); }
    size_t numFree() const { return freeStack.size(); }
    unsigned numAllocated() const { return allocatedCount; }
    unsigned size() const { return total; }

    /** Pop a free register; panics when empty (check hasFree()). */
    isa::PhysRegId allocate();

    /**
     * Return @p preg to the free list. Duplicate frees (already
     * free) are ignored, per the paper's requirement.
     * @return true if the register was actually freed now.
     */
    bool free(isa::PhysRegId preg);

    bool isAllocated(isa::PhysRegId preg) const;

    /** Number of duplicate frees that were ignored. */
    uint64_t duplicateFrees() const { return nDuplicate; }

    /** Transient-fault hooks (src/faults): the free stack is SRAM
     *  too. corruptSlot deliberately bypasses the allocated[]
     *  bookkeeping — a struck cell lies while the books stay
     *  truthful, which is exactly how the double-allocation failure
     *  mode arises in real hardware. */
    size_t slotCount() const { return freeStack.size(); }
    isa::PhysRegId slotAt(size_t i) const { return freeStack[i]; }
    void corruptSlot(size_t i, isa::PhysRegId v) { freeStack[i] = v; }

  private:
    unsigned total;
    /** Arena-backed when constructed under an ArenaScope: the free
     *  stack head is among the hottest rename-stage lines, so lanes
     *  of a SweepBatch keep theirs in their own arena slab. */
    HotVec<isa::PhysRegId> freeStack;
    std::vector<bool> allocated;
    unsigned allocatedCount = 0;
    uint64_t nDuplicate = 0;
};

} // namespace pri::rename

#endif // PRI_RENAME_FREE_LIST_HH
