#include "map_table.hh"

#include "common/logging.hh"

namespace pri::rename
{

RamMapTable::RamMapTable()
{
    // Identity initial mapping: logical r -> physical r.
    for (unsigned i = 0; i < isa::kNumLogicalRegs; ++i)
        table[i] = MapEntry::makePreg(static_cast<isa::PhysRegId>(i));
}

const MapEntry &
RamMapTable::read(unsigned logical) const
{
    PRI_ASSERT(logical < isa::kNumLogicalRegs);
    return table[logical];
}

void
RamMapTable::write(unsigned logical, const MapEntry &entry)
{
    PRI_ASSERT(logical < isa::kNumLogicalRegs);
    table[logical] = entry;
}

CamMapTable::CamMapTable(unsigned num_phys_regs)
    : tags(num_phys_regs, 0), valid(num_phys_regs, false)
{
    PRI_ASSERT(num_phys_regs >= isa::kNumLogicalRegs);
    for (unsigned i = 0; i < isa::kNumLogicalRegs; ++i) {
        tags[i] = static_cast<uint8_t>(i);
        valid[i] = true;
    }
}

std::optional<isa::PhysRegId>
CamMapTable::lookup(unsigned logical) const
{
    for (unsigned p = 0; p < tags.size(); ++p) {
        if (valid[p] && tags[p] == logical)
            return static_cast<isa::PhysRegId>(p);
    }
    return std::nullopt;
}

std::optional<isa::PhysRegId>
CamMapTable::map(unsigned logical, isa::PhysRegId preg)
{
    PRI_ASSERT(preg < tags.size());
    const auto prev = lookup(logical);
    if (prev)
        valid[*prev] = false;
    tags[preg] = static_cast<uint8_t>(logical);
    valid[preg] = true;
    return prev;
}

void
CamMapTable::unmap(isa::PhysRegId preg)
{
    PRI_ASSERT(preg < tags.size());
    valid[preg] = false;
}

std::vector<bool>
CamMapTable::checkpointValidBits() const
{
    return valid;
}

void
CamMapTable::restoreValidBits(const std::vector<bool> &bits)
{
    PRI_ASSERT(bits.size() == valid.size());
    valid = bits;
}

} // namespace pri::rename
