/**
 * @file
 * The register-management policy engine: renaming, checkpointing,
 * reference counting, Physical Register Inlining (PRI), and Early
 * Release (ER).
 *
 * This unit owns, per register class (INT / FP):
 *   - the RAM map table (with PRI's immediate addressing mode),
 *   - the duplicate-tolerant free list,
 *   - the per-physical-register scoreboard: complete flag, current
 *     mapping (the inverse of the map; its absence is the ER "unmap"
 *     flag), consumer reference counter, checkpoint reference
 *     counter, and pending-free state,
 *   - branch checkpoints (full map copies, R10000-style).
 *
 * The schemes of paper §3/§5 are switchable via RenameConfig:
 *   - Base: previous mapping freed when the redefining instruction
 *     commits.
 *   - ER [Moudgill et al.]: free as soon as complete + unmapped
 *     (current and checkpointed copies) + no pending consumers.
 *   - PRI: at writeback, a result representable in narrowBits (INT)
 *     or all-zeroes/ones (FP) is inlined into the map (subject to
 *     the Figure 7 WAW check) and its register freed early. WAR
 *     hazards against in-flight consumers are avoided by consumer
 *     reference counting (refcount) or by instantly rewriting the
 *     consumers' payload entries (ideal). Stale checkpoint pointers
 *     are handled by checkpoint reference counting (ckptcount) or by
 *     walking and updating every checkpointed copy (lazy).
 */

#ifndef PRI_RENAME_RENAME_UNIT_HH
#define PRI_RENAME_RENAME_UNIT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <map>
#include <vector>

#include "common/arena.hh"
#include "common/stats.hh"
#include "faults/fault_spec.hh"
#include "isa/reg.hh"
#include "rename/free_list.hh"
#include "rename/map_table.hh"

namespace pri::rename
{

/** Register-management scheme selection (paper §5 configurations). */
struct RenameConfig
{
    /** Physical registers per class (paper default: 64). */
    unsigned numPhysRegs = 64;
    /** Narrow-value width for INT inlining (7 @4-wide, 10 @8-wide). */
    unsigned narrowBitsInt = 7;

    bool pri = false;          ///< physical register inlining on
    bool priIdeal = false;     ///< instant payload update (vs refcount)
    bool lazyCkptUpdate = false; ///< lazy ckpt walk (vs ckpt counting)
    bool earlyRelease = false; ///< ER flags/counter scheme on

    /**
     * Virtual-physical registers (paper §6 future work, after
     * Gonzalez et al. [7] / Monreal et al. [17]): renaming hands out
     * virtual tags and never stalls for registers; physical storage
     * is claimed only at writeback, when the value actually exists.
     * numPhysRegs then bounds the number of *written, live* values
     * rather than the number of renamed destinations. The last
     * `width` instructions before the ROB head claim from a
     * reserved pool so the pipeline can always drain (the classic
     * VP deadlock avoidance).
     */
    bool virtualPhysical = false;
    /** Storage reserved for the oldest instructions under VP. */
    unsigned vpReserve = 4;

    /**
     * Checker-validation fault injection (tests only): on a narrow
     * writeback that passes the Figure 7 WAW check, release the
     * register *without* inlining its value into the map — the
     * reclaim-ordering bug PRI's map update exists to prevent. A
     * freed register then stays architecturally live, and the next
     * reallocation corrupts it. Never set outside tests.
     */
    bool injectFreeWithoutInline = false;

    /** Human-readable scheme label for reports. */
    std::string schemeName() const;

    /** Size of the rename-tag namespace: numPhysRegs normally, a
     *  large virtual tag space under virtual-physical renaming. */
    unsigned
    renameTagSpace() const
    {
        return virtualPhysical
            ? (numPhysRegs > 1024 ? numPhysRegs : 1024)
            : numPhysRegs;
    }

    // --- paper configurations ---
    static RenameConfig base(unsigned pregs, unsigned narrow_bits);
    static RenameConfig er(unsigned pregs, unsigned narrow_bits);
    static RenameConfig priRefcountCkptcount(unsigned pregs,
                                             unsigned narrow_bits);
    static RenameConfig priRefcountLazy(unsigned pregs,
                                        unsigned narrow_bits);
    static RenameConfig priIdealCkptcount(unsigned pregs,
                                          unsigned narrow_bits);
    static RenameConfig priIdealLazy(unsigned pregs,
                                     unsigned narrow_bits);
    static RenameConfig priPlusEr(unsigned pregs,
                                  unsigned narrow_bits);
    static RenameConfig infinite(unsigned narrow_bits);
    static RenameConfig virtualPhys(unsigned pregs,
                                    unsigned narrow_bits);
    static RenameConfig virtualPhysPlusPri(unsigned pregs,
                                           unsigned narrow_bits);
};

/** What the rename stage hands a consumer for one source operand. */
struct SrcRead
{
    bool valid = false;     ///< operand exists
    bool imm = false;       ///< payload carries an immediate
    isa::RegClass cls = isa::RegClass::Int;
    isa::PhysRegId preg = isa::kInvalidPhysReg;
    uint64_t value = 0;     ///< operand value (functional)
    bool refHeld = false;   ///< holds a consumer reference on preg
};

/**
 * Callback invoked in the ideal-PRI flavour when a register's value
 * is inlined: the core must rewrite every in-flight payload entry
 * that names (cls, preg) to carry the immediate instead, clearing
 * refHeld on each.
 */
using IdealInlineHook =
    std::function<void(isa::RegClass, isa::PhysRegId, uint64_t)>;

/** Identifier for a branch checkpoint. */
using CkptId = uint64_t;

/**
 * Rename-side counters interned against the StatGroup once at
 * construction; the rename/writeback/free hot paths update them
 * through cached references instead of string-keyed map lookups.
 */
struct RenameStats
{
    explicit RenameStats(StatGroup &sg);

    StatScalar &cycles;
    StatScalar &occupancyIntAccum;
    StatScalar &occupancyFpAccum;
    StatScalar &srcImmReads;
    StatScalar &srcPregReads;
    StatScalar &destAllocs;
    StatScalar &checkpointsCreated;
    StatScalar &checkpointsSquashed;
    StatScalar &checkpointsRestored;
    StatScalar &narrowResultsInt;
    StatScalar &narrowResultsFp;
    StatScalar &inlinedCurrentMap;
    StatScalar &narrowButRemapped;
    StatScalar &lazyCkptUpdates;
    StatScalar &idealPayloadRewrites;
    StatScalar &vpWritebackStalls;
    StatScalar &vpEmergencyClaims;
    StatScalar &vpStorageClaims;
    StatScalar &commitPrevWasImm;
    StatScalar &duplicateCommitFrees;
    StatScalar &squashDuplicateFrees;
    StatScalar &priEarlyFrees;
    StatScalar &erEarlyFrees;
    StatScalar &frees;
    StatAverage &lifeAllocToWrite;
    StatAverage &lifeWriteToLastRead;
    StatAverage &lifeLastReadToRelease;
    StatAverage &lifeTotal;
};

/** The rename/retire/commit-side register management engine. */
class RenameUnit
{
  public:
    RenameUnit(const RenameConfig &config, StatGroup &stats);

    const RenameConfig &config() const { return cfg; }

    /** Install the ideal-flavour payload rewrite hook. */
    void setIdealInlineHook(IdealInlineHook hook);

    /** Advance time; accumulates occupancy statistics. */
    void beginCycle(uint64_t cycle);

    // ---- rename stage ----

    /** True when a destination of class @p cls can be renamed now. */
    bool canRename(isa::RegClass cls) const;

    /** Read one source operand through the map. */
    SrcRead readSrc(isa::RegId src);

    /** Result of renaming a destination register. */
    struct DestRename
    {
        isa::PhysRegId preg = isa::kInvalidPhysReg;
        uint64_t gen = 0;      ///< allocation generation of preg
        MapEntry prev;         ///< previous map entry of the logical
        uint64_t prevGen = 0;  ///< generation of prev.preg (if preg)
    };

    /**
     * Allocate a destination register and update the map.
     * @param dst logical destination
     * @param future_value the value this instruction will produce
     *        (functional bookkeeping; timing is the core's business)
     */
    DestRename renameDest(isa::RegId dst, uint64_t future_value);

    // ---- branch checkpoints ----

    /** Checkpoint both map tables (and take checkpoint references). */
    CkptId createCheckpoint();

    /**
     * Pre-fill the checkpoint node pool so createCheckpoint never
     * allocates, even the first time the in-flight branch count
     * reaches a new high-water mark. Call once, before renaming
     * starts, with an upper bound on simultaneously live
     * checkpoints (the core passes its checkpoint-pool capacity).
     */
    void reserveCheckpointNodes(unsigned n);

    /**
     * Branch resolved (correctly or not): the shadow map can no
     * longer be restored, so PRI's checkpoint reference counters
     * (kept per Akkary-style checkpoint retirement) are dropped.
     * The checkpoint record itself survives to commit because the
     * published Early Release scheme requires the unmap flag to be
     * true in every checkpointed copy, and copies are kept to the
     * commit (exception-precise) horizon.
     */
    void resolveCheckpoint(CkptId id);

    /** Branch committed: drop the checkpoint entirely. */
    void releaseCheckpoint(CkptId id);

    /**
     * Branch mispredicted: restore the current maps from the
     * checkpoint. The checkpoint stays alive until the branch
     * commits (releaseCheckpoint) — it may be restored again only
     * in the sense of remaining referenced.
     */
    void restoreCheckpoint(CkptId id);

    /** Squashed younger branch: drop checkpoint and references. */
    void discardCheckpoint(CkptId id);

    // ---- consumer side ----

    /** Consumer finished reading its operand (successful execute). */
    void consumerDone(SrcRead &src);

    /** Consumer squashed before reading. */
    void consumerSquashed(SrcRead &src);

    // ---- retire (writeback) stage ----

    /**
     * Result written back to the PRF. Sets the complete flag, and —
     * with PRI — performs the significance check, the Figure 7 WAW
     * check, the map/checkpoint updates, and the early free.
     * @p gen must be the allocation generation from renameDest.
     *
     * Under virtual-physical renaming this is also where physical
     * storage is claimed; @p privileged marks instructions near the
     * ROB head that may use the reserved pool.
     * @return false when no storage is available (VP only) — the
     *         caller must retry the writeback later.
     */
    bool writeback(isa::RegId dst, isa::PhysRegId preg, uint64_t gen,
                   uint64_t value, bool privileged = true);

    /** Written, live values currently occupying physical storage
     *  (VP accounting; equals occupancy() in conventional mode). */
    unsigned storageInUse(isa::RegClass cls) const;

    // ---- commit stage ----

    /**
     * Redefining instruction committed: free the previous mapping.
     * Duplicate frees (the register was already inlined-and-freed,
     * possibly even reallocated) are detected via @p prev_gen and
     * ignored, per the paper's free-list requirement (§3.2).
     */
    void commitDest(isa::RegClass cls, const MapEntry &prev,
                    uint64_t prev_gen);

    // ---- squash ----

    /** Free the destination register of a squashed instruction. */
    void squashDest(isa::RegClass cls, isa::PhysRegId preg,
                    uint64_t gen);

    // ---- introspection (tests / stats / invariants) ----

    /** Current map entry for a logical register. */
    const MapEntry &mapEntry(isa::RegId reg) const;

    /** Functional value of an allocated physical register. */
    uint64_t physRegValue(isa::RegClass cls, isa::PhysRegId p) const;

    /** Allocation generation of a physical register (matches the
     *  gen returned by renameDest while the producer owns it). */
    uint64_t physRegGen(isa::RegClass cls, isa::PhysRegId p) const;

    unsigned occupancy(isa::RegClass cls) const;
    bool isAllocated(isa::RegClass cls, isa::PhysRegId p) const;
    int consumerRefs(isa::RegClass cls, isa::PhysRegId p) const;
    int ckptRefs(isa::RegClass cls, isa::PhysRegId p) const;
    size_t liveCheckpoints() const { return ckpts.size(); }

    /** Check internal invariants; panics on violation. */
    void checkInvariants() const;

    // ---- transient-fault hook (src/faults) ----

    /**
     * Apply @p spec's mutation to one seeded target inside this
     * unit's SRAM structures: a PRF value cell, a current map-table
     * entry (including PRI's inlined immediates), a free-list slot,
     * or a live checkpoint's map copy. Deliberately skips the
     * bookkeeping a real strike could not reach (mappedBy,
     * allocated[], reference counters), so the downstream outcome —
     * masked, detected, silent corruption, hang, crash — emerges
     * from the machine rather than from the injector.
     * @return true when a target existed and was mutated; false when
     *         the strike landed in empty state (trivially masked).
     */
    bool applyFault(const faults::FaultSpec &spec, uint64_t rnd);

  private:
    struct PregInfo
    {
        uint64_t value = 0;       ///< functional register contents
        uint64_t gen = 0;         ///< allocation generation
        int consumerRefs = 0;     ///< renamed-but-not-done consumers
        int ckptRefs = 0;         ///< unresolved checkpoints naming this
        /** Id of the youngest checkpoint taken while this register
         *  was still the current mapping. ER may free only once
         *  every checkpoint up to this id has died (the "unmapped in
         *  all checkpointed copies" condition at commit horizon). */
        uint64_t erUnmapWatermark = 0;
        int16_t mappedBy = -1;    ///< logical reg (flat) or -1
        bool complete = false;    ///< written back
        bool pendingNarrowFree = false; ///< PRI early-free armed
        bool pendingCommitFree = false; ///< redefiner committed
        bool holdsStorage = false; ///< VP: claimed physical storage
        // lifetime bookkeeping
        uint64_t allocCycle = 0;
        uint64_t writeCycle = 0;
        uint64_t lastReadCycle = 0;
        bool everRead = false;
    };

    struct ClassState
    {
        RamMapTable map;
        FreeList freeList;
        HotVec<PregInfo> pregs; ///< arena-backed under an ArenaScope
        unsigned storageUsed = 0; ///< VP: written live values

        ClassState(unsigned num_phys, unsigned num_arch)
            : freeList(num_phys, num_arch), pregs(num_phys)
        {
        }
    };

    struct Checkpoint
    {
        RamMapTable::Table intMap;
        RamMapTable::Table fpMap;
        bool resolved = false;
    };

    ClassState &state(isa::RegClass cls);
    const ClassState &state(isa::RegClass cls) const;

    /** True when @p value qualifies for inlining in class @p cls. */
    bool isNarrow(isa::RegClass cls, uint64_t value) const;

    /** Attempt to free; respects mapping/refs/eligibility rules. */
    void tryFree(isa::RegClass cls, isa::PhysRegId p);

    /** Unconditional free with lifetime accounting. */
    void doFree(isa::RegClass cls, isa::PhysRegId p, bool squashed);

    /** Whether checkpoint reference counters are maintained. */
    bool useCkptRefs() const;

    void takeCkptRefs(const Checkpoint &c, int delta);

    /** Oldest live checkpoint advanced: retry ER frees. */
    void sweepErFrees();

    /** True when every checkpoint up to @p watermark has died. */
    bool erCkptHorizonClear(uint64_t watermark) const;

    /** Retire a checkpoint's map node into the recycling pool. */
    void recycleCkptNode(std::map<CkptId, Checkpoint>::iterator it);

    RenameConfig cfg;
    RenameStats stats;
    ClassState intState;
    ClassState fpState;
    std::map<CkptId, Checkpoint> ckpts;
    /**
     * Extracted map nodes awaiting reuse. Checkpoints churn once per
     * branch; recycling the nodes (C++17 node handles, rekeyed on
     * reuse) makes the steady state allocation-free while keeping
     * std::map's ordered iteration and lookups untouched.
     */
    std::vector<std::map<CkptId, Checkpoint>::node_type> ckptNodePool;
    /**
     * Live checkpoints in id (age) order, as stable pointers into
     * the map's nodes. The lazy-update walk in writeback visits
     * every live checkpoint once per narrow result, which makes
     * tree iteration the hot loop; this flat mirror turns it into
     * a cache-friendly array scan. Maintained by createCheckpoint
     * and recycleCkptNode; ids are monotone, so creation appends
     * in sorted order.
     */
    std::vector<std::pair<CkptId, Checkpoint *>> ckptSeq_;
    CkptId nextCkptId = 1;
    IdealInlineHook idealHook;
    uint64_t now = 0;
};

} // namespace pri::rename

#endif // PRI_RENAME_RENAME_UNIT_HH
