#include "rename_unit.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/hashing.hh"
#include "common/logging.hh"

namespace pri::rename
{

// ---------------------------------------------------------------
// RenameConfig
// ---------------------------------------------------------------

std::string
RenameConfig::schemeName() const
{
    if (virtualPhysical)
        return pri ? "VP+PRI" : "VP";
    if (numPhysRegs >= 1024)
        return "InfPR";
    if (pri && earlyRelease)
        return "PRI+ER";
    if (pri) {
        std::string n = priIdeal ? "PRI-ideal" : "PRI-refcount";
        n += lazyCkptUpdate ? "+lazy" : "+ckptcount";
        return n;
    }
    if (earlyRelease)
        return "ER";
    return "Base";
}

RenameConfig
RenameConfig::base(unsigned pregs, unsigned narrow_bits)
{
    RenameConfig c;
    c.numPhysRegs = pregs;
    c.narrowBitsInt = narrow_bits;
    return c;
}

RenameConfig
RenameConfig::er(unsigned pregs, unsigned narrow_bits)
{
    RenameConfig c = base(pregs, narrow_bits);
    c.earlyRelease = true;
    return c;
}

RenameConfig
RenameConfig::priRefcountCkptcount(unsigned pregs,
                                   unsigned narrow_bits)
{
    RenameConfig c = base(pregs, narrow_bits);
    c.pri = true;
    return c;
}

RenameConfig
RenameConfig::priRefcountLazy(unsigned pregs, unsigned narrow_bits)
{
    RenameConfig c = priRefcountCkptcount(pregs, narrow_bits);
    c.lazyCkptUpdate = true;
    return c;
}

RenameConfig
RenameConfig::priIdealCkptcount(unsigned pregs, unsigned narrow_bits)
{
    RenameConfig c = priRefcountCkptcount(pregs, narrow_bits);
    c.priIdeal = true;
    return c;
}

RenameConfig
RenameConfig::priIdealLazy(unsigned pregs, unsigned narrow_bits)
{
    RenameConfig c = priIdealCkptcount(pregs, narrow_bits);
    c.lazyCkptUpdate = true;
    return c;
}

RenameConfig
RenameConfig::priPlusEr(unsigned pregs, unsigned narrow_bits)
{
    RenameConfig c = priRefcountCkptcount(pregs, narrow_bits);
    c.earlyRelease = true;
    return c;
}

RenameConfig
RenameConfig::infinite(unsigned narrow_bits)
{
    // Enough registers that renaming can never stall: ROB-depth of
    // in-flight destinations plus the architected state.
    return base(1024, narrow_bits);
}

RenameConfig
RenameConfig::virtualPhys(unsigned pregs, unsigned narrow_bits)
{
    RenameConfig c = base(pregs, narrow_bits);
    c.virtualPhysical = true;
    return c;
}

RenameConfig
RenameConfig::virtualPhysPlusPri(unsigned pregs,
                                 unsigned narrow_bits)
{
    RenameConfig c = virtualPhys(pregs, narrow_bits);
    c.pri = true;
    return c;
}

// ---------------------------------------------------------------
// RenameUnit
// ---------------------------------------------------------------

RenameStats::RenameStats(StatGroup &sg)
    : cycles(sg.scalar("rename.cycles")),
      occupancyIntAccum(sg.scalar("rename.occupancyIntAccum")),
      occupancyFpAccum(sg.scalar("rename.occupancyFpAccum")),
      srcImmReads(sg.scalar("rename.srcImmReads")),
      srcPregReads(sg.scalar("rename.srcPregReads")),
      destAllocs(sg.scalar("rename.destAllocs")),
      checkpointsCreated(sg.scalar("rename.checkpointsCreated")),
      checkpointsSquashed(sg.scalar("rename.checkpointsSquashed")),
      checkpointsRestored(sg.scalar("rename.checkpointsRestored")),
      narrowResultsInt(sg.scalar("pri.narrowResultsInt")),
      narrowResultsFp(sg.scalar("pri.narrowResultsFp")),
      inlinedCurrentMap(sg.scalar("pri.inlinedCurrentMap")),
      narrowButRemapped(sg.scalar("pri.narrowButRemapped")),
      lazyCkptUpdates(sg.scalar("pri.lazyCkptUpdates")),
      idealPayloadRewrites(sg.scalar("pri.idealPayloadRewrites")),
      vpWritebackStalls(sg.scalar("vp.writebackStalls")),
      vpEmergencyClaims(sg.scalar("vp.emergencyClaims")),
      vpStorageClaims(sg.scalar("vp.storageClaims")),
      commitPrevWasImm(sg.scalar("rename.commitPrevWasImm")),
      duplicateCommitFrees(sg.scalar("rename.duplicateCommitFrees")),
      squashDuplicateFrees(sg.scalar("rename.squashDuplicateFrees")),
      priEarlyFrees(sg.scalar("pri.earlyFrees")),
      erEarlyFrees(sg.scalar("er.earlyFrees")),
      frees(sg.scalar("rename.frees")),
      lifeAllocToWrite(sg.average("lifetime.allocToWrite")),
      lifeWriteToLastRead(sg.average("lifetime.writeToLastRead")),
      lifeLastReadToRelease(sg.average("lifetime.lastReadToRelease")),
      lifeTotal(sg.average("lifetime.total"))
{
}

RenameUnit::RenameUnit(const RenameConfig &config, StatGroup &sg)
    : cfg(config), stats(sg),
      intState(config.renameTagSpace(), isa::kNumLogicalRegs),
      fpState(config.renameTagSpace(), isa::kNumLogicalRegs)
{
    PRI_ASSERT(cfg.numPhysRegs > isa::kNumLogicalRegs,
               "need more physical than architected registers");
    PRI_ASSERT(!cfg.virtualPhysical ||
                   cfg.numPhysRegs >
                       isa::kNumLogicalRegs + cfg.vpReserve,
               "VP storage budget too small");
    // Architected registers start allocated, complete, mapped, and
    // holding physical storage.
    for (auto *st : {&intState, &fpState}) {
        for (unsigned i = 0; i < isa::kNumLogicalRegs; ++i) {
            auto &info = st->pregs[i];
            info.complete = true;
            info.mappedBy = static_cast<int16_t>(i);
            info.holdsStorage = true;
        }
        st->storageUsed = isa::kNumLogicalRegs;
    }
    // Flat mappedBy uses the per-class logical index (0..31); class
    // is implicit in which ClassState the preg lives in.
}

void
RenameUnit::setIdealInlineHook(IdealInlineHook hook)
{
    idealHook = std::move(hook);
}

RenameUnit::ClassState &
RenameUnit::state(isa::RegClass cls)
{
    return cls == isa::RegClass::Int ? intState : fpState;
}

const RenameUnit::ClassState &
RenameUnit::state(isa::RegClass cls) const
{
    return cls == isa::RegClass::Int ? intState : fpState;
}

bool
RenameUnit::useCkptRefs() const
{
    return cfg.earlyRelease || (cfg.pri && !cfg.lazyCkptUpdate);
}

bool
RenameUnit::isNarrow(isa::RegClass cls, uint64_t value) const
{
    if (cls == isa::RegClass::Int)
        return fitsInSignedBits(value, cfg.narrowBitsInt);
    return fpValueTrivial(value);
}

void
RenameUnit::beginCycle(uint64_t cycle)
{
    now = cycle;
    ++stats.cycles;
    stats.occupancyIntAccum +=
        cfg.virtualPhysical ? intState.storageUsed
                            : intState.freeList.numAllocated();
    stats.occupancyFpAccum +=
        cfg.virtualPhysical ? fpState.storageUsed
                            : fpState.freeList.numAllocated();
}

bool
RenameUnit::canRename(isa::RegClass cls) const
{
    return state(cls).freeList.hasFree();
}

SrcRead
RenameUnit::readSrc(isa::RegId src)
{
    PRI_ASSERT(src.valid());
    auto &st = state(src.cls);
    const MapEntry &e = st.map.read(src.idx);

    SrcRead r;
    r.valid = true;
    r.cls = src.cls;
    if (e.imm) {
        r.imm = true;
        r.value = e.value;
        ++stats.srcImmReads;
        return r;
    }
    r.preg = e.preg;
    auto &info = st.pregs[e.preg];
    r.value = info.value;
    info.consumerRefs += 1;
    r.refHeld = true;
    ++stats.srcPregReads;
    return r;
}

RenameUnit::DestRename
RenameUnit::renameDest(isa::RegId dst, uint64_t future_value)
{
    PRI_ASSERT(dst.valid());
    auto &st = state(dst.cls);
    PRI_ASSERT(st.freeList.hasFree(), "rename without free register");

    DestRename out;
    out.prev = st.map.read(dst.idx);
    if (!out.prev.imm) {
        auto &prev_info = st.pregs[out.prev.preg];
        out.prevGen = prev_info.gen;
        PRI_ASSERT(prev_info.mappedBy ==
                   static_cast<int16_t>(dst.idx));
        // The ER "unmap" event: the old register is no longer the
        // current mapping. Record the checkpoint horizon it must
        // outlive before ER may free it.
        prev_info.mappedBy = -1;
        prev_info.erUnmapWatermark = nextCkptId - 1;
    }

    const isa::PhysRegId p = st.freeList.allocate();
    auto &info = st.pregs[p];
    if (!cfg.virtualPhysical) {
        // Conventional allocation claims physical storage up front;
        // VP claims only at writeback, when the value exists.
        info.holdsStorage = true;
        st.storageUsed += 1;
    }
    info.value = future_value;
    info.gen += 1;
    info.consumerRefs = 0;
    info.complete = false;
    info.pendingNarrowFree = false;
    info.pendingCommitFree = false;
    info.mappedBy = static_cast<int16_t>(dst.idx);
    info.allocCycle = now;
    info.writeCycle = 0;
    info.lastReadCycle = 0;
    info.everRead = false;
    PRI_ASSERT(info.ckptRefs == 0);

    out.preg = p;
    out.gen = info.gen;
    st.map.write(dst.idx, MapEntry::makePreg(p));
    ++stats.destAllocs;

    // The unmapped previous register may now satisfy ER conditions.
    if (!out.prev.imm)
        tryFree(dst.cls, out.prev.preg);
    return out;
}

CkptId
RenameUnit::createCheckpoint()
{
    const CkptId id = nextCkptId++;
    if (!ckptNodePool.empty()) {
        auto node = std::move(ckptNodePool.back());
        ckptNodePool.pop_back();
        node.key() = id;
        Checkpoint &c = node.mapped();
        c.intMap = intState.map.copy();
        c.fpMap = fpState.map.copy();
        c.resolved = false;
        if (useCkptRefs())
            takeCkptRefs(c, +1);
        const auto res = ckpts.insert(std::move(node));
        ckptSeq_.emplace_back(id, &res.position->second);
    } else {
        Checkpoint c;
        c.intMap = intState.map.copy();
        c.fpMap = fpState.map.copy();
        if (useCkptRefs())
            takeCkptRefs(c, +1);
        const auto it = ckpts.emplace(id, std::move(c)).first;
        ckptSeq_.emplace_back(id, &it->second);
    }
    ++stats.checkpointsCreated;
    return id;
}

void
RenameUnit::reserveCheckpointNodes(unsigned n)
{
    PRI_ASSERT(ckpts.empty(),
               "reserve before any checkpoints exist");
    ckptSeq_.reserve(n);
    while (ckptNodePool.size() < n) {
        // Temporary keys only: reused nodes get their key
        // rewritten in createCheckpoint, so ids stay untouched.
        const CkptId key =
            static_cast<CkptId>(ckptNodePool.size());
        ckptNodePool.push_back(
            ckpts.extract(ckpts.emplace(key, Checkpoint{}).first));
    }
}

void
RenameUnit::recycleCkptNode(
    std::map<CkptId, Checkpoint>::iterator it)
{
    const CkptId id = it->first;
    const auto seq = std::lower_bound(
        ckptSeq_.begin(), ckptSeq_.end(), id,
        [](const auto &e, CkptId v) { return e.first < v; });
    PRI_ASSERT(seq != ckptSeq_.end() && seq->first == id,
               "checkpoint missing from the id-ordered mirror");
    ckptSeq_.erase(seq);
    ckptNodePool.push_back(ckpts.extract(it));
}

void
RenameUnit::takeCkptRefs(const Checkpoint &c, int delta)
{
    for (unsigned i = 0; i < isa::kNumLogicalRegs; ++i) {
        if (!c.intMap[i].imm) {
            intState.pregs[c.intMap[i].preg].ckptRefs += delta;
            if (delta < 0)
                tryFree(isa::RegClass::Int, c.intMap[i].preg);
        }
        if (!c.fpMap[i].imm) {
            fpState.pregs[c.fpMap[i].preg].ckptRefs += delta;
            if (delta < 0)
                tryFree(isa::RegClass::Fp, c.fpMap[i].preg);
        }
    }
}

bool
RenameUnit::erCkptHorizonClear(uint64_t watermark) const
{
    return ckpts.empty() || ckpts.begin()->first > watermark;
}

void
RenameUnit::sweepErFrees()
{
    for (auto cls : {isa::RegClass::Int, isa::RegClass::Fp}) {
        const auto n = state(cls).pregs.size();
        for (unsigned p = 0; p < n; ++p)
            tryFree(cls, static_cast<isa::PhysRegId>(p));
    }
}

void
RenameUnit::resolveCheckpoint(CkptId id)
{
    auto it = ckpts.find(id);
    PRI_ASSERT(it != ckpts.end(), "resolve of unknown checkpoint");
    PRI_ASSERT(!it->second.resolved, "checkpoint resolved twice");
    it->second.resolved = true;
    if (useCkptRefs())
        takeCkptRefs(it->second, -1);
}

void
RenameUnit::releaseCheckpoint(CkptId id)
{
    auto it = ckpts.find(id);
    PRI_ASSERT(it != ckpts.end(), "release of unknown checkpoint");
    PRI_ASSERT(it->second.resolved,
               "checkpoint committed before the branch resolved");
    const bool was_oldest = it == ckpts.begin();
    recycleCkptNode(it);
    if (cfg.earlyRelease && was_oldest)
        sweepErFrees();
}

void
RenameUnit::discardCheckpoint(CkptId id)
{
    auto it = ckpts.find(id);
    PRI_ASSERT(it != ckpts.end(), "discard of unknown checkpoint");
    if (useCkptRefs() && !it->second.resolved)
        takeCkptRefs(it->second, -1);
    const bool was_oldest = it == ckpts.begin();
    recycleCkptNode(it);
    if (cfg.earlyRelease && was_oldest)
        sweepErFrees();
    ++stats.checkpointsSquashed;
}

void
RenameUnit::restoreCheckpoint(CkptId id)
{
    auto it = ckpts.find(id);
    PRI_ASSERT(it != ckpts.end(), "restore of unknown checkpoint");
    PRI_ASSERT(!it->second.resolved,
               "restore of an already-resolved checkpoint");
    const Checkpoint &c = it->second;

    for (auto cls : {isa::RegClass::Int, isa::RegClass::Fp}) {
        auto &st = state(cls);
        const auto &snap =
            cls == isa::RegClass::Int ? c.intMap : c.fpMap;

        // Unmap everything the current map names.
        for (unsigned i = 0; i < isa::kNumLogicalRegs; ++i) {
            const MapEntry &cur = st.map.read(i);
            if (!cur.imm)
                st.pregs[cur.preg].mappedBy = -1;
        }
        // Install the checkpointed mappings. A register that was
        // already inlined-and-armed for freeing is restored in
        // immediate mode (its value is complete by definition), so
        // it can never be resurrected as a live mapping.
        for (unsigned i = 0; i < isa::kNumLogicalRegs; ++i) {
            MapEntry e = snap[i];
            if (!e.imm) {
                auto &info = st.pregs[e.preg];
                PRI_ASSERT(st.freeList.isAllocated(e.preg),
                           "checkpoint names a freed register");
                if (info.pendingNarrowFree) {
                    PRI_ASSERT(info.complete);
                    e = MapEntry::makeImm(info.value);
                } else {
                    info.mappedBy = static_cast<int16_t>(i);
                }
            }
            st.map.write(i, e);
        }
        // Registers that fell out of the map may now be freeable.
        for (unsigned i = 0; i < isa::kNumLogicalRegs; ++i) {
            if (!snap[i].imm)
                tryFree(cls, snap[i].preg);
        }
    }
    ++stats.checkpointsRestored;
}

void
RenameUnit::consumerDone(SrcRead &src)
{
    if (!src.valid || src.imm)
        return;
    auto &st = state(src.cls);
    auto &info = st.pregs[src.preg];
    info.lastReadCycle = now;
    info.everRead = true;
    if (src.refHeld) {
        src.refHeld = false;
        PRI_ASSERT(info.consumerRefs > 0);
        info.consumerRefs -= 1;
        tryFree(src.cls, src.preg);
    }
}

void
RenameUnit::consumerSquashed(SrcRead &src)
{
    if (!src.valid || src.imm || !src.refHeld)
        return;
    auto &st = state(src.cls);
    auto &info = st.pregs[src.preg];
    src.refHeld = false;
    PRI_ASSERT(info.consumerRefs > 0);
    info.consumerRefs -= 1;
    tryFree(src.cls, src.preg);
}

bool
RenameUnit::writeback(isa::RegId dst, isa::PhysRegId preg,
                      uint64_t gen, uint64_t value, bool privileged)
{
    PRI_ASSERT(dst.valid());
    auto &st = state(dst.cls);
    auto &info = st.pregs[preg];
    if (cfg.virtualPhysical &&
        (!st.freeList.isAllocated(preg) || info.gen != gen)) {
        // A retried VP writeback whose register was meanwhile freed
        // (e.g. by ER after the unmap): nothing left to store.
        return true;
    }
    PRI_ASSERT(st.freeList.isAllocated(preg) && info.gen == gen,
               "writeback to a register the producer no longer owns");
    PRI_ASSERT(info.value == value,
               "writeback value differs from rename-time value");
    const bool first_attempt = !info.complete;
    info.complete = true;
    if (first_attempt)
        info.writeCycle = now;

    if (first_attempt && cfg.pri && isNarrow(dst.cls, value)) {
        ++(dst.cls == isa::RegClass::Int ? stats.narrowResultsInt
                                      : stats.narrowResultsFp);

        // Figure 7 WAW check on the current map: inline only if the
        // entry still names this register.
        const MapEntry &cur = st.map.read(dst.idx);
        if (!cur.imm && cur.preg == preg) {
            if (!cfg.injectFreeWithoutInline) {
                st.map.write(dst.idx, MapEntry::makeImm(value));
            }
            info.mappedBy = -1;
            info.erUnmapWatermark = nextCkptId - 1;
            ++stats.inlinedCurrentMap;
        } else {
            ++stats.narrowButRemapped;
        }

        // Lazy scheme: walk every checkpointed copy and apply the
        // same check-and-update (Figure 7 "More checkpoints?" loop).
        if (cfg.lazyCkptUpdate) {
            for (auto &[id, cp] : ckptSeq_) {
                Checkpoint &c = *cp;
                auto &snap = dst.cls == isa::RegClass::Int
                    ? c.intMap : c.fpMap;
                MapEntry &e = snap[dst.idx];
                if (!e.imm && e.preg == preg) {
                    if (useCkptRefs() && !c.resolved) {
                        PRI_ASSERT(info.ckptRefs > 0);
                        info.ckptRefs -= 1;
                    }
                    e = MapEntry::makeImm(value);
                    ++stats.lazyCkptUpdates;
                }
            }
        }

        info.pendingNarrowFree = true;

        if (cfg.priIdeal && info.consumerRefs > 0) {
            // Instant associative payload-RAM update: all in-flight
            // consumers switch to the immediate and drop their
            // references.
            PRI_ASSERT(idealHook,
                       "ideal PRI requires the payload rewrite hook");
            idealHook(dst.cls, preg, value);
            PRI_ASSERT(info.consumerRefs == 0,
                       "ideal payload rewrite left references");
            ++stats.idealPayloadRewrites;
        }
        tryFree(dst.cls, preg);
    } else if (first_attempt) {
        // ER may be able to free immediately if already unmapped.
        tryFree(dst.cls, preg);
    }

    // Virtual-physical storage claim: needed only if the value
    // survived the early-free paths above (an inlined-and-freed
    // value never consumes a physical register at all — the paper's
    // §6 VP+PRI synergy).
    if (cfg.virtualPhysical && st.freeList.isAllocated(preg) &&
        info.gen == gen && !info.holdsStorage) {
        // Non-privileged writebacks stop short of the reserve; the
        // oldest unretired instruction may always claim — even past
        // the nominal budget — as the guaranteed-forward-progress
        // escape valve (cf. the conflict-resolution mechanisms of
        // the virtual-physical register papers). Overshoot is
        // transient and bounded by the commit width.
        const unsigned limit = cfg.numPhysRegs - cfg.vpReserve;
        if (!privileged && st.storageUsed >= limit) {
            ++stats.vpWritebackStalls;
            return false;
        }
        if (st.storageUsed >= cfg.numPhysRegs)
            ++stats.vpEmergencyClaims;
        info.holdsStorage = true;
        st.storageUsed += 1;
        ++stats.vpStorageClaims;
    }
    return true;
}

void
RenameUnit::commitDest(isa::RegClass cls, const MapEntry &prev,
                       uint64_t prev_gen)
{
    if (prev.imm) {
        // The previous mapping was an inlined value: no register to
        // free (it was freed when the value was inlined).
        ++stats.commitPrevWasImm;
        return;
    }
    auto &st = state(cls);
    auto &info = st.pregs[prev.preg];
    if (!st.freeList.isAllocated(prev.preg) || info.gen != prev_gen) {
        // Already freed early (and possibly reallocated): the
        // duplicate deallocation the paper's free list must ignore.
        ++stats.duplicateCommitFrees;
        return;
    }
    info.pendingCommitFree = true;
    tryFree(cls, prev.preg);
    PRI_ASSERT(!st.freeList.isAllocated(prev.preg) ||
                   info.ckptRefs > 0 || info.consumerRefs > 0 ||
                   info.mappedBy >= 0,
               "commit-time free unexpectedly blocked");
}

void
RenameUnit::squashDest(isa::RegClass cls, isa::PhysRegId preg,
                       uint64_t gen)
{
    auto &st = state(cls);
    auto &info = st.pregs[preg];
    if (!st.freeList.isAllocated(preg) || info.gen != gen) {
        // Freed early before the squash (narrow value inlined).
        ++stats.squashDuplicateFrees;
        return;
    }
    PRI_ASSERT(info.mappedBy < 0,
               "squashed register still mapped after restore");
    PRI_ASSERT(info.consumerRefs == 0,
               "squashed register still has consumers");
    PRI_ASSERT(info.ckptRefs == 0,
               "squashed register referenced by a live checkpoint");
    doFree(cls, preg, /*squashed=*/true);
}

void
RenameUnit::tryFree(isa::RegClass cls, isa::PhysRegId p)
{
    auto &st = state(cls);
    if (!st.freeList.isAllocated(p))
        return;
    auto &info = st.pregs[p];
    if (info.mappedBy >= 0)
        return;
    if (info.ckptRefs > 0)
        return;
    if (info.consumerRefs > 0)
        return;

    // The published ER scheme needs the unmap flag true in every
    // checkpointed copy; copies live to the commit horizon.
    const bool er_eligible = cfg.earlyRelease && info.complete &&
        erCkptHorizonClear(info.erUnmapWatermark);
    if (!info.pendingNarrowFree && !info.pendingCommitFree &&
        !er_eligible) {
        return;
    }

    if (info.pendingNarrowFree && !info.pendingCommitFree)
        ++stats.priEarlyFrees;
    else if (er_eligible && !info.pendingCommitFree &&
             !info.pendingNarrowFree)
        ++stats.erEarlyFrees;

    doFree(cls, p, /*squashed=*/false);
}

void
RenameUnit::doFree(isa::RegClass cls, isa::PhysRegId p,
                   bool squashed)
{
    auto &st = state(cls);
    auto &info = st.pregs[p];

    if (!squashed && info.complete) {
        // Lifetime phases (paper Figure 1 / Figure 8).
        const double alloc_to_write =
            static_cast<double>(info.writeCycle - info.allocCycle);
        const double write_to_read = info.everRead &&
                info.lastReadCycle > info.writeCycle
            ? static_cast<double>(info.lastReadCycle -
                                  info.writeCycle)
            : 0.0;
        const uint64_t live_end =
            std::max(info.writeCycle,
                     info.everRead ? info.lastReadCycle : 0);
        const double read_to_release =
            now >= live_end ? static_cast<double>(now - live_end)
                            : 0.0;
        stats.lifeAllocToWrite.sample(alloc_to_write);
        stats.lifeWriteToLastRead.sample(write_to_read);
        stats.lifeLastReadToRelease.sample(read_to_release);
        stats.lifeTotal.sample(
            alloc_to_write + write_to_read + read_to_release);
    }

    info.complete = false;
    info.pendingNarrowFree = false;
    info.pendingCommitFree = false;
    info.everRead = false;
    if (info.holdsStorage) {
        PRI_ASSERT(st.storageUsed > 0);
        st.storageUsed -= 1;
        info.holdsStorage = false;
    }
    const bool freed = st.freeList.free(p);
    PRI_ASSERT(freed, "double free must be filtered before doFree");
    ++stats.frees;
}

const MapEntry &
RenameUnit::mapEntry(isa::RegId reg) const
{
    return state(reg.cls).map.read(reg.idx);
}

uint64_t
RenameUnit::physRegValue(isa::RegClass cls, isa::PhysRegId p) const
{
    return state(cls).pregs.at(p).value;
}

uint64_t
RenameUnit::physRegGen(isa::RegClass cls, isa::PhysRegId p) const
{
    return state(cls).pregs.at(p).gen;
}

unsigned
RenameUnit::occupancy(isa::RegClass cls) const
{
    return state(cls).freeList.numAllocated();
}

unsigned
RenameUnit::storageInUse(isa::RegClass cls) const
{
    return state(cls).storageUsed;
}

bool
RenameUnit::isAllocated(isa::RegClass cls, isa::PhysRegId p) const
{
    return state(cls).freeList.isAllocated(p);
}

int
RenameUnit::consumerRefs(isa::RegClass cls, isa::PhysRegId p) const
{
    return state(cls).pregs.at(p).consumerRefs;
}

int
RenameUnit::ckptRefs(isa::RegClass cls, isa::PhysRegId p) const
{
    return state(cls).pregs.at(p).ckptRefs;
}

namespace
{

/**
 * Mutate one map entry (current map or a checkpointed copy). A bit
 * flip lands in the immediate payload when the entry is in inlined
 * mode — PRI's extra exposure — and in the register pointer
 * otherwise; a stale strike latches the neighbouring entry; a zeroed
 * entry is the all-bits-clear encoding (pointer mode, preg 0).
 * Pointer corruption is masked into [0, num_pregs) so every fault
 * lands on representable state; the *consequences* are unconstrained.
 */
MapEntry
mutateMapEntry(const MapEntry &old, const MapEntry &neighbour,
               faults::FaultMutation mutation, uint64_t rnd,
               unsigned num_pregs)
{
    switch (mutation) {
      case faults::FaultMutation::BitFlip: {
        MapEntry e = old;
        if (e.imm)
            e.value ^= uint64_t{1}
                << pri::hashRange(64, rnd, 0x696d6dULL);
        else
            e.preg = static_cast<isa::PhysRegId>(
                (e.preg ^ (1u << pri::hashRange(10, rnd,
                                                0x707467ULL))) %
                num_pregs);
        return e;
      }
      case faults::FaultMutation::StaleValue:
        return neighbour;
      case faults::FaultMutation::ZeroEntry:
        return MapEntry{false, 0, 0};
    }
    return old;
}

} // namespace

bool
RenameUnit::applyFault(const faults::FaultSpec &spec, uint64_t rnd)
{
    using faults::FaultMutation;
    using faults::FaultSite;

    // Seeded class pick with fallback to the other class, so a
    // strike only misses when *neither* class has a live target.
    const isa::RegClass first = (rnd & 1) == 0
        ? isa::RegClass::Int
        : isa::RegClass::Fp;
    const isa::RegClass second = first == isa::RegClass::Int
        ? isa::RegClass::Fp
        : isa::RegClass::Int;

    switch (spec.site) {
      case FaultSite::PrfValue:
        for (auto cls : {first, second}) {
            auto &st = state(cls);
            const unsigned n =
                static_cast<unsigned>(st.pregs.size());
            const unsigned start = static_cast<unsigned>(
                hashRange(n, rnd, 0x707266ULL));
            for (unsigned i = 0; i < n; ++i) {
                const unsigned p = (start + i) % n;
                if (!st.freeList.isAllocated(
                        static_cast<isa::PhysRegId>(p)))
                    continue;
                auto &info = st.pregs[p];
                switch (spec.mutation) {
                  case FaultMutation::BitFlip:
                    info.value ^= uint64_t{1}
                        << hashRange(64, rnd, 0x626974ULL);
                    break;
                  case FaultMutation::StaleValue:
                    // Contents of the adjacent (possibly free) cell:
                    // a genuinely stale value.
                    info.value = st.pregs[(p + 1) % n].value;
                    break;
                  case FaultMutation::ZeroEntry:
                    info.value = 0;
                    break;
                }
                return true;
            }
        }
        return false;

      case FaultSite::MapTable: {
        auto &st = state(first);
        const unsigned l = static_cast<unsigned>(
            hashRange(isa::kNumLogicalRegs, rnd, 0x6d6170ULL));
        const MapEntry mutated = mutateMapEntry(
            st.map.read(l),
            st.map.read((l + 1) % isa::kNumLogicalRegs),
            spec.mutation, rnd,
            static_cast<unsigned>(st.pregs.size()));
        st.map.write(l, mutated);
        return true;
      }

      case FaultSite::FreeList:
        for (auto cls : {first, second}) {
            auto &st = state(cls);
            const size_t n = st.freeList.slotCount();
            if (n == 0)
                continue;
            const size_t slot = static_cast<size_t>(
                hashRange(n, rnd, 0x667265ULL));
            isa::PhysRegId v = st.freeList.slotAt(slot);
            switch (spec.mutation) {
              case FaultMutation::BitFlip:
                v = static_cast<isa::PhysRegId>(
                    (v ^ (1u << hashRange(10, rnd,
                                          0x626974ULL))) %
                    st.pregs.size());
                break;
              case FaultMutation::StaleValue:
                // Another slot's register: a duplicate free-list
                // entry, armed to double-allocate.
                v = st.freeList.slotAt((slot + 1) % n);
                break;
              case FaultMutation::ZeroEntry:
                v = 0;
                break;
            }
            st.freeList.corruptSlot(slot, v);
            return true;
        }
        return false;

      case FaultSite::CkptNode: {
        if (ckptSeq_.empty())
            return false;
        const size_t k = static_cast<size_t>(
            hashRange(ckptSeq_.size(), rnd, 0x636b70ULL));
        Checkpoint &c = *ckptSeq_[k].second;
        RamMapTable::Table &t = first == isa::RegClass::Int
            ? c.intMap
            : c.fpMap;
        const unsigned l = static_cast<unsigned>(
            hashRange(isa::kNumLogicalRegs, rnd, 0x6d6170ULL));
        t[l] = mutateMapEntry(
            t[l], t[(l + 1) % isa::kNumLogicalRegs], spec.mutation,
            rnd, static_cast<unsigned>(state(first).pregs.size()));
        return true;
      }

      default:
        return false;
    }
}

void
RenameUnit::checkInvariants() const
{
    for (auto cls : {isa::RegClass::Int, isa::RegClass::Fp}) {
        const auto &st = state(cls);
        unsigned mapped = 0;
        for (unsigned i = 0; i < isa::kNumLogicalRegs; ++i) {
            const MapEntry &e = st.map.read(i);
            if (e.imm)
                continue;
            ++mapped;
            PRI_ASSERT(st.freeList.isAllocated(e.preg),
                       "map names a free register");
            PRI_ASSERT(st.pregs[e.preg].mappedBy ==
                           static_cast<int16_t>(i),
                       "mappedBy inconsistent with map");
        }
        unsigned mapped_by = 0;
        for (unsigned p = 0; p < st.pregs.size(); ++p) {
            const auto &info = st.pregs[p];
            PRI_ASSERT(info.consumerRefs >= 0);
            PRI_ASSERT(info.ckptRefs >= 0);
            if (info.mappedBy >= 0)
                ++mapped_by;
            if (!st.freeList.isAllocated(
                    static_cast<isa::PhysRegId>(p))) {
                PRI_ASSERT(info.mappedBy < 0,
                           "free register is mapped");
                PRI_ASSERT(info.consumerRefs == 0,
                           "free register has consumers");
            }
        }
        PRI_ASSERT(mapped == mapped_by,
                   "map/mappedBy cardinality mismatch");
        unsigned holding = 0;
        for (unsigned p = 0; p < st.pregs.size(); ++p)
            holding += st.pregs[p].holdsStorage ? 1 : 0;
        PRI_ASSERT(holding == st.storageUsed,
                   "storage accounting mismatch");
        // The privileged (oldest-instruction) escape valve claims
        // past the nominal budget, and those claims accumulate
        // until the overwriting instructions commit — the true
        // ceiling is the in-flight window, not the budget, and
        // mid-run audits observe peaks near 3x the budget on small
        // VP+PRI configurations (under VP+PRI inlined values free
        // the namespace early, admitting far more claimants). Keep
        // a generous margin: a real leak grows linearly with
        // committed instructions and blows through any fixed
        // multiple within a few thousand commits of an audit.
        PRI_ASSERT(!cfg.virtualPhysical ||
                       st.storageUsed <= 4 * cfg.numPhysRegs +
                           isa::kNumLogicalRegs,
                   "VP storage far over budget");
    }
}

} // namespace pri::rename
