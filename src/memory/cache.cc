#include "cache.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace pri::memory
{

Cache::Cache(const CacheParams &params) : prm(params)
{
    PRI_ASSERT(isPow2(prm.lineBytes));
    PRI_ASSERT(prm.assoc >= 1);
    numSets = static_cast<unsigned>(
        prm.sizeBytes / (uint64_t{prm.lineBytes} * prm.assoc));
    PRI_ASSERT(numSets >= 1 && isPow2(numSets),
               "cache geometry must give a power-of-two set count");
    lines.resize(size_t{numSets} * prm.assoc);
}

uint64_t
Cache::lineIndex(uint64_t addr) const
{
    return (addr / prm.lineBytes) & (numSets - 1);
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return (addr / prm.lineBytes) / numSets;
}

bool
Cache::access(uint64_t addr)
{
    const uint64_t set = lineIndex(addr);
    const uint64_t tag = tagOf(addr);
    Line *base = &lines[set * prm.assoc];
    ++stamp;

    Line *victim = base;
    for (unsigned w = 0; w < prm.assoc; ++w) {
        Line &ln = base[w];
        if (ln.valid && ln.tag == tag) {
            ln.lruStamp = stamp;
            ++nHits;
            return true;
        }
        if (!ln.valid) {
            victim = &ln;
        } else if (victim->valid &&
                   ln.lruStamp < victim->lruStamp) {
            victim = &ln;
        }
    }
    ++nMisses;
    victim->valid = true;
    victim->tag = tag;
    victim->lruStamp = stamp;
    return false;
}

bool
Cache::probe(uint64_t addr) const
{
    const uint64_t set = lineIndex(addr);
    const uint64_t tag = tagOf(addr);
    const Line *base = &lines[set * prm.assoc];
    for (unsigned w = 0; w < prm.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &ln : lines)
        ln.valid = false;
    nHits = nMisses = 0;
}

void
Cache::exportStats(StatGroup &stats, const std::string &prefix) const
{
    stats.scalar(prefix + ".hits").set(static_cast<double>(nHits));
    stats.scalar(prefix + ".misses")
        .set(static_cast<double>(nMisses));
    const uint64_t total = nHits + nMisses;
    stats.scalar(prefix + ".missRate")
        .set(total ? static_cast<double>(nMisses) / total : 0.0);
}

MemoryHierarchy::MemoryHierarchy(const HierarchyParams &params)
    : prm(params), il1_(params.il1), dl1_(params.dl1), l2_(params.l2)
{
}

unsigned
MemoryHierarchy::dataAccess(uint64_t addr, bool write)
{
    (void)write; // write-allocate: same fill behaviour
    unsigned lat = prm.dl1.latency;
    if (dl1_.access(addr))
        return lat;
    lat += prm.l2.latency;
    if (l2_.access(addr))
        return lat;
    return lat + prm.memLatency;
}

unsigned
MemoryHierarchy::instAccess(uint64_t addr)
{
    unsigned lat = prm.il1.latency;
    if (il1_.access(addr))
        return lat;
    lat += prm.l2.latency;
    if (l2_.access(addr))
        return lat;
    return lat + prm.memLatency;
}

void
MemoryHierarchy::exportStats(StatGroup &stats) const
{
    il1_.exportStats(stats, "mem.il1");
    dl1_.exportStats(stats, "mem.dl1");
    l2_.exportStats(stats, "mem.l2");
}

} // namespace pri::memory
