/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * The timing core only needs hit/miss decisions and latencies; data
 * values flow through the register dataflow, not the cache. Fills
 * happen immediately on miss (no MSHR occupancy modelling — loads are
 * non-blocking and their miss latency is charged to the dependent
 * chain, which is the effect the paper's register-pressure story
 * depends on).
 */

#ifndef PRI_MEMORY_CACHE_HH
#define PRI_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.hh"
#include "common/stats.hh"

namespace pri::memory
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = 32;
    unsigned latency = 2; ///< cycles added when this level hits
};

/** One level of set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up @p addr; on miss, fill the line (evicting LRU).
     * @return true on hit.
     */
    bool access(uint64_t addr);

    /** Look up without changing any state. */
    bool probe(uint64_t addr) const;

    /** Invalidate everything. */
    void flush();

    const CacheParams &params() const { return prm; }
    uint64_t hits() const { return nHits; }
    uint64_t misses() const { return nMisses; }

    /** Register hit/miss counters into @p stats under @p prefix. */
    void exportStats(StatGroup &stats, const std::string &prefix) const;

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lruStamp = 0;
        bool valid = false;
    };

    uint64_t lineIndex(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;

    CacheParams prm;
    unsigned numSets;
    HotVec<Line> lines; // numSets * assoc, set-major
    uint64_t stamp = 0;
    uint64_t nHits = 0;
    uint64_t nMisses = 0;
};

/** Latencies of the three-level hierarchy in paper Table 1. */
struct HierarchyParams
{
    CacheParams il1{"il1", 32 * 1024, 2, 32, 2};
    CacheParams dl1{"dl1", 32 * 1024, 4, 16, 2};
    CacheParams l2{"l2", 512 * 1024, 4, 64, 12};
    unsigned memLatency = 150;
};

/**
 * IL1 + DL1 + unified L2 + memory. Latency is cumulative down the
 * hierarchy: DL1 hit = 2, L2 hit = 2+12, memory = 2+12+150.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyParams &params = {});

    /** Data-side access; returns total latency in cycles. */
    unsigned dataAccess(uint64_t addr, bool write);

    /** Instruction fetch access; returns total latency in cycles. */
    unsigned instAccess(uint64_t addr);

    Cache &il1() { return il1_; }
    Cache &dl1() { return dl1_; }
    Cache &l2() { return l2_; }
    const HierarchyParams &params() const { return prm; }

    void exportStats(StatGroup &stats) const;

  private:
    HierarchyParams prm;
    Cache il1_;
    Cache dl1_;
    Cache l2_;
};

} // namespace pri::memory

#endif // PRI_MEMORY_CACHE_HH
