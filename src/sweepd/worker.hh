/**
 * @file
 * pri_sweepd worker process entry point.
 *
 * A worker is a child process the daemon talks to over a socketpair
 * with the JOB/RES/ERR frames of protocol.hh. Each job is one cache
 * miss: the worker deserializes the PRIP2 params line, runs it
 * through a single-threaded sim::SimulationRunner — which arms the
 * forward-progress watchdog, the flight recorder, and error capture
 * exactly as an in-process sweep would — and replies with the PRIJ3
 * result line or the captured error.
 *
 * Process isolation is the point: a simulator crash (SIGSEGV, OOM
 * kill, the --inject-fault SIGKILL drill) takes down only this
 * worker's current point. The daemon sees EOF on the socketpair,
 * respawns the worker, and retries the point per its RetryPolicy;
 * sibling points on other workers never notice.
 *
 * Any binary that embeds the daemon in-process (tests, benches)
 * must dispatch to workerMain() when invoked with
 * `--sweepd-worker-fd <fd>` before doing anything else, because the
 * daemon respawns workers by exec'ing /proc/self/exe.
 */

#ifndef PRI_SWEEPD_WORKER_HH
#define PRI_SWEEPD_WORKER_HH

namespace pri::sweepd
{

/** The argv flag that routes a process into workerMain(). */
constexpr const char *kWorkerFdFlag = "--sweepd-worker-fd";

/**
 * Serve JOB frames on @p fd until QUIT or EOF. Returns the process
 * exit status (0 on clean shutdown).
 */
int workerMain(int fd);

/**
 * Front-door helper: if @p argv contains kWorkerFdFlag, run
 * workerMain() on the given fd and return its exit status; returns
 * -1 when this is not a worker invocation. Call first thing in
 * main() of every binary that can host a daemon.
 */
int maybeRunAsWorker(int argc, char **argv);

} // namespace pri::sweepd

#endif // PRI_SWEEPD_WORKER_HH
