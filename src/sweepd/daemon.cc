#include "daemon.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/strfmt.hh"
#include "sim/result_codec.hh"
#include "sweepd/protocol.hh"
#include "sweepd/worker.hh"

extern char **environ;

namespace pri::sweepd
{

/** One client connection: the fd plus a mutex serializing frame
 *  writes (dispatcher threads stream results concurrently with the
 *  connection thread's cached replies). The fd is closed by the
 *  last owner — the connection thread or a late delivery. */
struct Daemon::ClientConn
{
    explicit ClientConn(int f) : fd(f) {}
    ~ClientConn()
    {
        if (fd >= 0)
            ::close(fd);
    }
    int fd;
    std::mutex writeMu;
};

/** One SUBMIT's completion tracker: the connection thread waits for
 *  remaining == 0 before sending DONE. */
struct Daemon::Submission
{
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = 0;
};

/** One cache miss in flight: the point, and every (client, index)
 *  waiting for it across all concurrent SUBMITs. */
struct Daemon::Job
{
    uint64_t key = 0;
    sim::RunParams params;
    unsigned attempts = 0;

    struct Waiter
    {
        std::shared_ptr<ClientConn> conn;
        std::shared_ptr<Submission> sub;
        uint32_t index;
    };
    std::vector<Waiter> waiters;
};

namespace
{

/** Split a SUBMIT body into its lines (no trailing empties). */
std::vector<std::string>
splitLines(const std::string &body)
{
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < body.size()) {
        size_t nl = body.find('\n', start);
        if (nl == std::string::npos)
            nl = body.size();
        if (nl > start)
            lines.push_back(body.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

} // namespace

Daemon::Daemon(DaemonConfig config) : cfg(std::move(config)) {}

Daemon::~Daemon()
{
    stop();
}

bool
Daemon::start()
{
    resultStore = std::make_unique<ResultStore>(cfg.storeDir);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg.socketPath.empty() ||
        cfg.socketPath.size() >= sizeof(addr.sun_path)) {
        warn("sweepd: bad socket path '{}'", cfg.socketPath);
        return false;
    }
    std::strcpy(addr.sun_path, cfg.socketPath.c_str());

    listenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd < 0) {
        warn("sweepd: socket(): {}", std::strerror(errno));
        return false;
    }
    // A previous daemon's stale socket file would make bind fail;
    // a *live* daemon on the same path is lost either way, so take
    // the path over.
    ::unlink(cfg.socketPath.c_str());
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 64) != 0) {
        warn("sweepd: cannot listen on '{}': {}", cfg.socketPath,
             std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return false;
    }

    if (cfg.workers == 0)
        cfg.workers = 1;
    dispatchers.reserve(cfg.workers);
    for (unsigned slot = 0; slot < cfg.workers; ++slot)
        dispatchers.emplace_back(&Daemon::dispatchLoop, this, slot);
    acceptThread = std::thread(&Daemon::acceptLoop, this);
    started = true;

    if (cfg.verbose) {
        inform("pri_sweepd: serving on {} (store {}, {} cached "
               "result(s), {} workers)",
               cfg.socketPath, cfg.storeDir, resultStore->entries(),
               cfg.workers);
    }
    return true;
}

void
Daemon::stop()
{
    if (!started.exchange(false))
        return;
    stopping = true;

    // Interrupt accept4() with shutdown() only; closing (and
    // poisoning the member) while the accept thread still reads it
    // would race, and the freed fd number could be recycled under
    // its feet. Close after the join.
    if (listenFd >= 0)
        ::shutdown(listenFd, SHUT_RDWR);
    if (acceptThread.joinable())
        acceptThread.join();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }

    // Dispatchers drain whatever is still queued (so every pending
    // SUBMIT settles), then quit their workers and exit.
    queueCv.notify_all();
    for (auto &t : dispatchers)
        t.join();
    dispatchers.clear();

    // Every job has completed, so connection threads are back in
    // readFrame(); unblock the ones whose client is still attached.
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(connMu);
        conns.swap(connThreads);
        for (auto &weak : connFds) {
            if (auto conn = weak.lock())
                ::shutdown(conn->fd, SHUT_RDWR);
        }
        connFds.clear();
    }
    for (auto &t : conns) {
        if (t.joinable())
            t.join();
    }

    ::unlink(cfg.socketPath.c_str());
    if (cfg.verbose)
        inform("pri_sweepd: stopped ({} result(s) in store)",
               resultStore->entries());
}

void
Daemon::acceptLoop()
{
    while (!stopping) {
        const int fd =
            ::accept4(listenFd, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listen socket closed: shutting down
        }
        counters.connections.fetch_add(1);
        auto conn = std::make_shared<ClientConn>(fd);
        std::lock_guard<std::mutex> lock(connMu);
        connFds.push_back(conn);
        connThreads.emplace_back(
            [this, conn] { serveConnection(conn); });
    }
}

void
Daemon::serveConnection(std::shared_ptr<ClientConn> conn)
{
    std::string payload, verb, body;
    while (readFrame(conn->fd, payload)) {
        splitVerb(payload, verb, body);
        if (verb == "SUBMIT") {
            counters.submits.fetch_add(1);
            handleSubmit(conn, body);
        } else if (verb == "STATUS") {
            std::lock_guard<std::mutex> wlock(conn->writeMu);
            writeFrame(conn->fd, "OK\n" + statusText());
        } else if (verb == "STATS") {
            std::lock_guard<std::mutex> wlock(conn->writeMu);
            writeFrame(conn->fd, "OK\n" + statsText());
        } else {
            std::lock_guard<std::mutex> wlock(conn->writeMu);
            writeFrame(conn->fd,
                       fmtStr("BAD\nunknown verb '{}'", verb));
        }
    }
    // Client went away (or stop() shut the fd down). The fd itself
    // dies with the last shared_ptr — a straggling delivery may
    // still hold one.
    ::shutdown(conn->fd, SHUT_RDWR);
}

void
Daemon::handleSubmit(const std::shared_ptr<ClientConn> &conn,
                     const std::string &body)
{
    const auto lines = splitLines(body);
    auto sub = std::make_shared<Submission>();
    uint64_t hits = 0, misses = 0;

    // Prompt liveness signal: the client holds its handshake
    // deadline until this frame, then trusts us with an unbounded
    // wait. Sent before any store lookup or simulation starts.
    {
        std::lock_guard<std::mutex> wlock(conn->writeMu);
        writeFrame(conn->fd, fmtStr("ACK {}", lines.size()));
    }

    for (uint32_t i = 0; i < lines.size(); ++i) {
        counters.points.fetch_add(1);
        sim::RunParams p;
        p.timeoutMs = cfg.timeoutMs;
        if (!sim::codec::parseParamsLine(lines[i], p)) {
            counters.errors.fetch_add(1);
            std::lock_guard<std::mutex> wlock(conn->writeMu);
            writeFrame(conn->fd,
                       fmtStr("ERROR {} 0\nmalformed params line",
                              i));
            continue;
        }
        const uint64_t key = sim::paramsHash(p);

        // Tier resolution. The in-flight check and the store
        // re-check sit under one lock, and completion publishes to
        // the store BEFORE leaving the in-flight table — so between
        // the two checks a key is always visible in at least one
        // place, and no interleaving of clients can simulate it
        // twice.
        sim::RunResult cached;
        bool send_cached = false;
        {
            std::lock_guard<std::mutex> lock(mu);
            const auto it = inflight.find(key);
            if (it != inflight.end()) {
                it->second->waiters.push_back({conn, sub, i});
                {
                    std::lock_guard<std::mutex> slock(sub->mu);
                    ++sub->remaining;
                }
                counters.inflightHits.fetch_add(1);
                ++misses;
            } else if (resultStore->lookup(key, cached)) {
                send_cached = true;
            } else {
                auto job = std::make_unique<Job>();
                job->key = key;
                job->params = std::move(p);
                job->waiters.push_back({conn, sub, i});
                {
                    std::lock_guard<std::mutex> slock(sub->mu);
                    ++sub->remaining;
                }
                inflight.emplace(key, job.get());
                queue.push_back(std::move(job));
                queueCv.notify_one();
                ++misses;
            }
        }
        if (send_cached) {
            counters.storeHits.fetch_add(1);
            ++hits;
            std::lock_guard<std::mutex> wlock(conn->writeMu);
            writeFrame(conn->fd,
                       fmtStr("RESULT {} 1\n", i) +
                           sim::codec::formatResultLine(key, cached));
        }
    }

    // Every point registered; wait for the streamed deliveries to
    // settle, then close the SUBMIT out.
    {
        std::unique_lock<std::mutex> slock(sub->mu);
        sub->cv.wait(slock, [&] { return sub->remaining == 0; });
    }
    std::lock_guard<std::mutex> wlock(conn->writeMu);
    writeFrame(conn->fd, fmtStr("DONE {} {}", hits, misses));
}

Daemon::WorkerProc
Daemon::spawnWorker()
{
    // Serialized: a sibling dispatcher's posix_spawn must not
    // observe a half-set-up socketpair, or the child end can leak
    // into that sibling's worker and keep the pair open after this
    // worker dies.
    static std::mutex spawn_mu;
    std::lock_guard<std::mutex> spawn_lock(spawn_mu);

    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, sv) !=
        0) {
        warn("sweepd: socketpair(): {}", std::strerror(errno));
        return {};
    }
    // The child's end must survive the exec — but ONLY into the
    // intended child. Clearing FD_CLOEXEC in the parent would let a
    // concurrently spawned sibling inherit this worker's write end,
    // and then a crashed worker would never read as EOF (the
    // sibling keeps the pair open). adddup2(fd, fd) clears
    // FD_CLOEXEC inside the child alone.
    posix_spawn_file_actions_t actions;
    ::posix_spawn_file_actions_init(&actions);
    ::posix_spawn_file_actions_adddup2(&actions, sv[1], sv[1]);

    const std::string argv0 = cfg.workerArgv0.empty()
        ? std::string("/proc/self/exe")
        : cfg.workerArgv0;
    const std::string fd_arg = std::to_string(sv[1]);
    const char *argv[] = {argv0.c_str(), kWorkerFdFlag,
                          fd_arg.c_str(), nullptr};
    pid_t pid = -1;
    const int rc =
        ::posix_spawn(&pid, argv0.c_str(), &actions, nullptr,
                      const_cast<char **>(argv), environ);
    ::posix_spawn_file_actions_destroy(&actions);
    ::close(sv[1]);
    if (rc != 0) {
        ::close(sv[0]);
        warn("sweepd: cannot spawn worker '{}': {}", argv0,
             std::strerror(rc));
        return {};
    }
    return {pid, sv[0]};
}

namespace
{

/** Wait for a worker reply, watching the process as well as the
 *  pipe. EOF alone is not a reliable death signal: if the child end
 *  of the socketpair ever leaks into another long-lived process
 *  (fd-inheritance races around concurrent spawns), a SIGKILLed
 *  worker leaves the pair open and a blocking read would hang the
 *  dispatcher forever. Poll with a short tick and check
 *  waitpid(WNOHANG) between ticks so a dead worker is detected by
 *  pid no matter who still holds the socket. */
bool
readWorkerReply(int fd, pid_t &pid, std::string &payload)
{
    while (true) {
        struct pollfd pfd = {fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (rc > 0)
            return readFrame(fd, payload);
        if (pid > 0 && ::waitpid(pid, nullptr, WNOHANG) == pid) {
            pid = -1; // already reaped
            return false;
        }
    }
}

} // namespace

void
Daemon::dispatchLoop(unsigned slot)
{
    (void)slot;
    WorkerProc w = spawnWorker();
    std::string payload, verb, body;

    const auto reap = [&] {
        if (w.fd >= 0) {
            ::close(w.fd);
            w.fd = -1;
        }
        if (w.pid > 0) {
            ::waitpid(w.pid, nullptr, 0);
            w.pid = -1;
        }
    };

    while (true) {
        std::unique_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mu);
            queueCv.wait(lock, [&] {
                return stopping.load() || !queue.empty();
            });
            if (queue.empty())
                break; // stopping, and fully drained
            job = std::move(queue.front());
            queue.pop_front();
        }

        sim::RunResult result;
        std::string error;
        bool ok = false, stalled = false;
        while (true) {
            bool crash = false;
            {
                std::lock_guard<std::mutex> lock(mu);
                crash = cfg.killDispatch >= 0 &&
                    dispatchSeq == cfg.killDispatch;
                ++dispatchSeq;
            }
            ++job->attempts;
            if (w.fd < 0)
                w = spawnWorker();

            const bool sent = w.fd >= 0 &&
                writeFrame(w.fd,
                           fmtStr("JOB {} {}\n", crash ? 1 : 0,
                                  cfg.timeoutMs) +
                               sim::codec::formatParamsLine(
                                   job->params));
            if (!sent || !readWorkerReply(w.fd, w.pid, payload)) {
                // The worker vanished mid-point (or could not be
                // spawned): the defining fault this pool exists to
                // contain. Reap, respawn on the next attempt, and
                // charge only this point.
                if (w.fd >= 0 || w.pid > 0) {
                    counters.workerCrashes.fetch_add(1);
                    warn("sweepd: worker died on {} (attempt {})",
                         sim::paramsSummary(job->params),
                         job->attempts);
                }
                reap();
                error = "worker process died mid-point";
                stalled = false;
            } else {
                splitVerb(payload, verb, body);
                if (verb == "RES") {
                    uint64_t key = 0;
                    if (!sim::codec::parseResultLine(body, key,
                                                     result)) {
                        error = "malformed worker reply";
                    } else if (key != job->key) {
                        error = fmtStr(
                            "worker/daemon params-hash mismatch "
                            "({} vs {})",
                            key, job->key);
                    } else {
                        ok = true;
                    }
                } else if (verb.rfind("ERR", 0) == 0) {
                    stalled = verb == "ERR 1";
                    error = body;
                } else {
                    error = fmtStr("unexpected worker verb '{}'",
                                   verb);
                }
            }

            if (ok || stalled || job->attempts >= cfg.maxAttempts)
                break;
            counters.retries.fetch_add(1);
        }
        completeJob(std::move(job), ok, stalled, result, error);
    }

    if (w.fd >= 0)
        writeFrame(w.fd, "QUIT");
    reap();
}

void
Daemon::completeJob(std::unique_ptr<Job> job, bool ok, bool stalled,
                    const sim::RunResult &result,
                    const std::string &error)
{
    const uint64_t key = job->key;

    // Publish BEFORE leaving the in-flight table: a submit that
    // misses in-flight after this line is guaranteed to hit the
    // store (see handleSubmit).
    if (ok) {
        resultStore->publish(key, result);
        counters.simulated.fetch_add(1);
    } else {
        counters.errors.fetch_add(1);
    }

    std::vector<Job::Waiter> waiters;
    {
        std::lock_guard<std::mutex> lock(mu);
        inflight.erase(key);
        waiters = std::move(job->waiters);
    }

    const std::string result_line =
        ok ? sim::codec::formatResultLine(key, result)
           : std::string();
    for (const auto &wt : waiters) {
        const std::string frame = ok
            ? fmtStr("RESULT {} 0\n", wt.index) + result_line
            : fmtStr("ERROR {} {}\n", wt.index, stalled ? 1 : 0) +
                error;
        {
            std::lock_guard<std::mutex> wlock(wt.conn->writeMu);
            // A vanished client just loses its stream; the result
            // is in the store for its next attempt.
            writeFrame(wt.conn->fd, frame);
        }
        {
            std::lock_guard<std::mutex> slock(wt.sub->mu);
            --wt.sub->remaining;
        }
        wt.sub->cv.notify_all();
    }
}

std::string
Daemon::statusText()
{
    size_t queued, running;
    {
        std::lock_guard<std::mutex> lock(mu);
        queued = queue.size();
        running = inflight.size() - std::min(inflight.size(), queued);
    }
    return fmtStr(
        "pri_sweepd on {}\nstore {} ({} result(s))\n"
        "{} worker(s), {} point(s) running, {} queued\n"
        "served {} point(s): {} store hit(s), {} deduped in "
        "flight, {} simulated, {} failed\n",
        cfg.socketPath, cfg.storeDir, resultStore->entries(),
        cfg.workers, running, queued, counters.points.load(),
        counters.storeHits.load(), counters.inflightHits.load(),
        counters.simulated.load(), counters.errors.load());
}

std::string
Daemon::statsText()
{
    size_t queued, infl;
    {
        std::lock_guard<std::mutex> lock(mu);
        queued = queue.size();
        infl = inflight.size();
    }
    return fmtStr("connections {}\nsubmits {}\npoints {}\n"
                  "storeHits {}\ninflightHits {}\nsimulated {}\n"
                  "errors {}\nworkerCrashes {}\nretries {}\n"
                  "storeEntries {}\nqueued {}\ninflight {}\n"
                  "workers {}\n",
                  counters.connections.load(),
                  counters.submits.load(), counters.points.load(),
                  counters.storeHits.load(),
                  counters.inflightHits.load(),
                  counters.simulated.load(), counters.errors.load(),
                  counters.workerCrashes.load(),
                  counters.retries.load(), resultStore->entries(),
                  queued, infl, cfg.workers);
}

} // namespace pri::sweepd
