/**
 * @file
 * ResultStore: the pri_sweepd on-disk content-addressed result
 * cache, keyed by sim::paramsHash().
 *
 * Layout: one directory holding
 *
 *   meta            "PRISTORE1 <resultTag> <fieldCount>" — the
 *                   version stamp. A codec change (new PRIJ3 field
 *                   list, i.e. a params-hash audit change shipping
 *                   alongside it) makes the stamp mismatch on open
 *                   and the store invalidates cleanly: every bucket
 *                   file is deleted and the stamp rewritten, so a
 *                   stale record can never be served under a
 *                   new-format key.
 *   b<XX>.tsv       one file per hash bucket, XX = the key's top
 *                   byte in hex. Each line is one PRIJ3 record
 *                   (sim/result_codec.hh — the exact serializer the
 *                   sweep journal uses).
 *
 * Publishing rewrites the record's whole bucket to a temp file and
 * renames it into place, so readers (and a daemon killed mid-
 * publish) only ever observe a complete old or complete new bucket.
 * Loading is nevertheless torn-write tolerant — malformed lines are
 * skipped and counted — so a store tampered with or produced by a
 * pre-rename writer still yields every intact record.
 *
 * Thread-safe; the daemon's dispatcher threads publish concurrently
 * while connection threads look up.
 */

#ifndef PRI_SWEEPD_STORE_HH
#define PRI_SWEEPD_STORE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "sim/simulation.hh"

namespace pri::sweepd
{

/** Content-addressed result store (see @file). */
class ResultStore
{
  public:
    /**
     * Open (creating if absent) the store rooted at @p dir and load
     * every intact record. An existing store with a mismatching
     * version stamp is invalidated (buckets deleted) first.
     */
    explicit ResultStore(std::string dir);

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    const std::string &dir() const { return rootDir; }

    /** Result for @p key, if present. */
    bool lookup(uint64_t key, sim::RunResult &out) const;

    /**
     * Persist one completed point: insert into the bucket and
     * atomically rename the rewritten bucket file into place.
     * Re-publishing an existing key is a no-op (results are
     * deterministic in the key).
     */
    void publish(uint64_t key, const sim::RunResult &result);

    /** Records currently held (loaded + published). */
    size_t entries() const;

    /** Records loaded from the pre-existing directory on open. */
    size_t loadedEntries() const { return loaded; }

    /** Malformed lines skipped during the open scan. */
    size_t tornLinesSkipped() const { return torn; }

    /** True when open invalidated a stale-versioned store. */
    bool invalidatedOnOpen() const { return invalidated; }

  private:
    static unsigned bucketOf(uint64_t key) { return key >> 56; }
    std::string bucketPath(unsigned bucket) const;
    void checkVersion();
    void loadAll();
    void rewriteBucket(unsigned bucket) const;

    std::string rootDir;
    mutable std::mutex mu;
    /** Bucket index -> records. Only non-empty buckets appear. */
    std::map<unsigned, std::map<uint64_t, sim::RunResult>> buckets;
    size_t count = 0;
    size_t loaded = 0;
    size_t torn = 0;
    bool invalidated = false;
};

} // namespace pri::sweepd

#endif // PRI_SWEEPD_STORE_HH
