#include "store.hh"

#include <cstdio>
#include <filesystem>

#include <unistd.h>

#include "common/logging.hh"
#include "common/strfmt.hh"
#include "sim/result_codec.hh"

namespace fs = std::filesystem;

namespace pri::sweepd
{

namespace
{

/** The version stamp a store directory must carry to be served. */
std::string
versionStamp()
{
    return fmtStr("PRISTORE1 {} {}\n", sim::codec::kResultTag,
                  sim::codec::kResultFields);
}

/** Read a whole small file; empty string when absent. */
std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return "";
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

/**
 * Write @p contents to @p path via a temp file in the same
 * directory plus rename(2), so the path only ever names a complete
 * old or complete new file.
 */
void
atomicWrite(const std::string &path, const std::string &contents)
{
    const std::string tmp = fmtStr("{}.tmp.{}", path, ::getpid());
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr)
        fatal("store: cannot write '{}'", tmp);
    if (std::fwrite(contents.data(), 1, contents.size(), f) !=
        contents.size()) {
        std::fclose(f);
        std::remove(tmp.c_str());
        fatal("store: short write to '{}'", tmp);
    }
    std::fclose(f);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        fatal("store: cannot publish '{}'", path);
    }
}

} // namespace

ResultStore::ResultStore(std::string dir) : rootDir(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(rootDir, ec);
    if (ec)
        fatal("store: cannot create '{}': {}", rootDir, ec.message());
    checkVersion();
    loadAll();
}

std::string
ResultStore::bucketPath(unsigned bucket) const
{
    char name[16];
    std::snprintf(name, sizeof(name), "/b%02x.tsv", bucket);
    return rootDir + name;
}

void
ResultStore::checkVersion()
{
    const std::string meta_path = rootDir + "/meta";
    const std::string want = versionStamp();
    const std::string have = slurp(meta_path);
    if (have == want)
        return;

    // Stale (or absent) stamp: a params-hash audit / field-list
    // change shipped since this store was written. Serving any old
    // record under a new-format key would be silent skew, so drop
    // every bucket and restamp. Abandoned .tmp files from a killed
    // publish go with them.
    if (!have.empty()) {
        warn("store '{}': version stamp changed, invalidating",
             rootDir);
        invalidated = true;
    }
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(rootDir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name != "meta")
            fs::remove(entry.path(), ec);
    }
    atomicWrite(meta_path, want);
}

void
ResultStore::loadAll()
{
    for (unsigned bucket = 0; bucket < 256; ++bucket) {
        std::FILE *in = std::fopen(bucketPath(bucket).c_str(), "r");
        if (in == nullptr)
            continue;
        std::string line;
        int c;
        auto take = [&] {
            uint64_t key = 0;
            sim::RunResult r;
            if (sim::codec::parseResultLine(line, key, r) &&
                bucketOf(key) == bucket) {
                if (buckets[bucket].emplace(key, std::move(r))
                        .second) {
                    ++loaded;
                    ++count;
                }
            } else {
                ++torn;
            }
            line.clear();
        };
        while ((c = std::fgetc(in)) != EOF) {
            if (c == '\n')
                take();
            else
                line += static_cast<char>(c);
        }
        // Trailing fragment without a newline: the classic torn
        // write from a pre-atomic-rename producer.
        if (!line.empty())
            take();
        std::fclose(in);
    }
    if (torn > 0) {
        warn("store '{}': skipped {} malformed line(s); those "
             "points will re-simulate",
             rootDir, torn);
    }
}

void
ResultStore::rewriteBucket(unsigned bucket) const
{
    std::string contents;
    const auto it = buckets.find(bucket);
    if (it != buckets.end()) {
        for (const auto &[key, r] : it->second)
            contents += sim::codec::formatResultLine(key, r);
    }
    atomicWrite(bucketPath(bucket), contents);
}

bool
ResultStore::lookup(uint64_t key, sim::RunResult &out) const
{
    std::lock_guard<std::mutex> lock(mu);
    const auto bit = buckets.find(bucketOf(key));
    if (bit == buckets.end())
        return false;
    const auto it = bit->second.find(key);
    if (it == bit->second.end())
        return false;
    out = it->second;
    return true;
}

void
ResultStore::publish(uint64_t key, const sim::RunResult &result)
{
    std::lock_guard<std::mutex> lock(mu);
    const unsigned bucket = bucketOf(key);
    if (!buckets[bucket].emplace(key, result).second)
        return; // deterministic duplicate; already on disk
    ++count;
    rewriteBucket(bucket);
}

size_t
ResultStore::entries() const
{
    std::lock_guard<std::mutex> lock(mu);
    return count;
}

} // namespace pri::sweepd
