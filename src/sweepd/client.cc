#include "client.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/result_codec.hh"
#include "sweepd/protocol.hh"

namespace pri::sweepd
{

namespace
{

/** Bound every read on @p fd to @p ms milliseconds (0 = blocking).
 *  readFrame() then fails on the EAGAIN instead of wedging. */
void
setRecvTimeout(int fd, unsigned ms)
{
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<long>(ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/** One non-blocking connect attempt bounded by @p timeout_ms. */
int
connectOnce(const sockaddr_un &addr, unsigned timeout_ms)
{
    const int fd = ::socket(
        AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (fd < 0)
        return -1;
    const int rc = ::connect(
        fd, reinterpret_cast<const sockaddr *>(&addr),
        sizeof(addr));
    if (rc != 0) {
        if (errno != EINPROGRESS && errno != EAGAIN) {
            ::close(fd);
            return -1;
        }
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, static_cast<int>(timeout_ms)) <= 0) {
            ::close(fd);
            return -1;
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) !=
                0 ||
            err != 0) {
            ::close(fd);
            return -1;
        }
    }
    // Back to blocking I/O; read deadlines are set per-phase via
    // SO_RCVTIMEO instead.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    return fd;
}

} // namespace

unsigned
SweepdClient::defaultTimeoutMs()
{
    if (const char *env = std::getenv("PRI_SWEEPD_TIMEOUT_MS")) {
        const unsigned long v = std::strtoul(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 5000;
}

std::unique_ptr<SweepdClient>
SweepdClient::connect(const std::string &socketPath,
                      unsigned timeout_ms)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.empty() ||
        socketPath.size() >= sizeof(addr.sun_path))
        return nullptr;
    std::strcpy(addr.sun_path, socketPath.c_str());

    // One bounded retry: a daemon mid-restart (socket exists, accept
    // queue briefly unserviced) gets a second chance; a dead or
    // wedged one costs at most two timeouts.
    for (int attempt = 0; attempt < 2; ++attempt) {
        const int fd = connectOnce(addr, timeout_ms);
        if (fd >= 0) {
            return std::unique_ptr<SweepdClient>(
                new SweepdClient(fd, timeout_ms));
        }
    }
    return nullptr;
}

SweepdClient::~SweepdClient()
{
    if (fd >= 0)
        ::close(fd);
}

std::vector<PointOutcome>
SweepdClient::submit(const std::vector<sim::RunParams> &batch)
{
    std::vector<PointOutcome> out(batch.size());
    for (auto &o : out)
        o.error = "daemon connection lost";
    if (batch.empty())
        return out;

    std::string payload = "SUBMIT\n";
    for (const auto &p : batch)
        payload += sim::codec::formatParamsLine(p);
    if (!writeFrame(fd, payload))
        return out;

    // The daemon ACKs a SUBMIT before resolving any point. Until
    // that first frame lands, reads run under the handshake
    // deadline: a daemon that accepted the connection but never
    // services it (wedged dispatcher) surfaces here as a bounded
    // "unresponsive" failure instead of a hung sweep. After the
    // ACK, reads block indefinitely — simulations take as long as
    // they take.
    setRecvTimeout(fd, timeoutMs);
    bool acked = false;

    std::string frame, verb, body;
    while (readFrame(fd, frame)) {
        if (!acked) {
            setRecvTimeout(fd, 0);
            acked = true;
        }
        splitVerb(frame, verb, body);
        if (verb.rfind("ACK", 0) == 0)
            continue;
        unsigned long long idx = 0, flag = 0;
        if (std::sscanf(verb.c_str(), "RESULT %llu %llu", &idx,
                        &flag) == 2) {
            if (idx >= out.size())
                continue; // daemon bug; ignore rather than corrupt
            uint64_t key = 0;
            sim::RunResult r;
            if (!sim::codec::parseResultLine(body, key, r)) {
                out[idx].error = "malformed result from daemon";
            } else if (key != sim::paramsHash(batch[idx])) {
                // The integrity check this client exists for: a
                // daemon whose params-hash audit disagrees with
                // ours can never be silently believed.
                out[idx].error =
                    "daemon served a mismatching params-hash key";
            } else {
                out[idx].result = std::move(r);
                out[idx].cached = flag != 0;
                out[idx].error.clear();
            }
        } else if (std::sscanf(verb.c_str(), "ERROR %llu %llu", &idx,
                               &flag) == 2) {
            if (idx >= out.size())
                continue;
            out[idx].error =
                body.empty() ? "daemon-side failure" : body;
            out[idx].stalled = flag != 0;
        } else if (verb.rfind("DONE", 0) == 0) {
            return out;
        }
        // Anything else (OK/BAD from an interleaved query — we
        // never interleave, but be liberal) is skipped.
    }
    if (!acked) {
        for (auto &o : out) {
            o.error = "daemon unresponsive (no ACK within " +
                std::to_string(timeoutMs) + " ms)";
        }
    }
    return out; // connection lost / handshake timeout
}

std::string
SweepdClient::query(const std::string &verb)
{
    if (!writeFrame(fd, verb))
        return "";
    // Queries are answered immediately; hold them to the same
    // deadline so a wedged daemon cannot hang a status probe.
    setRecvTimeout(fd, timeoutMs);
    std::string frame, reply_verb, body;
    const bool got = readFrame(fd, frame);
    setRecvTimeout(fd, 0);
    if (!got)
        return "";
    splitVerb(frame, reply_verb, body);
    return reply_verb == "OK" ? body : "";
}

} // namespace pri::sweepd
