#include "client.hh"

#include <cstdio>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/result_codec.hh"
#include "sweepd/protocol.hh"

namespace pri::sweepd
{

std::unique_ptr<SweepdClient>
SweepdClient::connect(const std::string &socketPath)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.empty() ||
        socketPath.size() >= sizeof(addr.sun_path))
        return nullptr;
    std::strcpy(addr.sun_path, socketPath.c_str());

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return nullptr;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<SweepdClient>(new SweepdClient(fd));
}

SweepdClient::~SweepdClient()
{
    if (fd >= 0)
        ::close(fd);
}

std::vector<PointOutcome>
SweepdClient::submit(const std::vector<sim::RunParams> &batch)
{
    std::vector<PointOutcome> out(batch.size());
    for (auto &o : out)
        o.error = "daemon connection lost";
    if (batch.empty())
        return out;

    std::string payload = "SUBMIT\n";
    for (const auto &p : batch)
        payload += sim::codec::formatParamsLine(p);
    if (!writeFrame(fd, payload))
        return out;

    std::string frame, verb, body;
    while (readFrame(fd, frame)) {
        splitVerb(frame, verb, body);
        unsigned long long idx = 0, flag = 0;
        if (std::sscanf(verb.c_str(), "RESULT %llu %llu", &idx,
                        &flag) == 2) {
            if (idx >= out.size())
                continue; // daemon bug; ignore rather than corrupt
            uint64_t key = 0;
            sim::RunResult r;
            if (!sim::codec::parseResultLine(body, key, r)) {
                out[idx].error = "malformed result from daemon";
            } else if (key != sim::paramsHash(batch[idx])) {
                // The integrity check this client exists for: a
                // daemon whose params-hash audit disagrees with
                // ours can never be silently believed.
                out[idx].error =
                    "daemon served a mismatching params-hash key";
            } else {
                out[idx].result = std::move(r);
                out[idx].cached = flag != 0;
                out[idx].error.clear();
            }
        } else if (std::sscanf(verb.c_str(), "ERROR %llu %llu", &idx,
                               &flag) == 2) {
            if (idx >= out.size())
                continue;
            out[idx].error =
                body.empty() ? "daemon-side failure" : body;
            out[idx].stalled = flag != 0;
        } else if (verb.rfind("DONE", 0) == 0) {
            return out;
        }
        // Anything else (OK/BAD from an interleaved query — we
        // never interleave, but be liberal) is skipped.
    }
    return out; // connection lost mid-stream
}

std::string
SweepdClient::query(const std::string &verb)
{
    if (!writeFrame(fd, verb))
        return "";
    std::string frame, reply_verb, body;
    if (!readFrame(fd, frame))
        return "";
    splitVerb(frame, reply_verb, body);
    return reply_verb == "OK" ? body : "";
}

} // namespace pri::sweepd
