#include "protocol.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace pri::sweepd
{

namespace
{

/**
 * send() with MSG_NOSIGNAL so a disappeared peer surfaces as EPIPE
 * instead of killing the process; falls back to write() for plain
 * pipes (worker fds are socketpairs, so this path is sockets-only
 * in practice).
 */
ssize_t
sendSome(int fd, const void *buf, size_t len)
{
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0 || errno != ENOTSOCK)
        return n;
    return ::write(fd, buf, len);
}

bool
writeAll(int fd, const void *buf, size_t len)
{
    const char *p = static_cast<const char *>(buf);
    while (len > 0) {
        const ssize_t n = sendSome(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

bool
readAll(int fd, void *buf, size_t len)
{
    char *p = static_cast<char *>(buf);
    while (len > 0) {
        const ssize_t n = ::read(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-frame (or before one)
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

} // namespace

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrame)
        return false;
    const uint32_t len = static_cast<uint32_t>(payload.size());
    unsigned char hdr[4] = {
        static_cast<unsigned char>(len & 0xff),
        static_cast<unsigned char>((len >> 8) & 0xff),
        static_cast<unsigned char>((len >> 16) & 0xff),
        static_cast<unsigned char>((len >> 24) & 0xff),
    };
    return writeAll(fd, hdr, sizeof(hdr)) &&
        writeAll(fd, payload.data(), payload.size());
}

bool
readFrame(int fd, std::string &payload)
{
    unsigned char hdr[4];
    if (!readAll(fd, hdr, sizeof(hdr)))
        return false;
    const uint32_t len = static_cast<uint32_t>(hdr[0]) |
        (static_cast<uint32_t>(hdr[1]) << 8) |
        (static_cast<uint32_t>(hdr[2]) << 16) |
        (static_cast<uint32_t>(hdr[3]) << 24);
    if (len > kMaxFrame)
        return false;
    payload.resize(len);
    return len == 0 || readAll(fd, payload.data(), len);
}

void
splitVerb(const std::string &payload, std::string &verb_line,
          std::string &body)
{
    const size_t nl = payload.find('\n');
    if (nl == std::string::npos) {
        verb_line = payload;
        body.clear();
        return;
    }
    verb_line = payload.substr(0, nl);
    body = payload.substr(nl + 1);
}

} // namespace pri::sweepd
