/**
 * @file
 * Thin pri_sweepd client: connect to a daemon socket, submit a
 * batch of sweep points, collect the streamed results.
 *
 * The client is deliberately dumb — it serializes RunParams to
 * PRIP2 lines, reads RESULT/ERROR frames until DONE, and verifies
 * that every served key matches the paramsHash it computed locally
 * (a daemon built from a different params-hash audit can therefore
 * never silently hand back results for the wrong point; the
 * mismatch surfaces as a per-point error and the caller falls back
 * to simulating locally). Transport loss mid-stream degrades the
 * same way: unresolved points come back as errors, never as wrong
 * data.
 *
 * A *hung* daemon degrades like an absent one: connect() polls with
 * a bounded timeout and retry, and submit() requires the daemon's
 * ACK frame within the same timeout before it will block
 * indefinitely on results. A daemon that accepts connections but
 * never services them therefore costs one timeout, not a wedged
 * sweep. PRI_SWEEPD_TIMEOUT_MS overrides the default (5000 ms).
 */

#ifndef PRI_SWEEPD_CLIENT_HH
#define PRI_SWEEPD_CLIENT_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/simulation.hh"

namespace pri::sweepd
{

/** One submitted point's outcome (see SweepdClient::submit). */
struct PointOutcome
{
    sim::RunResult result;
    std::string error; ///< empty on success
    bool stalled = false;
    bool cached = false; ///< served from the store, not simulated

    bool ok() const { return error.empty(); }
};

/** Client connection to a running pri_sweepd (see @file). */
class SweepdClient
{
  public:
    /** Handshake/connect budget: PRI_SWEEPD_TIMEOUT_MS, else 5000. */
    static unsigned defaultTimeoutMs();

    /**
     * Connect to the daemon at @p socketPath; null on failure. The
     * connect itself is non-blocking with a @p timeout_ms budget and
     * one bounded retry, so a daemon whose accept queue is wedged
     * behaves like no daemon at all.
     */
    static std::unique_ptr<SweepdClient>
    connect(const std::string &socketPath, unsigned timeout_ms);

    static std::unique_ptr<SweepdClient>
    connect(const std::string &socketPath)
    {
        return connect(socketPath, defaultTimeoutMs());
    }

    ~SweepdClient();

    SweepdClient(const SweepdClient &) = delete;
    SweepdClient &operator=(const SweepdClient &) = delete;

    /**
     * Submit @p batch and block until every point settles (results
     * stream in completion order; returned in submission order).
     * The daemon must ACK the submission within the connect
     * timeout; a mute daemon surfaces as "daemon unresponsive" on
     * every point. On transport loss the unresolved points carry
     * the error "daemon connection lost" and the connection is dead
     * — callers should fall back to local simulation either way.
     */
    std::vector<PointOutcome>
    submit(const std::vector<sim::RunParams> &batch);

    /**
     * Run a STATUS or STATS query; returns the reply body, or ""
     * on any failure.
     */
    std::string query(const std::string &verb);

  private:
    SweepdClient(int f, unsigned t) : fd(f), timeoutMs(t) {}

    int fd;
    unsigned timeoutMs;
};

} // namespace pri::sweepd

#endif // PRI_SWEEPD_CLIENT_HH
