/**
 * @file
 * The pri_sweepd daemon: a persistent sweep service that turns
 * re-simulation into cache hits.
 *
 * Front end: a unix-domain SOCK_STREAM socket speaking the
 * length-prefixed frames of protocol.hh, one thread per client
 * connection. A SUBMIT's points are resolved in three tiers, under
 * one lock so the invariant "a key is simulated at most once per
 * store lifetime" holds for any client interleaving:
 *
 *   1. store hit   — served immediately from the content-addressed
 *                    ResultStore (bit-exact: PRIJ3 hexfloat lines).
 *   2. in-flight   — an identical point (same paramsHash) is being
 *                    simulated for another client (or earlier in
 *                    this SUBMIT); this client is added to the
 *                    job's waiter list and the result fans out to
 *                    everyone when it lands. Two harnesses sweeping
 *                    overlapping grids never simulate a shared
 *                    point twice.
 *   3. miss        — a new job is queued for the worker pool.
 *
 * Results stream back per point as they land (RESULT/ERROR frames,
 * completion order), then DONE.
 *
 * Back end: N worker *processes* (spawned from /proc/self/exe via
 * worker.hh), one dispatcher thread each. A worker that dies
 * mid-point — crash, OOM kill, the --inject-fault drill — costs
 * exactly that point's attempt: the dispatcher reaps the corpse,
 * respawns the worker, and retries the point per RetryPolicy;
 * every other point is untouched. Stalls (the in-worker watchdog)
 * are deterministic and fail the point immediately, like the
 * in-process runner.
 */

#ifndef PRI_SWEEPD_DAEMON_HH
#define PRI_SWEEPD_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/runner.hh"
#include "sim/simulation.hh"
#include "sweepd/store.hh"

namespace pri::sweepd
{

struct DaemonConfig
{
    std::string socketPath;
    std::string storeDir;
    unsigned workers = 2;
    /** Per-point attempts across worker crashes and plain errors
     *  (stalls never retry), sim::RetryPolicy semantics. */
    unsigned maxAttempts = 3;
    /** Per-point wall-clock budget handed to workers (0 = none). */
    uint64_t timeoutMs = 0;
    /**
     * Binary to exec for workers; empty = /proc/self/exe. The
     * binary must call worker.hh maybeRunAsWorker() first thing.
     */
    std::string workerArgv0;
    /**
     * Crash drill (--inject-fault kill@K): the K-th job dispatch
     * (0-based, counted across all workers) SIGKILLs its worker
     * mid-point, once. The daemon must retry and the sweep must
     * still finish byte-identical. -1 = off.
     */
    long killDispatch = -1;
    /** Announce serving/shutdown on stderr (off in unit tests). */
    bool verbose = true;
};

/** Daemon-lifetime counters, readable while serving. */
struct DaemonStats
{
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> submits{0};
    std::atomic<uint64_t> points{0};       ///< points submitted
    std::atomic<uint64_t> storeHits{0};
    std::atomic<uint64_t> inflightHits{0}; ///< deduped onto a job
    std::atomic<uint64_t> simulated{0};    ///< fresh results
    std::atomic<uint64_t> errors{0};       ///< points failed
    std::atomic<uint64_t> workerCrashes{0};
    std::atomic<uint64_t> retries{0};      ///< re-dispatches
};

/** The sweep daemon (see @file). Construct, start(), keep working
 *  (serving happens on background threads), stop() when done. */
class Daemon
{
  public:
    explicit Daemon(DaemonConfig config);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Bind the socket, open the store, spawn workers, and begin
     * accepting in a background thread. Returns false (with a
     * warning) when the socket or store cannot be set up.
     */
    bool start();

    /** Drain and shut down: close the socket, finish queued jobs'
     *  bookkeeping, quit workers, join every thread. Idempotent. */
    void stop();

    const DaemonStats &stats() const { return counters; }
    const ResultStore *store() const { return resultStore.get(); }

  private:
    struct ClientConn;
    struct Submission;
    struct Job;
    struct WorkerProc
    {
        pid_t pid = -1;
        int fd = -1;
    };

    void acceptLoop();
    void serveConnection(std::shared_ptr<ClientConn> conn);
    void handleSubmit(const std::shared_ptr<ClientConn> &conn,
                      const std::string &body);
    std::string statusText();
    std::string statsText();

    void dispatchLoop(unsigned slot);
    WorkerProc spawnWorker();
    void completeJob(std::unique_ptr<Job> job, bool ok, bool stalled,
                     const sim::RunResult &result,
                     const std::string &error);

    DaemonConfig cfg;
    DaemonStats counters;
    std::unique_ptr<ResultStore> resultStore;

    int listenFd = -1;
    std::atomic<bool> stopping{false};
    std::atomic<bool> started{false};

    std::mutex mu; ///< guards queue, inflight, dispatch counter
    std::condition_variable queueCv;
    std::deque<std::unique_ptr<Job>> queue;
    std::unordered_map<uint64_t, Job *> inflight;
    long dispatchSeq = 0;

    std::thread acceptThread;
    std::vector<std::thread> dispatchers;
    std::mutex connMu;
    std::vector<std::thread> connThreads;
    /** Live connections, so stop() can shut their fds down and
     *  unblock connection threads parked in readFrame(). */
    std::vector<std::weak_ptr<ClientConn>> connFds;
};

} // namespace pri::sweepd

#endif // PRI_SWEEPD_DAEMON_HH
