/**
 * @file
 * pri_sweepd — the persistent sweep daemon binary.
 *
 * Daemon mode (default): serve SUBMIT/STATUS/STATS on a unix-domain
 * socket, backed by the content-addressed result store and a pool
 * of worker processes, until SIGINT/SIGTERM.
 *
 *   pri_sweepd --socket /tmp/pri.sock --store ~/.cache/pri_store \
 *              --workers 8
 *
 * Query mode: one-shot client against a running daemon.
 *
 *   pri_sweepd --socket /tmp/pri.sock --query stats
 *
 * Worker mode (internal): the daemon respawns crashed workers by
 * exec'ing this binary with --sweepd-worker-fd, so that dispatch
 * must run before anything else.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/logging.hh"
#include "faults/fault_arg.hh"
#include "sweepd/client.hh"
#include "sweepd/daemon.hh"
#include "sweepd/worker.hh"

namespace
{

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --socket PATH      unix socket to serve/query (default:\n"
        "                     $PRI_SWEEPD, else /tmp/pri_sweepd.sock)\n"
        "  --store DIR        result store directory (default:\n"
        "                     sweepd_store)\n"
        "  --workers N        worker processes (default: 4)\n"
        "  --attempts N       tries per point across worker crashes\n"
        "                     (default: 3)\n"
        "  --timeout-ms N     per-point wall-clock budget (default:\n"
        "                     none)\n"
        "  --inject-fault kill@K\n"
        "                     crash drill: SIGKILL the worker on the\n"
        "                     K-th job dispatch (0-based), once\n"
        "  --query status|stats\n"
        "                     query a running daemon and exit\n"
        "  --quiet            no serving/shutdown announcements\n",
        argv0);
}

bool
parseU(const char *s, unsigned long &out)
{
    char *e = nullptr;
    out = std::strtoul(s, &e, 10);
    return e != s && *e == '\0';
}

} // namespace

int
main(int argc, char **argv)
{
    // Worker dispatch MUST come first: the daemon respawns workers
    // from /proc/self/exe, i.e. this very binary.
    if (const int rc = pri::sweepd::maybeRunAsWorker(argc, argv);
        rc >= 0)
        return rc;

    pri::sweepd::DaemonConfig cfg;
    cfg.storeDir = "sweepd_store";
    cfg.workers = 4;
    if (const char *env = std::getenv("PRI_SWEEPD"))
        cfg.socketPath = env;
    if (cfg.socketPath.empty())
        cfg.socketPath = "/tmp/pri_sweepd.sock";
    std::string query;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        unsigned long n = 0;
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--quiet") {
            cfg.verbose = false;
        } else if (arg == "--socket" && val != nullptr) {
            cfg.socketPath = argv[++i];
        } else if (arg == "--store" && val != nullptr) {
            cfg.storeDir = argv[++i];
        } else if (arg == "--query" && val != nullptr) {
            query = argv[++i];
        } else if (arg == "--workers" && val != nullptr &&
                   parseU(val, n) && n > 0) {
            cfg.workers = static_cast<unsigned>(n);
            ++i;
        } else if (arg == "--attempts" && val != nullptr &&
                   parseU(val, n) && n > 0) {
            cfg.maxAttempts = static_cast<unsigned>(n);
            ++i;
        } else if (arg == "--timeout-ms" && val != nullptr &&
                   parseU(val, n)) {
            cfg.timeoutMs = n;
            ++i;
        } else if (arg == "--inject-fault" && val != nullptr) {
            // Shared grammar with pri_sim; only the worker-crash
            // drill makes sense for the daemon itself (simulation
            // faults belong in the submitted points).
            pri::faults::FaultArg fault;
            std::string err;
            if (!pri::faults::parseFaultArg(argv[++i], fault, err)) {
                std::fprintf(stderr, "%s: %s\n", argv[0],
                             err.c_str());
                return 2;
            }
            if (!fault.kill) {
                std::fprintf(stderr,
                             "%s: the daemon only takes the kill@K "
                             "crash drill; submit simulation faults "
                             "with the sweep points\n",
                             argv[0]);
                return 2;
            }
            cfg.killDispatch =
                static_cast<long>(fault.killDispatch);
        } else {
            std::fprintf(stderr, "%s: bad argument '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    if (!query.empty()) {
        if (query != "status" && query != "stats") {
            std::fprintf(stderr, "%s: --query takes status|stats\n",
                         argv[0]);
            return 2;
        }
        auto client =
            pri::sweepd::SweepdClient::connect(cfg.socketPath);
        if (client == nullptr) {
            std::fprintf(stderr, "%s: no daemon on '%s'\n", argv[0],
                         cfg.socketPath.c_str());
            return 1;
        }
        std::string verb = query == "status" ? "STATUS" : "STATS";
        const std::string body = client->query(verb);
        if (body.empty()) {
            std::fprintf(stderr, "%s: query failed\n", argv[0]);
            return 1;
        }
        std::fputs(body.c_str(), stdout);
        return 0;
    }

    pri::installCrashHandlers();
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    pri::sweepd::Daemon daemon(cfg);
    if (!daemon.start())
        return 1;
    while (g_stop == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    daemon.stop();
    return 0;
}
