#include "worker.hh"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/logging.hh"
#include "common/strfmt.hh"
#include "sim/result_codec.hh"
#include "sim/runner.hh"
#include "sweepd/protocol.hh"

namespace pri::sweepd
{

namespace
{

/** Parse "JOB <crash> <timeoutMs>". */
bool
parseJobHeader(const std::string &verb_line, bool &crash,
               uint64_t &timeout_ms)
{
    unsigned long long c = 0, t = 0;
    if (std::sscanf(verb_line.c_str(), "JOB %llu %llu", &c, &t) != 2)
        return false;
    crash = c != 0;
    timeout_ms = t;
    return true;
}

} // namespace

int
workerMain(int fd)
{
    // Crash handlers so a worker that dies hard still leaves a
    // flight-recorder dump on the daemon's stderr (workers inherit
    // it), naming the point that killed it.
    installCrashHandlers();

    std::string payload, verb, body;
    while (readFrame(fd, payload)) {
        splitVerb(payload, verb, body);
        if (verb == "QUIT")
            return 0;

        bool crash = false;
        uint64_t timeout_ms = 0;
        if (!parseJobHeader(verb, crash, timeout_ms)) {
            writeFrame(fd, fmtStr("ERR 0\nworker: bad frame '{}'",
                                  verb));
            continue;
        }
        if (crash) {
            // --inject-fault drill: die the way a real simulator
            // crash would — no reply, no destructors, just a
            // vanished process mid-point.
            std::raise(SIGKILL);
        }

        sim::RunParams p;
        // Machine-local policy (not on the wire, not hashed): the
        // daemon's per-point wall-clock budget.
        p.timeoutMs = timeout_ms;
        if (!sim::codec::parseParamsLine(body, p)) {
            writeFrame(fd, "ERR 0\nworker: malformed params line");
            continue;
        }

        // One point through the standard resilient execution stack:
        // the runner wraps simulate() in error capture, simulate()
        // arms the watchdog and the flight recorder. Retries stay
        // daemon-side where crashes are also visible, so the runner
        // gets a single attempt.
        sim::SimulationRunner runner(1);
        const auto outcomes = runner.runCaptured({p});
        const auto &o = outcomes.front();
        if (o.ok()) {
            if (!writeFrame(fd,
                            "RES\n" + sim::codec::formatResultLine(
                                          sim::paramsHash(p),
                                          o.result))) {
                return 1; // daemon went away
            }
        } else {
            if (!writeFrame(fd, fmtStr("ERR {}\n{}",
                                       o.stalled ? 1 : 0, o.error)))
                return 1;
        }
    }
    return 0; // daemon closed the pair: shut down
}

int
maybeRunAsWorker(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], kWorkerFdFlag) == 0)
            return workerMain(std::atoi(argv[i + 1]));
    }
    return -1;
}

} // namespace pri::sweepd
