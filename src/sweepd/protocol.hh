/**
 * @file
 * pri_sweepd wire protocol: length-prefixed text frames over a
 * SOCK_STREAM unix-domain socket.
 *
 * Every frame is a 4-byte little-endian payload length followed by
 * that many bytes of UTF-8 text. The first line of the payload is
 * the verb (plus space-separated arguments); subsequent lines carry
 * records in the audited sim/result_codec.hh formats.
 *
 * Client -> daemon:
 *   SUBMIT            followed by one PRIP2 params line per point.
 *   STATUS            human-readable daemon state.
 *   STATS             machine-readable "key value" counter lines.
 *
 * Daemon -> client (streamed per SUBMIT, in completion order):
 *   ACK <n>                 SUBMIT received, n points parsed off the
 *                           wire; sent before any resolution so
 *                           clients can bound their handshake wait.
 *   RESULT <idx> <cached>   followed by the point's PRIJ3 line.
 *                           idx = 0-based position in the SUBMIT;
 *                           cached = 1 when served from the store
 *                           without simulating.
 *   ERROR <idx> <stalled>   followed by the failure message.
 *   DONE <hits> <misses>    all points of the SUBMIT settled.
 *   OK                      followed by STATUS/STATS body.
 *
 * Daemon -> worker (over the per-worker socketpair):
 *   JOB <crash> <timeoutMs>  followed by one PRIP2 line. crash = 1
 *                            tells the worker to SIGKILL itself on
 *                            receipt (the --inject-fault drill).
 *   QUIT                     clean worker shutdown.
 * Worker -> daemon:
 *   RES                      followed by the PRIJ3 result line.
 *   ERR <stalled>            followed by the failure message.
 */

#ifndef PRI_SWEEPD_PROTOCOL_HH
#define PRI_SWEEPD_PROTOCOL_HH

#include <cstdint>
#include <string>

namespace pri::sweepd
{

/** Upper bound on a frame payload; anything larger is treated as a
 *  protocol error (a stats report is tens of KB, never this). */
constexpr uint32_t kMaxFrame = 64u << 20;

/**
 * Write one frame (4-byte LE length + payload) to @p fd, retrying
 * short writes. Returns false on any error (including EPIPE from a
 * vanished peer — writes never raise SIGPIPE).
 */
bool writeFrame(int fd, const std::string &payload);

/**
 * Read one frame from @p fd into @p payload, retrying short reads.
 * Returns false on EOF, error, or an over-limit length prefix.
 */
bool readFrame(int fd, std::string &payload);

/**
 * Split @p payload into its verb line and body: the verb line is
 * everything before the first '\n' (or the whole payload), the body
 * everything after it.
 */
void splitVerb(const std::string &payload, std::string &verb_line,
               std::string &body);

} // namespace pri::sweepd

#endif // PRI_SWEEPD_PROTOCOL_HH
