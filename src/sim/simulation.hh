/**
 * @file
 * High-level simulation driver: the public API that examples and
 * benches use. One call = one benchmark × one machine width × one
 * register-management scheme × one register-file size, with warmup
 * and a measurement window, returning the metrics the paper reports.
 */

#ifndef PRI_SIM_SIMULATION_HH
#define PRI_SIM_SIMULATION_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/core.hh"
#include "workload/profile.hh"

namespace pri::sim
{

/** The register-management schemes evaluated in paper §5. */
enum class Scheme
{
    Base,
    EarlyRelease,
    PriRefcountCkptcount,
    PriRefcountLazy,
    PriIdealCkptcount,
    PriIdealLazy,
    PriPlusEr,
    InfinitePregs,
    /** §6 future work: delayed (virtual-physical) allocation. */
    VirtualPhysical,
    /** §6 future work: VP combined with PRI. */
    VirtualPhysicalPlusPri,
};

/** Short display name matching the paper's figure legends. */
const char *schemeName(Scheme scheme);

/** All schemes in figure order (Fig 10 / Fig 12 legends). */
constexpr Scheme kAllSchemes[] = {
    Scheme::Base,
    Scheme::EarlyRelease,
    Scheme::PriRefcountCkptcount,
    Scheme::PriRefcountLazy,
    Scheme::PriIdealCkptcount,
    Scheme::PriIdealLazy,
    Scheme::PriPlusEr,
    Scheme::InfinitePregs,
};

/** Build a rename configuration for a scheme. */
rename::RenameConfig makeRenameConfig(Scheme scheme, unsigned pregs,
                                      unsigned narrow_bits);

/** One simulation request. */
struct RunParams
{
    std::string benchmark = "gzip";
    unsigned width = 4;           ///< 4 or 8 (Table 1 presets)
    Scheme scheme = Scheme::Base;
    unsigned physRegs = 64;       ///< per class; ignored for InfPR
    uint64_t warmupInsts = 30000;
    uint64_t measureInsts = 100000;
    uint64_t seed = 42;
    bool checkInvariants = false; ///< run invariant checks at end
    /**
     * Lockstep-compare every committed instruction (and, at
     * intervals, the full architectural register file) against the
     * golden in-order model; panics on first divergence. The
     * PRI_CHECK_GOLDEN environment variable forces this on for all
     * runs in the process (used by CI to diff-check the figure
     * harnesses unmodified).
     */
    bool checkGolden = false;
    /**
     * Commits between the checker's full register-file compares and
     * invariant audits. Small intervals tighten the detection
     * latency for corruption that is not visible through commit
     * values alone (at a simulation-speed cost).
     */
    unsigned goldenAuditInterval = 64;
    unsigned schedSizeOverride = 0;  ///< 0 = width preset's size
    unsigned narrowBitsOverride = 0; ///< 0 = width preset's bits
    /**
     * PRF read ports per cycle; 0 = unlimited (exactly the
     * pre-port-model machine, byte-identical reports). Finite
     * budgets must be >= 2; see core::CoreConfig::prfReadPorts.
     */
    unsigned prfReadPorts = 0;
    /** Planted bugs for diff-checker validation (tests only). */
    core::InjectedFault injectFault = core::InjectedFault::None;
    bool injectFreeWithoutInline = false;
    /**
     * One-shot transient fault (soft-error campaign injection):
     * site + counter-based trigger + mutation, fully deterministic
     * and audited by paramsHash so campaign points journal and
     * content-address like any other sweep point. Disabled by
     * default. See faults::FaultSpec and DESIGN.md §17.
     */
    faults::FaultSpec faultSpec;
    /**
     * Test-only transient-failure seam for the runner's retry
     * policy: simulate() throws TransientError while
     * attempt < injectTransientFails, then succeeds normally — so
     * "fails twice, succeeds on the third try" is deterministic.
     */
    unsigned injectTransientFails = 0;
    /**
     * Retry ordinal (0 = first try), stamped by SimulationRunner on
     * each attempt. Never affects results or the params hash; read
     * only by the transient-failure seam above.
     */
    unsigned attempt = 0;
    /**
     * Forward-progress watchdog (see core::CoreConfig). Enabled by
     * default; watchdogCycles 0 takes the built-in default.
     * PRI_WATCHDOG_CYCLES overrides the threshold process-wide
     * (0 disables the watchdog entirely).
     */
    bool watchdog = true;
    uint64_t watchdogCycles = 0;
    /** Hard cycle budget, 0 = unlimited: exceeding it raises
     *  core::ProgressStallError instead of running forever. */
    uint64_t cycleBudget = 0;
    /** Per-run wall-clock budget in milliseconds (0 = none).
     *  Machine-dependent, so excluded from the params hash. */
    uint64_t timeoutMs = 0;
    /**
     * Recover branch state through the checkpoint pool (default)
     * rather than the legacy copy-everywhere path. Timing-identical;
     * exists so harnesses can A/B the simulator-speed change. The
     * PRI_LEGACY_CKPTS environment variable forces the legacy path
     * for whole-binary spot checks.
     */
    bool pooledCheckpoints = true;
    /**
     * Wake scheduler entries through per-preg consumer lists and a
     * seq-ordered ready list (default) rather than the legacy
     * re-poll-everything select loop. Timing-identical; exists so
     * harnesses can A/B the simulator-speed change. The
     * PRI_LEGACY_WAKEUP environment variable forces the legacy path
     * for whole-binary spot checks.
     */
    bool eventWakeup = true;
    /**
     * Fetch through pre-decoded micro-traces shared via the global
     * TraceCache (default) rather than the legacy per-instance
     * decode path. Byte-identical output; exists so harnesses can
     * A/B the simulator-speed change. The PRI_LEGACY_WALKER
     * environment variable forces the legacy path for whole-binary
     * spot checks.
     */
    bool tracedFrontEnd = true;
};

/** Headline metrics of one run. */
struct RunResult
{
    std::string benchmark;
    std::string scheme;
    unsigned width = 0;
    double ipc = 0.0;
    uint64_t cycles = 0;
    uint64_t insts = 0;

    uint64_t committedTotal = 0; ///< whole run incl. warmup
    uint64_t goldenChecked = 0;  ///< commits diff-checked (0 = off)

    double avgIntOccupancy = 0.0;
    double avgFpOccupancy = 0.0;

    // Register lifetime phases (paper Figures 1 and 8), in cycles.
    double lifeAllocToWrite = 0.0;
    double lifeWriteToLastRead = 0.0;
    double lifeLastReadToRelease = 0.0;

    double branchMispredictRate = 0.0; ///< per committed branch
    double dl1MissRate = 0.0;
    double priEarlyFrees = 0.0;        ///< per 1k committed insts
    double erEarlyFrees = 0.0;         ///< per 1k committed insts
    double inlinedFrac = 0.0;          ///< narrow results / dests

    // PRF read-port pressure (0.0 when ports are unlimited).
    double portStallsPerKInst = 0.0;   ///< denied issues / 1k insts
    /** Source operands served from the map as inlined immediates,
     *  as a fraction of all operands at issue — the port relief PRI
     *  buys (reads + bypasses = operands). */
    double portInlineBypassFrac = 0.0;

    /**
     * Order-sensitive hash of the committed instruction stream's
     * architecturally visible results (pc × dest value as read back
     * through the PRF at commit). Two runs that committed the same
     * values in the same order share it; a fault that corrupts a
     * committed value changes it even when no aggregate stat moves.
     * The campaign classifier uses it to tell Masked from silent
     * data corruption with the golden checker off.
     */
    uint64_t archSig = 0;

    /** Full stat report (for verbose output). */
    std::string report;
};

/**
 * Thrown by the injectTransientFails test seam; the runner's retry
 * policy treats any failure as retryable, this type just makes the
 * planted ones recognizable in error text.
 */
class TransientError : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * Deterministic digest of every RunParams field that can change the
 * journaled result record (benchmark, machine shape, scheme, seed,
 * budgets, planted faults, read-port budget). Excludes fields that
 * provably cannot — attempt, watchdog settings, timeoutMs,
 * checkInvariants, goldenAuditInterval, injectTransientFails — so a
 * journaled result stays valid across retries, machines, and
 * observation settings, and adding a presentation knob to a harness
 * never forks journal keys. checkGolden *is* hashed: it changes the
 * persisted RunResult.goldenChecked field, so a checked request must
 * never be satisfied by an unchecked run's record. Keys the sweep
 * journal.
 */
uint64_t paramsHash(const RunParams &params);

/** One-line human-readable summary (bench / scheme / width / pregs
 *  / seed) used in error prefixes and flight-recorder context. */
std::string paramsSummary(const RunParams &params);

/** Run one simulation. */
RunResult simulate(const RunParams &params);

/**
 * Speedup helper: IPC(scheme) / IPC(base) on the same benchmark,
 * width, and register count.
 */
double speedupOver(const RunResult &result, const RunResult &base);

} // namespace pri::sim

#endif // PRI_SIM_SIMULATION_HH
