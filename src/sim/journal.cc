#include "journal.hh"

#include <csignal>
#include <cstdlib>

#include "common/logging.hh"
#include "sim/result_codec.hh"

namespace pri::sim
{

SweepJournal::SweepJournal(std::string path)
    : filePath(std::move(path))
{
    if (filePath.empty())
        return;
    if (const char *k = std::getenv("PRI_JOURNAL_KILL_AFTER"))
        killAfter = std::strtoull(k, nullptr, 10);
    load();
    file = std::fopen(filePath.c_str(), "a");
    if (file == nullptr)
        fatal("cannot open journal '{}' for append", filePath);
}

SweepJournal::~SweepJournal()
{
    if (file != nullptr)
        std::fclose(file);
}

void
SweepJournal::load()
{
    std::FILE *in = std::fopen(filePath.c_str(), "r");
    if (in == nullptr)
        return; // fresh journal
    std::string line;
    size_t skipped = 0;
    int c;
    while ((c = std::fgetc(in)) != EOF) {
        if (c != '\n') {
            line += static_cast<char>(c);
            continue;
        }
        uint64_t key = 0;
        RunResult r;
        if (codec::parseResultLine(line, key, r)) {
            if (entries.emplace(key, std::move(r)).second)
                ++loaded;
        } else {
            ++skipped;
        }
        line.clear();
    }
    // A trailing fragment with no newline is the classic torn write;
    // count it with the malformed lines and let the point rerun.
    if (!line.empty())
        ++skipped;
    std::fclose(in);
    if (skipped > 0) {
        std::fprintf(stderr,
                     "journal '%s': skipped %zu incomplete line%s "
                     "(those points will rerun)\n",
                     filePath.c_str(), skipped,
                     skipped == 1 ? "" : "s");
    }
}

bool
SweepJournal::lookup(uint64_t key, RunResult &out) const
{
    if (!enabled())
        return false;
    std::lock_guard<std::mutex> lock(mu);
    const auto it = entries.find(key);
    if (it == entries.end())
        return false;
    out = it->second;
    return true;
}

void
SweepJournal::record(uint64_t key, const RunResult &result)
{
    if (!enabled())
        return;
    const std::string line = codec::formatResultLine(key, result);
    std::lock_guard<std::mutex> lock(mu);
    if (!entries.emplace(key, result).second)
        return; // duplicate point already persisted
    std::fwrite(line.data(), 1, line.size(), file);
    std::fflush(file);
    ++appended;
    if (killAfter != 0 && appended >= killAfter) {
        // CI crash-drill hook: die the hard way (no destructors, no
        // handlers) right after this point hit the disk.
        std::raise(SIGKILL);
    }
}

} // namespace pri::sim
