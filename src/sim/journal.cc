#include "journal.hh"

#include <csignal>
#include <cstdlib>
#include <vector>

#include "common/logging.hh"

namespace pri::sim
{

namespace
{

/** Line format tag; bump when the field list changes. */
constexpr const char *kTag = "PRIJ2";
/** tag, key, 2 strings, width, 4 u64, 13 doubles, report, "." */
constexpr size_t kFields = 24;

/** Escape tabs/newlines/backslashes so a report is one field. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
unescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 == s.size()) {
            out += s[i];
            continue;
        }
        switch (s[++i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: out += s[i];
        }
    }
    return out;
}

std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
        const size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

/**
 * Parse one journal line. Returns false (leaving @p key / @p r
 * untouched garbage) for anything malformed — most importantly the
 * torn final line of a journal whose writer was SIGKILLed mid-write.
 */
bool
parseLine(const std::string &line, uint64_t &key, RunResult &r)
{
    const auto f = splitTabs(line);
    if (f.size() != kFields || f[0] != kTag || f[kFields - 1] != ".")
        return false;

    char *end = nullptr;
    key = std::strtoull(f[1].c_str(), &end, 16);
    if (end == f[1].c_str() || *end != '\0')
        return false;

    r.benchmark = f[2];
    r.scheme = f[3];

    const auto u64 = [&](const std::string &s, uint64_t &out) {
        char *e = nullptr;
        out = std::strtoull(s.c_str(), &e, 10);
        return e != s.c_str() && *e == '\0';
    };
    // Doubles are written with %a (hexfloat), which strtod parses
    // back to the exact same bits — resumed reports stay identical.
    const auto f64 = [&](const std::string &s, double &out) {
        char *e = nullptr;
        out = std::strtod(s.c_str(), &e);
        return e != s.c_str() && *e == '\0';
    };

    uint64_t width = 0;
    bool ok = u64(f[4], width);
    r.width = static_cast<unsigned>(width);
    ok = ok && u64(f[5], r.cycles) && u64(f[6], r.insts);
    ok = ok && u64(f[7], r.committedTotal);
    ok = ok && u64(f[8], r.goldenChecked);
    ok = ok && f64(f[9], r.ipc);
    ok = ok && f64(f[10], r.avgIntOccupancy);
    ok = ok && f64(f[11], r.avgFpOccupancy);
    ok = ok && f64(f[12], r.lifeAllocToWrite);
    ok = ok && f64(f[13], r.lifeWriteToLastRead);
    ok = ok && f64(f[14], r.lifeLastReadToRelease);
    ok = ok && f64(f[15], r.branchMispredictRate);
    ok = ok && f64(f[16], r.dl1MissRate);
    ok = ok && f64(f[17], r.priEarlyFrees);
    ok = ok && f64(f[18], r.erEarlyFrees);
    ok = ok && f64(f[19], r.inlinedFrac);
    ok = ok && f64(f[20], r.portStallsPerKInst);
    ok = ok && f64(f[21], r.portInlineBypassFrac);
    r.report = unescape(f[22]);
    return ok;
}

std::string
formatLine(uint64_t key, const RunResult &r)
{
    std::string line = kTag;
    const auto add = [&](const std::string &s) {
        line += '\t';
        line += s;
    };
    char buf[64];
    const auto addU64 = [&](uint64_t v) {
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        add(buf);
    };
    const auto addF64 = [&](double v) {
        std::snprintf(buf, sizeof(buf), "%a", v);
        add(buf);
    };
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    add(buf);
    add(r.benchmark);
    add(r.scheme);
    addU64(r.width);
    addU64(r.cycles);
    addU64(r.insts);
    addU64(r.committedTotal);
    addU64(r.goldenChecked);
    addF64(r.ipc);
    addF64(r.avgIntOccupancy);
    addF64(r.avgFpOccupancy);
    addF64(r.lifeAllocToWrite);
    addF64(r.lifeWriteToLastRead);
    addF64(r.lifeLastReadToRelease);
    addF64(r.branchMispredictRate);
    addF64(r.dl1MissRate);
    addF64(r.priEarlyFrees);
    addF64(r.erEarlyFrees);
    addF64(r.inlinedFrac);
    addF64(r.portStallsPerKInst);
    addF64(r.portInlineBypassFrac);
    add(escape(r.report));
    add(".");
    line += '\n';
    return line;
}

} // namespace

SweepJournal::SweepJournal(std::string path)
    : filePath(std::move(path))
{
    if (filePath.empty())
        return;
    if (const char *k = std::getenv("PRI_JOURNAL_KILL_AFTER"))
        killAfter = std::strtoull(k, nullptr, 10);
    load();
    file = std::fopen(filePath.c_str(), "a");
    if (file == nullptr)
        fatal("cannot open journal '{}' for append", filePath);
}

SweepJournal::~SweepJournal()
{
    if (file != nullptr)
        std::fclose(file);
}

void
SweepJournal::load()
{
    std::FILE *in = std::fopen(filePath.c_str(), "r");
    if (in == nullptr)
        return; // fresh journal
    std::string line;
    size_t skipped = 0;
    int c;
    while ((c = std::fgetc(in)) != EOF) {
        if (c != '\n') {
            line += static_cast<char>(c);
            continue;
        }
        uint64_t key = 0;
        RunResult r;
        if (parseLine(line, key, r)) {
            if (entries.emplace(key, std::move(r)).second)
                ++loaded;
        } else {
            ++skipped;
        }
        line.clear();
    }
    // A trailing fragment with no newline is the classic torn write;
    // count it with the malformed lines and let the point rerun.
    if (!line.empty())
        ++skipped;
    std::fclose(in);
    if (skipped > 0) {
        std::fprintf(stderr,
                     "journal '%s': skipped %zu incomplete line%s "
                     "(those points will rerun)\n",
                     filePath.c_str(), skipped,
                     skipped == 1 ? "" : "s");
    }
}

bool
SweepJournal::lookup(uint64_t key, RunResult &out) const
{
    if (!enabled())
        return false;
    std::lock_guard<std::mutex> lock(mu);
    const auto it = entries.find(key);
    if (it == entries.end())
        return false;
    out = it->second;
    return true;
}

void
SweepJournal::record(uint64_t key, const RunResult &result)
{
    if (!enabled())
        return;
    const std::string line = formatLine(key, result);
    std::lock_guard<std::mutex> lock(mu);
    if (!entries.emplace(key, result).second)
        return; // duplicate point already persisted
    std::fwrite(line.data(), 1, line.size(), file);
    std::fflush(file);
    ++appended;
    if (killAfter != 0 && appended >= killAfter) {
        // CI crash-drill hook: die the hard way (no destructors, no
        // handlers) right after this point hit the disk.
        std::raise(SIGKILL);
    }
}

} // namespace pri::sim
