#include "simulation.hh"

#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/flight_recorder.hh"
#include "common/hashing.hh"
#include "common/logging.hh"
#include "faults/fault_arg.hh"
#include "sim/sim_instance.hh"

namespace pri::sim
{

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Base: return "Base";
      case Scheme::EarlyRelease: return "ER";
      case Scheme::PriRefcountCkptcount:
        return "PRI-refcount+ckptcount";
      case Scheme::PriRefcountLazy: return "PRI-refcount+lazy";
      case Scheme::PriIdealCkptcount: return "PRI-ideal+ckptcount";
      case Scheme::PriIdealLazy: return "PRI-ideal+lazy";
      case Scheme::PriPlusEr: return "PRI+ER";
      case Scheme::InfinitePregs: return "InfPR";
      case Scheme::VirtualPhysical: return "VP";
      case Scheme::VirtualPhysicalPlusPri: return "VP+PRI";
    }
    return "?";
}

rename::RenameConfig
makeRenameConfig(Scheme scheme, unsigned pregs, unsigned narrow_bits)
{
    using rename::RenameConfig;
    switch (scheme) {
      case Scheme::Base:
        return RenameConfig::base(pregs, narrow_bits);
      case Scheme::EarlyRelease:
        return RenameConfig::er(pregs, narrow_bits);
      case Scheme::PriRefcountCkptcount:
        return RenameConfig::priRefcountCkptcount(pregs,
                                                  narrow_bits);
      case Scheme::PriRefcountLazy:
        return RenameConfig::priRefcountLazy(pregs, narrow_bits);
      case Scheme::PriIdealCkptcount:
        return RenameConfig::priIdealCkptcount(pregs, narrow_bits);
      case Scheme::PriIdealLazy:
        return RenameConfig::priIdealLazy(pregs, narrow_bits);
      case Scheme::PriPlusEr:
        return RenameConfig::priPlusEr(pregs, narrow_bits);
      case Scheme::InfinitePregs:
        return RenameConfig::infinite(narrow_bits);
      case Scheme::VirtualPhysical:
        return RenameConfig::virtualPhys(pregs, narrow_bits);
      case Scheme::VirtualPhysicalPlusPri:
        return RenameConfig::virtualPhysPlusPri(pregs, narrow_bits);
    }
    fatal("unknown scheme");
}

uint64_t
paramsHash(const RunParams &params)
{
    uint64_t h = splitMix64(0x5072694a6f75726eULL); // "PriJourn"
    for (const char c : params.benchmark)
        h = hashCombine(h, static_cast<uint64_t>(c));
    h = hashCombine(h, params.width,
                    static_cast<uint64_t>(params.scheme));
    h = hashCombine(h, params.physRegs, params.warmupInsts);
    h = hashCombine(h, params.measureInsts, params.seed);
    // checkGolden changes the persisted goldenChecked field;
    // checkInvariants / goldenAuditInterval / injectTransientFails
    // change no byte of the result record (the fuzzer asserts the
    // transient-retry and audit-interval runs bit-identical) and
    // are deliberately left out.
    h = hashCombine(h, params.checkGolden ? 1 : 0,
                    params.schedSizeOverride);
    h = hashCombine(h, params.narrowBitsOverride,
                    static_cast<uint64_t>(params.injectFault));
    h = hashCombine(h, params.injectFreeWithoutInline ? 1 : 0,
                    params.prfReadPorts);
    h = hashCombine(h, params.pooledCheckpoints ? 1 : 0,
                    params.eventWakeup ? 1 : 0);
    h = hashCombine(h, params.cycleBudget,
                    params.tracedFrontEnd ? 1 : 0);
    // The transient-fault spec changes the committed stream (and
    // the persisted archSig), so every field is audited: a campaign
    // injection must never be satisfied by a clean run's record or
    // by a different injection's.
    h = hashCombine(h,
                    static_cast<uint64_t>(params.faultSpec.site),
                    static_cast<uint64_t>(params.faultSpec.mutation));
    h = hashCombine(h,
                    static_cast<uint64_t>(params.faultSpec.trigger),
                    params.faultSpec.triggerArg);
    h = hashCombine(h, params.faultSpec.seed);
    return h;
}

std::string
paramsSummary(const RunParams &params)
{
    std::string s =
        fmtStr("{} / {} / w{} / pregs {} / seed {}",
               params.benchmark, schemeName(params.scheme),
               params.width, params.physRegs, params.seed);
    // Appended only for finite budgets so unlimited-port sweep
    // tables stay byte-identical to pre-port-model output.
    if (params.prfReadPorts != 0)
        s += fmtStr(" / ports {}", params.prfReadPorts);
    // Appended only for armed specs so fault-free tables keep their
    // historical bytes.
    if (params.faultSpec.enabled()) {
        s += fmtStr(" / fault {}",
                    faults::formatFaultSpec(params.faultSpec));
    }
    return s;
}

RunResult
simulate(const RunParams &params)
{
    if (params.injectTransientFails > params.attempt) {
        throw TransientError(fmtStr(
            "injected transient failure (attempt {} of {} planted)",
            params.attempt + 1, params.injectTransientFails));
    }

    // Arm the forensics trail for this run: the flight recorder
    // restarts empty and carries the params summary so watchdog
    // stalls, panics, and crash dumps name the offending point.
    FlightRecorder &fr = flightRecorder();
    fr.clear();
    fr.setContext(paramsSummary(params).c_str());

    // SimInstance run to completion is the whole simulation: build
    // the machine, warm up, measure, and assemble the result (see
    // sim_instance.hh for the phase machine).
    SimInstance inst(params);
    inst.step(SimInstance::kNoLimit);
    return inst.finish();
}

double
speedupOver(const RunResult &result, const RunResult &base)
{
    PRI_ASSERT(base.ipc > 0.0);
    return result.ipc / base.ipc;
}

} // namespace pri::sim
