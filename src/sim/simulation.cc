#include "simulation.hh"

#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/flight_recorder.hh"
#include "common/hashing.hh"
#include "common/logging.hh"
#include "golden/diff_checker.hh"
#include "workload/program.hh"

namespace pri::sim
{

const char *
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Base: return "Base";
      case Scheme::EarlyRelease: return "ER";
      case Scheme::PriRefcountCkptcount:
        return "PRI-refcount+ckptcount";
      case Scheme::PriRefcountLazy: return "PRI-refcount+lazy";
      case Scheme::PriIdealCkptcount: return "PRI-ideal+ckptcount";
      case Scheme::PriIdealLazy: return "PRI-ideal+lazy";
      case Scheme::PriPlusEr: return "PRI+ER";
      case Scheme::InfinitePregs: return "InfPR";
      case Scheme::VirtualPhysical: return "VP";
      case Scheme::VirtualPhysicalPlusPri: return "VP+PRI";
    }
    return "?";
}

rename::RenameConfig
makeRenameConfig(Scheme scheme, unsigned pregs, unsigned narrow_bits)
{
    using rename::RenameConfig;
    switch (scheme) {
      case Scheme::Base:
        return RenameConfig::base(pregs, narrow_bits);
      case Scheme::EarlyRelease:
        return RenameConfig::er(pregs, narrow_bits);
      case Scheme::PriRefcountCkptcount:
        return RenameConfig::priRefcountCkptcount(pregs,
                                                  narrow_bits);
      case Scheme::PriRefcountLazy:
        return RenameConfig::priRefcountLazy(pregs, narrow_bits);
      case Scheme::PriIdealCkptcount:
        return RenameConfig::priIdealCkptcount(pregs, narrow_bits);
      case Scheme::PriIdealLazy:
        return RenameConfig::priIdealLazy(pregs, narrow_bits);
      case Scheme::PriPlusEr:
        return RenameConfig::priPlusEr(pregs, narrow_bits);
      case Scheme::InfinitePregs:
        return RenameConfig::infinite(narrow_bits);
      case Scheme::VirtualPhysical:
        return RenameConfig::virtualPhys(pregs, narrow_bits);
      case Scheme::VirtualPhysicalPlusPri:
        return RenameConfig::virtualPhysPlusPri(pregs, narrow_bits);
    }
    fatal("unknown scheme");
}

uint64_t
paramsHash(const RunParams &params)
{
    uint64_t h = splitMix64(0x5072694a6f75726eULL); // "PriJourn"
    for (const char c : params.benchmark)
        h = hashCombine(h, static_cast<uint64_t>(c));
    h = hashCombine(h, params.width,
                    static_cast<uint64_t>(params.scheme));
    h = hashCombine(h, params.physRegs, params.warmupInsts);
    h = hashCombine(h, params.measureInsts, params.seed);
    h = hashCombine(h, params.checkInvariants ? 1 : 0,
                    params.checkGolden ? 1 : 0);
    h = hashCombine(h, params.goldenAuditInterval,
                    params.schedSizeOverride);
    h = hashCombine(h, params.narrowBitsOverride,
                    static_cast<uint64_t>(params.injectFault));
    h = hashCombine(h, params.injectFreeWithoutInline ? 1 : 0,
                    params.injectTransientFails);
    h = hashCombine(h, params.pooledCheckpoints ? 1 : 0,
                    params.eventWakeup ? 1 : 0);
    h = hashCombine(h, params.cycleBudget,
                    params.tracedFrontEnd ? 1 : 0);
    return h;
}

std::string
paramsSummary(const RunParams &params)
{
    return fmtStr("{} / {} / w{} / pregs {} / seed {}",
                  params.benchmark, schemeName(params.scheme),
                  params.width, params.physRegs, params.seed);
}

RunResult
simulate(const RunParams &params)
{
    if (params.injectTransientFails > params.attempt) {
        throw TransientError(fmtStr(
            "injected transient failure (attempt {} of {} planted)",
            params.attempt + 1, params.injectTransientFails));
    }

    // Arm the forensics trail for this run: the flight recorder
    // restarts empty and carries the params summary so watchdog
    // stalls, panics, and crash dumps name the offending point.
    FlightRecorder &fr = flightRecorder();
    fr.clear();
    fr.setContext(paramsSummary(params).c_str());

    const auto &profile = workload::profileByName(params.benchmark);
    workload::SyntheticProgram program(profile, params.seed);

    const unsigned narrow = params.narrowBitsOverride
        ? params.narrowBitsOverride
        : core::CoreConfig::narrowBitsForWidth(params.width);
    auto rn_cfg =
        makeRenameConfig(params.scheme, params.physRegs, narrow);
    rn_cfg.injectFreeWithoutInline = params.injectFreeWithoutInline;
    core::CoreConfig cfg = params.width >= 8
        ? core::CoreConfig::eightWide(rn_cfg)
        : core::CoreConfig::fourWide(rn_cfg);
    cfg.pooledCheckpoints = params.pooledCheckpoints;
    if (std::getenv("PRI_LEGACY_CKPTS") != nullptr)
        cfg.pooledCheckpoints = false;
    cfg.eventWakeup = params.eventWakeup;
    if (std::getenv("PRI_LEGACY_WAKEUP") != nullptr)
        cfg.eventWakeup = false;
    cfg.tracedFrontEnd = params.tracedFrontEnd;
    if (std::getenv("PRI_LEGACY_WALKER") != nullptr)
        cfg.tracedFrontEnd = false;
    if (params.schedSizeOverride)
        cfg.schedSize = params.schedSizeOverride;
    cfg.injectFault = params.injectFault;

    // Watchdog / budget plumbing. PRI_WATCHDOG_CYCLES overrides the
    // stall threshold process-wide; 0 disables detection.
    cfg.watchdogEnabled = params.watchdog;
    if (params.watchdogCycles != 0)
        cfg.watchdogCycles = params.watchdogCycles;
    if (const char *wd = std::getenv("PRI_WATCHDOG_CYCLES")) {
        const uint64_t v = std::strtoull(wd, nullptr, 10);
        cfg.watchdogEnabled = v != 0;
        if (v != 0)
            cfg.watchdogCycles = v;
    }
    cfg.cycleBudget = params.cycleBudget;

    StatGroup stats;
    core::OutOfOrderCore cpu(cfg, program, stats);
    cpu.setWallClockBudget(params.timeoutMs);

    std::unique_ptr<golden::DiffChecker> checker;
    if (params.checkGolden ||
        std::getenv("PRI_CHECK_GOLDEN") != nullptr) {
        golden::DiffChecker::Options opt;
        opt.archCheckInterval = params.goldenAuditInterval;
        checker =
            std::make_unique<golden::DiffChecker>(program, opt);
        checker->setAuditHook([&cpu] { cpu.checkInvariants(); });
        cpu.setCommitObserver(checker.get());
    }

    cpu.run(params.warmupInsts);
    cpu.beginMeasurement();
    const uint64_t c0 = cpu.cycles();
    const uint64_t i0 = cpu.committedInsts();

    // Re-zero event counters so rates reflect the window only.
    const double mp0 = stats.scalarValue("core.branchMispredicts");
    const double br0 = stats.scalarValue("core.committedBranches");
    const double pf0 = stats.scalarValue("pri.earlyFrees");
    const double ef0 = stats.scalarValue("er.earlyFrees");
    const double nw0 = stats.scalarValue("pri.narrowResultsInt") +
        stats.scalarValue("pri.narrowResultsFp");
    const double da0 = stats.scalarValue("rename.destAllocs");

    cpu.run(params.measureInsts);

    if (params.checkInvariants)
        cpu.checkInvariants();
    if (checker)
        checker->finishRun();

    RunResult r;
    r.benchmark = params.benchmark;
    r.scheme = schemeName(params.scheme);
    r.width = params.width;
    r.cycles = cpu.cycles() - c0;
    r.insts = cpu.committedInsts() - i0;
    r.committedTotal = cpu.committedInsts();
    r.goldenChecked = checker ? checker->checkedCommits() : 0;
    // IPC from the same measurement-window deltas as cycles/insts,
    // so the three fields are always mutually consistent (a run
    // whose window deltas were taken here must never mix in whole-
    // run counts — speedups in Fig 10/12 divide these IPCs).
    r.ipc = r.cycles == 0
        ? 0.0
        : static_cast<double>(r.insts) /
            static_cast<double>(r.cycles);
    r.avgIntOccupancy = cpu.avgIntOccupancy();
    r.avgFpOccupancy = cpu.avgFpOccupancy();

    r.lifeAllocToWrite =
        stats.average("lifetime.allocToWrite").mean();
    r.lifeWriteToLastRead =
        stats.average("lifetime.writeToLastRead").mean();
    r.lifeLastReadToRelease =
        stats.average("lifetime.lastReadToRelease").mean();

    const double branches =
        stats.scalarValue("core.committedBranches") - br0;
    r.branchMispredictRate = branches > 0
        ? (stats.scalarValue("core.branchMispredicts") - mp0) /
            branches
        : 0.0;

    const double dl1_total = static_cast<double>(
        cpu.memory().dl1().hits() + cpu.memory().dl1().misses());
    r.dl1MissRate = dl1_total > 0
        ? cpu.memory().dl1().misses() / dl1_total
        : 0.0;

    const double insts_k = static_cast<double>(r.insts) / 1000.0;
    r.priEarlyFrees = insts_k > 0
        ? (stats.scalarValue("pri.earlyFrees") - pf0) / insts_k
        : 0.0;
    r.erEarlyFrees = insts_k > 0
        ? (stats.scalarValue("er.earlyFrees") - ef0) / insts_k
        : 0.0;

    const double dests = stats.scalarValue("rename.destAllocs") - da0;
    const double narrow_n =
        stats.scalarValue("pri.narrowResultsInt") +
        stats.scalarValue("pri.narrowResultsFp") - nw0;
    r.inlinedFrac = dests > 0 ? narrow_n / dests : 0.0;

    r.report = stats.report("  ");
    return r;
}

double
speedupOver(const RunResult &result, const RunResult &base)
{
    PRI_ASSERT(base.ipc > 0.0);
    return result.ipc / base.ipc;
}

} // namespace pri::sim
