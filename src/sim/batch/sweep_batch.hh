/**
 * @file
 * SweepBatch: K compatible sweep points simulated as lanes of one
 * batch off a shared workload replay (DESIGN.md §14).
 *
 * A sweep grid re-simulates the same (benchmark, seed) once per
 * scheme × width × register-count point; everything the front end
 * derives from the program alone — block decode, micro-trace
 * pointer chasing, generator parameter folds — is identical across
 * those points. A batch therefore shares one SyntheticProgram, one
 * compiled ProgramTraces acquisition, and one committed-path
 * ReplayTape across its lanes, and each lane re-derives only what
 * its own timing diverges on (wrong-path fetches).
 *
 * Lanes are stepped round-robin in committed-instruction quanta;
 * each lane's hot core state lives in its own LaneArena (huge-page
 * slabs, reused across batches), so the K live machines stay
 * cache-compact instead of strewn across the heap. A lane that
 * finishes early retires from the rotation; stragglers keep going
 * alone. Results are byte-identical to serial execution — the
 * phase machine is slice-invariant (see SimInstance) and the tape
 * holds exactly what live generation would produce.
 */

#ifndef PRI_SIM_BATCH_SWEEP_BATCH_HH
#define PRI_SIM_BATCH_SWEEP_BATCH_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sim/sim_instance.hh"

namespace pri::sim
{

/** Lane count used for "auto" (--batch 0): points per group is
 *  bounded by the grid shape, so this just caps arena residency. */
unsigned defaultBatchLanes();

/**
 * May this point share a batch? Fault-injection points must run the
 * legacy serial path: a planted fault perturbs walker state (e.g.
 * StaleWalkerGidx), and replaying the healthy tape at the perturbed
 * index would produce a different (less buggy) stream than the
 * legacy live generation the fault-detection tests pin down.
 */
bool batchable(const RunParams &params);

/** One formed batch: original submission indices of its lanes. */
struct BatchGroup
{
    std::vector<size_t> indices;
};

/**
 * Group @p pending (indices into @p all, submission order) into
 * batches of at most @p lanes compatible points. Compatibility key:
 * (benchmark, seed, warmupInsts, measureInsts) — lanes must walk
 * the same committed path for the same distance to share the tape.
 * Unbatchable points come back as singleton groups. Group order is
 * deterministic: first-seen-key order, overflow starting new groups.
 */
std::vector<BatchGroup>
formBatches(const std::vector<RunParams> &all,
            const std::vector<size_t> &pending, unsigned lanes);

/** What one lane produced: a result or the error that ended it. */
struct LaneOutcome
{
    RunResult result;
    std::string error; ///< empty on success (unprefixed)
    bool stalled = false;

    bool ok() const { return error.empty(); }
};

/**
 * One batch in flight. Lifecycle: prepare() builds the shared
 * workload and the lanes (the allocation phase), drain() round-
 * robins the lanes to completion (the zero-steady-state-allocation
 * replay loop; perf_smoke measures exactly this window), and
 * finalize() assembles per-lane outcomes. Runs entirely on the
 * calling thread.
 */
class SweepBatch
{
  public:
    SweepBatch(const std::vector<RunParams> &all,
               const BatchGroup &group);
    ~SweepBatch();

    SweepBatch(const SweepBatch &) = delete;
    SweepBatch &operator=(const SweepBatch &) = delete;

    /** Build shared workload + lanes. Lane build errors are
     *  captured into that lane's outcome, not thrown. */
    void prepare();

    /** Step all live lanes round-robin until each is done or dead.
     *  Commit quantum: PRI_BATCH_QUANTUM env, else a quantum large
     *  enough that each turn runs to the lane's next phase boundary
     *  (fine-grained rotation thrashes per-lane machine state). */
    void drain();

    /** Per-lane outcomes, in group-lane order (same order as
     *  group.indices). Destroys the lanes. */
    std::vector<LaneOutcome> finalize();

    /** Tape bytes built for this batch (diagnostics). */
    uint64_t tapeBytes() const;

  private:
    struct Lane
    {
        size_t origIndex = 0;
        std::string flightCtx; ///< pre-formatted (no alloc in drain)
        std::unique_ptr<SimInstance> inst;
        LaneOutcome out;
        bool active = false;
    };

    const std::vector<RunParams> &all;
    BatchGroup group;
    SharedWorkload shared;
    std::unique_ptr<workload::ReplayTape> tape;
    std::vector<Lane> lanes;
};

} // namespace pri::sim

#endif // PRI_SIM_BATCH_SWEEP_BATCH_HH
