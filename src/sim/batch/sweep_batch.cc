#include "sweep_batch.hh"

#include <cstdlib>
#include <map>
#include <tuple>

#include "common/flight_recorder.hh"
#include "common/logging.hh"
#include "workload/program.hh"
#include "workload/profile.hh"

namespace pri::sim
{

namespace
{

/** Committed-path slack past warmup + measure: the final cycle of a
 *  run can overshoot the commit target by a commit-width's worth of
 *  instructions, and wrong-path fetches past the last committed
 *  instruction still read the tape while on-path. Cheap insurance —
 *  entries are ~100B and off-tape reads just fall back to live
 *  generation. */
constexpr uint64_t kTapeSlack = 4096;

/** Default committed instructions per lane turn. A lane's machine
 *  state (~1MB of ROB/rename/scheduler arrays) dwarfs the shared
 *  tape, so fine-grained rotation just thrashes the cache refilling
 *  lane state: measured on the fig10 quick grid, a 4096-instruction
 *  quantum costs ~8% end-to-end versus coarse turns, and throughput
 *  improves monotonically with quantum size. Default to a quantum
 *  larger than any phase slice so each turn runs to the lane's next
 *  phase boundary; PRI_BATCH_QUANTUM overrides for tests that want
 *  to exercise fine-grained rotation and straggler interleaving. */
constexpr uint64_t kCommitQuantum = 1u << 20;

uint64_t
batchQuantum()
{
    static const uint64_t q = [] {
        if (const char *s = std::getenv("PRI_BATCH_QUANTUM")) {
            const uint64_t v = std::strtoull(s, nullptr, 10);
            if (v != 0)
                return v;
        }
        return kCommitQuantum;
    }();
    return q;
}

/** Per-worker-thread arena pool, one arena per lane slot, slabs
 *  retained and rewound across batches. Arenas must outlive every
 *  SimInstance built on them; batches on one thread are strictly
 *  sequential, so resetting slot i in prepare() is safe — the
 *  previous batch's lanes were destroyed in its finalize(). */
LaneArena &
laneArena(size_t lane)
{
    static thread_local std::vector<std::unique_ptr<LaneArena>> pool;
    while (pool.size() <= lane)
        pool.push_back(std::make_unique<LaneArena>());
    return *pool[lane];
}

} // namespace

unsigned
defaultBatchLanes()
{
    return 16;
}

bool
batchable(const RunParams &params)
{
    return params.injectFault == core::InjectedFault::None &&
        !params.injectFreeWithoutInline &&
        params.injectTransientFails == 0;
}

std::vector<BatchGroup>
formBatches(const std::vector<RunParams> &all,
            const std::vector<size_t> &pending, unsigned lanes)
{
    PRI_ASSERT(lanes >= 1);
    using Key = std::tuple<std::string, uint64_t, uint64_t, uint64_t>;
    std::vector<BatchGroup> groups;
    // key -> index into groups of that key's currently-open group
    std::map<Key, size_t> open;
    for (const size_t idx : pending) {
        const RunParams &p = all[idx];
        if (!batchable(p) || lanes == 1) {
            groups.push_back(BatchGroup{{idx}});
            continue;
        }
        const Key key{p.benchmark, p.seed, p.warmupInsts,
                      p.measureInsts};
        auto it = open.find(key);
        if (it == open.end() ||
            groups[it->second].indices.size() >= lanes) {
            groups.push_back(BatchGroup{});
            open[key] = groups.size() - 1;
            it = open.find(key);
        }
        groups[it->second].indices.push_back(idx);
    }
    return groups;
}

SweepBatch::SweepBatch(const std::vector<RunParams> &all,
                       const BatchGroup &group)
    : all(all), group(group)
{
}

SweepBatch::~SweepBatch() = default;

void
SweepBatch::prepare()
{
    PRI_ASSERT(!group.indices.empty());
    const RunParams &first = all[group.indices.front()];

    FlightRecorder &fr = flightRecorder();
    fr.clear();
    fr.setContext(
        fmtStr("batch x{} {}", group.indices.size(),
               paramsSummary(first))
            .c_str());

    const auto &profile = workload::profileByName(first.benchmark);
    shared.program =
        std::make_shared<const workload::SyntheticProgram>(
            profile, first.seed);

    // Share one trace acquisition (and build the tape) iff at least
    // one lane resolves to the traced front end after env overrides.
    bool any_traced = false;
    for (const size_t idx : group.indices)
        any_traced |= coreConfigFor(all[idx]).tracedFrontEnd;
    if (any_traced) {
        shared.traces =
            workload::trace::TraceCache::global().acquire(
                *shared.program);
        tape = std::make_unique<workload::ReplayTape>(
            *shared.program, shared.traces.get(),
            first.warmupInsts + first.measureInsts + kTapeSlack);
        shared.tape = tape.get();
    }

    lanes.resize(group.indices.size());
    for (size_t i = 0; i < group.indices.size(); ++i) {
        Lane &lane = lanes[i];
        lane.origIndex = group.indices[i];
        const RunParams &p = all[lane.origIndex];
        lane.flightCtx = paramsSummary(p);
        fr.setContext(lane.flightCtx.c_str());
        LaneArena &arena = laneArena(i);
        arena.reset();
        try {
            ScopedErrorCapture capture;
            lane.inst = std::make_unique<SimInstance>(p, &shared,
                                                      &arena);
            lane.active = true;
        } catch (const core::ProgressStallError &e) {
            lane.out.stalled = true;
            lane.out.error = e.what();
        } catch (const std::exception &e) {
            lane.out.error = e.what();
        } catch (...) {
            lane.out.error = "unknown exception";
        }
    }
}

void
SweepBatch::drain()
{
    FlightRecorder &fr = flightRecorder();
    const uint64_t quantum = batchQuantum();
    size_t live = 0;
    for (const Lane &lane : lanes)
        live += lane.active ? 1 : 0;

    while (live > 0) {
        for (Lane &lane : lanes) {
            if (!lane.active)
                continue;
            fr.setContext(lane.flightCtx.c_str());
            try {
                ScopedErrorCapture capture;
                if (lane.inst->step(quantum)) {
                    lane.active = false; // done; early retirement
                    --live;
                }
            } catch (const core::ProgressStallError &e) {
                lane.out.stalled = true;
                lane.out.error = e.what();
                lane.active = false;
                --live;
            } catch (const std::exception &e) {
                lane.out.error = e.what();
                lane.active = false;
                --live;
            } catch (...) {
                lane.out.error = "unknown exception";
                lane.active = false;
                --live;
            }
        }
    }
}

std::vector<LaneOutcome>
SweepBatch::finalize()
{
    FlightRecorder &fr = flightRecorder();
    std::vector<LaneOutcome> out;
    out.reserve(lanes.size());
    for (Lane &lane : lanes) {
        if (lane.out.ok() &&
            (lane.inst == nullptr || !lane.inst->done())) {
            lane.out.error = "lane did not complete"; // unreachable
        }
        if (lane.out.ok()) {
            fr.setContext(lane.flightCtx.c_str());
            try {
                ScopedErrorCapture capture;
                lane.out.result = lane.inst->finish();
            } catch (const std::exception &e) {
                lane.out.error = e.what();
            } catch (...) {
                lane.out.error = "unknown exception";
            }
        }
        out.push_back(std::move(lane.out));
        // Lane machines borrow this thread's arena slots; release
        // them now so the next batch may rewind the slabs.
        lane.inst.reset();
    }
    lanes.clear();
    return out;
}

uint64_t
SweepBatch::tapeBytes() const
{
    return tape != nullptr ? tape->tapeBytes() : 0;
}

} // namespace pri::sim
