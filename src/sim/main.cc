/**
 * @file
 * pri_sim: command-line driver for single simulations.
 *
 * Usage:
 *   pri_sim [-b benchmark] [-w width] [-s scheme] [-p pregs]
 *           [-n measureInsts] [-u warmupInsts] [-v]
 *           [--check-golden]
 *
 * Schemes: base er pri pri-lazy pri-ideal pri-ideal-lazy pri-er inf
 *          vp vp-pri
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "sim/simulation.hh"
#include "workload/profile.hh"

namespace
{

pri::sim::Scheme
parseScheme(const std::string &s)
{
    using pri::sim::Scheme;
    if (s == "base") return Scheme::Base;
    if (s == "er") return Scheme::EarlyRelease;
    if (s == "pri") return Scheme::PriRefcountCkptcount;
    if (s == "pri-lazy") return Scheme::PriRefcountLazy;
    if (s == "pri-ideal") return Scheme::PriIdealCkptcount;
    if (s == "pri-ideal-lazy") return Scheme::PriIdealLazy;
    if (s == "pri-er") return Scheme::PriPlusEr;
    if (s == "inf") return Scheme::InfinitePregs;
    if (s == "vp") return Scheme::VirtualPhysical;
    if (s == "vp-pri") return Scheme::VirtualPhysicalPlusPri;
    pri::fatal("unknown scheme '{}'", s);
}

} // namespace

int
main(int argc, char **argv)
{
    pri::sim::RunParams p;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                pri::fatal("missing value for {}", a);
            return argv[++i];
        };
        if (a == "-b") {
            p.benchmark = next();
        } else if (a == "-w") {
            p.width = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "-s") {
            p.scheme = parseScheme(next());
        } else if (a == "-p") {
            p.physRegs = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "-n") {
            p.measureInsts =
                static_cast<uint64_t>(std::atoll(next()));
        } else if (a == "-u") {
            p.warmupInsts =
                static_cast<uint64_t>(std::atoll(next()));
        } else if (a == "-S") {
            p.seed = static_cast<uint64_t>(std::atoll(next()));
        } else if (a == "-v") {
            verbose = true;
        } else if (a == "--check-golden") {
            p.checkGolden = true;
        } else if (a == "-l" || a == "--list") {
            for (const auto &prof : pri::workload::allProfiles())
                std::printf("%s\n", prof.name.c_str());
            return 0;
        } else {
            std::fprintf(stderr,
                         "usage: pri_sim [-b bench] [-w width] "
                         "[-s scheme] [-p pregs] [-n insts] "
                         "[-u warmup] [-v] [-l] "
                         "[--check-golden]\n");
            return 1;
        }
    }

    p.checkInvariants = true;
    // simulate() throws on bad parameters (e.g. an unknown
    // benchmark name) so batch drivers can capture per-run errors;
    // at the CLI the equivalent is a clean fatal.
    const auto r = [&] {
        try {
            return pri::sim::simulate(p);
        } catch (const std::exception &e) {
            pri::fatal("{}", e.what());
        }
    }();

    std::printf("benchmark %s  width %u  scheme %s  pregs %u\n",
                r.benchmark.c_str(), r.width, r.scheme.c_str(),
                p.physRegs);
    std::printf("IPC %.4f  (insts %llu, cycles %llu)\n", r.ipc,
                static_cast<unsigned long long>(r.insts),
                static_cast<unsigned long long>(r.cycles));
    std::printf("occupancy INT %.1f  FP %.1f\n", r.avgIntOccupancy,
                r.avgFpOccupancy);
    std::printf("lifetime  alloc->write %.1f  write->lastread %.1f  "
                "lastread->release %.1f\n",
                r.lifeAllocToWrite, r.lifeWriteToLastRead,
                r.lifeLastReadToRelease);
    std::printf("mispredict/branch %.4f  dl1 miss %.4f  "
                "inlined %.3f\n",
                r.branchMispredictRate, r.dl1MissRate,
                r.inlinedFrac);
    if (r.goldenChecked > 0) {
        std::printf("golden-checked %llu commits, no divergence\n",
                    static_cast<unsigned long long>(
                        r.goldenChecked));
    }
    if (verbose)
        std::printf("\n%s", r.report.c_str());
    return 0;
}
