/**
 * @file
 * pri_sim: command-line driver for single simulations and small
 * fault-tolerant sweeps.
 *
 * Usage:
 *   pri_sim [-b benchmark] [-w width] [-s scheme] [-p pregs]
 *           [-n measureInsts] [-u warmupInsts] [-S seed] [-v]
 *           [--read-ports N] [--check-golden]
 *           [--sweep N] [--jobs N] [--batch K] [--journal PATH]
 *           [--timeout-ms N] [--cycle-budget N]
 *           [--watchdog-cycles N] [--no-watchdog]
 *           [--retries N] [--backoff-ms N]
 *           [--inject-fault KIND[@POINT]]
 *
 * Schemes: base er pri pri-lazy pri-ideal pri-ideal-lazy pri-er inf
 *          vp vp-pri
 *
 * `--sweep N` draws N points deterministically from the seed
 * (benchmark x scheme x register count, at the -w width) and runs
 * them through the pooled SimulationRunner. A point that stalls,
 * panics, or crashes is reported in a per-point error table on
 * stderr (exit status 2) while its siblings complete; with
 * `--journal` finished points are persisted as they land, so
 * rerunning the identical command after a crash re-simulates only
 * the missing points and prints a byte-identical table.
 * `--inject-fault wedge@3` plants a scheduler wedge in point 3 only
 * (the watchdog acceptance drill). The same flag also takes a
 * transient-fault spec, e.g. `--inject-fault map:flip:cycle=5000`
 * (one soft-error strike; see src/faults/fault_arg.hh for the
 * grammar).
 *
 * `--batch K` simulates up to K compatible sweep points per worker
 * thread as lanes of one shared-workload batch (default: auto);
 * results are byte-identical to `--batch 1`. PRI_LEGACY_BATCH=1
 * forces the serial path regardless.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/hashing.hh"
#include "common/logging.hh"
#include "faults/fault_arg.hh"
#include "sim/journal.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"
#include "workload/profile.hh"

namespace
{

pri::sim::Scheme
parseScheme(const std::string &s)
{
    using pri::sim::Scheme;
    if (s == "base") return Scheme::Base;
    if (s == "er") return Scheme::EarlyRelease;
    if (s == "pri") return Scheme::PriRefcountCkptcount;
    if (s == "pri-lazy") return Scheme::PriRefcountLazy;
    if (s == "pri-ideal") return Scheme::PriIdealCkptcount;
    if (s == "pri-ideal-lazy") return Scheme::PriIdealLazy;
    if (s == "pri-er") return Scheme::PriPlusEr;
    if (s == "inf") return Scheme::InfinitePregs;
    if (s == "vp") return Scheme::VirtualPhysical;
    if (s == "vp-pri") return Scheme::VirtualPhysicalPlusPri;
    pri::fatal("unknown scheme '{}'", s);
}

/**
 * Draw sweep point @p i as a pure function of the seed: benchmark,
 * scheme, and register-file size vary; everything else comes from
 * the base params. Identical across --jobs counts and resumes.
 */
pri::sim::RunParams
drawSweepPoint(const pri::sim::RunParams &base, size_t i)
{
    static const pri::sim::Scheme schemes[] = {
        pri::sim::Scheme::Base,
        pri::sim::Scheme::EarlyRelease,
        pri::sim::Scheme::PriRefcountCkptcount,
        pri::sim::Scheme::PriPlusEr,
    };
    static const unsigned pregs[] = {48, 64, 80, 96};

    const auto &profiles = pri::workload::allProfiles();
    const auto pick = [&](uint64_t salt, size_t n) {
        return pri::hashRange(n, base.seed, i, salt);
    };
    pri::sim::RunParams p = base;
    p.benchmark = profiles[pick(101, profiles.size())].name;
    p.scheme = schemes[pick(102, std::size(schemes))];
    p.physRegs = pregs[pick(103, std::size(pregs))];
    return p;
}

void
printResult(const pri::sim::RunResult &r, unsigned pregs,
            unsigned read_ports, bool verbose)
{
    std::printf("benchmark %s  width %u  scheme %s  pregs %u\n",
                r.benchmark.c_str(), r.width, r.scheme.c_str(),
                pregs);
    std::printf("IPC %.4f  (insts %llu, cycles %llu)\n", r.ipc,
                static_cast<unsigned long long>(r.insts),
                static_cast<unsigned long long>(r.cycles));
    std::printf("occupancy INT %.1f  FP %.1f\n", r.avgIntOccupancy,
                r.avgFpOccupancy);
    std::printf("lifetime  alloc->write %.1f  write->lastread %.1f  "
                "lastread->release %.1f\n",
                r.lifeAllocToWrite, r.lifeWriteToLastRead,
                r.lifeLastReadToRelease);
    std::printf("mispredict/branch %.4f  dl1 miss %.4f  "
                "inlined %.3f\n",
                r.branchMispredictRate, r.dl1MissRate,
                r.inlinedFrac);
    if (read_ports != 0) {
        std::printf("read-ports %u  port-stalls/kinst %.2f  "
                    "inline-bypass %.3f\n",
                    read_ports, r.portStallsPerKInst,
                    r.portInlineBypassFrac);
    }
    if (r.goldenChecked > 0) {
        std::printf("golden-checked %llu commits, no divergence\n",
                    static_cast<unsigned long long>(
                        r.goldenChecked));
    }
    if (verbose)
        std::printf("\n%s", r.report.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    pri::installCrashHandlers();

    pri::sim::RunParams p;
    bool verbose = false;
    size_t sweep = 0;
    unsigned jobs = 1;
    unsigned batch_lanes = 0; // 0 = auto (defaultBatchLanes)
    unsigned retries = 0;
    unsigned backoff_ms = 0;
    std::string journal_path;
    pri::faults::FaultArg fault;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                pri::fatal("missing value for {}", a);
            return argv[++i];
        };
        if (a == "-b") {
            p.benchmark = next();
        } else if (a == "-w") {
            p.width = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "-s") {
            p.scheme = parseScheme(next());
        } else if (a == "-p") {
            p.physRegs = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "-n") {
            p.measureInsts =
                static_cast<uint64_t>(std::atoll(next()));
        } else if (a == "-u") {
            p.warmupInsts =
                static_cast<uint64_t>(std::atoll(next()));
        } else if (a == "-S") {
            p.seed = static_cast<uint64_t>(std::atoll(next()));
        } else if (a == "-v") {
            verbose = true;
        } else if (a == "--read-ports") {
            p.prfReadPorts =
                static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--check-golden") {
            p.checkGolden = true;
        } else if (a == "--sweep") {
            sweep = static_cast<size_t>(std::atoll(next()));
        } else if (a == "--jobs") {
            jobs = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--batch") {
            batch_lanes =
                static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--journal") {
            journal_path = next();
        } else if (a == "--timeout-ms") {
            p.timeoutMs = static_cast<uint64_t>(std::atoll(next()));
        } else if (a == "--cycle-budget") {
            p.cycleBudget =
                static_cast<uint64_t>(std::atoll(next()));
        } else if (a == "--watchdog-cycles") {
            p.watchdogCycles =
                static_cast<uint64_t>(std::atoll(next()));
        } else if (a == "--no-watchdog") {
            p.watchdog = false;
        } else if (a == "--retries") {
            retries = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--backoff-ms") {
            backoff_ms = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--inject-fault") {
            std::string err;
            if (!pri::faults::parseFaultArg(next(), fault, err))
                pri::fatal("{}", err);
            if (fault.kill) {
                pri::fatal("--inject-fault kill@K drills sweepd "
                           "workers; pri_sim has none");
            }
        } else if (a == "-l" || a == "--list") {
            for (const auto &prof : pri::workload::allProfiles())
                std::printf("%s\n", prof.name.c_str());
            return 0;
        } else {
            std::fprintf(stderr,
                         "usage: pri_sim [-b bench] [-w width] "
                         "[-s scheme] [-p pregs] [-n insts] "
                         "[-u warmup] [-S seed] [-v] [-l] "
                         "[--read-ports N] "
                         "[--check-golden] [--sweep N] [--jobs N] "
                         "[--batch K] "
                         "[--journal PATH] [--timeout-ms N] "
                         "[--cycle-budget N] "
                         "[--watchdog-cycles N] [--no-watchdog] "
                         "[--retries N] [--backoff-ms N] "
                         "[--inject-fault KIND[@POINT]]\n");
            return 1;
        }
    }

    p.checkInvariants = true;

    if (sweep == 0) {
        p.injectFault = fault.legacy;
        p.faultSpec = fault.spec;
        // simulate() throws on bad parameters (e.g. an unknown
        // benchmark name) so batch drivers can capture per-run
        // errors; at the CLI the equivalent is a clean fatal.
        const auto r = [&] {
            try {
                return pri::sim::simulate(p);
            } catch (const std::exception &e) {
                pri::fatal("{}", e.what());
            }
        }();
        printResult(r, p.physRegs, p.prfReadPorts, verbose);
        return 0;
    }

    // ---- sweep mode ----
    std::vector<pri::sim::RunParams> batch;
    batch.reserve(sweep);
    for (size_t i = 0; i < sweep; ++i) {
        auto point = drawSweepPoint(p, i);
        if (fault.point < 0 ||
            static_cast<size_t>(fault.point) == i) {
            point.injectFault = fault.legacy;
            point.faultSpec = fault.spec;
        }
        batch.push_back(std::move(point));
    }

    pri::sim::SweepJournal journal(journal_path);
    if (journal.loadedPoints() > 0) {
        std::fprintf(stderr,
                     "journal: resuming, %zu point(s) already "
                     "complete\n",
                     journal.loadedPoints());
    }

    pri::sim::SimulationRunner runner(jobs);
    runner.setBatchLanes(batch_lanes);
    runner.setRetryPolicy({retries + 1, backoff_ms});
    if (journal.enabled())
        runner.setJournal(&journal);
    const auto outcomes = runner.runCaptured(batch);

    // The stdout table is emitted after the whole batch settles, in
    // submission order, from bit-exact (journaled or fresh) results
    // — byte-identical across --jobs counts and across resumes.
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const auto &o = outcomes[i];
        if (o.ok()) {
            std::printf("point %2zu  %-44s  IPC %.4f  cycles %llu\n",
                        i,
                        pri::sim::paramsSummary(batch[i]).c_str(),
                        o.result.ipc,
                        static_cast<unsigned long long>(
                            o.result.cycles));
        } else {
            std::printf("point %2zu  %-44s  %s\n", i,
                        pri::sim::paramsSummary(batch[i]).c_str(),
                        o.stalled ? "STALLED" : "FAILED");
        }
    }

    const std::string failures =
        pri::sim::SimulationRunner::describeFailures(outcomes,
                                                     batch);
    if (!failures.empty()) {
        std::fprintf(stderr, "\n%s", failures.c_str());
        // Full (multi-line) errors, flight-recorder dumps included.
        for (size_t i = 0; i < outcomes.size(); ++i) {
            if (!outcomes[i].ok()) {
                std::fprintf(stderr, "\n%s\n",
                             outcomes[i].error.c_str());
            }
        }
        return 2;
    }
    return 0;
}
