/**
 * @file
 * SimulationRunner: a fixed-size thread pool that fans a batch of
 * independent simulation requests out across worker threads.
 *
 * Every run is share-nothing — it owns its SyntheticProgram, its
 * StatGroup, and its core — so the only coordination the pool needs
 * is an atomic work-stealing index. Results are returned in
 * submission order, which keeps every figure table byte-identical
 * to serial execution; `jobs == 1` degenerates to a plain loop with
 * no threads created, i.e. the exact old behavior.
 */

#ifndef PRI_SIM_RUNNER_HH
#define PRI_SIM_RUNNER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulation.hh"

namespace pri::sim
{

/**
 * Worker count used when the caller does not specify one:
 * std::thread::hardware_concurrency(), minimum 1.
 */
unsigned defaultJobs();

/** Thread-pool executor for batches of independent simulations. */
class SimulationRunner
{
  public:
    /** @param jobs worker threads; 0 means defaultJobs(). */
    explicit SimulationRunner(unsigned jobs = 0);

    unsigned jobs() const { return nJobs; }

    /** One run's outcome: a result, or the error that ended it. */
    struct Outcome
    {
        RunResult result;
        std::string error; ///< empty on success

        bool ok() const { return error.empty(); }
    };

    /**
     * Simulate every element of @p batch and return the results in
     * submission order. A failed run (an exception escaping
     * simulate()) is reported via fatal() after all workers have
     * drained, so no thread is ever abandoned.
     */
    std::vector<RunResult> run(const std::vector<RunParams> &batch) const;

    /**
     * Like run(), but per-run exceptions are captured into the
     * matching Outcome instead of terminating the program.
     */
    std::vector<Outcome>
    runCaptured(const std::vector<RunParams> &batch) const;

    /**
     * Generic indexed parallel-for for harnesses whose sweep points
     * are not expressible as RunParams (custom narrow widths,
     * scheduler sizes, workload profiles, ...). Calls @p fn for
     * every index in [0, n), distributing indices across the pool;
     * @p fn must only touch index-owned state. Blocks until all
     * indices are done; the first captured exception (if any) is
     * rethrown afterwards.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn) const;

  private:
    unsigned nJobs;
};

} // namespace pri::sim

#endif // PRI_SIM_RUNNER_HH
