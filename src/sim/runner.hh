/**
 * @file
 * SimulationRunner: a fixed-size thread pool that fans a batch of
 * independent simulation requests out across worker threads.
 *
 * Every run is share-nothing — it owns its SyntheticProgram, its
 * StatGroup, and its core — so the only coordination the pool needs
 * is an atomic work-stealing index. Results are returned in
 * submission order, which keeps every figure table byte-identical
 * to serial execution; `jobs == 1` degenerates to a plain loop with
 * no threads created, i.e. the exact old behavior.
 *
 * The runner is fault-tolerant: a run that panics, fatals, stalls
 * (core::ProgressStallError from the forward-progress watchdog), or
 * throws is captured into its own Outcome — with the run index and
 * a one-line parameter summary prefixed to the error — while every
 * sibling point completes normally. A RetryPolicy re-attempts
 * failed runs with linear backoff, and an optional SweepJournal
 * skips points a previous (possibly killed) process already
 * finished and persists each new result as it lands.
 */

#ifndef PRI_SIM_RUNNER_HH
#define PRI_SIM_RUNNER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulation.hh"

namespace pri::sim
{

class SweepJournal;

/**
 * Worker count used when the caller does not specify one:
 * std::thread::hardware_concurrency(), minimum 1.
 */
unsigned defaultJobs();

/** Re-attempt schedule for failed runs. */
struct RetryPolicy
{
    /** Total tries per point (1 = no retries). */
    unsigned maxAttempts = 1;
    /** Sleep before attempt k (1-based retry) is k*backoffMs. */
    unsigned backoffMs = 0;
};

/** Thread-pool executor for batches of independent simulations. */
class SimulationRunner
{
  public:
    /** @param jobs worker threads; 0 means defaultJobs(). */
    explicit SimulationRunner(unsigned jobs = 0);

    unsigned jobs() const { return nJobs; }

    /** Re-attempt failed runs per @p policy (default: one try). */
    void setRetryPolicy(RetryPolicy policy) { retry = policy; }

    /**
     * Simulate up to @p lanes compatible sweep points per worker
     * thread as one SoA batch off a shared workload replay
     * (sim/batch/sweep_batch.hh). 1 (the default) disables
     * batching — every point runs the serial path; 0 selects
     * defaultBatchLanes(). Results, reports, errors, and journal
     * contents are byte-identical at any lane count. The
     * PRI_LEGACY_BATCH=1 environment variable forces 1 process-wide
     * (whole-binary A/B escape hatch).
     */
    void setBatchLanes(unsigned lanes) { nBatchLanes = lanes; }

    /** Configured lane count (before env override / auto). */
    unsigned batchLanes() const { return nBatchLanes; }

    /**
     * Consult @p j before simulating (hits are returned without
     * re-running) and persist every fresh success. Not owned; must
     * outlive run()/runCaptured(). nullptr disables.
     */
    void setJournal(SweepJournal *j) { journal = j; }

    /** One run's outcome: a result, or the error that ended it. */
    struct Outcome
    {
        RunResult result;
        std::string error;       ///< empty on success
        /** Failed via the forward-progress watchdog or a budget
         *  (core::ProgressStallError) rather than a plain error. */
        bool stalled = false;
        /** Simulation attempts consumed (0 for journal hits). */
        unsigned attempts = 0;
        /** Result came from the sweep journal; not re-simulated. */
        bool fromJournal = false;

        bool ok() const { return error.empty(); }
    };

    /**
     * Simulate every element of @p batch and return the results in
     * submission order. A failed run (an exception escaping
     * simulate()) is reported via fatal() after all workers have
     * drained, so no thread is ever abandoned; the message names
     * the run index and its parameters.
     */
    std::vector<RunResult> run(const std::vector<RunParams> &batch) const;

    /**
     * Like run(), but per-run failures — exceptions, panics,
     * fatals, watchdog stalls — are captured into the matching
     * Outcome instead of terminating the program. Sibling runs are
     * unaffected; their results are bit-identical to a fault-free
     * batch.
     */
    std::vector<Outcome>
    runCaptured(const std::vector<RunParams> &batch) const;

    /**
     * Per-point error table for the failed entries of @p outcomes
     * (one line per failure: index, parameter summary, first line
     * of the error). Empty string when every outcome is ok.
     */
    static std::string
    describeFailures(const std::vector<Outcome> &outcomes,
                     const std::vector<RunParams> &batch);

    /**
     * Generic indexed parallel-for for harnesses whose sweep points
     * are not expressible as RunParams (custom narrow widths,
     * scheduler sizes, workload profiles, ...). Calls @p fn for
     * every index in [0, n), distributing indices across the pool;
     * @p fn must only touch index-owned state. Blocks until all
     * indices are done.
     *
     * Worker threads run @p fn in error-capture mode, so a panic()
     * or fatal() inside a worker becomes an exception instead of
     * tearing the process down under a live pool; once every worker
     * has drained, the first captured error is re-raised on the
     * calling thread (fatal errors via fatal(), others rethrown).
     * With one worker, @p fn runs inline on the calling thread in
     * whatever error mode the caller already has.
     */
    void forEach(size_t n, const std::function<void(size_t)> &fn) const;

  private:
    Outcome runOne(size_t index, const RunParams &params) const;

    /** Attempt loop shared by runOne and the batched path: run
     *  attempts [first_attempt, maxAttempts) of @p params,
     *  accumulating into @p out; returns on first success (also
     *  journals it under @p key). On return, out.error is raw
     *  (unprefixed) when all attempts failed. */
    void runRetries(const RunParams &params, uint64_t key,
                    unsigned first_attempt, Outcome &out) const;

    /** Lane count after the PRI_LEGACY_BATCH override and auto
     *  resolution. */
    unsigned effectiveBatchLanes() const;

    /** Batched runCaptured body: journal prefilter, batch
     *  formation, group execution. */
    void runBatched(const std::vector<RunParams> &batch,
                    std::vector<Outcome> &out) const;

    unsigned nJobs;
    unsigned nBatchLanes = 1;
    RetryPolicy retry;
    SweepJournal *journal = nullptr;
};

} // namespace pri::sim

#endif // PRI_SIM_RUNNER_HH
