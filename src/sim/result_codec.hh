/**
 * @file
 * The audited on-disk / on-wire serialization of sweep results and
 * sweep requests — ONE implementation shared by every cache that is
 * keyed by paramsHash().
 *
 * Two record kinds, both single-line, tab-separated, ending in a
 * "." sentinel so a torn write (SIGKILL mid-append, partial rename)
 * fails validation and is simply skipped by loaders:
 *
 *  - Result lines (tag PRIJ3): one completed RunResult keyed by its
 *    paramsHash. Doubles are written in hexfloat (%a) so they
 *    round-trip bit-exactly; the stats report rides along with
 *    newlines/tabs escaped. Used by the sweep journal
 *    (src/sim/journal.cc) and the pri_sweepd content-addressed
 *    result store (src/sweepd/store.cc). Because both caches parse
 *    and format through these functions, they can never skew: a
 *    record written by one is bit-identical when served by the
 *    other.
 *
 *  - Params lines (tag PRIP2): one RunParams request, carrying
 *    EXACTLY the fields paramsHash() digests — no more, no fewer.
 *    This is the pri_sweepd submit format: a daemon that re-derives
 *    paramsHash from a parsed params line is guaranteed to compute
 *    the key the client used, because fields outside the audited
 *    list (attempt, watchdog shape, timeoutMs, observation knobs)
 *    are not even representable on the wire.
 *
 * Changing either field list requires bumping the tag — that is the
 * version stamp the stores key their invalidation on — and updating
 * the pinned lists below (tests/test_sweepd.cpp asserts them).
 */

#ifndef PRI_SIM_RESULT_CODEC_HH
#define PRI_SIM_RESULT_CODEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.hh"

namespace pri::sim::codec
{

/** Result-line format tag; bump when the RunResult field list
 *  changes (invalidates journals and sweepd stores cleanly). */
constexpr const char *kResultTag = "PRIJ3";

/** Result-line fields: tag, key, benchmark, scheme, width, 4 u64,
 *  13 doubles, archSig, report, "." sentinel. */
constexpr size_t kResultFields = 25;

/** The pinned PRIJ3 field list, in line order. A new RunResult
 *  field means: append here, bump kResultTag, extend the
 *  format/parse pair — the static_assert and the field-list unit
 *  test force all four to move together. */
constexpr const char *kResultFieldNames[] = {
    "tag", "paramsHash", "benchmark", "scheme", "width",
    "cycles", "insts", "committedTotal", "goldenChecked",
    "ipc", "avgIntOccupancy", "avgFpOccupancy",
    "lifeAllocToWrite", "lifeWriteToLastRead",
    "lifeLastReadToRelease", "branchMispredictRate", "dl1MissRate",
    "priEarlyFrees", "erEarlyFrees", "inlinedFrac",
    "portStallsPerKInst", "portInlineBypassFrac", "archSig",
    "report", "sentinel",
};
static_assert(sizeof(kResultFieldNames) / sizeof(const char *) ==
                  kResultFields,
              "PRIJ3 field list and field count must move together");

/** Params-line format tag; bump when the paramsHash() audited
 *  field list changes. */
constexpr const char *kParamsTag = "PRIP2";

/** Params-line fields: tag, the 22 hashed RunParams fields, "." */
constexpr size_t kParamsFields = 24;

/** The pinned PRIP2 field list — exactly paramsHash()'s digest
 *  order (see simulation.cc). */
constexpr const char *kParamsFieldNames[] = {
    "tag", "benchmark", "width", "scheme", "physRegs",
    "warmupInsts", "measureInsts", "seed", "checkGolden",
    "schedSizeOverride", "narrowBitsOverride", "injectFault",
    "injectFreeWithoutInline", "prfReadPorts", "pooledCheckpoints",
    "eventWakeup", "cycleBudget", "tracedFrontEnd", "faultSite",
    "faultMutation", "faultTrigger", "faultTriggerArg", "faultSeed",
    "sentinel",
};
static_assert(sizeof(kParamsFieldNames) / sizeof(const char *) ==
                  kParamsFields,
              "PRIP2 field list and field count must move together");

/** Escape tabs/newlines/backslashes so a report is one field. */
std::string escape(const std::string &s);
std::string unescape(const std::string &s);

/** Split @p line on tabs (no unescaping; fields are raw). */
std::vector<std::string> splitTabs(const std::string &line);

/** One PRIJ3 line (newline-terminated) for @p key / @p r. */
std::string formatResultLine(uint64_t key, const RunResult &r);

/**
 * Parse one PRIJ3 line. Returns false (leaving @p key / @p r
 * untouched garbage) for anything malformed — most importantly the
 * torn final line of a file whose writer was SIGKILLed mid-write.
 */
bool parseResultLine(const std::string &line, uint64_t &key,
                     RunResult &r);

/** One PRIP2 line (newline-terminated) for @p p: the audited
 *  (hash-visible) fields only. */
std::string formatParamsLine(const RunParams &p);

/**
 * Parse one PRIP2 line into @p p (every non-audited field keeps the
 * value @p p arrived with, so callers can pre-load machine-local
 * policy like timeoutMs). Returns false on any malformed input.
 */
bool parseParamsLine(const std::string &line, RunParams &p);

} // namespace pri::sim::codec

#endif // PRI_SIM_RESULT_CODEC_HH
