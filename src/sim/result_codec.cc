#include "result_codec.hh"

#include <cstdio>
#include <cstdlib>

namespace pri::sim::codec
{

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
unescape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 == s.size()) {
            out += s[i];
            continue;
        }
        switch (s[++i]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: out += s[i];
        }
    }
    return out;
}

std::vector<std::string>
splitTabs(const std::string &line)
{
    // Tolerate one trailing newline so both stripped journal/store
    // lines and raw frame bodies (which keep the '\n' the formatter
    // appended) parse identically.
    const size_t end = !line.empty() && line.back() == '\n'
        ? line.size() - 1
        : line.size();
    std::vector<std::string> fields;
    size_t start = 0;
    while (true) {
        const size_t tab = line.find('\t', start);
        if (tab == std::string::npos || tab >= end) {
            fields.push_back(line.substr(start, end - start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

namespace
{

bool
parseU64(const std::string &s, uint64_t &out, int base = 10)
{
    char *e = nullptr;
    out = std::strtoull(s.c_str(), &e, base);
    return e != s.c_str() && *e == '\0';
}

// Doubles are written with %a (hexfloat), which strtod parses back
// to the exact same bits — resumed/served reports stay identical.
bool
parseF64(const std::string &s, double &out)
{
    char *e = nullptr;
    out = std::strtod(s.c_str(), &e);
    return e != s.c_str() && *e == '\0';
}

/** Tab-separated line builder with the shared number formats. */
class LineBuilder
{
  public:
    explicit LineBuilder(const char *tag) : line(tag) {}

    void
    add(const std::string &s)
    {
        line += '\t';
        line += s;
    }

    void
    addU64(uint64_t v)
    {
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        add(buf);
    }

    void
    addF64(double v)
    {
        std::snprintf(buf, sizeof(buf), "%a", v);
        add(buf);
    }

    void
    addHex64(uint64_t v)
    {
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(v));
        add(buf);
    }

    std::string
    finish()
    {
        add(".");
        line += '\n';
        return std::move(line);
    }

  private:
    std::string line;
    char buf[64];
};

} // namespace

std::string
formatResultLine(uint64_t key, const RunResult &r)
{
    LineBuilder b(kResultTag);
    b.addHex64(key);
    b.add(r.benchmark);
    b.add(r.scheme);
    b.addU64(r.width);
    b.addU64(r.cycles);
    b.addU64(r.insts);
    b.addU64(r.committedTotal);
    b.addU64(r.goldenChecked);
    b.addF64(r.ipc);
    b.addF64(r.avgIntOccupancy);
    b.addF64(r.avgFpOccupancy);
    b.addF64(r.lifeAllocToWrite);
    b.addF64(r.lifeWriteToLastRead);
    b.addF64(r.lifeLastReadToRelease);
    b.addF64(r.branchMispredictRate);
    b.addF64(r.dl1MissRate);
    b.addF64(r.priEarlyFrees);
    b.addF64(r.erEarlyFrees);
    b.addF64(r.inlinedFrac);
    b.addF64(r.portStallsPerKInst);
    b.addF64(r.portInlineBypassFrac);
    b.addHex64(r.archSig);
    b.add(escape(r.report));
    return b.finish();
}

bool
parseResultLine(const std::string &line, uint64_t &key, RunResult &r)
{
    const auto f = splitTabs(line);
    if (f.size() != kResultFields || f[0] != kResultTag ||
        f[kResultFields - 1] != ".") {
        return false;
    }

    if (!parseU64(f[1], key, 16))
        return false;

    r.benchmark = f[2];
    r.scheme = f[3];

    uint64_t width = 0;
    bool ok = parseU64(f[4], width);
    r.width = static_cast<unsigned>(width);
    ok = ok && parseU64(f[5], r.cycles) && parseU64(f[6], r.insts);
    ok = ok && parseU64(f[7], r.committedTotal);
    ok = ok && parseU64(f[8], r.goldenChecked);
    ok = ok && parseF64(f[9], r.ipc);
    ok = ok && parseF64(f[10], r.avgIntOccupancy);
    ok = ok && parseF64(f[11], r.avgFpOccupancy);
    ok = ok && parseF64(f[12], r.lifeAllocToWrite);
    ok = ok && parseF64(f[13], r.lifeWriteToLastRead);
    ok = ok && parseF64(f[14], r.lifeLastReadToRelease);
    ok = ok && parseF64(f[15], r.branchMispredictRate);
    ok = ok && parseF64(f[16], r.dl1MissRate);
    ok = ok && parseF64(f[17], r.priEarlyFrees);
    ok = ok && parseF64(f[18], r.erEarlyFrees);
    ok = ok && parseF64(f[19], r.inlinedFrac);
    ok = ok && parseF64(f[20], r.portStallsPerKInst);
    ok = ok && parseF64(f[21], r.portInlineBypassFrac);
    ok = ok && parseU64(f[22], r.archSig, 16);
    r.report = unescape(f[23]);
    return ok;
}

std::string
formatParamsLine(const RunParams &p)
{
    LineBuilder b(kParamsTag);
    b.add(escape(p.benchmark));
    b.addU64(p.width);
    b.addU64(static_cast<uint64_t>(p.scheme));
    b.addU64(p.physRegs);
    b.addU64(p.warmupInsts);
    b.addU64(p.measureInsts);
    b.addU64(p.seed);
    b.addU64(p.checkGolden ? 1 : 0);
    b.addU64(p.schedSizeOverride);
    b.addU64(p.narrowBitsOverride);
    b.addU64(static_cast<uint64_t>(p.injectFault));
    b.addU64(p.injectFreeWithoutInline ? 1 : 0);
    b.addU64(p.prfReadPorts);
    b.addU64(p.pooledCheckpoints ? 1 : 0);
    b.addU64(p.eventWakeup ? 1 : 0);
    b.addU64(p.cycleBudget);
    b.addU64(p.tracedFrontEnd ? 1 : 0);
    b.addU64(static_cast<uint64_t>(p.faultSpec.site));
    b.addU64(static_cast<uint64_t>(p.faultSpec.mutation));
    b.addU64(static_cast<uint64_t>(p.faultSpec.trigger));
    b.addU64(p.faultSpec.triggerArg);
    b.addU64(p.faultSpec.seed);
    return b.finish();
}

bool
parseParamsLine(const std::string &line, RunParams &p)
{
    const auto f = splitTabs(line);
    if (f.size() != kParamsFields || f[0] != kParamsTag ||
        f[kParamsFields - 1] != ".") {
        return false;
    }

    p.benchmark = unescape(f[1]);

    uint64_t v = 0;
    bool ok = parseU64(f[2], v);
    p.width = static_cast<unsigned>(v);
    ok = ok && parseU64(f[3], v);
    p.scheme = static_cast<Scheme>(v);
    ok = ok && parseU64(f[4], v);
    p.physRegs = static_cast<unsigned>(v);
    ok = ok && parseU64(f[5], p.warmupInsts);
    ok = ok && parseU64(f[6], p.measureInsts);
    ok = ok && parseU64(f[7], p.seed);
    ok = ok && parseU64(f[8], v);
    p.checkGolden = v != 0;
    ok = ok && parseU64(f[9], v);
    p.schedSizeOverride = static_cast<unsigned>(v);
    ok = ok && parseU64(f[10], v);
    p.narrowBitsOverride = static_cast<unsigned>(v);
    ok = ok && parseU64(f[11], v);
    p.injectFault = static_cast<core::InjectedFault>(v);
    ok = ok && parseU64(f[12], v);
    p.injectFreeWithoutInline = v != 0;
    ok = ok && parseU64(f[13], v);
    p.prfReadPorts = static_cast<unsigned>(v);
    ok = ok && parseU64(f[14], v);
    p.pooledCheckpoints = v != 0;
    ok = ok && parseU64(f[15], v);
    p.eventWakeup = v != 0;
    ok = ok && parseU64(f[16], p.cycleBudget);
    ok = ok && parseU64(f[17], v);
    p.tracedFrontEnd = v != 0;
    ok = ok && parseU64(f[18], v);
    p.faultSpec.site = static_cast<faults::FaultSite>(v);
    ok = ok && parseU64(f[19], v);
    p.faultSpec.mutation = static_cast<faults::FaultMutation>(v);
    ok = ok && parseU64(f[20], v);
    p.faultSpec.trigger = static_cast<faults::FaultTrigger>(v);
    ok = ok && parseU64(f[21], p.faultSpec.triggerArg);
    ok = ok && parseU64(f[22], p.faultSpec.seed);
    return ok;
}

} // namespace pri::sim::codec
