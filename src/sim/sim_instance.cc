#include "sim_instance.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "workload/program.hh"

namespace pri::sim
{

core::CoreConfig
coreConfigFor(const RunParams &params)
{
    const unsigned narrow = params.narrowBitsOverride
        ? params.narrowBitsOverride
        : core::CoreConfig::narrowBitsForWidth(params.width);
    auto rn_cfg =
        makeRenameConfig(params.scheme, params.physRegs, narrow);
    rn_cfg.injectFreeWithoutInline = params.injectFreeWithoutInline;
    core::CoreConfig cfg = params.width >= 8
        ? core::CoreConfig::eightWide(rn_cfg)
        : core::CoreConfig::fourWide(rn_cfg);
    cfg.pooledCheckpoints = params.pooledCheckpoints;
    if (std::getenv("PRI_LEGACY_CKPTS") != nullptr)
        cfg.pooledCheckpoints = false;
    cfg.eventWakeup = params.eventWakeup;
    if (std::getenv("PRI_LEGACY_WAKEUP") != nullptr)
        cfg.eventWakeup = false;
    cfg.tracedFrontEnd = params.tracedFrontEnd;
    if (std::getenv("PRI_LEGACY_WALKER") != nullptr)
        cfg.tracedFrontEnd = false;
    if (params.schedSizeOverride)
        cfg.schedSize = params.schedSizeOverride;
    cfg.prfReadPorts = params.prfReadPorts;
    cfg.injectFault = params.injectFault;
    cfg.faultSpec = params.faultSpec;

    // Watchdog / budget plumbing. PRI_WATCHDOG_CYCLES overrides the
    // stall threshold process-wide; 0 disables detection.
    cfg.watchdogEnabled = params.watchdog;
    if (params.watchdogCycles != 0)
        cfg.watchdogCycles = params.watchdogCycles;
    if (const char *wd = std::getenv("PRI_WATCHDOG_CYCLES")) {
        const uint64_t v = std::strtoull(wd, nullptr, 10);
        cfg.watchdogEnabled = v != 0;
        if (v != 0)
            cfg.watchdogCycles = v;
    }
    cfg.cycleBudget = params.cycleBudget;
    return cfg;
}

SimInstance::SimInstance(const RunParams &params,
                         const SharedWorkload *shared,
                         LaneArena *arena)
    : params(params)
{
    if (shared != nullptr) {
        program = shared->program;
    } else {
        const auto &profile =
            workload::profileByName(params.benchmark);
        program = std::make_shared<const workload::SyntheticProgram>(
            profile, params.seed);
    }

    const core::CoreConfig cfg = coreConfigFor(params);

    {
        // Hot per-lane core state lands in this lane's arena slabs;
        // containers built later (the cold checker, stat strings)
        // stay on the heap.
        ArenaScope scope(arena);
        cpu = std::make_unique<core::OutOfOrderCore>(
            cfg, *program, stats,
            shared != nullptr ? shared->traces : nullptr,
            shared != nullptr ? shared->tape : nullptr);
    }
    cpu->setWallClockBudget(params.timeoutMs);

    if (params.checkGolden ||
        std::getenv("PRI_CHECK_GOLDEN") != nullptr) {
        golden::DiffChecker::Options opt;
        opt.archCheckInterval = params.goldenAuditInterval;
        checker =
            std::make_unique<golden::DiffChecker>(*program, opt);
        auto *core_ptr = cpu.get();
        checker->setAuditHook(
            [core_ptr] { core_ptr->checkInvariants(); });
        cpu->setCommitObserver(checker.get());
    }
}

bool
SimInstance::step(uint64_t quantum)
{
    if (phase == Phase::Warmup) {
        const uint64_t committed = cpu->committedInsts();
        const uint64_t remain = params.warmupInsts > committed
            ? params.warmupInsts - committed
            : 0;
        cpu->run(std::min(quantum, remain));
        if (cpu->committedInsts() < params.warmupInsts)
            return false;

        cpu->beginMeasurement();
        c0 = cpu->cycles();
        i0 = cpu->committedInsts();
        // Re-zero event counters so rates reflect the window only.
        mp0 = stats.scalarValue("core.branchMispredicts");
        br0 = stats.scalarValue("core.committedBranches");
        pf0 = stats.scalarValue("pri.earlyFrees");
        ef0 = stats.scalarValue("er.earlyFrees");
        nw0 = stats.scalarValue("pri.narrowResultsInt") +
            stats.scalarValue("pri.narrowResultsFp");
        da0 = stats.scalarValue("rename.destAllocs");
        ps0 = stats.scalarValue("core.prfPortStallOps");
        pr0 = stats.scalarValue("core.prfPortReads");
        pb0 = stats.scalarValue("core.prfPortInlineBypass");
        measureTarget = i0 + params.measureInsts;
        phase = Phase::Measure;
        if (quantum != kNoLimit)
            return false;
    }

    if (phase == Phase::Measure) {
        const uint64_t committed = cpu->committedInsts();
        const uint64_t remain = measureTarget > committed
            ? measureTarget - committed
            : 0;
        cpu->run(std::min(quantum, remain));
        if (cpu->committedInsts() < measureTarget)
            return false;

        if (params.checkInvariants)
            cpu->checkInvariants();
        if (checker)
            checker->finishRun();
        phase = Phase::Done;
    }
    return true;
}

RunResult
SimInstance::finish()
{
    PRI_ASSERT(phase == Phase::Done,
               "finish() before the run completed");

    RunResult r;
    r.benchmark = params.benchmark;
    r.scheme = schemeName(params.scheme);
    r.width = params.width;
    r.cycles = cpu->cycles() - c0;
    r.insts = cpu->committedInsts() - i0;
    r.committedTotal = cpu->committedInsts();
    r.goldenChecked = checker ? checker->checkedCommits() : 0;
    // IPC from the same measurement-window deltas as cycles/insts,
    // so the three fields are always mutually consistent (a run
    // whose window deltas were taken here must never mix in whole-
    // run counts — speedups in Fig 10/12 divide these IPCs).
    r.ipc = r.cycles == 0
        ? 0.0
        : static_cast<double>(r.insts) /
            static_cast<double>(r.cycles);
    r.avgIntOccupancy = cpu->avgIntOccupancy();
    r.avgFpOccupancy = cpu->avgFpOccupancy();

    r.lifeAllocToWrite =
        stats.average("lifetime.allocToWrite").mean();
    r.lifeWriteToLastRead =
        stats.average("lifetime.writeToLastRead").mean();
    r.lifeLastReadToRelease =
        stats.average("lifetime.lastReadToRelease").mean();

    const double branches =
        stats.scalarValue("core.committedBranches") - br0;
    r.branchMispredictRate = branches > 0
        ? (stats.scalarValue("core.branchMispredicts") - mp0) /
            branches
        : 0.0;

    const double dl1_total = static_cast<double>(
        cpu->memory().dl1().hits() + cpu->memory().dl1().misses());
    r.dl1MissRate = dl1_total > 0
        ? cpu->memory().dl1().misses() / dl1_total
        : 0.0;

    const double insts_k = static_cast<double>(r.insts) / 1000.0;
    r.priEarlyFrees = insts_k > 0
        ? (stats.scalarValue("pri.earlyFrees") - pf0) / insts_k
        : 0.0;
    r.erEarlyFrees = insts_k > 0
        ? (stats.scalarValue("er.earlyFrees") - ef0) / insts_k
        : 0.0;

    const double dests =
        stats.scalarValue("rename.destAllocs") - da0;
    const double narrow_n =
        stats.scalarValue("pri.narrowResultsInt") +
        stats.scalarValue("pri.narrowResultsFp") - nw0;
    r.inlinedFrac = dests > 0 ? narrow_n / dests : 0.0;

    r.portStallsPerKInst = insts_k > 0
        ? (stats.scalarValue("core.prfPortStallOps") - ps0) / insts_k
        : 0.0;
    const double port_reads =
        stats.scalarValue("core.prfPortReads") - pr0;
    const double port_bypass =
        stats.scalarValue("core.prfPortInlineBypass") - pb0;
    r.portInlineBypassFrac = port_reads + port_bypass > 0
        ? port_bypass / (port_reads + port_bypass)
        : 0.0;

    r.archSig = cpu->archSignature();
    r.report = stats.report("  ");
    return r;
}

} // namespace pri::sim
