/**
 * @file
 * SimInstance: one simulation request as a steppable object.
 *
 * simulate() is SimInstance run to completion in one go; a
 * SweepBatch (DESIGN.md §14) holds K of them — the lanes — and
 * round-robins step() across them in committed-instruction quanta
 * off one shared workload (program + compiled traces + ReplayTape).
 * The phase machine (Warmup → Measure → Done) reproduces exactly
 * the operation sequence of the old monolithic simulate() body:
 * cpu.run() is slice-invariant (its commit target, watchdog audit
 * points, and wall-clock deadline are all absolute), so splitting
 * the two big run() calls into quanta leaves every cycle — and
 * therefore every stat and the full report — byte-identical.
 */

#ifndef PRI_SIM_SIM_INSTANCE_HH
#define PRI_SIM_SIM_INSTANCE_HH

#include <cstdint>
#include <memory>

#include "common/arena.hh"
#include "golden/diff_checker.hh"
#include "sim/simulation.hh"
#include "workload/replay_tape.hh"
#include "workload/trace/trace_cache.hh"

namespace pri::sim
{

/**
 * Workload state shared read-only by every lane of a batch: the
 * synthetic program, its compiled micro-traces, and the pre-built
 * committed-path tape. All lanes of a batch have the same
 * (benchmark, seed), so one of each serves the whole batch.
 */
struct SharedWorkload
{
    std::shared_ptr<const workload::SyntheticProgram> program;
    std::shared_ptr<const workload::trace::ProgramTraces> traces;
    /** Null when trace replay is off (legacy walker). */
    const workload::ReplayTape *tape = nullptr;
};

/** One simulation, steppable in committed-instruction quanta. */
class SimInstance
{
  public:
    /**
     * Build the machine for @p params. @p shared, when non-null,
     * supplies the workload (batched lanes); null builds a private
     * program/traces, which is the serial simulate() path. @p arena,
     * when non-null, becomes the ambient arena while the core is
     * constructed, packing its hot per-lane state (ROB rings,
     * free-list stacks, scheduler bitmaps, ...) into that lane's
     * slabs. The arena must outlive the instance.
     *
     * Does NOT apply the injectTransientFails seam — callers that
     * retry (simulate(), the batch path) throw it themselves before
     * constructing the machine.
     */
    SimInstance(const RunParams &params,
                const SharedWorkload *shared = nullptr,
                LaneArena *arena = nullptr);

    SimInstance(const SimInstance &) = delete;
    SimInstance &operator=(const SimInstance &) = delete;

    /**
     * Advance up to @p quantum committed instructions (kNoLimit =
     * run the current phase to completion). Returns true once the
     * run is complete; finish() may then be called.
     */
    bool step(uint64_t quantum);

    bool done() const { return phase == Phase::Done; }

    /** Assemble the RunResult (legal once done()). */
    RunResult finish();

    /** Params this instance was built for (batch bookkeeping). */
    const RunParams &runParams() const { return params; }

    static constexpr uint64_t kNoLimit = ~uint64_t{0};

  private:
    enum class Phase : uint8_t
    {
        Warmup,
        Measure,
        Done,
    };

    RunParams params;

    /** Owned when built serially, aliased when batch-shared. */
    std::shared_ptr<const workload::SyntheticProgram> program;

    StatGroup stats;
    std::unique_ptr<core::OutOfOrderCore> cpu;
    std::unique_ptr<golden::DiffChecker> checker;

    Phase phase = Phase::Warmup;
    uint64_t measureTarget = 0; ///< absolute committed-inst target

    // Measurement-window baselines, captured at beginMeasurement.
    uint64_t c0 = 0;
    uint64_t i0 = 0;
    double mp0 = 0, br0 = 0, pf0 = 0, ef0 = 0, nw0 = 0, da0 = 0;
    // PRF read-port counters (stay 0 when ports are unlimited; the
    // stats are only registered for finite budgets and
    // scalarValue() reads absent names as 0).
    double ps0 = 0, pr0 = 0, pb0 = 0;
};

/** The env-override-resolved core config simulate() builds (also
 *  used by batch formation to decide tape eligibility). */
core::CoreConfig coreConfigFor(const RunParams &params);

} // namespace pri::sim

#endif // PRI_SIM_SIM_INSTANCE_HH
