/**
 * @file
 * SweepJournal: a crash-tolerant manifest of completed simulation
 * points, keyed by paramsHash().
 *
 * Every successfully simulated RunParams is appended to the journal
 * file as one self-contained PRIJ3 line (sim/result_codec.hh — the
 * same audited serializer the pri_sweepd result store uses, so the
 * two caches can never skew: all RunResult fields, doubles in
 * hexfloat so they round-trip bit-exactly, the stats report with
 * newlines/tabs escaped) and flushed immediately. On construction
 * the journal loads every well-formed line of an existing file, so
 * a sweep that died — SIGKILL, OOM, power, a crashed sibling — can
 * be rerun with the same flags and only the missing points
 * simulate; the finished report is byte-identical to an
 * uninterrupted run because journaled results are bit-exact.
 *
 * A line torn mid-write by the crash simply fails validation (field
 * count + trailing sentinel) and is skipped: that point reruns.
 * Appends take a mutex (workers finish out of order) and the file
 * is append-only, so two processes must not share one journal.
 *
 * Test hook: PRI_JOURNAL_KILL_AFTER=<k> SIGKILLs the process right
 * after the k-th append, giving CI a deterministic "sweep died
 * midway" to resume from.
 */

#ifndef PRI_SIM_JOURNAL_HH
#define PRI_SIM_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "sim/simulation.hh"

namespace pri::sim
{

/** Append-only manifest of completed sweep points (see @file). */
class SweepJournal
{
  public:
    /**
     * Open (creating if absent) the journal at @p path and load
     * every valid completed point. Empty path = disabled journal
     * (lookup always misses, record is a no-op).
     */
    explicit SweepJournal(std::string path);
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    bool enabled() const { return !filePath.empty(); }

    /** Result for @p key from a previous (or this) run, if any. */
    bool lookup(uint64_t key, RunResult &out) const;

    /** Persist one completed point (thread-safe, flushed). */
    void record(uint64_t key, const RunResult &result);

    /** Points loaded from the pre-existing file. */
    size_t loadedPoints() const { return loaded; }

    /** Points appended by this process. */
    size_t
    appendedPoints() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return appended;
    }

  private:
    void load();

    std::string filePath;
    std::FILE *file = nullptr;
    mutable std::mutex mu;
    std::map<uint64_t, RunResult> entries;
    size_t loaded = 0;
    size_t appended = 0;
    /** PRI_JOURNAL_KILL_AFTER (0 = off): see @file. */
    size_t killAfter = 0;
};

} // namespace pri::sim

#endif // PRI_SIM_JOURNAL_HH
