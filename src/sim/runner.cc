#include "runner.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "common/logging.hh"

namespace pri::sim
{

unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

SimulationRunner::SimulationRunner(unsigned jobs)
    : nJobs(jobs == 0 ? defaultJobs() : jobs)
{
}

void
SimulationRunner::forEach(size_t n,
                          const std::function<void(size_t)> &fn) const
{
    if (n == 0)
        return;

    const unsigned workers = static_cast<unsigned>(
        std::min<size_t>(nJobs, n));
    if (workers <= 1) {
        // Exact serial semantics: no threads, no reordering.
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::vector<std::exception_ptr> errors(workers);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            try {
                for (size_t i = next.fetch_add(1); i < n;
                     i = next.fetch_add(1)) {
                    fn(i);
                }
            } catch (...) {
                // A worker that throws stops pulling work; the
                // remaining indices drain through its siblings.
                errors[w] = std::current_exception();
            }
        });
    }
    for (auto &t : pool)
        t.join();
    for (auto &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

std::vector<SimulationRunner::Outcome>
SimulationRunner::runCaptured(const std::vector<RunParams> &batch) const
{
    std::vector<Outcome> out(batch.size());
    forEach(batch.size(), [&](size_t i) {
        try {
            out[i].result = simulate(batch[i]);
        } catch (const std::exception &e) {
            out[i].error = e.what();
        } catch (...) {
            out[i].error = "unknown exception";
        }
    });
    return out;
}

std::vector<RunResult>
SimulationRunner::run(const std::vector<RunParams> &batch) const
{
    auto outcomes = runCaptured(batch);
    std::vector<RunResult> results;
    results.reserve(outcomes.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].ok()) {
            fatal("simulation {} ({} / {} / width {}) failed: {}",
                  i, batch[i].benchmark,
                  schemeName(batch[i].scheme), batch[i].width,
                  outcomes[i].error);
        }
        results.push_back(std::move(outcomes[i].result));
    }
    return results;
}

} // namespace pri::sim
