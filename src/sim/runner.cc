#include "runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <thread>

#include "common/logging.hh"
#include "sim/batch/sweep_batch.hh"
#include "sim/journal.hh"

namespace pri::sim
{

unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

SimulationRunner::SimulationRunner(unsigned jobs)
    : nJobs(jobs == 0 ? defaultJobs() : jobs)
{
}

void
SimulationRunner::forEach(size_t n,
                          const std::function<void(size_t)> &fn) const
{
    if (n == 0)
        return;

    const unsigned workers = static_cast<unsigned>(
        std::min<size_t>(nJobs, n));
    if (workers <= 1) {
        // Exact serial semantics: no threads, no reordering, no
        // capture mode imposed on the caller's thread.
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::vector<std::exception_ptr> errors(workers);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            // Capture mode turns a panic()/fatal() inside fn into
            // an exception: the worker parks it and stops pulling
            // work instead of abort()/exit()ing under the feet of
            // its siblings, which keep draining the batch.
            ScopedErrorCapture capture;
            try {
                for (size_t i = next.fetch_add(1); i < n;
                     i = next.fetch_add(1)) {
                    fn(i);
                }
            } catch (...) {
                errors[w] = std::current_exception();
            }
        });
    }
    for (auto &t : pool)
        t.join();
    // Pool fully drained; now surface the first captured failure on
    // the calling thread. Fatal/panic errors re-enter the normal
    // reporting path (which exits/aborts unless this thread is
    // itself capturing); everything else propagates as-is.
    for (auto &e : errors) {
        if (!e)
            continue;
        try {
            std::rethrow_exception(e);
        } catch (const FatalError &f) {
            fatal("{}", f.what());
        } catch (const PanicError &p) {
            fatal("{}", p.what());
        }
    }
}

void
SimulationRunner::runRetries(const RunParams &params, uint64_t key,
                             unsigned first_attempt,
                             Outcome &out) const
{
    const unsigned tries = std::max(1u, retry.maxAttempts);
    for (unsigned attempt = first_attempt; attempt < tries;
         ++attempt) {
        if (attempt > 0 && retry.backoffMs > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(attempt * retry.backoffMs));
        }
        RunParams p = params;
        p.attempt = attempt;
        ++out.attempts;
        try {
            ScopedErrorCapture capture;
            out.result = simulate(p);
            out.error.clear();
            out.stalled = false;
            if (journal != nullptr)
                journal->record(key, out.result);
            return;
        } catch (const core::ProgressStallError &e) {
            // Watchdog stalls are deterministic; retrying would
            // just wedge again, so fail the point immediately.
            out.stalled = true;
            out.error = e.what();
            break;
        } catch (const std::exception &e) {
            out.error = e.what();
        } catch (...) {
            out.error = "unknown exception";
        }
    }
}

SimulationRunner::Outcome
SimulationRunner::runOne(size_t index, const RunParams &params) const
{
    Outcome out;
    const uint64_t key = paramsHash(params);
    if (journal != nullptr && journal->lookup(key, out.result)) {
        out.fromJournal = true;
        return out;
    }

    runRetries(params, key, 0, out);
    if (!out.ok()) {
        out.error = fmtStr("run {} ({}): {}", index,
                           paramsSummary(params), out.error);
    }
    return out;
}

unsigned
SimulationRunner::effectiveBatchLanes() const
{
    // Whole-binary escape hatch, like PRI_LEGACY_CKPTS and friends.
    if (std::getenv("PRI_LEGACY_BATCH") != nullptr)
        return 1;
    return nBatchLanes == 0 ? defaultBatchLanes() : nBatchLanes;
}

void
SimulationRunner::runBatched(const std::vector<RunParams> &batch,
                             std::vector<Outcome> &out) const
{
    // Journal prefilter BEFORE batch formation: a previously
    // journaled point must not occupy a lane (or force a tape
    // build) just to be skipped, and a resumed sweep then forms the
    // same batches it would on a fresh journal-free run minus the
    // finished points.
    std::vector<uint64_t> keys(batch.size());
    std::vector<size_t> pending;
    pending.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        keys[i] = paramsHash(batch[i]);
        if (journal != nullptr &&
            journal->lookup(keys[i], out[i].result)) {
            out[i].fromJournal = true;
        } else {
            pending.push_back(i);
        }
    }

    const auto groups =
        formBatches(batch, pending, effectiveBatchLanes());
    forEach(groups.size(), [&](size_t g) {
        const BatchGroup &grp = groups[g];
        if (grp.indices.size() == 1) {
            // Singleton (unbatchable point or a group of one):
            // exact serial path. The redundant journal lookup
            // inside runOne is a guaranteed miss.
            const size_t i = grp.indices.front();
            out[i] = runOne(i, batch[i]);
            return;
        }

        SweepBatch sb(batch, grp);
        sb.prepare();
        sb.drain();
        auto lane_out = sb.finalize();
        for (size_t k = 0; k < grp.indices.size(); ++k) {
            const size_t i = grp.indices[k];
            Outcome &o = out[i];
            o.attempts = 1; // the batched attempt (attempt 0)
            if (lane_out[k].ok()) {
                o.result = std::move(lane_out[k].result);
                if (journal != nullptr)
                    journal->record(keys[i], o.result);
                continue;
            }
            o.stalled = lane_out[k].stalled;
            o.error = std::move(lane_out[k].error);
            // The batched run was attempt 0; retries (if any)
            // continue the serial attempt loop from 1, exactly as
            // runOne would after its first failure. Stalls are
            // deterministic — never retried.
            if (!o.stalled)
                runRetries(batch[i], keys[i], 1, o);
            if (!o.ok()) {
                o.error = fmtStr("run {} ({}): {}", i,
                                 paramsSummary(batch[i]), o.error);
            }
        }
    });
}

std::vector<SimulationRunner::Outcome>
SimulationRunner::runCaptured(const std::vector<RunParams> &batch) const
{
    std::vector<Outcome> out(batch.size());
    if (effectiveBatchLanes() > 1) {
        runBatched(batch, out);
        return out;
    }
    forEach(batch.size(), [&](size_t i) {
        out[i] = runOne(i, batch[i]);
    });
    return out;
}

std::string
SimulationRunner::describeFailures(
    const std::vector<Outcome> &outcomes,
    const std::vector<RunParams> &batch)
{
    size_t failed = 0;
    for (const auto &o : outcomes)
        failed += o.ok() ? 0 : 1;
    if (failed == 0)
        return "";

    (void)batch;
    std::string table = fmtStr("{} of {} runs failed:\n", failed,
                               outcomes.size());
    for (const auto &o : outcomes) {
        if (o.ok())
            continue;
        // First line only: stall errors carry a multi-line flight-
        // recorder dump that belongs in the log, not the table.
        // The error itself already leads with "run <i> (<params>)".
        const std::string brief =
            o.error.substr(0, o.error.find('\n'));
        table += fmtStr("  [{} after {} attempt{}] {}\n",
                        o.stalled ? "stalled" : "failed",
                        o.attempts, o.attempts == 1 ? "" : "s",
                        brief);
    }
    return table;
}

std::vector<RunResult>
SimulationRunner::run(const std::vector<RunParams> &batch) const
{
    auto outcomes = runCaptured(batch);
    std::vector<RunResult> results;
    results.reserve(outcomes.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].ok())
            fatal("simulation {}", outcomes[i].error);
        results.push_back(std::move(outcomes[i].result));
    }
    return results;
}

} // namespace pri::sim
