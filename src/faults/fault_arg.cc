#include "faults/fault_arg.hh"

#include <cstdlib>
#include <vector>

namespace pri::faults
{

namespace
{

const char kKindList[] =
    "valid kinds: wedge, wrong-path, stale-gidx, port-overgrant, "
    "kill@K, or SITE:MUT:TRIG=N[:seed=S] with SITE one of "
    "prf|map|freelist|wake|ckpt|lsq, MUT one of flip|stale|zero, "
    "TRIG one of cycle|access|draw (append @POINT to restrict to "
    "one sweep point)";

std::vector<std::string>
splitColon(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (;;) {
        const size_t colon = s.find(':', start);
        if (colon == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, colon - start));
        start = colon + 1;
    }
}

bool
parseU64(const std::string &s, uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end == s.c_str() + s.size();
}

bool
lookupSite(const std::string &tok, FaultSite &out)
{
    for (FaultSite s : kAllFaultSites) {
        if (tok == siteName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

bool
lookupMutation(const std::string &tok, FaultMutation &out)
{
    for (FaultMutation m : {FaultMutation::BitFlip,
                            FaultMutation::StaleValue,
                            FaultMutation::ZeroEntry}) {
        if (tok == mutationName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

bool
lookupTrigger(const std::string &tok, FaultTrigger &out)
{
    for (FaultTrigger t : {FaultTrigger::AtCycle,
                           FaultTrigger::NthAccess,
                           FaultTrigger::SeededDraw}) {
        if (tok == triggerName(t)) {
            out = t;
            return true;
        }
    }
    return false;
}

} // namespace

bool
parseFaultArg(const std::string &text, FaultArg &out,
              std::string &err)
{
    out = FaultArg{};
    err.clear();

    // Daemon crash drill: kill@K (the '@' is the dispatch ordinal,
    // not a sweep-point restriction).
    if (text.rfind("kill@", 0) == 0) {
        uint64_t k = 0;
        if (!parseU64(text.substr(5), k)) {
            err = "bad kill dispatch in '" + text + "'; " +
                kKindList;
            return false;
        }
        out.kill = true;
        out.killDispatch = static_cast<unsigned long>(k);
        return true;
    }

    std::string body = text;
    const size_t at = body.rfind('@');
    if (at != std::string::npos) {
        uint64_t pt = 0;
        if (!parseU64(body.substr(at + 1), pt)) {
            err = "bad @POINT in '" + text + "'; " + kKindList;
            return false;
        }
        out.point = static_cast<long>(pt);
        body = body.substr(0, at);
    }

    // Legacy planted-bug kinds.
    using core::InjectedFault;
    if (body == "wedge") {
        out.legacy = InjectedFault::WedgeScheduler;
        return true;
    }
    if (body == "wrong-path") {
        out.legacy = InjectedFault::CommitWrongPath;
        return true;
    }
    if (body == "stale-gidx") {
        out.legacy = InjectedFault::StaleWalkerGidx;
        return true;
    }
    if (body == "port-overgrant") {
        out.legacy = InjectedFault::PortOverGrant;
        return true;
    }

    // Declarative FaultSpec: SITE:MUT:TRIG=N[:seed=S]
    const auto toks = splitColon(body);
    if (toks.size() < 3 || toks.size() > 4) {
        err = "unknown fault '" + text + "'; " + kKindList;
        return false;
    }
    FaultSpec spec;
    if (!lookupSite(toks[0], spec.site)) {
        err = "unknown fault site '" + toks[0] + "'; " + kKindList;
        return false;
    }
    if (!lookupMutation(toks[1], spec.mutation)) {
        err = "unknown fault mutation '" + toks[1] + "'; " +
            kKindList;
        return false;
    }
    const size_t eq = toks[2].find('=');
    if (eq == std::string::npos ||
        !lookupTrigger(toks[2].substr(0, eq), spec.trigger) ||
        !parseU64(toks[2].substr(eq + 1), spec.triggerArg)) {
        err = "bad fault trigger '" + toks[2] + "'; " + kKindList;
        return false;
    }
    if (toks.size() == 4) {
        if (toks[3].rfind("seed=", 0) != 0 ||
            !parseU64(toks[3].substr(5), spec.seed)) {
            err = "bad fault seed '" + toks[3] + "'; " + kKindList;
            return false;
        }
    }
    out.spec = spec;
    return true;
}

std::string
formatFaultSpec(const FaultSpec &spec)
{
    std::string s = siteName(spec.site);
    s += ':';
    s += mutationName(spec.mutation);
    s += ':';
    s += triggerName(spec.trigger);
    s += '=';
    s += std::to_string(spec.triggerArg);
    if (spec.seed != 0) {
        s += ":seed=";
        s += std::to_string(spec.seed);
    }
    return s;
}

} // namespace pri::faults
