/**
 * @file
 * The transient-fault campaign driver (DESIGN.md §17).
 *
 * A campaign is a declarative grid — schemes × fault sites × N
 * seeded injections — expanded into ordinary RunParams and executed
 * through the same resilient machinery every sweep uses: journal
 * prefilter, optional pri_sweepd offload, then the in-process
 * SimulationRunner with capture-not-fatal semantics. One reference
 * (fault-free) run per scheme anchors the classification; every
 * injection is then sorted into exactly one FaultOutcome bucket by
 * classifyOutcome(). A crashed or hung injection is just a counted
 * outcome — it can never abort the campaign.
 *
 * Determinism: injection specs are pure functions of the campaign
 * seed (drawInjection), execution order never affects results
 * (submission-order scatter), and classification consumes only
 * bit-exact fields (report, archSig, stalled flag, the golden
 * divergence marker). Tables built from a CampaignTable are
 * therefore byte-identical across --jobs, --batch, journal resume,
 * and a warm daemon.
 *
 * Header-only by design: pri_faults itself stays below pri_sim in
 * the link order (core structures include fault_spec.hh), while
 * this driver needs the runner and the sweepd client — so the
 * binaries that run campaigns (bench harnesses, tests, CI drills)
 * include it and link pri_sim/pri_sweepd themselves.
 */

#ifndef PRI_FAULTS_CAMPAIGN_RUNNER_HH
#define PRI_FAULTS_CAMPAIGN_RUNNER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/hashing.hh"
#include "common/logging.hh"
#include "faults/campaign.hh"
#include "sim/journal.hh"
#include "sim/runner.hh"
#include "sweepd/client.hh"

namespace pri::faults
{

/** Declarative campaign grid: what to strike, where, how often. */
struct CampaignSpec
{
    std::string benchmark = "gap";
    unsigned width = 4;
    unsigned physRegs = 64;
    uint64_t warmupInsts = 2000;
    uint64_t measureInsts = 8000;
    uint64_t programSeed = 42;
    std::vector<sim::Scheme> schemes;
    std::vector<FaultSite> sites{kAllFaultSites,
                                 kAllFaultSites + 6};
    /** Seeded injections per (scheme, site) cell. */
    unsigned injections = 32;
    /** Root of every per-injection seed/trigger draw. */
    uint64_t campaignSeed = 1;
    /**
     * Strike-cycle window for the seeded draws; 0 derives it from
     * the instruction budget (IPC near 1 on these workloads, so
     * warmup+measure cycles covers the run; strikes drawn past the
     * end simply never fire and count as masked — real AVF
     * derating, not an error).
     */
    uint64_t drawWindow = 0;
    bool checkGolden = true;
    uint64_t timeoutMs = 0;
};

/** Execution environment: reuse the harness's pool/journal/daemon. */
struct CampaignExec
{
    unsigned jobs = 0;       ///< 0 = hardware_concurrency
    unsigned batchLanes = 0; ///< 0 = auto
    sim::RetryPolicy retry{1, 0};
    sim::SweepJournal *journal = nullptr;  ///< optional
    sweepd::SweepdClient *client = nullptr; ///< optional daemon
};

/** Campaign output: per-(scheme, site) outcome counts. */
struct CampaignTable
{
    std::vector<sim::Scheme> schemes;
    std::vector<FaultSite> sites;
    std::vector<OutcomeCounts> counts; ///< scheme-major
    /** Reference outcomes, one per scheme (fault-free runs). */
    std::vector<sim::SimulationRunner::Outcome> refs;

    OutcomeCounts &
    cell(size_t scheme_idx, size_t site_idx)
    {
        return counts[scheme_idx * sites.size() + site_idx];
    }

    const OutcomeCounts &
    cell(size_t scheme_idx, size_t site_idx) const
    {
        return counts[scheme_idx * sites.size() + site_idx];
    }
};

/**
 * The injection spec for cell position (@p scheme_idx, @p site,
 * injection @p n) of a campaign — a pure function of the campaign
 * seed, exposed so tests can reproduce any single injection as a
 * standalone run.
 */
inline FaultSpec
campaignInjection(const CampaignSpec &spec, size_t scheme_idx,
                  FaultSite site, unsigned n)
{
    const uint64_t window = spec.drawWindow != 0
        ? spec.drawWindow
        : spec.warmupInsts + spec.measureInsts;
    return drawInjection(
        site, n,
        hashCombine(spec.campaignSeed, scheme_idx,
                    0x63616d706169676eULL),
        window);
}

/**
 * Run @p batch with capture-not-fatal semantics through the
 * resilient path: journal prefilter (inside the runner), optional
 * daemon offload for the points a warm store can serve, local
 * simulation for everything else. Daemon failures of any kind
 * degrade to local re-execution — the daemon is a cache, never an
 * authority on failures — so the returned outcomes are identical
 * with or without one.
 */
inline std::vector<sim::SimulationRunner::Outcome>
runCampaignBatch(const std::vector<sim::RunParams> &batch,
                 const CampaignExec &exec)
{
    std::vector<sim::SimulationRunner::Outcome> out(batch.size());
    std::vector<size_t> pending;
    pending.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i)
        pending.push_back(i);

    if (exec.client != nullptr && !batch.empty()) {
        const auto served = exec.client->submit(batch);
        std::vector<size_t> still;
        for (size_t i = 0; i < batch.size(); ++i) {
            if (served[i].ok()) {
                out[i].result = served[i].result;
                out[i].error.clear();
                out[i].attempts = 1;
                if (exec.journal != nullptr) {
                    exec.journal->record(sim::paramsHash(batch[i]),
                                         out[i].result);
                }
            } else {
                still.push_back(i);
            }
        }
        pending.swap(still);
    }

    if (!pending.empty()) {
        std::vector<sim::RunParams> local;
        local.reserve(pending.size());
        for (size_t i : pending)
            local.push_back(batch[i]);
        sim::SimulationRunner runner(exec.jobs);
        runner.setBatchLanes(exec.batchLanes);
        runner.setRetryPolicy(exec.retry);
        runner.setJournal(exec.journal);
        const auto fresh = runner.runCaptured(local);
        for (size_t k = 0; k < pending.size(); ++k)
            out[pending[k]] = fresh[k];
    }
    return out;
}

/**
 * Execute the full campaign: one reference run per scheme, then
 * schemes × sites × N injections, classified into the outcome
 * table. Total by construction — every injection lands in exactly
 * one bucket, and no injection outcome (crash, hang, daemon loss)
 * can abort the sweep.
 */
inline CampaignTable
runCampaign(const CampaignSpec &spec, const CampaignExec &exec)
{
    CampaignTable table;
    table.schemes = spec.schemes;
    table.sites = spec.sites;
    table.counts.assign(spec.schemes.size() * spec.sites.size(),
                        OutcomeCounts{});

    const auto base_params = [&](size_t scheme_idx) {
        sim::RunParams p;
        p.benchmark = spec.benchmark;
        p.width = spec.width;
        p.scheme = spec.schemes[scheme_idx];
        p.physRegs = spec.physRegs;
        p.warmupInsts = spec.warmupInsts;
        p.measureInsts = spec.measureInsts;
        p.seed = spec.programSeed;
        p.checkGolden = spec.checkGolden;
        p.timeoutMs = spec.timeoutMs;
        return p;
    };

    // References: the fault-free anchor per scheme.
    std::vector<sim::RunParams> refs;
    refs.reserve(spec.schemes.size());
    for (size_t s = 0; s < spec.schemes.size(); ++s)
        refs.push_back(base_params(s));
    table.refs = runCampaignBatch(refs, exec);

    // Injections, scheme-major for cache-friendly batching.
    std::vector<sim::RunParams> inj;
    inj.reserve(spec.schemes.size() * spec.sites.size() *
                spec.injections);
    for (size_t s = 0; s < spec.schemes.size(); ++s) {
        for (const FaultSite site : spec.sites) {
            for (unsigned n = 0; n < spec.injections; ++n) {
                sim::RunParams p = base_params(s);
                p.faultSpec = campaignInjection(spec, s, site, n);
                inj.push_back(std::move(p));
            }
        }
    }
    const auto outcomes = runCampaignBatch(inj, exec);

    size_t k = 0;
    for (size_t s = 0; s < spec.schemes.size(); ++s) {
        for (size_t f = 0; f < spec.sites.size(); ++f) {
            for (unsigned n = 0; n < spec.injections; ++n, ++k) {
                table.cell(s, f).add(
                    classifyOutcome(outcomes[k], table.refs[s]));
            }
        }
    }
    return table;
}

} // namespace pri::faults

#endif // PRI_FAULTS_CAMPAIGN_RUNNER_HH
