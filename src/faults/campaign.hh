/**
 * @file
 * Fault-campaign planning and outcome classification.
 *
 * A campaign is N seeded injections per (config point × fault
 * site): each injection is an ordinary RunParams with a FaultSpec
 * attached, executed through whatever path the harness already uses
 * (SimulationRunner, batch lanes, journal, sweepd) — the campaign
 * layer only *plans* the specs and *classifies* the per-point
 * Outcomes afterwards. Determinism therefore comes for free: the
 * spec is audited by paramsHash and every trigger is counter-based,
 * so a campaign table is byte-identical across --jobs, --batch,
 * journal resume, and warm-daemon paths (DESIGN.md §17).
 */

#ifndef PRI_FAULTS_CAMPAIGN_HH
#define PRI_FAULTS_CAMPAIGN_HH

#include <array>
#include <cstdint>

#include "faults/fault_spec.hh"
#include "sim/runner.hh"

namespace pri::faults
{

/**
 * What one injection did to the run. Every injection lands in
 * exactly one class — there is no "unclassified".
 */
enum class FaultOutcome : uint8_t
{
    /** Run finished and both the stat report and the committed-
     *  stream architectural signature match the fault-free
     *  reference: the strike was logically or temporally masked. */
    Masked = 0,
    /** The golden-model diff checker caught the corruption (panic
     *  whose text carries golden::kDivergenceMarker). */
    DetectedByGolden,
    /** Run finished "cleanly" but the report or architectural
     *  signature differs from the fault-free reference: silent
     *  data corruption that escaped every check. */
    SilentDataCorruption,
    /** The forward-progress watchdog raised ProgressStall
     *  (Outcome.stalled) — the machine wedged. */
    Hang,
    /** Any other panic/assert/signal/worker death; the flight-
     *  recorder dump rides in Outcome.error. */
    Crash,
};

constexpr unsigned kNumFaultOutcomes = 5;

/** Stable display name ("masked", "golden", "sdc", "hang",
 *  "crash"). */
constexpr const char *
outcomeName(FaultOutcome o)
{
    switch (o) {
    case FaultOutcome::Masked: return "masked";
    case FaultOutcome::DetectedByGolden: return "golden";
    case FaultOutcome::SilentDataCorruption: return "sdc";
    case FaultOutcome::Hang: return "hang";
    case FaultOutcome::Crash: return "crash";
    }
    return "?";
}

/** Per-class counters for one table cell. */
struct OutcomeCounts
{
    std::array<uint64_t, kNumFaultOutcomes> n{};

    void
    add(FaultOutcome o)
    {
        ++n[static_cast<unsigned>(o)];
    }

    uint64_t
    total() const
    {
        uint64_t t = 0;
        for (uint64_t v : n)
            t += v;
        return t;
    }
};

/**
 * Classify one injected run against its fault-free reference (same
 * RunParams minus the FaultSpec, same golden setting). Total: every
 * Outcome maps to exactly one class.
 */
FaultOutcome classifyOutcome(
    const sim::SimulationRunner::Outcome &faulted,
    const sim::SimulationRunner::Outcome &ref);

/**
 * Draw injection @p n of a campaign at @p site: a seeded-draw
 * trigger uniform in [0, drawRange) with a per-injection seed and
 * mutation, all pure functions of (campaignSeed, site, n).
 */
FaultSpec drawInjection(FaultSite site, unsigned n,
                        uint64_t campaignSeed, uint64_t drawRange);

} // namespace pri::faults

#endif // PRI_FAULTS_CAMPAIGN_HH
