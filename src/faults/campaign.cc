#include "faults/campaign.hh"

#include <string>

#include "common/hashing.hh"
#include "golden/diff_checker.hh"

namespace pri::faults
{

FaultOutcome
classifyOutcome(const sim::SimulationRunner::Outcome &faulted,
                const sim::SimulationRunner::Outcome &ref)
{
    // Order matters: a wedge is a Hang even if retries also left
    // error text, and a golden panic is DetectedByGolden even
    // though it, too, is a panic.
    if (faulted.stalled)
        return FaultOutcome::Hang;
    if (!faulted.ok()) {
        if (faulted.error.find(golden::kDivergenceMarker) !=
            std::string::npos)
            return FaultOutcome::DetectedByGolden;
        return FaultOutcome::Crash;
    }
    // Clean finish: compare against the fault-free reference. If
    // the reference itself failed there is nothing to match, so a
    // clean faulted run counts as corruption (conservative).
    if (!ref.ok())
        return FaultOutcome::SilentDataCorruption;
    if (faulted.result.report == ref.result.report &&
        faulted.result.archSig == ref.result.archSig)
        return FaultOutcome::Masked;
    return FaultOutcome::SilentDataCorruption;
}

FaultSpec
drawInjection(FaultSite site, unsigned n, uint64_t campaignSeed,
              uint64_t drawRange)
{
    const auto siteKey = static_cast<uint64_t>(site);
    FaultSpec spec;
    spec.site = site;
    spec.mutation = static_cast<FaultMutation>(
        hashRange(3, campaignSeed, siteKey, 2 * n));
    spec.trigger = FaultTrigger::SeededDraw;
    spec.triggerArg = drawRange;
    spec.seed = hashCombine(campaignSeed, siteKey, 2 * n + 1);
    return spec;
}

} // namespace pri::faults
