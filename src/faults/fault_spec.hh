/**
 * @file
 * Declarative transient-fault specification (DESIGN.md §17).
 *
 * A FaultSpec names one soft-error injection: a *site* (which
 * microarchitectural storage cell to corrupt), a *trigger* (when to
 * corrupt it — all triggers are pure functions of the spec and the
 * core's own deterministic counters, never wall-clock randomness),
 * and a *mutation* (how the cell's bits change). The struct is a
 * plain value: it travels inside RunParams, is audited by
 * paramsHash, and is serialized by the journal/store/wire codec, so
 * a campaign point is reproducible and content-addressable exactly
 * like any other sweep point.
 */

#ifndef PRI_FAULTS_FAULT_SPEC_HH
#define PRI_FAULTS_FAULT_SPEC_HH

#include <cstdint>

namespace pri::faults
{

/** Which storage cell the particle strikes. */
enum class FaultSite : uint8_t
{
    None = 0,
    /** A physical-register-file value cell (any allocated preg). */
    PrfValue,
    /** A map-table entry — pointer or PRI-inlined immediate. */
    MapTable,
    /** A free-list slot (corrupts which preg gets handed out). */
    FreeList,
    /** A scheduler wake/consumer-list link (event wakeup only). */
    WakeLink,
    /** A live checkpoint-pool node's saved map image. */
    CkptNode,
    /** An LSQ store-forwarding entry's address tag. */
    LsqForward,
};

/** When the strike happens. */
enum class FaultTrigger : uint8_t
{
    /** At machine cycle triggerArg. */
    AtCycle = 0,
    /** On the triggerArg-th access to the site (writebacks for the
     *  PRF, dest renames for map/free-list, consumer links for
     *  wake, checkpoint creations, store inserts for the LSQ). */
    NthAccess,
    /** At a cycle drawn counter-style from (seed, site, mutation)
     *  uniformly in [0, triggerArg) — the campaign workhorse. */
    SeededDraw,
};

/** How the struck cell's bits change. */
enum class FaultMutation : uint8_t
{
    /** Flip one bit (which bit is a seeded draw). */
    BitFlip = 0,
    /** Replace the cell with another live cell's value. */
    StaleValue,
    /** Zero the whole entry. */
    ZeroEntry,
};

/** One declarative transient-fault injection. */
struct FaultSpec
{
    FaultSite site = FaultSite::None;
    FaultMutation mutation = FaultMutation::BitFlip;
    FaultTrigger trigger = FaultTrigger::AtCycle;
    /** Cycle, access ordinal, or draw range per the trigger kind. */
    uint64_t triggerArg = 0;
    /** Seeds the fire-cycle draw and every in-mutation draw (which
     *  preg, which bit, which neighbour). */
    uint64_t seed = 0;

    bool enabled() const { return site != FaultSite::None; }

    friend bool operator==(const FaultSpec &,
                           const FaultSpec &) = default;
};

/** Stable lowercase token per site (parser + table rows). */
constexpr const char *
siteName(FaultSite s)
{
    switch (s) {
    case FaultSite::None: return "none";
    case FaultSite::PrfValue: return "prf";
    case FaultSite::MapTable: return "map";
    case FaultSite::FreeList: return "freelist";
    case FaultSite::WakeLink: return "wake";
    case FaultSite::CkptNode: return "ckpt";
    case FaultSite::LsqForward: return "lsq";
    }
    return "?";
}

/** Stable lowercase token per mutation. */
constexpr const char *
mutationName(FaultMutation m)
{
    switch (m) {
    case FaultMutation::BitFlip: return "flip";
    case FaultMutation::StaleValue: return "stale";
    case FaultMutation::ZeroEntry: return "zero";
    }
    return "?";
}

/** Stable lowercase token per trigger. */
constexpr const char *
triggerName(FaultTrigger t)
{
    switch (t) {
    case FaultTrigger::AtCycle: return "cycle";
    case FaultTrigger::NthAccess: return "access";
    case FaultTrigger::SeededDraw: return "draw";
    }
    return "?";
}

/** All injectable sites, in table-row order. */
constexpr FaultSite kAllFaultSites[] = {
    FaultSite::PrfValue,  FaultSite::MapTable, FaultSite::FreeList,
    FaultSite::WakeLink,  FaultSite::CkptNode, FaultSite::LsqForward,
};

} // namespace pri::faults

#endif // PRI_FAULTS_FAULT_SPEC_HH
