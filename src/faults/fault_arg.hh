/**
 * @file
 * One shared parser for every `--inject-fault` flavour.
 *
 * Historically `src/sim/main.cc` and `src/sweepd/main.cc` each
 * hand-rolled their own string parser (legacy planted-bug kinds vs.
 * the daemon's `kill@K` drill). This helper owns the grammar for
 * all of them plus the declarative FaultSpec form, so the CLIs,
 * tests, and campaign drivers agree on one syntax and one error
 * message listing the valid kinds.
 *
 * Grammar (one argument):
 *   wedge | wrong-path | stale-gidx | port-overgrant   legacy bugs
 *   kill@K                                             daemon drill
 *   SITE:MUT:TRIG=N[:seed=S]                           FaultSpec
 * any of which (except kill@K) may end in `@POINT` to restrict the
 * fault to one sweep point. SITE is prf|map|freelist|wake|ckpt|lsq,
 * MUT is flip|stale|zero, TRIG is cycle|access|draw.
 */

#ifndef PRI_FAULTS_FAULT_ARG_HH
#define PRI_FAULTS_FAULT_ARG_HH

#include <string>

#include "core/config.hh"
#include "faults/fault_spec.hh"

namespace pri::faults
{

/** Decoded `--inject-fault` argument (exactly one form is set). */
struct FaultArg
{
    /** Legacy planted bug (None if another form matched). */
    core::InjectedFault legacy = core::InjectedFault::None;
    /** Declarative transient fault (disabled if another form). */
    FaultSpec spec;
    /** Daemon worker-kill drill (`kill@K`). */
    bool kill = false;
    unsigned long killDispatch = 0;
    /** Sweep point restriction (`@POINT`); -1 = every point. */
    long point = -1;
};

/**
 * Parse @p text into @p out. Returns false with a one-line
 * diagnostic in @p err (listing every valid kind) on bad input.
 */
bool parseFaultArg(const std::string &text, FaultArg &out,
                   std::string &err);

/** Render a FaultSpec in the grammar above (parse round-trips). */
std::string formatFaultSpec(const FaultSpec &spec);

} // namespace pri::faults

#endif // PRI_FAULTS_FAULT_ARG_HH
