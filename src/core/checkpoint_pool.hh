/**
 * @file
 * Fixed-capacity branch-checkpoint pool.
 *
 * Real machines version front-end recovery state in a small
 * hardware structure instead of copying it with every instruction;
 * this pool models that. Each fetched branch allocates one
 * pre-allocated slot and carries only an 8-byte index+generation
 * reference (CkptRef) through the fetch queue and the ROB. Slots
 * hold the walker checkpoint (with reusable, grow-once stack
 * storage), the shrunken predictor snapshot, and the speculative-
 * architectural-state journal position. Slots are released when the
 * branch resolves (either outcome) or is squashed; pool exhaustion
 * stalls fetch, as it would in hardware.
 *
 * Slots are allocated in fetch order and the pool is a circular
 * window [head, tail): releases in the middle (branches resolve out
 * of order) mark the slot dead, and the window edges advance past
 * dead slots. Every slot in the window belongs to a branch still in
 * the fetch queue or ROB, so a capacity of robSize + fetchQueueSize
 * can never fill — the default sizing, which makes the pooled path
 * timing-identical to the legacy copy path.
 */

#ifndef PRI_CORE_CHECKPOINT_POOL_HH
#define PRI_CORE_CHECKPOINT_POOL_HH

#include <cstdint>
#include <vector>

#include "branch/predictor.hh"
#include "common/arena.hh"
#include "common/logging.hh"
#include "workload/walker.hh"

namespace pri::core
{

/** Index+generation reference to a pooled checkpoint slot. */
struct CkptRef
{
    static constexpr uint32_t kNoSlot = ~uint32_t{0};

    uint32_t idx = kNoSlot;
    uint32_t gen = 0;

    bool valid() const { return idx != kNoSlot; }
};

/** One pooled checkpoint: everything a mispredict restore needs. */
struct CheckpointSlot
{
    /** archSeq value of a slot whose branch has not renamed yet. */
    static constexpr uint64_t kUnrenamed = ~uint64_t{0};

    workload::WalkerCkpt walker; ///< reusable stack storage
    branch::PredictorSnapshot bp;
    /** Speculative-arch undo-journal position, set at rename. */
    uint64_t archSeq = kUnrenamed;
    uint32_t gen = 1; ///< bumped on release; stale refs panic
    bool live = false;
};

class CheckpointPool
{
  public:
    explicit CheckpointPool(unsigned capacity) : slots(capacity)
    {
        PRI_ASSERT(capacity > 0, "checkpoint pool needs a slot");
    }

    unsigned capacity() const
    {
        return static_cast<unsigned>(slots.size());
    }

    /** No slot available: fetch must stall. */
    bool full() const { return used == slots.size(); }

    bool empty() const { return liveCount == 0; }
    unsigned liveSlots() const { return liveCount; }

    CkptRef
    allocate()
    {
        PRI_ASSERT(!full(), "checkpoint pool overflow");
        CheckpointSlot &s = slots[tail];
        PRI_ASSERT(!s.live, "allocating a live checkpoint slot");
        s.live = true;
        s.archSeq = CheckpointSlot::kUnrenamed;
        const CkptRef ref{tail, s.gen};
        tail = (tail + 1) % capacity();
        ++used;
        ++liveCount;
        return ref;
    }

    CheckpointSlot &
    get(CkptRef ref)
    {
        CheckpointSlot &s = slots[ref.idx];
        PRI_ASSERT(s.live && s.gen == ref.gen,
                   "stale checkpoint reference");
        return s;
    }

    /**
     * Release a slot. The generation check catches double frees and
     * references that survived a squash. Window edges advance past
     * dead slots so the capacity is reclaimed.
     */
    void
    release(CkptRef ref)
    {
        CheckpointSlot &s = slots[ref.idx];
        PRI_ASSERT(s.live && s.gen == ref.gen,
                   "checkpoint double-free or stale reference");
        s.live = false;
        ++s.gen;
        --liveCount;
        while (used > 0 && !slots[head].live) {
            head = (head + 1) % capacity();
            --used;
        }
        while (used > 0 &&
               !slots[(tail + capacity() - 1) % capacity()].live) {
            tail = (tail + capacity() - 1) % capacity();
            --used;
        }
    }

    /** Oldest live checkpoint (creation order), for journal trims. */
    const CheckpointSlot &
    oldest() const
    {
        PRI_ASSERT(liveCount > 0, "oldest() on an empty pool");
        return slots[head];
    }

  private:
    HotVec<CheckpointSlot> slots;
    uint32_t head = 0;      ///< oldest slot still in the window
    uint32_t tail = 0;      ///< next slot to allocate
    uint32_t used = 0;      ///< window size (incl. dead interior)
    unsigned liveCount = 0; ///< live slots in the window
};

} // namespace pri::core

#endif // PRI_CORE_CHECKPOINT_POOL_HH
