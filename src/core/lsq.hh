/**
 * @file
 * Load/store queue.
 *
 * A circular buffer of in-flight memory operations. Addresses are
 * known at insertion (rename) — an oracle memory-dependence model
 * (DESIGN.md §5): loads forward from the youngest older store to the
 * same 8-byte word; there is no memory-order misspeculation.
 *
 * Forwarding queries are served by a per-word hash index: every
 * in-flight store is threaded onto an age-ordered chain for its
 * 8-byte word (walker sequence numbers are globally monotonic and
 * never rolled back, so tail-appends keep each chain sorted oldest to
 * youngest even across squashes and ring wraparound). `forwardHit` is
 * then a single hash probe plus one compare against the chain's
 * oldest store, instead of the legacy full-queue scan — which is kept
 * as `forwardHitLinear` so tests can cross-check the index. The index
 * is rewound eagerly: `commitHead` unlinks from the front of a chain,
 * `squashYounger` from the back, so no journal is needed.
 */

#ifndef PRI_CORE_LSQ_HH
#define PRI_CORE_LSQ_HH

#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "common/hashing.hh"
#include "common/logging.hh"
#include "faults/fault_spec.hh"

namespace pri::core
{

/** Load/store queue with oracle forwarding. */
class Lsq
{
  public:
    explicit Lsq(unsigned size)
        : entries(size), nodes(size),
          buckets(bucketCountFor(size), kNil)
    {
        freeNodes.reserve(size);
        for (unsigned i = size; i-- > 0;)
            freeNodes.push_back(static_cast<int32_t>(i));
    }

    bool full() const { return count == entries.size(); }
    unsigned occupancy() const { return count; }

    /** Insert a memory op at the tail; returns its slot index. */
    unsigned
    insert(uint64_t seq, uint64_t addr, bool is_store)
    {
        PRI_ASSERT(!full(), "LSQ overflow");
        const unsigned slot = tail;
        entries[slot] = Entry{seq, addr & ~uint64_t{7}, kNil, kNil,
                              kNil, is_store, true};
        if (is_store)
            attachStore(slot);
        tail = (tail + 1) % entries.size();
        ++count;
        return slot;
    }

    /**
     * True when an older in-flight store to the same 8-byte word
     * exists (store-to-load forwarding hit). One hash probe: the
     * chain head is the oldest in-flight store to the word, so it is
     * older than the load iff any store on the chain is.
     */
    bool
    forwardHit(uint64_t load_seq, uint64_t addr) const
    {
        const int32_t n = findNode(addr & ~uint64_t{7});
        return n != kNil &&
            entries[nodes[n].headSlot].seq < load_seq;
    }

    /** Reference implementation: full-queue scan (tests only). */
    bool
    forwardHitLinear(uint64_t load_seq, uint64_t addr) const
    {
        const uint64_t word = addr & ~uint64_t{7};
        for (unsigned i = 0, idx = head; i < count;
             ++i, idx = (idx + 1) % entries.size()) {
            const Entry &e = entries[idx];
            if (e.valid && e.isStore && e.seq < load_seq &&
                e.addr == word) {
                return true;
            }
        }
        return false;
    }

    /** Release the head entry (commit order). */
    void
    commitHead(uint64_t seq)
    {
        PRI_ASSERT(count > 0, "LSQ underflow");
        PRI_ASSERT(entries[head].valid && entries[head].seq == seq,
                   "LSQ commit out of order");
        if (entries[head].isStore)
            detachStore(head);
        entries[head].valid = false;
        head = (head + 1) % entries.size();
        --count;
    }

    /** Drop all entries younger than @p branch_seq (squash). */
    void
    squashYounger(uint64_t branch_seq)
    {
        while (count > 0) {
            const unsigned last =
                (tail + entries.size() - 1) % entries.size();
            if (!entries[last].valid ||
                entries[last].seq <= branch_seq) {
                break;
            }
            if (entries[last].isStore)
                detachStore(last);
            entries[last].valid = false;
            tail = last;
            --count;
        }
    }

    /**
     * Transient-fault hook (src/faults): corrupt the latched address
     * of one in-flight store, chosen by @p rnd. The store is
     * re-threaded onto the word chain for its corrupted address, so
     * the index stays structurally consistent — only forwarding
     * *behavior* goes wrong. Addresses carry no data values in this
     * oracle model, so the strike is timing-only and invisible to
     * the golden checker: the canonical silent-data-corruption site.
     * @return false when no store is in flight (the strike lands in
     *         empty silicon and is trivially masked).
     */
    bool
    applyFault(faults::FaultMutation mutation, uint64_t rnd)
    {
        unsigned n_stores = 0;
        for (unsigned i = 0, idx = head; i < count;
             ++i, idx = (idx + 1) % entries.size()) {
            if (entries[idx].valid && entries[idx].isStore)
                ++n_stores;
        }
        if (n_stores == 0)
            return false;
        uint64_t pick = hashRange(n_stores, rnd, 0x6c73712dULL);
        unsigned slot = head;
        for (unsigned i = 0, idx = head; i < count;
             ++i, idx = (idx + 1) % entries.size()) {
            if (entries[idx].valid && entries[idx].isStore) {
                if (pick == 0) {
                    slot = idx;
                    break;
                }
                --pick;
            }
        }
        Entry &e = entries[slot];
        detachStore(slot);
        switch (mutation) {
          case faults::FaultMutation::BitFlip:
            // Flip an address bit above the word offset: the stored
            // addr is word-aligned and probes mask with &~7, so a
            // sub-word flip would be masked by construction.
            e.addr ^= uint64_t{1}
                << (3 + hashRange(29, rnd, 0x666c6970ULL));
            break;
          case faults::FaultMutation::StaleValue:
            // A latched old word index: alias the adjacent word.
            e.addr += 8;
            break;
          case faults::FaultMutation::ZeroEntry:
            e.addr = 0;
            break;
        }
        attachStore(slot);
        return true;
    }

  private:
    static constexpr int32_t kNil = -1;

    struct Entry
    {
        uint64_t seq = 0;
        uint64_t addr = 0;
        // Word-chain threading (stores only).
        int32_t node = kNil;     ///< owning word-chain node
        int32_t wordNext = kNil; ///< next-younger store, same word
        int32_t wordPrev = kNil; ///< next-older store, same word
        bool isStore = false;
        bool valid = false;
    };

    /** One live 8-byte word with at least one in-flight store. */
    struct WordNode
    {
        uint64_t word = 0;
        int32_t headSlot = kNil; ///< oldest store to the word
        int32_t tailSlot = kNil; ///< youngest store to the word
        int32_t bucketNext = kNil;
    };

    /** Power-of-two bucket count, at least 2x the queue size. */
    static unsigned
    bucketCountFor(unsigned size)
    {
        unsigned n = 2;
        while (n < 2 * size)
            n <<= 1;
        return n;
    }

    unsigned
    bucketOf(uint64_t word) const
    {
        return static_cast<unsigned>(
            splitMix64(word) & (buckets.size() - 1));
    }

    int32_t
    findNode(uint64_t word) const
    {
        int32_t n = buckets[bucketOf(word)];
        while (n != kNil && nodes[n].word != word)
            n = nodes[n].bucketNext;
        return n;
    }

    void
    attachStore(unsigned slot)
    {
        Entry &e = entries[slot];
        int32_t n = findNode(e.addr);
        if (n == kNil) {
            PRI_ASSERT(!freeNodes.empty(), "LSQ word-node pool dry");
            n = freeNodes.back();
            freeNodes.pop_back();
            WordNode &w = nodes[n];
            w.word = e.addr;
            w.headSlot = kNil;
            w.tailSlot = kNil;
            const unsigned b = bucketOf(e.addr);
            w.bucketNext = buckets[b];
            buckets[b] = n;
        }
        WordNode &w = nodes[n];
        // Append at the tail: seq monotonicity keeps the chain
        // age-sorted, so the head stays the oldest store.
        e.node = n;
        e.wordPrev = w.tailSlot;
        e.wordNext = kNil;
        if (w.tailSlot != kNil)
            entries[w.tailSlot].wordNext =
                static_cast<int32_t>(slot);
        else
            w.headSlot = static_cast<int32_t>(slot);
        w.tailSlot = static_cast<int32_t>(slot);
    }

    void
    detachStore(unsigned slot)
    {
        Entry &e = entries[slot];
        PRI_ASSERT(e.node != kNil, "store missing from word index");
        WordNode &w = nodes[e.node];
        if (e.wordPrev != kNil)
            entries[e.wordPrev].wordNext = e.wordNext;
        else
            w.headSlot = e.wordNext;
        if (e.wordNext != kNil)
            entries[e.wordNext].wordPrev = e.wordPrev;
        else
            w.tailSlot = e.wordPrev;
        if (w.headSlot == kNil) {
            // Chain empty: return the node to the pool.
            const unsigned b = bucketOf(w.word);
            int32_t *link = &buckets[b];
            while (*link != e.node)
                link = &nodes[*link].bucketNext;
            *link = w.bucketNext;
            freeNodes.push_back(e.node);
        }
        e.node = kNil;
        e.wordNext = kNil;
        e.wordPrev = kNil;
    }

    HotVec<Entry> entries;
    HotVec<WordNode> nodes;     ///< fixed pool, one per slot
    HotVec<int32_t> freeNodes;  ///< unused pool indices
    HotVec<int32_t> buckets;    ///< hash heads (pow2 size)
    unsigned head = 0;
    unsigned tail = 0;
    unsigned count = 0;
};

} // namespace pri::core

#endif // PRI_CORE_LSQ_HH
