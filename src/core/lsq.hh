/**
 * @file
 * Load/store queue.
 *
 * A circular buffer of in-flight memory operations. Addresses are
 * known at insertion (rename) — an oracle memory-dependence model
 * (DESIGN.md §5): loads forward from the youngest older store to the
 * same 8-byte word; there is no memory-order misspeculation.
 */

#ifndef PRI_CORE_LSQ_HH
#define PRI_CORE_LSQ_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace pri::core
{

/** Load/store queue with oracle forwarding. */
class Lsq
{
  public:
    explicit Lsq(unsigned size) : entries(size) {}

    bool full() const { return count == entries.size(); }
    unsigned occupancy() const { return count; }

    /** Insert a memory op at the tail; returns its slot index. */
    unsigned
    insert(uint64_t seq, uint64_t addr, bool is_store)
    {
        PRI_ASSERT(!full(), "LSQ overflow");
        const unsigned slot = tail;
        entries[slot] = Entry{seq, addr & ~uint64_t{7}, is_store,
                              true};
        tail = (tail + 1) % entries.size();
        ++count;
        return slot;
    }

    /**
     * True when an older in-flight store to the same 8-byte word
     * exists (store-to-load forwarding hit).
     */
    bool
    forwardHit(uint64_t load_seq, uint64_t addr) const
    {
        const uint64_t word = addr & ~uint64_t{7};
        for (unsigned i = 0, idx = head; i < count;
             ++i, idx = (idx + 1) % entries.size()) {
            const Entry &e = entries[idx];
            if (e.valid && e.isStore && e.seq < load_seq &&
                e.addr == word) {
                return true;
            }
        }
        return false;
    }

    /** Release the head entry (commit order). */
    void
    commitHead(uint64_t seq)
    {
        PRI_ASSERT(count > 0, "LSQ underflow");
        PRI_ASSERT(entries[head].valid && entries[head].seq == seq,
                   "LSQ commit out of order");
        entries[head].valid = false;
        head = (head + 1) % entries.size();
        --count;
    }

    /** Drop all entries younger than @p branch_seq (squash). */
    void
    squashYounger(uint64_t branch_seq)
    {
        while (count > 0) {
            const unsigned last =
                (tail + entries.size() - 1) % entries.size();
            if (!entries[last].valid ||
                entries[last].seq <= branch_seq) {
                break;
            }
            entries[last].valid = false;
            tail = last;
            --count;
        }
    }

  private:
    struct Entry
    {
        uint64_t seq = 0;
        uint64_t addr = 0;
        bool isStore = false;
        bool valid = false;
    };

    std::vector<Entry> entries;
    unsigned head = 0;
    unsigned tail = 0;
    unsigned count = 0;
};

} // namespace pri::core

#endif // PRI_CORE_LSQ_HH
