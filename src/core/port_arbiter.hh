/**
 * @file
 * PRF read-port arbiter for the register-read stages.
 *
 * Wide machines cannot afford 2*width read ports on the physical
 * register file (ports dominate RF area and delay; see
 * rename/prf_model.hh), so the select stage must arbitrate a finite
 * port budget. The policy modeled here is the classic age-ordered
 * greedy grant:
 *
 *  - Select already scans issue candidates oldest-first (ROB ring
 *    order), so callers naturally request in age order.
 *  - A request is all-or-nothing: an instruction needs every
 *    non-inlined source operand read in its RF stages, so it either
 *    receives all `need` ports or stays in the scheduler and retries
 *    next cycle (a structural port stall, counted by the core).
 *  - No reservation or carry-over: ports free up every cycle.
 *
 * Starvation is bounded by construction: the oldest ready requester
 * is always granted, because it is scanned first against the full
 * budget and the core validates budget >= the largest per-op need
 * (2 sources). Every denial therefore strictly ages the loser toward
 * the front of the scan, where it cannot lose again — the property
 * tests/test_port_arbiter.cpp checks against a naive reference.
 *
 * PRI's interaction — the reason this knob exists — is that inlined
 * operands are immediates in the map/payload and never touch the
 * PRF, so under PRI an instruction's `need` shrinks and the same
 * port budget serves more issues (paper §1's pressure argument
 * applied to ports, after Los, arXiv:2502.00147).
 *
 * A budget of 0 means unlimited: request() always grants and the
 * core skips arbitration entirely, keeping unlimited configurations
 * byte-identical to the pre-port-model simulator.
 */

#ifndef PRI_CORE_PORT_ARBITER_HH
#define PRI_CORE_PORT_ARBITER_HH

#include <cstdint>

namespace pri::core
{

/** Per-cycle, age-ordered, all-or-nothing read-port arbiter. */
class ReadPortArbiter
{
  public:
    /** @p ports per cycle; 0 = unlimited (always grants). */
    explicit ReadPortArbiter(unsigned ports = 0)
        : budget_(ports), left_(ports)
    {
    }

    unsigned budget() const { return budget_; }
    bool unlimited() const { return budget_ == 0; }

    /** Start a new cycle: the full budget becomes available. */
    void
    beginCycle()
    {
        left_ = budget_;
        deniedThisCycle_ = false;
    }

    /**
     * Request @p need ports for one instruction (callers iterate in
     * age order). Grants all of them or none.
     * @return true when granted; false when fewer than @p need
     *         ports remain this cycle (the instruction must retry).
     */
    bool
    request(unsigned need)
    {
        // Unlimited arbiters and fully-inlined (zero-need) ops
        // always issue, but still count as grants.
        if (budget_ != 0 && need != 0) {
            if (need > left_) {
                deniedThisCycle_ = true;
                ++deniedOps_;
                return false;
            }
            left_ -= need;
        }
        grantedPorts_ += need;
        ++grantedOps_;
        return true;
    }

    /**
     * Grant @p need ports beyond the remaining budget — the planted
     * InjectedFault::PortOverGrant bug (an arbiter off-by-one that
     * drives more reads than the array has bitlines). Tests only.
     */
    void
    overGrant(unsigned need)
    {
        left_ = 0;
        grantedPorts_ += need;
        ++grantedOps_;
    }

    /** Ports still grantable this cycle (unlimited: ~0u). */
    unsigned
    remaining() const
    {
        return budget_ == 0 ? ~0u : left_;
    }

    /** Any denial since beginCycle()? (One stall-cycle stat tick.) */
    bool deniedThisCycle() const { return deniedThisCycle_; }

    // Lifetime counters, for the property test and telemetry.
    uint64_t grantedPorts() const { return grantedPorts_; }
    uint64_t grantedOps() const { return grantedOps_; }
    uint64_t deniedOps() const { return deniedOps_; }

  private:
    unsigned budget_;
    unsigned left_;
    bool deniedThisCycle_ = false;
    uint64_t grantedPorts_ = 0;
    uint64_t grantedOps_ = 0;
    uint64_t deniedOps_ = 0;
};

} // namespace pri::core

#endif // PRI_CORE_PORT_ARBITER_HH
