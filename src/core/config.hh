/**
 * @file
 * Machine configuration (paper Table 1).
 *
 * Two presets: the conservative 4-wide current-generation model
 * (32-entry scheduler) and the aggressive 8-wide future model
 * (512-entry scheduler). Both use 512-entry ROBs, 256-entry LSQs,
 * and 64 INT + 64 FP physical registers by default.
 */

#ifndef PRI_CORE_CONFIG_HH
#define PRI_CORE_CONFIG_HH

#include <cstdint>

#include "faults/fault_spec.hh"
#include "memory/cache.hh"
#include "rename/rename_unit.hh"

namespace pri::core
{

/**
 * Checker-validation fault injection (tests only). Each fault is a
 * deliberately planted bug that corrupts state *silently* — i.e.
 * without tripping the always-on internal assertions — so the golden
 * -model diff checker can prove it detects real corruption. Never
 * set outside tests.
 */
enum class InjectedFault : uint8_t
{
    None = 0,
    /**
     * Branch-misprediction recovery restores the walker with a stale
     * dynamic-index counter: every value, address, and outcome drawn
     * after the first recovery silently shifts off the committed
     * path. Invisible to the dataflow asserts (the core stays
     * self-consistent); only a reference model can see it.
     */
    StaleWalkerGidx,
    /**
     * Recovery re-steers the mispredicted branch down the *predicted*
     * direction instead of the actual one: the core commits the wrong
     * path. Again self-consistent, hence silent without a reference.
     */
    CommitWrongPath,
    /**
     * The select stage stops issuing once kWedgeAfterCommits
     * instructions have committed: everything in flight drains, then
     * the machine sits with frozen ROB/scheduler/free-list occupancy
     * and never commits again. Models a wedged-scheduler livelock;
     * exists to prove the forward-progress watchdog detects the
     * stall, dumps the flight recorder, and reports it per-run
     * instead of spinning the whole sweep forever.
     */
    WedgeScheduler,
    /**
     * The read-port arbiter grants one request too many: once per
     * cycle, an instruction denied ports for its source reads is
     * issued anyway — and, since the array has no bitlines left to
     * drive, its dest value in the observed commit stream is
     * garbage. The machine itself stays self-consistent (same
     * pattern as CommitWrongPath), so the bug is silent without the
     * diff checker and only the golden model's independent
     * recomputation flags it. Requires a finite prfReadPorts
     * budget.
     */
    PortOverGrant,
};

/** Commit count at which WedgeScheduler freezes the select stage
 *  (early enough to wedge during any run's warmup). */
constexpr uint64_t kWedgeAfterCommits = 5000;

/** Full machine configuration for one simulation. */
struct CoreConfig
{
    unsigned width = 4;       ///< fetch/issue/commit width
    unsigned robSize = 512;
    unsigned lsqSize = 256;
    unsigned schedSize = 32;

    rename::RenameConfig rename;
    memory::HierarchyParams mem;

    // Functional units.
    unsigned numIntAlu = 4;
    unsigned numIntMultDiv = 1;
    unsigned numFpAlu = 2;
    unsigned numFpMultDiv = 1;
    unsigned numMemPorts = 2;

    /**
     * PRF read ports granted per cycle across both register classes
     * (0 = unlimited, the paper's implicit assumption and the exact
     * pre-port-model behaviour). When finite, the select stage
     * requests one port per non-inlined source operand through an
     * age-ordered all-or-nothing arbiter (core/port_arbiter.hh);
     * losers stay in the scheduler and retry next cycle, counted by
     * the core.prfPort* stats. PRI-inlined operands read their
     * immediate from the map/payload and consume zero ports. Must be
     * 0 or >= 2 (a 2-source op could never issue on fewer).
     */
    unsigned prfReadPorts = 0;

    // Pipeline shape (paper Figure 5):
    // Fetch Decode | Rename | Queue Sched | Disp Disp RF RF | Exe
    // | Retire | Commit  (12 stages).
    unsigned fetchToRename = 2;   ///< Fetch + Decode
    unsigned renameToSelect = 2;  ///< Queue + Sched entry
    unsigned selectToExe = 4;     ///< Disp, Disp, RF, RF
    unsigned exeToRetire = 1;     ///< writeback one stage later
    unsigned redirectPenalty = 2; ///< resolve -> fetch restart
    unsigned btbMissPenalty = 2;  ///< taken branch without a target

    /**
     * Reuse the per-cycle scratch buffers (event drain list, squash
     * free list) across cycles instead of allocating fresh vectors.
     * Timing-neutral; only simulator speed changes. The legacy
     * allocate-per-cycle path is kept so bench/perf_smoke can
     * measure the allocation churn the hoist removes.
     */
    bool hoistScratch = true;

    /**
     * Recover branch state through the fixed-capacity checkpoint
     * pool (index+generation references, RAS/arch undo journals)
     * instead of embedding full snapshot copies in every fetched
     * branch. Timing-identical to the legacy copy path as long as
     * the pool never fills (guaranteed at the default auto size);
     * only simulator speed and allocation behaviour change. The
     * legacy path is kept so bench/perf_smoke can measure the
     * copy/allocation churn the pool removes.
     */
    bool pooledCheckpoints = true;

    /**
     * Wake scheduler entries through per-(class, preg) consumer
     * lists and select from a seq-ordered ready list (the classic
     * broadcast wakeup/select structure) instead of re-polling every
     * scheduler entry's sources each cycle. Timing-identical by
     * construction: the ready list is a superset of the poll-ready
     * entries and select re-applies the exact polling predicate in
     * the same age order. Only simulator speed changes. The legacy
     * polling path is kept so bench/bench_sched can measure the
     * algorithmic win; the PRI_LEGACY_WAKEUP environment variable
     * forces it for whole-binary spot checks.
     */
    bool eventWakeup = true;

    /**
     * Fetch through pre-decoded micro-traces: the front-end walker
     * replays flat MicroOp arrays compiled once per program and
     * shared through the global TraceCache, instead of re-deriving
     * operands, targets, and hash draws from the StaticInst per
     * dynamic instance. Byte-identical to the legacy decode path by
     * construction (same draws in the same order; DESIGN.md §13);
     * only simulator speed changes. The legacy path is kept so
     * bench/perf_smoke can measure the decode cost the traces
     * remove; the PRI_LEGACY_WALKER environment variable forces it
     * for whole-binary spot checks.
     */
    bool tracedFrontEnd = true;

    /**
     * Checkpoint-pool slots; 0 = auto (robSize + fetchQueueSize,
     * one slot per branch that can possibly be in flight, so fetch
     * never stalls on the pool). Smaller values model a finite
     * hardware checkpoint file: exhaustion stalls fetch and is
     * counted in core.ckptPoolStalls.
     */
    unsigned ckptPoolSlots = 0;

    /** Planted bug for diff-checker validation; see InjectedFault. */
    InjectedFault injectFault = InjectedFault::None;

    /**
     * Declarative transient fault (soft-error campaign injection,
     * DESIGN.md §17). Unlike InjectedFault — persistent logic bugs
     * planted to validate the checker — this corrupts one storage
     * cell exactly once at a deterministic, counter-derived point
     * and then lets the machine run; the campaign layer classifies
     * what happened. Disabled (site None) in normal runs.
     */
    faults::FaultSpec faultSpec;

    /**
     * Forward-progress watchdog. When enabled, the cycle loop raises
     * a structured core::ProgressStallError — carrying occupancy
     * state and the flight-recorder trace — instead of spinning
     * forever on a wedged machine. Two detectors:
     *
     *  - commit stall: no instruction has committed for
     *    watchdogCycles cycles (replaces the old hard-coded 500k
     *    panic). The threshold must sit far above the longest legal
     *    commit gap (an L2-miss burst is a few hundred cycles; a
     *    full-ROB drain behind one is a few thousand), so the
     *    default never trips on real configurations.
     *
     *  - frozen occupancy (livelock): across watchdogAuditWindows
     *    consecutive audit windows (watchdogCycles / 8 cycles each),
     *    *nothing* moved — no commit, fetch, issue, or replay, and
     *    ROB / scheduler / fetch-queue / free-list occupancy all
     *    identical. A hard wedge is caught in half the commit-stall
     *    threshold; anything still executing (even uselessly) does
     *    not match and falls through to the commit-stall detector.
     *
     * Detection is pure observation: enabling the watchdog changes
     * no simulation outcome, so reports stay byte-identical.
     */
    bool watchdogEnabled = true;
    uint64_t watchdogCycles = 500000;
    unsigned watchdogAuditWindows = 4;

    /**
     * Hard per-run cycle budget (0 = unlimited): exceeding it raises
     * ProgressStallError. Sweep drivers and the config fuzzer set
     * this so a hang inside one point is a reported per-point
     * failure rather than a CI timeout.
     */
    uint64_t cycleBudget = 0;

    /** Cycles between livelock-audit snapshots. */
    uint64_t
    watchdogAuditWindow() const
    {
        const uint64_t w = watchdogCycles / 8;
        return w < 1024 ? 1024 : w;
    }

    /** Effective checkpoint-pool capacity. */
    unsigned
    ckptPoolSize() const
    {
        return ckptPoolSlots ? ckptPoolSlots
                             : robSize + fetchQueueSize();
    }

    /** Fetch-buffer capacity between fetch and rename. */
    unsigned fetchQueueSize() const { return 3 * width; }

    /** Table 1, left column (with the given rename scheme). */
    static CoreConfig fourWide(const rename::RenameConfig &rn);
    /** Table 1, right column. */
    static CoreConfig eightWide(const rename::RenameConfig &rn);

    /** Narrow-value width the paper assigns per machine width. */
    static unsigned
    narrowBitsForWidth(unsigned width)
    {
        return width >= 8 ? 10 : 7;
    }
};

} // namespace pri::core

#endif // PRI_CORE_CONFIG_HH
