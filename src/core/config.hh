/**
 * @file
 * Machine configuration (paper Table 1).
 *
 * Two presets: the conservative 4-wide current-generation model
 * (32-entry scheduler) and the aggressive 8-wide future model
 * (512-entry scheduler). Both use 512-entry ROBs, 256-entry LSQs,
 * and 64 INT + 64 FP physical registers by default.
 */

#ifndef PRI_CORE_CONFIG_HH
#define PRI_CORE_CONFIG_HH

#include <cstdint>

#include "memory/cache.hh"
#include "rename/rename_unit.hh"

namespace pri::core
{

/**
 * Checker-validation fault injection (tests only). Each fault is a
 * deliberately planted bug that corrupts state *silently* — i.e.
 * without tripping the always-on internal assertions — so the golden
 * -model diff checker can prove it detects real corruption. Never
 * set outside tests.
 */
enum class InjectedFault : uint8_t
{
    None = 0,
    /**
     * Branch-misprediction recovery restores the walker with a stale
     * dynamic-index counter: every value, address, and outcome drawn
     * after the first recovery silently shifts off the committed
     * path. Invisible to the dataflow asserts (the core stays
     * self-consistent); only a reference model can see it.
     */
    StaleWalkerGidx,
    /**
     * Recovery re-steers the mispredicted branch down the *predicted*
     * direction instead of the actual one: the core commits the wrong
     * path. Again self-consistent, hence silent without a reference.
     */
    CommitWrongPath,
};

/** Full machine configuration for one simulation. */
struct CoreConfig
{
    unsigned width = 4;       ///< fetch/issue/commit width
    unsigned robSize = 512;
    unsigned lsqSize = 256;
    unsigned schedSize = 32;

    rename::RenameConfig rename;
    memory::HierarchyParams mem;

    // Functional units.
    unsigned numIntAlu = 4;
    unsigned numIntMultDiv = 1;
    unsigned numFpAlu = 2;
    unsigned numFpMultDiv = 1;
    unsigned numMemPorts = 2;

    // Pipeline shape (paper Figure 5):
    // Fetch Decode | Rename | Queue Sched | Disp Disp RF RF | Exe
    // | Retire | Commit  (12 stages).
    unsigned fetchToRename = 2;   ///< Fetch + Decode
    unsigned renameToSelect = 2;  ///< Queue + Sched entry
    unsigned selectToExe = 4;     ///< Disp, Disp, RF, RF
    unsigned exeToRetire = 1;     ///< writeback one stage later
    unsigned redirectPenalty = 2; ///< resolve -> fetch restart
    unsigned btbMissPenalty = 2;  ///< taken branch without a target

    /**
     * Reuse the per-cycle scratch buffers (event drain list, squash
     * free list) across cycles instead of allocating fresh vectors.
     * Timing-neutral; only simulator speed changes. The legacy
     * allocate-per-cycle path is kept so bench/perf_smoke can
     * measure the allocation churn the hoist removes.
     */
    bool hoistScratch = true;

    /**
     * Recover branch state through the fixed-capacity checkpoint
     * pool (index+generation references, RAS/arch undo journals)
     * instead of embedding full snapshot copies in every fetched
     * branch. Timing-identical to the legacy copy path as long as
     * the pool never fills (guaranteed at the default auto size);
     * only simulator speed and allocation behaviour change. The
     * legacy path is kept so bench/perf_smoke can measure the
     * copy/allocation churn the pool removes.
     */
    bool pooledCheckpoints = true;

    /**
     * Wake scheduler entries through per-(class, preg) consumer
     * lists and select from a seq-ordered ready list (the classic
     * broadcast wakeup/select structure) instead of re-polling every
     * scheduler entry's sources each cycle. Timing-identical by
     * construction: the ready list is a superset of the poll-ready
     * entries and select re-applies the exact polling predicate in
     * the same age order. Only simulator speed changes. The legacy
     * polling path is kept so bench/bench_sched can measure the
     * algorithmic win; the PRI_LEGACY_WAKEUP environment variable
     * forces it for whole-binary spot checks.
     */
    bool eventWakeup = true;

    /**
     * Checkpoint-pool slots; 0 = auto (robSize + fetchQueueSize,
     * one slot per branch that can possibly be in flight, so fetch
     * never stalls on the pool). Smaller values model a finite
     * hardware checkpoint file: exhaustion stalls fetch and is
     * counted in core.ckptPoolStalls.
     */
    unsigned ckptPoolSlots = 0;

    /** Planted bug for diff-checker validation; see InjectedFault. */
    InjectedFault injectFault = InjectedFault::None;

    /** Effective checkpoint-pool capacity. */
    unsigned
    ckptPoolSize() const
    {
        return ckptPoolSlots ? ckptPoolSlots
                             : robSize + fetchQueueSize();
    }

    /** Fetch-buffer capacity between fetch and rename. */
    unsigned fetchQueueSize() const { return 3 * width; }

    /** Table 1, left column (with the given rename scheme). */
    static CoreConfig fourWide(const rename::RenameConfig &rn);
    /** Table 1, right column. */
    static CoreConfig eightWide(const rename::RenameConfig &rn);

    /** Narrow-value width the paper assigns per machine width. */
    static unsigned
    narrowBitsForWidth(unsigned width)
    {
        return width >= 8 ? 10 : 7;
    }
};

} // namespace pri::core

#endif // PRI_CORE_CONFIG_HH
