/**
 * @file
 * The out-of-order core: a 12-stage, N-wide superscalar timing model
 * with speculative scheduling and selective replay, derived from the
 * paper's SimpleScalar/sim-outorder base (paper §4, Figure 5).
 *
 * Pipeline: Fetch Decode | Rename | Queue Sched | Disp Disp RF RF |
 * Exe | Retire | Commit. Instructions are scheduled assuming fixed
 * latencies (loads assume DL1 hits); latency mispredictions replay
 * the dependent instructions only (selective recovery). Branches
 * execute down the real wrong path of the synthetic program until
 * they resolve. Register management — including Physical Register
 * Inlining and Early Release — is delegated to rename::RenameUnit.
 */

#ifndef PRI_CORE_CORE_HH
#define PRI_CORE_CORE_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "branch/predictor.hh"
#include "common/arena.hh"
#include "common/flight_recorder.hh"
#include "common/stats.hh"
#include "common/undo_journal.hh"
#include "core/checkpoint_pool.hh"
#include "core/config.hh"
#include "core/lsq.hh"
#include "core/port_arbiter.hh"
#include "memory/cache.hh"
#include "rename/rename_unit.hh"
#include "workload/walker.hh"

namespace pri::workload
{
class ReplayTape;
} // namespace pri::workload

namespace pri::core
{

/** Sentinel "never" cycle. */
constexpr uint64_t kNever = ~uint64_t{0};

/**
 * Hot half of a reorder-buffer entry: exactly the state the
 * per-cycle wakeup/select loops read (payload RAM, readiness,
 * scheduling flags). Kept dense and separate from RobCold so
 * processEvents/selectStage touch ~1/10th of the bytes the old
 * monolithic RobEntry dragged through the cache.
 */
struct RobHot
{
    uint64_t seq = 0;      ///< selection age (== wi.seq)
    uint64_t slotGen = 0;  ///< bumped on reuse; filters stale events
    uint64_t readyForSelect = 0;

    // Payload RAM: source operands as renamed.
    std::array<rename::SrcRead, 2> src;

    isa::OpClass cls = isa::OpClass::Nop;
    isa::RegClass dstCls = isa::RegClass::Int;
    isa::PhysRegId dstPreg = isa::kInvalidPhysReg;

    bool valid = false;
    bool inScheduler = false;
    bool heldSlot = false; ///< selected; still holds a sched slot
    bool inReadyList = false; ///< linked into the event ready list
    bool hasDst = false;
    bool isBranch = false;
};

/**
 * Simulator-side wakeup/select instrumentation, kept as plain
 * counters *outside* the StatGroup on purpose: the full stats report
 * must stay byte-identical between the event-driven and legacy
 * polling paths (the determinism tests compare it verbatim), so
 * anything that differs by construction between the two wakeup
 * implementations lives here and is read only by the benches.
 */
struct WakeupTelemetry
{
    uint64_t broadcasts = 0;     ///< availability broadcasts walked
    uint64_t consumersWoken = 0; ///< consumers examined by broadcasts
    uint64_t wakeupsDrained = 0; ///< timed wakeups verified
    uint64_t readyInserts = 0;   ///< ready-list insertions
    uint64_t selectScans = 0;    ///< entries examined by select
    uint64_t readyOccAccum = 0;  ///< per-cycle select-pool occupancy
};

/**
 * Cold half of a reorder-buffer entry: retire/commit bookkeeping and
 * branch-recovery state, touched once per instruction rather than
 * every scheduling cycle. With pooled checkpoints a branch carries
 * only the 8-byte CkptRef; the embedded snapshot fields at the
 * bottom exist solely for the legacy (pooledCheckpoints=false) copy
 * path and are left untouched otherwise.
 */
struct RobCold
{
    workload::WInst wi;

    isa::RegId dst = isa::noReg();
    uint64_t dstGen = 0;
    rename::MapEntry prevMap;
    uint64_t prevGen = 0;
    /** Dest value as read through the rename unit right after
     *  writeback (commit-record fallback once the register has been
     *  legitimately early-released). */
    uint64_t wbValue = 0;

    // Progress.
    bool executed = false;
    bool retired = false;
    bool hasLsq = false;
    /** PortOverGrant already corrupted this result (a replayed op
     *  may be over-granted twice; XOR garbage must apply once). */
    bool portCorrupted = false;
    unsigned replays = 0;
    uint64_t fetchCycle = 0;
    uint64_t renameCycle = 0;

    // Branch state.
    bool predTaken = false;
    bool usedPredictor = false; ///< conditional: tables were read
    bool resolvedMispredict = false;
    bool ckptResolved = false;
    uint64_t predTarget = 0;
    rename::CkptId ckptId = 0;
    branch::PredictToken bpTok;
    CkptRef ckptRef; ///< pooled front-end recovery state

    // Legacy copy-everywhere checkpointing only:
    workload::WalkerCkpt walkerCkpt;
    branch::PredictorSnapshotFull bpSnap;
    /** Speculative architectural values at this branch (both
     *  classes), for dataflow-check recovery. */
    std::array<uint64_t, 2 * isa::kNumLogicalRegs> archSnap{};
};

/**
 * Hot-path counters interned against the StatGroup once at core
 * construction. The cycle loop updates these through the cached
 * references; the string-keyed map is only consulted when stats are
 * read out by name (StatGroup::scalarValue / report).
 */
struct CoreStats
{
    explicit CoreStats(StatGroup &sg);

    StatScalar &replays;
    StatScalar &loadForwards;
    StatScalar &loadMisses;
    StatScalar &branchMispredicts;
    StatScalar &targetMispredicts;
    StatScalar &squashedInsts;
    StatScalar &committedBranches;
    StatScalar &committedInsts;
    StatScalar &issuedInsts;
    StatScalar &stallRobFull;
    StatScalar &stallSchedFull;
    StatScalar &stallLsqFull;
    StatScalar &stallNoPregInt;
    StatScalar &stallNoPregFp;
    StatScalar &renamedInsts;
    StatScalar &fetchStallCycles;
    StatScalar &icacheMissStalls;
    StatScalar &btbMisses;
    StatScalar &fetchedInsts;
    /** Reallocations of cycle-loop scratch/wheel buffers. Zero in
     *  steady state once the buffers are hoisted and warmed up. */
    StatScalar &scratchGrowths;
    /** Branch checkpoints taken at fetch (pooled or legacy). */
    StatScalar &ckptsTaken;
    /** Checkpoints restored by misprediction recovery. */
    StatScalar &ckptsRestored;
    /** Fetch cycles stalled because the checkpoint pool was full. */
    StatScalar &ckptPoolStalls;
};

/**
 * Architectural view of one committed instruction, handed to the
 * retire-time observer at the commit stage. The destination value is
 * read back *through the rename machinery* (the PRF entry while the
 * producer still owns it, else the value captured at writeback), so
 * rename/free-list corruption is observable here rather than masked
 * by the walker's functional bookkeeping.
 */
struct CommitRecord
{
    uint64_t seq = 0;   ///< walker fetch sequence (diagnostics)
    uint64_t pc = 0;
    isa::OpClass op = isa::OpClass::Nop;
    isa::RegId dst = isa::noReg();
    uint64_t value = 0;   ///< dest value via the rename unit / PRF
    uint64_t memAddr = 0; ///< effective address (loads/stores)
    bool taken = false;   ///< actual direction (branches)
    uint64_t target = 0;  ///< actual taken-path target (branches)
};

/**
 * Retire-time observer: invoked once per committed instruction, in
 * commit order, from the commit stage. Implemented by the golden
 * model's DiffChecker; null (the default) costs the cycle loop one
 * predictable branch.
 */
class CommitObserver
{
  public:
    virtual ~CommitObserver() = default;
    virtual void onCommit(const CommitRecord &rec) = 0;
};

/**
 * Structured forward-progress diagnostic raised by the watchdog: a
 * snapshot of the machine's occupancy at detection time, so the
 * harness (and a human reading the error table) can tell a commit
 * stall from a hard livelock from a blown budget without a rerun.
 */
struct ProgressStall
{
    enum class Kind : uint8_t
    {
        CommitStall, ///< no commit for watchdogCycles cycles
        Livelock,    ///< occupancy frozen across audit windows
        CycleBudget, ///< cfg.cycleBudget exceeded
        WallClock,   ///< per-run wall-clock deadline exceeded
    };

    Kind kind = Kind::CommitStall;
    uint64_t cycle = 0;
    uint64_t lastCommitCycle = 0;
    uint64_t committed = 0;
    unsigned robCount = 0;
    unsigned schedCount = 0;
    unsigned schedHeld = 0;
    unsigned fetchCount = 0;
    unsigned occInt = 0; ///< INT PRF occupancy
    unsigned occFp = 0;  ///< FP PRF occupancy

    /** Stable display name of @p kind ("commit-stall", ...). */
    static const char *kindName(Kind kind);

    /** One-line human-readable summary of the stall state. */
    std::string describe() const;
};

/**
 * Exception carrying a ProgressStall out of the cycle loop. what()
 * holds the described stall, the active run context, and the
 * flight-recorder trace; the runner maps it to a per-run outcome.
 */
class ProgressStallError : public std::runtime_error
{
  public:
    ProgressStallError(const ProgressStall &stall, std::string msg)
        : std::runtime_error(std::move(msg)), stall(stall)
    {
    }

    ProgressStall stall;
};

/** Execution-driven out-of-order core simulator. */
class OutOfOrderCore
{
  public:
    /**
     * @p shared_traces, when non-null, supplies the compiled
     * micro-traces directly (batched lanes of one SweepBatch share a
     * single acquisition) instead of acquiring them from the global
     * TraceCache; ignored unless cfg.tracedFrontEnd. @p tape, when
     * non-null, is a shared committed-path ReplayTape handed to the
     * walker (requires traced mode; see ReplayTape). Both default to
     * null, which is the exact legacy construction path.
     */
    OutOfOrderCore(
        const CoreConfig &config,
        const workload::SyntheticProgram &program, StatGroup &stats,
        std::shared_ptr<const workload::trace::ProgramTraces>
            shared_traces = nullptr,
        const workload::ReplayTape *tape = nullptr);

    /**
     * Simulate until @p commit_target instructions commit (or
     * @p max_cycles elapse, with a warning).
     */
    void run(uint64_t commit_target, uint64_t max_cycles = kNever);

    /** Start a fresh measurement window (after warmup). */
    void beginMeasurement();

    uint64_t cycles() const { return cycle; }
    uint64_t committedInsts() const { return nCommitted; }

    /** Committed IPC inside the current measurement window. */
    double ipc() const;

    /** Average PRF occupancy (INT) in the measurement window. */
    double avgIntOccupancy() const;
    /** Average PRF occupancy (FP) in the measurement window. */
    double avgFpOccupancy() const;

    StatGroup &stats() { return sg; }
    rename::RenameUnit &renameUnit() { return rn; }
    memory::MemoryHierarchy &memory() { return mem; }

    /** Validate cross-module invariants; panics on violation. */
    void checkInvariants() const;

    /** Install (or clear, with nullptr) the retire-time observer.
     *  The observer must outlive the core or be cleared first. */
    void setCommitObserver(CommitObserver *obs) { observer = obs; }

    /** Wakeup/select instrumentation (bench-only; see the type). */
    const WakeupTelemetry &wakeupTelemetry() const { return wk; }

    /**
     * Order-sensitive hash over every committed instruction's (pc,
     * dest value read through the rename unit / PRF). Identical
     * runs share it; corruption of a committed value changes it
     * even when no aggregate stat moves. The fault campaign's
     * Masked-vs-SDC discriminator when the golden checker is off.
     */
    uint64_t archSignature() const { return archSig_; }

    /** Has the configured transient fault (cfg.faultSpec) fired? */
    bool faultFired() const { return faultFired_; }

    /**
     * Arm a wall-clock budget for subsequent run() calls: once
     * @p timeout_ms milliseconds elapse (checked every few thousand
     * cycles), run() raises ProgressStallError{WallClock}. 0 clears
     * the deadline. Observation only — a run that finishes within
     * its budget is byte-identical to an unbudgeted one.
     */
    void setWallClockBudget(uint64_t timeout_ms);

  private:
    enum class EventType : uint8_t
    {
        ExeStart,
        ExeComplete,
        Retire,
    };

    struct Event
    {
        EventType type;
        uint32_t robIdx;
        uint64_t slotGen;
    };

    /** A squashed destination awaiting its free-list return. */
    struct Freed
    {
        isa::RegClass cls;
        isa::PhysRegId preg;
        uint64_t gen;
    };

    // --- pipeline stages (called once per cycle) ---
    void processEvents();
    void commitStage();
    void selectStage();
    void renameStage();
    void fetchStage();

    // --- event handlers ---
    void onExeStart(uint32_t idx);
    void onExeComplete(uint32_t idx);
    void onRetire(uint32_t idx);

    void resolveBranch(uint32_t idx);
    void squashAfter(uint32_t branch_idx);

    void scheduleEvent(uint64_t when, EventType type, uint32_t idx);
    void replayInst(uint32_t idx);

    // --- event-driven wakeup (cfg.eventWakeup) ---
    /** Ready-list head for (cls, preg)'s consumer list. */
    int32_t &consHeadRef(isa::RegClass cls, isa::PhysRegId p);
    /** Link source slot @p s of entry @p idx onto its producer's
     *  consumer list (rename time). */
    void consLink(uint32_t idx, unsigned s);
    /** Unlink source slot @p s (completion / squash / inline). */
    void consUnlink(uint32_t idx, unsigned s);
    /** Insert into the seq-sorted ready list (drops any pending
     *  timed wakeup). */
    void readyInsert(uint32_t idx);
    /** Remove from the ready list (issue / squash). */
    void readyRemove(uint32_t idx);
    /** Predicted earliest select cycle for @p idx from current
     *  specAvail; false when a source's producer is unscheduled
     *  (its broadcast re-verifies). */
    bool predictReadyCycle(uint32_t idx, uint64_t &when) const;
    /** Re-arm a parked entry that failed select's readiness
     *  recheck (prediction regressed while parked). */
    void scanDefer(uint32_t idx);
    /** Schedule (or pull earlier) a timed wakeup for @p idx. */
    void scheduleWake(uint32_t idx, uint64_t when);
    /** Unlink a pending timed wakeup without verifying it. */
    void wakeUnlink(uint32_t idx);
    /** Drain this cycle's wake bucket, verifying each entry. */
    void drainWakeups();
    /**
     * Recompute readiness of a waiting scheduler entry: insert into
     * the ready list if every source is spec-ready now, schedule a
     * timed wakeup if every source has a finite predicted time, or
     * leave it to its unscheduled producer's broadcast otherwise.
     */
    void wakeVerify(uint32_t idx);
    /** Walk (cls, preg)'s consumer list, re-verifying every waiting
     *  consumer after its predicted availability changed. */
    void broadcastAvail(isa::RegClass cls, isa::PhysRegId preg);
    /** O(consumers) ideal-PRI payload rewrite via the consumer
     *  list (paper §3.3's payload-CAM search-and-update). */
    void idealInlineRewrite(isa::RegClass cls, isa::PhysRegId preg,
                            uint64_t value);

    /** Release a pooled checkpoint and trim the undo journals to
     *  the oldest checkpoint still live. */
    void releaseCkptRef(CkptRef &ref);

    /** Flush the fetch ring, releasing any pooled refs it holds. */
    void flushFetchBuffer();

    /** Restore the walker from a branch checkpoint, applying the
     *  configured fault injection (checker validation only). */
    void restoreWalker(const workload::WalkerCkpt &ckpt);

    /** Steer the restored walker past a resolved branch (actual
     *  outcome, unless fault injection commits the wrong path). */
    void steerResolvedBranch(const RobCold &c);

    /** Dest value read through the rename unit: the PRF entry while
     *  the producer still owns (preg, gen), else @p fallback. */
    uint64_t readThroughValue(isa::RegClass cls, isa::PhysRegId preg,
                              uint64_t gen, uint64_t fallback) const;

    /** Any valid, unretired entry in the non-circular ROB index
     *  range [lo, hi)? Serviced by the unretiredBits bitmap. */
    bool anyUnretiredInRange(uint32_t lo, uint32_t hi) const;

    // --- transient-fault injection (cfg.faultSpec) ---
    /**
     * Count one access to @p site for the NthAccess trigger; arms
     * the pending flag once the configured ordinal is reached. The
     * strike itself is deferred to the top of the next cycle so
     * firing is a single sequencing point regardless of which stage
     * counted the access (byte-identical across batch/jobs paths).
     */
    void noteFaultAccess(faults::FaultSite site);
    /** Apply the configured mutation at the configured site, once.
     *  A site with no live target fires as a harmless no-op. */
    void fireFault();
    /** WakeLink site: corrupt one consumer-list link. */
    bool applyWakeLinkFault(uint64_t rnd);

    // --- forward-progress watchdog ---
    /** Per-cycle progress checks; raises ProgressStallError. */
    void watchdogCheck();
    /** Build + throw the structured stall diagnostic. */
    [[noreturn]] void raiseStall(ProgressStall::Kind kind);

    // --- PRF read-port arbitration (cfg.prfReadPorts != 0) ---
    /**
     * Request read ports for every non-inlined source of @p idx
     * (select calls in age order, after the FU check and before any
     * resource is consumed). Grants update the port stats; a denial
     * counts a structural stall and leaves the entry in the
     * scheduler to retry next cycle. Under
     * InjectedFault::PortOverGrant the first denial each cycle is
     * granted anyway and the result corrupted (see the fault doc).
     */
    bool portRequest(uint32_t idx);

    bool srcSpecReady(const rename::SrcRead &s) const;
    bool srcActualReady(const rename::SrcRead &s) const;
    uint64_t &specAvail(isa::RegClass cls, isa::PhysRegId p);
    uint64_t &actualAvail(isa::RegClass cls, isa::PhysRegId p);

    unsigned fuIndex(isa::OpClass cls) const;

    CoreConfig cfg;
    StatGroup &sg;
    CoreStats st;
    const workload::SyntheticProgram &prog;
    /** Compiled micro-traces shared via the global TraceCache; null
     *  on the legacy decode path. Declared before the walker, which
     *  borrows the raw pointer for its lifetime. */
    std::shared_ptr<const workload::trace::ProgramTraces> traces;
    workload::Walker walker;
    rename::RenameUnit rn;
    memory::MemoryHierarchy mem;
    branch::CombinedPredictor predictor;
    branch::Btb btb;
    branch::Ras ras;
    Lsq lsq;

    // ROB (circular, struct-of-arrays: hot scheduling state dense,
    // cold retire/bookkeeping state aside). All the per-cycle hot
    // containers below are HotVec: heap-backed when built normally,
    // packed into the ambient LaneArena when the core is constructed
    // under an ArenaScope (batched sweeps; DESIGN.md §14).
    HotVec<RobHot> robHot;
    HotVec<RobCold> robCold;
    /** One bit per ROB slot: valid && !retired. Lets the retire
     *  stage's "all older retired?" privilege check scan words
     *  instead of walking entries. */
    HotVec<uint64_t> unretiredBits;
    uint32_t robHead = 0;
    uint32_t robTail = 0;
    uint32_t robCount = 0;

    // Scheduler: indices of ROB entries waiting to issue, plus a
    // count of slots held by selected-but-incomplete instructions
    // (selective recovery keeps them allocated until completion).
    // schedQueue is the legacy polling structure (eventWakeup off);
    // schedCount_ tracks waiting-entry occupancy in both modes.
    HotVec<uint32_t> schedQueue;
    unsigned schedHeld = 0;
    unsigned schedCount_ = 0;

    // Event-driven wakeup state (cfg.eventWakeup; all fixed-size,
    // allocated once in the constructor).
    //
    // Consumer lists: one intrusive doubly-linked list per
    // (class, preg), holding every in-flight source operand renamed
    // to that register. Node id = robIdx * 2 + srcSlot; a node is
    // linked exactly while its SrcRead is a live pointer read
    // (valid && !imm && refHeld), i.e. the same set the legacy
    // ideal-inline ROB walk would rewrite.
    std::array<HotVec<int32_t>, 2> consHead_;
    struct ConsLinks
    {
        int32_t next = -1;
        int32_t prev = -1;
    };
    HotVec<ConsLinks> cons_; ///< one pair per source node

    // Ready set: one bit per ROB slot; a *superset* of the
    // poll-ready entries (lazy: entries whose predicted readiness
    // regressed stay set and are skipped by select's exact polling
    // recheck). Age order is free — iterating the ring from robHead
    // visits slots in rename (seq) order — so insert/remove are
    // single bit flips instead of sorted-list surgery.
    HotVec<uint64_t> readyBits_;
    unsigned readyCount_ = 0;

    // Timed wakeups: a bucket ring keyed by cycle (same horizon as
    // the event wheel), intrusively linked so each entry has at most
    // one pending wakeup. Deliberately separate from the event wheel
    // so wake traffic cannot perturb core.scratchGrowths.
    HotVec<int32_t> wakeBucketHead_;
    struct WakeLinks
    {
        int32_t next = -1;
        int32_t prev = -1;
        uint64_t at = kNever; ///< kNever = no pending wakeup
    };
    HotVec<WakeLinks> wake_; ///< one record per ROB slot

    WakeupTelemetry wk;

    // PRF read-port arbitration (cfg.prfReadPorts != 0; inert and
    // cost-free when unlimited). The stat pointers are registered
    // only for finite budgets: StatGroup::report() prints every
    // registered stat, and unlimited-port reports must stay
    // byte-identical to the pre-port-model output.
    ReadPortArbiter portArb_;
    StatScalar *stPortReads = nullptr;      ///< ports granted
    StatScalar *stPortInlineBypass = nullptr; ///< imm srcs at issue
    StatScalar *stPortStallOps = nullptr;   ///< denied issue attempts
    StatScalar *stPortStallCycles = nullptr; ///< cycles with a denial
    bool portFaultFiredThisCycle_ = false;

    // Fetch queue between fetch and rename: a fixed ring of
    // cfg.fetchQueueSize() slots whose storage (including the legacy
    // walker-checkpoint stack vectors) is reused forever.
    struct FetchedInst
    {
        workload::WInst wi;
        uint64_t readyAt = 0;
        uint64_t fetchCycle = 0;
        bool isBranch = false;
        bool predTaken = false;
        uint64_t predTarget = 0;
        bool usedPredictor = false;
        branch::PredictToken bpTok;
        CkptRef ckptRef; ///< pooled front-end recovery state
        // Legacy copy-everywhere checkpointing only:
        branch::PredictorSnapshotFull bpSnap;
        workload::WalkerCkpt walkerCkpt;
    };
    HotVec<FetchedInst> fetchBuf;
    uint32_t fetchHead = 0;
    uint32_t fetchCount = 0;
    uint64_t fetchResumeCycle = 0;

    // Pooled branch checkpointing (cfg.pooledCheckpoints).
    CheckpointPool ckptPool;
    /** Undo journal for specArch: one record per renamed
     *  destination, unwound on misprediction recovery instead of
     *  copying the whole array per branch. */
    struct ArchUndo
    {
        uint64_t value;
        uint16_t flat;
    };
    UndoJournal<ArchUndo> archJournal;

    // Per-physical-register availability (timing scoreboard).
    std::array<HotVec<uint64_t>, 2> specAvail_;
    std::array<HotVec<uint64_t>, 2> actualAvail_;

    // Speculative architectural values, for dataflow checking.
    std::array<uint64_t, 2 * isa::kNumLogicalRegs> specArch{};

    // Event wheel.
    static constexpr unsigned kWheelSize = 1024;
    std::array<HotVec<Event>, kWheelSize> wheel;

    /**
     * Wakeups predicted at most this many cycles out skip the wake
     * wheel and park in the ready list immediately; select's
     * predicate skips them until the cycle arrives. One lazy scan
     * per cycle costs less than a wheel link/unlink pair, so the
     * wheel is reserved for far wakeups (load misses, long FP).
     */
    static constexpr uint64_t kNearWake = 8;

    // Per-cycle scratch, hoisted out of the cycle loop so steady
    // state allocates nothing (cfg.hoistScratch). The buffers trade
    // storage with their producers (wheel slot / local) via swap,
    // so capacity is retained and recirculated.
    HotVec<Event> eventScratch;   ///< completions/retires
    HotVec<Event> eventScratch2;  ///< execution starts
    HotVec<Freed> freedScratch;

    CommitObserver *observer = nullptr;

    /** This thread's flight recorder, resolved once at construction
     *  (each simulation runs entirely on the thread that built it). */
    FlightRecorder *flight;

    // Forward-progress watchdog state (observation only).
    /** Occupancy/activity signature compared across audit windows. */
    std::array<uint64_t, 10> wdSig{};
    uint64_t wdNextAudit = 0;
    unsigned wdFrozenWindows = 0;
    bool wdSigValid = false;
    std::chrono::steady_clock::time_point wdDeadline{};
    bool wdHasDeadline = false;

    // Transient-fault injection state (cfg.faultSpec; inert when
    // the spec is disabled).
    uint64_t archSig_ = 0;
    uint64_t faultFireCycle_ = kNever; ///< cycle-derived triggers
    uint64_t faultAccesses_ = 0;       ///< NthAccess counter
    bool faultPending_ = false; ///< access trigger reached; fire next
    bool faultFired_ = false;

    uint64_t cycle = 0;
    uint64_t nCommitted = 0;
    uint64_t markCycle = 0;
    uint64_t markCommitted = 0;
    double markOccIntAccum = 0;
    double markOccFpAccum = 0;
    uint64_t lastCommitCycle = 0;
};

} // namespace pri::core

#endif // PRI_CORE_CORE_HH
