#include "core.hh"

#include <algorithm>
#include <bit>

#include "common/hashing.hh"
#include "common/logging.hh"
#include "common/strfmt.hh"
#include "isa/op_class.hh"
#include "workload/trace/trace_cache.hh"

namespace pri::core
{

CoreStats::CoreStats(StatGroup &sg)
    : replays(sg.scalar("core.replays")),
      loadForwards(sg.scalar("core.loadForwards")),
      loadMisses(sg.scalar("core.loadMisses")),
      branchMispredicts(sg.scalar("core.branchMispredicts")),
      targetMispredicts(sg.scalar("core.targetMispredicts")),
      squashedInsts(sg.scalar("core.squashedInsts")),
      committedBranches(sg.scalar("core.committedBranches")),
      committedInsts(sg.scalar("core.committedInsts")),
      issuedInsts(sg.scalar("core.issuedInsts")),
      stallRobFull(sg.scalar("core.stallRobFull")),
      stallSchedFull(sg.scalar("core.stallSchedFull")),
      stallLsqFull(sg.scalar("core.stallLsqFull")),
      stallNoPregInt(sg.scalar("core.stallNoPregInt")),
      stallNoPregFp(sg.scalar("core.stallNoPregFp")),
      renamedInsts(sg.scalar("core.renamedInsts")),
      fetchStallCycles(sg.scalar("core.fetchStallCycles")),
      icacheMissStalls(sg.scalar("core.icacheMissStalls")),
      btbMisses(sg.scalar("core.btbMisses")),
      fetchedInsts(sg.scalar("core.fetchedInsts")),
      scratchGrowths(sg.scalar("core.scratchGrowths")),
      ckptsTaken(sg.scalar("core.ckptsTaken")),
      ckptsRestored(sg.scalar("core.ckptsRestored")),
      ckptPoolStalls(sg.scalar("core.ckptPoolStalls"))
{
}

OutOfOrderCore::OutOfOrderCore(
    const CoreConfig &config,
    const workload::SyntheticProgram &program, StatGroup &stats,
    std::shared_ptr<const workload::trace::ProgramTraces>
        shared_traces,
    const workload::ReplayTape *tape)
    : cfg(config), sg(stats), st(stats), prog(program),
      traces(config.tracedFrontEnd
                 ? (shared_traces
                        ? std::move(shared_traces)
                        : workload::trace::TraceCache::global()
                              .acquire(program))
                 : nullptr),
      walker(program, traces.get(),
             traces != nullptr ? tape : nullptr),
      rn(config.rename, stats),
      mem(config.mem),
      lsq(config.lsqSize), robHot(config.robSize),
      robCold(config.robSize), fetchBuf(config.fetchQueueSize()),
      ckptPool(config.ckptPoolSize()), flight(&flightRecorder()),
      portArb_(config.prfReadPorts)
{
    wdNextAudit = cfg.watchdogAuditWindow();
    if (cfg.faultSpec.enabled()) {
        // Cycle-derived triggers resolve to a concrete fire cycle
        // up front; NthAccess counts site accesses instead. Either
        // way the strike lands at the top of one specific cycle —
        // a single sequencing point, so the faulted run is byte-
        // identical across jobs/batch/journal/daemon paths.
        const auto &fs = cfg.faultSpec;
        if (fs.trigger == faults::FaultTrigger::AtCycle) {
            faultFireCycle_ = fs.triggerArg;
        } else if (fs.trigger == faults::FaultTrigger::SeededDraw) {
            faultFireCycle_ =
                hashRange(fs.triggerArg, fs.seed,
                          static_cast<uint64_t>(fs.site),
                          static_cast<uint64_t>(fs.mutation));
        }
    }
    if (cfg.prfReadPorts != 0) {
        // A 2-source op can never issue on fewer than 2 ports: the
        // all-or-nothing arbiter would deny it forever.
        PRI_ASSERT(cfg.prfReadPorts >= 2,
                   "prfReadPorts must be 0 (unlimited) or >= 2");
        stPortReads = &sg.scalar("core.prfPortReads");
        stPortInlineBypass = &sg.scalar("core.prfPortInlineBypass");
        stPortStallOps = &sg.scalar("core.prfPortStallOps");
        stPortStallCycles = &sg.scalar("core.prfPortStallCycles");
    } else {
        PRI_ASSERT(cfg.injectFault != InjectedFault::PortOverGrant,
                   "PortOverGrant requires a finite port budget");
    }
    for (auto cls : {0, 1}) {
        specAvail_[cls].assign(cfg.rename.renameTagSpace(), 0);
        actualAvail_[cls].assign(cfg.rename.renameTagSpace(), 0);
    }
    unretiredBits.assign((cfg.robSize + 63) / 64, 0);
    schedQueue.reserve(cfg.schedSize);

    if (cfg.eventWakeup) {
        for (auto cls : {0, 1})
            consHead_[cls].assign(cfg.rename.renameTagSpace(), -1);
        cons_.assign(2 * cfg.robSize, ConsLinks{});
        readyBits_.assign((cfg.robSize + 63) / 64, 0);
        wakeBucketHead_.assign(kWheelSize, -1);
        wake_.assign(cfg.robSize, WakeLinks{});
    }

    // Pre-size the cycle-loop buffers so the steady state never
    // touches the heap. Each in-flight instruction has at most one
    // outstanding wheel event, so robSize bounds per-slot demand
    // (squash-stale entries aside, which core.scratchGrowths would
    // expose).
    if (cfg.hoistScratch) {
        for (auto &slot : wheel)
            slot.reserve(cfg.robSize);
        eventScratch.reserve(cfg.robSize);
        eventScratch2.reserve(cfg.robSize);
        freedScratch.reserve(cfg.robSize);
    }

    // Map-node pool for rename checkpoints: pre-fill to the
    // checkpoint-capacity bound so the first time the in-flight
    // branch count hits a new high-water mark (possibly deep into
    // measurement) createCheckpoint still reuses a node instead of
    // allocating.
    rn.reserveCheckpointNodes(cfg.ckptPoolSize());

    if (cfg.pooledCheckpoints) {
        // One arch-undo record per in-flight dest-writer bounds the
        // journals' live spans; size for that plus the dead prefix
        // the trim policy tolerates, so steady state never grows.
        archJournal.reserveForLiveSpan(cfg.robSize +
                                       cfg.fetchQueueSize());
        ras.reserveJournal(cfg.robSize + cfg.fetchQueueSize());
    } else {
        // Only full-copy RAS restore will be used; don't pay for
        // journal appends on every push.
        ras.setJournaling(false);
    }

    // Ideal-PRI payload rewrite: convert every in-flight consumer of
    // (cls, preg) to carry the inlined immediate (paper §3.3's
    // fully-associative payload RAM search-and-update). The event
    // path walks the register's consumer list — O(consumers) — the
    // legacy path models the CAM naively as a full ROB walk.
    rn.setIdealInlineHook([this](isa::RegClass cls,
                                 isa::PhysRegId preg,
                                 uint64_t value) {
        if (cfg.eventWakeup) {
            idealInlineRewrite(cls, preg, value);
            return;
        }
        for (uint32_t i = 0, idx = robHead; i < robCount;
             ++i, idx = (idx + 1) % cfg.robSize) {
            RobHot &e = robHot[idx];
            if (!e.valid)
                continue;
            for (auto &s : e.src) {
                if (s.valid && !s.imm && s.refHeld && s.cls == cls &&
                    s.preg == preg) {
                    rn.consumerSquashed(s); // releases the reference
                    s.imm = true;
                    s.value = value;
                    s.preg = isa::kInvalidPhysReg;
                }
            }
        }
    });
}

uint64_t &
OutOfOrderCore::specAvail(isa::RegClass cls, isa::PhysRegId p)
{
    return specAvail_[static_cast<unsigned>(cls)][p];
}

uint64_t &
OutOfOrderCore::actualAvail(isa::RegClass cls, isa::PhysRegId p)
{
    return actualAvail_[static_cast<unsigned>(cls)][p];
}

bool
OutOfOrderCore::srcSpecReady(const rename::SrcRead &s) const
{
    if (!s.valid || s.imm)
        return true;
    return specAvail_[static_cast<unsigned>(s.cls)][s.preg] <=
        cycle + cfg.selectToExe;
}

bool
OutOfOrderCore::srcActualReady(const rename::SrcRead &s) const
{
    if (!s.valid || s.imm)
        return true;
    return actualAvail_[static_cast<unsigned>(s.cls)][s.preg] <=
        cycle;
}

unsigned
OutOfOrderCore::fuIndex(isa::OpClass cls) const
{
    using isa::OpClass;
    switch (cls) {
      case OpClass::IntMult:
      case OpClass::IntDiv: return 1;
      case OpClass::FpAdd: return 2;
      case OpClass::FpMult:
      case OpClass::FpDiv: return 3;
      case OpClass::Load:
      case OpClass::Store: return 4;
      default: return 0; // IntAlu, Branch, Nop
    }
}

void
OutOfOrderCore::scheduleEvent(uint64_t when, EventType type,
                              uint32_t idx)
{
    PRI_ASSERT(when > cycle && when - cycle < kWheelSize,
               "event beyond wheel horizon");
    auto &slot = wheel[when % kWheelSize];
    if (slot.size() == slot.capacity())
        ++st.scratchGrowths;
    slot.push_back(Event{type, idx, robHot[idx].slotGen});
}

// ---------------------------------------------------------------
// Event-driven wakeup (cfg.eventWakeup)
//
// These helpers run several times per committed instruction, so
// they carry no per-operation asserts; checkInvariants() audits
// every structural invariant (list membership <-> flags, sort
// order, counts) after each run and under the golden checker.
// ---------------------------------------------------------------

int32_t &
OutOfOrderCore::consHeadRef(isa::RegClass cls, isa::PhysRegId p)
{
    return consHead_[static_cast<unsigned>(cls)][p];
}

void
OutOfOrderCore::consLink(uint32_t idx, unsigned s)
{
    const auto &sr = robHot[idx].src[s];
    const int32_t node = static_cast<int32_t>(idx * 2 + s);
    int32_t &head = consHeadRef(sr.cls, sr.preg);
    cons_[node].prev = -1;
    cons_[node].next = head;
    if (head != -1)
        cons_[head].prev = node;
    head = node;
    noteFaultAccess(faults::FaultSite::WakeLink);
}

void
OutOfOrderCore::consUnlink(uint32_t idx, unsigned s)
{
    const auto &sr = robHot[idx].src[s];
    const int32_t node = static_cast<int32_t>(idx * 2 + s);
    const int32_t nx = cons_[node].next;
    const int32_t pv = cons_[node].prev;
    if (nx != -1)
        cons_[nx].prev = pv;
    if (pv != -1)
        cons_[pv].next = nx;
    else
        consHeadRef(sr.cls, sr.preg) = nx;
    cons_[node].next = -1;
    cons_[node].prev = -1;
}

void
OutOfOrderCore::readyInsert(uint32_t idx)
{
    RobHot &e = robHot[idx];
    if (wake_[idx].at != kNever)
        wakeUnlink(idx);
    e.inReadyList = true;
    ++readyCount_;
    ++wk.readyInserts;
    readyBits_[idx / 64] |= uint64_t{1} << (idx % 64);
}

void
OutOfOrderCore::readyRemove(uint32_t idx)
{
    robHot[idx].inReadyList = false;
    --readyCount_;
    readyBits_[idx / 64] &= ~(uint64_t{1} << (idx % 64));
}

void
OutOfOrderCore::scheduleWake(uint32_t idx, uint64_t when)
{
    PRI_ASSERT(when > cycle && when - cycle < kWheelSize,
               "wakeup beyond wheel horizon");
    if (wake_[idx].at != kNever) {
        // Keep the minimum: an earlier pending wakeup re-verifies
        // and reschedules if the entry is still not ready then.
        if (wake_[idx].at <= when)
            return;
        wakeUnlink(idx);
    }
    wake_[idx].at = when;
    const unsigned b = static_cast<unsigned>(when % kWheelSize);
    const int32_t self = static_cast<int32_t>(idx);
    wake_[self].prev = -1;
    wake_[self].next = wakeBucketHead_[b];
    if (wakeBucketHead_[b] != -1)
        wake_[wakeBucketHead_[b]].prev = self;
    wakeBucketHead_[b] = self;
}

void
OutOfOrderCore::wakeUnlink(uint32_t idx)
{
    const int32_t self = static_cast<int32_t>(idx);
    if (wake_[self].prev != -1)
        wake_[wake_[self].prev].next = wake_[self].next;
    else
        wakeBucketHead_[wake_[idx].at % kWheelSize] =
            wake_[self].next;
    if (wake_[self].next != -1)
        wake_[wake_[self].next].prev = wake_[self].prev;
    wake_[self].next = -1;
    wake_[self].prev = -1;
    wake_[idx].at = kNever;
}

void
OutOfOrderCore::drainWakeups()
{
    const unsigned b = static_cast<unsigned>(cycle % kWheelSize);
    int32_t n = wakeBucketHead_[b];
    wakeBucketHead_[b] = -1;
    while (n != -1) {
        const int32_t next = wake_[n].next;
        wake_[n].next = -1;
        wake_[n].prev = -1;
        wake_[n].at = kNever;
        ++wk.wakeupsDrained;
        wakeVerify(static_cast<uint32_t>(n));
        n = next;
    }
}

void
OutOfOrderCore::wakeVerify(uint32_t idx)
{
    RobHot &e = robHot[idx];
    if (!e.inScheduler || e.inReadyList)
        return;
    uint64_t when;
    if (!predictReadyCycle(idx, when)) {
        // Producer unscheduled: its select broadcast re-verifies
        // this entry (the consumer-list link persists until
        // completion).
        return;
    }
    if (when <= cycle + kNearWake)
        readyInsert(idx);
    else
        scheduleWake(idx, when);
}

bool
OutOfOrderCore::predictReadyCycle(uint32_t idx, uint64_t &when) const
{
    const RobHot &e = robHot[idx];
    when = e.readyForSelect;
    for (const auto &s : e.src) {
        if (!s.valid || s.imm)
            continue;
        const uint64_t a =
            specAvail_[static_cast<unsigned>(s.cls)][s.preg];
        if (a == kNever)
            return false;
        // Earliest select cycle at which the source counts as
        // spec-ready: specAvail <= cycle + selectToExe.
        const uint64_t rt =
            a > cfg.selectToExe ? a - cfg.selectToExe : 0;
        when = std::max(when, rt);
    }
    return true;
}

void
OutOfOrderCore::scanDefer(uint32_t idx)
{
    // A parked entry failed select's readiness recheck: its
    // prediction regressed after it entered the ready set (load
    // miss, replay). Re-predict instead of leaving it to be
    // re-scanned and skipped every cycle -- a load-miss consumer
    // would otherwise linger for the full miss round-trip. Re-entry
    // happens no later than the entry can next become poll-ready
    // (timed wake at the recomputed cycle, or the unscheduled
    // producer's broadcast), so select still sees a superset of the
    // poll-ready entries and issue decisions are unchanged.
    uint64_t when;
    if (!predictReadyCycle(idx, when)) {
        readyRemove(idx);
        return;
    }
    if (when > cycle + kNearWake) {
        readyRemove(idx);
        scheduleWake(idx, when);
    }
    // Near wakes stay parked: unlink/relink churn costs more than
    // a few lazy skips.
}

void
OutOfOrderCore::broadcastAvail(isa::RegClass cls,
                               isa::PhysRegId preg)
{
    ++wk.broadcasts;
    for (int32_t n = consHead_[static_cast<unsigned>(cls)][preg];
         n != -1; n = cons_[n].next) {
        ++wk.consumersWoken;
        wakeVerify(static_cast<uint32_t>(n) >> 1);
    }
}

void
OutOfOrderCore::idealInlineRewrite(isa::RegClass cls,
                                   isa::PhysRegId preg,
                                   uint64_t value)
{
    int32_t n = consHead_[static_cast<unsigned>(cls)][preg];
    while (n != -1) {
        const int32_t next = cons_[n].next;
        const uint32_t idx = static_cast<uint32_t>(n) >> 1;
        auto &s = robHot[idx].src[n & 1];
        PRI_ASSERT(s.valid && !s.imm && s.refHeld &&
                       s.cls == cls && s.preg == preg,
                   "consumer list out of sync with payload RAM");
        consUnlink(idx, static_cast<unsigned>(n & 1));
        rn.consumerSquashed(s); // releases the reference
        s.imm = true;
        s.value = value;
        s.preg = isa::kInvalidPhysReg;
        // No readiness change: the producer completed long before
        // this writeback-time inline, so the source was already
        // spec-ready and stays so as an immediate.
        n = next;
    }
    PRI_ASSERT(consHead_[static_cast<unsigned>(cls)][preg] == -1);
}

void
OutOfOrderCore::run(uint64_t commit_target, uint64_t max_cycles)
{
    const uint64_t target = nCommitted + commit_target;
    while (nCommitted < target) {
        if (max_cycles != kNever && cycle >= max_cycles) {
            warn("run() hit max_cycles before commit target");
            return;
        }
        if (cfg.faultSpec.enabled() && !faultFired_ &&
            (faultPending_ || cycle >= faultFireCycle_)) {
            fireFault();
        }
        rn.beginCycle(cycle);
        processEvents();
        commitStage();
        selectStage();
        renameStage();
        fetchStage();
        if (cfg.watchdogEnabled || cfg.cycleBudget != 0 ||
            wdHasDeadline) {
            watchdogCheck();
        }
        ++cycle;
    }
}

const char *
ProgressStall::kindName(Kind kind)
{
    switch (kind) {
      case Kind::CommitStall: return "commit-stall";
      case Kind::Livelock:    return "livelock";
      case Kind::CycleBudget: return "cycle-budget";
      case Kind::WallClock:   return "wall-clock";
    }
    return "?";
}

std::string
ProgressStall::describe() const
{
    return fmtStr("{} at cycle {}: last commit at cycle {}, {} "
                  "committed; rob {}, sched {}+{}, fetchq {}, "
                  "prf INT {} FP {}",
                  kindName(kind), cycle, lastCommitCycle, committed,
                  robCount, schedCount, schedHeld, fetchCount,
                  occInt, occFp);
}

void
OutOfOrderCore::setWallClockBudget(uint64_t timeout_ms)
{
    wdHasDeadline = timeout_ms != 0;
    if (wdHasDeadline) {
        wdDeadline = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(timeout_ms);
    }
}

void
OutOfOrderCore::raiseStall(ProgressStall::Kind kind)
{
    ProgressStall s;
    s.kind = kind;
    s.cycle = cycle;
    s.lastCommitCycle = lastCommitCycle;
    s.committed = nCommitted;
    s.robCount = robCount;
    s.schedCount = schedCount_;
    s.schedHeld = schedHeld;
    s.fetchCount = fetchCount;
    s.occInt = rn.occupancy(isa::RegClass::Int);
    s.occFp = rn.occupancy(isa::RegClass::Fp);
    std::string msg = "forward-progress watchdog: " + s.describe();
    const char *ctx = flight->context();
    if (ctx[0] != '\0') {
        msg += "\nrun: ";
        msg += ctx;
    }
    msg += "\n";
    msg += flight->dump();
    throw ProgressStallError(s, std::move(msg));
}

void
OutOfOrderCore::watchdogCheck()
{
    if (cfg.cycleBudget != 0 && cycle >= cfg.cycleBudget)
        raiseStall(ProgressStall::Kind::CycleBudget);

    // Wall clock polls on a coarse stride: one steady_clock read per
    // ~4k cycles is invisible in the profile but bounds overshoot to
    // a few milliseconds of simulation.
    if (wdHasDeadline && (cycle & 0xfff) == 0 &&
        std::chrono::steady_clock::now() > wdDeadline) {
        raiseStall(ProgressStall::Kind::WallClock);
    }

    if (!cfg.watchdogEnabled)
        return;

    if (cycle - lastCommitCycle > cfg.watchdogCycles)
        raiseStall(ProgressStall::Kind::CommitStall);

    // Livelock audit: sample an activity signature once per window.
    // Any motion at all — a commit, fetch, issue, replay, squash, or
    // an occupancy change anywhere — resets the frozen-window count,
    // so long-latency bursts (which keep fetching and issuing, or at
    // minimum change occupancy as the miss returns) never match;
    // only a hard wedge holds the signature bit-for-bit still.
    if (cycle >= wdNextAudit) {
        wdNextAudit = cycle + cfg.watchdogAuditWindow();
        const std::array<uint64_t, 10> sig = {
            nCommitted,
            static_cast<uint64_t>(st.fetchedInsts.value()),
            static_cast<uint64_t>(st.issuedInsts.value()),
            static_cast<uint64_t>(st.replays.value()),
            static_cast<uint64_t>(st.squashedInsts.value()),
            robCount,
            schedCount_ + schedHeld,
            fetchCount,
            rn.occupancy(isa::RegClass::Int),
            rn.occupancy(isa::RegClass::Fp),
        };
        if (wdSigValid && sig == wdSig) {
            if (++wdFrozenWindows >= cfg.watchdogAuditWindows)
                raiseStall(ProgressStall::Kind::Livelock);
        } else {
            wdFrozenWindows = 0;
        }
        wdSig = sig;
        wdSigValid = true;
    }
}

// ---------------------------------------------------------------
// Transient-fault injection (cfg.faultSpec; DESIGN.md §17)
// ---------------------------------------------------------------

void
OutOfOrderCore::noteFaultAccess(faults::FaultSite site)
{
    const auto &fs = cfg.faultSpec;
    if (fs.site != site ||
        fs.trigger != faults::FaultTrigger::NthAccess ||
        faultFired_ || faultPending_) {
        return;
    }
    if (++faultAccesses_ >= fs.triggerArg)
        faultPending_ = true;
}

void
OutOfOrderCore::fireFault()
{
    faultFired_ = true;
    faultPending_ = false;
    const auto &fs = cfg.faultSpec;
    // Every in-mutation choice (which register, which bit, which
    // neighbour) draws from the spec seed — counter-based, so the
    // same spec always strikes the same cell the same way.
    const uint64_t rnd =
        hashCombine(fs.seed, cycle, 0x6d757461746521ULL);
    bool applied = false;
    switch (fs.site) {
      case faults::FaultSite::PrfValue:
      case faults::FaultSite::MapTable:
      case faults::FaultSite::FreeList:
      case faults::FaultSite::CkptNode:
        applied = rn.applyFault(fs, rnd);
        break;
      case faults::FaultSite::WakeLink:
        applied = applyWakeLinkFault(rnd);
        break;
      case faults::FaultSite::LsqForward:
        applied = lsq.applyFault(fs.mutation, rnd);
        break;
      case faults::FaultSite::None:
        break;
    }
    // Forensics: the strike itself lands in the flight ring, so a
    // crash/hang dump shows when and where the particle hit.
    flight->record(FlightEvent::Note, cycle, 0,
                   static_cast<uint64_t>(fs.site), applied ? 1 : 0);
}

bool
OutOfOrderCore::applyWakeLinkFault(uint64_t rnd)
{
    // Consumer lists exist only on the event-wakeup path; on the
    // legacy polling path the site has no storage, so the strike is
    // structurally masked.
    if (!cfg.eventWakeup)
        return false;
    const unsigned tags = cfg.rename.renameTagSpace();
    const unsigned total = 2 * tags;
    const unsigned start =
        static_cast<unsigned>(hashRange(total, rnd, 1));
    for (unsigned k = 0; k < total; ++k) {
        const unsigned flat = (start + k) % total;
        int32_t &head = consHead_[flat / tags][flat % tags];
        if (head == -1)
            continue;
        switch (cfg.faultSpec.mutation) {
          case faults::FaultMutation::BitFlip: {
            // A flipped link pointer: the head consumer drops off
            // its producer's list and will never see the wakeup.
            const int32_t h = head;
            head = cons_[h].next;
            if (head != -1)
                cons_[head].prev = -1;
            cons_[h].next = -1;
            cons_[h].prev = -1;
            break;
          }
          case faults::FaultMutation::StaleValue:
          case faults::FaultMutation::ZeroEntry:
            // The head pointer itself is struck: the whole list is
            // forgotten.
            head = -1;
            break;
        }
        return true;
    }
    return false;
}

void
OutOfOrderCore::beginMeasurement()
{
    markCycle = cycle;
    markCommitted = nCommitted;
    markOccIntAccum = sg.scalarValue("rename.occupancyIntAccum");
    markOccFpAccum = sg.scalarValue("rename.occupancyFpAccum");
}

double
OutOfOrderCore::ipc() const
{
    const uint64_t c = cycle - markCycle;
    return c == 0 ? 0.0
                  : static_cast<double>(nCommitted - markCommitted) /
            static_cast<double>(c);
}

double
OutOfOrderCore::avgIntOccupancy() const
{
    const uint64_t c = cycle - markCycle;
    if (c == 0)
        return 0.0;
    return (sg.scalarValue("rename.occupancyIntAccum") -
            markOccIntAccum) /
        static_cast<double>(c);
}

double
OutOfOrderCore::avgFpOccupancy() const
{
    const uint64_t c = cycle - markCycle;
    if (c == 0)
        return 0.0;
    return (sg.scalarValue("rename.occupancyFpAccum") -
            markOccFpAccum) /
        static_cast<double>(c);
}

// ---------------------------------------------------------------
// Event processing
// ---------------------------------------------------------------

void
OutOfOrderCore::processEvents()
{
    auto &slot = wheel[cycle % kWheelSize];
    if (slot.empty())
        return;
    // Squashes triggered inside may invalidate later events in this
    // slot; the slotGen check filters them. Draining by copy + clear
    // (rather than a capacity-stealing swap) lets every wheel slot
    // keep the capacity it has grown, so once warmed up neither the
    // slots nor the scratch buffers ever reallocate.
    //
    // Completions must be visible before same-cycle execution
    // starts: a dependent beginning execution this cycle picks its
    // operand off the bypass network from a producer completing this
    // cycle. Processing ExeStart first would mis-detect a latency
    // misprediction and replay every back-to-back dependent pair.
    // The drain partitions events by pass so each runs as one tight
    // loop.
    HotVec<Event> local_first, local_second;
    HotVec<Event> &first =
        cfg.hoistScratch ? eventScratch : local_first;
    HotVec<Event> &second =
        cfg.hoistScratch ? eventScratch2 : local_second;
    first.clear();
    second.clear();
    const size_t cap1 = first.capacity();
    const size_t cap2 = second.capacity();
    for (const Event &ev : slot) {
        const bool first_pass =
            ev.type == EventType::ExeComplete ||
            ev.type == EventType::Retire;
        (first_pass ? first : second).push_back(ev);
    }
    slot.clear();
    if (cfg.hoistScratch &&
        (first.capacity() != cap1 || second.capacity() != cap2)) {
        ++st.scratchGrowths;
    }
    for (const HotVec<Event> *events : {&first, &second}) {
        for (const Event &ev : *events) {
            const RobHot &e = robHot[ev.robIdx];
            if (!e.valid || e.slotGen != ev.slotGen)
                continue; // squashed
            switch (ev.type) {
              case EventType::ExeStart:
                onExeStart(ev.robIdx);
                break;
              case EventType::ExeComplete:
                onExeComplete(ev.robIdx);
                break;
              case EventType::Retire:
                onRetire(ev.robIdx);
                break;
            }
        }
    }
}

void
OutOfOrderCore::replayInst(uint32_t idx)
{
    RobHot &e = robHot[idx];
    ++st.replays;
    robCold[idx].replays += 1;
    flight->record(FlightEvent::Replay, cycle, robCold[idx].wi.pc,
                   e.seq, e.hasDst ? e.dstPreg : ~0u);
    if (e.hasDst) {
        specAvail(e.dstCls, e.dstPreg) = kNever;
        actualAvail(e.dstCls, e.dstPreg) = kNever;
    }
    PRI_ASSERT(e.heldSlot);
    e.heldSlot = false;
    --schedHeld;
    e.inScheduler = true;
    e.readyForSelect = cycle + 1;
    ++schedCount_;
    if (cfg.eventWakeup) {
        // readyForSelect = cycle + 1 floors the wake in the future,
        // so a replayed entry is (exactly like polling) eligible no
        // earlier than next cycle's select.
        wakeVerify(idx);
        return;
    }
    // Sorted re-insert: the scheduler queue is kept in seq order at
    // all times (rename appends monotonically, erases preserve
    // order), so selectStage never has to sort.
    const auto pos = std::upper_bound(
        schedQueue.begin(), schedQueue.end(), idx,
        [this](uint32_t a, uint32_t b) {
            return robHot[a].seq < robHot[b].seq;
        });
    schedQueue.insert(pos, idx);
}

void
OutOfOrderCore::onExeStart(uint32_t idx)
{
    RobHot &e = robHot[idx];
    // Speculative scheduling validation: all operands must actually
    // be available now, else selective replay.
    for (const auto &s : e.src) {
        if (!srcActualReady(s)) {
            replayInst(idx);
            return;
        }
    }
    // Operands validated: the instruction can no longer be replayed,
    // so its scheduler slot is released ("known safe").
    PRI_ASSERT(e.heldSlot);
    e.heldSlot = false;
    --schedHeld;

    unsigned lat;
    if (isa::isLoad(e.cls)) {
        const workload::WInst &wi = robCold[idx].wi;
        const bool fwd = lsq.forwardHit(wi.seq, wi.memAddr);
        unsigned mem_lat;
        if (fwd) {
            mem_lat = cfg.mem.dl1.latency;
            ++st.loadForwards;
        } else {
            mem_lat = mem.dataAccess(wi.memAddr, false);
        }
        if (mem_lat > cfg.mem.dl1.latency)
            ++st.loadMisses;
        lat = 1 + mem_lat;
    } else {
        lat = isa::execLatency(e.cls);
    }

    if (e.hasDst) {
        // The true completion time is now known. Re-broadcast only
        // when it differs from the select-time prediction (load
        // misses): waiting consumers re-verify against the moved
        // target, already-ready ones are re-checked at select.
        uint64_t &sa = specAvail(e.dstCls, e.dstPreg);
        const bool changed = sa != cycle + lat;
        sa = cycle + lat;
        if (cfg.eventWakeup && changed)
            broadcastAvail(e.dstCls, e.dstPreg);
    }
    scheduleEvent(cycle + lat, EventType::ExeComplete, idx);
}

void
OutOfOrderCore::onExeComplete(uint32_t idx)
{
    RobHot &e = robHot[idx];
    robCold[idx].executed = true;

    if (e.hasDst) {
        // Completion confirms the exe-start time; re-broadcast only
        // in the (not normally reachable) case it differs.
        uint64_t &sa = specAvail(e.dstCls, e.dstPreg);
        const bool changed = sa != cycle;
        sa = cycle;
        actualAvail(e.dstCls, e.dstPreg) = cycle;
        if (cfg.eventWakeup && changed)
            broadcastAvail(e.dstCls, e.dstPreg);
    }
    // Consumers are done with their operands (reads happened in the
    // RF stages / bypass on the way here); their consumer-list
    // links retire with them.
    for (unsigned i = 0; i < 2; ++i) {
        auto &s = e.src[i];
        if (cfg.eventWakeup && s.valid && !s.imm && s.refHeld)
            consUnlink(idx, i);
        rn.consumerDone(s);
    }

    if (e.isBranch)
        resolveBranch(idx);

    scheduleEvent(cycle + cfg.exeToRetire, EventType::Retire, idx);
}

bool
OutOfOrderCore::anyUnretiredInRange(uint32_t lo, uint32_t hi) const
{
    if (lo >= hi)
        return false;
    const uint32_t wlo = lo / 64;
    const uint32_t whi = (hi - 1) / 64;
    const uint64_t lo_mask = ~uint64_t{0} << (lo % 64);
    const uint64_t hi_mask = ~uint64_t{0} >> (63 - (hi - 1) % 64);
    if (wlo == whi)
        return (unretiredBits[wlo] & lo_mask & hi_mask) != 0;
    if ((unretiredBits[wlo] & lo_mask) != 0)
        return true;
    for (uint32_t w = wlo + 1; w < whi; ++w) {
        if (unretiredBits[w] != 0)
            return true;
    }
    return (unretiredBits[whi] & hi_mask) != 0;
}

uint64_t
OutOfOrderCore::readThroughValue(isa::RegClass cls,
                                 isa::PhysRegId preg, uint64_t gen,
                                 uint64_t fallback) const
{
    if (rn.isAllocated(cls, preg) && rn.physRegGen(cls, preg) == gen)
        return rn.physRegValue(cls, preg);
    // The producer no longer owns the register: it was legitimately
    // released early (PRI inline / ER), so the value observed at
    // writeback stands in.
    return fallback;
}

void
OutOfOrderCore::onRetire(uint32_t idx)
{
    RobHot &e = robHot[idx];
    RobCold &c = robCold[idx];
    if (e.hasDst) {
        // Under virtual-physical renaming the writeback claims
        // storage and can stall. Only the *oldest unretired*
        // instructions may dip into the reserved pool: every commit
        // behind them is guaranteed, and each dest-writer commit
        // frees one older value, so the machine always drains. A
        // looser rule (anything near the head) lets younger
        // writebacks exhaust the file while the head still waits —
        // the classic virtual-physical deadlock.
        const bool privileged = robHead <= idx
            ? !anyUnretiredInRange(robHead, idx)
            : !anyUnretiredInRange(robHead, cfg.robSize) &&
                !anyUnretiredInRange(0, idx);
        if (!rn.writeback(c.dst, e.dstPreg, c.dstGen,
                          c.wi.resultValue, privileged)) {
            scheduleEvent(cycle + 2, EventType::Retire, idx);
            return;
        }
        noteFaultAccess(faults::FaultSite::PrfValue);
        c.wbValue = readThroughValue(e.dstCls, e.dstPreg, c.dstGen,
                                     c.wi.resultValue);
    }
    c.retired = true;
    unretiredBits[idx / 64] &= ~(uint64_t{1} << (idx % 64));
}

// ---------------------------------------------------------------
// Branch resolution and squash
// ---------------------------------------------------------------

void
OutOfOrderCore::releaseCkptRef(CkptRef &ref)
{
    PRI_ASSERT(ref.valid());
    ckptPool.release(ref);
    ref = CkptRef{};
    // Trim the undo journals to the oldest checkpoint still live:
    // nothing can ever unwind below it again. When the oldest branch
    // has not renamed yet its archSeq is unassigned — but then (by
    // in-order rename) *no* live checkpoint has one, so the whole
    // arch journal is dead and can be trimmed to the present.
    if (ckptPool.empty()) {
        ras.trimJournal(ras.journalSeq());
        archJournal.trimTo(archJournal.seq());
    } else {
        const CheckpointSlot &o = ckptPool.oldest();
        ras.trimJournal(o.bp.rasSeq);
        archJournal.trimTo(o.archSeq == CheckpointSlot::kUnrenamed
                               ? archJournal.seq()
                               : o.archSeq);
    }
}

void
OutOfOrderCore::flushFetchBuffer()
{
    if (cfg.pooledCheckpoints) {
        const uint32_t cap = static_cast<uint32_t>(fetchBuf.size());
        for (uint32_t i = 0; i < fetchCount; ++i) {
            FetchedInst &f = fetchBuf[(fetchHead + i) % cap];
            if (f.ckptRef.valid())
                releaseCkptRef(f.ckptRef);
        }
    }
    fetchHead = 0;
    fetchCount = 0;
}

void
OutOfOrderCore::restoreWalker(const workload::WalkerCkpt &ckpt)
{
    if (cfg.injectFault == InjectedFault::StaleWalkerGidx) {
        // Planted bug (checker validation): "forget" to restore the
        // dynamic-index counter, as a refactor that drops gidx from
        // the checkpoint would. Every random draw after the first
        // recovery shifts, silently.
        workload::WalkerCkpt corrupt = ckpt;
        corrupt.gidx += 1;
        walker.restore(corrupt);
        return;
    }
    walker.restore(ckpt);
}

void
OutOfOrderCore::steerResolvedBranch(const RobCold &c)
{
    const auto &wi = c.wi;
    if (cfg.injectFault == InjectedFault::CommitWrongPath) {
        // Planted bug (checker validation): re-steer down the
        // *predicted* direction, so the machine commits the wrong
        // path while staying perfectly self-consistent.
        walker.steer(wi, c.predTaken,
                     c.predTaken ? c.predTarget : wi.fallThrough);
        return;
    }
    walker.steer(wi, wi.taken, wi.actualTarget);
}

void
OutOfOrderCore::resolveBranch(uint32_t idx)
{
    RobCold &e = robCold[idx];
    const auto &wi = e.wi;
    const bool dir_wrong = e.predTaken != wi.taken;
    const bool target_wrong = !dir_wrong && wi.taken &&
        e.predTarget != wi.actualTarget;
    if (!dir_wrong && !target_wrong) {
        // Correctly predicted: the shadow map can never be restored
        // again, so PRI's checkpoint references retire now.
        rn.resolveCheckpoint(e.ckptId);
        e.ckptResolved = true;
        if (cfg.pooledCheckpoints)
            releaseCkptRef(e.ckptRef);
        return;
    }

    e.resolvedMispredict = true;
    ++st.branchMispredicts;
    if (target_wrong)
        ++st.targetMispredicts;
    ++st.ckptsRestored;

    squashAfter(idx);

    if (cfg.pooledCheckpoints) {
        CheckpointSlot &slot = ckptPool.get(e.ckptRef);

        // Walker back onto the correct path.
        restoreWalker(slot.walker);
        steerResolvedBranch(e);

        // Predictor state repair.
        uint64_t h = slot.bp.history;
        if (e.usedPredictor)
            h = (h << 1) | (wi.taken ? 1 : 0);
        predictor.setHistory(h);
        ras.restore(slot.bp);
        if (wi.isCall)
            ras.push(wi.fallThrough);
        else if (wi.isReturn)
            ras.pop();

        // Speculative architectural values: unwind the journal to
        // this branch's rename point (a resolving branch has
        // renamed, so archSeq is assigned).
        PRI_ASSERT(slot.archSeq != CheckpointSlot::kUnrenamed,
                   "resolving branch never renamed");
        archJournal.unwindTo(slot.archSeq,
                             [this](const ArchUndo &u) {
                                 specArch[u.flat] = u.value;
                             });
    } else {
        restoreWalker(e.walkerCkpt);
        steerResolvedBranch(e);

        uint64_t h = e.bpSnap.history;
        if (e.usedPredictor)
            h = (h << 1) | (wi.taken ? 1 : 0);
        predictor.setHistory(h);
        ras.restore(e.bpSnap);
        if (wi.isCall)
            ras.push(wi.fallThrough);
        else if (wi.isReturn)
            ras.pop();

        specArch = e.archSnap;
    }

    flushFetchBuffer();
    fetchResumeCycle = cycle + cfg.redirectPenalty;

    // The restored checkpoint has served its purpose; no older
    // branch will ever restore it.
    rn.resolveCheckpoint(e.ckptId);
    e.ckptResolved = true;
    if (cfg.pooledCheckpoints)
        releaseCkptRef(e.ckptRef);
}

void
OutOfOrderCore::squashAfter(uint32_t branch_idx)
{
    const uint32_t stop = (branch_idx + 1) % cfg.robSize;
    HotVec<Freed> local;
    HotVec<Freed> &to_free =
        cfg.hoistScratch ? freedScratch : local;
    to_free.clear();

    const uint32_t count_before = robCount;
    while (robTail != stop) {
        const uint32_t last =
            (robTail + cfg.robSize - 1) % cfg.robSize;
        RobHot &y = robHot[last];
        RobCold &yc = robCold[last];
        PRI_ASSERT(y.valid);
        if (cfg.eventWakeup) {
            // Eager unwind of the wakeup index (no journal): drop
            // consumer-list links, the ready-list node, and any
            // pending timed wakeup before the entry dies.
            for (unsigned i = 0; i < 2; ++i) {
                const auto &s = y.src[i];
                if (s.valid && !s.imm && s.refHeld)
                    consUnlink(last, i);
            }
            if (y.inReadyList)
                readyRemove(last);
            if (wake_[last].at != kNever)
                wakeUnlink(last);
        }
        if (y.inScheduler) {
            y.inScheduler = false;
            --schedCount_;
        }
        for (auto &s : y.src)
            rn.consumerSquashed(s);
        if (y.isBranch) {
            rn.discardCheckpoint(yc.ckptId);
            // A squashed branch that already resolved gave its slot
            // back then; only live refs are released here.
            if (cfg.pooledCheckpoints && yc.ckptRef.valid())
                releaseCkptRef(yc.ckptRef);
        }
        if (y.hasDst) {
            if (to_free.size() == to_free.capacity())
                ++st.scratchGrowths;
            to_free.push_back(
                Freed{y.dstCls, y.dstPreg, yc.dstGen});
        }
        if (y.heldSlot) {
            y.heldSlot = false;
            --schedHeld;
        }
        y.valid = false;
        y.slotGen += 1;
        unretiredBits[last / 64] &= ~(uint64_t{1} << (last % 64));
        robTail = last;
        --robCount;
        ++st.squashedInsts;
    }

    lsq.squashYounger(robCold[branch_idx].wi.seq);
    // arg = entries this recovery squashed.
    flight->record(FlightEvent::Squash, cycle,
                   robCold[branch_idx].wi.pc,
                   robCold[branch_idx].wi.seq,
                   count_before - robCount);

    // Drop squashed scheduler entries (legacy polling queue only;
    // the event path unlinked them in the walk above).
    if (!cfg.eventWakeup) {
        std::erase_if(schedQueue, [this](uint32_t i) {
            return !robHot[i].valid || !robHot[i].inScheduler;
        });
    }

    rn.restoreCheckpoint(robCold[branch_idx].ckptId);
    for (const Freed &f : to_free)
        rn.squashDest(f.cls, f.preg, f.gen);
}

// ---------------------------------------------------------------
// Commit
// ---------------------------------------------------------------

void
OutOfOrderCore::commitStage()
{
    for (unsigned w = 0; w < cfg.width; ++w) {
        if (robCount == 0)
            return;
        RobHot &e = robHot[robHead];
        RobCold &c = robCold[robHead];
        if (!e.valid || !c.retired)
            return;

        uint64_t commit_value = 0;
        if (e.hasDst) {
            // Fresh read-through: a register corrupted between
            // writeback and commit diverges here.
            commit_value = readThroughValue(e.dstCls, e.dstPreg,
                                            c.dstGen, c.wbValue);
            // PortOverGrant consequence: the over-granted read
            // returned garbage (see portRequest).
            if (c.portCorrupted)
                commit_value ^= 0xdeadbeefULL;
        }
        // Architectural signature: unconditional (observer or not)
        // so a corrupted committed value is visible even with the
        // golden checker off.
        archSig_ = hashCombine(archSig_, c.wi.pc, commit_value);

        if (observer) {
            CommitRecord rec;
            rec.seq = c.wi.seq;
            rec.pc = c.wi.pc;
            rec.op = e.cls;
            rec.dst = c.dst;
            rec.value = commit_value;
            rec.memAddr = isa::isMem(e.cls) ? c.wi.memAddr : 0;
            rec.taken = e.isBranch && c.wi.taken;
            rec.target = rec.taken ? c.wi.actualTarget : 0;
            observer->onCommit(rec);
        }

        if (c.wi.isStore())
            mem.dataAccess(c.wi.memAddr, true);
        if (c.hasLsq)
            lsq.commitHead(c.wi.seq);
        if (e.hasDst)
            rn.commitDest(e.dstCls, c.prevMap, c.prevGen);
        if (e.isBranch) {
            if (c.usedPredictor)
                predictor.update(c.wi.pc, c.wi.taken, c.bpTok);
            if (c.wi.taken && !c.wi.isReturn)
                btb.update(c.wi.pc, c.wi.actualTarget);
            PRI_ASSERT(c.ckptResolved,
                       "branch committed before it resolved");
            rn.releaseCheckpoint(c.ckptId);
            ++st.committedBranches;
        }

        flight->record(FlightEvent::Commit, cycle, c.wi.pc,
                       c.wi.seq, e.hasDst ? e.dstPreg : ~0u);
        e.valid = false;
        e.slotGen += 1;
        robHead = (robHead + 1) % cfg.robSize;
        --robCount;
        ++nCommitted;
        lastCommitCycle = cycle;
        ++st.committedInsts;
    }
}

// ---------------------------------------------------------------
// Select (issue)
// ---------------------------------------------------------------

bool
OutOfOrderCore::portRequest(uint32_t idx)
{
    RobHot &e = robHot[idx];
    unsigned need = 0, inlined = 0;
    for (const auto &s : e.src) {
        if (!s.valid)
            continue;
        s.imm ? ++inlined : ++need;
    }
    const bool denied_before = portArb_.deniedThisCycle();
    if (!portArb_.request(need)) {
        if (cfg.injectFault == InjectedFault::PortOverGrant &&
            e.hasDst && !portFaultFiredThisCycle_) {
            // Planted arbiter bug (checker validation): grant the
            // denied request anyway — one issue too many past the
            // budget, the classic off-by-one in a grant counter.
            // The over-granted op would have read through bitlines
            // the array doesn't have, so its dest value is marked
            // corrupted; commitStage surfaces the stale read in the
            // observed commit stream while the machine itself stays
            // self-consistent (same silent-without-checker pattern
            // as CommitWrongPath). Once per cycle.
            portFaultFiredThisCycle_ = true;
            portArb_.overGrant(need);
            robCold[idx].portCorrupted = true;
        } else {
            if (!denied_before)
                ++*stPortStallCycles;
            ++*stPortStallOps;
            return false;
        }
    }
    *stPortReads += need;
    *stPortInlineBypass += inlined;
    return true;
}

void
OutOfOrderCore::selectStage()
{
    // Planted scheduler wedge (watchdog validation only): stop
    // issuing forever once the trigger commit count is reached. The
    // in-flight window drains and the machine freezes solid.
    if (cfg.injectFault == InjectedFault::WedgeScheduler &&
        nCommitted >= kWedgeAfterCommits) {
        return;
    }

    // Read-port arbitration: the full budget becomes available each
    // cycle; no carry-over, no reservation (port_arbiter.hh).
    if (cfg.prfReadPorts != 0) {
        portArb_.beginCycle();
        portFaultFiredThisCycle_ = false;
    }

    if (cfg.eventWakeup) {
        // Timed wakeups land before select so entries predicted
        // ready this cycle are eligible this cycle, like polling.
        drainWakeups();
        wk.readyOccAccum += readyCount_;
        if (readyCount_ == 0)
            return;

        std::array<unsigned, 5> fu = {
            cfg.numIntAlu, cfg.numIntMultDiv, cfg.numFpAlu,
            cfg.numFpMultDiv, cfg.numMemPorts};
        unsigned issued = 0;

        // Oldest-first over the ready bitmap: walking the ROB ring
        // from robHead visits slots in rename (seq) order, so age
        // priority falls out of the word scan with no sorted
        // structure to maintain. The head word is visited twice --
        // once for the bits at/above robHead (oldest entries), once
        // at the end for the wrapped bits below it. The set is a
        // superset of the poll-ready entries (lazy removal), so
        // re-apply the exact polling predicate per entry; entries
        // whose predicted readiness regressed are skipped in place
        // and issue identically to the polling path once true.
        const size_t words = readyBits_.size();
        const size_t hw = robHead / 64;
        const unsigned hb = robHead % 64;
        for (size_t wi = 0; wi <= words && issued < cfg.width; ++wi) {
            const size_t w = (hw + wi) % words;
            uint64_t bits = readyBits_[w];
            if (wi == 0)
                bits &= ~uint64_t{0} << hb;
            else if (wi == words)
                bits = hb ? bits & (~uint64_t{0} >> (64 - hb)) : 0;
            while (bits != 0 && issued < cfg.width) {
                const uint32_t idx = static_cast<uint32_t>(
                    w * 64 + std::countr_zero(bits));
                bits &= bits - 1;
                RobHot &e = robHot[idx];
                ++wk.selectScans;

                if (e.readyForSelect > cycle ||
                    !srcSpecReady(e.src[0]) ||
                    !srcSpecReady(e.src[1])) {
                    scanDefer(idx);
                    continue;
                }
                const unsigned k = fuIndex(e.cls);
                if (fu[k] == 0)
                    continue;
                // Port denial leaves the ready bit set: the entry
                // is genuinely ready, just structurally starved,
                // and retries from the same age position next
                // cycle (no scanDefer — its prediction is fine).
                if (cfg.prfReadPorts != 0 && !portRequest(idx))
                    continue;
                fu[k] -= 1;
                ++issued;

                readyRemove(idx);
                e.inScheduler = false;
                --schedCount_;
                e.heldSlot = true;
                ++schedHeld;
                if (e.hasDst) {
                    const unsigned pred_lat = isa::isLoad(e.cls)
                        ? 1 + cfg.mem.dl1.latency
                        : isa::execLatency(e.cls);
                    specAvail(e.dstCls, e.dstPreg) =
                        cycle + cfg.selectToExe + pred_lat;
                    // Wake the dest's consumers. Predicted
                    // readiness is at least one cycle out (every
                    // latency >= 1), so near-wake parking may set a
                    // ready bit mid-scan, but the parked entry's
                    // predicate fails until its cycle arrives --
                    // visiting or missing it this cycle issues
                    // nothing either way.
                    broadcastAvail(e.dstCls, e.dstPreg);
                }
                scheduleEvent(cycle + cfg.selectToExe,
                              EventType::ExeStart, idx);
                ++st.issuedInsts;
                flight->record(FlightEvent::Issue, cycle,
                               robCold[idx].wi.pc, e.seq,
                               e.hasDst ? e.dstPreg : ~0u);
            }
        }
        return;
    }

    wk.readyOccAccum += schedQueue.size();
    if (schedQueue.empty())
        return;

    // Oldest-first selection. The queue is maintained in seq order
    // (monotone rename appends, sorted replay re-inserts,
    // order-preserving erases), so no per-cycle sort is needed.
    std::array<unsigned, 5> fu = {cfg.numIntAlu, cfg.numIntMultDiv,
                                  cfg.numFpAlu, cfg.numFpMultDiv,
                                  cfg.numMemPorts};
    unsigned issued = 0;

    for (auto it = schedQueue.begin();
         it != schedQueue.end() && issued < cfg.width;) {
        const uint32_t idx = *it;
        RobHot &e = robHot[idx];
        PRI_ASSERT(e.valid && e.inScheduler);
        ++wk.selectScans;

        if (e.readyForSelect > cycle || !srcSpecReady(e.src[0]) ||
            !srcSpecReady(e.src[1])) {
            ++it;
            continue;
        }
        const unsigned k = fuIndex(e.cls);
        if (fu[k] == 0) {
            ++it;
            continue;
        }
        if (cfg.prfReadPorts != 0 && !portRequest(idx)) {
            ++it;
            continue;
        }
        fu[k] -= 1;
        ++issued;

        e.inScheduler = false;
        --schedCount_;
        e.heldSlot = true;
        ++schedHeld;
        if (e.hasDst) {
            const unsigned pred_lat = isa::isLoad(e.cls)
                ? 1 + cfg.mem.dl1.latency
                : isa::execLatency(e.cls);
            specAvail(e.dstCls, e.dstPreg) =
                cycle + cfg.selectToExe + pred_lat;
        }
        scheduleEvent(cycle + cfg.selectToExe, EventType::ExeStart,
                      idx);
        it = schedQueue.erase(it);
        ++st.issuedInsts;
        flight->record(FlightEvent::Issue, cycle,
                       robCold[idx].wi.pc, e.seq,
                       e.hasDst ? e.dstPreg : ~0u);
    }
}

// ---------------------------------------------------------------
// Rename / dispatch
// ---------------------------------------------------------------

void
OutOfOrderCore::renameStage()
{
    const uint32_t fq_cap = static_cast<uint32_t>(fetchBuf.size());
    for (unsigned w = 0; w < cfg.width; ++w) {
        if (fetchCount == 0)
            return;
        FetchedInst &f = fetchBuf[fetchHead];
        if (f.readyAt > cycle)
            return;

        const auto &wi = f.wi;
        if (robCount == cfg.robSize) {
            ++st.stallRobFull;
            return;
        }
        if (schedCount_ + schedHeld >= cfg.schedSize) {
            ++st.stallSchedFull;
            return;
        }
        if (isa::isMem(wi.cls) && lsq.full()) {
            ++st.stallLsqFull;
            return;
        }
        if (wi.hasDst() && !rn.canRename(wi.dst.cls)) {
            ++(wi.dst.cls == isa::RegClass::Int
                   ? st.stallNoPregInt : st.stallNoPregFp);
            return;
        }

        const uint32_t idx = robTail;
        RobHot &e = robHot[idx];
        RobCold &c = robCold[idx];
        PRI_ASSERT(!e.valid, "renaming into a live ROB slot");
        const uint64_t gen = e.slotGen;
        e = RobHot{};
        e.valid = true;
        e.slotGen = gen + 1;
        e.seq = wi.seq;
        e.cls = wi.cls;
        e.readyForSelect = cycle + cfg.renameToSelect;

        // Reset the cold half field-by-field: the legacy-only
        // snapshot blocks at its tail (walkerCkpt / bpSnap /
        // archSnap, ~700 B) are left untouched — they are fully
        // overwritten before any read on the legacy branch path and
        // never read on the pooled one.
        c.wi = wi;
        c.dst = isa::noReg();
        c.dstGen = 0;
        c.prevMap = rename::MapEntry{};
        c.prevGen = 0;
        c.wbValue = 0;
        c.executed = false;
        c.retired = false;
        c.hasLsq = false;
        c.portCorrupted = false;
        c.replays = 0;
        c.fetchCycle = f.fetchCycle;
        c.renameCycle = cycle;
        c.predTaken = false;
        c.usedPredictor = false;
        c.resolvedMispredict = false;
        c.ckptResolved = false;
        c.predTarget = 0;
        c.ckptId = 0;
        c.bpTok = branch::PredictToken{};
        c.ckptRef = CkptRef{};

        // Source operands through the map (payload RAM fill).
        const isa::RegId srcs[2] = {wi.src1, wi.src2};
        for (int i = 0; i < 2; ++i) {
            if (!srcs[i].valid())
                continue;
            e.src[i] = rn.readSrc(srcs[i]);
            PRI_ASSERT(e.src[i].value == specArch[srcs[i].flat()],
                       "renamed operand value diverges from "
                       "architectural dataflow");
        }

        // Destination allocation.
        if (wi.hasDst()) {
            e.hasDst = true;
            c.dst = wi.dst;
            e.dstCls = wi.dst.cls;
            auto dr = rn.renameDest(wi.dst, wi.resultValue);
            noteFaultAccess(faults::FaultSite::MapTable);
            noteFaultAccess(faults::FaultSite::FreeList);
            e.dstPreg = dr.preg;
            c.dstGen = dr.gen;
            c.prevMap = dr.prev;
            c.prevGen = dr.prevGen;
            specAvail(wi.dst.cls, dr.preg) = kNever;
            actualAvail(wi.dst.cls, dr.preg) = kNever;
            // Journal the old value unless no live checkpoint could
            // ever unwind to before this write (pool empty: any
            // younger branch records a position at or after it).
            if (cfg.pooledCheckpoints && !ckptPool.empty()) {
                archJournal.push(ArchUndo{
                    specArch[wi.dst.flat()],
                    static_cast<uint16_t>(wi.dst.flat())});
            }
            specArch[wi.dst.flat()] = wi.resultValue;
        }

        if (isa::isMem(wi.cls)) {
            lsq.insert(wi.seq, wi.memAddr, wi.isStore());
            if (wi.isStore())
                noteFaultAccess(faults::FaultSite::LsqForward);
            c.hasLsq = true;
        }

        if (wi.isBranch()) {
            e.isBranch = true;
            c.predTaken = f.predTaken;
            c.predTarget = f.predTarget;
            c.usedPredictor = f.usedPredictor;
            c.bpTok = f.bpTok;
            if (cfg.pooledCheckpoints) {
                // The branch's recovery point includes its own dest
                // write (matching the legacy snapshot, taken below
                // after the dest block).
                c.ckptRef = f.ckptRef;
                f.ckptRef = CkptRef{};
                ckptPool.get(c.ckptRef).archSeq = archJournal.seq();
            } else {
                c.bpSnap = f.bpSnap;
                c.walkerCkpt = std::move(f.walkerCkpt);
                c.archSnap = specArch;
            }
            c.ckptId = rn.createCheckpoint();
            noteFaultAccess(faults::FaultSite::CkptNode);
        }

        e.inScheduler = true;
        ++schedCount_;
        if (cfg.eventWakeup) {
            // Thread each pointer source onto its producer's
            // consumer list, then arm the entry's first wakeup: a
            // timed one if every source has a predicted time, else
            // the unscheduled producer's broadcast re-verifies.
            for (unsigned i = 0; i < 2; ++i) {
                if (e.src[i].valid && !e.src[i].imm)
                    consLink(idx, i);
            }
            wakeVerify(idx);
        } else {
            schedQueue.push_back(idx);
        }
        unretiredBits[idx / 64] |= uint64_t{1} << (idx % 64);
        robTail = (robTail + 1) % cfg.robSize;
        ++robCount;
        fetchHead = (fetchHead + 1) % fq_cap;
        --fetchCount;
        ++st.renamedInsts;
        flight->record(FlightEvent::Rename, cycle, wi.pc, wi.seq,
                       e.hasDst ? e.dstPreg : ~0u);
    }
}

// ---------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------

void
OutOfOrderCore::fetchStage()
{
    if (cycle < fetchResumeCycle) {
        ++st.fetchStallCycles;
        return;
    }
    const uint32_t fq_cap = static_cast<uint32_t>(fetchBuf.size());
    if (fetchCount >= fq_cap)
        return;

    // One I-cache access per cycle for the current fetch group.
    const uint64_t fetch_pc = walker.currentPc();
    const unsigned ilat = mem.instAccess(fetch_pc);
    if (ilat > cfg.mem.il1.latency) {
        fetchResumeCycle = cycle + (ilat - cfg.mem.il1.latency);
        ++st.icacheMissStalls;
        return;
    }

    for (unsigned w = 0; w < cfg.width; ++w) {
        if (fetchCount >= fq_cap)
            return;
        // The next instruction may be a branch needing a checkpoint
        // slot, and walker.next() cannot be undone: stall the group
        // while the pool is exhausted (it never is at the default
        // auto size).
        if (cfg.pooledCheckpoints && ckptPool.full()) {
            if (w == 0)
                ++st.ckptPoolStalls;
            return;
        }

        workload::WInst wi = walker.next();
        FetchedInst &f =
            fetchBuf[(fetchHead + fetchCount) % fq_cap];
        f.fetchCycle = cycle;
        f.readyAt = cycle + cfg.fetchToRename;
        f.isBranch = false;
        f.usedPredictor = false;
        PRI_ASSERT(!f.ckptRef.valid(),
                   "fetch slot reused with a live checkpoint");

        if (wi.isBranch()) {
            f.isBranch = true;
            ++st.ckptsTaken;

            // Snapshot recovery state before speculative updates.
            CheckpointSlot *slot = nullptr;
            if (cfg.pooledCheckpoints) {
                f.ckptRef = ckptPool.allocate();
                slot = &ckptPool.get(f.ckptRef);
                slot->bp.history = predictor.history();
                ras.snapshot(slot->bp);
            } else {
                f.bpSnap.history = predictor.history();
                ras.snapshot(f.bpSnap);
            }

            bool pred_taken = true;
            if (!wi.isUncond) {
                f.bpTok = predictor.predict(wi.pc);
                f.usedPredictor = true;
                pred_taken = f.bpTok.predTaken;
            }

            uint64_t pred_target;
            if (wi.isReturn) {
                pred_target = ras.pop();
            } else {
                pred_target = wi.actualTarget;
                if (wi.isCall)
                    ras.push(wi.fallThrough);
                if (pred_taken && !btb.lookup(wi.pc)) {
                    // Predicted taken but no target in the BTB:
                    // short fetch bubble while decode computes it.
                    fetchResumeCycle =
                        cycle + 1 + cfg.btbMissPenalty;
                    ++st.btbMisses;
                }
            }
            f.predTaken = pred_taken;
            f.predTarget = pred_target;
            if (cfg.pooledCheckpoints)
                walker.checkpointInto(slot->walker);
            else
                f.walkerCkpt = walker.checkpoint();

            // Steer the walker down the *fetched* direction. A
            // wrong direction walks the real wrong path; a wrong
            // return target (RAS stale) is steered down the actual
            // path and charged the full penalty at resolve.
            walker.steer(wi, pred_taken, wi.actualTarget);

            f.wi = wi;
            ++fetchCount;
            ++st.fetchedInsts;
            flight->record(FlightEvent::Fetch, cycle, wi.pc, wi.seq,
                           pred_taken ? 1 : 0);
            if (pred_taken) {
                // Fetch stops at the first taken branch in a cycle.
                return;
            }
            continue;
        }

        f.wi = wi;
        ++fetchCount;
        ++st.fetchedInsts;
        flight->record(FlightEvent::Fetch, cycle, wi.pc, wi.seq, 0);
    }
}

void
OutOfOrderCore::checkInvariants() const
{
    rn.checkInvariants();
    PRI_ASSERT(robCount <= cfg.robSize);
    PRI_ASSERT(schedCount_ + schedHeld <= cfg.schedSize);
    PRI_ASSERT(fetchCount <= fetchBuf.size());
    unsigned valid = 0, waiting = 0;
    for (const auto &e : robHot) {
        valid += e.valid ? 1 : 0;
        waiting += (e.valid && e.inScheduler) ? 1 : 0;
    }
    PRI_ASSERT(valid == robCount, "ROB count mismatch");
    PRI_ASSERT(waiting == schedCount_, "scheduler count mismatch");
    for (uint32_t i = 0; i < cfg.robSize; ++i) {
        const bool bit =
            (unretiredBits[i / 64] >> (i % 64)) & 1;
        const bool expect = robHot[i].valid && !robCold[i].retired;
        PRI_ASSERT(bit == expect, "unretired bitmap out of sync");
    }
    if (cfg.eventWakeup) {
        // Ready bitmap: bits, flags, and count in sync. (Seq order
        // is structural -- the select scan walks the ROB ring from
        // robHead -- so there is no ordering to audit.)
        unsigned nready = 0;
        for (uint32_t i = 0; i < cfg.robSize; ++i) {
            const bool bit =
                (readyBits_[i / 64] >> (i % 64)) & 1;
            const RobHot &e = robHot[i];
            PRI_ASSERT(bit == e.inReadyList,
                       "ready bitmap out of sync");
            if (bit) {
                PRI_ASSERT(e.valid && e.inScheduler,
                           "dead entry in the ready bitmap");
                ++nready;
            }
        }
        PRI_ASSERT(nready == readyCount_, "ready count mismatch");
        // Consumer lists: the linked nodes are exactly the live
        // pointer reads (valid && !imm && refHeld) of live entries,
        // each on the list of the register it names.
        unsigned linked = 0;
        for (unsigned cls = 0; cls < 2; ++cls) {
            for (size_t p = 0; p < consHead_[cls].size(); ++p) {
                for (int32_t n = consHead_[cls][p]; n != -1;
                     n = cons_[n].next) {
                    const uint32_t idx =
                        static_cast<uint32_t>(n) >> 1;
                    const auto &s = robHot[idx].src[n & 1];
                    PRI_ASSERT(
                        robHot[idx].valid && s.valid && !s.imm &&
                            s.refHeld &&
                            static_cast<unsigned>(s.cls) == cls &&
                            s.preg == p,
                        "consumer list out of sync");
                    ++linked;
                }
            }
        }
        unsigned held = 0;
        for (const auto &e : robHot) {
            if (!e.valid)
                continue;
            for (const auto &s : e.src)
                held += (s.valid && !s.imm && s.refHeld) ? 1 : 0;
        }
        PRI_ASSERT(linked == held, "consumer membership leak");
        // Wake buckets: each pending wakeup bucketed exactly once,
        // only for waiting, not-yet-ready entries.
        unsigned bucketed = 0;
        for (unsigned b = 0; b < kWheelSize; ++b) {
            for (int32_t n = wakeBucketHead_[b]; n != -1;
                 n = wake_[n].next) {
                PRI_ASSERT(wake_[n].at != kNever &&
                               wake_[n].at % kWheelSize == b,
                           "wakeup in the wrong bucket");
                PRI_ASSERT(robHot[n].inScheduler &&
                               !robHot[n].inReadyList,
                           "wakeup for a non-waiting entry");
                ++bucketed;
            }
        }
        unsigned pending = 0;
        for (uint32_t i = 0; i < cfg.robSize; ++i)
            pending += wake_[i].at != kNever ? 1 : 0;
        PRI_ASSERT(bucketed == pending, "wake bucket leak");
    } else {
        PRI_ASSERT(schedQueue.size() == schedCount_,
                   "polling queue count mismatch");
        PRI_ASSERT(
            std::is_sorted(schedQueue.begin(), schedQueue.end(),
                           [this](uint32_t a, uint32_t b) {
                               return robHot[a].seq <
                                   robHot[b].seq;
                           }),
            "scheduler queue lost seq order");
    }
    if (cfg.pooledCheckpoints) {
        // Every live pool slot is owned by exactly one in-flight
        // reference (fetch ring or ROB).
        unsigned refs = 0;
        for (uint32_t i = 0; i < cfg.robSize; ++i) {
            if (robHot[i].valid && robCold[i].ckptRef.valid())
                ++refs;
        }
        const uint32_t cap = static_cast<uint32_t>(fetchBuf.size());
        for (uint32_t i = 0; i < fetchCount; ++i) {
            if (fetchBuf[(fetchHead + i) % cap].ckptRef.valid())
                ++refs;
        }
        PRI_ASSERT(refs == ckptPool.liveSlots(),
                   "checkpoint pool leak or double ownership");
    }
}

} // namespace pri::core
