#include "core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/op_class.hh"

namespace pri::core
{

CoreStats::CoreStats(StatGroup &sg)
    : replays(sg.scalar("core.replays")),
      loadForwards(sg.scalar("core.loadForwards")),
      loadMisses(sg.scalar("core.loadMisses")),
      branchMispredicts(sg.scalar("core.branchMispredicts")),
      targetMispredicts(sg.scalar("core.targetMispredicts")),
      squashedInsts(sg.scalar("core.squashedInsts")),
      committedBranches(sg.scalar("core.committedBranches")),
      committedInsts(sg.scalar("core.committedInsts")),
      issuedInsts(sg.scalar("core.issuedInsts")),
      stallRobFull(sg.scalar("core.stallRobFull")),
      stallSchedFull(sg.scalar("core.stallSchedFull")),
      stallLsqFull(sg.scalar("core.stallLsqFull")),
      stallNoPregInt(sg.scalar("core.stallNoPregInt")),
      stallNoPregFp(sg.scalar("core.stallNoPregFp")),
      renamedInsts(sg.scalar("core.renamedInsts")),
      fetchStallCycles(sg.scalar("core.fetchStallCycles")),
      icacheMissStalls(sg.scalar("core.icacheMissStalls")),
      btbMisses(sg.scalar("core.btbMisses")),
      fetchedInsts(sg.scalar("core.fetchedInsts")),
      scratchGrowths(sg.scalar("core.scratchGrowths"))
{
}

OutOfOrderCore::OutOfOrderCore(const CoreConfig &config,
                               const workload::SyntheticProgram &program,
                               StatGroup &stats)
    : cfg(config), sg(stats), st(stats), prog(program),
      walker(program), rn(config.rename, stats), mem(config.mem),
      lsq(config.lsqSize), rob(config.robSize)
{
    for (auto cls : {0, 1}) {
        specAvail_[cls].assign(cfg.rename.renameTagSpace(), 0);
        actualAvail_[cls].assign(cfg.rename.renameTagSpace(), 0);
    }
    schedQueue.reserve(cfg.schedSize);

    // Pre-size the cycle-loop buffers so the steady state never
    // touches the heap. Each in-flight instruction has at most one
    // outstanding wheel event, so robSize bounds per-slot demand
    // (squash-stale entries aside, which core.scratchGrowths would
    // expose).
    if (cfg.hoistScratch) {
        for (auto &slot : wheel)
            slot.reserve(cfg.robSize);
        eventScratch.reserve(cfg.robSize);
        freedScratch.reserve(cfg.robSize);
    }

    // Ideal-PRI payload rewrite: convert every in-flight consumer of
    // (cls, preg) to carry the inlined immediate (paper §3.3's
    // fully-associative payload RAM search-and-update).
    rn.setIdealInlineHook([this](isa::RegClass cls,
                                 isa::PhysRegId preg,
                                 uint64_t value) {
        for (uint32_t i = 0, idx = robHead; i < robCount;
             ++i, idx = (idx + 1) % cfg.robSize) {
            RobEntry &e = rob[idx];
            if (!e.valid)
                continue;
            for (auto &s : e.src) {
                if (s.valid && !s.imm && s.refHeld && s.cls == cls &&
                    s.preg == preg) {
                    rn.consumerSquashed(s); // releases the reference
                    s.imm = true;
                    s.value = value;
                    s.preg = isa::kInvalidPhysReg;
                }
            }
        }
    });
}

uint64_t &
OutOfOrderCore::specAvail(isa::RegClass cls, isa::PhysRegId p)
{
    return specAvail_[static_cast<unsigned>(cls)][p];
}

uint64_t &
OutOfOrderCore::actualAvail(isa::RegClass cls, isa::PhysRegId p)
{
    return actualAvail_[static_cast<unsigned>(cls)][p];
}

bool
OutOfOrderCore::srcSpecReady(const rename::SrcRead &s) const
{
    if (!s.valid || s.imm)
        return true;
    return specAvail_[static_cast<unsigned>(s.cls)][s.preg] <=
        cycle + cfg.selectToExe;
}

bool
OutOfOrderCore::srcActualReady(const rename::SrcRead &s) const
{
    if (!s.valid || s.imm)
        return true;
    return actualAvail_[static_cast<unsigned>(s.cls)][s.preg] <=
        cycle;
}

unsigned
OutOfOrderCore::fuIndex(isa::OpClass cls) const
{
    using isa::OpClass;
    switch (cls) {
      case OpClass::IntMult:
      case OpClass::IntDiv: return 1;
      case OpClass::FpAdd: return 2;
      case OpClass::FpMult:
      case OpClass::FpDiv: return 3;
      case OpClass::Load:
      case OpClass::Store: return 4;
      default: return 0; // IntAlu, Branch, Nop
    }
}

void
OutOfOrderCore::scheduleEvent(uint64_t when, EventType type,
                              uint32_t idx)
{
    PRI_ASSERT(when > cycle && when - cycle < kWheelSize,
               "event beyond wheel horizon");
    auto &slot = wheel[when % kWheelSize];
    if (slot.size() == slot.capacity())
        ++st.scratchGrowths;
    slot.push_back(Event{type, idx, rob[idx].slotGen});
}

void
OutOfOrderCore::run(uint64_t commit_target, uint64_t max_cycles)
{
    const uint64_t target = nCommitted + commit_target;
    while (nCommitted < target) {
        if (max_cycles != kNever && cycle >= max_cycles) {
            warn("run() hit max_cycles before commit target");
            return;
        }
        rn.beginCycle(cycle);
        processEvents();
        commitStage();
        selectStage();
        renameStage();
        fetchStage();
        if (cycle - lastCommitCycle > 500000) {
            panic("no commit in 500k cycles at cycle {} "
                  "(rob {}, sched {}+{}, fetchq {})",
                  cycle, robCount, schedQueue.size(), schedHeld,
                  fetchQueue.size());
        }
        ++cycle;
    }
}

void
OutOfOrderCore::beginMeasurement()
{
    markCycle = cycle;
    markCommitted = nCommitted;
    markOccIntAccum = sg.scalarValue("rename.occupancyIntAccum");
    markOccFpAccum = sg.scalarValue("rename.occupancyFpAccum");
}

double
OutOfOrderCore::ipc() const
{
    const uint64_t c = cycle - markCycle;
    return c == 0 ? 0.0
                  : static_cast<double>(nCommitted - markCommitted) /
            static_cast<double>(c);
}

double
OutOfOrderCore::avgIntOccupancy() const
{
    const uint64_t c = cycle - markCycle;
    if (c == 0)
        return 0.0;
    return (sg.scalarValue("rename.occupancyIntAccum") -
            markOccIntAccum) /
        static_cast<double>(c);
}

double
OutOfOrderCore::avgFpOccupancy() const
{
    const uint64_t c = cycle - markCycle;
    if (c == 0)
        return 0.0;
    return (sg.scalarValue("rename.occupancyFpAccum") -
            markOccFpAccum) /
        static_cast<double>(c);
}

// ---------------------------------------------------------------
// Event processing
// ---------------------------------------------------------------

void
OutOfOrderCore::processEvents()
{
    auto &slot = wheel[cycle % kWheelSize];
    if (slot.empty())
        return;
    // Squashes triggered inside may invalidate later events in this
    // slot; the slotGen check filters them. Draining by copy + clear
    // (rather than a capacity-stealing swap) lets every wheel slot
    // keep the capacity it has grown, so once warmed up neither the
    // slots nor the scratch buffer ever reallocate.
    std::vector<Event> local;
    std::vector<Event> &events =
        cfg.hoistScratch ? eventScratch : local;
    events.clear();
    if (cfg.hoistScratch) {
        if (slot.size() > events.capacity())
            ++st.scratchGrowths;
        events.insert(events.end(), slot.begin(), slot.end());
        slot.clear();
    } else {
        events.swap(slot);
    }
    // Completions must be visible before same-cycle execution
    // starts: a dependent beginning execution this cycle picks its
    // operand off the bypass network from a producer completing this
    // cycle. Processing ExeStart first would mis-detect a latency
    // misprediction and replay every back-to-back dependent pair.
    for (int pass = 0; pass < 2; ++pass) {
        for (const Event &ev : events) {
            RobEntry &e = rob[ev.robIdx];
            if (!e.valid || e.slotGen != ev.slotGen)
                continue; // squashed
            const bool first_pass =
                ev.type == EventType::ExeComplete ||
                ev.type == EventType::Retire;
            if (first_pass != (pass == 0))
                continue;
            switch (ev.type) {
              case EventType::ExeStart:
                onExeStart(e, ev.robIdx);
                break;
              case EventType::ExeComplete:
                onExeComplete(e, ev.robIdx);
                break;
              case EventType::Retire:
                onRetire(e);
                break;
            }
        }
    }
}

void
OutOfOrderCore::replayInst(RobEntry &e, uint32_t idx)
{
    ++st.replays;
    e.replays += 1;
    if (e.hasDst) {
        specAvail(e.dst.cls, e.dstPreg) = kNever;
        actualAvail(e.dst.cls, e.dstPreg) = kNever;
    }
    PRI_ASSERT(e.heldSlot);
    e.heldSlot = false;
    --schedHeld;
    e.inScheduler = true;
    e.readyForSelect = cycle + 1;
    schedQueue.push_back(idx);
}

void
OutOfOrderCore::onExeStart(RobEntry &e, uint32_t idx)
{
    // Speculative scheduling validation: all operands must actually
    // be available now, else selective replay.
    for (const auto &s : e.src) {
        if (!srcActualReady(s)) {
            replayInst(e, idx);
            return;
        }
    }
    // Operands validated: the instruction can no longer be replayed,
    // so its scheduler slot is released ("known safe").
    PRI_ASSERT(e.heldSlot);
    e.heldSlot = false;
    --schedHeld;

    unsigned lat;
    if (e.wi.isLoad()) {
        const bool fwd = lsq.forwardHit(e.wi.seq, e.wi.memAddr);
        unsigned mem_lat;
        if (fwd) {
            mem_lat = cfg.mem.dl1.latency;
            ++st.loadForwards;
        } else {
            mem_lat = mem.dataAccess(e.wi.memAddr, false);
        }
        if (mem_lat > cfg.mem.dl1.latency)
            ++st.loadMisses;
        lat = 1 + mem_lat;
    } else {
        lat = isa::execLatency(e.wi.cls);
    }

    if (e.hasDst) {
        // The true completion time is now known.
        specAvail(e.dst.cls, e.dstPreg) = cycle + lat;
    }
    scheduleEvent(cycle + lat, EventType::ExeComplete, idx);
}

void
OutOfOrderCore::onExeComplete(RobEntry &e, uint32_t idx)
{
    e.executed = true;

    if (e.hasDst) {
        specAvail(e.dst.cls, e.dstPreg) = cycle;
        actualAvail(e.dst.cls, e.dstPreg) = cycle;
    }
    // Consumers are done with their operands (reads happened in the
    // RF stages / bypass on the way here).
    for (auto &s : e.src)
        rn.consumerDone(s);

    if (e.isBranch)
        resolveBranch(e, idx);

    scheduleEvent(cycle + cfg.exeToRetire, EventType::Retire, idx);
}

void
OutOfOrderCore::onRetire(RobEntry &e)
{
    if (e.hasDst) {
        // Under virtual-physical renaming the writeback claims
        // storage and can stall. Only the *oldest unretired*
        // instructions may dip into the reserved pool: every commit
        // behind them is guaranteed, and each dest-writer commit
        // frees one older value, so the machine always drains. A
        // looser rule (anything near the head) lets younger
        // writebacks exhaust the file while the head still waits —
        // the classic virtual-physical deadlock.
        const uint32_t idx = static_cast<uint32_t>(&e - rob.data());
        bool privileged = true;
        for (uint32_t i = robHead; i != idx;
             i = (i + 1) % cfg.robSize) {
            if (rob[i].valid && !rob[i].retired) {
                privileged = false;
                break;
            }
        }
        if (!rn.writeback(e.dst, e.dstPreg, e.dstGen,
                          e.wi.resultValue, privileged)) {
            scheduleEvent(cycle + 2, EventType::Retire, idx);
            return;
        }
    }
    e.retired = true;
}

// ---------------------------------------------------------------
// Branch resolution and squash
// ---------------------------------------------------------------

void
OutOfOrderCore::resolveBranch(RobEntry &e, uint32_t idx)
{
    const auto &wi = e.wi;
    const bool dir_wrong = e.predTaken != wi.taken;
    const bool target_wrong = !dir_wrong && wi.taken &&
        e.predTarget != wi.actualTarget;
    if (!dir_wrong && !target_wrong) {
        // Correctly predicted: the shadow map can never be restored
        // again, so PRI's checkpoint references retire now.
        rn.resolveCheckpoint(e.ckptId);
        e.ckptResolved = true;
        return;
    }

    e.resolvedMispredict = true;
    ++st.branchMispredicts;
    if (target_wrong)
        ++st.targetMispredicts;

    squashAfter(idx);

    // Walker back onto the correct path.
    walker.restore(e.walkerCkpt);
    walker.steer(wi, wi.taken, wi.actualTarget);

    // Predictor state repair.
    uint64_t h = e.bpSnap.history;
    if (e.usedPredictor)
        h = (h << 1) | (wi.taken ? 1 : 0);
    predictor.setHistory(h);
    ras.restore(e.bpSnap);
    if (wi.isCall)
        ras.push(wi.fallThrough);
    else if (wi.isReturn)
        ras.pop();

    specArch = e.archSnap;
    fetchQueue.clear();
    fetchResumeCycle = cycle + cfg.redirectPenalty;

    // The restored checkpoint has served its purpose; no older
    // branch will ever restore it.
    rn.resolveCheckpoint(e.ckptId);
    e.ckptResolved = true;
}

void
OutOfOrderCore::squashAfter(uint32_t branch_idx)
{
    const uint32_t stop = (branch_idx + 1) % cfg.robSize;
    std::vector<Freed> local;
    std::vector<Freed> &to_free =
        cfg.hoistScratch ? freedScratch : local;
    to_free.clear();

    while (robTail != stop) {
        const uint32_t last =
            (robTail + cfg.robSize - 1) % cfg.robSize;
        RobEntry &y = rob[last];
        PRI_ASSERT(y.valid);
        for (auto &s : y.src)
            rn.consumerSquashed(s);
        if (y.isBranch)
            rn.discardCheckpoint(y.ckptId);
        if (y.hasDst) {
            if (to_free.size() == to_free.capacity())
                ++st.scratchGrowths;
            to_free.push_back(
                Freed{y.dst.cls, y.dstPreg, y.dstGen});
        }
        if (y.heldSlot) {
            y.heldSlot = false;
            --schedHeld;
        }
        y.valid = false;
        y.slotGen += 1;
        robTail = last;
        --robCount;
        ++st.squashedInsts;
    }

    lsq.squashYounger(rob[branch_idx].wi.seq);

    // Drop squashed scheduler entries.
    std::erase_if(schedQueue, [this](uint32_t i) {
        return !rob[i].valid || !rob[i].inScheduler;
    });

    rn.restoreCheckpoint(rob[branch_idx].ckptId);
    for (const Freed &f : to_free)
        rn.squashDest(f.cls, f.preg, f.gen);
}

// ---------------------------------------------------------------
// Commit
// ---------------------------------------------------------------

void
OutOfOrderCore::commitStage()
{
    for (unsigned w = 0; w < cfg.width; ++w) {
        if (robCount == 0)
            return;
        RobEntry &e = rob[robHead];
        if (!e.valid || !e.retired)
            return;

        if (e.wi.isStore())
            mem.dataAccess(e.wi.memAddr, true);
        if (e.hasLsq)
            lsq.commitHead(e.wi.seq);
        if (e.hasDst)
            rn.commitDest(e.dst.cls, e.prevMap, e.prevGen);
        if (e.isBranch) {
            if (e.usedPredictor)
                predictor.update(e.wi.pc, e.wi.taken, e.bpTok);
            if (e.wi.taken && !e.wi.isReturn)
                btb.update(e.wi.pc, e.wi.actualTarget);
            PRI_ASSERT(e.ckptResolved,
                       "branch committed before it resolved");
            rn.releaseCheckpoint(e.ckptId);
            ++st.committedBranches;
        }

        e.valid = false;
        e.slotGen += 1;
        robHead = (robHead + 1) % cfg.robSize;
        --robCount;
        ++nCommitted;
        lastCommitCycle = cycle;
        ++st.committedInsts;
    }
}

// ---------------------------------------------------------------
// Select (issue)
// ---------------------------------------------------------------

void
OutOfOrderCore::selectStage()
{
    if (schedQueue.empty())
        return;

    // Oldest-first selection.
    std::sort(schedQueue.begin(), schedQueue.end(),
              [this](uint32_t a, uint32_t b) {
                  return rob[a].wi.seq < rob[b].wi.seq;
              });

    std::array<unsigned, 5> fu = {cfg.numIntAlu, cfg.numIntMultDiv,
                                  cfg.numFpAlu, cfg.numFpMultDiv,
                                  cfg.numMemPorts};
    unsigned issued = 0;

    for (auto it = schedQueue.begin();
         it != schedQueue.end() && issued < cfg.width;) {
        const uint32_t idx = *it;
        RobEntry &e = rob[idx];
        PRI_ASSERT(e.valid && e.inScheduler);

        if (e.readyForSelect > cycle || !srcSpecReady(e.src[0]) ||
            !srcSpecReady(e.src[1])) {
            ++it;
            continue;
        }
        const unsigned k = fuIndex(e.wi.cls);
        if (fu[k] == 0) {
            ++it;
            continue;
        }
        fu[k] -= 1;
        ++issued;

        e.inScheduler = false;
        e.heldSlot = true;
        ++schedHeld;
        if (e.hasDst) {
            const unsigned pred_lat = e.wi.isLoad()
                ? 1 + cfg.mem.dl1.latency
                : isa::execLatency(e.wi.cls);
            specAvail(e.dst.cls, e.dstPreg) =
                cycle + cfg.selectToExe + pred_lat;
        }
        scheduleEvent(cycle + cfg.selectToExe, EventType::ExeStart,
                      idx);
        it = schedQueue.erase(it);
        ++st.issuedInsts;
    }
}

// ---------------------------------------------------------------
// Rename / dispatch
// ---------------------------------------------------------------

void
OutOfOrderCore::renameStage()
{
    for (unsigned w = 0; w < cfg.width; ++w) {
        if (fetchQueue.empty())
            return;
        FetchedInst &f = fetchQueue.front();
        if (f.readyAt > cycle)
            return;

        const auto &wi = f.wi;
        if (robCount == cfg.robSize) {
            ++st.stallRobFull;
            return;
        }
        if (schedQueue.size() + schedHeld >= cfg.schedSize) {
            ++st.stallSchedFull;
            return;
        }
        if (isa::isMem(wi.cls) && lsq.full()) {
            ++st.stallLsqFull;
            return;
        }
        if (wi.hasDst() && !rn.canRename(wi.dst.cls)) {
            ++(wi.dst.cls == isa::RegClass::Int
                   ? st.stallNoPregInt : st.stallNoPregFp);
            return;
        }

        const uint32_t idx = robTail;
        const uint64_t gen = rob[idx].slotGen;
        rob[idx] = RobEntry{};
        RobEntry &e = rob[idx];
        e.valid = true;
        e.slotGen = gen + 1;
        e.wi = wi;
        e.fetchCycle = f.fetchCycle;
        e.renameCycle = cycle;
        e.readyForSelect = cycle + cfg.renameToSelect;

        // Source operands through the map (payload RAM fill).
        const isa::RegId srcs[2] = {wi.src1, wi.src2};
        for (int i = 0; i < 2; ++i) {
            if (!srcs[i].valid())
                continue;
            e.src[i] = rn.readSrc(srcs[i]);
            PRI_ASSERT(e.src[i].value == specArch[srcs[i].flat()],
                       "renamed operand value diverges from "
                       "architectural dataflow");
        }

        // Destination allocation.
        if (wi.hasDst()) {
            e.hasDst = true;
            e.dst = wi.dst;
            auto dr = rn.renameDest(wi.dst, wi.resultValue);
            e.dstPreg = dr.preg;
            e.dstGen = dr.gen;
            e.prevMap = dr.prev;
            e.prevGen = dr.prevGen;
            specAvail(wi.dst.cls, dr.preg) = kNever;
            actualAvail(wi.dst.cls, dr.preg) = kNever;
            specArch[wi.dst.flat()] = wi.resultValue;
        }

        if (isa::isMem(wi.cls)) {
            lsq.insert(wi.seq, wi.memAddr, wi.isStore());
            e.hasLsq = true;
        }

        if (wi.isBranch()) {
            e.isBranch = true;
            e.predTaken = f.predTaken;
            e.predTarget = f.predTarget;
            e.usedPredictor = f.usedPredictor;
            e.bpTok = f.bpTok;
            e.bpSnap = f.bpSnap;
            e.walkerCkpt = f.walkerCkpt;
            e.ckptId = rn.createCheckpoint();
            e.archSnap = specArch;
        }

        e.inScheduler = true;
        schedQueue.push_back(idx);
        robTail = (robTail + 1) % cfg.robSize;
        ++robCount;
        fetchQueue.pop_front();
        ++st.renamedInsts;
    }
}

// ---------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------

void
OutOfOrderCore::fetchStage()
{
    if (cycle < fetchResumeCycle) {
        ++st.fetchStallCycles;
        return;
    }
    if (fetchQueue.size() >= cfg.fetchQueueSize())
        return;

    // One I-cache access per cycle for the current fetch group.
    const uint64_t fetch_pc = walker.currentPc();
    const unsigned ilat = mem.instAccess(fetch_pc);
    if (ilat > cfg.mem.il1.latency) {
        fetchResumeCycle = cycle + (ilat - cfg.mem.il1.latency);
        ++st.icacheMissStalls;
        return;
    }

    for (unsigned w = 0; w < cfg.width; ++w) {
        if (fetchQueue.size() >= cfg.fetchQueueSize())
            return;

        workload::WInst wi = walker.next();
        FetchedInst f;
        f.fetchCycle = cycle;
        f.readyAt = cycle + cfg.fetchToRename;

        if (wi.isBranch()) {
            f.isBranch = true;
            // Snapshot recovery state before speculative updates.
            f.bpSnap.history = predictor.history();
            ras.snapshot(f.bpSnap);

            bool pred_taken = true;
            if (!wi.isUncond) {
                f.bpTok = predictor.predict(wi.pc);
                f.usedPredictor = true;
                pred_taken = f.bpTok.predTaken;
            }

            uint64_t pred_target;
            if (wi.isReturn) {
                pred_target = ras.pop();
            } else {
                pred_target = wi.actualTarget;
                if (wi.isCall)
                    ras.push(wi.fallThrough);
                if (pred_taken && !btb.lookup(wi.pc)) {
                    // Predicted taken but no target in the BTB:
                    // short fetch bubble while decode computes it.
                    fetchResumeCycle =
                        cycle + 1 + cfg.btbMissPenalty;
                    ++st.btbMisses;
                }
            }
            f.predTaken = pred_taken;
            f.predTarget = pred_target;
            f.walkerCkpt = walker.checkpoint();

            // Steer the walker down the *fetched* direction. A
            // wrong direction walks the real wrong path; a wrong
            // return target (RAS stale) is steered down the actual
            // path and charged the full penalty at resolve.
            walker.steer(wi, pred_taken, wi.actualTarget);

            f.wi = wi;
            fetchQueue.push_back(f);
            ++st.fetchedInsts;
            if (pred_taken) {
                // Fetch stops at the first taken branch in a cycle.
                return;
            }
            continue;
        }

        f.wi = wi;
        fetchQueue.push_back(f);
        ++st.fetchedInsts;
    }
}

void
OutOfOrderCore::checkInvariants() const
{
    rn.checkInvariants();
    PRI_ASSERT(robCount <= cfg.robSize);
    PRI_ASSERT(schedQueue.size() + schedHeld <= cfg.schedSize);
    unsigned valid = 0;
    for (const auto &e : rob)
        valid += e.valid ? 1 : 0;
    PRI_ASSERT(valid == robCount, "ROB count mismatch");
}

} // namespace pri::core
