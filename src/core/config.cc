#include "config.hh"

namespace pri::core
{

CoreConfig
CoreConfig::fourWide(const rename::RenameConfig &rn)
{
    CoreConfig c;
    c.width = 4;
    c.schedSize = 32;
    c.rename = rn;
    return c;
}

CoreConfig
CoreConfig::eightWide(const rename::RenameConfig &rn)
{
    CoreConfig c;
    c.width = 8;
    c.schedSize = 512;
    c.rename = rn;
    c.numIntAlu = 8;
    c.numIntMultDiv = 2;
    c.numFpAlu = 4;
    c.numFpMultDiv = 2;
    c.numMemPorts = 4;
    return c;
}

} // namespace pri::core
