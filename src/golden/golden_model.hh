/**
 * @file
 * Golden model: a standalone in-order architectural interpreter.
 *
 * Consumes the same deterministic workload walker as the timing core
 * but executes only the committed path, one instruction at a time:
 * every branch is steered down its *actual* direction, so the model
 * never sees a wrong path, never speculates, and never recovers. It
 * maintains nothing but the architectural register file.
 *
 * Because the walker's randomness is a pure function of restorable
 * walker state (DESIGN.md §5), the out-of-order core's committed
 * stream must match this interpreter instruction for instruction —
 * PCs, destination values, effective addresses, branch outcomes —
 * regardless of timing, speculation depth, or register-management
 * scheme. The DiffChecker enforces exactly that.
 */

#ifndef PRI_GOLDEN_GOLDEN_MODEL_HH
#define PRI_GOLDEN_GOLDEN_MODEL_HH

#include <array>
#include <cstdint>

#include "isa/op_class.hh"
#include "isa/reg.hh"
#include "workload/walker.hh"

namespace pri::golden
{

/** One instruction as architecturally executed by the golden model. */
struct GoldenInst
{
    uint64_t index = 0; ///< committed-instruction ordinal (0-based)
    uint64_t pc = 0;
    isa::OpClass cls = isa::OpClass::Nop;
    isa::RegId dst = isa::noReg();
    uint64_t value = 0;   ///< destination value (raw bits for FP)
    uint64_t memAddr = 0; ///< effective address (loads/stores)
    bool taken = false;   ///< actual direction (branches)
    uint64_t target = 0;  ///< actual taken-path target (branches)
};

/** In-order architectural interpreter over a SyntheticProgram. */
class GoldenModel
{
  public:
    explicit GoldenModel(const workload::SyntheticProgram &program);

    /** Execute the next committed instruction. */
    const GoldenInst &step();

    /** The most recently executed instruction. */
    const GoldenInst &last() const { return cur; }

    /** Instructions executed so far. */
    uint64_t committed() const { return n; }

    /** Architectural value of one logical register (flat index). */
    uint64_t archReg(unsigned flat) const { return arch[flat]; }

    /** The full architectural register file (INT then FP). */
    const std::array<uint64_t, 2 * isa::kNumLogicalRegs> &
    archFile() const
    {
        return arch;
    }

  private:
    /** Deliberately constructed without traces: the reference stays
     *  on the legacy decode path, so any golden-checked run of a
     *  traced core cross-checks the two front-end implementations
     *  instruction by instruction for free (DESIGN.md §13). */
    workload::Walker walker;
    std::array<uint64_t, 2 * isa::kNumLogicalRegs> arch{};
    GoldenInst cur;
    uint64_t n = 0;
};

} // namespace pri::golden

#endif // PRI_GOLDEN_GOLDEN_MODEL_HH
