#include "golden_model.hh"

namespace pri::golden
{

GoldenModel::GoldenModel(const workload::SyntheticProgram &program)
    : walker(program)
{
}

const GoldenInst &
GoldenModel::step()
{
    const workload::WInst wi = walker.next();
    if (wi.isBranch()) {
        // Architectural execution follows the actual outcome; there
        // is no prediction and therefore no recovery.
        walker.steer(wi, wi.taken, wi.actualTarget);
    }

    cur.index = n++;
    cur.pc = wi.pc;
    cur.cls = wi.cls;
    cur.dst = wi.dst;
    cur.value = wi.hasDst() ? wi.resultValue : 0;
    cur.memAddr = isa::isMem(wi.cls) ? wi.memAddr : 0;
    cur.taken = wi.isBranch() && wi.taken;
    cur.target = cur.taken ? wi.actualTarget : 0;

    if (wi.hasDst())
        arch[wi.dst.flat()] = wi.resultValue;
    return cur;
}

} // namespace pri::golden
