#include "golden/diff_checker.hh"

#include <cstdio>

#include "common/logging.hh"
#include "common/strfmt.hh"
#include "isa/op_class.hh"

namespace pri::golden
{

namespace
{

std::string
hex(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

DiffChecker::DiffChecker(const workload::SyntheticProgram &program)
    : DiffChecker(program, Options())
{
}

DiffChecker::DiffChecker(const workload::SyntheticProgram &program,
                         Options options)
    : model(program), opt(options)
{
    PRI_ASSERT(opt.windowSize > 0);
    PRI_ASSERT(opt.archCheckInterval > 0);
    window.reserve(opt.windowSize);
}

void
DiffChecker::setAuditHook(std::function<void()> hook)
{
    audit = std::move(hook);
}

void
DiffChecker::onCommit(const core::CommitRecord &rec)
{
    const GoldenInst &g = model.step();

    if (window.size() < opt.windowSize)
        window.push_back({rec, g});
    else
        window[windowPos] = {rec, g};
    windowPos = (windowPos + 1) % opt.windowSize;

    if (rec.pc != g.pc)
        diverge("pc", rec, g);
    if (rec.op != g.cls)
        diverge("op class", rec, g);
    if (!(rec.dst == g.dst))
        diverge("dest register", rec, g);
    if (g.dst.valid() && rec.value != g.value)
        diverge("dest value", rec, g);
    if (rec.memAddr != g.memAddr)
        diverge("effective address", rec, g);
    if (rec.taken != g.taken)
        diverge("branch direction", rec, g);
    if (rec.target != g.target)
        diverge("branch target", rec, g);

    if (g.dst.valid())
        mirror[g.dst.flat()] = rec.value;

    if (model.committed() % opt.archCheckInterval == 0) {
        compareArchFiles();
        if (audit)
            audit();
    }
}

void
DiffChecker::finishRun()
{
    compareArchFiles();
    if (audit)
        audit();
}

void
DiffChecker::compareArchFiles() const
{
    const auto &gold = model.archFile();
    for (unsigned i = 0; i < gold.size(); ++i) {
        if (mirror[i] == gold[i])
            continue;
        isa::RegId r{i < isa::kNumLogicalRegs ? isa::RegClass::Int
                                              : isa::RegClass::Fp,
                     static_cast<uint8_t>(i % isa::kNumLogicalRegs)};
        panic("{} after {} commits: arch file "
              "mismatch at {}: core {} vs golden {}\n{}",
              kDivergenceMarker, model.committed(), r.str(),
              hex(mirror[i]), hex(gold[i]), diagnosticWindow());
    }
}

void
DiffChecker::diverge(const char *what, const core::CommitRecord &rec,
                     const GoldenInst &g) const
{
    panic("{} at commit #{} ({}): core "
          "{{seq={} pc={} op={} dst={} val={} addr={} taken={} "
          "tgt={}}} vs golden "
          "{{pc={} op={} dst={} val={} addr={} taken={} tgt={}}}\n{}",
          kDivergenceMarker, g.index, what, rec.seq, hex(rec.pc),
          isa::opClassName(rec.op), rec.dst.str(), hex(rec.value),
          hex(rec.memAddr), rec.taken, hex(rec.target), hex(g.pc),
          isa::opClassName(g.cls), g.dst.str(), hex(g.value),
          hex(g.memAddr), g.taken, hex(g.target),
          diagnosticWindow());
}

std::string
DiffChecker::diagnosticWindow() const
{
    std::string out = "last retired instructions (oldest first):\n";
    // windowPos is the oldest entry once the ring is full.
    const size_t count = window.size();
    const size_t start = count < opt.windowSize ? 0 : windowPos;
    for (size_t k = 0; k < count; ++k) {
        const WindowEntry &we = window[(start + k) % count];
        out += fmtStr("  #{} pc={} {} dst={} core_val={} gold_val={} "
                      "addr={} taken={} tgt={}\n",
                      we.golden.index, hex(we.golden.pc),
                      isa::opClassName(we.golden.cls),
                      we.golden.dst.str(), hex(we.core.value),
                      hex(we.golden.value), hex(we.golden.memAddr),
                      we.golden.taken, hex(we.golden.target));
    }
    out += "architectural register files (core | golden):\n";
    const auto &gold = model.archFile();
    for (unsigned i = 0; i < gold.size(); ++i) {
        isa::RegId r{i < isa::kNumLogicalRegs ? isa::RegClass::Int
                                              : isa::RegClass::Fp,
                     static_cast<uint8_t>(i % isa::kNumLogicalRegs)};
        out += fmtStr("  {} {} | {}{}\n", r.str(), hex(mirror[i]),
                      hex(gold[i]),
                      mirror[i] != gold[i] ? "  <-- differs" : "");
    }
    return out;
}

} // namespace pri::golden
