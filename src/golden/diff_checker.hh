/**
 * @file
 * Lockstep differential checker against the golden model.
 *
 * Installed as the core's retire-time observer, the checker advances
 * the in-order golden interpreter one instruction per commit and
 * compares everything architecturally visible: PC, operation class,
 * destination register, destination value (as read back through the
 * rename unit / PRF), effective address, and branch outcome. Every
 * `archCheckInterval` commits it additionally compares the full
 * architectural register file and runs the caller-supplied audit
 * hook (typically OutOfOrderCore::checkInvariants), so corruption
 * that does not immediately reach a destination value — e.g. a freed
 * register still named by the map — is caught within one window.
 *
 * On the first divergence the checker panics with a diagnostic
 * window: the last N retired instructions from both models and both
 * architectural register files.
 */

#ifndef PRI_GOLDEN_DIFF_CHECKER_HH
#define PRI_GOLDEN_DIFF_CHECKER_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/core.hh"
#include "golden/golden_model.hh"

namespace pri::golden
{

/**
 * Prefix of every divergence panic the checker raises. The fault-
 * campaign classifier keys on this exact string to separate
 * "corruption the golden model caught" from any other crash, so the
 * panics below and the classifier must never drift apart.
 */
inline constexpr const char *kDivergenceMarker = "golden divergence";

/** Retire-time lockstep comparator core-vs-golden. */
class DiffChecker : public core::CommitObserver
{
  public:
    struct Options
    {
        /** Retired instructions kept for the divergence report. */
        unsigned windowSize = 32;
        /** Commits between full register-file compares + audits. */
        unsigned archCheckInterval = 64;
    };

    explicit DiffChecker(const workload::SyntheticProgram &program);
    DiffChecker(const workload::SyntheticProgram &program,
                Options options);

    /** Install an extra audit run at every register-file check
     *  (e.g. [&cpu] { cpu.checkInvariants(); }). */
    void setAuditHook(std::function<void()> hook);

    void onCommit(const core::CommitRecord &rec) override;

    /**
     * Final register-file compare, regardless of interval phase.
     * Call once after the run completes.
     */
    void finishRun();

    /** Committed instructions verified so far. */
    uint64_t checkedCommits() const { return model.committed(); }

    const GoldenModel &goldenModel() const { return model; }

  private:
    /** One core/golden pair retained for the diagnostic window. */
    struct WindowEntry
    {
        core::CommitRecord core;
        GoldenInst golden;
    };

    [[noreturn]] void diverge(const char *what,
                              const core::CommitRecord &rec,
                              const GoldenInst &g) const;
    void compareArchFiles() const;
    std::string diagnosticWindow() const;

    GoldenModel model;
    Options opt;
    /** Committed architectural file mirrored from commit records. */
    std::array<uint64_t, 2 * isa::kNumLogicalRegs> mirror{};
    std::vector<WindowEntry> window;
    size_t windowPos = 0;
    std::function<void()> audit;
};

} // namespace pri::golden

#endif // PRI_GOLDEN_DIFF_CHECKER_HH
