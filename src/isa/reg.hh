/**
 * @file
 * Logical (architected) register identifiers.
 *
 * Mirrors the paper's Alpha-like setup: 32 integer and 32
 * floating-point architected registers, renamed onto separate
 * integer and FP physical register files (Table 1: "64 physical
 * register, 64 floating point register").
 */

#ifndef PRI_ISA_REG_HH
#define PRI_ISA_REG_HH

#include <cstdint>
#include <string>

namespace pri::isa
{

/** Register class: each class has its own map table and PRF. */
enum class RegClass : uint8_t
{
    Int = 0,
    Fp = 1,
};

constexpr size_t kNumRegClasses = 2;

/** Architected register count per class (Alpha-like). */
constexpr unsigned kNumLogicalRegs = 32;

/** A logical register: class + index. Invalid when idx == kInvalid. */
struct RegId
{
    static constexpr uint8_t kInvalid = 0xff;

    RegClass cls = RegClass::Int;
    uint8_t idx = kInvalid;

    constexpr bool valid() const { return idx != kInvalid; }

    constexpr bool
    operator==(const RegId &o) const
    {
        return cls == o.cls && idx == o.idx;
    }

    /** Flat index across both classes, for tables sized 2*32. */
    constexpr unsigned
    flat() const
    {
        return static_cast<unsigned>(cls) * kNumLogicalRegs + idx;
    }

    std::string
    str() const
    {
        if (!valid())
            return "-";
        return std::string(1, cls == RegClass::Int ? 'r' : 'f') +
            std::to_string(idx);
    }
};

/** Convenience constructors. */
constexpr RegId
intReg(uint8_t idx)
{
    return RegId{RegClass::Int, idx};
}

constexpr RegId
fpReg(uint8_t idx)
{
    return RegId{RegClass::Fp, idx};
}

constexpr RegId
noReg()
{
    return RegId{};
}

/** Physical register index within one class's register file. */
using PhysRegId = uint16_t;
constexpr PhysRegId kInvalidPhysReg = 0xffff;

} // namespace pri::isa

#endif // PRI_ISA_REG_HH
