/**
 * @file
 * Operation classes of the simple RISC-like ISA model.
 *
 * The reproduction does not interpret real Alpha encodings; the
 * timing simulator only needs the operation class (which functional
 * unit, which latency, load/store/branch behaviour), the register
 * operands, and the produced value. Latencies follow the classic
 * SimpleScalar defaults used by the paper's sim-outorder base.
 */

#ifndef PRI_ISA_OP_CLASS_HH
#define PRI_ISA_OP_CLASS_HH

#include <cstdint>
#include <string_view>

namespace pri::isa
{

/** Functional classes of dynamic instructions. */
enum class OpClass : uint8_t
{
    IntAlu,   ///< integer add/sub/logic/shift/compare
    IntMult,  ///< integer multiply
    IntDiv,   ///< integer divide
    FpAdd,    ///< FP add/sub/convert
    FpMult,   ///< FP multiply
    FpDiv,    ///< FP divide/sqrt
    Load,     ///< memory read
    Store,    ///< memory write
    Branch,   ///< conditional branch / jump / call / return
    Nop,      ///< no-operation
    NumOpClasses,
};

constexpr size_t kNumOpClasses =
    static_cast<size_t>(OpClass::NumOpClasses);

/** Fixed execution latency in cycles (loads use the cache model). */
constexpr unsigned
execLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: return 1;
      case OpClass::IntMult: return 3;
      case OpClass::IntDiv: return 20;
      case OpClass::FpAdd: return 2;
      case OpClass::FpMult: return 4;
      case OpClass::FpDiv: return 12;
      case OpClass::Load: return 1;   // address generation; + cache
      case OpClass::Store: return 1;  // address generation
      case OpClass::Branch: return 1;
      case OpClass::Nop: return 1;
      default: return 1;
    }
}

constexpr bool isLoad(OpClass c) { return c == OpClass::Load; }
constexpr bool isStore(OpClass c) { return c == OpClass::Store; }
constexpr bool
isMem(OpClass c)
{
    return isLoad(c) || isStore(c);
}
constexpr bool isBranch(OpClass c) { return c == OpClass::Branch; }
constexpr bool
isFp(OpClass c)
{
    return c == OpClass::FpAdd || c == OpClass::FpMult ||
        c == OpClass::FpDiv;
}

/** Short mnemonic for tracing and reports. */
constexpr std::string_view
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::IntAlu: return "ialu";
      case OpClass::IntMult: return "imul";
      case OpClass::IntDiv: return "idiv";
      case OpClass::FpAdd: return "fadd";
      case OpClass::FpMult: return "fmul";
      case OpClass::FpDiv: return "fdiv";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::Branch: return "branch";
      case OpClass::Nop: return "nop";
      default: return "?";
    }
}

} // namespace pri::isa

#endif // PRI_ISA_OP_CLASS_HH
