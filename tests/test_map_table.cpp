/**
 * @file
 * Tests for RAM and CAM map tables (paper §2.1), including the
 * demonstration of why PRI requires a RAM map: a CAM encodes
 * physical register numbers positionally, so one "value" could map
 * to at most one logical register at a time.
 */

#include <gtest/gtest.h>

#include "rename/map_table.hh"

namespace pri::rename
{
namespace
{

TEST(MapEntry, Equality)
{
    EXPECT_EQ(MapEntry::makePreg(3), MapEntry::makePreg(3));
    EXPECT_FALSE(MapEntry::makePreg(3) == MapEntry::makePreg(4));
    EXPECT_EQ(MapEntry::makeImm(42), MapEntry::makeImm(42));
    EXPECT_FALSE(MapEntry::makeImm(42) == MapEntry::makeImm(43));
    EXPECT_FALSE(MapEntry::makeImm(3) == MapEntry::makePreg(3));
}

TEST(RamMapTable, IdentityInitialMapping)
{
    RamMapTable map;
    for (unsigned i = 0; i < isa::kNumLogicalRegs; ++i) {
        EXPECT_FALSE(map.read(i).imm);
        EXPECT_EQ(map.read(i).preg, i);
    }
}

TEST(RamMapTable, WriteAndRead)
{
    RamMapTable map;
    map.write(5, MapEntry::makePreg(40));
    EXPECT_EQ(map.read(5).preg, 40);
    map.write(5, MapEntry::makeImm(0x7f));
    EXPECT_TRUE(map.read(5).imm);
    EXPECT_EQ(map.read(5).value, 0x7fu);
}

TEST(RamMapTable, ImmediateModeCoexistsForManyLogicals)
{
    // The RAM map can hold the same inlined value for any number of
    // logical registers simultaneously — the property the CAM lacks.
    RamMapTable map;
    for (unsigned i = 0; i < isa::kNumLogicalRegs; ++i)
        map.write(i, MapEntry::makeImm(0));
    for (unsigned i = 0; i < isa::kNumLogicalRegs; ++i) {
        EXPECT_TRUE(map.read(i).imm);
        EXPECT_EQ(map.read(i).value, 0u);
    }
}

TEST(RamMapTable, CheckpointRestore)
{
    RamMapTable map;
    map.write(3, MapEntry::makePreg(50));
    const auto snap = map.copy();
    map.write(3, MapEntry::makeImm(1));
    map.write(4, MapEntry::makePreg(51));
    map.restore(snap);
    EXPECT_EQ(map.read(3).preg, 50);
    EXPECT_EQ(map.read(4).preg, 4);
}

TEST(RamMapTable, CheckpointRestoreAcrossInlineTransitions)
{
    // PRI flow: a checkpoint can capture entries in either
    // addressing mode, and either entry may have switched modes by
    // the time a misprediction restores — inlined value overwritten
    // by a wide (pointer) redefinition, and pointer replaced by an
    // inlined narrow result. Restore must resurrect the exact mode
    // and payload of the checkpoint, both directions.
    RamMapTable map;
    map.write(3, MapEntry::makeImm(42));
    map.write(4, MapEntry::makePreg(50));
    const auto snap = map.copy();

    map.write(3, MapEntry::makePreg(51)); // inlined -> pointer
    map.write(4, MapEntry::makeImm(7));   // pointer -> inlined
    ASSERT_FALSE(map.read(3).imm);
    ASSERT_TRUE(map.read(4).imm);

    map.restore(snap);
    EXPECT_TRUE(map.read(3).imm);
    EXPECT_EQ(map.read(3).value, 42u);
    EXPECT_FALSE(map.read(4).imm);
    EXPECT_EQ(map.read(4).preg, 50);
}

TEST(CamMapTable, LookupAfterMap)
{
    CamMapTable cam(64);
    EXPECT_EQ(*cam.lookup(7), 7u); // identity init
    cam.map(7, 40);
    EXPECT_EQ(*cam.lookup(7), 40u);
}

TEST(CamMapTable, MapClearsPreviousValidBit)
{
    CamMapTable cam(64);
    const auto prev = cam.map(7, 40);
    ASSERT_TRUE(prev.has_value());
    EXPECT_EQ(*prev, 7u);
    cam.map(7, 41);
    // Entry 40 is no longer valid: only one mapping per logical.
    EXPECT_EQ(*cam.lookup(7), 41u);
}

TEST(CamMapTable, OneValuePerLogicalLimitation)
{
    // Paper §2.1: "if the value 0 occurs in 2 logical registers at
    // the same time, only one of those instances can be stored in a
    // CAM map." Model the value-0 encoding as physical entry 0:
    // mapping a second logical register to it steals the first.
    CamMapTable cam(64);
    cam.map(1, 0); // logical 1 "holds value 0"
    EXPECT_EQ(*cam.lookup(1), 0u);
    cam.map(2, 0); // logical 2 wants value 0 too
    EXPECT_EQ(*cam.lookup(2), 0u);
    // Logical 1 lost its mapping: the CAM cannot express both.
    EXPECT_FALSE(cam.lookup(1).has_value());
}

TEST(CamMapTable, ValidBitCheckpointing)
{
    CamMapTable cam(64);
    cam.map(3, 40);
    const auto bits = cam.checkpointValidBits();
    cam.map(3, 41);
    cam.unmap(40);
    cam.restoreValidBits(bits);
    // Entry 40 valid again, 41's mapping rolled back.
    EXPECT_EQ(*cam.lookup(3), 40u);
}

} // namespace
} // namespace pri::rename
