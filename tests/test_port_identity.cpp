/**
 * @file
 * Determinism suite for the PRF read-port axis:
 *
 *  - ports = 0 (unlimited) is exactly the pre-port-model machine:
 *    the report registers no core.prfPort* stats, and a
 *    never-binding finite budget times identically to unlimited
 *    (same cycles/IPC/occupancy; reports differ only by the four
 *    port-stat lines);
 *  - a binding budget is byte-identical across worker counts,
 *    batched-vs-serial execution, journal record/replay, and the
 *    event-driven vs legacy polling select paths — the arbitration
 *    decision must be a pure function of machine state, not of how
 *    the sweep infrastructure scheduled the run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/journal.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"

namespace pri::sim
{
namespace
{

RunParams
portedParams(unsigned ports)
{
    RunParams p;
    p.benchmark = "gcc";
    p.width = 8;
    p.scheme = Scheme::PriRefcountCkptcount;
    p.physRegs = 64;
    p.warmupInsts = 2000;
    p.measureInsts = 8000;
    p.seed = 7;
    p.prfReadPorts = ports;
    return p;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.avgIntOccupancy, b.avgIntOccupancy);
    EXPECT_EQ(a.avgFpOccupancy, b.avgFpOccupancy);
    EXPECT_EQ(a.lifeAllocToWrite, b.lifeAllocToWrite);
    EXPECT_EQ(a.lifeWriteToLastRead, b.lifeWriteToLastRead);
    EXPECT_EQ(a.lifeLastReadToRelease, b.lifeLastReadToRelease);
    EXPECT_EQ(a.branchMispredictRate, b.branchMispredictRate);
    EXPECT_EQ(a.dl1MissRate, b.dl1MissRate);
    EXPECT_EQ(a.priEarlyFrees, b.priEarlyFrees);
    EXPECT_EQ(a.erEarlyFrees, b.erEarlyFrees);
    EXPECT_EQ(a.inlinedFrac, b.inlinedFrac);
    EXPECT_EQ(a.portStallsPerKInst, b.portStallsPerKInst);
    EXPECT_EQ(a.portInlineBypassFrac, b.portInlineBypassFrac);
    EXPECT_EQ(a.report, b.report);
}

/** Strip the conditionally-registered core.prfPort* lines so a
 *  finite-budget report can be compared against unlimited. */
std::string
withoutPortLines(const std::string &report)
{
    std::string out;
    size_t start = 0;
    while (start < report.size()) {
        size_t end = report.find('\n', start);
        if (end == std::string::npos)
            end = report.size();
        const std::string line =
            report.substr(start, end - start);
        if (line.find("core.prfPort") == std::string::npos) {
            out += line;
            out += '\n';
        }
        start = end + 1;
    }
    return out;
}

/** Unlimited ports registers no port stats: the machine and its
 *  report are exactly the pre-port-model ones. */
TEST(PortIdentity, UnlimitedReportHasNoPortStats)
{
    const auto r = simulate(portedParams(0));
    EXPECT_EQ(r.report.find("core.prfPort"), std::string::npos);
    EXPECT_EQ(r.portStallsPerKInst, 0.0);
    EXPECT_EQ(r.portInlineBypassFrac, 0.0);
}

/** A budget wide enough to never deny (one op needs at most 2
 *  ports, at most `width` ops issue per cycle) must time exactly
 *  like unlimited — the arbiter is pure observation until it
 *  denies. Reports differ only by the port-stat lines. */
TEST(PortIdentity, NeverBindingBudgetTimesLikeUnlimited)
{
    const auto unlimited = simulate(portedParams(0));
    auto p = portedParams(0);
    p.prfReadPorts = 2 * p.width;
    const auto wide = simulate(p);
    EXPECT_EQ(unlimited.ipc, wide.ipc);
    EXPECT_EQ(unlimited.cycles, wide.cycles);
    EXPECT_EQ(unlimited.insts, wide.insts);
    EXPECT_EQ(unlimited.avgIntOccupancy, wide.avgIntOccupancy);
    EXPECT_EQ(unlimited.branchMispredictRate,
              wide.branchMispredictRate);
    EXPECT_EQ(wide.portStallsPerKInst, 0.0);
    EXPECT_GT(wide.portInlineBypassFrac, 0.0);
    EXPECT_EQ(withoutPortLines(unlimited.report),
              withoutPortLines(wide.report));
}

/** A binding budget (2 ports on an 8-wide machine) must produce
 *  bit-identical results across worker counts. */
TEST(PortIdentity, BindingBudgetIdenticalAcrossJobs)
{
    std::vector<RunParams> batch;
    for (unsigned ports : {2u, 4u})
        batch.push_back(portedParams(ports));
    const auto serial = SimulationRunner(1).run(batch);
    const auto parallel = SimulationRunner(4).run(batch);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectIdentical(serial[i], parallel[i]);
        EXPECT_GT(serial[i].portStallsPerKInst, 0.0);
    }
}

/** Batched lanes (shared workload) vs the serial path. */
TEST(PortIdentity, BindingBudgetIdenticalUnderBatching)
{
    std::vector<RunParams> batch;
    for (unsigned ports : {2u, 4u})
        batch.push_back(portedParams(ports));

    SimulationRunner serial(1);
    serial.setBatchLanes(1);
    const auto one = serial.run(batch);

    SimulationRunner batched(1);
    batched.setBatchLanes(4);
    const auto lanes = batched.run(batch);

    ASSERT_EQ(one.size(), lanes.size());
    for (size_t i = 0; i < one.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        expectIdentical(one[i], lanes[i]);
    }
}

/** Journal round-trip: a ported point recorded to the journal and
 *  replayed from it reproduces the fresh result bit-for-bit,
 *  including the port-pressure metrics. */
TEST(PortIdentity, BindingBudgetSurvivesJournalRoundTrip)
{
    const std::string path =
        testing::TempDir() + "pri_test_port_journal";
    std::remove(path.c_str());
    const std::vector<RunParams> batch{portedParams(2)};

    {
        SweepJournal journal(path);
        SimulationRunner runner(1);
        runner.setJournal(&journal);
        const auto fresh = runner.runCaptured(batch);
        ASSERT_TRUE(fresh[0].ok()) << fresh[0].error;
        EXPECT_FALSE(fresh[0].fromJournal);
    }

    SweepJournal reloaded(path);
    EXPECT_EQ(reloaded.loadedPoints(), 1u);
    SimulationRunner runner(1);
    runner.setJournal(&reloaded);
    const auto cached = runner.runCaptured(batch);
    ASSERT_TRUE(cached[0].ok()) << cached[0].error;
    EXPECT_TRUE(cached[0].fromJournal);
    expectIdentical(cached[0].result, simulate(batch[0]));
    EXPECT_GT(cached[0].result.portStallsPerKInst, 0.0);
    std::remove(path.c_str());
}

/** The event-driven and legacy polling select paths arbitrate in
 *  the same ROB-age order, so a binding budget must not separate
 *  them. */
TEST(PortIdentity, BindingBudgetIdenticalAcrossWakeupPaths)
{
    for (unsigned ports : {2u, 4u}) {
        SCOPED_TRACE("ports " + std::to_string(ports));
        auto p = portedParams(ports);
        p.eventWakeup = true;
        const auto ev = simulate(p);
        p.eventWakeup = false;
        const auto poll = simulate(p);
        expectIdentical(ev, poll);
    }
}

} // namespace
} // namespace pri::sim
