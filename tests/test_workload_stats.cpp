/**
 * @file
 * Statistical conformance tests, parameterized over every benchmark
 * profile: the dynamic instruction stream a walker generates must
 * deliver the instruction mix, branch statistics, and value
 * distributions its profile declares. These are the properties the
 * SPEC substitution (DESIGN.md §5) rests on.
 */

#include <gtest/gtest.h>

#include "common/bitutils.hh"
#include "workload/walker.hh"

namespace pri::workload
{
namespace
{

struct StreamStats
{
    uint64_t total = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    uint64_t condBranches = 0;
    uint64_t takenCond = 0;
    uint64_t fpOps = 0;
    uint64_t intDests = 0;
    uint64_t intNarrow10 = 0;
    uint64_t fpDests = 0;
    uint64_t fpZero = 0;
};

StreamStats
collect(const SyntheticProgram &prog, uint64_t n)
{
    Walker w(prog);
    StreamStats s;
    for (uint64_t i = 0; i < n; ++i) {
        WInst wi = w.next();
        if (wi.isBranch())
            w.steer(wi, wi.taken, wi.actualTarget);
        ++s.total;
        s.loads += wi.isLoad();
        s.stores += wi.isStore();
        if (wi.isBranch()) {
            ++s.branches;
            if (!wi.isUncond) {
                ++s.condBranches;
                s.takenCond += wi.taken;
            }
        }
        s.fpOps += isa::isFp(wi.cls);
        if (wi.hasDst()) {
            if (wi.dst.cls == isa::RegClass::Int) {
                ++s.intDests;
                s.intNarrow10 +=
                    significantBits(wi.resultValue) <= 10;
            } else {
                ++s.fpDests;
                s.fpZero += fpValueTrivial(wi.resultValue);
            }
        }
    }
    return s;
}

class WorkloadStatsTest
    : public ::testing::TestWithParam<std::string>
{
  protected:
    const BenchmarkProfile &profile() const
    {
        return profileByName(GetParam());
    }
};

/** Sum stream stats over several program seeds: hot dynamic loops
 *  skew any single program's mix; the multi-seed mean is what the
 *  experiment harnesses actually consume (bench_util kSeeds). */
StreamStats
collectSeeds(const BenchmarkProfile &p, uint64_t n_per_seed)
{
    StreamStats acc;
    for (uint64_t seed : {11u, 22u, 33u}) {
        SyntheticProgram prog(p, seed);
        const auto s = collect(prog, n_per_seed);
        acc.total += s.total;
        acc.loads += s.loads;
        acc.stores += s.stores;
        acc.branches += s.branches;
        acc.condBranches += s.condBranches;
        acc.takenCond += s.takenCond;
        acc.fpOps += s.fpOps;
        acc.intDests += s.intDests;
        acc.intNarrow10 += s.intNarrow10;
        acc.fpDests += s.fpDests;
        acc.fpZero += s.fpZero;
    }
    return acc;
}

TEST_P(WorkloadStatsTest, DynamicMixTracksProfile)
{
    const auto &p = profile();
    const auto s = collectSeeds(p, 60000);
    const double n = static_cast<double>(s.total);

    // Dynamic loop skew makes the dynamic mix drift from the static
    // mix even after seed-averaging; bound the drift.
    EXPECT_NEAR(s.loads / n, p.fracLoad, 0.15) << p.name;
    EXPECT_NEAR(s.stores / n, p.fracStore, 0.12) << p.name;
    EXPECT_NEAR(s.branches / n, p.fracBranch, 0.10) << p.name;
    if (p.suite == Suite::Fp)
        EXPECT_GT(s.fpOps / n, 0.08) << p.name;
    else if (p.fracFpAdd + p.fracFpMult == 0.0)
        EXPECT_EQ(s.fpOps, 0u) << p.name;
}

TEST_P(WorkloadStatsTest, BranchTakenRateIsPlausible)
{
    const auto s = collectSeeds(profile(), 60000);
    ASSERT_GT(s.condBranches, 500u);
    const double taken =
        static_cast<double>(s.takenCond) / s.condBranches;
    // Loop back-edges keep this well above zero; forward branches
    // keep it well below one.
    EXPECT_GT(taken, 0.05) << profile().name;
    EXPECT_LT(taken, 0.99) << profile().name;
}

TEST_P(WorkloadStatsTest, ValueDistributionsMatchCalibration)
{
    const auto &p = profile();
    const auto s = collectSeeds(p, 60000);

    if (s.intDests > 2000) {
        const double frac =
            static_cast<double>(s.intNarrow10) / s.intDests;
        const WidthCdf cdf(p.widthPoints);
        // Dynamic skew tolerance (hot static instructions dominate).
        EXPECT_NEAR(frac, cdf.at(10), 0.22) << p.name;
    }
    if (s.fpDests > 2000) {
        const double frac =
            static_cast<double>(s.fpZero) / s.fpDests;
        EXPECT_NEAR(frac, p.fpFracZero, 0.08) << p.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, WorkloadStatsTest,
    ::testing::Values("bzip2", "crafty", "eon", "gap", "gcc", "gzip",
                      "mcf", "parser", "perlbmk", "twolf", "vortex",
                      "vpr", "vpr_ref", "ammp", "applu", "apsi",
                      "art", "equake", "facerec", "fma3d", "galgel",
                      "lucas", "mesa", "mgrid", "sixtrack", "swim",
                      "wupwise"));

} // namespace
} // namespace pri::workload
