/**
 * @file
 * End-to-end tests of the out-of-order core: progress, invariant
 * preservation, measurement windows, and behaviour across every
 * register-management scheme and both machine widths.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "workload/program.hh"

namespace pri::core
{
namespace
{

struct CoreHarness
{
    StatGroup stats;
    workload::SyntheticProgram prog;
    OutOfOrderCore cpu;

    CoreHarness(const CoreConfig &cfg, const std::string &bench,
                uint64_t seed = 3)
        : prog(workload::profileByName(bench), seed),
          cpu(cfg, prog, stats)
    {
    }
};

TEST(Core, MakesForwardProgress)
{
    const auto cfg = CoreConfig::fourWide(
        rename::RenameConfig::base(64, 7));
    CoreHarness h(cfg, "gzip");
    h.cpu.run(5000);
    EXPECT_GE(h.cpu.committedInsts(), 5000u);
    EXPECT_GT(h.cpu.cycles(), 0u);
    h.cpu.checkInvariants();
}

TEST(Core, IpcWindowMeasuresOnlyAfterMark)
{
    const auto cfg = CoreConfig::fourWide(
        rename::RenameConfig::base(64, 7));
    CoreHarness h(cfg, "gzip");
    h.cpu.run(3000);
    h.cpu.beginMeasurement();
    const uint64_t c0 = h.cpu.cycles();
    h.cpu.run(3000);
    const double ipc = h.cpu.ipc();
    EXPECT_GT(ipc, 0.0);
    EXPECT_NEAR(ipc,
                3000.0 / static_cast<double>(h.cpu.cycles() - c0),
                0.01);
}

TEST(Core, RespectsMaxCycles)
{
    const auto cfg = CoreConfig::fourWide(
        rename::RenameConfig::base(64, 7));
    CoreHarness h(cfg, "gzip");
    h.cpu.run(1000000000, 2000); // unreachable commit target
    EXPECT_LE(h.cpu.cycles(), 2000u);
}

TEST(Core, OccupancyBoundedByFileSize)
{
    const auto cfg = CoreConfig::fourWide(
        rename::RenameConfig::base(64, 7));
    CoreHarness h(cfg, "gzip");
    h.cpu.run(2000);
    h.cpu.beginMeasurement();
    h.cpu.run(8000);
    EXPECT_LE(h.cpu.avgIntOccupancy(), 64.0);
    EXPECT_GE(h.cpu.avgIntOccupancy(), 32.0); // arch state floor
    EXPECT_LE(h.cpu.avgFpOccupancy(), 64.0);
}

TEST(Core, CommittedStreamIdenticalAcrossSchemes)
{
    // The committed instruction stream (and thus total committed
    // branch/load counts over a fixed instruction budget) must not
    // depend on the register-management scheme.
    double branches[3];
    const rename::RenameConfig cfgs[3] = {
        rename::RenameConfig::base(64, 7),
        rename::RenameConfig::priRefcountCkptcount(64, 7),
        rename::RenameConfig::infinite(7),
    };
    for (int i = 0; i < 3; ++i) {
        const auto cfg = CoreConfig::fourWide(cfgs[i]);
        CoreHarness h(cfg, "gcc", 17);
        h.cpu.run(20000);
        branches[i] = h.stats.scalarValue("core.committedBranches");
    }
    // Tiny boundary differences allowed (run() stops at a width
    // granularity), but the streams must agree to within a bundle.
    EXPECT_NEAR(branches[0], branches[1], 8.0);
    EXPECT_NEAR(branches[0], branches[2], 8.0);
}

TEST(Core, BranchRecoveryKeepsDataflowCorrect)
{
    // gcc is the branchiest profile; thousands of squashes happen
    // here. The core's internal dataflow assertion (renamed operand
    // value == architectural value) panics on any corruption, so
    // surviving the run IS the test.
    const auto cfg = CoreConfig::fourWide(
        rename::RenameConfig::priRefcountCkptcount(64, 7));
    CoreHarness h(cfg, "gcc", 23);
    h.cpu.run(40000);
    EXPECT_GT(h.stats.scalarValue("core.branchMispredicts"), 100.0);
    EXPECT_GT(h.stats.scalarValue("core.squashedInsts"), 100.0);
    h.cpu.checkInvariants();
}

TEST(Core, SpeculativeSchedulingReplaysOnLoadMiss)
{
    const auto cfg = CoreConfig::fourWide(
        rename::RenameConfig::base(64, 7));
    CoreHarness h(cfg, "mcf"); // miss-heavy
    h.cpu.run(20000);
    EXPECT_GT(h.stats.scalarValue("core.loadMisses"), 100.0);
    EXPECT_GT(h.stats.scalarValue("core.replays"), 100.0);
    h.cpu.checkInvariants();
}

TEST(Core, StoreToLoadForwardingHappens)
{
    const auto cfg = CoreConfig::fourWide(
        rename::RenameConfig::base(64, 7));
    CoreHarness h(cfg, "vortex"); // store-heavy
    h.cpu.run(30000);
    EXPECT_GT(h.stats.scalarValue("core.loadForwards"), 0.0);
}

TEST(Core, PriInlinesAndFreesEarly)
{
    const auto cfg = CoreConfig::fourWide(
        rename::RenameConfig::priRefcountCkptcount(64, 7));
    CoreHarness h(cfg, "gzip");
    h.cpu.run(20000);
    EXPECT_GT(h.stats.scalarValue("pri.narrowResultsInt"), 1000.0);
    EXPECT_GT(h.stats.scalarValue("pri.inlinedCurrentMap"), 100.0);
    EXPECT_GT(h.stats.scalarValue("pri.earlyFrees"), 1000.0);
    EXPECT_GT(h.stats.scalarValue("rename.srcImmReads"), 100.0);
    EXPECT_GT(h.stats.scalarValue("rename.duplicateCommitFrees"),
              0.0);
    h.cpu.checkInvariants();
}

TEST(Core, IdealPayloadRewriteFiresInCore)
{
    const auto cfg = CoreConfig::fourWide(
        rename::RenameConfig::priIdealCkptcount(64, 7));
    CoreHarness h(cfg, "gzip");
    h.cpu.run(20000);
    EXPECT_GT(h.stats.scalarValue("pri.idealPayloadRewrites"), 0.0);
    h.cpu.checkInvariants();
}

struct SchemeWidthParam
{
    rename::RenameConfig rn;
    unsigned width;
    std::string label;
};

class CoreSchemeTest
    : public ::testing::TestWithParam<SchemeWidthParam>
{
};

TEST_P(CoreSchemeTest, RunsCleanlyWithInvariants)
{
    const auto &prm = GetParam();
    const auto cfg = prm.width == 8
        ? CoreConfig::eightWide(prm.rn)
        : CoreConfig::fourWide(prm.rn);
    CoreHarness h(cfg, "twolf", 5);
    h.cpu.run(15000);
    EXPECT_GE(h.cpu.committedInsts(), 15000u);
    h.cpu.checkInvariants();
    // Conservation: every free matches either a counted allocation
    // or one of the 2x32 initially-allocated architected registers;
    // the remainder is bounded by live registers.
    const double allocs = h.stats.scalarValue("rename.destAllocs");
    const double frees = h.stats.scalarValue("rename.frees");
    EXPECT_LE(frees, allocs + 2.0 * isa::kNumLogicalRegs);
    EXPECT_LE(allocs - frees, 2.0 * cfg.rename.numPhysRegs);
}

std::vector<SchemeWidthParam>
allSchemeWidthParams()
{
    std::vector<SchemeWidthParam> v;
    const std::pair<rename::RenameConfig, std::string> schemes[] = {
        {rename::RenameConfig::base(64, 7), "Base"},
        {rename::RenameConfig::er(64, 7), "ER"},
        {rename::RenameConfig::priRefcountCkptcount(64, 7),
         "PriRefCkpt"},
        {rename::RenameConfig::priRefcountLazy(64, 7), "PriRefLazy"},
        {rename::RenameConfig::priIdealCkptcount(64, 7),
         "PriIdealCkpt"},
        {rename::RenameConfig::priIdealLazy(64, 7), "PriIdealLazy"},
        {rename::RenameConfig::priPlusEr(64, 7), "PriEr"},
        {rename::RenameConfig::infinite(7), "InfPR"},
    };
    for (const auto &[rc, name] : schemes) {
        for (unsigned w : {4u, 8u}) {
            auto rn = rc;
            rn.narrowBitsInt = w == 8 ? 10 : 7;
            v.push_back({rn, w,
                         name + (w == 8 ? "_w8" : "_w4")});
        }
    }
    return v;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemesBothWidths, CoreSchemeTest,
    ::testing::ValuesIn(allSchemeWidthParams()),
    [](const auto &info) { return info.param.label; });

} // namespace
} // namespace pri::core
