/**
 * @file
 * Golden model and differential checker tests.
 *
 * Three layers:
 *  - the golden interpreter itself (deterministic, architectural
 *    state tracks last writes, control flow follows actual outcomes);
 *  - diff-checked simulations across every figure/ablation
 *    configuration (schemes, widths, PRF sizes, scheduler sizes,
 *    narrow-value widths, pooled vs legacy checkpoints);
 *  - fault injection: each planted bug is silent to the core's own
 *    assertions but must kill the run once the checker watches it.
 */

#include <gtest/gtest.h>

#include <map>

#include "golden/diff_checker.hh"
#include "golden/golden_model.hh"
#include "sim/simulation.hh"
#include "workload/profile.hh"
#include "workload/program.hh"

namespace pri
{
namespace
{

workload::SyntheticProgram
makeProgram(const std::string &bench = "gzip", uint64_t seed = 42)
{
    return workload::SyntheticProgram(
        workload::profileByName(bench), seed);
}

TEST(GoldenModel, DeterministicAcrossInstances)
{
    const auto program = makeProgram();
    golden::GoldenModel a(program);
    golden::GoldenModel b(program);
    for (int i = 0; i < 5000; ++i) {
        const auto &x = a.step();
        const auto &y = b.step();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.cls, y.cls);
        ASSERT_TRUE(x.dst == y.dst);
        ASSERT_EQ(x.value, y.value);
        ASSERT_EQ(x.memAddr, y.memAddr);
        ASSERT_EQ(x.taken, y.taken);
        ASSERT_EQ(x.target, y.target);
    }
    EXPECT_EQ(a.committed(), 5000u);
    EXPECT_EQ(a.archFile(), b.archFile());
}

TEST(GoldenModel, ArchFileTracksLastWrite)
{
    const auto program = makeProgram("gcc", 7);
    golden::GoldenModel m(program);
    std::map<unsigned, uint64_t> last;
    for (int i = 0; i < 4000; ++i) {
        const auto &g = m.step();
        if (g.dst.valid())
            last[g.dst.flat()] = g.value;
    }
    for (const auto &[flat, value] : last)
        EXPECT_EQ(m.archReg(flat), value) << "flat reg " << flat;
}

TEST(GoldenModel, TakenBranchesRedirectToTheirTarget)
{
    const auto program = makeProgram("crafty", 3);
    golden::GoldenModel m(program);
    uint64_t pendingTarget = 0;
    bool pending = false;
    unsigned takenSeen = 0;
    for (int i = 0; i < 5000; ++i) {
        const auto &g = m.step();
        if (pending) {
            ASSERT_EQ(g.pc, pendingTarget);
            pending = false;
        }
        if (g.taken) {
            pendingTarget = g.target;
            pending = true;
            ++takenSeen;
        }
    }
    EXPECT_GT(takenSeen, 100u); // the property actually exercised
}

// ----------------------------------------------------------------
// Diff-checked simulations over the figure/ablation grid.
// ----------------------------------------------------------------

sim::RunParams
checkedParams(const std::string &bench, unsigned width,
              sim::Scheme scheme, unsigned pregs = 64)
{
    sim::RunParams p;
    p.benchmark = bench;
    p.width = width;
    p.scheme = scheme;
    p.physRegs = pregs;
    p.warmupInsts = 2000;
    p.measureInsts = 8000;
    p.seed = 42;
    p.checkInvariants = true;
    p.checkGolden = true;
    return p;
}

void
expectClean(const sim::RunParams &p)
{
    const auto r = sim::simulate(p);
    // The checker observed every commit (it panics on divergence,
    // so reaching here with full coverage is the pass condition).
    EXPECT_EQ(r.goldenChecked, r.committedTotal);
    EXPECT_GE(r.goldenChecked, p.warmupInsts + p.measureInsts);
}

TEST(DiffChecker, AllSchemesFourWide)
{
    // Fig 8/10/11 panels plus the §6 VP schemes.
    for (sim::Scheme s : sim::kAllSchemes)
        expectClean(checkedParams("gzip", 4, s));
    expectClean(checkedParams("gzip", 4,
                              sim::Scheme::VirtualPhysical));
    expectClean(checkedParams("gzip", 4,
                              sim::Scheme::VirtualPhysicalPlusPri));
}

TEST(DiffChecker, FpBenchmarkEightWide)
{
    // Fig 12 flavour: FP-heavy workload on the aggressive model.
    for (sim::Scheme s :
         {sim::Scheme::Base, sim::Scheme::PriRefcountCkptcount,
          sim::Scheme::PriPlusEr, sim::Scheme::InfinitePregs})
        expectClean(checkedParams("art", 8, s));
}

TEST(DiffChecker, LegacyCheckpointPath)
{
    for (sim::Scheme s :
         {sim::Scheme::Base, sim::Scheme::PriRefcountCkptcount}) {
        auto p = checkedParams("crafty", 4, s);
        p.pooledCheckpoints = false;
        expectClean(p);
    }
}

TEST(DiffChecker, PrfSizeSweep)
{
    // Fig 9 axis.
    for (unsigned pregs : {48u, 64u, 96u, 128u})
        expectClean(checkedParams(
            "mcf", 4, sim::Scheme::PriRefcountCkptcount, pregs));
}

TEST(DiffChecker, NarrowWidthAblation)
{
    for (unsigned bits : {4u, 7u, 10u, 12u}) {
        auto p = checkedParams("gzip", 4,
                               sim::Scheme::PriRefcountCkptcount);
        p.narrowBitsOverride = bits;
        expectClean(p);
    }
}

TEST(DiffChecker, SchedulerSizeSweep)
{
    for (unsigned sched : {16u, 64u}) {
        auto p = checkedParams("parser", 4,
                               sim::Scheme::PriRefcountCkptcount);
        p.schedSizeOverride = sched;
        expectClean(p);
    }
}

TEST(DiffChecker, CountsEveryCommitIncludingWarmup)
{
    auto p = checkedParams("gzip", 4, sim::Scheme::Base);
    const auto r = sim::simulate(p);
    EXPECT_EQ(r.goldenChecked, r.committedTotal);
    // Commit drains whole width-groups, so totals may overshoot the
    // requested budget by at most one group per run() call.
    EXPECT_LT(r.committedTotal,
              p.warmupInsts + p.measureInsts + 2 * p.width);
}

// ----------------------------------------------------------------
// Fault injection: the checker must catch bugs the core's own
// always-on assertions cannot see.
// ----------------------------------------------------------------

using DiffCheckerDeathTest = ::testing::Test;

TEST(DiffCheckerDeathTest, StaleWalkerGidxIsSilentWithoutChecker)
{
    // The planted bug is self-consistent: committed values are wrong
    // but the core's internal dataflow assertions all still hold, so
    // the run completes. This is what makes the golden model the
    // unique detector (and this test guards that premise).
    auto p = checkedParams("gzip", 4,
                           sim::Scheme::PriRefcountCkptcount);
    p.checkGolden = false;
    p.injectFault = core::InjectedFault::StaleWalkerGidx;
    const auto r = sim::simulate(p);
    EXPECT_GE(r.committedTotal, p.warmupInsts + p.measureInsts);
}

TEST(DiffCheckerDeathTest, CatchesStaleWalkerGidx)
{
    auto p = checkedParams("gzip", 4,
                           sim::Scheme::PriRefcountCkptcount);
    p.injectFault = core::InjectedFault::StaleWalkerGidx;
    EXPECT_DEATH(sim::simulate(p), "golden divergence");
}

TEST(DiffCheckerDeathTest, CatchesCommitWrongPath)
{
    auto p = checkedParams("crafty", 4, sim::Scheme::Base);
    p.injectFault = core::InjectedFault::CommitWrongPath;
    EXPECT_DEATH(sim::simulate(p), "golden divergence");
}

TEST(DiffCheckerDeathTest, PortOverGrantIsSilentWithoutChecker)
{
    // The over-granting arbiter keeps the machine self-consistent
    // and only the observed commit stream carries the stale read,
    // so without the checker the run completes cleanly — the
    // golden model is the unique detector.
    auto p = checkedParams("gcc", 8,
                           sim::Scheme::PriRefcountCkptcount);
    p.checkGolden = false;
    p.prfReadPorts = 2;
    p.injectFault = core::InjectedFault::PortOverGrant;
    const auto r = sim::simulate(p);
    EXPECT_GE(r.committedTotal, p.warmupInsts + p.measureInsts);
    EXPECT_EQ(r.goldenChecked, 0u);
}

TEST(DiffCheckerDeathTest, CatchesPortOverGrant)
{
    auto p = checkedParams("gcc", 8,
                           sim::Scheme::PriRefcountCkptcount);
    p.prfReadPorts = 2;
    p.injectFault = core::InjectedFault::PortOverGrant;
    EXPECT_DEATH(sim::simulate(p), "golden divergence");
}

/** The port-limited machine (without any planted fault) must stay
 *  golden-clean: arbitration delays issue but never changes the
 *  committed dataflow. */
TEST(DiffChecker, PortLimitedMachineStaysClean)
{
    for (unsigned ports : {2u, 4u, 8u}) {
        auto p = checkedParams("gcc", 8,
                               sim::Scheme::PriRefcountCkptcount);
        p.prfReadPorts = ports;
        expectClean(p);
    }
}

TEST(DiffCheckerDeathTest, CatchesFreeWithoutInline)
{
    // The rename bug frees a narrow destination's physical register
    // without writing the inlined value into the map, leaving the
    // map naming a free register. The checker's periodic audit (or
    // a divergent read-through value) must kill the run.
    // Audit every commit: detection must land within one retire
    // window of the bad free, before any consumer of the stale
    // mapping reaches execute.
    auto p = checkedParams("gzip", 4,
                           sim::Scheme::PriRefcountCkptcount);
    p.injectFreeWithoutInline = true;
    p.goldenAuditInterval = 1;
    EXPECT_DEATH(sim::simulate(p),
                 "map names a free register|golden divergence");
}

} // namespace
} // namespace pri
