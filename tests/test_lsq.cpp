/**
 * @file
 * Tests for the load/store queue with oracle forwarding.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/hashing.hh"
#include "core/lsq.hh"

namespace pri::core
{
namespace
{

TEST(Lsq, InsertCommitRoundTrip)
{
    Lsq lsq(4);
    EXPECT_FALSE(lsq.full());
    lsq.insert(1, 0x100, false);
    lsq.insert(2, 0x200, true);
    EXPECT_EQ(lsq.occupancy(), 2u);
    lsq.commitHead(1);
    lsq.commitHead(2);
    EXPECT_EQ(lsq.occupancy(), 0u);
}

TEST(Lsq, FullAtCapacity)
{
    Lsq lsq(2);
    lsq.insert(1, 0x0, false);
    lsq.insert(2, 0x8, false);
    EXPECT_TRUE(lsq.full());
}

TEST(Lsq, ForwardFromOlderStoreSameWord)
{
    Lsq lsq(8);
    lsq.insert(10, 0x1000, true); // store
    lsq.insert(11, 0x1000, false);
    EXPECT_TRUE(lsq.forwardHit(11, 0x1000));
    // Same 8-byte word, different byte offset: still forwards.
    EXPECT_TRUE(lsq.forwardHit(11, 0x1004));
    // Different word: no forward.
    EXPECT_FALSE(lsq.forwardHit(11, 0x1008));
}

TEST(Lsq, NoForwardFromYoungerStore)
{
    Lsq lsq(8);
    lsq.insert(20, 0x2000, false); // the load
    lsq.insert(21, 0x2000, true);  // younger store
    EXPECT_FALSE(lsq.forwardHit(20, 0x2000));
}

TEST(Lsq, NoForwardFromLoads)
{
    Lsq lsq(8);
    lsq.insert(30, 0x3000, false);
    EXPECT_FALSE(lsq.forwardHit(31, 0x3000));
}

TEST(Lsq, SquashDropsYoungerOnly)
{
    Lsq lsq(8);
    lsq.insert(1, 0x10, true);
    lsq.insert(5, 0x20, true);
    lsq.insert(9, 0x30, true);
    lsq.squashYounger(5);
    EXPECT_EQ(lsq.occupancy(), 2u);
    EXPECT_FALSE(lsq.forwardHit(100, 0x30));
    EXPECT_TRUE(lsq.forwardHit(100, 0x20));
    // Tail reuse after squash works.
    lsq.insert(6, 0x40, true);
    EXPECT_TRUE(lsq.forwardHit(100, 0x40));
}

/**
 * Property test: the word-hash forwarding index must agree with the
 * legacy linear scan under randomized insert / commit / squash
 * sequences that wrap the ring many times. All randomness is
 * counter-based (pure function of seed and step), so a failure
 * reproduces exactly.
 */
TEST(Lsq, IndexMatchesLinearScanUnderRandomOps)
{
    constexpr uint64_t kSeed = 0xc0ffee;
    constexpr unsigned kSize = 8; // small: frequent wraparound
    constexpr unsigned kSteps = 4000;
    // Few distinct words so chains collide and go multi-entry.
    constexpr uint64_t kWords[] = {0x1000, 0x1008, 0x1010, 0x2000};

    Lsq lsq(kSize);
    std::vector<uint64_t> live_seqs; // queue order, oldest first
    uint64_t next_seq = 1;           // monotone, never rolled back

    for (unsigned step = 0; step < kSteps; ++step) {
        const auto pick = [&](uint64_t salt, uint64_t bound) {
            return hashCombine(kSeed, step, salt) % bound;
        };
        const unsigned op = static_cast<unsigned>(pick(1, 4));
        SCOPED_TRACE(testing::Message()
                     << "step " << step << " op " << op);

        if (op <= 1 && !lsq.full()) {
            // Insert (biased: half the op space) a load or store at
            // a random byte of a random word.
            const uint64_t addr = kWords[pick(2, std::size(kWords))]
                + pick(3, 8);
            lsq.insert(next_seq, addr, pick(4, 2) != 0);
            live_seqs.push_back(next_seq++);
        } else if (op == 2 && !live_seqs.empty()) {
            lsq.commitHead(live_seqs.front());
            live_seqs.erase(live_seqs.begin());
        } else if (op == 3 && !live_seqs.empty()) {
            // Squash at a random surviving entry (or everything).
            const uint64_t cut = pick(5, live_seqs.size() + 1) == 0
                ? live_seqs.front() - 1
                : live_seqs[pick(6, live_seqs.size())];
            lsq.squashYounger(cut);
            while (!live_seqs.empty() && live_seqs.back() > cut)
                live_seqs.pop_back();
        }

        // Cross-check the index against the linear scan for every
        // word at several load ages, including older- and
        // younger-than-everything probes.
        for (const uint64_t word : kWords) {
            for (const uint64_t load_seq :
                 {uint64_t{0}, next_seq / 2, next_seq}) {
                ASSERT_EQ(lsq.forwardHit(load_seq, word),
                          lsq.forwardHitLinear(load_seq, word))
                    << "word " << std::hex << word << std::dec
                    << " load_seq " << load_seq;
            }
        }
    }
}

TEST(Lsq, WrapAroundKeepsOrder)
{
    Lsq lsq(3);
    lsq.insert(1, 0x10, true);
    lsq.insert(2, 0x20, true);
    lsq.commitHead(1);
    lsq.insert(3, 0x30, true); // wraps
    lsq.commitHead(2);
    lsq.insert(4, 0x40, true);
    EXPECT_TRUE(lsq.forwardHit(9, 0x30));
    EXPECT_TRUE(lsq.forwardHit(9, 0x40));
    lsq.commitHead(3);
    lsq.commitHead(4);
    EXPECT_EQ(lsq.occupancy(), 0u);
}

} // namespace
} // namespace pri::core
