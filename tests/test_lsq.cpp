/**
 * @file
 * Tests for the load/store queue with oracle forwarding.
 */

#include <gtest/gtest.h>

#include "core/lsq.hh"

namespace pri::core
{
namespace
{

TEST(Lsq, InsertCommitRoundTrip)
{
    Lsq lsq(4);
    EXPECT_FALSE(lsq.full());
    lsq.insert(1, 0x100, false);
    lsq.insert(2, 0x200, true);
    EXPECT_EQ(lsq.occupancy(), 2u);
    lsq.commitHead(1);
    lsq.commitHead(2);
    EXPECT_EQ(lsq.occupancy(), 0u);
}

TEST(Lsq, FullAtCapacity)
{
    Lsq lsq(2);
    lsq.insert(1, 0x0, false);
    lsq.insert(2, 0x8, false);
    EXPECT_TRUE(lsq.full());
}

TEST(Lsq, ForwardFromOlderStoreSameWord)
{
    Lsq lsq(8);
    lsq.insert(10, 0x1000, true); // store
    lsq.insert(11, 0x1000, false);
    EXPECT_TRUE(lsq.forwardHit(11, 0x1000));
    // Same 8-byte word, different byte offset: still forwards.
    EXPECT_TRUE(lsq.forwardHit(11, 0x1004));
    // Different word: no forward.
    EXPECT_FALSE(lsq.forwardHit(11, 0x1008));
}

TEST(Lsq, NoForwardFromYoungerStore)
{
    Lsq lsq(8);
    lsq.insert(20, 0x2000, false); // the load
    lsq.insert(21, 0x2000, true);  // younger store
    EXPECT_FALSE(lsq.forwardHit(20, 0x2000));
}

TEST(Lsq, NoForwardFromLoads)
{
    Lsq lsq(8);
    lsq.insert(30, 0x3000, false);
    EXPECT_FALSE(lsq.forwardHit(31, 0x3000));
}

TEST(Lsq, SquashDropsYoungerOnly)
{
    Lsq lsq(8);
    lsq.insert(1, 0x10, true);
    lsq.insert(5, 0x20, true);
    lsq.insert(9, 0x30, true);
    lsq.squashYounger(5);
    EXPECT_EQ(lsq.occupancy(), 2u);
    EXPECT_FALSE(lsq.forwardHit(100, 0x30));
    EXPECT_TRUE(lsq.forwardHit(100, 0x20));
    // Tail reuse after squash works.
    lsq.insert(6, 0x40, true);
    EXPECT_TRUE(lsq.forwardHit(100, 0x40));
}

TEST(Lsq, WrapAroundKeepsOrder)
{
    Lsq lsq(3);
    lsq.insert(1, 0x10, true);
    lsq.insert(2, 0x20, true);
    lsq.commitHead(1);
    lsq.insert(3, 0x30, true); // wraps
    lsq.commitHead(2);
    lsq.insert(4, 0x40, true);
    EXPECT_TRUE(lsq.forwardHit(9, 0x30));
    EXPECT_TRUE(lsq.forwardHit(9, 0x40));
    lsq.commitHead(3);
    lsq.commitHead(4);
    EXPECT_EQ(lsq.occupancy(), 0u);
}

} // namespace
} // namespace pri::core
