/**
 * @file
 * Unit tests for the significance-check bit utilities that gate
 * physical register inlining.
 */

#include <gtest/gtest.h>

#include "common/bitutils.hh"

namespace pri
{
namespace
{

TEST(SignExtend, ZeroBitsGivesZero)
{
    EXPECT_EQ(signExtend(0xffff, 0), 0);
}

TEST(SignExtend, PositiveValueUnchanged)
{
    EXPECT_EQ(signExtend(0x3f, 7), 0x3f);
    EXPECT_EQ(signExtend(5, 8), 5);
}

TEST(SignExtend, NegativeValueExtended)
{
    EXPECT_EQ(signExtend(0x7f, 7), -1);
    EXPECT_EQ(signExtend(0x40, 7), -64);
    EXPECT_EQ(signExtend(0x80, 8), -128);
}

TEST(SignExtend, FullWidthIdentity)
{
    EXPECT_EQ(signExtend(0xdeadbeefdeadbeefULL, 64),
              static_cast<int64_t>(0xdeadbeefdeadbeefULL));
}

TEST(FitsInSignedBits, SevenBitBoundaries)
{
    // The 4-wide machine inlines values representable in 7 bits:
    // [-64, 63].
    EXPECT_TRUE(fitsInSignedBits(63, 7));
    EXPECT_FALSE(fitsInSignedBits(64, 7));
    EXPECT_TRUE(fitsInSignedBits(static_cast<uint64_t>(-64), 7));
    EXPECT_FALSE(fitsInSignedBits(static_cast<uint64_t>(-65), 7));
    EXPECT_TRUE(fitsInSignedBits(0, 7));
    EXPECT_TRUE(fitsInSignedBits(static_cast<uint64_t>(-1), 7));
}

TEST(FitsInSignedBits, TenBitBoundaries)
{
    // The 8-wide machine inlines 10-bit values: [-512, 511].
    EXPECT_TRUE(fitsInSignedBits(511, 10));
    EXPECT_FALSE(fitsInSignedBits(512, 10));
    EXPECT_TRUE(fitsInSignedBits(static_cast<uint64_t>(-512), 10));
    EXPECT_FALSE(fitsInSignedBits(static_cast<uint64_t>(-513), 10));
}

TEST(FitsInSignedBits, ZeroBitsNeverFits)
{
    EXPECT_FALSE(fitsInSignedBits(0, 0));
}

TEST(FitsInSignedBits, SixtyFourAlwaysFits)
{
    EXPECT_TRUE(fitsInSignedBits(0xffffffffffffffffULL, 64));
    EXPECT_TRUE(fitsInSignedBits(0x8000000000000000ULL, 64));
}

TEST(SignificantBits, SmallValues)
{
    EXPECT_EQ(significantBits(0), 1u);
    EXPECT_EQ(significantBits(static_cast<uint64_t>(-1)), 1u);
    EXPECT_EQ(significantBits(1), 2u);
    EXPECT_EQ(significantBits(static_cast<uint64_t>(-2)), 2u);
    EXPECT_EQ(significantBits(127), 8u);
    EXPECT_EQ(significantBits(128), 9u);
    EXPECT_EQ(significantBits(static_cast<uint64_t>(-128)), 8u);
    EXPECT_EQ(significantBits(static_cast<uint64_t>(-129)), 9u);
}

TEST(SignificantBits, ConsistentWithFitsInSignedBits)
{
    // Property: significantBits(v) is the smallest w with
    // fitsInSignedBits(v, w).
    const uint64_t samples[] = {
        0, 1, 2, 63, 64, 127, 511, 512, 0xffffULL, 0x7fffffffULL,
        0xffffffffULL, 0x123456789abcdefULL,
        static_cast<uint64_t>(-1), static_cast<uint64_t>(-64),
        static_cast<uint64_t>(-65), static_cast<uint64_t>(-512),
        static_cast<uint64_t>(-513),
        0x8000000000000000ULL,
    };
    for (uint64_t v : samples) {
        const unsigned w = significantBits(v);
        EXPECT_TRUE(fitsInSignedBits(v, w)) << v << " w=" << w;
        if (w > 1)
            EXPECT_FALSE(fitsInSignedBits(v, w - 1))
                << v << " w=" << w;
    }
}

TEST(FpFields, DecomposesOne)
{
    // 1.0 = 0x3FF0000000000000
    const auto f = fpFields(0x3ff0000000000000ULL);
    EXPECT_EQ(f.sign, 0u);
    EXPECT_EQ(f.exponent, 0x3ffu);
    EXPECT_EQ(f.significand, 0u);
}

TEST(FpTrivial, ZeroAndAllOnes)
{
    EXPECT_TRUE(fpValueTrivial(0));
    EXPECT_TRUE(fpValueTrivial(~uint64_t{0}));
    EXPECT_FALSE(fpValueTrivial(0x3ff0000000000000ULL)); // 1.0
}

TEST(FpTrivial, ExponentAndSignificandFields)
{
    EXPECT_TRUE(fpExponentTrivial(0));                    // +0.0
    EXPECT_TRUE(fpSignificandTrivial(0));
    EXPECT_TRUE(fpSignificandTrivial(0x3ff0000000000000ULL)); // 1.0
    EXPECT_FALSE(fpExponentTrivial(0x3ff0000000000000ULL));
    // Infinity: exponent all ones, significand zero.
    EXPECT_TRUE(fpExponentTrivial(0x7ff0000000000000ULL));
}

TEST(Pow2Helpers, Basics)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(48));
    EXPECT_EQ(nextPow2(5), 8u);
    EXPECT_EQ(log2Exact(4096), 12u);
}

} // namespace
} // namespace pri
