/**
 * @file
 * Tests for the ISA model: op classes, latencies, register ids.
 */

#include <gtest/gtest.h>

#include "isa/op_class.hh"
#include "isa/reg.hh"

namespace pri::isa
{
namespace
{

TEST(OpClass, Predicates)
{
    EXPECT_TRUE(isLoad(OpClass::Load));
    EXPECT_FALSE(isLoad(OpClass::Store));
    EXPECT_TRUE(isStore(OpClass::Store));
    EXPECT_TRUE(isMem(OpClass::Load));
    EXPECT_TRUE(isMem(OpClass::Store));
    EXPECT_FALSE(isMem(OpClass::IntAlu));
    EXPECT_TRUE(isBranch(OpClass::Branch));
    EXPECT_TRUE(isFp(OpClass::FpAdd));
    EXPECT_TRUE(isFp(OpClass::FpMult));
    EXPECT_TRUE(isFp(OpClass::FpDiv));
    EXPECT_FALSE(isFp(OpClass::IntMult));
}

TEST(OpClass, LatenciesAreSimpleScalarLike)
{
    EXPECT_EQ(execLatency(OpClass::IntAlu), 1u);
    EXPECT_EQ(execLatency(OpClass::IntMult), 3u);
    EXPECT_EQ(execLatency(OpClass::IntDiv), 20u);
    EXPECT_EQ(execLatency(OpClass::FpAdd), 2u);
    EXPECT_EQ(execLatency(OpClass::FpMult), 4u);
    EXPECT_EQ(execLatency(OpClass::FpDiv), 12u);
    EXPECT_EQ(execLatency(OpClass::Branch), 1u);
}

TEST(OpClass, NamesAreDistinct)
{
    EXPECT_EQ(opClassName(OpClass::Load), "load");
    EXPECT_EQ(opClassName(OpClass::FpMult), "fmul");
    EXPECT_NE(opClassName(OpClass::IntAlu),
              opClassName(OpClass::IntMult));
}

TEST(RegId, ValidityAndEquality)
{
    EXPECT_FALSE(noReg().valid());
    EXPECT_TRUE(intReg(0).valid());
    EXPECT_EQ(intReg(5), intReg(5));
    EXPECT_FALSE(intReg(5) == fpReg(5));
    EXPECT_FALSE(intReg(5) == intReg(6));
}

TEST(RegId, FlatIndexSeparatesClasses)
{
    EXPECT_EQ(intReg(0).flat(), 0u);
    EXPECT_EQ(intReg(31).flat(), 31u);
    EXPECT_EQ(fpReg(0).flat(), 32u);
    EXPECT_EQ(fpReg(31).flat(), 63u);
}

TEST(RegId, StringForm)
{
    EXPECT_EQ(intReg(3).str(), "r3");
    EXPECT_EQ(fpReg(17).str(), "f17");
    EXPECT_EQ(noReg().str(), "-");
}

} // namespace
} // namespace pri::isa
