/**
 * @file
 * Tests for the analytical register-file model.
 */

#include <gtest/gtest.h>

#include "rename/prf_model.hh"

namespace pri::rename
{
namespace
{

TEST(PrfModel, BaselineNormalisesToOne)
{
    const auto e = PrfModel::estimate(PrfGeometry{});
    EXPECT_DOUBLE_EQ(e.accessDelay, 1.0);
    EXPECT_DOUBLE_EQ(e.area, 1.0);
    EXPECT_DOUBLE_EQ(e.energyPerAccess, 1.0);
}

TEST(PrfModel, DelayGrowsWithEntries)
{
    PrfGeometry small{48, 64, 8, 4};
    PrfGeometry big{256, 64, 8, 4};
    EXPECT_LT(PrfModel::rawDelay(small), PrfModel::rawDelay(big));
    // Monotone over the whole sweep.
    double prev = 0.0;
    for (unsigned r = 32; r <= 512; r *= 2) {
        PrfGeometry g{r, 64, 8, 4};
        const double d = PrfModel::rawDelay(g);
        EXPECT_GT(d, prev);
        prev = d;
    }
}

TEST(PrfModel, PortsDominateArea)
{
    // Area grows quadratically with ports (pitch in both
    // dimensions) — the classic superscalar register-file problem.
    PrfGeometry narrow{64, 64, 4, 2};
    PrfGeometry wide{64, 64, 16, 8};
    const double ratio =
        PrfModel::rawArea(wide) / PrfModel::rawArea(narrow);
    EXPECT_GT(ratio, 4.0);
}

TEST(PrfModel, EightWideMachineNeedsFasterOrFewerRegisters)
{
    // Doubling ports at the same entry count must increase delay.
    PrfGeometry w4{64, 64, 8, 4};
    PrfGeometry w8{64, 64, 16, 8};
    EXPECT_GT(PrfModel::rawDelay(w8), PrfModel::rawDelay(w4));
}

TEST(PrfModel, EntriesWithinDelayInvertsRawDelay)
{
    PrfGeometry base{64, 64, 8, 4};
    const double budget = PrfModel::rawDelay(base);
    const unsigned r =
        PrfModel::entriesWithinDelay(budget, base, 32, 512);
    EXPECT_EQ(r, 64u);
    // A generous budget admits more entries.
    const unsigned r2 =
        PrfModel::entriesWithinDelay(budget * 1.5, base, 32, 512);
    EXPECT_GT(r2, 64u);
}

TEST(PrfModel, ReadPortsWithinDelayInvertsRawDelay)
{
    PrfGeometry base{64, 64, 8, 4};
    const double budget = PrfModel::rawDelay(base);
    EXPECT_EQ(PrfModel::readPortsWithinDelay(budget, base, 1, 32),
              8u);
    // A generous budget admits more ports, a tight one fewer.
    EXPECT_GT(
        PrfModel::readPortsWithinDelay(budget * 1.5, base, 1, 32),
        8u);
    EXPECT_LT(
        PrfModel::readPortsWithinDelay(budget * 0.8, base, 1, 32),
        8u);
    // Monotone in the budget over a fine sweep.
    unsigned prev = 0;
    for (double scale = 0.7; scale <= 1.6; scale += 0.1) {
        const unsigned p = PrfModel::readPortsWithinDelay(
            budget * scale, base, 1, 32);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(PrfModel, PortsForIssueWidthScalesWithInlining)
{
    // No inlining: the classic two read ports per issue slot.
    EXPECT_EQ(PrfModel::portsForIssueWidth(4, 0.0), 8u);
    EXPECT_EQ(PrfModel::portsForIssueWidth(8, 0.0), 16u);
    // Inlined operands bypass the array: the port count shrinks
    // proportionally, never below the arbiter floor of 2.
    EXPECT_EQ(PrfModel::portsForIssueWidth(8, 0.5), 8u);
    EXPECT_EQ(PrfModel::portsForIssueWidth(8, 1.0), 2u);
    EXPECT_EQ(PrfModel::portsForIssueWidth(1, 0.9), 2u);
    // Monotone non-increasing in the inlined fraction.
    unsigned prev = ~0u;
    for (double f = 0.0; f <= 1.0; f += 0.05) {
        const unsigned p = PrfModel::portsForIssueWidth(8, f);
        EXPECT_LE(p, prev);
        prev = p;
    }
}

TEST(PrfModel, EnergyScalesWithEntriesAndWidth)
{
    PrfGeometry g{64, 64, 8, 4};
    PrfGeometry twice_entries{128, 64, 8, 4};
    PrfGeometry twice_bits{64, 128, 8, 4};
    EXPECT_GT(PrfModel::rawEnergy(twice_entries),
              PrfModel::rawEnergy(g));
    EXPECT_GT(PrfModel::rawEnergy(twice_bits),
              PrfModel::rawEnergy(g));
}

} // namespace
} // namespace pri::rename
