/**
 * @file
 * Tests for the analytical register-file model.
 */

#include <gtest/gtest.h>

#include "rename/prf_model.hh"

namespace pri::rename
{
namespace
{

TEST(PrfModel, BaselineNormalisesToOne)
{
    const auto e = PrfModel::estimate(PrfGeometry{});
    EXPECT_DOUBLE_EQ(e.accessDelay, 1.0);
    EXPECT_DOUBLE_EQ(e.area, 1.0);
    EXPECT_DOUBLE_EQ(e.energyPerAccess, 1.0);
}

TEST(PrfModel, DelayGrowsWithEntries)
{
    PrfGeometry small{48, 64, 8, 4};
    PrfGeometry big{256, 64, 8, 4};
    EXPECT_LT(PrfModel::rawDelay(small), PrfModel::rawDelay(big));
    // Monotone over the whole sweep.
    double prev = 0.0;
    for (unsigned r = 32; r <= 512; r *= 2) {
        PrfGeometry g{r, 64, 8, 4};
        const double d = PrfModel::rawDelay(g);
        EXPECT_GT(d, prev);
        prev = d;
    }
}

TEST(PrfModel, PortsDominateArea)
{
    // Area grows quadratically with ports (pitch in both
    // dimensions) — the classic superscalar register-file problem.
    PrfGeometry narrow{64, 64, 4, 2};
    PrfGeometry wide{64, 64, 16, 8};
    const double ratio =
        PrfModel::rawArea(wide) / PrfModel::rawArea(narrow);
    EXPECT_GT(ratio, 4.0);
}

TEST(PrfModel, EightWideMachineNeedsFasterOrFewerRegisters)
{
    // Doubling ports at the same entry count must increase delay.
    PrfGeometry w4{64, 64, 8, 4};
    PrfGeometry w8{64, 64, 16, 8};
    EXPECT_GT(PrfModel::rawDelay(w8), PrfModel::rawDelay(w4));
}

TEST(PrfModel, EntriesWithinDelayInvertsRawDelay)
{
    PrfGeometry base{64, 64, 8, 4};
    const double budget = PrfModel::rawDelay(base);
    const unsigned r =
        PrfModel::entriesWithinDelay(budget, base, 32, 512);
    EXPECT_EQ(r, 64u);
    // A generous budget admits more entries.
    const unsigned r2 =
        PrfModel::entriesWithinDelay(budget * 1.5, base, 32, 512);
    EXPECT_GT(r2, 64u);
}

TEST(PrfModel, EnergyScalesWithEntriesAndWidth)
{
    PrfGeometry g{64, 64, 8, 4};
    PrfGeometry twice_entries{128, 64, 8, 4};
    PrfGeometry twice_bits{64, 128, 8, 4};
    EXPECT_GT(PrfModel::rawEnergy(twice_entries),
              PrfModel::rawEnergy(g));
    EXPECT_GT(PrfModel::rawEnergy(twice_bits),
              PrfModel::rawEnergy(g));
}

} // namespace
} // namespace pri::rename
