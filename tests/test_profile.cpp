/**
 * @file
 * Tests for benchmark profiles and the width-CDF machinery that
 * drives operand significance (paper Figure 2).
 */

#include <gtest/gtest.h>

#include "workload/profile.hh"

namespace pri::workload
{
namespace
{

TEST(WidthCdf, InterpolatesControlPoints)
{
    WidthCdf cdf({{1, 0.2}, {8, 0.5}, {32, 0.9}, {64, 1.0}});
    EXPECT_DOUBLE_EQ(cdf.at(1), 0.2);
    EXPECT_DOUBLE_EQ(cdf.at(8), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(64), 1.0);
    // Monotone, interpolated in between.
    double prev = 0.0;
    for (unsigned b = 1; b <= 64; ++b) {
        EXPECT_GE(cdf.at(b), prev);
        prev = cdf.at(b);
    }
    EXPECT_GT(cdf.at(4), 0.2);
    EXPECT_LT(cdf.at(4), 0.5);
}

TEST(WidthCdf, SampleInverseMatchesCdf)
{
    WidthCdf cdf({{1, 0.25}, {10, 0.5}, {32, 0.9}, {64, 1.0}});
    // Sampling with u just below a control value yields a width at
    // or below that control point.
    EXPECT_LE(cdf.sample(0.2), 1u);
    EXPECT_LE(cdf.sample(0.49), 10u);
    EXPECT_LE(cdf.sample(0.89), 32u);
    EXPECT_LE(cdf.sample(0.999), 64u);
    EXPECT_GE(cdf.sample(0.95), 32u);
}

TEST(WidthCdf, SampledDistributionMatchesTargets)
{
    WidthCdf cdf({{1, 0.25}, {10, 0.5}, {32, 0.9}, {64, 1.0}});
    const int n = 40000;
    int le10 = 0;
    for (int i = 0; i < n; ++i) {
        const double u =
            (static_cast<double>(i) + 0.5) / n; // stratified
        if (cdf.sample(u) <= 10)
            ++le10;
    }
    EXPECT_NEAR(static_cast<double>(le10) / n, 0.5, 0.02);
}

TEST(Profiles, SuitesHavePaperCounts)
{
    // 12 SPECint benchmarks + vpr with both inputs = 13 rows;
    // 14 SPECfp benchmarks (paper Table 2).
    EXPECT_EQ(specIntProfiles().size(), 13u);
    EXPECT_EQ(specFpProfiles().size(), 14u);
    EXPECT_EQ(allProfiles().size(), 27u);
}

TEST(Profiles, LookupByName)
{
    EXPECT_EQ(profileByName("gzip").name, "gzip");
    EXPECT_EQ(profileByName("ammp").suite, Suite::Fp);
    EXPECT_EQ(profileByName("mcf").suite, Suite::Int);
}

TEST(Profiles, MixFractionsAreSane)
{
    for (const auto &p : allProfiles()) {
        const double total = p.fracLoad + p.fracStore +
            p.fracBranch + p.fracIntMult + p.fracIntDiv +
            p.fracFpAdd + p.fracFpMult + p.fracFpDiv;
        EXPECT_LT(total, 1.0) << p.name;
        EXPECT_GT(p.fracLoad, 0.0) << p.name;
        EXPECT_GT(p.fracBranch, 0.0) << p.name;
        EXPECT_FALSE(p.widthPoints.empty()) << p.name;
        EXPECT_GE(p.fpFracZero, 0.0) << p.name;
        EXPECT_LE(p.fpFracZero, 1.0) << p.name;
        EXPECT_GT(p.paperIpc4, 0.0) << p.name;
        EXPECT_GT(p.paperIpc8, 0.0) << p.name;
    }
}

TEST(Profiles, NarrowHeavyVsWideBenchmarksDiffer)
{
    // gzip is the paper's best case for narrow integer operands,
    // crafty (64-bit chess bitboards) the worst.
    const WidthCdf gzip(profileByName("gzip").widthPoints);
    const WidthCdf crafty(profileByName("crafty").widthPoints);
    EXPECT_GT(gzip.at(10), 0.7);
    EXPECT_LT(crafty.at(10), 0.3);
}

} // namespace
} // namespace pri::workload
