/**
 * @file
 * Tests for the software dead-value hint extension (paper §6): the
 * generator's hint instructions, their zero values, and the PRI
 * interaction that frees the dead register early.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "workload/program.hh"
#include "workload/walker.hh"

namespace pri::workload
{
namespace
{

BenchmarkProfile
hintedProfile(double frac)
{
    BenchmarkProfile p = profileByName("crafty");
    p.deadHintFrac = frac;
    return p;
}

TEST(DeadHints, DefaultProfilesHaveNone)
{
    for (const auto &p : allProfiles())
        EXPECT_EQ(p.deadHintFrac, 0.0) << p.name;
    SyntheticProgram prog(profileByName("crafty"), 9);
    for (uint32_t b = 0; b < prog.numBlocks(); ++b)
        for (const auto &si : prog.block(b).insts)
            EXPECT_FALSE(si.isDeadHint);
}

TEST(DeadHints, DensityControlsStaticHintCount)
{
    const auto p0 = hintedProfile(0.0);
    const auto p5 = hintedProfile(0.5);
    const auto p10 = hintedProfile(1.0);
    SyntheticProgram g0(p0, 9);
    SyntheticProgram g5(p5, 9);
    SyntheticProgram g10(p10, 9);

    auto count_hints = [](const SyntheticProgram &g) {
        size_t n = 0;
        for (uint32_t b = 0; b < g.numBlocks(); ++b)
            for (const auto &si : g.block(b).insts)
                n += si.isDeadHint;
        return n;
    };
    EXPECT_EQ(count_hints(g0), 0u);
    const size_t h5 = count_hints(g5);
    const size_t h10 = count_hints(g10);
    EXPECT_GT(h5, 0u);
    EXPECT_GT(h10, h5);
    // Full density: nearly one hint per block.
    EXPECT_GE(h10, g10.numBlocks() * 9 / 10);
}

TEST(DeadHints, ProgramOtherwiseIdenticalAcrossDensities)
{
    // Sweeps must be paired: non-hint instructions are unchanged.
    const auto pa = hintedProfile(0.0);
    const auto pb = hintedProfile(1.0);
    SyntheticProgram a(pa, 9);
    SyntheticProgram b(pb, 9);
    ASSERT_EQ(a.numBlocks(), b.numBlocks());
    for (uint32_t i = 0; i < a.numBlocks(); ++i) {
        const auto &ba = a.block(i);
        const auto &bb = b.block(i);
        size_t ka = 0;
        for (const auto &si : bb.insts) {
            if (si.isDeadHint)
                continue;
            ASSERT_LT(ka, ba.insts.size());
            EXPECT_EQ(ba.insts[ka].cls, si.cls);
            EXPECT_EQ(ba.insts[ka].pc, si.pc);
            ++ka;
        }
        EXPECT_EQ(ka, ba.insts.size());
    }
}

TEST(DeadHints, HintsAlwaysProduceZero)
{
    const auto p = hintedProfile(1.0);
    SyntheticProgram prog(p, 9);
    Walker w(prog);
    size_t seen = 0;
    for (int i = 0; i < 20000; ++i) {
        auto wi = w.next();
        if (wi.isBranch())
            w.steer(wi, wi.taken, wi.actualTarget);
        const auto &si = [&]() -> const StaticInst & {
            // Re-locate the static instruction to check the flag.
            for (uint32_t b = 0; b < prog.numBlocks(); ++b)
                for (const auto &s : prog.block(b).insts)
                    if (s.id == wi.staticId)
                        return s;
            static StaticInst none;
            return none;
        }();
        if (si.isDeadHint) {
            ++seen;
            EXPECT_EQ(wi.resultValue, 0u);
            EXPECT_TRUE(wi.hasDst());
        }
    }
    EXPECT_GT(seen, 100u);
}

TEST(DeadHints, PriTurnsHintsIntoEarlyFrees)
{
    const auto prof = hintedProfile(1.0);
    SyntheticProgram prog(prof, 9);

    auto early_frees = [&](bool pri_on) {
        StatGroup stats;
        const auto rc = pri_on
            ? rename::RenameConfig::priRefcountCkptcount(64, 7)
            : rename::RenameConfig::base(64, 7);
        core::OutOfOrderCore cpu(core::CoreConfig::fourWide(rc),
                                 prog, stats);
        cpu.run(20000);
        cpu.checkInvariants();
        return stats.scalarValue("pri.earlyFrees");
    };
    EXPECT_EQ(early_frees(false), 0.0);
    EXPECT_GT(early_frees(true), 1000.0);
}

} // namespace
} // namespace pri::workload
