/**
 * @file
 * Event-driven wakeup must be timing-invisible. The event scheduler
 * (per-preg consumer lists + wake buckets + seq-ordered ready list)
 * is a pure indexing change over the polling loop: the set of
 * instructions issued each cycle, and therefore every stat the core
 * emits, must match the legacy path bit for bit. These tests compare
 * the FULL stats report — every counter, not just IPC — between
 * cfg.eventWakeup on and off.
 */

#include <gtest/gtest.h>

#include "sim/simulation.hh"

namespace pri::sim
{
namespace
{

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.avgIntOccupancy, b.avgIntOccupancy);
    EXPECT_EQ(a.avgFpOccupancy, b.avgFpOccupancy);
    EXPECT_EQ(a.lifeAllocToWrite, b.lifeAllocToWrite);
    EXPECT_EQ(a.lifeWriteToLastRead, b.lifeWriteToLastRead);
    EXPECT_EQ(a.lifeLastReadToRelease, b.lifeLastReadToRelease);
    EXPECT_EQ(a.branchMispredictRate, b.branchMispredictRate);
    EXPECT_EQ(a.dl1MissRate, b.dl1MissRate);
    EXPECT_EQ(a.priEarlyFrees, b.priEarlyFrees);
    EXPECT_EQ(a.erEarlyFrees, b.erEarlyFrees);
    EXPECT_EQ(a.inlinedFrac, b.inlinedFrac);
    EXPECT_EQ(a.portStallsPerKInst, b.portStallsPerKInst);
    EXPECT_EQ(a.portInlineBypassFrac, b.portInlineBypassFrac);
    EXPECT_EQ(a.report, b.report);
}

RunResult
runWith(RunParams p, bool event_wakeup)
{
    p.eventWakeup = event_wakeup;
    p.checkInvariants = true;
    return simulate(p);
}

/** Both wakeup paths, two benchmarks, schemes that exercise the
 *  refcount consumer bookkeeping and the ideal inline-rewrite hook
 *  (which in event mode walks the per-preg consumer list). */
TEST(EventWakeup, ReportByteIdenticalAcrossSchemes)
{
    for (const char *bench : {"gcc", "swim"}) {
        for (auto scheme : {Scheme::Base, Scheme::PriRefcountLazy,
                            Scheme::PriIdealLazy}) {
            RunParams p;
            p.benchmark = bench;
            p.scheme = scheme;
            p.warmupInsts = 2000;
            p.measureInsts = 8000;
            p.seed = 7;
            SCOPED_TRACE(std::string(bench) + " " +
                         schemeName(scheme));
            expectIdentical(runWith(p, true), runWith(p, false));
        }
    }
}

/** Checkpoint-recovery-heavy config: gcc is the most branch-dense
 *  profile, and a tight scheduler plus few physical registers makes
 *  mispredicted-path instructions pile up in the scheduler before
 *  every squash. Exercises the eager squash-unwind of consumer
 *  lists, ready list, and pending wake buckets, under both
 *  checkpoint storage schemes. */
TEST(EventWakeup, ReportByteIdenticalUnderSquashPressure)
{
    for (bool pooled : {true, false}) {
        RunParams p;
        p.benchmark = "gcc";
        p.scheme = Scheme::PriRefcountLazy;
        p.width = 8;
        p.physRegs = 48;
        p.schedSizeOverride = 16;
        p.pooledCheckpoints = pooled;
        p.warmupInsts = 2000;
        p.measureInsts = 8000;
        p.seed = 11;
        SCOPED_TRACE(pooled ? "pooled ckpts" : "legacy ckpts");
        expectIdentical(runWith(p, true), runWith(p, false));
    }
}

} // namespace
} // namespace pri::sim
