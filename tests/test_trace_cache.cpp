/**
 * @file
 * Tests for the trace-compiled front end (DESIGN.md §13): compiled
 * MicroOp records must round-trip every StaticInst field, the traced
 * walker must emit a byte-identical WInst stream to the legacy decode
 * path (including across wrong-path detours and mid-block restores),
 * and the process-global TraceCache must share one compilation across
 * all walkers of the same program. Also holds the checkpointInto
 * stack-reuse regression test: once a pooled checkpoint slot has seen
 * the deepest call stack, captures must never reallocate.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "workload/profile.hh"
#include "workload/program.hh"
#include "workload/trace/micro_op.hh"
#include "workload/trace/trace_cache.hh"
#include "workload/walker.hh"

namespace pri::workload
{
namespace
{

std::shared_ptr<const trace::ProgramTraces>
acquire(const SyntheticProgram &prog)
{
    return trace::TraceCache::global().acquire(prog);
}

/** Walk n instructions down the correct path. */
std::vector<WInst>
walkCorrect(Walker &w, size_t n)
{
    std::vector<WInst> out;
    while (out.size() < n) {
        WInst wi = w.next();
        if (wi.isBranch())
            w.steer(wi, wi.taken, wi.actualTarget);
        out.push_back(wi);
    }
    return out;
}

void
expectSameInst(const WInst &a, const WInst &b, size_t i)
{
    EXPECT_EQ(a.seq, b.seq) << "at " << i;
    EXPECT_EQ(a.staticId, b.staticId) << "at " << i;
    EXPECT_EQ(a.pc, b.pc) << "at " << i;
    EXPECT_EQ(a.cls, b.cls) << "at " << i;
    EXPECT_EQ(a.dst.flat(), b.dst.flat()) << "at " << i;
    EXPECT_EQ(a.src1.flat(), b.src1.flat()) << "at " << i;
    EXPECT_EQ(a.src2.flat(), b.src2.flat()) << "at " << i;
    EXPECT_EQ(a.resultValue, b.resultValue) << "at " << i;
    EXPECT_EQ(a.memAddr, b.memAddr) << "at " << i;
    EXPECT_EQ(a.taken, b.taken) << "at " << i;
    EXPECT_EQ(a.actualTarget, b.actualTarget) << "at " << i;
    EXPECT_EQ(a.fallThrough, b.fallThrough) << "at " << i;
    EXPECT_EQ(a.isCall, b.isCall) << "at " << i;
    EXPECT_EQ(a.isReturn, b.isReturn) << "at " << i;
    EXPECT_EQ(a.isUncond, b.isUncond) << "at " << i;
}

/** The OpKind the compiler must assign to @p si. */
trace::OpKind
expectedKind(const StaticInst &si)
{
    using trace::OpKind;
    if (si.cls == isa::OpClass::Branch) {
        if (si.isReturn)
            return OpKind::BranchRet;
        return si.isUncond ? OpKind::BranchJmp : OpKind::BranchCond;
    }
    if (isa::isStore(si.cls))
        return OpKind::Store;
    if (isa::isLoad(si.cls)) {
        return si.dst.cls == isa::RegClass::Fp ? OpKind::LoadFp
                                               : OpKind::LoadInt;
    }
    if (!si.dst.valid())
        return OpKind::NoDst;
    if (si.isDeadHint)
        return OpKind::ZeroDst;
    return si.dst.cls == isa::RegClass::Fp ? OpKind::FpDst
                                           : OpKind::IntDst;
}

TEST(TraceCompiler, MicroOpsRoundTripEveryStaticInstField)
{
    // gcc exercises the int/branch/memory kinds; art the FP kinds.
    for (const char *name : {"gcc", "art"}) {
        SyntheticProgram prog(profileByName(name), 11);
        trace::ProgramTraces traces(prog);
        ASSERT_EQ(traces.numBlocks(), prog.numBlocks());
        ASSERT_EQ(traces.numOps(), prog.numStaticInsts());

        for (uint32_t b = 0; b < prog.numBlocks(); ++b) {
            const auto &blk = prog.block(b);
            const trace::MicroOp *ops = traces.blockOps(b);
            EXPECT_EQ(traces.startPc(b), blk.startPc);
            for (size_t i = 0; i < blk.insts.size(); ++i) {
                const auto &si = blk.insts[i];
                const auto &op = ops[i];
                EXPECT_EQ(op.pc, si.pc);
                EXPECT_EQ(op.staticId, si.id);
                EXPECT_EQ(op.cls, si.cls);
                EXPECT_EQ(op.dst.flat(), si.dst.flat());
                EXPECT_EQ(op.src1.flat(), si.src1.flat());
                EXPECT_EQ(op.src2.flat(), si.src2.flat());
                EXPECT_EQ(op.widthClass, si.widthClass);
                EXPECT_EQ(op.kind, expectedKind(si));
                EXPECT_EQ((op.flags & trace::kFlagCall) != 0,
                          si.isCall);
                EXPECT_EQ((op.flags & trace::kFlagReturn) != 0,
                          si.isReturn);
                EXPECT_EQ((op.flags & trace::kFlagUncond) != 0,
                          si.isUncond);
                EXPECT_EQ((op.flags & trace::kFlagLast) != 0,
                          i + 1 == blk.insts.size());
                EXPECT_EQ(op.fallthroughBlock, blk.fallthrough);
                if (si.cls == isa::OpClass::Branch &&
                    !si.isReturn && si.takenBlock != kNoBlock) {
                    EXPECT_EQ(op.takenBlock, si.takenBlock);
                    EXPECT_EQ(op.takenTargetPc,
                              prog.block(si.takenBlock).startPc);
                }
                if (si.memStream >= 0) {
                    EXPECT_EQ(op.stream,
                              static_cast<uint16_t>(si.memStream));
                }
            }
        }
    }
}

TEST(TraceCompiler, EveryOpKindIsExercised)
{
    // The dispatch switch has ten arms; the round-trip test above is
    // vacuous for any arm the programs never produce. ZeroDst needs a
    // dead-hint profile (all stock profiles have deadHintFrac == 0);
    // NoDst is the defensive arm — the generator always gives
    // non-store, non-branch ops a destination — so it is exempt.
    bool seen[10] = {};
    auto scan = [&](const BenchmarkProfile &prof) {
        SyntheticProgram prog(prof, 11);
        trace::ProgramTraces traces(prog);
        for (uint32_t b = 0; b < prog.numBlocks(); ++b) {
            const auto n = prog.block(b).insts.size();
            for (size_t i = 0; i < n; ++i) {
                seen[static_cast<size_t>(
                    traces.blockOps(b)[i].kind)] = true;
            }
        }
    };
    for (const char *name : {"gcc", "art", "swim", "mcf"})
        scan(profileByName(name));
    BenchmarkProfile hinted = profileByName("crafty");
    hinted.deadHintFrac = 0.3;
    scan(hinted);

    for (size_t k = 0; k < std::size(seen); ++k) {
        if (k == static_cast<size_t>(trace::OpKind::NoDst))
            continue;
        EXPECT_TRUE(seen[k]) << "OpKind " << k << " never compiled";
    }
    EXPECT_TRUE(seen[static_cast<size_t>(trace::OpKind::ZeroDst)]);
}

TEST(TracedWalker, StreamIsByteIdenticalToLegacyDecode)
{
    for (const char *name : {"gzip", "gcc", "art", "mcf", "swim"}) {
        for (uint64_t seed : {3u, 11u}) {
            SCOPED_TRACE(std::string(name) + " seed " +
                         std::to_string(seed));
            SyntheticProgram prog(profileByName(name), seed);
            const auto traces = acquire(prog);

            Walker legacy(prog);
            Walker traced(prog, traces.get());
            ASSERT_FALSE(legacy.traced());
            ASSERT_TRUE(traced.traced());

            const auto wl = walkCorrect(legacy, 4000);
            const auto wt = walkCorrect(traced, 4000);
            for (size_t i = 0; i < wl.size(); ++i)
                expectSameInst(wt[i], wl[i], i);
        }
    }

    // Dead-value hints replay identically too (ZeroDst kind).
    BenchmarkProfile hinted = profileByName("crafty");
    hinted.deadHintFrac = 0.3;
    SyntheticProgram prog(hinted, 11);
    const auto traces = acquire(prog);
    Walker legacy(prog);
    Walker traced(prog, traces.get());
    const auto wl = walkCorrect(legacy, 4000);
    const auto wt = walkCorrect(traced, 4000);
    for (size_t i = 0; i < wl.size(); ++i)
        expectSameInst(wt[i], wl[i], i);
}

TEST(TracedWalker, WrongPathDetoursAndRestoresMatchLegacy)
{
    // Same shape as Walker.WrongPathDetourLeavesCorrectPathUnchanged,
    // but replayed: every conditional gets a wrong-path detour whose
    // restore lands the traced walker back mid-stream — the detour
    // itself ends mid-block, so restore() must re-point `cur` at an
    // interior MicroOp, not just block starts.
    SyntheticProgram prog(profileByName("gcc"), 9);
    const auto traces = acquire(prog);

    // Both walkers take identical detours, so even the monotonic
    // (never rolled back) seq numbers must agree instruction for
    // instruction.
    auto walkWithDetours = [](Walker &w) {
        std::vector<WInst> got;
        while (got.size() < 3000) {
            WInst wi = w.next();
            if (wi.isBranch()) {
                if (!wi.isUncond) {
                    const auto ckpt = w.checkpoint();
                    const bool wrong = !wi.taken;
                    w.steer(wi, wrong,
                            wrong ? wi.actualTarget
                                  : wi.fallThrough);
                    for (int k = 0; k < 10; ++k) {
                        WInst junk = w.next();
                        if (junk.isBranch()) {
                            w.steer(junk, junk.taken,
                                    junk.actualTarget);
                        }
                    }
                    w.restore(ckpt);
                    // The walker must resume exactly at the branch.
                    EXPECT_EQ(w.currentPc(), wi.pc);
                }
                w.steer(wi, wi.taken, wi.actualTarget);
            }
            got.push_back(wi);
        }
        return got;
    };

    Walker legacy(prog);
    Walker traced(prog, traces.get());
    const auto expected = walkWithDetours(legacy);
    const auto got = walkWithDetours(traced);

    for (size_t i = 0; i < expected.size(); ++i)
        expectSameInst(got[i], expected[i], i);
}

TEST(TraceCacheTest, SharesOneCompilationAcrossWalkers)
{
    auto &cache = trace::TraceCache::global();
    cache.reset();

    SyntheticProgram prog(profileByName("gcc"), 7);
    const auto a = cache.acquire(prog);
    const auto b = cache.acquire(prog);
    EXPECT_EQ(a.get(), b.get()); // one compilation, shared

    auto s = cache.stats();
    EXPECT_EQ(s.programsCompiled, 1u);
    EXPECT_EQ(s.programsShared, 1u);
    EXPECT_EQ(s.blocksCompiled, prog.numBlocks());
    EXPECT_EQ(s.microOps, prog.numStaticInsts());
    EXPECT_GT(s.traceBytes, 0u);

    // A different seed is a different program: miss, new entry.
    SyntheticProgram other(profileByName("gcc"), 8);
    const auto c = cache.acquire(other);
    EXPECT_NE(a.get(), c.get());
    s = cache.stats();
    EXPECT_EQ(s.programsCompiled, 2u);
    EXPECT_EQ(s.programsShared, 1u);

    // Two walkers on the shared compilation replay independently.
    Walker w1(prog, a.get());
    Walker w2(prog, b.get());
    const auto i1 = walkCorrect(w1, 2000);
    const auto i2 = walkCorrect(w2, 2000);
    for (size_t i = 0; i < i1.size(); ++i)
        expectSameInst(i1[i], i2[i], i);

    cache.reset();
}

TEST(TraceCacheTest, FingerprintIsContentSensitive)
{
    SyntheticProgram a1(profileByName("gcc"), 7);
    SyntheticProgram a2(profileByName("gcc"), 7);
    SyntheticProgram b(profileByName("gcc"), 8);
    SyntheticProgram c(profileByName("gzip"), 7);

    EXPECT_EQ(trace::programFingerprint(a1),
              trace::programFingerprint(a2));
    EXPECT_NE(trace::programFingerprint(a1),
              trace::programFingerprint(b));
    EXPECT_NE(trace::programFingerprint(a1),
              trace::programFingerprint(c));

    trace::ProgramTraces traces(a1);
    EXPECT_EQ(traces.fingerprint(), trace::programFingerprint(a1));
}

/**
 * Regression: checkpointInto must reuse the caller's stack storage.
 * A pooled checkpoint slot grows once to the deepest call stack the
 * walker ever captures into it and never reallocates again — if this
 * breaks, every branch goes back to allocating and the pooled
 * front-end's zero-alloc guarantee silently dies.
 */
TEST(TracedWalker, CheckpointIntoReusesStackStorage)
{
    SyntheticProgram prog(profileByName("gcc"), 13);
    const auto traces = acquire(prog);

    // Pass 1: find the deepest stack a capture will ever hold.
    size_t max_depth = 0;
    {
        Walker scout(prog, traces.get());
        WalkerCkpt probe;
        for (int i = 0; i < 20000; ++i) {
            WInst wi = scout.next();
            if (wi.isBranch()) {
                scout.checkpointInto(probe);
                max_depth = std::max(max_depth, probe.stack.size());
                scout.steer(wi, wi.taken, wi.actualTarget);
            }
        }
    }

    // Pass 2 (same program, same seed, so the same depth profile):
    // pre-size the slot like the pool does after its first deepest
    // capture, then demand storage stability for every later one.
    for (const bool traced : {false, true}) {
        Walker w(prog, traced ? traces.get() : nullptr);
        WalkerCkpt slot;
        slot.stack.reserve(max_depth);
        const ProgLoc *stable_data = slot.stack.data();
        const size_t stable_cap = slot.stack.capacity();
        for (int i = 0; i < 20000; ++i) {
            WInst wi = w.next();
            if (wi.isBranch()) {
                w.checkpointInto(slot);
                EXPECT_EQ(slot.stack.data(), stable_data)
                    << (traced ? "traced" : "legacy")
                    << " capture reallocated at inst " << i;
                EXPECT_EQ(slot.stack.capacity(), stable_cap);
                w.steer(wi, wi.taken, wi.actualTarget);
            }
        }
    }
}

} // namespace
} // namespace pri::workload
