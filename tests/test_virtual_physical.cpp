/**
 * @file
 * Tests for the virtual-physical register extension (paper §6
 * future work): delayed storage allocation at writeback, reserved
 * drain pool, and the VP+PRI synergy where inlined values never
 * claim storage.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "rename/rename_unit.hh"
#include "workload/program.hh"

namespace pri::rename
{
namespace
{

using isa::intReg;
using isa::RegClass;

TEST(VirtualPhysical, RenameNeverStallsForRegisters)
{
    StatGroup sg;
    RenameUnit rn(RenameConfig::virtualPhys(40, 7), sg);
    rn.beginCycle(0);
    // Far more renames than the 40-register storage budget.
    for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(rn.canRename(RegClass::Int));
        auto d = rn.renameDest(intReg(i % 32), 1000 + i);
        (void)d;
    }
}

TEST(VirtualPhysical, StorageClaimedAtWritebackOnly)
{
    StatGroup sg;
    RenameUnit rn(RenameConfig::virtualPhys(64, 7), sg);
    rn.beginCycle(0);
    EXPECT_EQ(rn.storageInUse(RegClass::Int), 32u); // arch state

    auto d = rn.renameDest(intReg(1), 5000);
    EXPECT_EQ(rn.storageInUse(RegClass::Int), 32u); // not yet
    EXPECT_TRUE(rn.writeback(intReg(1), d.preg, d.gen, 5000));
    EXPECT_EQ(rn.storageInUse(RegClass::Int), 33u);
    rn.checkInvariants();
}

TEST(VirtualPhysical, WritebackStallsWhenStorageExhausted)
{
    StatGroup sg;
    // 40 registers, reserve 4: non-privileged writebacks may use 36.
    auto cfg = RenameConfig::virtualPhys(40, 7);
    RenameUnit rn(cfg, sg);
    rn.beginCycle(0);

    std::vector<RenameUnit::DestRename> ds;
    for (int i = 0; i < 10; ++i)
        ds.push_back(rn.renameDest(intReg(i), 5000 + i));
    // Fill storage to the non-privileged limit (32 arch + 4 = 36).
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(rn.writeback(intReg(i), ds[i].preg, ds[i].gen,
                                 5000 + i, /*privileged=*/false));
    // Next non-privileged writeback must stall...
    EXPECT_FALSE(rn.writeback(intReg(4), ds[4].preg, ds[4].gen,
                              5004, /*privileged=*/false));
    EXPECT_GT(sg.scalarValue("vp.writebackStalls"), 0.0);
    // ...but a privileged one (near the ROB head) may drain.
    EXPECT_TRUE(rn.writeback(intReg(4), ds[4].preg, ds[4].gen, 5004,
                             /*privileged=*/true));
    rn.checkInvariants();
}

TEST(VirtualPhysical, InlinedValueNeverClaimsStorage)
{
    StatGroup sg;
    RenameUnit rn(RenameConfig::virtualPhysPlusPri(64, 7), sg);
    rn.beginCycle(0);

    const unsigned before = rn.storageInUse(RegClass::Int);
    auto d = rn.renameDest(intReg(2), 17); // narrow
    EXPECT_TRUE(rn.writeback(intReg(2), d.preg, d.gen, 17));
    // Inlined into the map and freed: storage use unchanged.
    EXPECT_EQ(rn.storageInUse(RegClass::Int), before);
    EXPECT_TRUE(rn.mapEntry(intReg(2)).imm);
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, d.preg));
    EXPECT_EQ(sg.scalarValue("vp.storageClaims"), 0.0);
    rn.checkInvariants();
}

TEST(VirtualPhysical, RetriedWritebackSucceedsAfterFree)
{
    StatGroup sg;
    auto cfg = RenameConfig::virtualPhys(40, 7);
    RenameUnit rn(cfg, sg);
    rn.beginCycle(0);

    std::vector<RenameUnit::DestRename> ds;
    for (int i = 0; i < 6; ++i)
        ds.push_back(rn.renameDest(intReg(i), 5000 + i));
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(rn.writeback(intReg(i), ds[i].preg, ds[i].gen,
                                 5000 + i, false));
    ASSERT_FALSE(rn.writeback(intReg(4), ds[4].preg, ds[4].gen,
                              5004, false));
    // Free one: redefine r0 and commit the redefiner.
    auto w = rn.renameDest(intReg(0), 9000);
    rn.commitDest(RegClass::Int, w.prev, w.prevGen);
    // Retry succeeds now.
    EXPECT_TRUE(rn.writeback(intReg(4), ds[4].preg, ds[4].gen, 5004,
                             false));
    rn.checkInvariants();
}

TEST(VirtualPhysicalCore, EndToEndRunsAndBeatsTightBase)
{
    using namespace pri::core;
    workload::SyntheticProgram prog(
        workload::profileByName("gzip"), 3);

    auto run = [&](const RenameConfig &rc) {
        StatGroup stats;
        OutOfOrderCore cpu(CoreConfig::fourWide(rc), prog, stats);
        cpu.run(5000);
        cpu.beginMeasurement();
        cpu.run(20000);
        cpu.checkInvariants();
        return cpu.ipc();
    };

    // At a tight 48-register budget, removing the rename-time stall
    // must help a register-bound workload.
    const double base = run(RenameConfig::base(48, 7));
    const double vp = run(RenameConfig::virtualPhys(48, 7));
    const double vp_pri = run(RenameConfig::virtualPhysPlusPri(48, 7));
    const double inf = run(RenameConfig::infinite(7));
    EXPECT_GT(vp, base);
    EXPECT_GE(vp_pri, vp * 0.98);
    EXPECT_LE(vp, inf * 1.02);
    EXPECT_LE(vp_pri, inf * 1.02);
}

TEST(VirtualPhysicalCore, StorageNeverExceedsBudget)
{
    using namespace pri::core;
    workload::SyntheticProgram prog(
        workload::profileByName("mcf"), 7);
    StatGroup stats;
    OutOfOrderCore cpu(
        CoreConfig::fourWide(RenameConfig::virtualPhys(48, 7)),
        prog, stats);
    cpu.run(3000);
    cpu.beginMeasurement();
    cpu.run(12000);
    // Average storage occupancy is bounded by the budget (the
    // invariant checker verifies the instantaneous bound).
    EXPECT_LE(cpu.avgIntOccupancy(), 48.0);
    cpu.checkInvariants();
}

} // namespace
} // namespace pri::rename
