/**
 * @file
 * Tests for the counter-based deterministic randomness that underpins
 * workload reproducibility.
 */

#include <gtest/gtest.h>

#include "common/hashing.hh"

namespace pri
{
namespace
{

TEST(SplitMix64, KnownToBeDeterministic)
{
    EXPECT_EQ(splitMix64(0), splitMix64(0));
    EXPECT_EQ(splitMix64(12345), splitMix64(12345));
    EXPECT_NE(splitMix64(1), splitMix64(2));
}

TEST(SplitMix64, AvalanchesSingleBitChanges)
{
    // Flipping one input bit should flip roughly half the output
    // bits for any decent mixer.
    for (uint64_t x : {uint64_t{0}, uint64_t{42}, ~uint64_t{0}}) {
        const uint64_t a = splitMix64(x);
        const uint64_t b = splitMix64(x ^ 1);
        const int flipped = __builtin_popcountll(a ^ b);
        EXPECT_GT(flipped, 16) << "x=" << x;
        EXPECT_LT(flipped, 48) << "x=" << x;
    }
}

TEST(HashCombine, OrderSensitive)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
    EXPECT_NE(hashCombine(1, 2, 3), hashCombine(1, 3, 2));
}

TEST(HashUniform, InUnitInterval)
{
    for (uint64_t i = 0; i < 1000; ++i) {
        const double u = hashUniform(7, i, 13);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(HashUniform, ApproximatelyUniform)
{
    // Mean of U(0,1) samples should be near 0.5.
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        acc += hashUniform(0x9a, static_cast<uint64_t>(i));
    const double mean = acc / n;
    EXPECT_NEAR(mean, 0.5, 0.01);
}

TEST(HashRange, RespectsBound)
{
    for (uint64_t i = 0; i < 1000; ++i)
        EXPECT_LT(hashRange(17, 3, i), 17u);
    EXPECT_EQ(hashRange(0, 1, 2), 0u);
}

TEST(SplitMixRng, ReproducibleStream)
{
    SplitMixRng a(99);
    SplitMixRng b(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMixRng, DifferentSeedsDiffer)
{
    SplitMixRng a(1);
    SplitMixRng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

} // namespace
} // namespace pri
