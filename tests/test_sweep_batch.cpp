/**
 * @file
 * Tests for batched SoA sweep execution (sim/batch/sweep_batch.hh):
 * batch formation by workload fingerprint, full-report byte
 * equality between batched and serial execution across schemes,
 * widths, and seeds, early lane retirement, straggler lanes, the
 * PRI_LEGACY_BATCH escape hatch, and journal interaction (hits are
 * excluded before batches form).
 *
 * The CMake registration runs this binary twice: once with the
 * default (coarse) batch quantum and once with PRI_BATCH_QUANTUM
 * forced small, so fine-grained lane rotation — including stragglers
 * interleaved mid-phase — gets the same equality coverage.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/core.hh"
#include "sim/batch/sweep_batch.hh"
#include "sim/journal.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"

namespace pri::sim
{
namespace
{

/** A grid that exercises every batching-relevant axis: two
 *  workloads, two seeds, both widths, and a scheme panel from Base
 *  to InfinitePregs. All points of one (benchmark, seed) share a
 *  fingerprint and may share a batch. */
std::vector<RunParams>
schemeGrid()
{
    std::vector<RunParams> grid;
    for (const char *bench : {"gzip", "equake"}) {
        for (uint64_t seed : {7u, 8u}) {
            for (unsigned width : {4u, 8u}) {
                for (auto scheme :
                     {Scheme::Base, Scheme::EarlyRelease,
                      Scheme::PriRefcountCkptcount,
                      Scheme::PriPlusEr, Scheme::InfinitePregs}) {
                    RunParams p;
                    p.benchmark = bench;
                    p.seed = seed;
                    p.width = width;
                    p.scheme = scheme;
                    p.warmupInsts = 1500;
                    p.measureInsts = 6000;
                    grid.push_back(p);
                }
            }
        }
    }
    return grid;
}

std::vector<RunResult>
serialReference(const std::vector<RunParams> &grid)
{
    std::vector<RunResult> ref;
    ref.reserve(grid.size());
    for (const auto &p : grid)
        ref.push_back(simulate(p));
    return ref;
}

RunParams
point(const char *bench, uint64_t seed, Scheme scheme,
      unsigned width = 4)
{
    RunParams p;
    p.benchmark = bench;
    p.seed = seed;
    p.scheme = scheme;
    p.width = width;
    p.warmupInsts = 1500;
    p.measureInsts = 6000;
    return p;
}

std::vector<size_t>
allIndices(size_t n)
{
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i)
        idx[i] = i;
    return idx;
}

TEST(Batchable, FaultInjectionPointsAreNot)
{
    RunParams p = point("gzip", 7, Scheme::Base);
    EXPECT_TRUE(batchable(p));

    RunParams fault = p;
    fault.injectFault = core::InjectedFault::WedgeScheduler;
    EXPECT_FALSE(batchable(fault));

    RunParams skipFree = p;
    skipFree.injectFreeWithoutInline = true;
    EXPECT_FALSE(batchable(skipFree));

    RunParams transient = p;
    transient.injectTransientFails = 2;
    EXPECT_FALSE(batchable(transient));
}

/** Points group by (benchmark, seed, warmup, measure), preserve
 *  first-seen-key order, and split when the lane cap overflows. */
TEST(FormBatches, GroupsByFingerprintAndLaneCap)
{
    std::vector<RunParams> pts;
    // Six gzip/7 points interleaved with two equake/7 and one
    // gzip/9; one gzip/7 point with a different warmup must not
    // share the gzip/7 group.
    for (int i = 0; i < 3; ++i) {
        pts.push_back(point("gzip", 7, Scheme::Base));
        pts.push_back(point("equake", 7, Scheme::Base));
        pts.push_back(point("gzip", 7, Scheme::PriPlusEr));
    }
    pts.push_back(point("gzip", 9, Scheme::Base));
    RunParams warm = point("gzip", 7, Scheme::Base);
    warm.warmupInsts = 999;
    pts.push_back(warm);

    const auto groups = formBatches(pts, allIndices(pts.size()), 4);
    ASSERT_EQ(groups.size(), 5u);
    // First-seen order: gzip/7 (4 lanes), equake/7 (3), gzip/7
    // overflow (2), gzip/9 (1), gzip/7-warm999 (1).
    EXPECT_EQ(groups[0].indices,
              (std::vector<size_t>{0, 2, 3, 5}));
    EXPECT_EQ(groups[1].indices, (std::vector<size_t>{1, 4, 7}));
    EXPECT_EQ(groups[2].indices, (std::vector<size_t>{6, 8}));
    EXPECT_EQ(groups[3].indices, (std::vector<size_t>{9}));
    EXPECT_EQ(groups[4].indices, (std::vector<size_t>{10}));
}

TEST(FormBatches, UnbatchablePointsBecomeSingletons)
{
    std::vector<RunParams> pts;
    pts.push_back(point("gzip", 7, Scheme::Base));
    RunParams fault = point("gzip", 7, Scheme::EarlyRelease);
    fault.injectFault = core::InjectedFault::StaleWalkerGidx;
    pts.push_back(fault);
    pts.push_back(point("gzip", 7, Scheme::PriPlusEr));

    const auto groups = formBatches(pts, allIndices(pts.size()), 8);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].indices, (std::vector<size_t>{0, 2}));
    EXPECT_EQ(groups[1].indices, (std::vector<size_t>{1}));
}

TEST(FormBatches, LaneCountOneIsAllSingletons)
{
    std::vector<RunParams> pts(4, point("gzip", 7, Scheme::Base));
    const auto groups = formBatches(pts, allIndices(pts.size()), 1);
    ASSERT_EQ(groups.size(), 4u);
    for (size_t i = 0; i < groups.size(); ++i)
        EXPECT_EQ(groups[i].indices, (std::vector<size_t>{i}));
}

TEST(FormBatches, OnlyPendingIndicesAreGrouped)
{
    std::vector<RunParams> pts(5, point("gzip", 7, Scheme::Base));
    const auto groups = formBatches(pts, {1, 3}, 8);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].indices, (std::vector<size_t>{1, 3}));
}

/**
 * The core acceptance property: batched execution is byte-identical
 * to serial — full report equality, every scheme, both widths, both
 * seeds, at several lane counts and worker counts.
 */
TEST(SweepBatchEquality, FullReportAcrossSchemesWidthsSeeds)
{
    const auto grid = schemeGrid();
    const auto ref = serialReference(grid);

    struct Cfg
    {
        unsigned jobs, lanes;
    };
    for (const Cfg cfg : {Cfg{1, 16}, Cfg{1, 3}, Cfg{4, 16}}) {
        SimulationRunner runner(cfg.jobs);
        runner.setBatchLanes(cfg.lanes);
        const auto out = runner.runCaptured(grid);
        ASSERT_EQ(out.size(), grid.size());
        for (size_t i = 0; i < grid.size(); ++i) {
            ASSERT_TRUE(out[i].ok())
                << "jobs " << cfg.jobs << " lanes " << cfg.lanes
                << ": " << out[i].error;
            EXPECT_EQ(out[i].result.report, ref[i].report)
                << "jobs " << cfg.jobs << " lanes " << cfg.lanes
                << " point " << i << " ("
                << paramsSummary(grid[i]) << ")";
            EXPECT_EQ(out[i].result.ipc, ref[i].ipc);
            EXPECT_EQ(out[i].result.cycles, ref[i].cycles);
        }
    }
}

/** Auto lane selection (--batch 0) also matches serial. */
TEST(SweepBatchEquality, AutoLaneCountMatchesSerial)
{
    auto grid = schemeGrid();
    grid.resize(10);
    const auto ref = serialReference(grid);

    SimulationRunner runner(1);
    runner.setBatchLanes(0);
    const auto out = runner.runCaptured(grid);
    for (size_t i = 0; i < grid.size(); ++i) {
        ASSERT_TRUE(out[i].ok()) << out[i].error;
        EXPECT_EQ(out[i].result.report, ref[i].report);
    }
}

/**
 * A lane that dies mid-drain retires from the rotation early and
 * does not perturb its siblings: a cycle-budget stall in one lane,
 * every other lane byte-identical to serial.
 */
TEST(SweepBatch, EarlyLaneRetirementOnStall)
{
    std::vector<RunParams> grid;
    for (auto scheme : {Scheme::Base, Scheme::EarlyRelease,
                        Scheme::PriRefcountCkptcount,
                        Scheme::PriPlusEr})
        grid.push_back(point("gzip", 7, scheme));
    grid[1].cycleBudget = 1000; // trips well before completion

    SimulationRunner runner(1);
    runner.setBatchLanes(8);
    const auto out = runner.runCaptured(grid);
    ASSERT_EQ(out.size(), grid.size());

    ASSERT_FALSE(out[1].ok());
    EXPECT_TRUE(out[1].stalled);
    EXPECT_EQ(out[1].error.find("run 1 ("), 0u) << out[1].error;
    EXPECT_EQ(out[1].attempts, 1u); // stalls are never retried

    for (size_t i : {size_t{0}, size_t{2}, size_t{3}}) {
        ASSERT_TRUE(out[i].ok()) << out[i].error;
        EXPECT_FALSE(out[i].stalled);
        EXPECT_EQ(out[i].result.report, simulate(grid[i]).report);
    }

    // The stall itself is deterministic: serial execution of the
    // same point stalls too.
    const auto serial =
        SimulationRunner(1).runCaptured({grid[1]});
    ASSERT_FALSE(serial[0].ok());
    EXPECT_TRUE(serial[0].stalled);
}

/**
 * Straggler regression: one lane configured an order of magnitude
 * slower (minimal register file and scheduler) shares a batch with
 * fast siblings. The fast lanes retire early; the straggler keeps
 * rotating alone and still matches its serial run byte for byte.
 */
TEST(SweepBatch, StragglerLaneMatchesSerial)
{
    std::vector<RunParams> grid;
    for (auto scheme : {Scheme::Base, Scheme::EarlyRelease,
                        Scheme::PriRefcountCkptcount,
                        Scheme::PriPlusEr})
        grid.push_back(point("gzip", 11, scheme, 8));
    grid[2].physRegs = 40;
    grid[2].schedSizeOverride = 8;

    const auto ref = serialReference(grid);
    SimulationRunner runner(1);
    runner.setBatchLanes(8);
    const auto out = runner.runCaptured(grid);
    for (size_t i = 0; i < grid.size(); ++i) {
        ASSERT_TRUE(out[i].ok()) << out[i].error;
        EXPECT_EQ(out[i].result.report, ref[i].report)
            << paramsSummary(grid[i]);
    }
}

/** PRI_LEGACY_BATCH=1 forces the serial path process-wide, and its
 *  results are (by the equality property) indistinguishable. */
TEST(SweepBatch, LegacyBatchEnvForcesSerialPath)
{
    auto grid = schemeGrid();
    grid.resize(8);
    const auto ref = serialReference(grid);

    ASSERT_EQ(::setenv("PRI_LEGACY_BATCH", "1", 1), 0);
    SimulationRunner runner(2);
    runner.setBatchLanes(16);
    const auto out = runner.runCaptured(grid);
    ::unsetenv("PRI_LEGACY_BATCH");

    for (size_t i = 0; i < grid.size(); ++i) {
        ASSERT_TRUE(out[i].ok()) << out[i].error;
        EXPECT_EQ(out[i].result.report, ref[i].report);
    }
}

/**
 * Journal hits are excluded before batch formation: a resumed sweep
 * serves finished points from the journal (zero attempts), batches
 * only the remainder, and the remainder is byte-identical to
 * serial. Exercises the resume-mid-group case — part of a formed
 * group already journaled.
 */
TEST(SweepBatch, JournalHitsExcludedBeforeFormation)
{
    const std::string path =
        testing::TempDir() + "pri_test_journal_batch";
    std::remove(path.c_str());

    auto grid = schemeGrid();
    grid.resize(12);
    const auto ref = serialReference(grid);

    // First pass: only every third point, batched, journaled.
    std::vector<RunParams> subset;
    for (size_t i = 0; i < grid.size(); i += 3)
        subset.push_back(grid[i]);
    {
        SweepJournal journal(path);
        SimulationRunner runner(1);
        runner.setBatchLanes(16);
        runner.setJournal(&journal);
        const auto out = runner.runCaptured(subset);
        for (const auto &o : out)
            ASSERT_TRUE(o.ok()) << o.error;
        EXPECT_EQ(journal.appendedPoints(), subset.size());
    }

    // Resumed pass over the full grid: hits come from the journal
    // without occupying a lane, fresh points are batched and match
    // serial.
    SweepJournal reloaded(path);
    EXPECT_EQ(reloaded.loadedPoints(), subset.size());
    SimulationRunner runner(1);
    runner.setBatchLanes(16);
    runner.setJournal(&reloaded);
    const auto out = runner.runCaptured(grid);
    for (size_t i = 0; i < grid.size(); ++i) {
        ASSERT_TRUE(out[i].ok()) << out[i].error;
        EXPECT_EQ(out[i].fromJournal, i % 3 == 0);
        EXPECT_EQ(out[i].attempts, i % 3 == 0 ? 0u : 1u);
        EXPECT_EQ(out[i].result.report, ref[i].report);
    }
    std::remove(path.c_str());
}

/** Transient-failure points are unbatchable singletons, so the
 *  runner's retry policy applies to them unchanged inside a
 *  batched sweep. */
TEST(SweepBatch, TransientFailureRetriesInsideBatchedSweep)
{
    std::vector<RunParams> grid;
    grid.push_back(point("gzip", 7, Scheme::Base));
    grid.push_back(point("gzip", 7, Scheme::EarlyRelease));
    grid[1].injectTransientFails = 2;

    SimulationRunner runner(1);
    runner.setBatchLanes(8);
    runner.setRetryPolicy({3, 0});
    const auto out = runner.runCaptured(grid);
    ASSERT_TRUE(out[1].ok()) << out[1].error;
    EXPECT_EQ(out[1].attempts, 3u);
    EXPECT_EQ(out[0].attempts, 1u);
}

} // namespace
} // namespace pri::sim
