/**
 * @file
 * Configuration fuzzer: randomized CoreConfig × workload points,
 * every run diff-checked against the golden model.
 *
 * Points are drawn with the repo's counter-based hash RNG, so a
 * given (PRI_FUZZ_SEED, index) pair always denotes the same
 * configuration — a CI failure log names the seed and index, and
 *
 *   PRI_FUZZ_SEED=<seed> PRI_FUZZ_RUNS=<index+1> ./fuzz_config
 *
 * replays it locally (see EXPERIMENTS.md). PRI_FUZZ_RUNS defaults
 * small for developer runs; CI raises it (32 under UBSan).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/hashing.hh"
#include "faults/campaign.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"

namespace pri
{
namespace
{

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

/** Deterministically expand (seed, index) into one config point. */
sim::RunParams
drawPoint(uint64_t seed, uint64_t index)
{
    // One salt per axis: axes stay independent, and adding an axis
    // never reshuffles the others.
    auto pick = [&](uint64_t salt, uint64_t bound) {
        return hashCombine(seed, index, salt) % bound;
    };

    static const char *kBenches[] = {"gzip",   "gcc",  "mcf",
                                     "crafty", "parser", "bzip2",
                                     "art",    "swim", "wupwise"};
    static const sim::Scheme kSchemes[] = {
        sim::Scheme::Base,
        sim::Scheme::EarlyRelease,
        sim::Scheme::PriRefcountCkptcount,
        sim::Scheme::PriRefcountLazy,
        sim::Scheme::PriIdealCkptcount,
        sim::Scheme::PriIdealLazy,
        sim::Scheme::PriPlusEr,
        sim::Scheme::InfinitePregs,
        sim::Scheme::VirtualPhysical,
        sim::Scheme::VirtualPhysicalPlusPri,
    };
    static const unsigned kPregs[] = {48, 64, 96, 128};
    static const unsigned kSched[] = {16, 32, 64};
    static const unsigned kNarrowBits[] = {4, 7, 10, 12};
    // Read-port budgets, unlimited twice so half the draws keep the
    // classic machine (0 = no arbiter at all).
    static const unsigned kPorts[] = {0, 0, 2, 3, 4, 8};

    sim::RunParams p;
    p.benchmark = kBenches[pick(1, std::size(kBenches))];
    p.width = pick(2, 2) ? 8 : 4;
    p.scheme = kSchemes[pick(3, std::size(kSchemes))];
    p.physRegs = kPregs[pick(4, std::size(kPregs))];
    p.schedSizeOverride = kSched[pick(5, std::size(kSched))];
    p.narrowBitsOverride =
        kNarrowBits[pick(6, std::size(kNarrowBits))];
    p.pooledCheckpoints = pick(7, 2) != 0;
    p.seed = hashCombine(seed, index, 8);
    p.eventWakeup = pick(9, 2) != 0;
    // Robustness axes: the watchdog is observation-only, so fuzzing
    // it on/off must never change a single golden-checked commit;
    // the cycle budget turns any wedge the fuzzer ever finds into a
    // structured per-point failure instead of a hung CI job.
    p.watchdog = pick(10, 2) != 0;
    // Front-end axis: traced replay vs legacy decode. The golden
    // model always decodes legacy, so every traced point is a full
    // traced-vs-legacy stream cross-check. (Salts 11/12 belong to
    // the retry-policy test below, salt 14 to the batching test,
    // salts 16/17 to the fault-campaign axis.)
    p.tracedFrontEnd = pick(13, 2) != 0;
    // Read-port arbitration axis: a binding budget reorders issue,
    // so every limited draw cross-checks the arbitrated machine
    // against the golden model.
    p.prfReadPorts = kPorts[pick(15, std::size(kPorts))];
    p.cycleBudget = 2'000'000;
    p.warmupInsts = 2000;
    p.measureInsts = 8000;
    p.checkInvariants = true;
    p.checkGolden = true;
    return p;
}

TEST(ConfigFuzz, RandomConfigsStayGoldenClean)
{
    const uint64_t seed = envOr("PRI_FUZZ_SEED", 1);
    const uint64_t runs = envOr("PRI_FUZZ_RUNS", 6);
    for (uint64_t i = 0; i < runs; ++i) {
        const auto p = drawPoint(seed, i);
        SCOPED_TRACE("PRI_FUZZ_SEED=" + std::to_string(seed) +
                     " index=" + std::to_string(i) + ": " +
                     p.benchmark + " w" + std::to_string(p.width) +
                     " " + sim::schemeName(p.scheme) + " pregs " +
                     std::to_string(p.physRegs) + " sched " +
                     std::to_string(p.schedSizeOverride) +
                     " narrow " +
                     std::to_string(p.narrowBitsOverride) +
                     (p.pooledCheckpoints ? " pooled" : " legacy") +
                     (p.eventWakeup ? " event" : " poll") +
                     (p.tracedFrontEnd ? " traced" : " decoded") +
                     " ports " +
                     std::to_string(p.prfReadPorts));
        const auto r = sim::simulate(p);
        EXPECT_EQ(r.goldenChecked, r.committedTotal);
        EXPECT_GE(r.goldenChecked,
                  p.warmupInsts + p.measureInsts);
    }
}

/**
 * Same grid through the fault-tolerant runner, with a fuzzed retry
 * policy and planted transient failures that always stay within the
 * attempt budget: every point must come back ok, on the expected
 * attempt, golden-clean, and bit-identical to a direct simulate().
 */
TEST(ConfigFuzz, RetryPolicyConvergesGoldenClean)
{
    const uint64_t seed = envOr("PRI_FUZZ_SEED", 1);
    const uint64_t runs = envOr("PRI_FUZZ_RUNS", 6);
    for (uint64_t i = 0; i < runs; ++i) {
        auto p = drawPoint(seed, i);
        const auto pick = [&](uint64_t salt, uint64_t bound) {
            return hashCombine(seed, i, salt) % bound;
        };
        const unsigned max_attempts =
            1 + static_cast<unsigned>(pick(11, 3));
        p.injectTransientFails =
            static_cast<unsigned>(pick(12, max_attempts));
        SCOPED_TRACE("PRI_FUZZ_SEED=" + std::to_string(seed) +
                     " index=" + std::to_string(i) + ": " +
                     p.benchmark + " attempts " +
                     std::to_string(max_attempts) + " transients " +
                     std::to_string(p.injectTransientFails));

        sim::SimulationRunner runner(1);
        runner.setRetryPolicy({max_attempts, 0});
        const auto outcomes = runner.runCaptured({p});
        ASSERT_EQ(outcomes.size(), 1u);
        ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].error;
        EXPECT_EQ(outcomes[0].attempts,
                  p.injectTransientFails + 1);

        const auto &r = outcomes[0].result;
        EXPECT_EQ(r.goldenChecked, r.committedTotal);
        auto direct = p;
        direct.injectTransientFails = 0;
        EXPECT_EQ(r.report, sim::simulate(direct).report);
    }
}

/**
 * Batched-execution axis: each iteration expands one fuzzed point
 * into a small scheme/width/pregs panel sharing its (benchmark,
 * seed, insts) fingerprint — the shape sweep batching groups — and
 * runs it through a runner with a fuzzed lane count (salt 14).
 * Every lane must stay golden-clean and byte-identical to a direct
 * serial simulate() of the same point.
 */
TEST(ConfigFuzz, BatchedLanesStayGoldenClean)
{
    const uint64_t seed = envOr("PRI_FUZZ_SEED", 1);
    const uint64_t runs = envOr("PRI_FUZZ_RUNS", 6);
    static const sim::Scheme kPanel[] = {
        sim::Scheme::Base,
        sim::Scheme::EarlyRelease,
        sim::Scheme::PriRefcountCkptcount,
        sim::Scheme::PriPlusEr,
        sim::Scheme::InfinitePregs,
    };
    for (uint64_t i = 0; i < runs; ++i) {
        const auto base = drawPoint(seed, i);
        const auto pick = [&](uint64_t salt, uint64_t bound) {
            return hashCombine(seed, i, salt) % bound;
        };
        const unsigned lanes =
            2 + static_cast<unsigned>(pick(14, 7)); // 2..8
        SCOPED_TRACE("PRI_FUZZ_SEED=" + std::to_string(seed) +
                     " index=" + std::to_string(i) + ": " +
                     base.benchmark + " lanes " +
                     std::to_string(lanes));

        std::vector<sim::RunParams> panel;
        for (size_t k = 0; k < std::size(kPanel); ++k) {
            auto p = base;
            p.scheme = kPanel[k];
            p.width = k % 2 ? 8 : 4;
            if (k == 2)
                p.physRegs = 96;
            panel.push_back(std::move(p));
        }

        sim::SimulationRunner runner(1);
        runner.setBatchLanes(lanes);
        const auto outcomes = runner.runCaptured(panel);
        ASSERT_EQ(outcomes.size(), panel.size());
        for (size_t k = 0; k < panel.size(); ++k) {
            ASSERT_TRUE(outcomes[k].ok()) << outcomes[k].error;
            const auto &r = outcomes[k].result;
            EXPECT_EQ(r.goldenChecked, r.committedTotal);
            EXPECT_EQ(r.report, sim::simulate(panel[k]).report)
                << "lane " << k;
        }
    }
}

/**
 * Fault-campaign axis: every fuzzed config point additionally takes
 * one seeded transient strike (site, mutation, trigger all drawn
 * from salts 16/17 — disjoint from the config axes above) through
 * the capture-not-fatal runner. The contract under test is campaign
 * totality, at fuzz breadth: whatever the machine does with the
 * corruption — masks it, panics, diverges from golden, or wedges —
 * classifyOutcome() sorts it into exactly one defined bucket and the
 * sweep itself never aborts. The reference leg of each pair must
 * stay golden-clean (the fuzzer's usual guarantee).
 */
TEST(ConfigFuzz, FaultCampaignClassifiesEveryStrike)
{
    const uint64_t seed = envOr("PRI_FUZZ_SEED", 1);
    const uint64_t runs = envOr("PRI_FUZZ_RUNS", 6);
    faults::OutcomeCounts counts;
    for (uint64_t i = 0; i < runs; ++i) {
        auto p = drawPoint(seed, i);
        const auto pick = [&](uint64_t salt, uint64_t bound) {
            return hashCombine(seed, i, salt) % bound;
        };
        const auto site = faults::kAllFaultSites[pick(
            16, std::size(faults::kAllFaultSites))];
        p.faultSpec = faults::drawInjection(
            site, static_cast<unsigned>(i),
            hashCombine(seed, i, 17),
            p.warmupInsts + p.measureInsts);
        SCOPED_TRACE("PRI_FUZZ_SEED=" + std::to_string(seed) +
                     " index=" + std::to_string(i) + ": " +
                     p.benchmark + " " +
                     sim::schemeName(p.scheme) + " strike " +
                     faults::siteName(site) + ":" +
                     faults::mutationName(p.faultSpec.mutation) +
                     " seed " + std::to_string(p.faultSpec.seed));

        auto ref_params = p;
        ref_params.faultSpec = faults::FaultSpec{};
        sim::SimulationRunner runner(1);
        const auto outcomes =
            runner.runCaptured({ref_params, p});
        ASSERT_EQ(outcomes.size(), 2u);
        // The fault-free leg keeps the fuzzer's baseline guarantee.
        ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].error;
        EXPECT_EQ(outcomes[0].result.goldenChecked,
                  outcomes[0].result.committedTotal);
        // The struck leg lands in exactly one defined bucket — a
        // crash or hang is a classified outcome, never an abort.
        const auto outcome =
            faults::classifyOutcome(outcomes[1], outcomes[0]);
        ASSERT_LT(static_cast<size_t>(outcome),
                  faults::kNumFaultOutcomes);
        counts.add(outcome);
    }
    EXPECT_EQ(counts.total(), runs);
}

} // namespace
} // namespace pri
