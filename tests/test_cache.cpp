/**
 * @file
 * Tests for the set-associative cache and the three-level hierarchy
 * (paper Table 1 geometry and latencies).
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"

namespace pri::memory
{
namespace
{

CacheParams
tiny()
{
    // 4 sets x 2 ways x 16B lines = 128 bytes.
    return CacheParams{"tiny", 128, 2, 16, 1};
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(tiny());
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x10f)); // same 16B line
    EXPECT_FALSE(c.access(0x110)); // next line
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache c(tiny());
    // Three lines mapping to the same set (set stride = 64 bytes).
    EXPECT_FALSE(c.access(0x000));
    EXPECT_FALSE(c.access(0x040));
    EXPECT_TRUE(c.access(0x000));  // touch to make 0x040 the LRU
    EXPECT_FALSE(c.access(0x080)); // evicts 0x040
    EXPECT_TRUE(c.access(0x000));
    EXPECT_FALSE(c.access(0x040)); // was evicted
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c(tiny());
    EXPECT_FALSE(c.probe(0x200));
    EXPECT_FALSE(c.probe(0x200)); // still cold
    c.access(0x200);
    EXPECT_TRUE(c.probe(0x200));
    EXPECT_EQ(c.hits(), 0u); // probes don't count
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c(tiny());
    c.access(0x300);
    c.flush();
    EXPECT_FALSE(c.probe(0x300));
    EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(Cache, PaperGeometriesConstruct)
{
    Cache il1(CacheParams{"il1", 32 * 1024, 2, 32, 2});
    Cache dl1(CacheParams{"dl1", 32 * 1024, 4, 16, 2});
    Cache l2(CacheParams{"l2", 512 * 1024, 4, 64, 12});
    EXPECT_FALSE(il1.access(0x1000));
    EXPECT_FALSE(dl1.access(0x1000));
    EXPECT_FALSE(l2.access(0x1000));
}

TEST(Cache, CapacitySweepEvictsExactly)
{
    // Fill a direct-mapped-equivalent working set twice the cache
    // size: second pass must miss everywhere (LRU, sequential).
    Cache c(CacheParams{"c", 1024, 1, 16, 1});
    for (uint64_t a = 0; a < 2048; a += 16)
        c.access(a);
    const uint64_t misses_before = c.misses();
    for (uint64_t a = 0; a < 2048; a += 16)
        c.access(a);
    EXPECT_EQ(c.misses() - misses_before, 128u);
}

TEST(Hierarchy, CumulativeLatencies)
{
    MemoryHierarchy mem;
    const auto &p = mem.params();
    // Cold: DL1 miss, L2 miss -> memory.
    EXPECT_EQ(mem.dataAccess(0x5000, false),
              p.dl1.latency + p.l2.latency + p.memLatency);
    // Warm: DL1 hit.
    EXPECT_EQ(mem.dataAccess(0x5000, false), p.dl1.latency);
}

TEST(Hierarchy, L2HitAfterDl1Eviction)
{
    MemoryHierarchy mem;
    const auto &p = mem.params();
    mem.dataAccess(0x5000, false);
    // Evict 0x5000 from DL1 by sweeping > 32KB of conflicting
    // lines; L2 (512KB) keeps everything.
    for (uint64_t a = 0x100000; a < 0x100000 + 64 * 1024; a += 16)
        mem.dataAccess(a, false);
    EXPECT_EQ(mem.dataAccess(0x5000, false),
              p.dl1.latency + p.l2.latency);
}

TEST(Hierarchy, InstAndDataSidesAreSeparateL1s)
{
    MemoryHierarchy mem;
    const auto &p = mem.params();
    mem.instAccess(0x8000);
    // Data side still cold for the same address, but L2 now has it.
    EXPECT_EQ(mem.dataAccess(0x8000, false),
              p.dl1.latency + p.l2.latency);
    EXPECT_EQ(mem.instAccess(0x8000), p.il1.latency);
}

TEST(Hierarchy, StatsExport)
{
    MemoryHierarchy mem;
    mem.dataAccess(0x1, false);
    mem.dataAccess(0x1, false);
    StatGroup sg;
    mem.exportStats(sg);
    EXPECT_DOUBLE_EQ(sg.scalarValue("mem.dl1.hits"), 1.0);
    EXPECT_DOUBLE_EQ(sg.scalarValue("mem.dl1.misses"), 1.0);
}

} // namespace
} // namespace pri::memory
