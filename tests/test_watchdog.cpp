/**
 * @file
 * Tests for the forward-progress watchdog and the flight recorder:
 * a wedged scheduler must be detected and reported with the run's
 * parameters and a pipeline-event trace; budgets must trip with the
 * right kind; and — the false-positive guard — a healthy
 * memory-bound run under a tight threshold must complete with a
 * report byte-identical to the same run with the watchdog off,
 * because detection is observation-only.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/flight_recorder.hh"
#include "core/core.hh"
#include "sim/simulation.hh"

namespace pri
{
namespace
{

// ---- flight recorder unit tests ----

TEST(FlightRecorder, RecordsAndDumpsWithContext)
{
    FlightRecorder fr;
    EXPECT_TRUE(fr.empty());
    fr.setContext("gzip / Base / w4 / pregs 64 / seed 42");
    fr.record(FlightEvent::Fetch, 100, 0x1000, 1, 0);
    fr.record(FlightEvent::Rename, 101, 0x1000, 1, 17);
    fr.record(FlightEvent::Issue, 103, 0x1000, 1, 17);
    fr.record(FlightEvent::Commit, 105, 0x1000, 1, 17);
    EXPECT_EQ(fr.eventsRecorded(), 4u);

    const std::string d = fr.dump();
    EXPECT_NE(d.find("gzip / Base / w4 / pregs 64 / seed 42"),
              std::string::npos);
    EXPECT_NE(d.find("fetch"), std::string::npos);
    EXPECT_NE(d.find("rename"), std::string::npos);
    EXPECT_NE(d.find("issue"), std::string::npos);
    EXPECT_NE(d.find("commit"), std::string::npos);
    EXPECT_NE(d.find("cycle 105"), std::string::npos);
    EXPECT_NE(d.find("pc 0x1000"), std::string::npos);
}

TEST(FlightRecorder, RingKeepsMostRecentEvents)
{
    FlightRecorder fr;
    const uint64_t total = FlightRecorder::kCapacity + 50;
    for (uint64_t i = 0; i < total; ++i)
        fr.record(FlightEvent::Commit, i, 0x2000 + 4 * i, i, 0);
    EXPECT_EQ(fr.eventsRecorded(), total);

    const std::string d = fr.dump(8);
    // Only the newest events survive the wrap; the dump shows the
    // last 8 of them, oldest first.
    EXPECT_NE(d.find("last 8 of 306 events"), std::string::npos);
    EXPECT_NE(d.find("gidx 305"), std::string::npos);
    EXPECT_NE(d.find("gidx 298"), std::string::npos);
    EXPECT_EQ(d.find("gidx 297 "), std::string::npos);
}

TEST(FlightRecorder, ClearDropsEventsAndContext)
{
    FlightRecorder fr;
    fr.setContext("stale context");
    fr.record(FlightEvent::Note, 1, 2, 3, 4);
    fr.clear();
    EXPECT_TRUE(fr.empty());
    EXPECT_EQ(std::string(fr.context()), "");
    EXPECT_EQ(fr.dump().find("stale"), std::string::npos);
}

TEST(FlightRecorder, LongContextIsTruncatedNotOverflowed)
{
    FlightRecorder fr;
    fr.setContext(std::string(1000, 'x').c_str());
    EXPECT_LT(std::string(fr.context()).size(), 200u);
}

// ---- watchdog detection ----

sim::RunParams
wedgedParams()
{
    sim::RunParams p;
    p.benchmark = "gzip";
    p.warmupInsts = 2000;
    p.measureInsts = 50000;
    p.injectFault = core::InjectedFault::WedgeScheduler;
    p.watchdogCycles = 30000;
    return p;
}

TEST(Watchdog, DetectsWedgedScheduler)
{
    try {
        sim::simulate(wedgedParams());
        FAIL() << "wedged run completed";
    } catch (const core::ProgressStallError &e) {
        // The wedge freezes every occupancy, so the livelock
        // auditor fires first; a plain commit gap would report
        // CommitStall.
        EXPECT_TRUE(e.stall.kind ==
                        core::ProgressStall::Kind::Livelock ||
                    e.stall.kind ==
                        core::ProgressStall::Kind::CommitStall);
        EXPECT_GE(e.stall.committed, core::kWedgeAfterCommits);
        EXPECT_GT(e.stall.cycle, e.stall.lastCommitCycle);

        const std::string msg = e.what();
        EXPECT_NE(msg.find("forward-progress watchdog"),
                  std::string::npos);
        // The report names the wedged run and carries its trace.
        EXPECT_NE(msg.find("gzip / Base / w4 / pregs 64 / seed 42"),
                  std::string::npos);
        EXPECT_NE(msg.find("flight recorder"), std::string::npos);
        EXPECT_NE(msg.find("commit"), std::string::npos);
    }
}

TEST(Watchdog, DisabledWatchdogDefersToCycleBudget)
{
    auto p = wedgedParams();
    p.watchdog = false;
    p.cycleBudget = 200000;
    try {
        sim::simulate(p);
        FAIL() << "wedged run completed";
    } catch (const core::ProgressStallError &e) {
        EXPECT_EQ(e.stall.kind,
                  core::ProgressStall::Kind::CycleBudget);
        EXPECT_GE(e.stall.cycle, 200000u);
    }
}

TEST(Watchdog, CycleBudgetTripsOnHealthyRun)
{
    sim::RunParams p;
    p.benchmark = "gzip";
    p.warmupInsts = 2000;
    p.measureInsts = 1000000;
    p.cycleBudget = 5000;
    try {
        sim::simulate(p);
        FAIL() << "budget never tripped";
    } catch (const core::ProgressStallError &e) {
        EXPECT_EQ(e.stall.kind,
                  core::ProgressStall::Kind::CycleBudget);
        EXPECT_NE(std::string(e.what()).find("cycle-budget"),
                  std::string::npos);
    }
}

TEST(Watchdog, WallClockBudgetTrips)
{
    sim::RunParams p;
    p.benchmark = "gzip";
    p.warmupInsts = 2000;
    // Large enough that the run takes well over the budget on any
    // machine; the deadline check fires every 4096 cycles.
    p.measureInsts = 50000000;
    p.timeoutMs = 20;
    try {
        sim::simulate(p);
        FAIL() << "wall-clock budget never tripped";
    } catch (const core::ProgressStallError &e) {
        EXPECT_EQ(e.stall.kind,
                  core::ProgressStall::Kind::WallClock);
    }
}

TEST(Watchdog, StallDescribeNamesOccupancies)
{
    core::ProgressStall s{};
    s.kind = core::ProgressStall::Kind::Livelock;
    s.cycle = 1000;
    s.lastCommitCycle = 400;
    s.committed = 123;
    s.robCount = 7;
    s.schedCount = 3;
    s.schedHeld = 1;
    s.fetchCount = 2;
    s.occInt = 60;
    s.occFp = 32;
    const std::string d = s.describe();
    EXPECT_NE(d.find("livelock"), std::string::npos);
    EXPECT_NE(d.find("cycle 1000"), std::string::npos);
    EXPECT_NE(d.find("rob 7"), std::string::npos);
    EXPECT_NE(d.find("INT 60"), std::string::npos);
}

/**
 * False-positive guard: a memory-bound benchmark (long dependent
 * L2-miss chains, the slowest committer in the suite) under a tight
 * threshold must NOT trip — and because the watchdog only observes,
 * the stats report must be byte-identical with it on or off.
 */
TEST(Watchdog, MemoryBoundRunUnderTightThresholdIsClean)
{
    sim::RunParams p;
    p.benchmark = "mcf";
    p.physRegs = 48; // extra register pressure
    p.warmupInsts = 2000;
    p.measureInsts = 20000;
    p.watchdogCycles = 10000;

    auto off = p;
    off.watchdog = false;

    const auto with_wd = sim::simulate(p);
    const auto without_wd = sim::simulate(off);
    EXPECT_EQ(with_wd.report, without_wd.report);
    EXPECT_EQ(with_wd.cycles, without_wd.cycles);
    EXPECT_EQ(with_wd.ipc, without_wd.ipc);
}

/** Same guard across every scheme at default thresholds. */
TEST(Watchdog, AllSchemesCleanAtDefaultThreshold)
{
    for (const auto scheme : sim::kAllSchemes) {
        sim::RunParams p;
        p.benchmark = "art";
        p.scheme = scheme;
        p.warmupInsts = 2000;
        p.measureInsts = 8000;
        auto off = p;
        off.watchdog = false;
        SCOPED_TRACE(sim::schemeName(scheme));
        EXPECT_EQ(sim::simulate(p).report,
                  sim::simulate(off).report);
    }
}

} // namespace
} // namespace pri
