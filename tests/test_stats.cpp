/**
 * @file
 * Tests for the statistics package.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace pri
{
namespace
{

TEST(StatScalar, IncrementAndAdd)
{
    StatScalar s;
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s -= 1.0;
    EXPECT_DOUBLE_EQ(s.value(), 2.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(StatAverage, MeanMinMax)
{
    StatAverage a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_DOUBLE_EQ(a.total(), 15.0);
}

TEST(StatAverage, EmptyIsZero)
{
    StatAverage a;
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(StatDistribution, BucketsAndClamp)
{
    StatDistribution d(4);
    d.sample(0);
    d.sample(1);
    d.sample(1);
    d.sample(99); // clamps into last bucket
    EXPECT_EQ(d.count(), 4u);
    EXPECT_EQ(d.bucket(0), 1u);
    EXPECT_EQ(d.bucket(1), 2u);
    EXPECT_EQ(d.bucket(3), 1u);
}

TEST(StatDistribution, Cdf)
{
    StatDistribution d(10);
    for (uint64_t i = 0; i < 10; ++i)
        d.sample(i);
    EXPECT_DOUBLE_EQ(d.cdfAt(4), 0.5);
    EXPECT_DOUBLE_EQ(d.cdfAt(9), 1.0);
}

TEST(StatDistribution, Mean)
{
    StatDistribution d(10);
    d.sample(2);
    d.sample(4);
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
}

TEST(StatGroup, ScalarLookupAndReport)
{
    StatGroup g;
    g.scalar("a.count") += 7;
    g.average("a.avg").sample(3.0);
    g.distribution("a.dist").init(4);
    g.distribution("a.dist").sample(2);

    EXPECT_DOUBLE_EQ(g.scalarValue("a.count"), 7.0);
    EXPECT_DOUBLE_EQ(g.scalarValue("missing"), 0.0);

    const std::string rep = g.report();
    EXPECT_NE(rep.find("a.count"), std::string::npos);
    EXPECT_NE(rep.find("a.avg"), std::string::npos);
    EXPECT_NE(rep.find("a.dist"), std::string::npos);
}

TEST(StatGroup, ResetAllZeroesEverything)
{
    StatGroup g;
    g.scalar("x") += 5;
    g.average("y").sample(2.0);
    g.resetAll();
    EXPECT_EQ(g.scalarValue("x"), 0.0);
    EXPECT_EQ(g.average("y").count(), 0u);
}

TEST(StatGroup, SameNameReturnsSameStat)
{
    StatGroup g;
    g.scalar("n") += 1;
    g.scalar("n") += 1;
    EXPECT_DOUBLE_EQ(g.scalarValue("n"), 2.0);
}

TEST(StatGroup, InternedHandleUpdatesVisibleByName)
{
    StatGroup g;
    StatScalar &h = g.registerScalar("core.counter");
    h += 3;
    ++h;
    EXPECT_DOUBLE_EQ(g.scalarValue("core.counter"), 4.0);

    StatAverage &a = g.registerAverage("core.avg");
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(g.average("core.avg").mean(), 3.0);
}

TEST(StatGroup, InternedHandleStableAcrossLaterRegistrations)
{
    // The handles are held for the lifetime of a core; later
    // registrations must not invalidate them.
    StatGroup g;
    StatScalar &first = g.registerScalar("a.first");
    for (char c = 'b'; c <= 'z'; ++c)
        g.registerScalar(std::string(1, c) + ".filler");
    first += 5;
    EXPECT_DOUBLE_EQ(g.scalarValue("a.first"), 5.0);
}

TEST(StatGroupDeathTest, DuplicateScalarRegistrationPanics)
{
    StatGroup g;
    g.registerScalar("dup.scalar");
    EXPECT_DEATH(g.registerScalar("dup.scalar"), "duplicate");
}

TEST(StatGroupDeathTest, DuplicateAverageRegistrationPanics)
{
    StatGroup g;
    g.registerAverage("dup.avg");
    EXPECT_DEATH(g.registerAverage("dup.avg"), "duplicate");
}

} // namespace
} // namespace pri
