/**
 * @file
 * Tests for pooled branch checkpointing: CheckpointPool slot and
 * generation semantics, pool-exhaustion behaviour on the full core
 * (fetch stalls, graceful IPC degradation), timing identity between
 * the pooled and legacy copy paths, and a property test that
 * journal-based restore (RAS undo log + reusable walker slots) is
 * observationally identical to full-copy snapshots under random
 * checkpoint/steer/restore interleavings.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <random>
#include <vector>

#include "branch/predictor.hh"
#include "core/checkpoint_pool.hh"
#include "core/core.hh"
#include "workload/program.hh"
#include "workload/walker.hh"

namespace pri
{
namespace
{

// --- CheckpointPool unit tests ---------------------------------

TEST(CheckpointPool, FillsAndReclaimsOutOfOrder)
{
    core::CheckpointPool pool(4);
    EXPECT_EQ(pool.capacity(), 4u);
    EXPECT_TRUE(pool.empty());

    std::vector<core::CkptRef> refs;
    for (int i = 0; i < 4; ++i)
        refs.push_back(pool.allocate());
    EXPECT_TRUE(pool.full());
    EXPECT_EQ(pool.liveSlots(), 4u);

    // Branches resolve out of order: releasing an interior slot
    // frees no window space until the edges pass it...
    pool.release(refs[1]);
    EXPECT_TRUE(pool.full());
    EXPECT_EQ(pool.liveSlots(), 3u);

    // ...but releasing the head edge reclaims past the dead slot.
    pool.release(refs[0]);
    EXPECT_FALSE(pool.full());
    EXPECT_EQ(pool.liveSlots(), 2u);

    refs.push_back(pool.allocate());
    refs.push_back(pool.allocate());
    EXPECT_TRUE(pool.full());

    pool.release(refs[2]);
    pool.release(refs[3]);
    pool.release(refs[4]);
    pool.release(refs[5]);
    EXPECT_TRUE(pool.empty());
    EXPECT_FALSE(pool.full());
}

TEST(CheckpointPool, OldestFollowsCreationOrder)
{
    core::CheckpointPool pool(4);
    auto a = pool.allocate();
    auto b = pool.allocate();
    pool.get(a).archSeq = 100;
    pool.get(b).archSeq = 200;
    EXPECT_EQ(pool.oldest().archSeq, 100u);
    pool.release(a);
    EXPECT_EQ(pool.oldest().archSeq, 200u);
}

TEST(CheckpointPool, SlotsRetainStorageAcrossReuse)
{
    // The walker checkpoint inside a slot keeps its stack capacity
    // across release/allocate cycles: that is the whole point of
    // the pool (grow once, never allocate again).
    core::CheckpointPool pool(1);
    auto r = pool.allocate();
    pool.get(r).walker.stack.resize(64);
    const size_t cap = pool.get(r).walker.stack.capacity();
    pool.release(r);
    auto r2 = pool.allocate();
    EXPECT_GE(pool.get(r2).walker.stack.capacity(), cap);
}

TEST(CheckpointPoolDeathTest, StaleReferencePanics)
{
    core::CheckpointPool pool(2);
    auto r = pool.allocate();
    pool.release(r);
    // The slot's generation advanced; the old ref must not resolve.
    EXPECT_DEATH(pool.get(r), "stale checkpoint reference");
}

TEST(CheckpointPoolDeathTest, DoubleFreePanics)
{
    core::CheckpointPool pool(2);
    auto r = pool.allocate();
    pool.release(r);
    EXPECT_DEATH(pool.release(r), "double-free");
}

TEST(CheckpointPoolDeathTest, ReuseAfterReleasePanicsOnOldRef)
{
    // A ref that survived a squash must not alias the slot's next
    // tenant, even though the index is live again.
    core::CheckpointPool pool(1);
    auto old_ref = pool.allocate();
    pool.release(old_ref);
    auto fresh = pool.allocate();
    EXPECT_EQ(old_ref.idx, fresh.idx);
    EXPECT_NE(old_ref.gen, fresh.gen);
    EXPECT_DEATH(pool.get(old_ref), "stale checkpoint reference");
    EXPECT_DEATH(pool.release(old_ref), "double-free");
}

TEST(CheckpointPoolDeathTest, OverflowPanics)
{
    core::CheckpointPool pool(1);
    (void)pool.allocate();
    EXPECT_DEATH(pool.allocate(), "checkpoint pool overflow");
}

// --- pool exhaustion on the full core --------------------------

struct CoreHarness
{
    StatGroup stats;
    workload::SyntheticProgram prog;
    core::OutOfOrderCore cpu;

    CoreHarness(const core::CoreConfig &cfg, const std::string &bench,
                uint64_t seed = 3)
        : prog(workload::profileByName(bench), seed),
          cpu(cfg, prog, stats)
    {
    }
};

TEST(PooledCore, AutoSizedPoolNeverStalls)
{
    // The default capacity (robSize + fetchQueueSize) has one slot
    // for every branch that can possibly be in flight, so fetch must
    // never stall on the pool.
    const auto cfg = core::CoreConfig::fourWide(
        rename::RenameConfig::base(64, 7));
    CoreHarness h(cfg, "gcc", 23);
    h.cpu.run(30000);
    EXPECT_GT(h.stats.scalarValue("core.ckptsTaken"), 1000.0);
    EXPECT_GT(h.stats.scalarValue("core.ckptsRestored"), 50.0);
    EXPECT_EQ(h.stats.scalarValue("core.ckptPoolStalls"), 0.0);
    h.cpu.checkInvariants();
}

TEST(PooledCore, TimingIdenticalToLegacySnapshots)
{
    // Pooled checkpointing changes how the simulator stores recovery
    // state, not what the machine does: cycle counts and every
    // branch statistic must match the legacy copy path exactly.
    auto cfg = core::CoreConfig::fourWide(
        rename::RenameConfig::priRefcountCkptcount(64, 7));
    cfg.pooledCheckpoints = true;
    CoreHarness pooled(cfg, "gcc", 17);
    pooled.cpu.run(30000);

    cfg.pooledCheckpoints = false;
    CoreHarness legacy(cfg, "gcc", 17);
    legacy.cpu.run(30000);

    EXPECT_EQ(pooled.cpu.cycles(), legacy.cpu.cycles());
    EXPECT_EQ(pooled.cpu.committedInsts(),
              legacy.cpu.committedInsts());
    for (const char *stat :
         {"core.committedBranches", "core.branchMispredicts",
          "core.squashedInsts", "core.ckptsTaken",
          "core.ckptsRestored", "core.ckptPoolStalls",
          "core.replays"}) {
        EXPECT_EQ(pooled.stats.scalarValue(stat),
                  legacy.stats.scalarValue(stat))
            << stat;
    }
    pooled.cpu.checkInvariants();
    legacy.cpu.checkInvariants();
}

TEST(PooledCore, TinyPoolStallsFetchButStillCompletes)
{
    // A 4-slot pool models a finite hardware checkpoint file. gcc
    // keeps far more than 4 branches in flight, so fetch must stall
    // on the pool -- and the run must still commit every instruction
    // with all invariants (including the generation checks on every
    // release) intact.
    auto cfg = core::CoreConfig::fourWide(
        rename::RenameConfig::base(64, 7));
    cfg.ckptPoolSlots = 4;
    CoreHarness h(cfg, "gcc", 23);
    h.cpu.run(20000);
    EXPECT_GT(h.stats.scalarValue("core.ckptPoolStalls"), 100.0);
    EXPECT_GE(h.cpu.committedInsts(), 20000u);
    h.cpu.checkInvariants();
}

TEST(PooledCore, TinyPoolDegradesIpcGracefully)
{
    auto cfg = core::CoreConfig::fourWide(
        rename::RenameConfig::base(64, 7));
    CoreHarness full(cfg, "gcc", 23);
    full.cpu.run(20000);

    cfg.ckptPoolSlots = 4;
    CoreHarness tiny(cfg, "gcc", 23);
    tiny.cpu.run(20000);

    // Stalling fetch can only cost cycles, and a 4-slot pool still
    // covers the common few-branches-in-flight case, so the penalty
    // is bounded: slower than the full pool, but within 3x.
    EXPECT_GE(tiny.cpu.cycles(), full.cpu.cycles());
    EXPECT_LT(tiny.cpu.cycles(), full.cpu.cycles() * 3);
}

// --- property test: journal restore == full-copy restore -------

/** Pop every live entry (on a copy), newest first. */
std::vector<uint64_t>
drainRas(branch::Ras ras)
{
    std::vector<uint64_t> out;
    while (!ras.empty())
        out.push_back(ras.pop());
    return out;
}

TEST(CheckpointProperty, JournalRestoreMatchesFullCopy)
{
    // Two identical front-ends walk the same program and take a
    // checkpoint at every branch while slots are available. One
    // records pooled-style state (reusable walker slots, RAS
    // journal positions, history); the other records legacy
    // full copies. Under random steering, random restores to any
    // live checkpoint, and random oldest-first releases (with
    // journal trims), every observable -- instruction stream,
    // predictor history, drained RAS contents -- must stay
    // identical between the two.
    const auto &prof = workload::profileByName("gcc");
    workload::SyntheticProgram prog(prof, 7);
    workload::Walker wj(prog);
    workload::Walker wf(prog);
    branch::CombinedPredictor pj, pf;
    branch::Ras rasJ;
    branch::Ras rasF;
    rasF.setJournaling(false);

    constexpr unsigned kSlots = 8;
    std::vector<workload::WalkerCkpt> slots(kSlots);
    std::vector<unsigned> freeSlots;
    for (unsigned i = 0; i < kSlots; ++i)
        freeSlots.push_back(i);

    struct Ckpt
    {
        workload::WInst wi; ///< the branch, for re-steering
        unsigned slotIdx;   ///< pooled walker state
        branch::PredictorSnapshot snapJ;
        workload::WalkerCkpt full; ///< legacy walker copy
        branch::PredictorSnapshotFull snapF;
    };
    std::deque<Ckpt> live;

    std::mt19937 rng(0xC4A7);
    auto chance = [&](double p) {
        return std::uniform_real_distribution<>(0, 1)(rng) < p;
    };

    const auto trimToOldest = [&] {
        rasJ.trimJournal(live.empty() ? rasJ.journalSeq()
                                      : live.front().snapJ.rasSeq);
    };

    for (int step = 0; step < 20000; ++step) {
        const workload::WInst a = wj.next();
        const workload::WInst b = wf.next();
        ASSERT_EQ(a.pc, b.pc) << "step " << step;
        ASSERT_EQ(a.seq, b.seq);
        ASSERT_EQ(a.resultValue, b.resultValue);
        ASSERT_EQ(a.memAddr, b.memAddr);
        ASSERT_EQ(a.taken, b.taken);

        if (a.isBranch()) {
            if (!a.isUncond) {
                (void)pj.predict(a.pc);
                (void)pf.predict(a.pc);
            }
            if (a.isCall) {
                rasJ.push(a.fallThrough);
                rasF.push(a.fallThrough);
            } else if (a.isReturn) {
                ASSERT_EQ(rasJ.pop(), rasF.pop());
            }

            if (!freeSlots.empty() && chance(0.8)) {
                Ckpt c;
                c.wi = a;
                c.slotIdx = freeSlots.back();
                freeSlots.pop_back();
                wj.checkpointInto(slots[c.slotIdx]);
                c.full = wf.checkpoint();
                c.snapJ.history = pj.history();
                rasJ.snapshot(c.snapJ);
                c.snapF.history = pf.history();
                rasF.snapshot(c.snapF);
                live.push_back(c);
            }

            const bool taken = a.isUncond || chance(0.5);
            const uint64_t tgt =
                taken ? a.actualTarget : a.fallThrough;
            wj.steer(a, taken, tgt);
            wf.steer(a, taken, tgt);
        }

        // Mispredict recovery: restore a random live checkpoint,
        // squashing it and everything younger.
        if (!live.empty() && chance(0.10)) {
            const size_t k = std::uniform_int_distribution<size_t>(
                0, live.size() - 1)(rng);
            const Ckpt &c = live[k];
            wj.restore(slots[c.slotIdx]);
            wf.restore(c.full);
            rasJ.restore(c.snapJ);
            rasF.restore(c.snapF);
            pj.setHistory(c.snapJ.history);
            pf.setHistory(c.snapF.history);
            ASSERT_EQ(pj.history(), pf.history());
            ASSERT_EQ(drainRas(rasJ), drainRas(rasF))
                << "RAS diverged after restore at step " << step;

            // Resume down the actual path.
            wj.steer(c.wi, c.wi.taken, c.wi.actualTarget);
            wf.steer(c.wi, c.wi.taken, c.wi.actualTarget);
            while (live.size() > k) {
                freeSlots.push_back(live.back().slotIdx);
                live.pop_back();
            }
            trimToOldest();
        }

        // Oldest branch resolves correctly: release its checkpoint
        // and trim the journal up to the next live one.
        if (!live.empty() && chance(0.05)) {
            freeSlots.push_back(live.front().slotIdx);
            live.pop_front();
            trimToOldest();
        }
    }

    EXPECT_EQ(pj.history(), pf.history());
    EXPECT_EQ(drainRas(rasJ), drainRas(rasF));
}

} // namespace
} // namespace pri
