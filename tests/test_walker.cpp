/**
 * @file
 * Tests for the dynamic walker: determinism under checkpoint/restore
 * (the property all scheme comparisons rest on), wrong-path walking,
 * and the statistical properties of generated values (paper Fig 2).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/bitutils.hh"
#include "workload/walker.hh"

namespace pri::workload
{
namespace
{

/** Walk n instructions down the correct path. */
std::vector<WInst>
walkCorrect(Walker &w, size_t n)
{
    std::vector<WInst> out;
    while (out.size() < n) {
        WInst wi = w.next();
        if (wi.isBranch())
            w.steer(wi, wi.taken, wi.actualTarget);
        out.push_back(wi);
    }
    return out;
}

TEST(Walker, CorrectPathIsDeterministic)
{
    const auto &prof = profileByName("gzip");
    SyntheticProgram prog(prof, 5);
    Walker a(prog);
    Walker b(prog);
    const auto wa = walkCorrect(a, 5000);
    const auto wb = walkCorrect(b, 5000);
    for (size_t i = 0; i < wa.size(); ++i) {
        EXPECT_EQ(wa[i].pc, wb[i].pc);
        EXPECT_EQ(wa[i].resultValue, wb[i].resultValue);
        EXPECT_EQ(wa[i].memAddr, wb[i].memAddr);
        EXPECT_EQ(wa[i].taken, wb[i].taken);
    }
}

TEST(Walker, WrongPathDetourLeavesCorrectPathUnchanged)
{
    // Walking down the wrong path at every branch, then restoring,
    // must reproduce exactly the same correct-path stream.
    const auto &prof = profileByName("gcc");
    SyntheticProgram prog(prof, 9);

    Walker ref(prog);
    const auto expected = walkCorrect(ref, 3000);

    Walker w(prog);
    std::vector<WInst> got;
    while (got.size() < 3000) {
        WInst wi = w.next();
        if (wi.isBranch()) {
            if (!wi.isUncond) {
                // Take a 10-instruction wrong-path detour first.
                const auto ckpt = w.checkpoint();
                const bool wrong = !wi.taken;
                w.steer(wi, wrong,
                        wrong ? wi.actualTarget : wi.fallThrough);
                for (int k = 0; k < 10; ++k) {
                    WInst junk = w.next();
                    if (junk.isBranch()) {
                        w.steer(junk, junk.taken,
                                junk.actualTarget);
                    }
                }
                w.restore(ckpt);
            }
            w.steer(wi, wi.taken, wi.actualTarget);
        }
        got.push_back(wi);
    }

    for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[i].pc, expected[i].pc) << "at " << i;
        EXPECT_EQ(got[i].resultValue, expected[i].resultValue)
            << "at " << i;
        EXPECT_EQ(got[i].taken, expected[i].taken) << "at " << i;
        EXPECT_EQ(got[i].memAddr, expected[i].memAddr) << "at " << i;
    }
}

TEST(Walker, IntValueWidthsTrackProfileCdf)
{
    const auto &prof = profileByName("gzip");
    SyntheticProgram prog(prof, 11);
    Walker w(prog);
    const auto insts = walkCorrect(w, 40000);

    uint64_t n = 0, le10 = 0;
    for (const auto &wi : insts) {
        if (wi.hasDst() && wi.dst.cls == isa::RegClass::Int) {
            ++n;
            if (significantBits(wi.resultValue) <= 10)
                ++le10;
        }
    }
    ASSERT_GT(n, 1000u);
    const double frac = static_cast<double>(le10) / n;
    // gzip's CDF says ~0.8 of operands fit in 10 bits; allow slack
    // for per-static clustering.
    EXPECT_NEAR(frac, prog.widthCdf().at(10), 0.12);
}

TEST(Walker, FpZeroFractionTracksProfile)
{
    const auto &prof = profileByName("art"); // fpFracZero = 0.86
    SyntheticProgram prog(prof, 11);
    Walker w(prog);
    const auto insts = walkCorrect(w, 40000);

    uint64_t n = 0, zero = 0;
    for (const auto &wi : insts) {
        if (wi.hasDst() && wi.dst.cls == isa::RegClass::Fp) {
            ++n;
            if (fpValueTrivial(wi.resultValue))
                ++zero;
        }
    }
    ASSERT_GT(n, 1000u);
    EXPECT_NEAR(static_cast<double>(zero) / n, prof.fpFracZero,
                0.05);
}

TEST(Walker, AddressesStayInsideStreams)
{
    const auto &prof = profileByName("mcf");
    SyntheticProgram prog(prof, 3);
    Walker w(prog);
    const auto insts = walkCorrect(w, 20000);
    for (const auto &wi : insts) {
        if (!wi.isLoad() && !wi.isStore())
            continue;
        bool inside = false;
        for (const auto &st : prog.streams()) {
            if (wi.memAddr >= st.base &&
                wi.memAddr < st.base + st.bytes) {
                inside = true;
                break;
            }
        }
        EXPECT_TRUE(inside) << "addr " << wi.memAddr;
    }
}

TEST(Walker, BranchOutcomeRatesFollowBias)
{
    const auto &prof = profileByName("gzip");
    SyntheticProgram prog(prof, 21);
    Walker w(prog);
    const auto insts = walkCorrect(w, 50000);
    uint64_t branches = 0, taken = 0;
    for (const auto &wi : insts) {
        if (wi.isBranch() && !wi.isUncond) {
            ++branches;
            taken += wi.taken;
        }
    }
    ASSERT_GT(branches, 2000u);
    const double rate = static_cast<double>(taken) / branches;
    // Loop back-edges are strongly taken, forward branches mixed:
    // overall taken rate should be clearly between the extremes.
    EXPECT_GT(rate, 0.2);
    EXPECT_LT(rate, 0.9);
}

TEST(Walker, SeqNumbersAreUniqueAndMonotonic)
{
    const auto &prof = profileByName("eon");
    SyntheticProgram prog(prof, 4);
    Walker w(prog);
    uint64_t prev = 0;
    bool first = true;
    for (int i = 0; i < 2000; ++i) {
        WInst wi = w.next();
        if (wi.isBranch())
            w.steer(wi, wi.taken, wi.actualTarget);
        if (!first)
            EXPECT_GT(wi.seq, prev);
        prev = wi.seq;
        first = false;
    }
}

TEST(Walker, CurrentPcMatchesNextInstruction)
{
    const auto &prof = profileByName("eon");
    SyntheticProgram prog(prof, 4);
    Walker w(prog);
    for (int i = 0; i < 1000; ++i) {
        const uint64_t pc = w.currentPc();
        WInst wi = w.next();
        EXPECT_EQ(wi.pc, pc);
        if (wi.isBranch())
            w.steer(wi, wi.taken, wi.actualTarget);
    }
}

TEST(Walker, ReturnsTargetTheirCallSites)
{
    const auto &prof = profileByName("gcc");
    SyntheticProgram prog(prof, 13);
    Walker w(prog);
    std::vector<uint64_t> call_stack;
    for (int i = 0; i < 50000; ++i) {
        WInst wi = w.next();
        if (wi.isBranch()) {
            if (wi.isCall)
                call_stack.push_back(wi.fallThrough);
            if (wi.isReturn && !call_stack.empty()) {
                EXPECT_EQ(wi.actualTarget, call_stack.back());
                call_stack.pop_back();
            }
            w.steer(wi, wi.taken, wi.actualTarget);
        }
    }
}

} // namespace
} // namespace pri::workload
