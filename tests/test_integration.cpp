/**
 * @file
 * Integration tests: the cross-scheme behavioural shapes the paper
 * reports must hold on the simulator (directionally, on small
 * instruction budgets).
 */

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "workload/profile.hh"

namespace pri::sim
{
namespace
{

RunResult
quickRun(const std::string &bench, unsigned width, Scheme scheme,
         unsigned pregs = 64)
{
    RunParams p;
    p.benchmark = bench;
    p.width = width;
    p.scheme = scheme;
    p.physRegs = pregs;
    p.warmupInsts = 10000;
    p.measureInsts = 40000;
    p.seed = 42;
    p.checkInvariants = true;
    return simulate(p);
}

TEST(Integration, PriSpeedsUpRegisterBoundRuns)
{
    // gzip at 64 registers is register-bound and narrow-heavy:
    // the paper's headline effect must appear.
    const auto base = quickRun("gzip", 4, Scheme::Base);
    const auto pri =
        quickRun("gzip", 4, Scheme::PriRefcountCkptcount);
    EXPECT_GT(pri.ipc, base.ipc * 1.03);
}

TEST(Integration, InfinitePregsIsTheUpperBound)
{
    const auto inf = quickRun("gzip", 4, Scheme::InfinitePregs);
    for (Scheme s : {Scheme::Base, Scheme::EarlyRelease,
                     Scheme::PriRefcountCkptcount,
                     Scheme::PriPlusEr}) {
        const auto r = quickRun("gzip", 4, s);
        EXPECT_LE(r.ipc, inf.ipc * 1.02)
            << schemeName(s) << " beat InfPR";
    }
}

TEST(Integration, PriBeatsEarlyReleaseAsInPaper)
{
    // Paper §5.1: PRI outperforms previous-work early release.
    const auto er = quickRun("gzip", 4, Scheme::EarlyRelease);
    const auto pri =
        quickRun("gzip", 4, Scheme::PriRefcountCkptcount);
    EXPECT_GT(pri.ipc, er.ipc);
}

TEST(Integration, CombiningPriAndErHelpsOrMatches)
{
    const auto pri =
        quickRun("bzip2", 4, Scheme::PriRefcountCkptcount);
    const auto both = quickRun("bzip2", 4, Scheme::PriPlusEr);
    EXPECT_GE(both.ipc, pri.ipc * 0.99);
}

TEST(Integration, IdealFlavourIsAtLeastRefcount)
{
    const auto ref =
        quickRun("mcf", 4, Scheme::PriRefcountCkptcount);
    const auto ideal =
        quickRun("mcf", 4, Scheme::PriIdealCkptcount);
    EXPECT_GE(ideal.ipc, ref.ipc * 0.98);
}

TEST(Integration, LazyCheckpointUpdateIsAtLeastCkptcount)
{
    const auto ckpt =
        quickRun("mcf", 4, Scheme::PriRefcountCkptcount);
    const auto lazy = quickRun("mcf", 4, Scheme::PriRefcountLazy);
    EXPECT_GE(lazy.ipc, ckpt.ipc * 0.98);
}

TEST(Integration, PriCollapsesPhase3Lifetime)
{
    // Figure 8: last-read -> release shrinks dramatically under PRI.
    const auto base = quickRun("gzip", 4, Scheme::Base);
    const auto pri =
        quickRun("gzip", 4, Scheme::PriRefcountCkptcount);
    EXPECT_LT(pri.lifeLastReadToRelease,
              base.lifeLastReadToRelease * 0.7);
}

TEST(Integration, PriReducesOccupancy)
{
    // Figure 11: average PRF occupancy drops under PRI.
    const auto base = quickRun("gzip", 4, Scheme::Base);
    const auto pri =
        quickRun("gzip", 4, Scheme::PriRefcountCkptcount);
    EXPECT_LT(pri.avgIntOccupancy, base.avgIntOccupancy);
}

TEST(Integration, MorePhysicalRegistersNeverHurtMuch)
{
    // Figure 9 monotonicity (within noise).
    const auto p40 = quickRun("gzip", 4, Scheme::Base, 40);
    const auto p64 = quickRun("gzip", 4, Scheme::Base, 64);
    const auto p96 = quickRun("gzip", 4, Scheme::Base, 96);
    EXPECT_GE(p64.ipc, p40.ipc * 0.97);
    EXPECT_GE(p96.ipc, p64.ipc * 0.97);
}

TEST(Integration, NarrowHeavyBenchmarkInlinesMoreThanWide)
{
    // gzip (narrow CDF) must inline a much larger fraction of its
    // results than crafty (bitboards).
    const auto gzip =
        quickRun("gzip", 4, Scheme::PriRefcountCkptcount);
    const auto crafty =
        quickRun("crafty", 4, Scheme::PriRefcountCkptcount);
    EXPECT_GT(gzip.inlinedFrac, crafty.inlinedFrac + 0.15);
}

TEST(Integration, FpBenchmarkInlinesZeroValues)
{
    // art: 86% of FP values are +0.0 and inlineable.
    const auto art = quickRun("art", 4, Scheme::PriRefcountCkptcount);
    EXPECT_GT(art.priEarlyFrees, 10.0);
}

TEST(Integration, TenBitWindowCapturesMoreOperandsThanSeven)
{
    // The 8-wide model's wider map entry (10-bit values) must
    // capture strictly more of every workload's operands than the
    // 4-wide model's 7-bit entries (paper §4's motivation for the
    // per-width narrow limits).
    for (const auto &prof : workload::allProfiles()) {
        const workload::WidthCdf cdf(prof.widthPoints);
        EXPECT_GT(cdf.at(10), cdf.at(7) - 1e-12) << prof.name;
        EXPECT_GT(cdf.at(10), 0.0) << prof.name;
    }
}

TEST(Integration, RetiredCountMatchesGoldenWalker)
{
    // The core's committed-instruction count must agree with an
    // independent walk of the committed path: the golden walker
    // advances once per observed commit, so any skipped or
    // double-counted retirement shows up as a count mismatch (and
    // any divergence in content kills the run outright).
    RunParams p;
    p.benchmark = "gcc";
    p.width = 4;
    p.scheme = Scheme::PriRefcountCkptcount;
    p.warmupInsts = 5000;
    p.measureInsts = 20000;
    p.seed = 42;
    p.checkInvariants = true;
    p.checkGolden = true;
    const auto r = simulate(p);
    EXPECT_EQ(r.goldenChecked, r.committedTotal);
    EXPECT_GE(r.committedTotal, p.warmupInsts + p.measureInsts);
    EXPECT_LE(r.insts, r.committedTotal); // window ⊆ whole run
}

TEST(Integration, SchemesAgreeOnWorkloadCharacter)
{
    // Scheme choice must not change workload-level properties.
    const auto base = quickRun("parser", 4, Scheme::Base);
    const auto pri =
        quickRun("parser", 4, Scheme::PriIdealLazy);
    EXPECT_NEAR(base.branchMispredictRate,
                pri.branchMispredictRate, 0.02);
    EXPECT_NEAR(base.dl1MissRate, pri.dl1MissRate, 0.03);
}

TEST(Integration, EightWideShowsLargerPriGains)
{
    // Paper: 7.3% @4-wide vs 14.8% @8-wide on average. Test the
    // direction on a clearly register-bound benchmark.
    const auto b4 = quickRun("gzip", 4, Scheme::Base);
    const auto p4 = quickRun("gzip", 4, Scheme::PriRefcountCkptcount);
    const auto b8 = quickRun("gzip", 8, Scheme::Base);
    const auto p8 = quickRun("gzip", 8, Scheme::PriRefcountCkptcount);
    const double s4 = p4.ipc / b4.ipc;
    const double s8 = p8.ipc / b8.ipc;
    EXPECT_GT(s8, s4 * 0.9); // at least comparable; usually larger
}

} // namespace
} // namespace pri::sim
