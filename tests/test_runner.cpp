/**
 * @file
 * Tests for the parallel experiment runner: results must be
 * bit-identical to direct serial simulate() calls regardless of the
 * worker count, in submission order, across repeated invocations;
 * exceptions from workers must propagate or be captured per-run.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/runner.hh"
#include "sim/simulation.hh"

namespace pri::sim
{
namespace
{

std::vector<RunParams>
smallBatch()
{
    std::vector<RunParams> batch;
    for (const char *bench : {"gzip", "equake"}) {
        for (auto scheme :
             {Scheme::Base, Scheme::PriRefcountCkptcount}) {
            RunParams p;
            p.benchmark = bench;
            p.scheme = scheme;
            p.warmupInsts = 2000;
            p.measureInsts = 8000;
            p.seed = 7;
            batch.push_back(p);
        }
    }
    return batch;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.avgIntOccupancy, b.avgIntOccupancy);
    EXPECT_EQ(a.avgFpOccupancy, b.avgFpOccupancy);
    EXPECT_EQ(a.lifeAllocToWrite, b.lifeAllocToWrite);
    EXPECT_EQ(a.lifeWriteToLastRead, b.lifeWriteToLastRead);
    EXPECT_EQ(a.lifeLastReadToRelease, b.lifeLastReadToRelease);
    EXPECT_EQ(a.branchMispredictRate, b.branchMispredictRate);
    EXPECT_EQ(a.dl1MissRate, b.dl1MissRate);
    EXPECT_EQ(a.priEarlyFrees, b.priEarlyFrees);
    EXPECT_EQ(a.erEarlyFrees, b.erEarlyFrees);
    EXPECT_EQ(a.inlinedFrac, b.inlinedFrac);
    EXPECT_EQ(a.report, b.report);
}

TEST(SimulationRunner, DefaultJobsIsAtLeastOne)
{
    EXPECT_GE(defaultJobs(), 1u);
    EXPECT_GE(SimulationRunner().jobs(), 1u);
    EXPECT_EQ(SimulationRunner(3).jobs(), 3u);
}

/** Same RunParams: direct simulate(), jobs=1, and jobs=8 must all
 *  produce bit-identical results, twice in a row. */
TEST(SimulationRunner, DeterministicAcrossWorkerCounts)
{
    const auto batch = smallBatch();

    std::vector<RunResult> reference;
    for (const auto &p : batch)
        reference.push_back(simulate(p));

    for (int repeat = 0; repeat < 2; ++repeat) {
        const auto serial = SimulationRunner(1).run(batch);
        const auto parallel = SimulationRunner(8).run(batch);
        ASSERT_EQ(serial.size(), batch.size());
        ASSERT_EQ(parallel.size(), batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
            expectIdentical(serial[i], reference[i]);
            expectIdentical(parallel[i], reference[i]);
        }
    }
}

/** Results come back in submission order, not completion order. */
TEST(SimulationRunner, ResultsInSubmissionOrder)
{
    auto batch = smallBatch();
    const auto results = SimulationRunner(4).run(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(results[i].benchmark, batch[i].benchmark);
        EXPECT_EQ(results[i].scheme,
                  schemeName(batch[i].scheme));
    }
}

TEST(SimulationRunner, ForEachCoversAllIndicesOnce)
{
    for (unsigned jobs : {1u, 4u}) {
        std::vector<int> hits(100, 0);
        SimulationRunner(jobs).forEach(
            hits.size(), [&](size_t i) { ++hits[i]; });
        for (int h : hits)
            EXPECT_EQ(h, 1);
    }
}

TEST(SimulationRunner, ForEachPropagatesExceptions)
{
    for (unsigned jobs : {1u, 4u}) {
        EXPECT_THROW(
            SimulationRunner(jobs).forEach(8,
                                           [&](size_t i) {
                                               if (i == 5)
                                                   throw std::
                                                       runtime_error(
                                                           "boom");
                                           }),
            std::runtime_error);
    }
}

TEST(SimulationRunner, RunCapturedReportsPerRunErrors)
{
    auto batch = smallBatch();
    batch[1].benchmark = "no-such-benchmark";

    const auto outcomes = SimulationRunner(4).runCaptured(batch);
    ASSERT_EQ(outcomes.size(), batch.size());
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_FALSE(outcomes[1].ok());
    EXPECT_FALSE(outcomes[1].error.empty());
    EXPECT_TRUE(outcomes[2].ok());
    EXPECT_TRUE(outcomes[3].ok());

    // Successful runs are unaffected by the failing sibling.
    expectIdentical(outcomes[0].result, simulate(batch[0]));
}

} // namespace
} // namespace pri::sim
