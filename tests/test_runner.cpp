/**
 * @file
 * Tests for the parallel experiment runner: results must be
 * bit-identical to direct serial simulate() calls regardless of the
 * worker count, in submission order, across repeated invocations;
 * exceptions from workers must propagate or be captured per-run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/core.hh"
#include "sim/journal.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"

namespace pri::sim
{
namespace
{

std::vector<RunParams>
smallBatch()
{
    std::vector<RunParams> batch;
    for (const char *bench : {"gzip", "equake"}) {
        for (auto scheme :
             {Scheme::Base, Scheme::PriRefcountCkptcount}) {
            RunParams p;
            p.benchmark = bench;
            p.scheme = scheme;
            p.warmupInsts = 2000;
            p.measureInsts = 8000;
            p.seed = 7;
            batch.push_back(p);
        }
    }
    return batch;
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.avgIntOccupancy, b.avgIntOccupancy);
    EXPECT_EQ(a.avgFpOccupancy, b.avgFpOccupancy);
    EXPECT_EQ(a.lifeAllocToWrite, b.lifeAllocToWrite);
    EXPECT_EQ(a.lifeWriteToLastRead, b.lifeWriteToLastRead);
    EXPECT_EQ(a.lifeLastReadToRelease, b.lifeLastReadToRelease);
    EXPECT_EQ(a.branchMispredictRate, b.branchMispredictRate);
    EXPECT_EQ(a.dl1MissRate, b.dl1MissRate);
    EXPECT_EQ(a.priEarlyFrees, b.priEarlyFrees);
    EXPECT_EQ(a.erEarlyFrees, b.erEarlyFrees);
    EXPECT_EQ(a.inlinedFrac, b.inlinedFrac);
    EXPECT_EQ(a.portStallsPerKInst, b.portStallsPerKInst);
    EXPECT_EQ(a.portInlineBypassFrac, b.portInlineBypassFrac);
    EXPECT_EQ(a.report, b.report);
}

TEST(SimulationRunner, DefaultJobsIsAtLeastOne)
{
    EXPECT_GE(defaultJobs(), 1u);
    EXPECT_GE(SimulationRunner().jobs(), 1u);
    EXPECT_EQ(SimulationRunner(3).jobs(), 3u);
}

/** Same RunParams: direct simulate(), jobs=1, and jobs=8 must all
 *  produce bit-identical results, twice in a row. */
TEST(SimulationRunner, DeterministicAcrossWorkerCounts)
{
    const auto batch = smallBatch();

    std::vector<RunResult> reference;
    for (const auto &p : batch)
        reference.push_back(simulate(p));

    for (int repeat = 0; repeat < 2; ++repeat) {
        const auto serial = SimulationRunner(1).run(batch);
        const auto parallel = SimulationRunner(8).run(batch);
        ASSERT_EQ(serial.size(), batch.size());
        ASSERT_EQ(parallel.size(), batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
            expectIdentical(serial[i], reference[i]);
            expectIdentical(parallel[i], reference[i]);
        }
    }
}

/** Results come back in submission order, not completion order. */
TEST(SimulationRunner, ResultsInSubmissionOrder)
{
    auto batch = smallBatch();
    const auto results = SimulationRunner(4).run(batch);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(results[i].benchmark, batch[i].benchmark);
        EXPECT_EQ(results[i].scheme,
                  schemeName(batch[i].scheme));
    }
}

TEST(SimulationRunner, ForEachCoversAllIndicesOnce)
{
    for (unsigned jobs : {1u, 4u}) {
        std::vector<int> hits(100, 0);
        SimulationRunner(jobs).forEach(
            hits.size(), [&](size_t i) { ++hits[i]; });
        for (int h : hits)
            EXPECT_EQ(h, 1);
    }
}

TEST(SimulationRunner, ForEachPropagatesExceptions)
{
    for (unsigned jobs : {1u, 4u}) {
        EXPECT_THROW(
            SimulationRunner(jobs).forEach(8,
                                           [&](size_t i) {
                                               if (i == 5)
                                                   throw std::
                                                       runtime_error(
                                                           "boom");
                                           }),
            std::runtime_error);
    }
}

TEST(SimulationRunner, RunCapturedReportsPerRunErrors)
{
    auto batch = smallBatch();
    batch[1].benchmark = "no-such-benchmark";

    const auto outcomes = SimulationRunner(4).runCaptured(batch);
    ASSERT_EQ(outcomes.size(), batch.size());
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_FALSE(outcomes[1].ok());
    EXPECT_FALSE(outcomes[1].error.empty());
    EXPECT_TRUE(outcomes[2].ok());
    EXPECT_TRUE(outcomes[3].ok());

    // Successful runs are unaffected by the failing sibling.
    expectIdentical(outcomes[0].result, simulate(batch[0]));
}

/** Captured errors lead with the run index and a params summary. */
TEST(SimulationRunner, CapturedErrorsNameTheRun)
{
    auto batch = smallBatch();
    batch[2].benchmark = "no-such-benchmark";

    const auto outcomes = SimulationRunner(2).runCaptured(batch);
    ASSERT_FALSE(outcomes[2].ok());
    EXPECT_EQ(outcomes[2].error.find("run 2 (no-such-benchmark / "),
              0u);

    const auto table = SimulationRunner::describeFailures(outcomes,
                                                          batch);
    EXPECT_NE(table.find("1 of 4 runs failed"), std::string::npos);
    EXPECT_NE(table.find("run 2"), std::string::npos);
}

/**
 * A run that wedges mid-batch is captured as a stall — flight
 * recorder and all — while every sibling completes bit-identically
 * to a fault-free batch.
 */
TEST(SimulationRunner, StalledRunDoesNotPoisonSiblings)
{
    auto batch = smallBatch();
    batch[1].injectFault = core::InjectedFault::WedgeScheduler;
    batch[1].watchdogCycles = 30000;
    batch[1].measureInsts = 50000;

    const auto outcomes = SimulationRunner(4).runCaptured(batch);
    ASSERT_EQ(outcomes.size(), batch.size());
    ASSERT_FALSE(outcomes[1].ok());
    EXPECT_TRUE(outcomes[1].stalled);
    EXPECT_EQ(outcomes[1].error.find("run 1 ("), 0u);
    EXPECT_NE(outcomes[1].error.find("forward-progress watchdog"),
              std::string::npos);
    EXPECT_NE(outcomes[1].error.find("flight recorder"),
              std::string::npos);

    for (size_t i : {size_t{0}, size_t{2}, size_t{3}}) {
        ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
        EXPECT_FALSE(outcomes[i].stalled);
        expectIdentical(outcomes[i].result, simulate(batch[i]));
    }
}

/** A panic (golden divergence) is captured per-run, not process-
 *  fatal, and carries the flight-recorder trace. */
TEST(SimulationRunner, PanicIsCapturedPerRun)
{
    auto batch = smallBatch();
    batch[0].checkGolden = true;
    batch[0].injectFault = core::InjectedFault::CommitWrongPath;

    const auto outcomes = SimulationRunner(2).runCaptured(batch);
    ASSERT_FALSE(outcomes[0].ok());
    EXPECT_FALSE(outcomes[0].stalled);
    EXPECT_NE(outcomes[0].error.find("panic"), std::string::npos);
    EXPECT_NE(outcomes[0].error.find("flight recorder"),
              std::string::npos);
    for (size_t i = 1; i < outcomes.size(); ++i)
        EXPECT_TRUE(outcomes[i].ok()) << outcomes[i].error;
}

/** Transient failures within the attempt budget retry to success;
 *  beyond it the last error is reported. */
TEST(SimulationRunner, RetriesTransientFailures)
{
    auto batch = smallBatch();
    batch[1].injectTransientFails = 2;

    SimulationRunner runner(2);
    runner.setRetryPolicy({3, 0});
    const auto outcomes = runner.runCaptured(batch);
    ASSERT_TRUE(outcomes[1].ok()) << outcomes[1].error;
    EXPECT_EQ(outcomes[1].attempts, 3u);
    EXPECT_EQ(outcomes[0].attempts, 1u);
    expectIdentical(outcomes[1].result, [&] {
        auto p = batch[1];
        p.injectTransientFails = 0;
        return simulate(p);
    }());

    SimulationRunner strict(2);
    strict.setRetryPolicy({2, 0});
    const auto failed = strict.runCaptured(batch);
    ASSERT_FALSE(failed[1].ok());
    EXPECT_EQ(failed[1].attempts, 2u);
    EXPECT_NE(failed[1].error.find("transient"), std::string::npos);
}

/** Journal round-trip: a second runner over the same batch serves
 *  every point from the journal, bit-identically. */
TEST(SimulationRunner, JournalServesCompletedPoints)
{
    const std::string path =
        testing::TempDir() + "pri_test_journal_roundtrip";
    std::remove(path.c_str());
    const auto batch = smallBatch();

    {
        SweepJournal journal(path);
        EXPECT_EQ(journal.loadedPoints(), 0u);
        SimulationRunner runner(4);
        runner.setJournal(&journal);
        const auto fresh = runner.runCaptured(batch);
        for (const auto &o : fresh) {
            ASSERT_TRUE(o.ok()) << o.error;
            EXPECT_FALSE(o.fromJournal);
            EXPECT_EQ(o.attempts, 1u);
        }
        EXPECT_EQ(journal.appendedPoints(), batch.size());
    }

    SweepJournal reloaded(path);
    EXPECT_EQ(reloaded.loadedPoints(), batch.size());
    SimulationRunner runner(4);
    runner.setJournal(&reloaded);
    const auto cached = runner.runCaptured(batch);
    for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_TRUE(cached[i].ok()) << cached[i].error;
        EXPECT_TRUE(cached[i].fromJournal);
        EXPECT_EQ(cached[i].attempts, 0u);
        expectIdentical(cached[i].result, simulate(batch[i]));
    }
    std::remove(path.c_str());
}

/** A journal whose writer died mid-line loads every complete entry
 *  and skips the torn tail, so only that point reruns. */
TEST(SimulationRunner, JournalSkipsTornLines)
{
    const std::string path =
        testing::TempDir() + "pri_test_journal_torn";
    std::remove(path.c_str());
    const auto batch = smallBatch();

    {
        SweepJournal journal(path);
        SimulationRunner runner(1);
        runner.setJournal(&journal);
        runner.run(batch);
    }

    // Simulate a SIGKILL mid-append: truncated final line, plus some
    // unrelated garbage the parser must also reject.
    {
        std::FILE *f = std::fopen(path.c_str(), "a");
        ASSERT_NE(f, nullptr);
        std::fprintf(f, "garbage line\n");
        std::fprintf(f, "PRIJ1\tdeadbeef\ttorn-mid-li");
        std::fclose(f);
    }

    SweepJournal reloaded(path);
    EXPECT_EQ(reloaded.loadedPoints(), batch.size());
    RunResult out;
    EXPECT_TRUE(reloaded.lookup(paramsHash(batch[0]), out));
    EXPECT_EQ(out.report, simulate(batch[0]).report);
    std::remove(path.c_str());
}

/** The journal key ignores attempt/watchdog/timeout knobs and the
 *  observation-only settings (invariant checks, audit cadence, the
 *  transient-failure seam) but distinguishes everything that
 *  changes the persisted result record. */
TEST(SimulationRunner, ParamsHashSeparatesResultsOnly)
{
    RunParams a;
    RunParams b = a;
    b.attempt = 3;
    b.watchdog = false;
    b.watchdogCycles = 777;
    b.timeoutMs = 123;
    b.checkInvariants = true;
    b.goldenAuditInterval = 16;
    b.injectTransientFails = 2;
    EXPECT_EQ(paramsHash(a), paramsHash(b));

    for (auto mutate : std::vector<void (*)(RunParams &)>{
             [](RunParams &p) { p.benchmark = "mcf"; },
             [](RunParams &p) { p.seed += 1; },
             [](RunParams &p) { p.physRegs = 128; },
             [](RunParams &p) { p.scheme = Scheme::PriPlusEr; },
             [](RunParams &p) { p.measureInsts += 1; },
             [](RunParams &p) { p.cycleBudget = 5; },
             [](RunParams &p) { p.prfReadPorts = 4; },
             [](RunParams &p) { p.checkGolden = true; },
             [](RunParams &p) {
                 p.injectFault =
                     core::InjectedFault::WedgeScheduler;
             }}) {
        RunParams c;
        mutate(c);
        EXPECT_NE(paramsHash(a), paramsHash(c));
    }
}

} // namespace
} // namespace pri::sim
