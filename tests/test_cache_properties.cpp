/**
 * @file
 * Property-style parameterized tests over cache geometries: LRU
 * working-set containment, miss-rate bounds, and hierarchy latency
 * composition must hold for every geometry, not just the paper's.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/hashing.hh"
#include "memory/cache.hh"

namespace pri::memory
{
namespace
{

// (sizeBytes, assoc, lineBytes)
using Geometry = std::tuple<unsigned, unsigned, unsigned>;

class CacheGeometryTest : public ::testing::TestWithParam<Geometry>
{
  protected:
    CacheParams
    params() const
    {
        const auto [size, assoc, line] = GetParam();
        return CacheParams{"c", size, assoc, line, 1};
    }
};

TEST_P(CacheGeometryTest, ResidentWorkingSetAlwaysHits)
{
    Cache c(params());
    const auto p = params();
    // A working set of half the cache, touched twice: second pass
    // must be all hits under LRU regardless of geometry.
    const uint64_t ws = p.sizeBytes / 2;
    for (uint64_t a = 0; a < ws; a += p.lineBytes)
        c.access(a);
    const uint64_t h0 = c.hits();
    for (uint64_t a = 0; a < ws; a += p.lineBytes)
        EXPECT_TRUE(c.access(a));
    EXPECT_EQ(c.hits() - h0, ws / p.lineBytes);
}

TEST_P(CacheGeometryTest, MissCountBoundedByCompulsory)
{
    Cache c(params());
    const auto p = params();
    // Touch N distinct lines once each: misses == N exactly
    // (no line can evict itself).
    const unsigned n = 64;
    for (unsigned i = 0; i < n; ++i)
        c.access(uint64_t{i} * p.lineBytes * 7919); // spread sets
    EXPECT_GE(c.misses(), 1u);
    EXPECT_LE(c.misses(), n);
}

TEST_P(CacheGeometryTest, RandomStressMatchesReferenceModel)
{
    // Cross-check against a brute-force LRU reference model.
    Cache c(params());
    const auto p = params();
    const unsigned sets =
        p.sizeBytes / (p.lineBytes * p.assoc);

    struct RefLine
    {
        uint64_t tag = 0;
        uint64_t stamp = 0;
        bool valid = false;
    };
    std::vector<RefLine> ref(size_t{sets} * p.assoc);
    uint64_t stamp = 0;

    auto ref_access = [&](uint64_t addr) {
        const uint64_t line = addr / p.lineBytes;
        const uint64_t set = line % sets;
        const uint64_t tag = line / sets;
        RefLine *base = &ref[set * p.assoc];
        ++stamp;
        for (unsigned w = 0; w < p.assoc; ++w) {
            if (base[w].valid && base[w].tag == tag) {
                base[w].stamp = stamp;
                return true;
            }
        }
        RefLine *victim = base;
        for (unsigned w = 0; w < p.assoc; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
            if (base[w].stamp < victim->stamp)
                victim = &base[w];
        }
        victim->valid = true;
        victim->tag = tag;
        victim->stamp = stamp;
        return false;
    };

    for (int i = 0; i < 20000; ++i) {
        // Skewed address stream over 4x the cache size.
        const uint64_t addr =
            hashRange(uint64_t{p.sizeBytes} * 4, 11, i) & ~7ull;
        EXPECT_EQ(c.access(addr), ref_access(addr)) << "at " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(Geometry{1024, 1, 16},    // direct mapped
                      Geometry{4096, 2, 32},
                      Geometry{32768, 4, 16},   // the paper's DL1
                      Geometry{32768, 2, 32},   // the paper's IL1
                      Geometry{524288, 4, 64},  // the paper's L2
                      Geometry{2048, 8, 16}));  // highly associative

} // namespace
} // namespace pri::memory
