/**
 * @file
 * Randomized property tests for the PRF read-port arbiter
 * (core/port_arbiter.hh), cross-checked against a naive reference
 * arbiter. The unit is a per-cycle budget counter; the tests drive
 * it the way selectStage does — requesters presented strictly in
 * age order each cycle, denied requesters retried next cycle — and
 * check the contract the timing model depends on:
 *
 *  - grants never exceed the cycle budget;
 *  - grant decisions are greedy all-or-nothing in presentation
 *    (age) order, bit-for-bit equal to the reference;
 *  - with budget >= the maximum per-op need, the oldest pending
 *    requester is always granted, so no requester waits longer
 *    than its arrival-queue position (bounded starvation);
 *  - zero-need requests (fully inlined operands) always issue;
 *  - the unlimited arbiter never denies anything;
 *  - lifetime counters are consistent with the per-cycle history.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "common/hashing.hh"
#include "core/port_arbiter.hh"

namespace pri::core
{
namespace
{

struct Requester
{
    unsigned need = 0;
    unsigned arrivalPos = 0; ///< queue depth when it arrived
    unsigned waited = 0;     ///< cycles spent denied
};

/** Reference grant rule: walk the queue in age order with a plain
 *  remaining-ports counter; grant all-or-nothing. */
std::vector<bool>
referenceGrants(const std::deque<Requester> &q, unsigned budget)
{
    std::vector<bool> grant(q.size(), false);
    if (budget == 0) { // unlimited
        grant.assign(q.size(), true);
        return grant;
    }
    unsigned left = budget;
    for (size_t i = 0; i < q.size(); ++i) {
        if (q[i].need <= left) {
            grant[i] = true;
            left -= q[i].need;
        }
    }
    return grant;
}

TEST(PortArbiter, RandomizedAgainstReference)
{
    for (uint64_t trial = 0; trial < 64; ++trial) {
        // budget 0 (unlimited) and 2..8; max per-op need is 2, so
        // every finite budget satisfies the arbiter's >= 2 floor.
        const unsigned budget = trial % 8 == 0
            ? 0
            : 2 + static_cast<unsigned>(hashRange(7, 77, trial, 1));
        ReadPortArbiter arb(budget);
        EXPECT_EQ(arb.budget(), budget);
        EXPECT_EQ(arb.unlimited(), budget == 0);
        SCOPED_TRACE("trial " + std::to_string(trial) + " budget " +
                     std::to_string(budget));

        std::deque<Requester> pending;
        uint64_t granted_ports = 0, granted_ops = 0, denied_ops = 0;
        for (unsigned cycle = 0; cycle < 200; ++cycle) {
            // 0-3 new requesters per cycle, each needing 0-2 ports.
            const auto n_new = hashRange(4, trial, cycle, 2);
            for (uint64_t j = 0; j < n_new; ++j) {
                Requester r;
                r.need = static_cast<unsigned>(
                    hashRange(3, trial, cycle, 3 + j));
                r.arrivalPos =
                    static_cast<unsigned>(pending.size());
                pending.push_back(r);
            }

            const auto expect = referenceGrants(pending, budget);
            arb.beginCycle();
            EXPECT_FALSE(arb.deniedThisCycle());

            unsigned ports_this_cycle = 0;
            bool any_denied = false;
            std::deque<Requester> next;
            for (size_t i = 0; i < pending.size(); ++i) {
                const bool got = arb.request(pending[i].need);
                ASSERT_EQ(got, expect[i])
                    << "cycle " << cycle << " requester " << i;
                if (got) {
                    ports_this_cycle += pending[i].need;
                    ++granted_ops;
                    granted_ports += pending[i].need;
                    // Zero-need ops issue even with nothing left.
                    if (pending[i].need == 0 && budget != 0)
                        EXPECT_LE(ports_this_cycle, budget);
                } else {
                    any_denied = true;
                    ++denied_ops;
                    Requester r = pending[i];
                    ++r.waited;
                    // Bounded starvation: budget >= max need means
                    // the oldest pending requester always issues,
                    // so waits are bounded by the arrival queue
                    // depth (each cycle retires at least the op
                    // ahead of it).
                    EXPECT_LE(r.waited, r.arrivalPos + 1)
                        << "cycle " << cycle;
                    next.push_back(r);
                }
            }
            if (budget != 0)
                EXPECT_LE(ports_this_cycle, budget);
            else
                EXPECT_FALSE(any_denied);
            EXPECT_EQ(arb.deniedThisCycle(), any_denied);
            if (budget != 0) {
                EXPECT_EQ(arb.remaining(),
                          budget - ports_this_cycle);
            }
            pending = std::move(next);
        }
        EXPECT_EQ(arb.grantedPorts(), granted_ports);
        EXPECT_EQ(arb.grantedOps(), granted_ops);
        EXPECT_EQ(arb.deniedOps(), denied_ops);
    }
}

TEST(PortArbiter, UnlimitedNeverDenies)
{
    ReadPortArbiter arb(0);
    arb.beginCycle();
    for (unsigned i = 0; i < 1000; ++i)
        EXPECT_TRUE(arb.request(2));
    EXPECT_FALSE(arb.deniedThisCycle());
    EXPECT_EQ(arb.remaining(), ~0u);
    EXPECT_EQ(arb.grantedOps(), 1000u);
}

TEST(PortArbiter, OldestAlwaysGrantedAtFloorBudget)
{
    // The floor budget (2) still covers the worst-case per-op need,
    // so the first request of every cycle must succeed — the
    // age-priority guarantee selectStage relies on for forward
    // progress.
    ReadPortArbiter arb(2);
    for (unsigned cycle = 0; cycle < 50; ++cycle) {
        arb.beginCycle();
        EXPECT_TRUE(arb.request(cycle % 3));
    }
}

TEST(PortArbiter, OverGrantSeamExhaustsBudget)
{
    ReadPortArbiter arb(2);
    arb.beginCycle();
    EXPECT_TRUE(arb.request(2));
    EXPECT_FALSE(arb.request(1));
    const uint64_t ops_before = arb.grantedOps();
    arb.overGrant(1); // the planted-fault path counts the grant
    EXPECT_EQ(arb.grantedOps(), ops_before + 1);
    EXPECT_EQ(arb.remaining(), 0u);
    EXPECT_TRUE(arb.request(0)); // zero-need still issues
}

} // namespace
} // namespace pri::core
