/**
 * @file
 * Unit tests for the register-management policy engine: PRI inlining
 * with the Figure 7 WAW check, WAR avoidance via consumer reference
 * counting and via ideal payload rewrite, checkpoint counting vs
 * lazy checkpoint update, Early Release, and squash recovery.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <deque>
#include <vector>

#include "rename/rename_unit.hh"

namespace pri::rename
{
namespace
{

using isa::intReg;
using isa::fpReg;
using isa::RegClass;

constexpr unsigned kPregs = 40; // small file: 8 spare registers

struct Harness
{
    StatGroup stats;
    RenameUnit rn;

    explicit Harness(const RenameConfig &cfg) : rn(cfg, stats)
    {
        rn.beginCycle(0);
    }
};

TEST(RenameUnitBase, RenameReadWriteCommitRoundTrip)
{
    Harness h(RenameConfig::base(kPregs, 7));
    auto &rn = h.rn;

    // Producer writes r1 = 5.
    auto d = rn.renameDest(intReg(1), 5);
    EXPECT_NE(d.preg, isa::kInvalidPhysReg);
    EXPECT_FALSE(d.prev.imm);

    // Consumer reads r1 through the map.
    auto s = rn.readSrc(intReg(1));
    EXPECT_FALSE(s.imm);
    EXPECT_EQ(s.preg, d.preg);
    EXPECT_EQ(s.value, 5u);
    EXPECT_EQ(rn.consumerRefs(RegClass::Int, d.preg), 1);

    rn.consumerDone(s);
    EXPECT_EQ(rn.consumerRefs(RegClass::Int, d.preg), 0);

    rn.writeback(intReg(1), d.preg, d.gen, 5);
    // Base scheme: previous register freed only by the redefiner's
    // commit.
    EXPECT_TRUE(rn.isAllocated(RegClass::Int, d.prev.preg));
    rn.commitDest(RegClass::Int, d.prev, d.prevGen);
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, d.prev.preg));
    rn.checkInvariants();
}

TEST(RenameUnitBase, StallsWhenFileExhausted)
{
    Harness h(RenameConfig::base(kPregs, 7));
    auto &rn = h.rn;
    unsigned allocs = 0;
    while (rn.canRename(RegClass::Int)) {
        rn.renameDest(intReg(allocs % 32), 0);
        ++allocs;
    }
    EXPECT_EQ(allocs, kPregs - 32);
    EXPECT_FALSE(rn.canRename(RegClass::Int));
    EXPECT_TRUE(rn.canRename(RegClass::Fp)); // classes independent
}

TEST(RenameUnitPri, NarrowValueInlinedAndFreed)
{
    Harness h(RenameConfig::priRefcountCkptcount(kPregs, 7));
    auto &rn = h.rn;

    auto d = rn.renameDest(intReg(2), 42); // 42 fits in 7 bits
    rn.writeback(intReg(2), d.preg, d.gen, 42);

    // Map entry switched to immediate mode, register freed.
    const MapEntry &e = rn.mapEntry(intReg(2));
    EXPECT_TRUE(e.imm);
    EXPECT_EQ(e.value, 42u);
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, d.preg));

    // Later consumers read the immediate straight from the map.
    auto s = rn.readSrc(intReg(2));
    EXPECT_TRUE(s.imm);
    EXPECT_EQ(s.value, 42u);

    // The commit-time free of the old mapping must be tolerated as
    // a duplicate after the next writer renames and commits.
    auto d2 = rn.renameDest(intReg(2), 1);
    EXPECT_TRUE(d2.prev.imm); // previous mapping was the immediate
    rn.commitDest(RegClass::Int, d2.prev, d2.prevGen);
    rn.checkInvariants();
}

TEST(RenameUnitPri, WideValueNotInlined)
{
    Harness h(RenameConfig::priRefcountCkptcount(kPregs, 7));
    auto &rn = h.rn;
    auto d = rn.renameDest(intReg(2), 1000); // needs 11 bits
    rn.writeback(intReg(2), d.preg, d.gen, 1000);
    EXPECT_FALSE(rn.mapEntry(intReg(2)).imm);
    EXPECT_TRUE(rn.isAllocated(RegClass::Int, d.preg));
    rn.checkInvariants();
}

TEST(RenameUnitPri, NarrowBoundaryRespectsConfiguredWidth)
{
    {
        Harness h(RenameConfig::priRefcountCkptcount(kPregs, 7));
        auto d = h.rn.renameDest(intReg(1), 63);
        h.rn.writeback(intReg(1), d.preg, d.gen, 63);
        EXPECT_TRUE(h.rn.mapEntry(intReg(1)).imm);
        auto d2 = h.rn.renameDest(intReg(2), 64);
        h.rn.writeback(intReg(2), d2.preg, d2.gen, 64);
        EXPECT_FALSE(h.rn.mapEntry(intReg(2)).imm);
    }
    {
        // 8-wide model: 10-bit values inline.
        Harness h(RenameConfig::priRefcountCkptcount(kPregs, 10));
        auto d = h.rn.renameDest(intReg(1), 511);
        h.rn.writeback(intReg(1), d.preg, d.gen, 511);
        EXPECT_TRUE(h.rn.mapEntry(intReg(1)).imm);
        auto d2 = h.rn.renameDest(intReg(2), 512);
        h.rn.writeback(intReg(2), d2.preg, d2.gen, 512);
        EXPECT_FALSE(h.rn.mapEntry(intReg(2)).imm);
    }
}

TEST(RenameUnitPri, FpInlinesOnlyAllZeroOrAllOnes)
{
    Harness h(RenameConfig::priRefcountCkptcount(kPregs, 7));
    auto &rn = h.rn;
    auto d0 = rn.renameDest(fpReg(1), 0); // +0.0
    rn.writeback(fpReg(1), d0.preg, d0.gen, 0);
    EXPECT_TRUE(rn.mapEntry(fpReg(1)).imm);

    auto d1 = rn.renameDest(fpReg(2), ~uint64_t{0});
    rn.writeback(fpReg(2), d1.preg, d1.gen, ~uint64_t{0});
    EXPECT_TRUE(rn.mapEntry(fpReg(2)).imm);

    const uint64_t one = 0x3ff0000000000000ULL; // 1.0
    auto d2 = rn.renameDest(fpReg(3), one);
    rn.writeback(fpReg(3), d2.preg, d2.gen, one);
    EXPECT_FALSE(rn.mapEntry(fpReg(3)).imm);
}

TEST(RenameUnitPri, Figure7WawCheckSkipsRemappedEntry)
{
    Harness h(RenameConfig::priRefcountCkptcount(kPregs, 7));
    auto &rn = h.rn;

    auto p = rn.renameDest(intReg(4), 7);   // producer P
    auto w = rn.renameDest(intReg(4), 900); // next writer W renames
    // P retires with a narrow value, but r4 now maps to W's register:
    // the map must NOT be clobbered (WAW check, Figure 7).
    rn.writeback(intReg(4), p.preg, p.gen, 7);
    const MapEntry &e = rn.mapEntry(intReg(4));
    EXPECT_FALSE(e.imm);
    EXPECT_EQ(e.preg, w.preg);
    EXPECT_GT(h.stats.scalarValue("pri.narrowButRemapped"), 0.0);
    // P's register is still freed early (it is unmapped and narrow).
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, p.preg));
    rn.checkInvariants();
}

TEST(RenameUnitPri, RefcountBlocksWarOnInFlightConsumer)
{
    Harness h(RenameConfig::priRefcountCkptcount(kPregs, 7));
    auto &rn = h.rn;

    auto d = rn.renameDest(intReg(5), 9);
    auto s = rn.readSrc(intReg(5)); // consumer renamed, holds a ref
    rn.writeback(intReg(5), d.preg, d.gen, 9);

    // Narrow and inlined, but the register cannot be freed while
    // the consumer might still read it from the PRF (WAR guard).
    EXPECT_TRUE(rn.mapEntry(intReg(5)).imm);
    EXPECT_TRUE(rn.isAllocated(RegClass::Int, d.preg));
    EXPECT_EQ(rn.physRegValue(RegClass::Int, d.preg), 9u);

    rn.consumerDone(s);
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, d.preg));
    rn.checkInvariants();
}

TEST(RenameUnitPri, IdealPayloadRewriteFreesImmediately)
{
    Harness h(RenameConfig::priIdealCkptcount(kPregs, 7));
    auto &rn = h.rn;

    std::vector<SrcRead *> payload;
    auto d = rn.renameDest(intReg(6), 11);
    auto s1 = rn.readSrc(intReg(6));
    auto s2 = rn.readSrc(intReg(6));
    payload = {&s1, &s2};

    unsigned rewrites = 0;
    rn.setIdealInlineHook([&](RegClass cls, isa::PhysRegId preg,
                              uint64_t value) {
        for (auto *s : payload) {
            if (!s->imm && s->cls == cls && s->preg == preg) {
                rn.consumerSquashed(*s);
                s->imm = true;
                s->value = value;
                ++rewrites;
            }
        }
    });

    rn.writeback(intReg(6), d.preg, d.gen, 11);
    // Both in-flight consumers converted; register freed at once.
    EXPECT_EQ(rewrites, 2u);
    EXPECT_TRUE(s1.imm);
    EXPECT_EQ(s1.value, 11u);
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, d.preg));
    rn.checkInvariants();
}

TEST(RenameUnitPri, CkptcountDefersFreeUntilCheckpointResolves)
{
    Harness h(RenameConfig::priRefcountCkptcount(kPregs, 7));
    auto &rn = h.rn;

    auto d = rn.renameDest(intReg(7), 3);
    const CkptId ck = rn.createCheckpoint(); // branch after producer
    EXPECT_GT(rn.ckptRefs(RegClass::Int, d.preg), 0);

    rn.writeback(intReg(7), d.preg, d.gen, 3);
    EXPECT_TRUE(rn.mapEntry(intReg(7)).imm);
    // Checkpoint still points at the register: free is deferred.
    EXPECT_TRUE(rn.isAllocated(RegClass::Int, d.preg));

    rn.resolveCheckpoint(ck);
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, d.preg));
    rn.releaseCheckpoint(ck);
    rn.checkInvariants();
}

TEST(RenameUnitPri, LazyUpdateRewritesCheckpointCopies)
{
    Harness h(RenameConfig::priRefcountLazy(kPregs, 7));
    auto &rn = h.rn;

    auto d = rn.renameDest(intReg(8), 13);
    const CkptId ck = rn.createCheckpoint();

    rn.writeback(intReg(8), d.preg, d.gen, 13);
    // Lazy walk updated the checkpointed copy too, so the register
    // frees immediately despite the live checkpoint.
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, d.preg));
    EXPECT_GT(h.stats.scalarValue("pri.lazyCkptUpdates"), 0.0);

    // Restoring the checkpoint yields the immediate, not a stale
    // register pointer.
    rn.restoreCheckpoint(ck);
    const MapEntry &e = rn.mapEntry(intReg(8));
    EXPECT_TRUE(e.imm);
    EXPECT_EQ(e.value, 13u);
    rn.resolveCheckpoint(ck);
    rn.releaseCheckpoint(ck);
    rn.checkInvariants();
}

TEST(RenameUnitPri, RestoreConvertsPendingNarrowToImmediate)
{
    // ckptcount flavour: producer inlines, checkpoint restore would
    // resurrect the stale register mapping; the unit must restore it
    // in immediate mode instead (the value is complete by then).
    Harness h(RenameConfig::priRefcountCkptcount(kPregs, 7));
    auto &rn = h.rn;

    auto d = rn.renameDest(intReg(9), 21);
    const CkptId ck = rn.createCheckpoint(); // names d.preg
    rn.writeback(intReg(9), d.preg, d.gen, 21);
    EXPECT_TRUE(rn.isAllocated(RegClass::Int, d.preg)); // ckpt ref

    rn.restoreCheckpoint(ck);
    const MapEntry &e = rn.mapEntry(intReg(9));
    EXPECT_TRUE(e.imm);
    EXPECT_EQ(e.value, 21u);
    rn.resolveCheckpoint(ck);
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, d.preg));
    rn.releaseCheckpoint(ck);
    rn.checkInvariants();
}

TEST(RenameUnitPri, RestoreRevivesInlinedValueAfterPointerTransition)
{
    // The full inlined -> pointer transition across a checkpoint:
    // the branch sees r2 in immediate mode; the wrong path then
    // redefines r2 with a wide value, flipping the entry back to
    // pointer mode. Recovery must squash the wrong-path register
    // and leave r2 reading as the inlined value again.
    Harness h(RenameConfig::priRefcountCkptcount(kPregs, 7));
    auto &rn = h.rn;

    auto d = rn.renameDest(intReg(2), 42);
    rn.writeback(intReg(2), d.preg, d.gen, 42);
    ASSERT_TRUE(rn.mapEntry(intReg(2)).imm);

    const CkptId ck = rn.createCheckpoint(); // branch sees imm 42

    auto d2 = rn.renameDest(intReg(2), 1000); // wide redefinition
    rn.writeback(intReg(2), d2.preg, d2.gen, 1000);
    ASSERT_FALSE(rn.mapEntry(intReg(2)).imm);
    auto s = rn.readSrc(intReg(2));
    ASSERT_EQ(s.value, 1000u);
    rn.consumerDone(s);

    // Mispredict: restore and squash the wrong-path destination.
    rn.restoreCheckpoint(ck);
    rn.squashDest(RegClass::Int, d2.preg, d2.gen);

    const MapEntry &e = rn.mapEntry(intReg(2));
    EXPECT_TRUE(e.imm);
    EXPECT_EQ(e.value, 42u);
    auto s2 = rn.readSrc(intReg(2));
    EXPECT_TRUE(s2.imm);
    EXPECT_EQ(s2.value, 42u);
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, d2.preg));

    rn.resolveCheckpoint(ck);
    rn.releaseCheckpoint(ck);
    rn.checkInvariants();
}

TEST(RenameUnitEr, FreesCompleteUnmappedRegisterEarly)
{
    Harness h(RenameConfig::er(kPregs, 7));
    auto &rn = h.rn;

    auto p = rn.renameDest(intReg(10), 999); // wide value
    rn.writeback(intReg(10), p.preg, p.gen, 999);
    EXPECT_TRUE(rn.isAllocated(RegClass::Int, p.preg)); // mapped

    // Next writer unmaps it; no checkpoints exist -> ER frees now,
    // well before the writer commits.
    auto w = rn.renameDest(intReg(10), 1);
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, p.preg));
    EXPECT_GT(h.stats.scalarValue("er.earlyFrees"), 0.0);

    // Commit-time free arrives later as a duplicate.
    rn.commitDest(RegClass::Int, w.prev, w.prevGen);
    EXPECT_GT(h.stats.scalarValue("rename.duplicateCommitFrees"),
              0.0);
    rn.checkInvariants();
}

TEST(RenameUnitEr, CheckpointHorizonBlocksEarlyRelease)
{
    Harness h(RenameConfig::er(kPregs, 7));
    auto &rn = h.rn;

    auto p = rn.renameDest(intReg(11), 999);
    rn.writeback(intReg(11), p.preg, p.gen, 999);
    const CkptId ck = rn.createCheckpoint(); // copy names p.preg
    rn.renameDest(intReg(11), 1);            // unmap

    // The checkpointed copy still maps the register: ER must wait
    // for the checkpoint to die at the commit horizon.
    EXPECT_TRUE(rn.isAllocated(RegClass::Int, p.preg));
    rn.resolveCheckpoint(ck);
    EXPECT_TRUE(rn.isAllocated(RegClass::Int, p.preg));
    rn.releaseCheckpoint(ck); // branch commits
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, p.preg));
    rn.checkInvariants();
}

TEST(RenameUnitEr, IncompleteRegisterNeverFreed)
{
    Harness h(RenameConfig::er(kPregs, 7));
    auto &rn = h.rn;
    auto p = rn.renameDest(intReg(12), 5);
    rn.renameDest(intReg(12), 6); // unmapped but not yet written
    EXPECT_TRUE(rn.isAllocated(RegClass::Int, p.preg));
    rn.writeback(intReg(12), p.preg, p.gen, 5);
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, p.preg));
}

TEST(RenameUnitSquash, RestoreAndSquashDestRecoverState)
{
    Harness h(RenameConfig::priRefcountCkptcount(kPregs, 7));
    auto &rn = h.rn;

    auto older = rn.renameDest(intReg(13), 500);
    const CkptId ck = rn.createCheckpoint(); // the branch

    // Speculative younger instructions.
    auto y1 = rn.renameDest(intReg(13), 1);
    auto y2 = rn.renameDest(intReg(14), 2);
    auto ys = rn.readSrc(intReg(13));

    // Mispredict: release consumer, restore, free squashed dests.
    rn.consumerSquashed(ys);
    rn.restoreCheckpoint(ck);
    rn.squashDest(RegClass::Int, y1.preg, y1.gen);
    rn.squashDest(RegClass::Int, y2.preg, y2.gen);

    EXPECT_EQ(rn.mapEntry(intReg(13)).preg, older.preg);
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, y1.preg));
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, y2.preg));
    rn.resolveCheckpoint(ck);
    rn.releaseCheckpoint(ck);
    rn.checkInvariants();
}

TEST(RenameUnitSquash, EarlyFreedSquashedDestIsDuplicateTolerant)
{
    Harness h(RenameConfig::priRefcountCkptcount(kPregs, 7));
    auto &rn = h.rn;

    const CkptId ck = rn.createCheckpoint();
    // Speculative producer retires a narrow value before the squash.
    auto y = rn.renameDest(intReg(15), 8);
    rn.writeback(intReg(15), y.preg, y.gen, 8);
    EXPECT_FALSE(rn.isAllocated(RegClass::Int, y.preg));

    rn.restoreCheckpoint(ck);
    rn.squashDest(RegClass::Int, y.preg, y.gen); // duplicate
    EXPECT_GT(h.stats.scalarValue("rename.squashDuplicateFrees"),
              0.0);
    rn.resolveCheckpoint(ck);
    rn.releaseCheckpoint(ck);
    rn.checkInvariants();
}

TEST(RenameUnitGen, CommitFreeOfReallocatedRegisterIsIgnored)
{
    Harness h(RenameConfig::priRefcountCkptcount(kPregs, 7));
    auto &rn = h.rn;

    auto p = rn.renameDest(intReg(16), 3);
    auto w = rn.renameDest(intReg(16), 700); // W's prev = p
    rn.writeback(intReg(16), p.preg, p.gen, 3); // p freed early

    // Another instruction reallocates the same physical register.
    RenameUnit::DestRename other;
    do {
        other = rn.renameDest(intReg(17), 900);
    } while (other.preg != p.preg && rn.canRename(RegClass::Int));
    if (other.preg != p.preg)
        GTEST_SKIP() << "free-list order did not recycle the reg";

    // W commits and tries to free its recorded previous register
    // (p) — the generation check must protect the new owner.
    rn.commitDest(RegClass::Int, w.prev, w.prevGen);
    EXPECT_TRUE(rn.isAllocated(RegClass::Int, p.preg));
    EXPECT_GT(h.stats.scalarValue("rename.duplicateCommitFrees"),
              0.0);
    rn.checkInvariants();
}

class SchemeInvariantTest
    : public ::testing::TestWithParam<RenameConfig>
{
};

TEST_P(SchemeInvariantTest, RandomisedOperationSoak)
{
    // Pseudo-random but well-formed call sequence across every
    // scheme: rename/read/writeback/commit with occasional
    // checkpoints; invariants must hold throughout and at drain.
    Harness h(GetParam());
    auto &rn = h.rn;

    struct Pending
    {
        RenameUnit::DestRename d;
        isa::RegId reg;
        uint64_t value;
        std::vector<SrcRead> srcs;
        CkptId ck = 0;
        bool isBranch = false;
    };
    std::deque<Pending> rob;
    uint64_t rng = 777;
    auto rand = [&]() {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        return rng >> 33;
    };

    rn.setIdealInlineHook([&](RegClass cls, isa::PhysRegId preg,
                              uint64_t value) {
        for (auto &e : rob) {
            for (auto &s : e.srcs) {
                if (!s.imm && s.refHeld && s.cls == cls &&
                    s.preg == preg) {
                    rn.consumerSquashed(s);
                    s.imm = true;
                    s.value = value;
                }
            }
        }
    });

    for (uint64_t cycle = 1; cycle <= 4000; ++cycle) {
        rn.beginCycle(cycle);
        // Rename one instruction if possible.
        if (rn.canRename(RegClass::Int) && rob.size() < 64) {
            Pending p;
            p.reg = intReg(static_cast<uint8_t>(rand() % 32));
            p.value = rand() % 4096; // mix of narrow and wide
            p.srcs.push_back(
                rn.readSrc(intReg(static_cast<uint8_t>(rand() % 32))));
            p.d = rn.renameDest(p.reg, p.value);
            if (rand() % 6 == 0) {
                p.isBranch = true;
                p.ck = rn.createCheckpoint();
            }
            rob.push_back(std::move(p));
        }
        // Write back + commit the oldest every few cycles.
        if (cycle % 3 == 0 && !rob.empty()) {
            Pending &p = rob.front();
            for (auto &s : p.srcs)
                rn.consumerDone(s);
            rn.writeback(p.reg, p.d.preg, p.d.gen, p.value);
            if (p.isBranch) {
                rn.resolveCheckpoint(p.ck);
                rn.releaseCheckpoint(p.ck);
            }
            rn.commitDest(RegClass::Int, p.d.prev, p.d.prevGen);
            rob.pop_front();
        }
        if (cycle % 64 == 0)
            rn.checkInvariants();
    }
    // Drain.
    while (!rob.empty()) {
        Pending &p = rob.front();
        for (auto &s : p.srcs)
            rn.consumerDone(s);
        rn.writeback(p.reg, p.d.preg, p.d.gen, p.value);
        if (p.isBranch) {
            rn.resolveCheckpoint(p.ck);
            rn.releaseCheckpoint(p.ck);
        }
        rn.commitDest(RegClass::Int, p.d.prev, p.d.prevGen);
        rob.pop_front();
    }
    rn.checkInvariants();
    EXPECT_EQ(rn.liveCheckpoints(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeInvariantTest,
    ::testing::Values(RenameConfig::base(kPregs, 7),
                      RenameConfig::er(kPregs, 7),
                      RenameConfig::priRefcountCkptcount(kPregs, 7),
                      RenameConfig::priRefcountLazy(kPregs, 7),
                      RenameConfig::priIdealCkptcount(kPregs, 7),
                      RenameConfig::priIdealLazy(kPregs, 7),
                      RenameConfig::priPlusEr(kPregs, 7),
                      RenameConfig::infinite(7)),
    [](const auto &info) {
        std::string n = info.param.schemeName();
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(RenameConfigNames, MatchPaperLegend)
{
    EXPECT_EQ(RenameConfig::base(64, 7).schemeName(), "Base");
    EXPECT_EQ(RenameConfig::er(64, 7).schemeName(), "ER");
    EXPECT_EQ(RenameConfig::priRefcountCkptcount(64, 7).schemeName(),
              "PRI-refcount+ckptcount");
    EXPECT_EQ(RenameConfig::priRefcountLazy(64, 7).schemeName(),
              "PRI-refcount+lazy");
    EXPECT_EQ(RenameConfig::priIdealCkptcount(64, 7).schemeName(),
              "PRI-ideal+ckptcount");
    EXPECT_EQ(RenameConfig::priIdealLazy(64, 7).schemeName(),
              "PRI-ideal+lazy");
    EXPECT_EQ(RenameConfig::priPlusEr(64, 7).schemeName(), "PRI+ER");
    EXPECT_EQ(RenameConfig::infinite(7).schemeName(), "InfPR");
}

} // namespace
} // namespace pri::rename
