/**
 * @file
 * Structural tests of synthetic program generation, parameterized
 * over every benchmark profile: CFG well-formedness, PC uniqueness,
 * stream sanity, register constraints.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/program.hh"

namespace pri::workload
{
namespace
{

class ProgramTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const BenchmarkProfile &profile() const
    {
        return profileByName(GetParam());
    }
};

TEST_P(ProgramTest, CfgWellFormed)
{
    SyntheticProgram prog(profile(), 7);
    ASSERT_GT(prog.numBlocks(), 0u);

    for (uint32_t b = 0; b < prog.numBlocks(); ++b) {
        const BasicBlock &blk = prog.block(b);
        EXPECT_EQ(blk.id, b);
        ASSERT_FALSE(blk.insts.empty());
        EXPECT_LT(blk.fallthrough, prog.numBlocks());

        // Exactly the last instruction may be a branch.
        for (size_t i = 0; i + 1 < blk.insts.size(); ++i)
            EXPECT_NE(blk.insts[i].cls, isa::OpClass::Branch);
        EXPECT_TRUE(blk.endsInBranch());

        const StaticInst &br = blk.insts.back();
        if (!br.isReturn) {
            ASSERT_NE(br.takenBlock, kNoBlock);
            EXPECT_LT(br.takenBlock, prog.numBlocks());
        }
        if (!br.isUncond) {
            EXPECT_GE(br.bias, 0.0f);
            EXPECT_LE(br.bias, 1.0f);
        }
    }
}

TEST_P(ProgramTest, PcsAreUniqueAndLocatable)
{
    SyntheticProgram prog(profile(), 7);
    std::set<uint64_t> pcs;
    for (uint32_t b = 0; b < prog.numBlocks(); ++b) {
        for (const auto &si : prog.block(b).insts)
            EXPECT_TRUE(pcs.insert(si.pc).second)
                << "duplicate pc " << si.pc;
    }
    // Every block start must be locatable (branch targets need it).
    for (uint32_t b = 0; b < prog.numBlocks(); ++b) {
        const auto loc =
            prog.locateBlockStart(prog.block(b).startPc);
        EXPECT_EQ(loc.block, b);
        EXPECT_EQ(loc.idx, 0u);
    }
}

TEST_P(ProgramTest, MemOpsReferenceValidStreams)
{
    SyntheticProgram prog(profile(), 7);
    const auto n_streams =
        static_cast<int32_t>(prog.streams().size());
    for (uint32_t b = 0; b < prog.numBlocks(); ++b) {
        for (const auto &si : prog.block(b).insts) {
            if (isa::isMem(si.cls)) {
                EXPECT_GE(si.memStream, 0);
                EXPECT_LT(si.memStream, n_streams);
                if (si.altStream >= 0)
                    EXPECT_LT(si.altStream, n_streams);
            } else {
                EXPECT_EQ(si.memStream, -1);
            }
        }
    }
}

TEST_P(ProgramTest, RegisterOperandsInRange)
{
    SyntheticProgram prog(profile(), 7);
    for (uint32_t b = 0; b < prog.numBlocks(); ++b) {
        for (const auto &si : prog.block(b).insts) {
            if (si.dst.valid()) {
                EXPECT_LT(si.dst.idx, isa::kNumLogicalRegs);
            }
            if (si.src1.valid()) {
                EXPECT_LT(si.src1.idx, isa::kNumLogicalRegs);
            }
            if (si.src2.valid()) {
                EXPECT_LT(si.src2.idx, isa::kNumLogicalRegs);
            }
            // Loads/ALU write a register; stores/branches do not.
            if (si.cls == isa::OpClass::Store ||
                si.cls == isa::OpClass::Branch) {
                EXPECT_FALSE(si.dst.valid());
            } else {
                EXPECT_TRUE(si.dst.valid());
            }
        }
    }
}

TEST_P(ProgramTest, CallsTargetFunctionEntriesOnly)
{
    SyntheticProgram prog(profile(), 7);
    std::set<uint32_t> entries(prog.functionEntries().begin(),
                               prog.functionEntries().end());
    for (uint32_t b = 0; b < prog.numBlocks(); ++b) {
        const StaticInst &br = prog.block(b).insts.back();
        if (br.isCall) {
            EXPECT_TRUE(entries.count(br.takenBlock))
                << "call to non-entry block";
        }
    }
}

TEST_P(ProgramTest, DeterministicForSameSeed)
{
    SyntheticProgram a(profile(), 123);
    SyntheticProgram b(profile(), 123);
    ASSERT_EQ(a.numBlocks(), b.numBlocks());
    ASSERT_EQ(a.numStaticInsts(), b.numStaticInsts());
    for (uint32_t i = 0; i < a.numBlocks(); ++i) {
        const auto &ba = a.block(i);
        const auto &bb = b.block(i);
        ASSERT_EQ(ba.insts.size(), bb.insts.size());
        for (size_t k = 0; k < ba.insts.size(); ++k) {
            EXPECT_EQ(ba.insts[k].cls, bb.insts[k].cls);
            EXPECT_EQ(ba.insts[k].pc, bb.insts[k].pc);
        }
    }
}

TEST_P(ProgramTest, DifferentSeedsGiveDifferentPrograms)
{
    SyntheticProgram a(profile(), 1);
    SyntheticProgram b(profile(), 2);
    // Same shape parameters, but the instruction content differs.
    bool any_diff = false;
    for (uint32_t i = 0; i < a.numBlocks() && !any_diff; ++i) {
        const auto &ba = a.block(i);
        const auto &bb = b.block(i);
        if (ba.insts.size() != bb.insts.size()) {
            any_diff = true;
            break;
        }
        for (size_t k = 0; k < ba.insts.size(); ++k) {
            if (ba.insts[k].cls != bb.insts[k].cls) {
                any_diff = true;
                break;
            }
        }
    }
    EXPECT_TRUE(any_diff);
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProgramTest,
    ::testing::Values("bzip2", "crafty", "eon", "gap", "gcc", "gzip",
                      "mcf", "parser", "perlbmk", "twolf", "vortex",
                      "vpr", "vpr_ref", "ammp", "applu", "apsi",
                      "art", "equake", "facerec", "fma3d", "galgel",
                      "lucas", "mesa", "mgrid", "sixtrack", "swim",
                      "wupwise"));

} // namespace
} // namespace pri::workload
