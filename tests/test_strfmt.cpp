/**
 * @file
 * Tests for the diagnostic mini-formatter.
 */

#include <gtest/gtest.h>

#include "common/strfmt.hh"

namespace pri
{
namespace
{

TEST(FmtStr, SubstitutesInOrder)
{
    EXPECT_EQ(fmtStr("a={} b={}", 1, "two"), "a=1 b=two");
}

TEST(FmtStr, IgnoresFormatSpecs)
{
    EXPECT_EQ(fmtStr("x={:#x}", 255), "x=255");
    EXPECT_EQ(fmtStr("{:<10}", "hi"), "hi");
}

TEST(FmtStr, MissingArgsMarked)
{
    EXPECT_EQ(fmtStr("{} {}", 1), "1 {?}");
}

TEST(FmtStr, ExtraArgsIgnored)
{
    EXPECT_EQ(fmtStr("{}", 1, 2, 3), "1");
}

TEST(FmtStr, EscapedBraces)
{
    EXPECT_EQ(fmtStr("{{}} {}", 9), "{} 9");
}

TEST(FmtStr, NoPlaceholders)
{
    EXPECT_EQ(fmtStr("plain"), "plain");
}

TEST(FmtStr, UnterminatedBraceKeptVerbatim)
{
    EXPECT_EQ(fmtStr("oops {", 1), "oops {");
}

} // namespace
} // namespace pri
