/**
 * @file
 * Transient-fault framework tests: the shared --inject-fault
 * grammar, one exact-classification test per FaultOutcome class,
 * classifyOutcome's decision table, campaign totality (a crashed or
 * hung injection is a counted outcome, never an abort), and
 * injection determinism.
 *
 * The per-class tests pin their injection via the same pure
 * drawInjection() function the campaign driver uses and search a
 * small bounded window of draws for the wanted class — timing
 * details may move as the core evolves, but the class must stay
 * reachable within the window or the framework has lost that
 * failure mode.
 */

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "faults/campaign.hh"
#include "faults/campaign_runner.hh"
#include "faults/fault_arg.hh"
#include "golden/diff_checker.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"

namespace pri
{
namespace
{

using faults::FaultMutation;
using faults::FaultOutcome;
using faults::FaultSite;
using faults::FaultSpec;
using faults::FaultTrigger;
using Outcome = sim::SimulationRunner::Outcome;

// ---- shared --inject-fault grammar (fault_arg) ----

TEST(FaultArg, ParsesLegacyKindsAndPoint)
{
    faults::FaultArg a;
    std::string err;
    ASSERT_TRUE(faults::parseFaultArg("wedge", a, err));
    EXPECT_EQ(a.legacy, core::InjectedFault::WedgeScheduler);
    EXPECT_EQ(a.point, -1);
    EXPECT_FALSE(a.spec.enabled());

    ASSERT_TRUE(faults::parseFaultArg("wrong-path@3", a, err));
    EXPECT_EQ(a.legacy, core::InjectedFault::CommitWrongPath);
    EXPECT_EQ(a.point, 3);
}

TEST(FaultArg, ParsesKillDrill)
{
    faults::FaultArg a;
    std::string err;
    ASSERT_TRUE(faults::parseFaultArg("kill@5", a, err));
    EXPECT_TRUE(a.kill);
    EXPECT_EQ(a.killDispatch, 5ul);
    EXPECT_EQ(a.legacy, core::InjectedFault::None);
}

TEST(FaultArg, ParsesFaultSpecGrammar)
{
    faults::FaultArg a;
    std::string err;
    ASSERT_TRUE(
        faults::parseFaultArg("map:flip:cycle=5000", a, err));
    EXPECT_EQ(a.spec.site, FaultSite::MapTable);
    EXPECT_EQ(a.spec.mutation, FaultMutation::BitFlip);
    EXPECT_EQ(a.spec.trigger, FaultTrigger::AtCycle);
    EXPECT_EQ(a.spec.triggerArg, 5000u);
    EXPECT_EQ(a.spec.seed, 0u);
    EXPECT_EQ(a.point, -1);

    ASSERT_TRUE(faults::parseFaultArg(
        "prf:zero:access=10:seed=7@3", a, err));
    EXPECT_EQ(a.spec.site, FaultSite::PrfValue);
    EXPECT_EQ(a.spec.mutation, FaultMutation::ZeroEntry);
    EXPECT_EQ(a.spec.trigger, FaultTrigger::NthAccess);
    EXPECT_EQ(a.spec.triggerArg, 10u);
    EXPECT_EQ(a.spec.seed, 7u);
    EXPECT_EQ(a.point, 3);
}

TEST(FaultArg, FormatRoundTrips)
{
    faults::FaultArg a;
    std::string err;
    for (const char *text :
         {"lsq:stale:draw=9000", "wake:zero:cycle=123:seed=9",
          "freelist:flip:access=1", "ckpt:flip:draw=5:seed=2"}) {
        ASSERT_TRUE(faults::parseFaultArg(text, a, err)) << text;
        EXPECT_EQ(faults::formatFaultSpec(a.spec), text);
    }
}

TEST(FaultArg, RejectsUnknownKindListingValidOnes)
{
    faults::FaultArg a;
    std::string err;
    EXPECT_FALSE(faults::parseFaultArg("gremlin", a, err));
    // The error must teach the valid grammar, not just refuse.
    EXPECT_NE(err.find("valid kinds"), std::string::npos) << err;
    EXPECT_NE(err.find("wedge"), std::string::npos) << err;
    EXPECT_NE(err.find("prf|map|freelist|wake|ckpt|lsq"),
              std::string::npos)
        << err;

    EXPECT_FALSE(faults::parseFaultArg("map:gnaw:cycle=5", a, err));
    EXPECT_FALSE(faults::parseFaultArg("map:flip:when=5", a, err));
    EXPECT_FALSE(faults::parseFaultArg("", a, err));
}

// ---- one exact classification per outcome class ----

sim::RunParams
campaignPoint(sim::Scheme scheme, bool golden)
{
    sim::RunParams p;
    p.benchmark = "gap";
    p.width = 4;
    p.scheme = scheme;
    p.physRegs = 64;
    p.warmupInsts = 2000;
    p.measureInsts = 8000;
    p.checkGolden = golden;
    return p;
}

Outcome
runPoint(const sim::RunParams &p)
{
    sim::SimulationRunner runner(1);
    return runner.runCaptured({p})[0];
}

/** Fault-free anchors, computed once per (scheme, golden). */
const Outcome &
reference(sim::Scheme scheme, bool golden)
{
    static std::map<std::pair<int, bool>, Outcome> cache;
    auto key = std::make_pair(static_cast<int>(scheme), golden);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache.emplace(key, runPoint(campaignPoint(scheme,
                                                       golden)))
                 .first;
    }
    return it->second;
}

/**
 * Search the first kSearchWindow seeded draws on @p site for an
 * injection classified as @p want; returns its outcome. The window
 * is the regression budget: if a class stops being reachable here,
 * the corresponding vulnerability has silently vanished from the
 * framework.
 */
constexpr unsigned kSearchWindow = 24;

std::optional<Outcome>
findOutcome(sim::Scheme scheme, FaultSite site, bool golden,
            FaultOutcome want)
{
    const Outcome &ref = reference(scheme, golden);
    for (unsigned n = 0; n < kSearchWindow; ++n) {
        sim::RunParams p = campaignPoint(scheme, golden);
        p.faultSpec = faults::drawInjection(site, n, 0xfa17u,
                                            p.warmupInsts +
                                                p.measureInsts);
        Outcome o = runPoint(p);
        if (faults::classifyOutcome(o, ref) == want)
            return o;
    }
    return std::nullopt;
}

TEST(FaultOutcomes, MaskedStrikeBeyondHorizonIsExactlyMasked)
{
    const auto scheme = sim::Scheme::PriRefcountCkptcount;
    const Outcome &ref = reference(scheme, true);
    sim::RunParams p = campaignPoint(scheme, true);
    p.faultSpec.site = FaultSite::PrfValue;
    p.faultSpec.mutation = FaultMutation::BitFlip;
    p.faultSpec.trigger = FaultTrigger::AtCycle;
    p.faultSpec.triggerArg = uint64_t{1} << 40; // never reached
    const Outcome o = runPoint(p);
    ASSERT_TRUE(o.ok()) << o.error;
    EXPECT_EQ(faults::classifyOutcome(o, ref),
              FaultOutcome::Masked);
    // Masked means bit-identical architecture: signature AND report.
    EXPECT_EQ(o.result.archSig, ref.result.archSig);
    EXPECT_EQ(o.result.report, ref.result.report);
}

TEST(FaultOutcomes, GoldenDetectsMapOrPrfCorruption)
{
    const auto o = findOutcome(sim::Scheme::PriPlusEr,
                               FaultSite::PrfValue, true,
                               FaultOutcome::DetectedByGolden);
    ASSERT_TRUE(o.has_value())
        << "no golden-detected PRF strike in the search window";
    EXPECT_FALSE(o->ok());
    EXPECT_FALSE(o->stalled);
    // Detection IS the divergence marker; and the captured error
    // carries the flight-recorder trace for post-hoc diagnosis.
    EXPECT_NE(o->error.find(golden::kDivergenceMarker),
              std::string::npos)
        << o->error;
    EXPECT_NE(o->error.find("flight recorder"), std::string::npos)
        << o->error;
}

TEST(FaultOutcomes, LsqStrikeIsSilentDataCorruptionWithGoldenOff)
{
    // Store-address corruption is timing-only in the oracle memory
    // model: nothing panics, the golden checker has nothing to
    // compare addresses against — only the report/archSig diff
    // catches it. The canonical SDC.
    const auto o = findOutcome(sim::Scheme::PriPlusEr,
                               FaultSite::LsqForward, false,
                               FaultOutcome::SilentDataCorruption);
    ASSERT_TRUE(o.has_value())
        << "no SDC LSQ strike in the search window";
    EXPECT_TRUE(o->ok()) << o->error; // silent: the run "succeeded"
    EXPECT_NE(o->result.report,
              reference(sim::Scheme::PriPlusEr, false)
                  .result.report);
}

TEST(FaultOutcomes, WedgeIsExactlyHangWithFlightDump)
{
    const auto scheme = sim::Scheme::PriRefcountCkptcount;
    const Outcome &ref = reference(scheme, true);
    sim::RunParams p = campaignPoint(scheme, true);
    p.injectFault = core::InjectedFault::WedgeScheduler;
    const Outcome o = runPoint(p);
    ASSERT_FALSE(o.ok());
    EXPECT_TRUE(o.stalled);
    EXPECT_EQ(faults::classifyOutcome(o, ref), FaultOutcome::Hang);
    EXPECT_NE(o.error.find("watchdog"), std::string::npos)
        << o.error;
    EXPECT_NE(o.error.find("flight recorder"), std::string::npos)
        << o.error;
}

TEST(FaultOutcomes, FreeListCorruptionCrashesWithFlightDump)
{
    const auto o = findOutcome(sim::Scheme::PriRefcountCkptcount,
                               FaultSite::FreeList, true,
                               FaultOutcome::Crash);
    ASSERT_TRUE(o.has_value())
        << "no crashing free-list strike in the search window";
    EXPECT_FALSE(o->ok());
    EXPECT_FALSE(o->stalled);
    EXPECT_EQ(o->error.find(golden::kDivergenceMarker),
              std::string::npos)
        << o->error;
    EXPECT_NE(o->error.find("panic"), std::string::npos) << o->error;
    EXPECT_NE(o->error.find("flight recorder"), std::string::npos)
        << o->error;
}

// ---- classifyOutcome decision table (pure unit test) ----

TEST(ClassifyOutcome, DecisionTableIsTotalAndOrdered)
{
    Outcome ref;
    ref.result.report = "R";
    ref.result.archSig = 7;

    Outcome o = ref;
    EXPECT_EQ(faults::classifyOutcome(o, ref),
              FaultOutcome::Masked);

    o = ref;
    o.result.archSig = 8;
    EXPECT_EQ(faults::classifyOutcome(o, ref),
              FaultOutcome::SilentDataCorruption);

    o = ref;
    o.result.report = "R'";
    EXPECT_EQ(faults::classifyOutcome(o, ref),
              FaultOutcome::SilentDataCorruption);

    o = Outcome{};
    o.error = std::string("panic: ") + golden::kDivergenceMarker +
        " at commit 5";
    EXPECT_EQ(faults::classifyOutcome(o, ref),
              FaultOutcome::DetectedByGolden);

    o = Outcome{};
    o.error = "panic: something else entirely";
    EXPECT_EQ(faults::classifyOutcome(o, ref), FaultOutcome::Crash);

    // Hang outranks everything: a stalled run's error text may
    // mention anything.
    o = Outcome{};
    o.error = std::string("watchdog: ") + golden::kDivergenceMarker;
    o.stalled = true;
    EXPECT_EQ(faults::classifyOutcome(o, ref), FaultOutcome::Hang);

    // Broken reference: nothing comparable, conservatively SDC.
    Outcome bad_ref;
    bad_ref.error = "reference died";
    o = Outcome{};
    o.result.report = "R";
    EXPECT_EQ(faults::classifyOutcome(o, bad_ref),
              FaultOutcome::SilentDataCorruption);
}

// ---- campaign totality and determinism ----

TEST(Campaign, EveryInjectionClassifiedNoAborts)
{
    faults::CampaignSpec spec;
    spec.schemes = {sim::Scheme::Base,
                    sim::Scheme::PriRefcountCkptcount};
    spec.injections = 3;
    spec.campaignSeed = 2;
    faults::CampaignExec exec;
    exec.jobs = 2;
    const auto table = faults::runCampaign(spec, exec);

    ASSERT_EQ(table.refs.size(), 2u);
    for (const auto &r : table.refs)
        EXPECT_TRUE(r.ok()) << r.error;
    // Totality: schemes x sites x injections outcomes, all counted.
    uint64_t total = 0;
    for (const auto &c : table.counts)
        total += c.total();
    EXPECT_EQ(total, 2u * table.sites.size() * spec.injections);
}

TEST(Campaign, InjectionRunsAreDeterministic)
{
    sim::RunParams p =
        campaignPoint(sim::Scheme::PriRefcountCkptcount, true);
    p.faultSpec = faults::drawInjection(FaultSite::MapTable, 1,
                                        0xfa17u, 10000);
    const Outcome a = runPoint(p);
    const Outcome b = runPoint(p);
    EXPECT_EQ(a.ok(), b.ok());
    EXPECT_EQ(a.stalled, b.stalled);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.result.report, b.result.report);
    EXPECT_EQ(a.result.archSig, b.result.archSig);
}

TEST(Campaign, ParamsHashSeparatesFaultSpecs)
{
    sim::RunParams a =
        campaignPoint(sim::Scheme::PriRefcountCkptcount, true);
    sim::RunParams b = a;
    b.faultSpec = faults::drawInjection(FaultSite::MapTable, 0,
                                        0xfa17u, 10000);
    sim::RunParams c = b;
    c.faultSpec.seed ^= 1;
    EXPECT_NE(sim::paramsHash(a), sim::paramsHash(b));
    EXPECT_NE(sim::paramsHash(b), sim::paramsHash(c));
}

} // namespace
} // namespace pri
