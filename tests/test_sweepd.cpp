/**
 * @file
 * Tests for the pri_sweepd sweep daemon stack: the shared PRIJ3 /
 * PRIP2 codec (field lists pinned, journal interop), the on-disk
 * content-addressed store (round trip, torn-write recovery, version
 * invalidation), and the daemon itself — in-flight dedup across
 * concurrent clients, worker-SIGKILL isolation with byte-identical
 * final results, and client fallback behaviour including the
 * hung-daemon (accepts, never replies) degradation drill.
 *
 * This binary hosts in-process daemons whose worker pool respawns
 * from /proc/self/exe, so main() dispatches to workerMain() before
 * gtest ever runs (which is why it does not link gtest_main).
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "faults/fault_spec.hh"
#include "sim/journal.hh"
#include "sim/result_codec.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"
#include "sweepd/client.hh"
#include "sweepd/daemon.hh"
#include "sweepd/store.hh"
#include "sweepd/worker.hh"

namespace pri::sweepd
{
namespace
{

/** Fresh empty scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "pri_sweepd_" + name;
    std::string cmd = "rm -rf '" + dir + "'";
    if (std::system(cmd.c_str()) != 0)
        ADD_FAILURE() << "cannot clear " << dir;
    return dir;
}

/** A small sweep batch that simulates in well under a second. */
std::vector<sim::RunParams>
smallBatch(unsigned n_pregs_steps = 2)
{
    std::vector<sim::RunParams> batch;
    for (const char *bench : {"gzip", "equake"}) {
        for (auto scheme :
             {sim::Scheme::Base, sim::Scheme::PriRefcountCkptcount}) {
            for (unsigned step = 0; step < n_pregs_steps; ++step) {
                sim::RunParams p;
                p.benchmark = bench;
                p.scheme = scheme;
                p.physRegs = 64 + 16 * step;
                p.warmupInsts = 1000;
                p.measureInsts = 4000;
                p.seed = 7;
                batch.push_back(p);
            }
        }
    }
    return batch;
}

void
expectIdentical(const sim::RunResult &a, const sim::RunResult &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.width, b.width);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.committedTotal, b.committedTotal);
    EXPECT_EQ(a.goldenChecked, b.goldenChecked);
    EXPECT_EQ(a.avgIntOccupancy, b.avgIntOccupancy);
    EXPECT_EQ(a.avgFpOccupancy, b.avgFpOccupancy);
    EXPECT_EQ(a.lifeAllocToWrite, b.lifeAllocToWrite);
    EXPECT_EQ(a.lifeWriteToLastRead, b.lifeWriteToLastRead);
    EXPECT_EQ(a.lifeLastReadToRelease, b.lifeLastReadToRelease);
    EXPECT_EQ(a.branchMispredictRate, b.branchMispredictRate);
    EXPECT_EQ(a.dl1MissRate, b.dl1MissRate);
    EXPECT_EQ(a.priEarlyFrees, b.priEarlyFrees);
    EXPECT_EQ(a.erEarlyFrees, b.erEarlyFrees);
    EXPECT_EQ(a.inlinedFrac, b.inlinedFrac);
    EXPECT_EQ(a.portStallsPerKInst, b.portStallsPerKInst);
    EXPECT_EQ(a.portInlineBypassFrac, b.portInlineBypassFrac);
    EXPECT_EQ(a.archSig, b.archSig);
    EXPECT_EQ(a.report, b.report);
}

/** Simulate @p batch directly through the in-process runner — the
 *  reference the daemon results must be byte-identical to. */
std::vector<sim::RunResult>
referenceResults(const std::vector<sim::RunParams> &batch)
{
    sim::SimulationRunner runner(2);
    return runner.run(batch);
}

// ---------------------------------------------------------------
// Codec: the audited serializer shared by journal and store.
// ---------------------------------------------------------------

/** The PRIJ3 field list is load-bearing for every on-disk cache: a
 *  RunResult change must land here, in the tag bump, and in the
 *  format/parse pair together. If this test fails you changed one
 *  without the others. */
TEST(ResultCodec, PinsPrij3FieldList)
{
    ASSERT_EQ(sim::codec::kResultFields, 25u);
    const std::vector<std::string> want = {
        "tag", "paramsHash", "benchmark", "scheme", "width",
        "cycles", "insts", "committedTotal", "goldenChecked",
        "ipc", "avgIntOccupancy", "avgFpOccupancy",
        "lifeAllocToWrite", "lifeWriteToLastRead",
        "lifeLastReadToRelease", "branchMispredictRate",
        "dl1MissRate", "priEarlyFrees", "erEarlyFrees",
        "inlinedFrac", "portStallsPerKInst", "portInlineBypassFrac",
        "archSig", "report", "sentinel"};
    ASSERT_EQ(want.size(), sim::codec::kResultFields);
    for (size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(sim::codec::kResultFieldNames[i], want[i])
            << "PRIJ3 field " << i;
    EXPECT_STREQ(sim::codec::kResultTag, "PRIJ3");
}

/** Same pin for PRIP2: exactly the paramsHash()-audited fields,
 *  which since the fault framework include the FaultSpec. */
TEST(ResultCodec, PinsPrip2FieldList)
{
    ASSERT_EQ(sim::codec::kParamsFields, 24u);
    const std::vector<std::string> want = {
        "tag", "benchmark", "width", "scheme", "physRegs",
        "warmupInsts", "measureInsts", "seed", "checkGolden",
        "schedSizeOverride", "narrowBitsOverride", "injectFault",
        "injectFreeWithoutInline", "prfReadPorts",
        "pooledCheckpoints", "eventWakeup", "cycleBudget",
        "tracedFrontEnd", "faultSite", "faultMutation",
        "faultTrigger", "faultTriggerArg", "faultSeed", "sentinel"};
    ASSERT_EQ(want.size(), sim::codec::kParamsFields);
    for (size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(sim::codec::kParamsFieldNames[i], want[i])
            << "PRIP2 field " << i;
    EXPECT_STREQ(sim::codec::kParamsTag, "PRIP2");
}

/** A params line carries the hash-audited fields bit-exactly: the
 *  daemon re-derives the same key the client computed. */
TEST(ResultCodec, ParamsLineRoundTripsTheHash)
{
    auto batch = smallBatch();
    batch[0].prfReadPorts = 6;
    batch[1].checkGolden = true;
    batch[2].cycleBudget = 123456;
    batch[3].tracedFrontEnd = false;
    batch[3].faultSpec.site = faults::FaultSite::MapTable;
    batch[3].faultSpec.mutation = faults::FaultMutation::StaleValue;
    batch[3].faultSpec.trigger = faults::FaultTrigger::SeededDraw;
    batch[3].faultSpec.triggerArg = 9000;
    batch[3].faultSpec.seed = 0xdecafu;
    for (const auto &p : batch) {
        const std::string line = sim::codec::formatParamsLine(p);
        sim::RunParams parsed;
        parsed.timeoutMs = 777; // machine-local: must survive parse
        ASSERT_TRUE(sim::codec::parseParamsLine(line, parsed))
            << line;
        EXPECT_EQ(sim::paramsHash(parsed), sim::paramsHash(p));
        EXPECT_EQ(parsed.timeoutMs, 777u);
    }
    sim::RunParams junk;
    EXPECT_FALSE(sim::codec::parseParamsLine("PRIP2\tgzip", junk));
    EXPECT_FALSE(sim::codec::parseParamsLine("PRIP1\tgzip", junk));
    EXPECT_FALSE(sim::codec::parseParamsLine("", junk));
}

/** A result line written by the codec is readable by the sweep
 *  journal and vice versa — they are the same serializer, so the
 *  daemon store and --journal files can never skew. */
TEST(ResultCodec, JournalInterop)
{
    const auto batch = smallBatch(1);
    const auto results = referenceResults(batch);
    const std::string path =
        scratchDir("interop") + "_journal.tsv";

    // Write the file with the raw codec...
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    for (size_t i = 0; i < batch.size(); ++i) {
        const auto line = sim::codec::formatResultLine(
            sim::paramsHash(batch[i]), results[i]);
        std::fwrite(line.data(), 1, line.size(), f);
    }
    std::fclose(f);

    // ...and read it back through SweepJournal.
    sim::SweepJournal journal(path);
    EXPECT_EQ(journal.loadedPoints(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        sim::RunResult r;
        ASSERT_TRUE(journal.lookup(sim::paramsHash(batch[i]), r));
        expectIdentical(r, results[i]);
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Store: on-disk content-addressed cache.
// ---------------------------------------------------------------

TEST(ResultStore, RoundTripAcrossReopen)
{
    const std::string dir = scratchDir("store_rt");
    const auto batch = smallBatch(1);
    const auto results = referenceResults(batch);

    {
        ResultStore store(dir);
        EXPECT_EQ(store.entries(), 0u);
        for (size_t i = 0; i < batch.size(); ++i)
            store.publish(sim::paramsHash(batch[i]), results[i]);
        EXPECT_EQ(store.entries(), batch.size());
        // Re-publishing an existing key is a no-op.
        store.publish(sim::paramsHash(batch[0]), results[0]);
        EXPECT_EQ(store.entries(), batch.size());
    }

    ResultStore reopened(dir);
    EXPECT_EQ(reopened.loadedEntries(), batch.size());
    EXPECT_FALSE(reopened.invalidatedOnOpen());
    for (size_t i = 0; i < batch.size(); ++i) {
        sim::RunResult r;
        ASSERT_TRUE(
            reopened.lookup(sim::paramsHash(batch[i]), r));
        expectIdentical(r, results[i]);
    }
    sim::RunResult miss;
    EXPECT_FALSE(reopened.lookup(0xdeadbeef, miss));
}

/** Garbage and truncated lines in a bucket file — a torn write from
 *  a killed process or stray editing — cost exactly the damaged
 *  lines; intact records keep being served. */
TEST(ResultStore, TornWriteRecovery)
{
    const std::string dir = scratchDir("store_torn");
    const auto batch = smallBatch(1);
    const auto results = referenceResults(batch);
    std::vector<uint64_t> keys;
    {
        ResultStore store(dir);
        for (size_t i = 0; i < batch.size(); ++i) {
            keys.push_back(sim::paramsHash(batch[i]));
            store.publish(keys.back(), results[i]);
        }
    }

    // Vandalize every bucket: prepend a corrupt line and append a
    // truncated (no sentinel, no newline) fragment.
    unsigned vandalized = 0;
    for (unsigned b = 0; b < 256; ++b) {
        char name[16];
        std::snprintf(name, sizeof(name), "/b%02x.tsv", b);
        const std::string path = dir + name;
        std::FILE *in = std::fopen(path.c_str(), "r");
        if (in == nullptr)
            continue;
        std::string contents;
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
            contents.append(buf, n);
        std::fclose(in);
        std::FILE *out = std::fopen(path.c_str(), "w");
        ASSERT_NE(out, nullptr);
        std::fputs("not\ta\tvalid\tline\n", out);
        std::fwrite(contents.data(), 1, contents.size(), out);
        std::fputs("PRIJ3\t0123", out); // torn mid-key
        std::fclose(out);
        ++vandalized;
    }
    ASSERT_GT(vandalized, 0u);

    ResultStore reopened(dir);
    EXPECT_EQ(reopened.loadedEntries(), batch.size());
    EXPECT_GE(reopened.tornLinesSkipped(), 2 * vandalized);
    for (size_t i = 0; i < batch.size(); ++i) {
        sim::RunResult r;
        ASSERT_TRUE(reopened.lookup(keys[i], r));
        expectIdentical(r, results[i]);
    }
}

/** A version-stamp mismatch (codec field list changed since the
 *  store was written) must drop every record rather than serve one
 *  under a new-format key. */
TEST(ResultStore, VersionStampInvalidation)
{
    const std::string dir = scratchDir("store_ver");
    const auto batch = smallBatch(1);
    const auto results = referenceResults(batch);
    {
        ResultStore store(dir);
        for (size_t i = 0; i < batch.size(); ++i)
            store.publish(sim::paramsHash(batch[i]), results[i]);
    }

    std::FILE *meta = std::fopen((dir + "/meta").c_str(), "w");
    ASSERT_NE(meta, nullptr);
    std::fputs("PRISTORE1 PRIJ1 23\n", meta);
    std::fclose(meta);

    ResultStore reopened(dir);
    EXPECT_TRUE(reopened.invalidatedOnOpen());
    EXPECT_EQ(reopened.loadedEntries(), 0u);
    sim::RunResult r;
    EXPECT_FALSE(
        reopened.lookup(sim::paramsHash(batch[0]), r));

    // And the restamped store works again.
    reopened.publish(sim::paramsHash(batch[0]), results[0]);
    ResultStore again(dir);
    EXPECT_FALSE(again.invalidatedOnOpen());
    EXPECT_EQ(again.loadedEntries(), 1u);
}

// ---------------------------------------------------------------
// Daemon: dedup, crash isolation, cached serving.
// ---------------------------------------------------------------

struct DaemonFixture
{
    explicit DaemonFixture(const std::string &name,
                           unsigned workers = 2,
                           long kill_dispatch = -1)
    {
        const std::string root = scratchDir("daemon_" + name);
        DaemonConfig cfg;
        cfg.socketPath = root + ".sock";
        cfg.storeDir = root;
        cfg.workers = workers;
        cfg.killDispatch = kill_dispatch;
        cfg.verbose = false;
        daemon = std::make_unique<Daemon>(cfg);
        socketPath = cfg.socketPath;
    }

    std::unique_ptr<Daemon> daemon;
    std::string socketPath;
};

/** Two clients submit overlapping grids concurrently; every shared
 *  point must be simulated exactly once (in-flight dedup or store
 *  hit), and both clients get byte-identical, reference-identical
 *  results. */
TEST(SweepDaemon, InFlightDedupAcrossClients)
{
    const auto batch = smallBatch(); // 8 distinct points
    const auto reference = referenceResults(batch);

    // Client A takes the first 6 points, client B the last 6:
    // 4 points overlap.
    const std::vector<sim::RunParams> batchA(batch.begin(),
                                             batch.begin() + 6);
    const std::vector<sim::RunParams> batchB(batch.begin() + 2,
                                             batch.end());

    DaemonFixture fx("dedup", 2);
    ASSERT_TRUE(fx.daemon->start());

    std::vector<PointOutcome> outA, outB;
    std::thread ta([&] {
        auto client = SweepdClient::connect(fx.socketPath);
        ASSERT_NE(client, nullptr);
        outA = client->submit(batchA);
    });
    std::thread tb([&] {
        auto client = SweepdClient::connect(fx.socketPath);
        ASSERT_NE(client, nullptr);
        outB = client->submit(batchB);
    });
    ta.join();
    tb.join();

    ASSERT_EQ(outA.size(), batchA.size());
    ASSERT_EQ(outB.size(), batchB.size());
    for (size_t i = 0; i < outA.size(); ++i) {
        ASSERT_TRUE(outA[i].ok()) << outA[i].error;
        expectIdentical(outA[i].result, reference[i]);
    }
    for (size_t i = 0; i < outB.size(); ++i) {
        ASSERT_TRUE(outB[i].ok()) << outB[i].error;
        expectIdentical(outB[i].result, reference[i + 2]);
    }

    // The dedup invariant: 12 submitted points, 8 unique — nothing
    // was ever simulated twice.
    const auto &st = fx.daemon->stats();
    EXPECT_EQ(st.points.load(), 12u);
    EXPECT_EQ(st.simulated.load(), batch.size());
    EXPECT_EQ(st.inflightHits.load() + st.storeHits.load(), 4u);
    EXPECT_EQ(st.errors.load(), 0u);
    EXPECT_EQ(fx.daemon->store()->entries(), batch.size());

    // A third submit of the full grid is pure cache.
    auto client = SweepdClient::connect(fx.socketPath);
    ASSERT_NE(client, nullptr);
    const auto outC = client->submit(batch);
    for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_TRUE(outC[i].ok());
        EXPECT_TRUE(outC[i].cached);
        expectIdentical(outC[i].result, reference[i]);
    }
    EXPECT_EQ(st.simulated.load(), batch.size());

    fx.daemon->stop();
}

/** The --inject-fault drill: a worker SIGKILLed mid-point costs one
 *  retry of that point and nothing else — the sweep completes with
 *  results byte-identical to the in-process reference. */
TEST(SweepDaemon, WorkerKillIsolation)
{
    const auto batch = smallBatch(); // 8 points
    const auto reference = referenceResults(batch);

    DaemonFixture fx("kill", 2, /*kill_dispatch=*/1);
    ASSERT_TRUE(fx.daemon->start());

    auto client = SweepdClient::connect(fx.socketPath);
    ASSERT_NE(client, nullptr);
    const auto out = client->submit(batch);

    ASSERT_EQ(out.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_TRUE(out[i].ok()) << out[i].error;
        expectIdentical(out[i].result, reference[i]);
    }
    const auto &st = fx.daemon->stats();
    EXPECT_EQ(st.workerCrashes.load(), 1u);
    EXPECT_GE(st.retries.load(), 1u);
    EXPECT_EQ(st.simulated.load(), batch.size());
    EXPECT_EQ(st.errors.load(), 0u);

    fx.daemon->stop();
}

/** The store a daemon leaves behind serves a fresh daemon: warm
 *  restarts keep the cache. */
TEST(SweepDaemon, StoreSurvivesDaemonRestart)
{
    const auto batch = smallBatch(1);
    const auto reference = referenceResults(batch);

    DaemonFixture fx("restart", 2);
    ASSERT_TRUE(fx.daemon->start());
    {
        auto client = SweepdClient::connect(fx.socketPath);
        ASSERT_NE(client, nullptr);
        const auto out = client->submit(batch);
        for (const auto &o : out)
            ASSERT_TRUE(o.ok()) << o.error;
    }
    fx.daemon->stop();

    // Same store dir, new daemon: everything is a store hit.
    DaemonConfig cfg;
    cfg.socketPath = fx.socketPath;
    cfg.storeDir = fx.daemon->store()->dir();
    cfg.workers = 1;
    cfg.verbose = false;
    Daemon second(cfg);
    ASSERT_TRUE(second.start());
    auto client = SweepdClient::connect(fx.socketPath);
    ASSERT_NE(client, nullptr);
    const auto out = client->submit(batch);
    for (size_t i = 0; i < batch.size(); ++i) {
        ASSERT_TRUE(out[i].ok()) << out[i].error;
        EXPECT_TRUE(out[i].cached);
        expectIdentical(out[i].result, reference[i]);
    }
    EXPECT_EQ(second.stats().simulated.load(), 0u);
    EXPECT_EQ(second.stats().storeHits.load(), batch.size());
    second.stop();
}

/** A daemon-side failure (unknown benchmark) comes back as a
 *  per-point error; healthy points in the same submit are
 *  unaffected. */
TEST(SweepDaemon, BadPointFailsAloneAndIsNotCached)
{
    auto batch = smallBatch(1);
    batch[1].benchmark = "no-such-benchmark";

    DaemonFixture fx("badpoint", 2);
    ASSERT_TRUE(fx.daemon->start());
    auto client = SweepdClient::connect(fx.socketPath);
    ASSERT_NE(client, nullptr);
    const auto out = client->submit(batch);
    ASSERT_EQ(out.size(), batch.size());
    for (size_t i = 0; i < out.size(); ++i) {
        if (i == 1) {
            EXPECT_FALSE(out[i].ok());
            EXPECT_NE(out[i].error.find("no-such-benchmark"),
                      std::string::npos)
                << out[i].error;
        } else {
            EXPECT_TRUE(out[i].ok()) << out[i].error;
        }
    }
    EXPECT_EQ(fx.daemon->stats().errors.load(), 1u);
    // Failures are never cached: the store holds only successes.
    EXPECT_EQ(fx.daemon->store()->entries(), batch.size() - 1);
    fx.daemon->stop();
}

TEST(SweepdClient, ConnectFailureReturnsNull)
{
    EXPECT_EQ(SweepdClient::connect("/no/such/dir/pri.sock"),
              nullptr);
    EXPECT_EQ(SweepdClient::connect(""), nullptr);
    EXPECT_EQ(
        SweepdClient::connect(std::string(300, 'x')),
        nullptr);
}

/** The hung-daemon drill: a socket that accepts connections but
 *  never replies (the listen backlog completes the handshake; nobody
 *  ever calls accept or writes a frame). The thin client must not
 *  block a sweep forever — it degrades within its handshake timeout
 *  and reports a distinct, actionable per-point error so callers
 *  fall back to in-process simulation. */
TEST(SweepdClient, HungDaemonDegradesWithinTimeout)
{
    const std::string sock = scratchDir("mute") + ".sock";
    std::remove(sock.c_str()); // stale socket from a prior run
    const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(sock.size(), sizeof(addr.sun_path));
    std::strncpy(addr.sun_path, sock.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(lfd, 8), 0);

    auto client = SweepdClient::connect(sock, /*timeout_ms=*/200);
    ASSERT_NE(client, nullptr); // connect itself succeeds
    const auto batch = smallBatch(1);

    const auto t0 = std::chrono::steady_clock::now();
    const auto out = client->submit(batch);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);

    // Degraded, not wedged: every point fails with the unresponsive
    // diagnosis, and the wait is bounded by the handshake timeout
    // (generous margin for a loaded CI box), not a simulation.
    ASSERT_EQ(out.size(), batch.size());
    for (const auto &o : out) {
        EXPECT_FALSE(o.ok());
        EXPECT_NE(o.error.find("daemon unresponsive"),
                  std::string::npos)
            << o.error;
    }
    EXPECT_LT(elapsed.count(), 10 * 1000) << "client wedged on a "
                                             "mute daemon";
    ::close(lfd);
}

TEST(SweepDaemon, StatusAndStatsQueries)
{
    DaemonFixture fx("query", 1);
    ASSERT_TRUE(fx.daemon->start());
    auto client = SweepdClient::connect(fx.socketPath);
    ASSERT_NE(client, nullptr);
    const std::string stats = client->query("STATS");
    EXPECT_NE(stats.find("storeHits 0"), std::string::npos) << stats;
    EXPECT_NE(stats.find("workers 1"), std::string::npos) << stats;
    const std::string status = client->query("STATUS");
    EXPECT_NE(status.find("pri_sweepd"), std::string::npos);
    EXPECT_EQ(client->query("NOPE"), "");
    fx.daemon->stop();
}

} // namespace
} // namespace pri::sweepd

/** Custom main: the daemon respawns workers from /proc/self/exe —
 *  this very binary — so worker dispatch must precede gtest. */
int
main(int argc, char **argv)
{
    if (const int rc = pri::sweepd::maybeRunAsWorker(argc, argv);
        rc >= 0)
        return rc;
    testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
