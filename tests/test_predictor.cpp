/**
 * @file
 * Tests for the combined bimodal/gshare predictor, BTB, and RAS
 * (paper Table 1 branch prediction).
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"

namespace pri::branch
{
namespace
{

TEST(Counter, Saturates)
{
    uint8_t c = 0;
    c = counterUpdate(c, false);
    EXPECT_EQ(c, 0);
    c = counterUpdate(c, true);
    c = counterUpdate(c, true);
    c = counterUpdate(c, true);
    c = counterUpdate(c, true);
    EXPECT_EQ(c, 3);
}

TEST(Combined, BimodalLearnsBiasedBranch)
{
    CombinedPredictor p;
    const uint64_t pc = 0x4000;
    // Always-taken branch: after warmup the prediction is taken.
    for (int i = 0; i < 8; ++i) {
        auto tok = p.predict(pc);
        p.update(pc, true, tok);
    }
    EXPECT_TRUE(p.predict(pc).predTaken);
}

TEST(Combined, GshareLearnsAlternatingPattern)
{
    CombinedPredictor p;
    const uint64_t pc = 0x5000;
    // Outcome = parity of iteration: pure history correlation that
    // bimodal cannot learn but gshare can.
    int correct_tail = 0;
    for (int i = 0; i < 400; ++i) {
        const bool outcome = i & 1;
        auto tok = p.predict(pc);
        if (i >= 300 && tok.predTaken == outcome)
            ++correct_tail;
        p.update(pc, outcome, tok);
        p.setHistory((p.history() & ~uint64_t{1}) |
                     (outcome ? 1 : 0)); // repair speculative shift
    }
    EXPECT_GT(correct_tail, 90); // ~100% after training
}

TEST(Combined, SelectorPrefersBetterComponent)
{
    CombinedPredictor p;
    const uint64_t pc = 0x6000;
    // Strongly biased branch with noisy history: bimodal is right,
    // selector should settle and overall accuracy approach the bias.
    int correct = 0;
    for (int i = 0; i < 1000; ++i) {
        const bool outcome = (i % 10) != 0; // 90% taken
        auto tok = p.predict(pc);
        if (i >= 200)
            correct += tok.predTaken == outcome;
        p.update(pc, outcome, tok);
    }
    EXPECT_GT(correct, 640); // >80% of the last 800
}

TEST(Combined, HistoryRestoreForRecovery)
{
    CombinedPredictor p;
    p.setHistory(0xabc);
    EXPECT_EQ(p.history(), 0xabcu);
    p.predict(0x100); // shifts speculative history
    EXPECT_NE(p.history(), 0xabcu);
    p.setHistory(0xabc);
    EXPECT_EQ(p.history(), 0xabcu);
}

TEST(Btb, MissThenHitAfterUpdate)
{
    Btb btb;
    EXPECT_FALSE(btb.lookup(0x1234).has_value());
    btb.update(0x1234, 0x9999);
    auto t = btb.lookup(0x1234);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x9999u);
}

TEST(Btb, UpdatesExistingEntry)
{
    Btb btb;
    btb.update(0x1234, 0x1);
    btb.update(0x1234, 0x2);
    EXPECT_EQ(*btb.lookup(0x1234), 0x2u);
}

TEST(Btb, SetAssociativityHoldsFourConflictingEntries)
{
    Btb btb;
    // Same set: pc stride = 4 * 256 sets * 4 bytes.
    const uint64_t stride = 4096;
    for (uint64_t i = 0; i < 4; ++i)
        btb.update(0x1000 + i * stride, i);
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_TRUE(btb.lookup(0x1000 + i * stride).has_value());
    // A fifth conflicting entry evicts the LRU (the first one).
    btb.update(0x1000 + 4 * stride, 4);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
}

TEST(Ras, PushPopLifo)
{
    Ras ras;
    ras.push(0x10);
    ras.push(0x20);
    EXPECT_EQ(ras.pop(), 0x20u);
    EXPECT_EQ(ras.pop(), 0x10u);
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u); // empty pops return 0
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    Ras ras;
    for (uint64_t i = 1; i <= Ras::kDepth + 4; ++i)
        ras.push(i);
    // Newest kDepth survive; oldest 4 were overwritten.
    for (uint64_t i = Ras::kDepth + 4; i > 4; --i)
        EXPECT_EQ(ras.pop(), i);
}

TEST(Ras, SnapshotRestore)
{
    Ras ras;
    ras.push(0x10);
    ras.push(0x20);
    PredictorSnapshot snap;
    ras.snapshot(snap);
    ras.pop();
    ras.push(0x99);
    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 0x20u);
    EXPECT_EQ(ras.pop(), 0x10u);
}

} // namespace
} // namespace pri::branch
