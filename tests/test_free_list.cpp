/**
 * @file
 * Tests for the duplicate-tolerant free list (paper §3.2: "the
 * free-list manager must have a scheme that allows the physical
 * register to be placed on the free list only once for every time it
 * is allocated").
 */

#include <gtest/gtest.h>

#include <set>

#include "common/hashing.hh"
#include "rename/free_list.hh"

namespace pri::rename
{
namespace
{

TEST(FreeList, InitialPartition)
{
    FreeList fl(64, 32);
    EXPECT_EQ(fl.numAllocated(), 32u);
    EXPECT_EQ(fl.numFree(), 32u);
    for (unsigned p = 0; p < 32; ++p)
        EXPECT_TRUE(fl.isAllocated(static_cast<isa::PhysRegId>(p)));
    for (unsigned p = 32; p < 64; ++p)
        EXPECT_FALSE(fl.isAllocated(static_cast<isa::PhysRegId>(p)));
}

TEST(FreeList, AllocateReturnsDistinctFreeRegs)
{
    FreeList fl(64, 32);
    std::set<isa::PhysRegId> got;
    while (fl.hasFree())
        EXPECT_TRUE(got.insert(fl.allocate()).second);
    EXPECT_EQ(got.size(), 32u);
    for (auto p : got)
        EXPECT_GE(p, 32);
}

TEST(FreeList, FreeMakesReallocatable)
{
    FreeList fl(34, 32);
    const auto a = fl.allocate();
    const auto b = fl.allocate();
    EXPECT_FALSE(fl.hasFree());
    fl.free(a);
    EXPECT_TRUE(fl.hasFree());
    EXPECT_EQ(fl.allocate(), a);
    fl.free(b);
    fl.free(a);
    EXPECT_EQ(fl.numFree(), 2u);
}

TEST(FreeList, DuplicateFreeIgnoredOncePerAllocation)
{
    FreeList fl(64, 32);
    const auto p = fl.allocate();
    EXPECT_TRUE(fl.free(p));
    // Second free of the same register: the PRI early-free followed
    // by the commit-time free. Must be ignored.
    EXPECT_FALSE(fl.free(p));
    EXPECT_FALSE(fl.free(p));
    EXPECT_EQ(fl.duplicateFrees(), 2u);
    // No duplicate entries: draining yields each register once.
    std::set<isa::PhysRegId> drained;
    while (fl.hasFree())
        EXPECT_TRUE(drained.insert(fl.allocate()).second);
    EXPECT_EQ(drained.size(), 32u);
}

TEST(FreeList, AllocFreeStressKeepsPartition)
{
    FreeList fl(48, 32);
    std::vector<isa::PhysRegId> live;
    uint64_t rng = 12345;
    for (int i = 0; i < 10000; ++i) {
        rng = rng * 6364136223846793005ULL + 1;
        if ((rng >> 33) % 2 == 0 && fl.hasFree()) {
            live.push_back(fl.allocate());
        } else if (!live.empty()) {
            const size_t k = (rng >> 40) % live.size();
            fl.free(live[k]);
            live[k] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(fl.numAllocated() + fl.numFree(), 48u);
        ASSERT_EQ(fl.numAllocated(), 32u + live.size());
    }
}

TEST(FreeList, RandomizedLivenessAndConservationProperty)
{
    // Randomized alloc / free / duplicate-free schedule driven by
    // the repo's counter-based RNG: every decision is a pure
    // function of (seed, step), so a failure names its exact
    // reproduction. Three properties must hold at every step:
    //  - allocate() never hands out an identifier that is live;
    //  - allocated + free counts are conserved at the total;
    //  - a duplicate free of a non-live register is a no-op.
    constexpr unsigned kTotal = 96;
    constexpr unsigned kArch = 32;
    FreeList fl(kTotal, kArch);
    std::set<isa::PhysRegId> live;
    std::vector<isa::PhysRegId> retired;
    const uint64_t seed = 2024;
    for (uint64_t step = 0; step < 20000; ++step) {
        const uint64_t roll = hashCombine(seed, step, 0) % 100;
        if (roll < 50 && fl.hasFree()) {
            const auto p = fl.allocate();
            ASSERT_TRUE(live.insert(p).second)
                << "step " << step << ": register " << p
                << " handed out while still live";
        } else if (roll < 85 && !live.empty()) {
            const size_t k =
                hashCombine(seed, step, 1) % live.size();
            const auto it = std::next(live.begin(), k);
            EXPECT_TRUE(fl.free(*it));
            retired.push_back(*it);
            live.erase(it);
        } else if (!retired.empty()) {
            // PRI's early free followed by the commit-time free:
            // replay a stale free and require it to be filtered.
            // (Skip registers that have since been re-allocated —
            // freeing those is legitimate.)
            const size_t k =
                hashCombine(seed, step, 2) % retired.size();
            const auto p = retired[k];
            if (live.count(p) == 0)
                EXPECT_FALSE(fl.free(p))
                    << "step " << step << ": duplicate free of "
                    << p << " was not filtered";
        }
        ASSERT_EQ(fl.numAllocated() + fl.numFree(), kTotal);
        ASSERT_EQ(fl.numAllocated(), kArch + live.size());
    }
    EXPECT_GT(fl.duplicateFrees(), 0u); // the mix hit that path
}

} // namespace
} // namespace pri::rename
