/**
 * @file
 * Figure 2 reproduction: dynamic cumulative distribution of operand
 * significance. Top: bits needed to represent integer results for
 * the SPECint-like workloads. Bottom: fraction of FP operands whose
 * exponent/significand fields are all-zeroes-or-ones, and the
 * all-zero fraction that the paper's FP inlining rule exploits.
 *
 * This is a pure workload study (functional walk, no timing). Each
 * benchmark's walk is independent, so the rows are computed through
 * SimulationRunner::forEach and printed afterwards in table order.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "common/bitutils.hh"
#include "workload/walker.hh"

namespace
{

constexpr uint64_t kInsts = 300000;

struct FpRow
{
    double zero = 0.0;
    double expTrivial = 0.0;
    double sigTrivial = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace pri;
    const auto opts = bench::parseOptions(argc, argv);
    const sim::SimulationRunner runner(opts.jobs);

    std::printf("=== Figure 2: operand significance ===\n\n");
    std::printf("-- integer results: cumulative %% representable in "
                "<= N bits --\n");
    std::printf("%-10s", "bench");
    const unsigned cols[] = {1, 4, 7, 8, 10, 12, 16, 24, 32, 48, 64};
    for (unsigned c : cols)
        std::printf(" %5u", c);
    std::printf("\n");

    const auto int_profiles = workload::specIntProfiles();
    std::vector<StatDistribution> dists(int_profiles.size(),
                                        StatDistribution(65));
    runner.forEach(int_profiles.size(), [&](size_t i) {
        workload::SyntheticProgram prog(int_profiles[i], 42);
        workload::Walker w(prog);
        auto &dist = dists[i];
        for (uint64_t n = 0; n < kInsts; ++n) {
            auto wi = w.next();
            if (wi.isBranch())
                w.steer(wi, wi.taken, wi.actualTarget);
            if (wi.hasDst() && wi.dst.cls == isa::RegClass::Int)
                dist.sample(significantBits(wi.resultValue));
        }
    });
    for (size_t i = 0; i < int_profiles.size(); ++i) {
        std::printf("%-10s", int_profiles[i].name.c_str());
        for (unsigned c : cols)
            std::printf(" %5.1f", 100.0 * dists[i].cdfAt(c));
        std::printf("\n");
    }

    std::printf("\n-- floating point operands --\n");
    std::printf("%-10s %10s %12s %12s\n", "bench", "zero%",
                "expTrivial%", "sigTrivial%");
    const auto fp_profiles = workload::specFpProfiles();
    std::vector<FpRow> rows(fp_profiles.size());
    runner.forEach(fp_profiles.size(), [&](size_t i) {
        workload::SyntheticProgram prog(fp_profiles[i], 42);
        workload::Walker w(prog);
        uint64_t fp = 0, zero = 0, etriv = 0, striv = 0;
        for (uint64_t n = 0; n < kInsts; ++n) {
            auto wi = w.next();
            if (wi.isBranch())
                w.steer(wi, wi.taken, wi.actualTarget);
            if (wi.hasDst() && wi.dst.cls == isa::RegClass::Fp) {
                ++fp;
                zero += fpValueTrivial(wi.resultValue);
                etriv += fpExponentTrivial(wi.resultValue);
                striv += fpSignificandTrivial(wi.resultValue);
            }
        }
        rows[i] = FpRow{100.0 * zero / fp, 100.0 * etriv / fp,
                        100.0 * striv / fp};
    });
    double zsum = 0, esum = 0, ssum = 0;
    for (size_t i = 0; i < fp_profiles.size(); ++i) {
        std::printf("%-10s %10.1f %12.1f %12.1f\n",
                    fp_profiles[i].name.c_str(), rows[i].zero,
                    rows[i].expTrivial, rows[i].sigTrivial);
        zsum += rows[i].zero;
        esum += rows[i].expTrivial;
        ssum += rows[i].sigTrivial;
    }
    const double n = static_cast<double>(fp_profiles.size());
    std::printf("%-10s %10.1f %12.1f %12.1f\n", "mean", zsum / n,
                esum / n, ssum / n);
    std::printf("\npaper: ~50%% of FP operands contain only zeroes; "
                "~77%% trivial exponents; ~54%% trivial "
                "significands\n");
    return 0;
}
