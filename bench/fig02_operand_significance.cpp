/**
 * @file
 * Figure 2 reproduction: dynamic cumulative distribution of operand
 * significance. Top: bits needed to represent integer results for
 * the SPECint-like workloads. Bottom: fraction of FP operands whose
 * exponent/significand fields are all-zeroes-or-ones, and the
 * all-zero fraction that the paper's FP inlining rule exploits.
 *
 * This is a pure workload study (functional walk, no timing).
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/bitutils.hh"
#include "workload/walker.hh"

namespace
{

constexpr uint64_t kInsts = 300000;

} // namespace

int
main(int argc, char **argv)
{
    using namespace pri;
    (void)argc;
    (void)argv;

    std::printf("=== Figure 2: operand significance ===\n\n");
    std::printf("-- integer results: cumulative %% representable in "
                "<= N bits --\n");
    std::printf("%-10s", "bench");
    const unsigned cols[] = {1, 4, 7, 8, 10, 12, 16, 24, 32, 48, 64};
    for (unsigned c : cols)
        std::printf(" %5u", c);
    std::printf("\n");

    for (const auto &prof : workload::specIntProfiles()) {
        workload::SyntheticProgram prog(prof, 42);
        workload::Walker w(prog);
        StatDistribution dist(65);
        for (uint64_t i = 0; i < kInsts; ++i) {
            auto wi = w.next();
            if (wi.isBranch())
                w.steer(wi, wi.taken, wi.actualTarget);
            if (wi.hasDst() && wi.dst.cls == isa::RegClass::Int)
                dist.sample(significantBits(wi.resultValue));
        }
        std::printf("%-10s", prof.name.c_str());
        for (unsigned c : cols)
            std::printf(" %5.1f", 100.0 * dist.cdfAt(c));
        std::printf("\n");
    }

    std::printf("\n-- floating point operands --\n");
    std::printf("%-10s %10s %12s %12s\n", "bench", "zero%",
                "expTrivial%", "sigTrivial%");
    double zsum = 0, esum = 0, ssum = 0;
    unsigned n = 0;
    for (const auto &prof : workload::specFpProfiles()) {
        workload::SyntheticProgram prog(prof, 42);
        workload::Walker w(prog);
        uint64_t fp = 0, zero = 0, etriv = 0, striv = 0;
        for (uint64_t i = 0; i < kInsts; ++i) {
            auto wi = w.next();
            if (wi.isBranch())
                w.steer(wi, wi.taken, wi.actualTarget);
            if (wi.hasDst() && wi.dst.cls == isa::RegClass::Fp) {
                ++fp;
                zero += fpValueTrivial(wi.resultValue);
                etriv += fpExponentTrivial(wi.resultValue);
                striv += fpSignificandTrivial(wi.resultValue);
            }
        }
        const double fz = 100.0 * zero / fp;
        const double fe = 100.0 * etriv / fp;
        const double fs = 100.0 * striv / fp;
        std::printf("%-10s %10.1f %12.1f %12.1f\n",
                    prof.name.c_str(), fz, fe, fs);
        zsum += fz;
        esum += fe;
        ssum += fs;
        ++n;
    }
    std::printf("%-10s %10.1f %12.1f %12.1f\n", "mean", zsum / n,
                esum / n, ssum / n);
    std::printf("\npaper: ~50%% of FP operands contain only zeroes; "
                "~77%% trivial exponents; ~54%% trivial "
                "significands\n");
    return 0;
}
