/**
 * @file
 * Figure 10 reproduction: PRI speedup for the SPEC2000-integer-like
 * workloads, 4-wide and 8-wide, across the full scheme panel:
 * ER, PRI-refcount+ckptcount, PRI-refcount+lazy,
 * PRI-ideal+ckptcount, PRI-ideal+lazy, PRI+ER, and InfPR —
 * all as IPC speedup over the Base machine at 64+64 registers.
 */

#include <cstdio>

#include "bench_util.hh"

namespace
{

const pri::sim::Scheme kPanel[] = {
    pri::sim::Scheme::EarlyRelease,
    pri::sim::Scheme::PriRefcountCkptcount,
    pri::sim::Scheme::PriRefcountLazy,
    pri::sim::Scheme::PriIdealCkptcount,
    pri::sim::Scheme::PriIdealLazy,
    pri::sim::Scheme::PriPlusEr,
    pri::sim::Scheme::InfinitePregs,
};

void
runPanel(unsigned width, const std::vector<std::string> &benches,
         const pri::bench::Options &opts)
{
    using namespace pri;
    const auto &budget = opts.budget;
    std::printf("width %u  (IPC speedup over Base)\n", width);
    std::printf("%-10s", "bench");
    for (auto s : kPanel)
        std::printf(" %22s", sim::schemeName(s));
    std::printf("\n");

    std::vector<std::vector<double>> cols(std::size(kPanel));
    for (const auto &name : benches) {
        const auto base =
            bench::runOne(name, width, sim::Scheme::Base, budget);
        std::printf("%-10s", name.c_str());
        for (size_t i = 0; i < std::size(kPanel); ++i) {
            const auto r =
                bench::runOne(name, width, kPanel[i], budget);
            const double sp = r.ipc / base.ipc;
            cols[i].push_back(sp);
            std::printf(" %22.3f", sp);
        }
        std::printf("\n");
    }
    std::printf("%-10s", "geomean");
    for (size_t i = 0; i < std::size(kPanel); ++i)
        std::printf(" %22.3f", bench::geomean(cols[i]));
    std::printf("\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pri;
    const auto opts = bench::parseOptions(argc, argv);
    std::vector<sim::Scheme> schemes{sim::Scheme::Base};
    schemes.insert(schemes.end(), std::begin(kPanel),
                   std::end(kPanel));
    return bench::runSweepGrid(
        bench::SweepGrid{
            "=== Figure 10: PRI speedup, integer benchmarks "
            "===\n(paper averages: ER +3.6%, PRI ref+ckpt "
            "+7.3% @4w / +14.8% @8w, PRI+ER +8.3%/+17.5%, "
            "InfPR +11%/+39%)\n\n",
            bench::intBenchmarks(),
            {4, 8},
            schemes},
        opts,
        [&](unsigned w) { runPanel(w, bench::intBenchmarks(), opts); });
}
