/**
 * @file
 * Figure 11 reproduction: average integer physical-register-file
 * occupancy for Base, ER, PRI, and PRI+ER on the SPECint-like
 * workloads, 4-wide and 8-wide (64 registers per class).
 */

#include <cstdio>

#include "bench_util.hh"

namespace
{

const pri::sim::Scheme kPanel[] = {
    pri::sim::Scheme::Base,
    pri::sim::Scheme::EarlyRelease,
    pri::sim::Scheme::PriRefcountCkptcount,
    pri::sim::Scheme::PriPlusEr,
};

void
runWidth(unsigned width, const pri::bench::Options &opts)
{
    using namespace pri;
    const auto &budget = opts.budget;
    std::printf("width %u  (average INT PRF occupancy out of 64)\n",
                width);
    std::printf("%-10s %8s %8s %8s %8s\n", "bench", "Base", "ER",
                "PRI", "PRI+ER");
    std::vector<std::vector<double>> cols(std::size(kPanel));
    for (const auto &name : bench::intBenchmarks()) {
        std::printf("%-10s", name.c_str());
        for (size_t i = 0; i < std::size(kPanel); ++i) {
            const auto r =
                bench::runOne(name, width, kPanel[i], budget);
            cols[i].push_back(r.avgIntOccupancy);
            std::printf(" %8.1f", r.avgIntOccupancy);
        }
        std::printf("\n");
    }
    std::printf("%-10s", "mean");
    for (size_t i = 0; i < std::size(kPanel); ++i)
        std::printf(" %8.1f", bench::mean(cols[i]));
    std::printf("\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = pri::bench::parseOptions(argc, argv);
    return pri::bench::runSweepGrid(
        pri::bench::SweepGrid{
            "=== Figure 11: PRF occupancy, integer benchmarks "
            "===\n(paper: ER/PRI/PRI+ER cut occupancy; the "
            "reduction is smaller on the 8-wide machine due to "
            "higher pressure)\n\n",
            pri::bench::intBenchmarks(),
            {4, 8},
            std::vector<pri::sim::Scheme>(std::begin(kPanel),
                                          std::end(kPanel))},
        opts, [&](unsigned w) { runWidth(w, opts); });
}
