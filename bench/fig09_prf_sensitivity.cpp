/**
 * @file
 * Figure 9 reproduction: register-file sensitivity study. Base
 * machine speedup vs a PR=40 baseline for PR in
 * {40,48,56,64,72,80,96}, per SPECint-like workload, both widths.
 */

#include <cstdio>

#include "bench_util.hh"

namespace
{

constexpr unsigned kSizes[] = {40, 48, 56, 64, 72, 80, 96};

void
runWidth(unsigned width, const pri::bench::Options &opts)
{
    using namespace pri;
    const auto &budget = opts.budget;
    std::printf("width %u  (speedup normalised to PR=40)\n", width);
    std::printf("%-10s", "bench");
    for (unsigned s : kSizes)
        std::printf("  PR=%-3u", s);
    std::printf("\n");

    std::vector<std::vector<double>> cols(std::size(kSizes));
    for (const auto &name : bench::intBenchmarks()) {
        double base_ipc = 0.0;
        std::printf("%-10s", name.c_str());
        for (size_t i = 0; i < std::size(kSizes); ++i) {
            const auto r = bench::runOne(
                name, width, sim::Scheme::Base, budget, kSizes[i]);
            if (i == 0)
                base_ipc = r.ipc;
            const double speedup = r.ipc / base_ipc;
            cols[i].push_back(speedup);
            std::printf("  %6.2f", speedup);
        }
        std::printf("\n");
    }
    std::printf("%-10s", "geomean");
    for (size_t i = 0; i < std::size(kSizes); ++i)
        std::printf("  %6.2f", bench::geomean(cols[i]));
    std::printf("\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = pri::bench::parseOptions(argc, argv);
    return pri::bench::runSweepGrid(
        pri::bench::SweepGrid{
            "=== Figure 9: register file sensitivity study ===\n"
            "(paper: gains flatten beyond ~64-72 registers at "
            "4-wide; the 8-wide machine keeps scaling)\n\n",
            pri::bench::intBenchmarks(),
            {4, 8},
            {pri::sim::Scheme::Base},
            std::vector<unsigned>(std::begin(kSizes),
                                  std::end(kSizes))},
        opts, [&](unsigned w) { runWidth(w, opts); });
}
