/**
 * @file
 * Simulator-throughput smoke test for the parallel experiment
 * runner and the cycle-loop hot-path work.
 *
 * Three measurements, printed as an ASCII table and written to
 * BENCH_runner.json:
 *
 *  1. Serial KIPS: simulated kilo-instructions committed per
 *     wall-clock second for a batch of runs on one thread.
 *  2. Parallel KIPS: the same batch through SimulationRunner with
 *     the requested --jobs (default hardware_concurrency).
 *  3. Cycle-loop allocations: heap allocations per simulated cycle
 *     and scratch-buffer regrowths in the measurement window with
 *     the legacy allocate-per-cycle path (hoistScratch=false)
 *     versus the hoisted member buffers (hoistScratch=true). The
 *     hoisted path must report zero steady-state regrowths. A third
 *     leg repeats the hoisted run with a binding PRF read-port
 *     budget: the arbiter and its stall-replay path must add zero
 *     heap allocations over the unlimited leg while actually
 *     denying issues.
 *  4. Front-end checkpointing: a branch-heavy (gcc) run with pooled
 *     checkpoints versus the legacy copy-everywhere path — KIPS,
 *     checkpoints taken/restored/pool-stalled, steady-state heap
 *     allocations (must be zero pooled), and the per-branch snapshot
 *     bytes the pool removes. Written to BENCH_frontend.json.
 *  5. Traced front end: the walker replay loop in isolation
 *     (Minst/s, traced vs legacy decode) and a whole-core gcc run
 *     with tracedFrontEnd on/off — plus the TraceCache sharing
 *     stats of the multi-point sweep in (1)/(2). Trace replay must
 *     make zero steady-state heap allocations (compile-time allocs
 *     are allowed, replay allocs are not). Written to
 *     BENCH_trace.json.
 *  6. Sweep batching: a fig10-shaped subset (scheme x width panel
 *     over two workloads) through SimulationRunner with --batch 1
 *     versus the default batch width, best-of-3 with the legs
 *     interleaved, plus the batched-replay allocation gate: the
 *     operator-new delta between two SweepBatch::drain()s that
 *     differ only in measure length must be zero (one-time pool
 *     growth cancels; anything left is per-instruction allocation
 *     in the batched replay loop).
 *
 * Also prints a one-line comparison of the serial KIPS against the
 * committed BENCH_runner.json baseline when that file is present.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/core.hh"
#include "sim/batch/sweep_batch.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"
#include "workload/program.hh"
#include "workload/trace/trace_cache.hh"
#include "workload/walker.hh"

namespace
{

/** Global allocation counter fed by the operator-new overrides. */
std::atomic<uint64_t> g_allocs{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace pri;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<sim::RunParams>
makeBatch(const bench::Budget &budget)
{
    std::vector<sim::RunParams> batch;
    for (const auto &name : bench::intBenchmarks()) {
        for (auto scheme :
             {sim::Scheme::Base, sim::Scheme::PriRefcountLazy}) {
            sim::RunParams p;
            p.benchmark = name;
            p.scheme = scheme;
            p.warmupInsts = budget.warmup;
            p.measureInsts = budget.measure;
            batch.push_back(p);
        }
    }
    return batch;
}

uint64_t
simulatedInsts(const std::vector<sim::RunResult> &results)
{
    uint64_t n = 0;
    for (const auto &r : results)
        n += r.insts;
    return n;
}

struct AllocProbe
{
    double allocsPerCycle = 0.0;
    uint64_t allocs = 0;
    uint64_t scratchGrowths = 0;
    uint64_t portStalls = 0;
    uint64_t cycles = 0;
};

/** Measure steady-state heap traffic of the core's cycle loop.
 *  @p ports limits the PRF read-port budget (0 = unlimited) so the
 *  arbitrated issue path gets its own zero-allocation gate. */
AllocProbe
probeCycleLoop(bool hoist, const bench::Budget &budget,
               unsigned ports = 0)
{
    const auto &profile = workload::profileByName("gzip");
    workload::SyntheticProgram program(profile, 11);

    const unsigned narrow = core::CoreConfig::narrowBitsForWidth(4);
    auto cfg = core::CoreConfig::fourWide(
        rename::RenameConfig::base(64, narrow));
    cfg.hoistScratch = hoist;
    cfg.prfReadPorts = ports;

    StatGroup stats;
    core::OutOfOrderCore cpu(cfg, program, stats);

    // Warm up: any one-time buffer growth happens here.
    cpu.run(budget.warmup);
    cpu.beginMeasurement();

    const uint64_t c0 = cpu.cycles();
    const uint64_t g0 = static_cast<uint64_t>(
        stats.scalarValue("core.scratchGrowths"));
    const uint64_t s0 = static_cast<uint64_t>(
        stats.scalarValue("core.prfPortStallOps"));
    const uint64_t a0 = g_allocs.load(std::memory_order_relaxed);

    cpu.run(budget.measure);

    AllocProbe probe;
    probe.cycles = cpu.cycles() - c0;
    probe.scratchGrowths = static_cast<uint64_t>(
        stats.scalarValue("core.scratchGrowths")) - g0;
    probe.portStalls = static_cast<uint64_t>(
        stats.scalarValue("core.prfPortStallOps")) - s0;
    probe.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    probe.allocsPerCycle = probe.cycles > 0
        ? static_cast<double>(probe.allocs) /
            static_cast<double>(probe.cycles)
        : 0.0;
    return probe;
}

struct FrontEndProbe
{
    double kips = 0.0;
    double allocsPerCycle = 0.0;
    uint64_t allocs = 0;
    uint64_t cycles = 0;
    uint64_t ckptsTaken = 0;
    uint64_t ckptsRestored = 0;
    uint64_t poolStalls = 0;
};

/** Branch-heavy core run, pooled vs legacy checkpointing. */
FrontEndProbe
probeFrontEnd(bool pooled, const bench::Budget &budget)
{
    const auto &profile = workload::profileByName("gcc");
    workload::SyntheticProgram program(profile, 11);

    const unsigned narrow = core::CoreConfig::narrowBitsForWidth(4);
    auto cfg = core::CoreConfig::fourWide(
        rename::RenameConfig::base(64, narrow));
    cfg.pooledCheckpoints = pooled;

    StatGroup stats;
    core::OutOfOrderCore cpu(cfg, program, stats);

    // Warm up past all one-time buffer growth (fetch ring, pool
    // slots, journals, wheel).
    cpu.run(budget.warmup);
    cpu.beginMeasurement();

    const uint64_t c0 = cpu.cycles();
    const uint64_t i0 = cpu.committedInsts();
    const double k0 = stats.scalarValue("core.ckptsTaken");
    const double r0 = stats.scalarValue("core.ckptsRestored");
    const double s0 = stats.scalarValue("core.ckptPoolStalls");
    const uint64_t a0 = g_allocs.load(std::memory_order_relaxed);

    const auto t0 = Clock::now();
    cpu.run(budget.measure);
    const double secs = secondsSince(t0);

    FrontEndProbe probe;
    probe.cycles = cpu.cycles() - c0;
    probe.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    probe.allocsPerCycle = probe.cycles > 0
        ? static_cast<double>(probe.allocs) /
            static_cast<double>(probe.cycles)
        : 0.0;
    probe.kips = secs > 0
        ? static_cast<double>(cpu.committedInsts() - i0) / secs /
            1000.0
        : 0.0;
    probe.ckptsTaken = static_cast<uint64_t>(
        stats.scalarValue("core.ckptsTaken") - k0);
    probe.ckptsRestored = static_cast<uint64_t>(
        stats.scalarValue("core.ckptsRestored") - r0);
    probe.poolStalls = static_cast<uint64_t>(
        stats.scalarValue("core.ckptPoolStalls") - s0);
    return probe;
}

/** Whole-core run with the traced vs legacy front end (gcc). */
FrontEndProbe
probeTracedCore(bool traced, const bench::Budget &budget)
{
    const auto &profile = workload::profileByName("gcc");
    workload::SyntheticProgram program(profile, 11);

    const unsigned narrow = core::CoreConfig::narrowBitsForWidth(4);
    auto cfg = core::CoreConfig::fourWide(
        rename::RenameConfig::base(64, narrow));
    cfg.tracedFrontEnd = traced;

    StatGroup stats;
    core::OutOfOrderCore cpu(cfg, program, stats);

    // Warm up past one-time growth (and, traced, past the deepest
    // call-stack push the walker will see).
    cpu.run(budget.warmup);
    cpu.beginMeasurement();

    const uint64_t c0 = cpu.cycles();
    const uint64_t i0 = cpu.committedInsts();
    const uint64_t a0 = g_allocs.load(std::memory_order_relaxed);

    const auto t0 = Clock::now();
    cpu.run(budget.measure);
    const double secs = secondsSince(t0);

    FrontEndProbe probe;
    probe.cycles = cpu.cycles() - c0;
    probe.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    probe.allocsPerCycle = probe.cycles > 0
        ? static_cast<double>(probe.allocs) /
            static_cast<double>(probe.cycles)
        : 0.0;
    probe.kips = secs > 0
        ? static_cast<double>(cpu.committedInsts() - i0) / secs /
            1000.0
        : 0.0;
    return probe;
}

struct WalkerProbe
{
    double mips = 0.0;     ///< front-end Minst/s, no timing core
    uint64_t allocs = 0;   ///< heap allocations in the window
    uint64_t insts = 0;
};

/**
 * The front end in isolation: a bare next()/steer() replay loop
 * down actual paths. This is the honest measure of the micro-trace
 * rewrite itself, undiluted by the ~85% of runtime the timing core
 * spends elsewhere (Amdahl caps the whole-binary gain; DESIGN.md
 * §13).
 */
WalkerProbe
probeWalkerReplay(bool traced, const bench::Budget &budget)
{
    const auto &profile = workload::profileByName("gcc");
    workload::SyntheticProgram program(profile, 11);
    std::shared_ptr<const workload::trace::ProgramTraces> traces;
    if (traced) {
        traces =
            workload::trace::TraceCache::global().acquire(program);
    }
    workload::Walker walker(program, traces.get());

    const uint64_t n = budget.measure * 25;
    uint64_t sink = 0;
    const auto step = [&] {
        const auto wi = walker.next();
        sink ^= wi.resultValue ^ wi.memAddr;
        if (walker.branchPending())
            walker.steer(wi, wi.taken, wi.actualTarget);
    };

    // Warmup: grow the call stack to its steady depth.
    for (uint64_t i = 0; i < n / 10; ++i)
        step();

    const uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    for (uint64_t i = 0; i < n; ++i)
        step();
    const double secs = secondsSince(t0);

    WalkerProbe probe;
    probe.insts = n + (sink & 1); // keep the sink alive
    probe.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    probe.mips =
        secs > 0 ? static_cast<double>(n) / secs / 1e6 : 0.0;
    return probe;
}

/** A fig10-shaped subset for the sweep-batch A/B: full scheme x
 *  width panel over two workloads, one seed — every point of one
 *  (benchmark, seed) shares a batch. */
std::vector<sim::RunParams>
makeBatchSubset(const bench::Budget &budget, uint64_t measure)
{
    const sim::Scheme schemes[] = {
        sim::Scheme::Base,
        sim::Scheme::EarlyRelease,
        sim::Scheme::PriRefcountCkptcount,
        sim::Scheme::PriRefcountLazy,
        sim::Scheme::PriIdealCkptcount,
        sim::Scheme::PriIdealLazy,
        sim::Scheme::PriPlusEr,
        sim::Scheme::InfinitePregs,
    };
    std::vector<sim::RunParams> pts;
    for (const char *name : {"gcc", "gzip"}) {
        for (unsigned width : {4u, 8u}) {
            for (auto scheme : schemes) {
                sim::RunParams p;
                p.benchmark = name;
                p.width = width;
                p.scheme = scheme;
                p.warmupInsts = budget.warmup;
                p.measureInsts = measure;
                p.seed = 11;
                pts.push_back(std::move(p));
            }
        }
    }
    return pts;
}

/** One timed leg of the subset; returns points per second. */
double
timedBatchLeg(const std::vector<sim::RunParams> &grid,
              unsigned lanes)
{
    sim::SimulationRunner runner(1);
    runner.setBatchLanes(lanes);
    const auto t0 = Clock::now();
    const auto results = runner.run(grid);
    const double secs = secondsSince(t0);
    return secs > 0 && !results.empty()
        ? static_cast<double>(grid.size()) / secs
        : 0.0;
}

/** operator-new count across the drains of the subset at the given
 *  measure length. */
uint64_t
batchDrainAllocs(const bench::Budget &budget, uint64_t measure,
                 unsigned lanes, size_t *lanes_out)
{
    const auto pts = makeBatchSubset(budget, measure);
    std::vector<size_t> pending(pts.size());
    for (size_t i = 0; i < pending.size(); ++i)
        pending[i] = i;
    const auto groups = sim::formBatches(pts, pending, lanes);

    uint64_t allocs = 0;
    size_t covered = 0;
    for (const auto &grp : groups) {
        sim::SweepBatch sb(pts, grp);
        sb.prepare();
        const uint64_t a0 =
            g_allocs.load(std::memory_order_relaxed);
        sb.drain();
        allocs += g_allocs.load(std::memory_order_relaxed) - a0;
        for (const auto &o : sb.finalize()) {
            if (!o.ok())
                fatal("batch alloc probe lane failed: {}", o.error);
        }
        covered += grp.indices.size();
    }
    *lanes_out = covered;
    return allocs;
}

/** serialKips from the committed BENCH_runner.json, or 0. */
double
baselineSerialKips()
{
    // Prefer the repo copy: when run from the build tree, the CWD
    // file is a leftover of a previous run, not the baseline.
    for (const char *path :
         {"../BENCH_runner.json", "BENCH_runner.json"}) {
        std::FILE *f = std::fopen(path, "r");
        if (!f)
            continue;
        char buf[4096];
        const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
        std::fclose(f);
        buf[n] = '\0';
        if (const char *p = std::strstr(buf, "\"serialKips\":"))
            return std::atof(p + std::strlen("\"serialKips\":"));
    }
    return 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    const unsigned jobs =
        opts.jobs ? opts.jobs : sim::defaultJobs();

    std::printf("== Simulator throughput smoke test ==\n");
    std::printf("warmup %llu, measure %llu insts per run\n\n",
                static_cast<unsigned long long>(opts.budget.warmup),
                static_cast<unsigned long long>(
                    opts.budget.measure));

    // Read before this run rewrites BENCH_runner.json in-place.
    const double base_kips = baselineSerialKips();

    const auto batch = makeBatch(opts.budget);

    // Sharing across the sweep: 26 points over 13 benchmarks means
    // each program should compile once and be shared by the rest.
    const auto tc0 = workload::trace::TraceCache::global().stats();

    auto t0 = Clock::now();
    const auto serial = sim::SimulationRunner(1).run(batch);
    const double serial_s = secondsSince(t0);
    const double serial_kips =
        simulatedInsts(serial) / serial_s / 1000.0;

    t0 = Clock::now();
    const auto par = sim::SimulationRunner(jobs).run(batch);
    const double par_s = secondsSince(t0);
    const double par_kips = simulatedInsts(par) / par_s / 1000.0;

    const auto tc1 = workload::trace::TraceCache::global().stats();

    std::printf("%-28s %10s %10s\n", "configuration", "KIPS",
                "seconds");
    std::printf("%-28s %10.1f %10.2f\n", "serial (--jobs 1)",
                serial_kips, serial_s);
    char label[64];
    std::snprintf(label, sizeof(label), "parallel (--jobs %u)",
                  jobs);
    std::printf("%-28s %10.1f %10.2f\n", label, par_kips, par_s);
    std::printf("speedup: %.2fx over %zu runs\n",
                par_kips / serial_kips, batch.size());
    if (base_kips > 0.0) {
        std::printf("baseline BENCH_runner.json serialKips %.1f -> "
                    "%.1f (%.2fx)\n",
                    base_kips, serial_kips,
                    serial_kips / base_kips);
    }
    std::printf("\n");

    const auto legacy = probeCycleLoop(false, opts.budget);
    const auto hoisted = probeCycleLoop(true, opts.budget);
    // Port-limited leg: a binding budget (4 ports on the 4-wide
    // machine, whose worst case is 2*width = 8) drives the arbiter
    // and the port-stall replay path every cycle. That path must be
    // as allocation-free as the unlimited one.
    const auto ported = probeCycleLoop(true, opts.budget, 4);

    std::printf("%-28s %14s %14s\n", "cycle-loop heap traffic",
                "allocs/cycle", "scratchGrowths");
    std::printf("%-28s %14.4f %14llu\n", "legacy (hoistScratch=off)",
                legacy.allocsPerCycle,
                static_cast<unsigned long long>(
                    legacy.scratchGrowths));
    std::printf("%-28s %14.4f %14llu\n", "hoisted (hoistScratch=on)",
                hoisted.allocsPerCycle,
                static_cast<unsigned long long>(
                    hoisted.scratchGrowths));
    std::printf("%-28s %14.4f %14llu\n", "ported (read-ports=4)",
                ported.allocsPerCycle,
                static_cast<unsigned long long>(
                    ported.scratchGrowths));
    if (hoisted.scratchGrowths != 0) {
        std::printf("FAIL: hoisted path regrew scratch buffers in "
                    "the measurement window\n");
        return 1;
    }
    if (ported.portStalls == 0) {
        std::printf("FAIL: the 4-port budget never bound — the "
                    "arbiter path was not exercised\n");
        return 1;
    }
    // Delta gate: the two hoisted legs replay the same instruction
    // stream, so any background allocation (workload, memory system)
    // lands identically in both. Anything the ported leg adds on top
    // is an allocation in the arbiter / stall-replay path itself.
    const uint64_t arb_allocs = ported.allocs > hoisted.allocs
        ? ported.allocs - hoisted.allocs
        : 0;
    if (arb_allocs != 0 || ported.scratchGrowths != 0) {
        std::printf("FAIL: arbiter path added %llu allocations "
                    "over the unlimited leg\n",
                    static_cast<unsigned long long>(arb_allocs));
        return 1;
    }
    std::printf("hoisted path: zero steady-state scratch "
                "allocations over %llu cycles\n",
                static_cast<unsigned long long>(hoisted.cycles));
    std::printf("ported path: zero added allocations across %llu "
                "port stalls\n\n",
                static_cast<unsigned long long>(ported.portStalls));

    // Front-end checkpointing: branch-heavy workload, pooled vs
    // legacy copy path.
    const auto fe_legacy = probeFrontEnd(false, opts.budget);
    const auto fe_pooled = probeFrontEnd(true, opts.budget);

    // Per-branch snapshot payload the rename stage copies into the
    // ROB entry: full RAS image + spec-arch array + walker
    // checkpoint header (its call stack adds a heap copy on top).
    const size_t legacy_bytes = sizeof(branch::PredictorSnapshotFull)
        + sizeof(std::array<uint64_t, 2 * isa::kNumLogicalRegs>)
        + sizeof(workload::WalkerCkpt);
    const size_t pooled_bytes = sizeof(core::CkptRef);

    std::printf("%-28s %10s %12s %10s %8s %8s\n",
                "front-end (gcc)", "KIPS", "allocs/cyc", "ckpts",
                "restored", "stalls");
    std::printf("%-28s %10.1f %12.4f %10llu %8llu %8llu\n",
                "legacy (copy per branch)", fe_legacy.kips,
                fe_legacy.allocsPerCycle,
                static_cast<unsigned long long>(
                    fe_legacy.ckptsTaken),
                static_cast<unsigned long long>(
                    fe_legacy.ckptsRestored),
                static_cast<unsigned long long>(
                    fe_legacy.poolStalls));
    std::printf("%-28s %10.1f %12.4f %10llu %8llu %8llu\n",
                "pooled (CkptRef per branch)", fe_pooled.kips,
                fe_pooled.allocsPerCycle,
                static_cast<unsigned long long>(
                    fe_pooled.ckptsTaken),
                static_cast<unsigned long long>(
                    fe_pooled.ckptsRestored),
                static_cast<unsigned long long>(
                    fe_pooled.poolStalls));
    std::printf("per-branch ROB snapshot: %zu B -> %zu B\n",
                legacy_bytes, pooled_bytes);
    if (fe_pooled.allocs != 0) {
        std::printf("FAIL: pooled front-end allocated %llu times in "
                    "the measurement window\n",
                    static_cast<unsigned long long>(
                        fe_pooled.allocs));
        return 1;
    }
    if (fe_pooled.poolStalls != 0) {
        std::printf("FAIL: auto-sized checkpoint pool stalled "
                    "fetch\n");
        return 1;
    }
    std::printf("pooled path: zero steady-state allocations over "
                "%llu branch-heavy cycles\n",
                static_cast<unsigned long long>(fe_pooled.cycles));

    if (std::FILE *f = std::fopen("BENCH_frontend.json", "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"benchmark\": \"gcc\",\n"
            "  \"serialKips\": %.1f,\n"
            "  \"baselineSerialKips\": %.1f,\n"
            "  \"legacyKips\": %.1f,\n"
            "  \"pooledKips\": %.1f,\n"
            "  \"pooledSpeedup\": %.3f,\n"
            "  \"legacyAllocsPerCycle\": %.4f,\n"
            "  \"pooledAllocsPerCycle\": %.4f,\n"
            "  \"pooledAllocs\": %llu,\n"
            "  \"ckptsTaken\": %llu,\n"
            "  \"ckptsRestored\": %llu,\n"
            "  \"ckptPoolStalls\": %llu,\n"
            "  \"legacyBytesPerBranch\": %zu,\n"
            "  \"pooledBytesPerBranch\": %zu,\n"
            "  \"measuredCycles\": %llu\n"
            "}\n",
            serial_kips, base_kips, fe_legacy.kips, fe_pooled.kips,
            fe_legacy.kips > 0 ? fe_pooled.kips / fe_legacy.kips
                               : 0.0,
            fe_legacy.allocsPerCycle, fe_pooled.allocsPerCycle,
            static_cast<unsigned long long>(fe_pooled.allocs),
            static_cast<unsigned long long>(fe_pooled.ckptsTaken),
            static_cast<unsigned long long>(fe_pooled.ckptsRestored),
            static_cast<unsigned long long>(fe_pooled.poolStalls),
            legacy_bytes, pooled_bytes,
            static_cast<unsigned long long>(fe_pooled.cycles));
        std::fclose(f);
        std::printf("wrote BENCH_frontend.json\n");
    }
    std::printf("\n");

    // Traced front end: the walker replay loop in isolation, then
    // the whole core with the front end swapped. The host is a noisy
    // shared box, so each A/B leg is best-of-3 with the legs
    // interleaved (alternating legacy/traced keeps slow phases from
    // landing entirely on one side); the allocation gates below look
    // at every repetition, not just the best one.
    WalkerProbe wk_legacy, wk_traced;
    FrontEndProbe tc_legacy, tc_traced;
    uint64_t wk_traced_allocs = 0, tc_traced_allocs = 0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto wl = probeWalkerReplay(false, opts.budget);
        const auto wt = probeWalkerReplay(true, opts.budget);
        const auto cl = probeTracedCore(false, opts.budget);
        const auto ct = probeTracedCore(true, opts.budget);
        wk_traced_allocs += wt.allocs;
        tc_traced_allocs += ct.allocs;
        if (wl.mips > wk_legacy.mips)
            wk_legacy = wl;
        if (wt.mips > wk_traced.mips)
            wk_traced = wt;
        if (cl.kips > tc_legacy.kips)
            tc_legacy = cl;
        if (ct.kips > tc_traced.kips)
            tc_traced = ct;
    }
    wk_traced.allocs = wk_traced_allocs;
    tc_traced.allocs = tc_traced_allocs;

    const uint64_t sweep_compiled =
        tc1.programsCompiled - tc0.programsCompiled;
    const uint64_t sweep_shared =
        tc1.programsShared - tc0.programsShared;
    const auto tc_all = workload::trace::TraceCache::global().stats();

    std::printf("%-28s %12s %12s\n", "walker replay (gcc)",
                "Minst/s", "allocs");
    std::printf("%-28s %12.1f %12llu\n", "legacy decode",
                wk_legacy.mips,
                static_cast<unsigned long long>(wk_legacy.allocs));
    std::printf("%-28s %12.1f %12llu\n", "traced replay",
                wk_traced.mips,
                static_cast<unsigned long long>(wk_traced.allocs));
    std::printf("walker replay speedup: %.2fx over %llu insts\n",
                wk_legacy.mips > 0 ? wk_traced.mips / wk_legacy.mips
                                   : 0.0,
                static_cast<unsigned long long>(wk_traced.insts));
    std::printf("%-28s %10s %12s\n", "whole core (gcc)", "KIPS",
                "allocs/cyc");
    std::printf("%-28s %10.1f %12.4f\n", "legacy front end",
                tc_legacy.kips, tc_legacy.allocsPerCycle);
    std::printf("%-28s %10.1f %12.4f\n", "traced front end",
                tc_traced.kips, tc_traced.allocsPerCycle);
    std::printf("trace cache: %llu programs compiled, %llu shared "
                "across the %zu-run sweep; %llu blocks, %llu "
                "micro-ops, %llu B resident; replay hit rate %.3f\n",
                static_cast<unsigned long long>(sweep_compiled),
                static_cast<unsigned long long>(sweep_shared),
                batch.size() * 2,
                static_cast<unsigned long long>(tc_all.blocksCompiled),
                static_cast<unsigned long long>(tc_all.microOps),
                static_cast<unsigned long long>(tc_all.traceBytes),
                tc_all.replayHitRate());
    if (wk_traced.allocs != 0) {
        std::printf("FAIL: trace replay allocated %llu times in the "
                    "measurement window\n",
                    static_cast<unsigned long long>(
                        wk_traced.allocs));
        return 1;
    }
    if (tc_traced.allocs != 0) {
        std::printf("FAIL: traced core allocated %llu times in the "
                    "measurement window\n",
                    static_cast<unsigned long long>(
                        tc_traced.allocs));
        return 1;
    }
    std::printf("traced path: zero steady-state allocations "
                "(replay and whole-core)\n");

    if (std::FILE *f = std::fopen("BENCH_trace.json", "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"benchmark\": \"gcc\",\n"
            "  \"jobs\": %u,\n"
            "  \"serialKips\": %.1f,\n"
            "  \"parallelKips\": %.1f,\n"
            "  \"baselineSerialKips\": %.1f,\n"
            "  \"walkerLegacyMips\": %.1f,\n"
            "  \"walkerTracedMips\": %.1f,\n"
            "  \"walkerReplaySpeedup\": %.3f,\n"
            "  \"coreLegacyKips\": %.1f,\n"
            "  \"coreTracedKips\": %.1f,\n"
            "  \"coreTracedSpeedup\": %.3f,\n"
            "  \"replayAllocs\": %llu,\n"
            "  \"tracedCoreAllocs\": %llu,\n"
            "  \"sweepProgramsCompiled\": %llu,\n"
            "  \"sweepProgramsShared\": %llu,\n"
            "  \"blocksCompiled\": %llu,\n"
            "  \"microOps\": %llu,\n"
            "  \"traceBytes\": %llu,\n"
            "  \"replayHitRate\": %.4f,\n"
            "  \"measuredCycles\": %llu\n"
            "}\n",
            jobs, serial_kips, par_kips, base_kips, wk_legacy.mips,
            wk_traced.mips,
            wk_legacy.mips > 0 ? wk_traced.mips / wk_legacy.mips
                               : 0.0,
            tc_legacy.kips, tc_traced.kips,
            tc_legacy.kips > 0 ? tc_traced.kips / tc_legacy.kips
                               : 0.0,
            static_cast<unsigned long long>(wk_traced.allocs),
            static_cast<unsigned long long>(tc_traced.allocs),
            static_cast<unsigned long long>(sweep_compiled),
            static_cast<unsigned long long>(sweep_shared),
            static_cast<unsigned long long>(tc_all.blocksCompiled),
            static_cast<unsigned long long>(tc_all.microOps),
            static_cast<unsigned long long>(tc_all.traceBytes),
            tc_all.replayHitRate(),
            static_cast<unsigned long long>(tc_traced.cycles));
        std::fclose(f);
        std::printf("wrote BENCH_trace.json\n");
    }

    std::printf("\n");

    // Sweep batching: --batch 1 vs the default batch width on a
    // fig10-shaped subset, legs interleaved, best of 3.
    const unsigned lanes = sim::defaultBatchLanes();
    const auto subset = makeBatchSubset(opts.budget,
                                        opts.budget.measure);
    double sweep_serial = 0.0, sweep_batched = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        sweep_serial =
            std::max(sweep_serial, timedBatchLeg(subset, 1));
        sweep_batched =
            std::max(sweep_batched, timedBatchLeg(subset, lanes));
    }

    std::printf("%-28s %14s\n", "sweep batching", "points/sec");
    std::printf("%-28s %14.1f\n", "serial (--batch 1)",
                sweep_serial);
    char blabel[48];
    std::snprintf(blabel, sizeof(blabel), "batched (--batch %u)",
                  lanes);
    std::printf("%-28s %14.1f\n", blabel, sweep_batched);
    std::printf("sweep-batch speedup: %.2fx over %zu points\n",
                sweep_serial > 0 ? sweep_batched / sweep_serial
                                 : 0.0,
                subset.size());

    // Batched-replay allocation gate: steady state as a delta, so
    // one-time pool growth during the first instructions of a lane
    // cancels out.
    size_t lanes_short = 0, lanes_long = 0;
    const uint64_t ba_short = batchDrainAllocs(
        opts.budget, opts.budget.measure, lanes, &lanes_short);
    const uint64_t ba_long = batchDrainAllocs(
        opts.budget, opts.budget.measure * 2, lanes, &lanes_long);
    const uint64_t batch_allocs =
        ba_long > ba_short ? ba_long - ba_short : 0;
    if (lanes_long != lanes_short || batch_allocs != 0) {
        std::printf("FAIL: batched replay allocated %llu times "
                    "across %zu lanes in the steady state\n",
                    static_cast<unsigned long long>(batch_allocs),
                    lanes_short);
        return 1;
    }
    std::printf("batched replay: zero steady-state allocations "
                "across %zu lanes\n",
                lanes_short);

    const std::string json_path =
        opts.jsonPath.empty() ? "BENCH_runner.json" : opts.jsonPath;
    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"jobs\": %u,\n"
            "  \"runs\": %zu,\n"
            "  \"serialKips\": %.1f,\n"
            "  \"parallelKips\": %.1f,\n"
            "  \"speedup\": %.3f,\n"
            "  \"legacyAllocsPerCycle\": %.4f,\n"
            "  \"legacyScratchGrowths\": %llu,\n"
            "  \"hoistedAllocsPerCycle\": %.4f,\n"
            "  \"hoistedScratchGrowths\": %llu,\n"
            "  \"portedAddedAllocs\": %llu,\n"
            "  \"portedPortStalls\": %llu,\n"
            "  \"measuredCycles\": %llu\n"
            "}\n",
            jobs, batch.size(), serial_kips, par_kips,
            par_kips / serial_kips, legacy.allocsPerCycle,
            static_cast<unsigned long long>(legacy.scratchGrowths),
            hoisted.allocsPerCycle,
            static_cast<unsigned long long>(hoisted.scratchGrowths),
            static_cast<unsigned long long>(arb_allocs),
            static_cast<unsigned long long>(ported.portStalls),
            static_cast<unsigned long long>(hoisted.cycles));
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
