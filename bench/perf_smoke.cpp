/**
 * @file
 * Simulator-throughput smoke test for the parallel experiment
 * runner and the cycle-loop hot-path work.
 *
 * Three measurements, printed as an ASCII table and written to
 * BENCH_runner.json:
 *
 *  1. Serial KIPS: simulated kilo-instructions committed per
 *     wall-clock second for a batch of runs on one thread.
 *  2. Parallel KIPS: the same batch through SimulationRunner with
 *     the requested --jobs (default hardware_concurrency).
 *  3. Cycle-loop allocations: heap allocations per simulated cycle
 *     and scratch-buffer regrowths in the measurement window with
 *     the legacy allocate-per-cycle path (hoistScratch=false)
 *     versus the hoisted member buffers (hoistScratch=true). The
 *     hoisted path must report zero steady-state regrowths.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/core.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"
#include "workload/program.hh"

namespace
{

/** Global allocation counter fed by the operator-new overrides. */
std::atomic<uint64_t> g_allocs{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace pri;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<sim::RunParams>
makeBatch(const bench::Budget &budget)
{
    std::vector<sim::RunParams> batch;
    for (const auto &name : bench::intBenchmarks()) {
        for (auto scheme :
             {sim::Scheme::Base, sim::Scheme::PriRefcountLazy}) {
            sim::RunParams p;
            p.benchmark = name;
            p.scheme = scheme;
            p.warmupInsts = budget.warmup;
            p.measureInsts = budget.measure;
            batch.push_back(p);
        }
    }
    return batch;
}

uint64_t
simulatedInsts(const std::vector<sim::RunResult> &results)
{
    uint64_t n = 0;
    for (const auto &r : results)
        n += r.insts;
    return n;
}

struct AllocProbe
{
    double allocsPerCycle = 0.0;
    uint64_t scratchGrowths = 0;
    uint64_t cycles = 0;
};

/** Measure steady-state heap traffic of the core's cycle loop. */
AllocProbe
probeCycleLoop(bool hoist, const bench::Budget &budget)
{
    const auto &profile = workload::profileByName("gzip");
    workload::SyntheticProgram program(profile, 11);

    const unsigned narrow = core::CoreConfig::narrowBitsForWidth(4);
    auto cfg = core::CoreConfig::fourWide(
        rename::RenameConfig::base(64, narrow));
    cfg.hoistScratch = hoist;

    StatGroup stats;
    core::OutOfOrderCore cpu(cfg, program, stats);

    // Warm up: any one-time buffer growth happens here.
    cpu.run(budget.warmup);
    cpu.beginMeasurement();

    const uint64_t c0 = cpu.cycles();
    const uint64_t g0 = static_cast<uint64_t>(
        stats.scalarValue("core.scratchGrowths"));
    const uint64_t a0 = g_allocs.load(std::memory_order_relaxed);

    cpu.run(budget.measure);

    AllocProbe probe;
    probe.cycles = cpu.cycles() - c0;
    probe.scratchGrowths = static_cast<uint64_t>(
        stats.scalarValue("core.scratchGrowths")) - g0;
    const uint64_t allocs =
        g_allocs.load(std::memory_order_relaxed) - a0;
    probe.allocsPerCycle = probe.cycles > 0
        ? static_cast<double>(allocs) /
            static_cast<double>(probe.cycles)
        : 0.0;
    return probe;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);
    const unsigned jobs =
        opts.jobs ? opts.jobs : sim::defaultJobs();

    std::printf("== Simulator throughput smoke test ==\n");
    std::printf("warmup %llu, measure %llu insts per run\n\n",
                static_cast<unsigned long long>(opts.budget.warmup),
                static_cast<unsigned long long>(
                    opts.budget.measure));

    const auto batch = makeBatch(opts.budget);

    auto t0 = Clock::now();
    const auto serial = sim::SimulationRunner(1).run(batch);
    const double serial_s = secondsSince(t0);
    const double serial_kips =
        simulatedInsts(serial) / serial_s / 1000.0;

    t0 = Clock::now();
    const auto par = sim::SimulationRunner(jobs).run(batch);
    const double par_s = secondsSince(t0);
    const double par_kips = simulatedInsts(par) / par_s / 1000.0;

    std::printf("%-28s %10s %10s\n", "configuration", "KIPS",
                "seconds");
    std::printf("%-28s %10.1f %10.2f\n", "serial (--jobs 1)",
                serial_kips, serial_s);
    char label[64];
    std::snprintf(label, sizeof(label), "parallel (--jobs %u)",
                  jobs);
    std::printf("%-28s %10.1f %10.2f\n", label, par_kips, par_s);
    std::printf("speedup: %.2fx over %zu runs\n\n",
                par_kips / serial_kips, batch.size());

    const auto legacy = probeCycleLoop(false, opts.budget);
    const auto hoisted = probeCycleLoop(true, opts.budget);

    std::printf("%-28s %14s %14s\n", "cycle-loop heap traffic",
                "allocs/cycle", "scratchGrowths");
    std::printf("%-28s %14.4f %14llu\n", "legacy (hoistScratch=off)",
                legacy.allocsPerCycle,
                static_cast<unsigned long long>(
                    legacy.scratchGrowths));
    std::printf("%-28s %14.4f %14llu\n", "hoisted (hoistScratch=on)",
                hoisted.allocsPerCycle,
                static_cast<unsigned long long>(
                    hoisted.scratchGrowths));
    if (hoisted.scratchGrowths != 0) {
        std::printf("FAIL: hoisted path regrew scratch buffers in "
                    "the measurement window\n");
        return 1;
    }
    std::printf("hoisted path: zero steady-state scratch "
                "allocations over %llu cycles\n",
                static_cast<unsigned long long>(hoisted.cycles));

    const std::string json_path =
        opts.jsonPath.empty() ? "BENCH_runner.json" : opts.jsonPath;
    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"jobs\": %u,\n"
            "  \"runs\": %zu,\n"
            "  \"serialKips\": %.1f,\n"
            "  \"parallelKips\": %.1f,\n"
            "  \"speedup\": %.3f,\n"
            "  \"legacyAllocsPerCycle\": %.4f,\n"
            "  \"legacyScratchGrowths\": %llu,\n"
            "  \"hoistedAllocsPerCycle\": %.4f,\n"
            "  \"hoistedScratchGrowths\": %llu,\n"
            "  \"measuredCycles\": %llu\n"
            "}\n",
            jobs, batch.size(), serial_kips, par_kips,
            par_kips / serial_kips, legacy.allocsPerCycle,
            static_cast<unsigned long long>(legacy.scratchGrowths),
            hoisted.allocsPerCycle,
            static_cast<unsigned long long>(hoisted.scratchGrowths),
            static_cast<unsigned long long>(hoisted.cycles));
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
