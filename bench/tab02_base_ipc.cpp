/**
 * @file
 * Table 2 reproduction: base-machine IPC for every SPEC2000-like
 * benchmark on the 4-wide and 8-wide models (64 INT + 64 FP physical
 * registers, Base register management).
 *
 * The paper's absolute IPCs come from real Alpha SPEC binaries; ours
 * come from the calibrated synthetic workloads, so the comparison
 * column shows how close the substitution lands.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pri;
    const auto opts = bench::parseOptions(argc, argv);
    const auto &budget = opts.budget;

    std::vector<std::string> all;
    for (const auto &prof : workload::allProfiles())
        all.push_back(prof.name);
    bench::prefetchGrid(all, {4, 8}, {sim::Scheme::Base}, opts);

    std::printf("=== Table 2: benchmark programs simulated "
                "(base IPC) ===\n\n");
    std::printf("%-10s %-6s %10s %10s | %10s %10s\n", "bench",
                "suite", "IPC(4w)", "paper", "IPC(8w)", "paper");

    for (const auto &prof : workload::allProfiles()) {
        const auto r4 = bench::runOne(prof.name, 4,
                                      sim::Scheme::Base, budget);
        const auto r8 = bench::runOne(prof.name, 8,
                                      sim::Scheme::Base, budget);
        std::printf("%-10s %-6s %10.2f %10.2f | %10.2f %10.2f\n",
                    prof.name.c_str(),
                    prof.suite == workload::Suite::Int ? "int"
                                                       : "fp",
                    r4.ipc, prof.paperIpc4, r8.ipc, prof.paperIpc8);
    }
    bench::writeJson(opts);
    return 0;
}
