/**
 * @file
 * Sweep-daemon throughput harness: the fig10 grid pushed through
 * (a) the in-process SimulationRunner, (b) a freshly started
 * pri_sweepd with an empty store (cold), and (c) the same daemon
 * again (warm — every point a store hit), written to
 * BENCH_sweepd.json.
 *
 * Two gates ride along:
 *  1. Daemon-served results (cold AND warm) must be byte-identical
 *     to the in-process reference — the daemon is a cache, never a
 *     result change.
 *  2. The warm pass must cost < 10% of the cold pass: the
 *     acceptance number for the PR.
 *
 * The daemon runs in-process (worker pool exec'd from this very
 * binary), so the harness needs no prior setup and cleans up after
 * itself.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"
#include "sweepd/client.hh"
#include "sweepd/daemon.hh"
#include "sweepd/worker.hh"

namespace
{

using namespace pri;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

const sim::Scheme kFig10Schemes[] = {
    sim::Scheme::Base,
    sim::Scheme::EarlyRelease,
    sim::Scheme::PriRefcountCkptcount,
    sim::Scheme::PriRefcountLazy,
    sim::Scheme::PriIdealCkptcount,
    sim::Scheme::PriIdealLazy,
    sim::Scheme::PriPlusEr,
    sim::Scheme::InfinitePregs,
};

/** The exact point list fig10_int_speedup prefetches. */
std::vector<sim::RunParams>
makeFig10Grid(const bench::Budget &budget)
{
    std::vector<sim::RunParams> grid;
    for (const auto &name : bench::intBenchmarks()) {
        for (unsigned width : {4u, 8u}) {
            for (auto scheme : kFig10Schemes) {
                for (uint64_t seed : bench::kSeeds) {
                    sim::RunParams p;
                    p.benchmark = name;
                    p.width = width;
                    p.scheme = scheme;
                    p.warmupInsts = budget.warmup;
                    p.measureInsts = budget.measure;
                    p.seed = seed;
                    grid.push_back(std::move(p));
                }
            }
        }
    }
    return grid;
}

/** Submit the grid through a fresh client; returns wall seconds.
 *  Dies loudly on any per-point failure. */
double
daemonLeg(const std::string &socket_path,
          const std::vector<sim::RunParams> &grid,
          std::vector<sim::RunResult> *results_out,
          size_t *cached_out)
{
    auto client = sweepd::SweepdClient::connect(socket_path);
    if (client == nullptr)
        fatal("cannot connect to in-process daemon");
    const auto t0 = Clock::now();
    const auto outcomes = client->submit(grid);
    const double secs = secondsSince(t0);
    size_t cached = 0;
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].ok()) {
            fatal("daemon failed point {} ({}): {}", i,
                  sim::paramsSummary(grid[i]), outcomes[i].error);
        }
        cached += outcomes[i].cached ? 1 : 0;
    }
    if (results_out != nullptr) {
        results_out->clear();
        for (const auto &o : outcomes)
            results_out->push_back(o.result);
    }
    if (cached_out != nullptr)
        *cached_out = cached;
    return secs;
}

/** Count report mismatches against the reference leg. */
size_t
mismatches(const std::vector<sim::RunParams> &grid,
           const std::vector<sim::RunResult> &ref,
           const std::vector<sim::RunResult> &got, const char *leg)
{
    size_t bad = 0;
    for (size_t i = 0; i < ref.size(); ++i) {
        if (ref[i].report != got[i].report) {
            ++bad;
            std::printf("REPORT MISMATCH (%s) at point %zu (%s)\n",
                        leg, i, sim::paramsSummary(grid[i]).c_str());
        }
    }
    return bad;
}

} // namespace

int
main(int argc, char **argv)
{
    // This binary hosts the daemon, whose worker pool respawns from
    // /proc/self/exe — dispatch before anything else.
    if (const int rc = sweepd::maybeRunAsWorker(argc, argv); rc >= 0)
        return rc;

    const auto opts = bench::parseOptions(argc, argv);
    const unsigned jobs =
        opts.jobs ? opts.jobs : sim::defaultJobs();

    const auto grid = makeFig10Grid(opts.budget);
    std::printf("== Sweep-daemon cold/warm throughput (fig10 grid) "
                "==\n");
    std::printf("%zu points, warmup %llu + measure %llu insts, "
                "%u workers\n\n",
                grid.size(),
                static_cast<unsigned long long>(opts.budget.warmup),
                static_cast<unsigned long long>(opts.budget.measure),
                jobs);

    // Reference leg: the in-process pool, same worker count.
    std::vector<sim::RunResult> reference;
    {
        sim::SimulationRunner runner(jobs);
        const auto t0 = Clock::now();
        reference = runner.run(grid);
        std::printf("in-process reference: %.2fs\n",
                    secondsSince(t0));
    }

    // Fresh daemon, empty store, scratch socket.
    const std::string scratch =
        "/tmp/pri_bench_sweepd." + std::to_string(::getpid());
    std::string rmcmd = "rm -rf '" + scratch + "'";
    if (std::system(rmcmd.c_str()) != 0)
        fatal("cannot clear {}", scratch);
    sweepd::DaemonConfig cfg;
    cfg.socketPath = scratch + ".sock";
    cfg.storeDir = scratch;
    cfg.workers = jobs;
    cfg.verbose = false;
    sweepd::Daemon daemon(cfg);
    if (!daemon.start())
        fatal("cannot start in-process daemon");

    std::vector<sim::RunResult> cold_results, warm_results;
    size_t cold_cached = 0, warm_cached = 0;
    const double cold_secs = daemonLeg(cfg.socketPath, grid,
                                       &cold_results, &cold_cached);
    const double warm_secs = daemonLeg(cfg.socketPath, grid,
                                       &warm_results, &warm_cached);
    const uint64_t simulated = daemon.stats().simulated.load();
    daemon.stop();
    if (std::system(rmcmd.c_str()) != 0)
        std::fprintf(stderr, "warning: %s not cleaned up\n",
                     scratch.c_str());

    size_t bad = mismatches(grid, reference, cold_results, "cold");
    bad += mismatches(grid, reference, warm_results, "warm");

    const double warm_frac =
        cold_secs > 0 ? warm_secs / cold_secs : 1.0;
    std::printf("\n%-24s %10s %12s\n", "leg", "seconds",
                "store hits");
    std::printf("%-24s %10.2f %9zu/%zu\n", "daemon cold", cold_secs,
                cold_cached, grid.size());
    std::printf("%-24s %10.2f %9zu/%zu\n", "daemon warm", warm_secs,
                warm_cached, grid.size());
    std::printf("warm/cold: %.1f%% (target < 10%%: %s)\n",
                100.0 * warm_frac,
                warm_frac < 0.10 ? "met" : "NOT met");
    std::printf("%s\n",
                bad == 0
                    ? "daemon reports byte-identical to in-process"
                    : "FAIL: daemon reports differ");

    const std::string json_path =
        opts.jsonPath.empty() ? "BENCH_sweepd.json" : opts.jsonPath;
    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"points\": %zu,\n"
            "  \"workers\": %u,\n"
            "  \"warmupInsts\": %llu,\n"
            "  \"measureInsts\": %llu,\n"
            "  \"coldSecs\": %.3f,\n"
            "  \"warmSecs\": %.3f,\n"
            "  \"warmOverCold\": %.4f,\n"
            "  \"coldStoreHits\": %zu,\n"
            "  \"warmStoreHits\": %zu,\n"
            "  \"simulated\": %llu,\n"
            "  \"reportsIdentical\": %s\n"
            "}\n",
            grid.size(), jobs,
            static_cast<unsigned long long>(opts.budget.warmup),
            static_cast<unsigned long long>(opts.budget.measure),
            cold_secs, warm_secs, warm_frac, cold_cached,
            warm_cached, static_cast<unsigned long long>(simulated),
            bad == 0 ? "true" : "false");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (bad != 0)
        return 1;
    if (warm_cached != grid.size()) {
        std::printf("FAIL: warm pass missed the store (%zu/%zu)\n",
                    warm_cached, grid.size());
        return 1;
    }
    return warm_frac < 0.10 ? 0 : 1;
}
