/**
 * @file
 * Table 1 reproduction: print the machine configurations exactly as
 * the simulator instantiates them, so configuration drift between
 * the paper's table and the code is visible at a glance.
 */

#include <cstdio>

#include "core/config.hh"

namespace
{

void
show(const char *title, const pri::core::CoreConfig &c)
{
    std::printf("-- %s --\n", title);
    std::printf("  %u-wide fetch/issue/commit, %u ROB, %u LSQ, "
                "%u-entry scheduler\n",
                c.width, c.robSize, c.lsqSize, c.schedSize);
    std::printf("  %u INT + %u FP physical registers\n",
                c.rename.numPhysRegs, c.rename.numPhysRegs);
    std::printf("  speculative scheduling with selective replay; "
                "fetch stops at first taken branch\n");
    std::printf("  FUs: %u intALU, %u intMul/Div, %u fpALU, "
                "%u fpMul/Div, %u memPorts\n",
                c.numIntAlu, c.numIntMultDiv, c.numFpAlu,
                c.numFpMultDiv, c.numMemPorts);
    std::printf("  pipeline: Fetch Decode | Rename | Queue Sched | "
                "Disp Disp RF RF | Exe | Retire | Commit\n");
    const auto &m = c.mem;
    std::printf("  IL1 %lluKB %u-way %uB (%u cyc), DL1 %lluKB "
                "%u-way %uB (%u cyc),\n",
                static_cast<unsigned long long>(
                    m.il1.sizeBytes / 1024),
                m.il1.assoc, m.il1.lineBytes, m.il1.latency,
                static_cast<unsigned long long>(
                    m.dl1.sizeBytes / 1024),
                m.dl1.assoc, m.dl1.lineBytes, m.dl1.latency);
    std::printf("  L2 %lluKB %u-way %uB (%u cyc), memory %u cyc\n",
                static_cast<unsigned long long>(
                    m.l2.sizeBytes / 1024),
                m.l2.assoc, m.l2.lineBytes, m.l2.latency,
                m.memLatency);
    std::printf("  branch: bimodal(4k)+gshare(4k)+selector(4k), "
                "16-entry RAS, 1k 4-way BTB\n");
    std::printf("  PRI: integer values with %u or fewer significant "
                "bits inline into the map;\n"
                "       FP values inline only when all zeroes or "
                "ones\n\n",
                pri::core::CoreConfig::narrowBitsForWidth(c.width));
}

} // namespace

int
main()
{
    std::printf("=== Table 1: machine configurations ===\n\n");
    const auto rn4 = pri::rename::RenameConfig::base(
        64, pri::core::CoreConfig::narrowBitsForWidth(4));
    const auto rn8 = pri::rename::RenameConfig::base(
        64, pri::core::CoreConfig::narrowBitsForWidth(8));
    show("4-wide (current generation)",
         pri::core::CoreConfig::fourWide(rn4));
    show("8-wide (future machine)",
         pri::core::CoreConfig::eightWide(rn8));
    return 0;
}
