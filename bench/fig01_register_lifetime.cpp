/**
 * @file
 * Figure 1 reproduction: average physical register lifetime for the
 * SPEC2000-integer-like workloads on the base 4-wide and 8-wide
 * machines (64 physical registers), broken into the three phases —
 * allocate->write, write->last read, last read->release. The paper's
 * point: phase 3 dominates, which is the opportunity PRI attacks.
 */

#include <cstdio>

#include "bench_util.hh"

namespace
{

void
runWidth(unsigned width, const pri::bench::Options &opts)
{
    using namespace pri;
    const auto &budget = opts.budget;
    std::printf("width %u\n", width);
    std::printf("%-10s %12s %14s %16s %8s\n", "bench",
                "alloc->write", "write->lastread",
                "lastread->release", "total");
    std::vector<double> p1s, p2s, p3s;
    for (const auto &name : bench::intBenchmarks()) {
        const auto r =
            bench::runOne(name, width, sim::Scheme::Base, budget);
        const double total = r.lifeAllocToWrite +
            r.lifeWriteToLastRead + r.lifeLastReadToRelease;
        std::printf("%-10s %12.1f %14.1f %16.1f %8.1f\n",
                    name.c_str(), r.lifeAllocToWrite,
                    r.lifeWriteToLastRead, r.lifeLastReadToRelease,
                    total);
        p1s.push_back(r.lifeAllocToWrite);
        p2s.push_back(r.lifeWriteToLastRead);
        p3s.push_back(r.lifeLastReadToRelease);
    }
    const double m1 = bench::mean(p1s);
    const double m2 = bench::mean(p2s);
    const double m3 = bench::mean(p3s);
    std::printf("%-10s %12.1f %14.1f %16.1f %8.1f\n", "mean", m1,
                m2, m3, m1 + m2 + m3);
    std::printf("phase3 share of lifetime: %.0f%%  (paper: "
                "\"average register lifetime is dominated by "
                "phase 3\")\n\n",
                100.0 * m3 / (m1 + m2 + m3));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = pri::bench::parseOptions(argc, argv);
    return pri::bench::runSweepGrid(
        pri::bench::SweepGrid{
            "=== Figure 1: average register lifetime, base "
            "machine, 64 PR ===\n\n",
            pri::bench::intBenchmarks(),
            {4, 8},
            {pri::sim::Scheme::Base}},
        opts, [&](unsigned w) { runWidth(w, opts); });
}
