/**
 * @file
 * Ablation: interaction of PRI with scheduler size (paper §5.2:
 * "when the issue queue limit is removed, it is clearly seen that
 * limited physical registers are a major bottleneck"). Sweeps the
 * scheduler from 16 to 512 entries on the 4-wide machine and shows
 * Base and PRI IPC plus the PRI speedup at each point.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/core.hh"
#include "workload/program.hh"

namespace
{

double
runSched(const std::string &bench, unsigned sched, bool pri_on,
         const pri::bench::Budget &budget)
{
    using namespace pri;
    double ipc_sum = 0.0;
    for (uint64_t seed : bench::kSeeds) {
        workload::SyntheticProgram prog(
            workload::profileByName(bench), seed);
        auto rc = pri_on
            ? rename::RenameConfig::priRefcountCkptcount(64, 7)
            : rename::RenameConfig::base(64, 7);
        auto cfg = core::CoreConfig::fourWide(rc);
        cfg.schedSize = sched;
        StatGroup stats;
        core::OutOfOrderCore cpu(cfg, prog, stats);
        cpu.run(budget.warmup);
        cpu.beginMeasurement();
        cpu.run(budget.measure);
        ipc_sum += cpu.ipc();
    }
    return ipc_sum / std::size(pri::bench::kSeeds);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pri;
    const auto budget = bench::parseBudget(argc, argv);
    const unsigned sizes[] = {16, 32, 64, 128, 512};
    const std::string benches[] = {"gzip", "equake", "gcc"};

    std::printf("=== Ablation: scheduler size vs PRI benefit "
                "(4-wide, 64 PR) ===\n\n");
    for (const auto &b : benches) {
        std::printf("%s\n%8s %10s %10s %10s\n", b.c_str(), "sched",
                    "IPC(Base)", "IPC(PRI)", "speedup");
        for (unsigned s : sizes) {
            const double base = runSched(b, s, false, budget);
            const double pri = runSched(b, s, true, budget);
            std::printf("%8u %10.3f %10.3f %9.1f%%\n", s, base, pri,
                        100.0 * (pri / base - 1.0));
        }
        std::printf("\n");
    }
    std::printf("paper: the 32-entry scheduler caps 4-wide gains; "
                "larger schedulers shift the bottleneck to the "
                "register file, where PRI helps more\n");
    return 0;
}
