/**
 * @file
 * Ablation: interaction of PRI with scheduler size (paper §5.2:
 * "when the issue queue limit is removed, it is clearly seen that
 * limited physical registers are a major bottleneck"). Sweeps the
 * scheduler from 16 to 512 entries on the 4-wide machine and shows
 * Base and PRI IPC plus the PRI speedup at each point.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/core.hh"
#include "workload/program.hh"

namespace
{

double
runSched(const std::string &bench, unsigned sched, bool pri_on,
         const pri::bench::Budget &budget)
{
    using namespace pri;
    double ipc_sum = 0.0;
    for (uint64_t seed : bench::kSeeds) {
        workload::SyntheticProgram prog(
            workload::profileByName(bench), seed);
        auto rc = pri_on
            ? rename::RenameConfig::priRefcountCkptcount(64, 7)
            : rename::RenameConfig::base(64, 7);
        auto cfg = core::CoreConfig::fourWide(rc);
        cfg.schedSize = sched;
        StatGroup stats;
        core::OutOfOrderCore cpu(cfg, prog, stats);
        cpu.run(budget.warmup);
        cpu.beginMeasurement();
        cpu.run(budget.measure);
        ipc_sum += cpu.ipc();
    }
    return ipc_sum / std::size(pri::bench::kSeeds);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pri;
    const auto opts = bench::parseOptions(argc, argv);
    const auto &budget = opts.budget;
    const unsigned sizes[] = {16, 32, 64, 128, 512};
    const std::string benches[] = {"gzip", "equake", "gcc"};

    std::printf("=== Ablation: scheduler size vs PRI benefit "
                "(4-wide, 64 PR) ===\n\n");

    // Flatten the (bench x sched x {Base,PRI}) grid into jobs for
    // the runner; print the tables in order afterwards.
    const size_t n_cells = std::size(benches) * std::size(sizes);
    std::vector<double> base_ipc(n_cells), pri_ipc(n_cells);
    sim::SimulationRunner(opts.jobs).forEach(
        n_cells * 2, [&](size_t i) {
            const size_t cell = i / 2;
            const auto &b = benches[cell / std::size(sizes)];
            const unsigned s = sizes[cell % std::size(sizes)];
            if (i % 2 == 0)
                base_ipc[cell] = runSched(b, s, false, budget);
            else
                pri_ipc[cell] = runSched(b, s, true, budget);
        });

    for (size_t bi = 0; bi < std::size(benches); ++bi) {
        std::printf("%s\n%8s %10s %10s %10s\n", benches[bi].c_str(),
                    "sched", "IPC(Base)", "IPC(PRI)", "speedup");
        for (size_t si = 0; si < std::size(sizes); ++si) {
            const size_t cell = bi * std::size(sizes) + si;
            const double base = base_ipc[cell];
            const double pri = pri_ipc[cell];
            std::printf("%8u %10.3f %10.3f %9.1f%%\n", sizes[si],
                        base, pri, 100.0 * (pri / base - 1.0));
        }
        std::printf("\n");
    }
    std::printf("paper: the 32-entry scheduler caps 4-wide gains; "
                "larger schedulers shift the bottleneck to the "
                "register file, where PRI helps more\n");
    return 0;
}
