/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot
 * components: significance checks, the map table, the free list,
 * cache lookups, branch prediction, workload generation, and
 * end-to-end simulation throughput. These guard the simulator's own
 * performance (sim-speed regressions make the experiment harnesses
 * painful), not the paper's results.
 */

#include <benchmark/benchmark.h>

#include "branch/predictor.hh"
#include "common/bitutils.hh"
#include "core/core.hh"
#include "memory/cache.hh"
#include "rename/free_list.hh"
#include "rename/map_table.hh"
#include "workload/walker.hh"

namespace
{

using namespace pri;

void
BM_SignificanceCheck(benchmark::State &state)
{
    uint64_t v = 0x12345;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fitsInSignedBits(v, 7));
        v = v * 6364136223846793005ULL + 1;
    }
}
BENCHMARK(BM_SignificanceCheck);

void
BM_MapTableReadWrite(benchmark::State &state)
{
    rename::RamMapTable map;
    unsigned i = 0;
    for (auto _ : state) {
        map.write(i & 31, rename::MapEntry::makePreg(
                              static_cast<isa::PhysRegId>(i & 63)));
        benchmark::DoNotOptimize(map.read((i + 7) & 31));
        ++i;
    }
}
BENCHMARK(BM_MapTableReadWrite);

void
BM_MapTableCheckpoint(benchmark::State &state)
{
    rename::RamMapTable map;
    for (auto _ : state) {
        auto snap = map.copy();
        benchmark::DoNotOptimize(snap);
    }
}
BENCHMARK(BM_MapTableCheckpoint);

void
BM_FreeListAllocFree(benchmark::State &state)
{
    rename::FreeList fl(64, 32);
    for (auto _ : state) {
        const auto p = fl.allocate();
        fl.free(p);
    }
}
BENCHMARK(BM_FreeListAllocFree);

void
BM_CacheAccess(benchmark::State &state)
{
    memory::Cache dl1(memory::CacheParams{"dl1", 32768, 4, 16, 2});
    uint64_t a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dl1.access(a & 0xffff));
        a += 48;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPredict(benchmark::State &state)
{
    branch::CombinedPredictor p;
    uint64_t pc = 0x1000;
    for (auto _ : state) {
        auto tok = p.predict(pc);
        p.update(pc, tok.predTaken, tok);
        pc += 4;
    }
}
BENCHMARK(BM_BranchPredict);

void
BM_WalkerGenerate(benchmark::State &state)
{
    workload::SyntheticProgram prog(
        workload::profileByName("gzip"), 1);
    workload::Walker w(prog);
    for (auto _ : state) {
        auto wi = w.next();
        if (wi.isBranch())
            w.steer(wi, wi.taken, wi.actualTarget);
        benchmark::DoNotOptimize(wi);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalkerGenerate);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    // Whole-core simulation throughput in committed instructions/s.
    workload::SyntheticProgram prog(
        workload::profileByName("gzip"), 1);
    const auto cfg = core::CoreConfig::fourWide(
        rename::RenameConfig::priRefcountCkptcount(64, 7));
    StatGroup stats;
    core::OutOfOrderCore cpu(cfg, prog, stats);
    for (auto _ : state)
        cpu.run(1000);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
