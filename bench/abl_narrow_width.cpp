/**
 * @file
 * Ablation: sensitivity of PRI to the narrow-value width (the
 * map-entry size). The paper fixes 7 bits for the 4-wide model and
 * 10 bits for the 8-wide model (§4, "a slight increase in the map
 * table entry size seems reasonable"); this sweep shows what other
 * widths would have bought, per benchmark class.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/core.hh"
#include "workload/program.hh"

namespace
{

double
runWithNarrowBits(const std::string &bench, unsigned narrow_bits,
                  const pri::bench::Budget &budget, bool pri_on)
{
    using namespace pri;
    double ipc_sum = 0.0;
    for (uint64_t seed : bench::kSeeds) {
        workload::SyntheticProgram prog(
            workload::profileByName(bench), seed);
        auto rc = pri_on
            ? rename::RenameConfig::priRefcountCkptcount(
                  64, narrow_bits)
            : rename::RenameConfig::base(64, narrow_bits);
        StatGroup stats;
        core::OutOfOrderCore cpu(core::CoreConfig::fourWide(rc),
                                 prog, stats);
        cpu.run(budget.warmup);
        cpu.beginMeasurement();
        cpu.run(budget.measure);
        ipc_sum += cpu.ipc();
    }
    return ipc_sum / std::size(pri::bench::kSeeds);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pri;
    const auto opts = bench::parseOptions(argc, argv);
    const auto &budget = opts.budget;
    const unsigned widths[] = {4, 7, 8, 10, 12, 16};
    const std::string benches[] = {"gzip", "crafty", "mcf", "gcc"};

    std::printf("=== Ablation: PRI speedup vs narrow-value width "
                "(4-wide, 64 PR) ===\n\n");
    std::printf("%-10s", "bench");
    for (unsigned w : widths)
        std::printf(" %7ub", w);
    std::printf("\n");

    // One job per cell (plus one Base per row), fanned out across
    // the runner; rows print in order afterwards.
    struct Job
    {
        std::string bench;
        unsigned narrowBits;
        bool priOn;
    };
    std::vector<Job> jobs;
    for (const auto &b : benches) {
        jobs.push_back(Job{b, 7, false});
        for (unsigned w : widths)
            jobs.push_back(Job{b, w, true});
    }
    std::vector<double> ipc(jobs.size());
    sim::SimulationRunner(opts.jobs).forEach(
        jobs.size(), [&](size_t i) {
            ipc[i] = runWithNarrowBits(jobs[i].bench,
                                       jobs[i].narrowBits, budget,
                                       jobs[i].priOn);
        });

    size_t j = 0;
    for (const auto &b : benches) {
        const double base = ipc[j++];
        std::printf("%-10s", b.c_str());
        for (size_t k = 0; k < std::size(widths); ++k)
            std::printf(" %7.3f", ipc[j++] / base);
        std::printf("\n");
    }
    std::printf("\npaper choice: 7 bits at 4-wide (8-bit map entry "
                "minus the mode bit)\n");
    return 0;
}
