/**
 * @file
 * Figure 8 reproduction: reduction in average register lifetime.
 * For each SPECint-like workload and both machine widths, print the
 * three lifetime phases for the baseline, for PRI
 * (refcount+ckptcount), and for PRI combined with early release.
 */

#include <cstdio>

#include "bench_util.hh"

namespace
{

void
runWidth(unsigned width, const pri::bench::Options &opts)
{
    using namespace pri;
    const auto &budget = opts.budget;
    std::printf("width %u  (columns: alloc->write / "
                "write->lastread / lastread->release)\n",
                width);
    std::printf("%-10s | %-22s | %-22s | %-22s\n", "bench", "Base",
                "PRI(ref+ckpt)", "PRI+ER");

    std::vector<double> base_tot, pri_tot, prier_tot;
    for (const auto &name : bench::intBenchmarks()) {
        const auto b =
            bench::runOne(name, width, sim::Scheme::Base, budget);
        const auto p = bench::runOne(
            name, width, sim::Scheme::PriRefcountCkptcount, budget);
        const auto pe = bench::runOne(name, width,
                                      sim::Scheme::PriPlusEr,
                                      budget);
        auto fmt = [](const sim::RunResult &r) {
            static char buf[2][40];
            static int which = 0;
            which ^= 1;
            std::snprintf(buf[which], sizeof(buf[which]),
                          "%5.1f /%6.1f /%6.1f", r.lifeAllocToWrite,
                          r.lifeWriteToLastRead,
                          r.lifeLastReadToRelease);
            return buf[which];
        };
        std::printf("%-10s | %s", name.c_str(), fmt(b));
        std::printf(" | %s", fmt(p));
        std::printf(" | %s\n", fmt(pe));
        base_tot.push_back(b.lifeAllocToWrite +
                           b.lifeWriteToLastRead +
                           b.lifeLastReadToRelease);
        pri_tot.push_back(p.lifeAllocToWrite +
                          p.lifeWriteToLastRead +
                          p.lifeLastReadToRelease);
        prier_tot.push_back(pe.lifeAllocToWrite +
                            pe.lifeWriteToLastRead +
                            pe.lifeLastReadToRelease);
    }
    std::printf("mean total lifetime: Base %.1f  PRI %.1f  "
                "PRI+ER %.1f cycles\n\n",
                bench::mean(base_tot), bench::mean(pri_tot),
                bench::mean(prier_tot));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = pri::bench::parseOptions(argc, argv);
    return pri::bench::runSweepGrid(
        pri::bench::SweepGrid{
            "=== Figure 8: reduction in register lifetime ===\n"
            "(paper: PRI collapses the dominant last-read->"
            "release phase; PRI+ER trims further)\n\n",
            pri::bench::intBenchmarks(),
            {4, 8},
            {pri::sim::Scheme::Base,
             pri::sim::Scheme::PriRefcountCkptcount,
             pri::sim::Scheme::PriPlusEr}},
        opts, [&](unsigned w) { runWidth(w, opts); });
}
