/**
 * @file
 * Figure 12 reproduction: PRI speedup for the SPEC2000-fp-like
 * workloads (same scheme panel as Figure 10). The paper's FP
 * inlining rule only captures values that are entirely zeroes or
 * ones, which roughly half of all FP operands satisfy.
 */

#include <cstdio>

#include "bench_util.hh"

namespace
{

const pri::sim::Scheme kPanel[] = {
    pri::sim::Scheme::EarlyRelease,
    pri::sim::Scheme::PriRefcountCkptcount,
    pri::sim::Scheme::PriRefcountLazy,
    pri::sim::Scheme::PriIdealCkptcount,
    pri::sim::Scheme::PriIdealLazy,
    pri::sim::Scheme::PriPlusEr,
    pri::sim::Scheme::InfinitePregs,
};

void
runPanel(unsigned width, const pri::bench::Options &opts)
{
    using namespace pri;
    const auto &budget = opts.budget;
    std::printf("width %u  (IPC speedup over Base)\n", width);
    std::printf("%-10s", "bench");
    for (auto s : kPanel)
        std::printf(" %22s", sim::schemeName(s));
    std::printf("\n");

    std::vector<std::vector<double>> cols(std::size(kPanel));
    for (const auto &name : bench::fpBenchmarks()) {
        const auto base =
            bench::runOne(name, width, sim::Scheme::Base, budget);
        std::printf("%-10s", name.c_str());
        for (size_t i = 0; i < std::size(kPanel); ++i) {
            const auto r =
                bench::runOne(name, width, kPanel[i], budget);
            const double sp = r.ipc / base.ipc;
            cols[i].push_back(sp);
            std::printf(" %22.3f", sp);
        }
        std::printf("\n");
    }
    std::printf("%-10s", "geomean");
    for (size_t i = 0; i < std::size(kPanel); ++i)
        std::printf(" %22.3f", bench::geomean(cols[i]));
    std::printf("\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pri;
    const auto opts = bench::parseOptions(argc, argv);
    std::vector<sim::Scheme> schemes{sim::Scheme::Base};
    schemes.insert(schemes.end(), std::begin(kPanel),
                   std::end(kPanel));
    return bench::runSweepGrid(
        bench::SweepGrid{
            "=== Figure 12: PRI speedup, floating point "
            "benchmarks ===\n(paper averages: PRI ref+ckpt "
            "+12.0% @4w / +25.2% @8w, PRI+ER "
            "+14.3%/+35.3%)\n\n",
            bench::fpBenchmarks(),
            {4, 8},
            schemes},
        opts, [&](unsigned w) { runPanel(w, opts); });
}
