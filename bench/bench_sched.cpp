/**
 * @file
 * Wakeup/select throughput bench: legacy polling vs event-driven
 * wakeup (CoreConfig::eventWakeup), written to BENCH_sched.json.
 *
 * Three measurements:
 *
 *  1. Serial KIPS for the perf_smoke run batch with the event path
 *     on (the default), compared against the committed
 *     BENCH_runner.json serialKips baseline.
 *  2. gcc on the 4-wide preset, legacy vs event: KIPS plus the
 *     WakeupTelemetry counters (select scans per cycle, select-pool
 *     occupancy, broadcasts, ready-list inserts).
 *  3. A scheduler-pressure configuration — the 8-wide preset's
 *     512-entry scheduler with a 256-entry register file, where
 *     polling walks hundreds of waiting entries per cycle — same
 *     comparison.
 *
 * The event path must allocate nothing in the measurement window
 * (same zero-steady-state-allocation bar as perf_smoke).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/core.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"
#include "workload/program.hh"

namespace
{

/** Global allocation counter fed by the operator-new overrides. */
std::atomic<uint64_t> g_allocs{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace pri;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** The perf_smoke serial batch (same grid, for a comparable KIPS). */
std::vector<sim::RunParams>
makeBatch(const bench::Budget &budget)
{
    std::vector<sim::RunParams> batch;
    for (const auto &name : bench::intBenchmarks()) {
        for (auto scheme :
             {sim::Scheme::Base, sim::Scheme::PriRefcountLazy}) {
            sim::RunParams p;
            p.benchmark = name;
            p.scheme = scheme;
            p.warmupInsts = budget.warmup;
            p.measureInsts = budget.measure;
            batch.push_back(p);
        }
    }
    return batch;
}

uint64_t
simulatedInsts(const std::vector<sim::RunResult> &results)
{
    uint64_t n = 0;
    for (const auto &r : results)
        n += r.insts;
    return n;
}

struct SchedProbe
{
    double kips = 0.0;
    uint64_t cycles = 0;
    uint64_t insts = 0;
    uint64_t allocs = 0;
    double selectScansPerCycle = 0.0; ///< entries select examined
    double selectPoolOcc = 0.0;       ///< avg select-pool size
    double broadcastsPerCycle = 0.0;  ///< event path only
    double readyInsertsPer1k = 0.0;   ///< per 1k committed insts
};

/** One core run with the given wakeup implementation. */
SchedProbe
probeSched(bool event_wakeup, const std::string &benchmark,
           bool sched_pressure, const bench::Budget &budget)
{
    const auto &profile = workload::profileByName(benchmark);
    workload::SyntheticProgram program(profile, 11);

    core::CoreConfig cfg;
    if (sched_pressure) {
        // The 8-wide preset's 512-entry scheduler with a PRF large
        // enough to keep it populated: polling walks the whole
        // waiting set every cycle.
        const unsigned narrow =
            core::CoreConfig::narrowBitsForWidth(8);
        cfg = core::CoreConfig::eightWide(
            rename::RenameConfig::base(256, narrow));
    } else {
        const unsigned narrow =
            core::CoreConfig::narrowBitsForWidth(4);
        cfg = core::CoreConfig::fourWide(
            rename::RenameConfig::base(64, narrow));
    }
    cfg.eventWakeup = event_wakeup;

    StatGroup stats;
    core::OutOfOrderCore cpu(cfg, program, stats);

    // Warm up past all one-time buffer growth.
    cpu.run(budget.warmup);
    cpu.beginMeasurement();

    const uint64_t c0 = cpu.cycles();
    const uint64_t i0 = cpu.committedInsts();
    const core::WakeupTelemetry w0 = cpu.wakeupTelemetry();
    const uint64_t a0 = g_allocs.load(std::memory_order_relaxed);

    const auto t0 = Clock::now();
    cpu.run(budget.measure);
    const double secs = secondsSince(t0);

    SchedProbe probe;
    probe.cycles = cpu.cycles() - c0;
    probe.insts = cpu.committedInsts() - i0;
    probe.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    probe.kips = secs > 0
        ? static_cast<double>(probe.insts) / secs / 1000.0
        : 0.0;
    const core::WakeupTelemetry &w1 = cpu.wakeupTelemetry();
    const double cyc = static_cast<double>(probe.cycles);
    if (probe.cycles > 0) {
        probe.selectScansPerCycle =
            static_cast<double>(w1.selectScans - w0.selectScans) /
            cyc;
        probe.selectPoolOcc =
            static_cast<double>(w1.readyOccAccum -
                                w0.readyOccAccum) /
            cyc;
        probe.broadcastsPerCycle =
            static_cast<double>(w1.broadcasts - w0.broadcasts) /
            cyc;
    }
    if (probe.insts > 0) {
        probe.readyInsertsPer1k =
            static_cast<double>(w1.readyInserts - w0.readyInserts) /
            (static_cast<double>(probe.insts) / 1000.0);
    }
    return probe;
}

/** serialKips from the committed BENCH_runner.json, or 0. */
double
baselineSerialKips()
{
    // Prefer the repo copy: when run from the build tree, the CWD
    // file is a leftover of a previous run, not the baseline.
    for (const char *path :
         {"../BENCH_runner.json", "BENCH_runner.json"}) {
        std::FILE *f = std::fopen(path, "r");
        if (!f)
            continue;
        char buf[4096];
        const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
        std::fclose(f);
        buf[n] = '\0';
        if (const char *p = std::strstr(buf, "\"serialKips\":"))
            return std::atof(p + std::strlen("\"serialKips\":"));
    }
    return 0.0;
}

void
printPair(const char *label, const SchedProbe &legacy,
          const SchedProbe &event)
{
    std::printf("%-28s %10s %10s %10s %10s %12s\n", label, "KIPS",
                "scans/cyc", "pool occ", "bcast/cyc", "inserts/1k");
    std::printf("%-28s %10.1f %10.2f %10.2f %10s %12s\n",
                "legacy (poll everything)", legacy.kips,
                legacy.selectScansPerCycle, legacy.selectPoolOcc,
                "-", "-");
    std::printf("%-28s %10.1f %10.2f %10.2f %10.2f %12.1f\n",
                "event (consumer lists)", event.kips,
                event.selectScansPerCycle, event.selectPoolOcc,
                event.broadcastsPerCycle, event.readyInsertsPer1k);
    std::printf("speedup: %.2fx\n\n",
                legacy.kips > 0 ? event.kips / legacy.kips : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto opts = bench::parseOptions(argc, argv);

    std::printf("== Wakeup/select throughput bench ==\n");
    std::printf("warmup %llu, measure %llu insts per run\n\n",
                static_cast<unsigned long long>(opts.budget.warmup),
                static_cast<unsigned long long>(
                    opts.budget.measure));

    const double base_kips = baselineSerialKips();

    // Serial batch with the event path on (the default), matching
    // perf_smoke's serial measurement for a comparable number.
    const auto batch = makeBatch(opts.budget);
    const auto t0 = Clock::now();
    const auto serial = sim::SimulationRunner(1).run(batch);
    const double serial_s = secondsSince(t0);
    const double serial_kips =
        simulatedInsts(serial) / serial_s / 1000.0;

    std::printf("serial batch (event wakeup): %.1f KIPS over %zu "
                "runs\n",
                serial_kips, batch.size());
    if (base_kips > 0.0) {
        std::printf("baseline BENCH_runner.json serialKips %.1f -> "
                    "%.1f (%.2fx)\n",
                    base_kips, serial_kips,
                    serial_kips / base_kips);
    }
    std::printf("\n");

    const auto gcc_legacy =
        probeSched(false, "gcc", false, opts.budget);
    const auto gcc_event =
        probeSched(true, "gcc", false, opts.budget);
    printPair("gcc (4-wide, sched 32)", gcc_legacy, gcc_event);

    const auto sp_legacy =
        probeSched(false, "gcc", true, opts.budget);
    const auto sp_event = probeSched(true, "gcc", true, opts.budget);
    printPair("gcc (8-wide, sched 512)", sp_legacy, sp_event);

    if (gcc_event.allocs != 0 || sp_event.allocs != 0) {
        std::printf("FAIL: event wakeup allocated in the "
                    "measurement window (%llu + %llu allocs)\n",
                    static_cast<unsigned long long>(
                        gcc_event.allocs),
                    static_cast<unsigned long long>(sp_event.allocs));
        return 1;
    }
    std::printf("event path: zero steady-state allocations over "
                "%llu + %llu cycles\n",
                static_cast<unsigned long long>(gcc_event.cycles),
                static_cast<unsigned long long>(sp_event.cycles));

    const std::string json_path =
        opts.jsonPath.empty() ? "BENCH_sched.json" : opts.jsonPath;
    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"serialKips\": %.1f,\n"
            "  \"baselineSerialKips\": %.1f,\n"
            "  \"serialSpeedup\": %.3f,\n"
            "  \"gccLegacyKips\": %.1f,\n"
            "  \"gccEventKips\": %.1f,\n"
            "  \"gccSpeedup\": %.3f,\n"
            "  \"gccLegacyScansPerCycle\": %.2f,\n"
            "  \"gccEventScansPerCycle\": %.2f,\n"
            "  \"gccLegacyPoolOcc\": %.2f,\n"
            "  \"gccEventPoolOcc\": %.2f,\n"
            "  \"gccEventBroadcastsPerCycle\": %.2f,\n"
            "  \"gccEventReadyInsertsPer1k\": %.1f,\n"
            "  \"pressureLegacyKips\": %.1f,\n"
            "  \"pressureEventKips\": %.1f,\n"
            "  \"pressureSpeedup\": %.3f,\n"
            "  \"pressureLegacyScansPerCycle\": %.2f,\n"
            "  \"pressureEventScansPerCycle\": %.2f,\n"
            "  \"pressureLegacyPoolOcc\": %.2f,\n"
            "  \"pressureEventPoolOcc\": %.2f,\n"
            "  \"pressureEventBroadcastsPerCycle\": %.2f,\n"
            "  \"pressureEventReadyInsertsPer1k\": %.1f,\n"
            "  \"eventAllocs\": %llu\n"
            "}\n",
            serial_kips, base_kips,
            base_kips > 0 ? serial_kips / base_kips : 0.0,
            gcc_legacy.kips, gcc_event.kips,
            gcc_legacy.kips > 0 ? gcc_event.kips / gcc_legacy.kips
                                : 0.0,
            gcc_legacy.selectScansPerCycle,
            gcc_event.selectScansPerCycle, gcc_legacy.selectPoolOcc,
            gcc_event.selectPoolOcc, gcc_event.broadcastsPerCycle,
            gcc_event.readyInsertsPer1k, sp_legacy.kips,
            sp_event.kips,
            sp_legacy.kips > 0 ? sp_event.kips / sp_legacy.kips
                               : 0.0,
            sp_legacy.selectScansPerCycle,
            sp_event.selectScansPerCycle, sp_legacy.selectPoolOcc,
            sp_event.selectPoolOcc, sp_event.broadcastsPerCycle,
            sp_event.readyInsertsPer1k,
            static_cast<unsigned long long>(gcc_event.allocs +
                                            sp_event.allocs));
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
