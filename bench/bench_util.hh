/**
 * @file
 * Shared helpers for the experiment harnesses in bench/: common
 * instruction budgets, command-line options, the parallel sweep
 * prefetcher, table formatting, geometric means, and machine-
 * readable JSON output.
 *
 * Each bench binary regenerates one table or figure of the paper.
 * Instruction budgets are chosen so every binary finishes in tens of
 * seconds; pass --quick to shrink them further, --full to enlarge.
 *
 * Harnesses print their tables row by row but declare their full
 * experiment grid up front via prefetchGrid()/prefetchPoints().
 * The prefetcher fans every (benchmark × scheme × width × pregs ×
 * seed) point out across a sim::SimulationRunner thread pool
 * (--jobs N, default hardware_concurrency) and memoizes the
 * seed-averaged results; the subsequent runOne() calls in the
 * printing code hit the cache, so the emitted tables are
 * byte-identical to serial execution (--jobs 1).
 *
 * With --server PATH (or $PRI_SWEEPD) the uncached points go to a
 * running pri_sweepd daemon instead of the in-process pool: its
 * content-addressed store turns re-runs into cache hits that
 * persist across harness invocations and are shared between
 * concurrent harnesses. Results are bit-exact either way (PRIJ2
 * hexfloat round-trip), so --server never changes a single output
 * byte; an unreachable daemon degrades to the local path with a
 * warning on stderr.
 */

#ifndef PRI_BENCH_BENCH_UTIL_HH
#define PRI_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/logging.hh"
#include "sim/journal.hh"
#include "sim/runner.hh"
#include "sim/simulation.hh"
#include "sweepd/client.hh"
#include "workload/profile.hh"
#include "workload/trace/trace_cache.hh"

namespace pri::bench
{

/** Instruction budgets for one experiment run. */
struct Budget
{
    uint64_t warmup = 20000;
    uint64_t measure = 80000;
};

/** Parse --quick / --full from argv. */
inline Budget
parseBudget(int argc, char **argv)
{
    Budget b;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            b.warmup = 5000;
            b.measure = 20000;
        } else if (std::strcmp(argv[i], "--full") == 0) {
            b.warmup = 50000;
            b.measure = 250000;
        }
    }
    return b;
}

/** Common harness options: budgets, worker count, JSON sink,
 *  crash-resilience knobs. */
struct Options
{
    Budget budget;
    unsigned jobs = 0;     ///< worker threads; 0 = hardware_concurrency
    /** --batch K: sweep points simulated as lanes of one shared-
     *  workload batch per worker (sim/batch/sweep_batch.hh). 0 =
     *  auto (defaultBatchLanes); 1 = serial path. Byte-identical
     *  results either way; PRI_LEGACY_BATCH=1 forces 1. */
    unsigned batchLanes = 0;
    std::string jsonPath;  ///< --json FILE: machine-readable results
    std::string journalPath; ///< --journal FILE: resumable sweeps
    uint64_t timeoutMs = 0;  ///< --timeout-ms N: per-run wall budget
    unsigned retries = 0;    ///< --retries N: re-attempts per point
    unsigned backoffMs = 0;  ///< --backoff-ms N: sleep between tries
    /** --server PATH (default $PRI_SWEEPD): pri_sweepd socket to
     *  offload uncached points to; empty = in-process only. */
    std::string serverPath;
};

namespace detail
{

/** Process-wide resilience state the option parser arms and the
 *  prefetcher / runOne() consume: retry policy, per-run wall-clock
 *  budget, and (when --journal is given) the shared sweep journal. */
struct Resilience
{
    sim::RetryPolicy retry;
    uint64_t timeoutMs = 0;
    unsigned batchLanes = 0; ///< 0 = auto
    std::unique_ptr<sim::SweepJournal> journal;
    std::string serverPath; ///< pri_sweepd socket; "" = local only
    std::unique_ptr<sweepd::SweepdClient> client;
    bool clientTried = false; ///< warn-once / connect-once latch
};

inline Resilience &
resilience()
{
    static Resilience r;
    return r;
}

} // namespace detail

/** Parse --quick / --full / --jobs N / --json FILE / --journal FILE
 *  / --timeout-ms N / --retries N / --backoff-ms N / --server PATH
 *  from argv. Also installs the fatal-signal handlers so a crashed
 *  harness leaves a flight-recorder dump naming the run it died
 *  in. */
inline Options
parseOptions(int argc, char **argv)
{
    installCrashHandlers();
    Options o;
    o.budget = parseBudget(argc, argv);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            o.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--batch") == 0 &&
                   i + 1 < argc) {
            o.batchLanes =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--json") == 0 &&
                   i + 1 < argc) {
            o.jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--journal") == 0 &&
                   i + 1 < argc) {
            o.journalPath = argv[++i];
        } else if (std::strcmp(argv[i], "--timeout-ms") == 0 &&
                   i + 1 < argc) {
            o.timeoutMs =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (std::strcmp(argv[i], "--retries") == 0 &&
                   i + 1 < argc) {
            o.retries = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--backoff-ms") == 0 &&
                   i + 1 < argc) {
            o.backoffMs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--server") == 0 &&
                   i + 1 < argc) {
            o.serverPath = argv[++i];
        }
    }
    if (o.serverPath.empty()) {
        if (const char *env = std::getenv("PRI_SWEEPD"))
            o.serverPath = env;
    }
    auto &rz = detail::resilience();
    rz.retry = sim::RetryPolicy{o.retries + 1, o.backoffMs};
    rz.timeoutMs = o.timeoutMs;
    rz.batchLanes = o.batchLanes;
    rz.serverPath = o.serverPath;
    if (!o.journalPath.empty() && rz.journal == nullptr) {
        rz.journal =
            std::make_unique<sim::SweepJournal>(o.journalPath);
    }
    return o;
}

/** Program seeds every experiment point is averaged over. The same
 *  seeds are used for every scheme, so scheme-vs-scheme comparisons
 *  are paired and generator variance cancels. */
constexpr uint64_t kSeeds[] = {11, 22, 33};

/** One experiment grid point (seed-averaged over kSeeds). */
struct Point
{
    std::string bench;
    unsigned width = 4;
    sim::Scheme scheme = sim::Scheme::Base;
    unsigned pregs = 64;
    unsigned ports = 0; ///< PRF read ports; 0 = unlimited
};

namespace detail
{

/** Cache key: every RunParams field that affects the result
 *  (seed excluded — cached entries are seed averages). */
using PointKey = std::tuple<std::string, unsigned, int, unsigned,
                            uint64_t, uint64_t, unsigned>;

inline PointKey
keyOf(const Point &pt, const Budget &budget)
{
    return {pt.bench, pt.width, static_cast<int>(pt.scheme),
            pt.pregs, budget.warmup, budget.measure, pt.ports};
}

inline std::map<PointKey, sim::RunResult> &
resultCache()
{
    static std::map<PointKey, sim::RunResult> cache;
    return cache;
}

/** Every cached point in insertion order, for JSON output. */
inline std::vector<std::pair<PointKey, const sim::RunResult *>> &
jsonLog()
{
    static std::vector<std::pair<PointKey, const sim::RunResult *>> v;
    return v;
}

inline sim::RunParams
paramsFor(const Point &pt, const Budget &budget, uint64_t seed)
{
    sim::RunParams p;
    p.benchmark = pt.bench;
    p.width = pt.width;
    p.scheme = pt.scheme;
    p.physRegs = pt.pregs;
    p.prfReadPorts = pt.ports;
    p.warmupInsts = budget.warmup;
    p.measureInsts = budget.measure;
    p.seed = seed;
    // Wall-clock budget is machine-dependent and excluded from
    // paramsHash, so it never perturbs journal keys or results.
    p.timeoutMs = resilience().timeoutMs;
    return p;
}

/** Thread-pool runner armed with the harness retry policy and
 *  (when --journal was given) the shared sweep journal. */
inline sim::SimulationRunner
makeRunner(unsigned jobs)
{
    sim::SimulationRunner runner(jobs);
    runner.setBatchLanes(resilience().batchLanes);
    runner.setRetryPolicy(resilience().retry);
    runner.setJournal(resilience().journal.get());
    return runner;
}

/** Average per-seed results exactly as the serial harnesses always
 *  have (first result carries the labels and the report). */
inline sim::RunResult
averageResults(const std::vector<sim::RunResult> &rs)
{
    sim::RunResult acc;
    unsigned n = 0;
    for (const auto &r : rs) {
        if (n == 0) {
            acc = r;
        } else {
            acc.ipc += r.ipc;
            acc.cycles += r.cycles;
            acc.insts += r.insts;
            acc.avgIntOccupancy += r.avgIntOccupancy;
            acc.avgFpOccupancy += r.avgFpOccupancy;
            acc.lifeAllocToWrite += r.lifeAllocToWrite;
            acc.lifeWriteToLastRead += r.lifeWriteToLastRead;
            acc.lifeLastReadToRelease += r.lifeLastReadToRelease;
            acc.branchMispredictRate += r.branchMispredictRate;
            acc.dl1MissRate += r.dl1MissRate;
            acc.priEarlyFrees += r.priEarlyFrees;
            acc.erEarlyFrees += r.erEarlyFrees;
            acc.inlinedFrac += r.inlinedFrac;
            acc.portStallsPerKInst += r.portStallsPerKInst;
            acc.portInlineBypassFrac += r.portInlineBypassFrac;
        }
        ++n;
    }
    const double inv = 1.0 / n;
    acc.ipc *= inv;
    acc.avgIntOccupancy *= inv;
    acc.avgFpOccupancy *= inv;
    acc.lifeAllocToWrite *= inv;
    acc.lifeWriteToLastRead *= inv;
    acc.lifeLastReadToRelease *= inv;
    acc.branchMispredictRate *= inv;
    acc.dl1MissRate *= inv;
    acc.priEarlyFrees *= inv;
    acc.erEarlyFrees *= inv;
    acc.inlinedFrac *= inv;
    acc.portStallsPerKInst *= inv;
    acc.portInlineBypassFrac *= inv;
    return acc;
}

inline const sim::RunResult &
cacheInsert(const PointKey &key, sim::RunResult avg)
{
    auto [it, inserted] =
        resultCache().emplace(key, std::move(avg));
    if (inserted)
        jsonLog().emplace_back(it->first, &it->second);
    return it->second;
}

/** The lazily-connected pri_sweepd client; null when --server /
 *  $PRI_SWEEPD is absent or the daemon is unreachable (warned
 *  once). */
inline sweepd::SweepdClient *
daemonClient()
{
    auto &rz = resilience();
    if (!rz.clientTried) {
        rz.clientTried = true;
        if (!rz.serverPath.empty()) {
            rz.client = sweepd::SweepdClient::connect(rz.serverPath);
            if (rz.client == nullptr) {
                warn("no pri_sweepd on '{}'; simulating in-process",
                     rz.serverPath);
            }
        }
    }
    return rz.client.get();
}

/**
 * The one resilient batch executor behind prefetchPoints() and
 * runOne(). The journal prefilter is hoisted here — one key pass
 * per batch against the journal loaded once per process — and
 * feeds both execution paths: points still pending go to the
 * pri_sweepd daemon when one is configured and reachable (fresh
 * daemon results are recorded back into the journal so the two
 * caches never diverge), otherwise through the in-process
 * SimulationRunner. A daemon that fails a point — or the
 * connection dying mid-stream — degrades those points to the
 * local path, where the usual retry/fatal handling applies.
 * Results are bit-exact on every path, so emitted tables are
 * byte-identical with or without a daemon.
 */
inline std::vector<sim::RunResult>
runBatchResilient(const std::vector<sim::RunParams> &batch,
                  unsigned jobs)
{
    auto &rz = resilience();
    std::vector<sim::RunResult> results(batch.size());
    std::vector<uint64_t> keys(batch.size());
    std::vector<size_t> pending;
    pending.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
        keys[i] = sim::paramsHash(batch[i]);
        if (rz.journal != nullptr &&
            rz.journal->lookup(keys[i], results[i]))
            continue;
        pending.push_back(i);
    }
    if (pending.empty())
        return results;

    if (auto *client = daemonClient()) {
        std::vector<sim::RunParams> submit;
        submit.reserve(pending.size());
        for (size_t i : pending)
            submit.push_back(batch[i]);
        const auto outcomes = client->submit(submit);
        std::vector<size_t> still;
        for (size_t k = 0; k < pending.size(); ++k) {
            const size_t i = pending[k];
            if (outcomes[k].ok()) {
                results[i] = outcomes[k].result;
                if (rz.journal != nullptr)
                    rz.journal->record(keys[i], results[i]);
            } else {
                still.push_back(i);
            }
        }
        pending.swap(still);
        if (!pending.empty()) {
            warn("pri_sweepd left {} point(s) unresolved; "
                 "running them in-process",
                 pending.size());
        }
    }
    if (pending.empty())
        return results;

    std::vector<sim::RunParams> local;
    local.reserve(pending.size());
    for (size_t i : pending)
        local.push_back(batch[i]);
    // The runner re-checks the journal (guaranteed misses here) and
    // records what it simulates, exactly as before.
    const auto fresh = makeRunner(jobs).run(local);
    for (size_t k = 0; k < pending.size(); ++k)
        results[pending[k]] = fresh[k];
    return results;
}

} // namespace detail

/**
 * Run every not-yet-cached point of the list (× kSeeds) through the
 * thread pool and memoize the seed averages. Results are identical
 * to on-demand serial evaluation; only wall-clock changes.
 */
inline void
prefetchPoints(const std::vector<Point> &points, const Options &opts)
{
    std::vector<Point> todo;
    std::vector<detail::PointKey> keys;
    std::vector<sim::RunParams> batch;
    for (const auto &pt : points) {
        auto key = detail::keyOf(pt, opts.budget);
        if (detail::resultCache().count(key))
            continue;
        if (std::find(keys.begin(), keys.end(), key) != keys.end())
            continue;
        todo.push_back(pt);
        keys.push_back(key);
        for (uint64_t seed : kSeeds)
            batch.push_back(
                detail::paramsFor(pt, opts.budget, seed));
    }
    if (batch.empty())
        return;

    const auto results = detail::runBatchResilient(batch, opts.jobs);

    constexpr size_t n_seeds = std::size(kSeeds);
    for (size_t i = 0; i < todo.size(); ++i) {
        std::vector<sim::RunResult> per_seed(
            results.begin() + i * n_seeds,
            results.begin() + (i + 1) * n_seeds);
        detail::cacheInsert(keys[i],
                            detail::averageResults(per_seed));
    }
}

/** Cross-product convenience wrapper over prefetchPoints(). */
inline void
prefetchGrid(const std::vector<std::string> &benches,
             const std::vector<unsigned> &widths,
             const std::vector<sim::Scheme> &schemes,
             const Options &opts,
             const std::vector<unsigned> &pregsList = {64},
             const std::vector<unsigned> &portsList = {0})
{
    std::vector<Point> pts;
    for (const auto &b : benches)
        for (unsigned w : widths)
            for (auto s : schemes)
                for (unsigned pr : pregsList)
                    for (unsigned rp : portsList)
                        pts.push_back(Point{b, w, s, pr, rp});
    prefetchPoints(pts, opts);
}

inline void writeJson(const Options &opts);

/**
 * Declarative form of the sweep-driver skeleton every figure
 * harness used to open-code: banner, full experiment grid, a
 * per-width table emitter, JSON output.
 */
struct SweepGrid
{
    /** Banner printed verbatim before anything runs. */
    const char *banner = "";
    std::vector<std::string> benches;
    std::vector<unsigned> widths;
    std::vector<sim::Scheme> schemes;
    std::vector<unsigned> pregsList = {64};
    /** PRF read-port budgets; {0} = the classic unlimited grid. */
    std::vector<unsigned> portsList = {0};
};

/**
 * The shared sweep-driver body: print the banner, prefetch the full
 * grid through the thread pool (batched when --batch allows), call
 * @p emit_width once per grid width — in declaration order, with
 * every point already cached so the printing code never simulates —
 * then write the JSON sink. Returns the harness exit status (0).
 */
template <class EmitWidth>
inline int
runSweepGrid(const SweepGrid &grid, const Options &opts,
             EmitWidth &&emit_width)
{
    std::printf("%s", grid.banner);
    prefetchGrid(grid.benches, grid.widths, grid.schemes, opts,
                 grid.pregsList, grid.portsList);
    for (unsigned w : grid.widths)
        emit_width(w);
    writeJson(opts);
    return 0;
}

/** Run one configuration, averaged over kSeeds (memoized). */
inline sim::RunResult
runOne(const std::string &bench, unsigned width, sim::Scheme scheme,
       const Budget &budget, unsigned pregs = 64, unsigned ports = 0)
{
    const Point pt{bench, width, scheme, pregs, ports};
    const auto key = detail::keyOf(pt, budget);
    if (auto it = detail::resultCache().find(key);
        it != detail::resultCache().end()) {
        return it->second;
    }
    std::vector<sim::RunParams> batch;
    batch.reserve(std::size(kSeeds));
    for (uint64_t seed : kSeeds)
        batch.push_back(detail::paramsFor(pt, budget, seed));
    // Through the shared executor rather than bare simulate():
    // cache misses in the printing code get the same journal
    // prefilter, daemon offload, and retry handling as prefetched
    // points.
    const auto per_seed = detail::runBatchResilient(batch, 1);
    return detail::cacheInsert(
        key, detail::averageResults(per_seed));
}

/**
 * Write every point evaluated so far to opts.jsonPath (no-op
 * without --json) as {"points": [...], "traceCache": {...}}. Each
 * point record carries the full grid coordinates plus the headline
 * metrics, so future PRs can diff figure data mechanically; the
 * traceCache section reports the run's front-end trace compilation
 * and sharing statistics (machine-dependent only in that the op
 * counters scale with how much this invocation simulated).
 */
inline void
writeJson(const Options &opts)
{
    if (opts.jsonPath.empty())
        return;
    std::FILE *f = std::fopen(opts.jsonPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n",
                     opts.jsonPath.c_str());
        return;
    }
    std::fprintf(f, "{\n\"points\": [\n");
    bool first = true;
    for (const auto &[key, r] : detail::jsonLog()) {
        const auto &[bench, width, scheme, pregs, warmup, measure,
                     ports] = key;
        std::fprintf(
            f,
            "%s  {\"benchmark\": \"%s\", \"scheme\": \"%s\", "
            "\"width\": %u, \"pregs\": %u, \"readPorts\": %u, "
            "\"warmup\": %llu, \"measure\": %llu, "
            "\"ipc\": %.6f, \"cycles\": %llu, \"insts\": %llu, "
            "\"avgIntOccupancy\": %.4f, \"avgFpOccupancy\": %.4f, "
            "\"lifeAllocToWrite\": %.4f, "
            "\"lifeWriteToLastRead\": %.4f, "
            "\"lifeLastReadToRelease\": %.4f, "
            "\"branchMispredictRate\": %.6f, "
            "\"dl1MissRate\": %.6f, \"priEarlyFrees\": %.4f, "
            "\"erEarlyFrees\": %.4f, \"inlinedFrac\": %.6f, "
            "\"portStallsPerKInst\": %.4f, "
            "\"portInlineBypassFrac\": %.6f}",
            first ? "" : ",\n", bench.c_str(),
            sim::schemeName(static_cast<sim::Scheme>(scheme)),
            width, pregs, ports,
            static_cast<unsigned long long>(warmup),
            static_cast<unsigned long long>(measure), r->ipc,
            static_cast<unsigned long long>(r->cycles),
            static_cast<unsigned long long>(r->insts),
            r->avgIntOccupancy, r->avgFpOccupancy,
            r->lifeAllocToWrite, r->lifeWriteToLastRead,
            r->lifeLastReadToRelease, r->branchMispredictRate,
            r->dl1MissRate, r->priEarlyFrees, r->erEarlyFrees,
            r->inlinedFrac, r->portStallsPerKInst,
            r->portInlineBypassFrac);
        first = false;
    }
    const auto tc = workload::trace::TraceCache::global().stats();
    std::fprintf(
        f,
        "\n],\n"
        "\"traceCache\": {\"programsCompiled\": %llu, "
        "\"programsShared\": %llu, \"blocksCompiled\": %llu, "
        "\"microOps\": %llu, \"traceBytes\": %llu, "
        "\"opsReplayed\": %llu, \"opsLegacyDecoded\": %llu, "
        "\"replayHitRate\": %.4f}\n"
        "}\n",
        static_cast<unsigned long long>(tc.programsCompiled),
        static_cast<unsigned long long>(tc.programsShared),
        static_cast<unsigned long long>(tc.blocksCompiled),
        static_cast<unsigned long long>(tc.microOps),
        static_cast<unsigned long long>(tc.traceBytes),
        static_cast<unsigned long long>(tc.opsReplayed),
        static_cast<unsigned long long>(tc.opsLegacyDecoded),
        tc.replayHitRate());
    std::fclose(f);
    std::printf("wrote %zu experiment points to %s\n",
                detail::jsonLog().size(), opts.jsonPath.c_str());
}

/** Geometric mean of a vector of ratios. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

/** Names of the SPECint-like workloads, in paper order. */
inline std::vector<std::string>
intBenchmarks()
{
    std::vector<std::string> v;
    for (const auto &p : workload::specIntProfiles())
        v.push_back(p.name);
    return v;
}

/** Names of the SPECfp-like workloads, in paper order. */
inline std::vector<std::string>
fpBenchmarks()
{
    std::vector<std::string> v;
    for (const auto &p : workload::specFpProfiles())
        v.push_back(p.name);
    return v;
}

} // namespace pri::bench

#endif // PRI_BENCH_BENCH_UTIL_HH
