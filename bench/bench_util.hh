/**
 * @file
 * Shared helpers for the experiment harnesses in bench/: common
 * instruction budgets, table formatting, and geometric means.
 *
 * Each bench binary regenerates one table or figure of the paper.
 * Instruction budgets are chosen so every binary finishes in tens of
 * seconds; pass --quick to shrink them further, --full to enlarge.
 */

#ifndef PRI_BENCH_BENCH_UTIL_HH
#define PRI_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "workload/profile.hh"

namespace pri::bench
{

/** Instruction budgets for one experiment run. */
struct Budget
{
    uint64_t warmup = 20000;
    uint64_t measure = 80000;
};

/** Parse --quick / --full from argv. */
inline Budget
parseBudget(int argc, char **argv)
{
    Budget b;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            b.warmup = 5000;
            b.measure = 20000;
        } else if (std::strcmp(argv[i], "--full") == 0) {
            b.warmup = 50000;
            b.measure = 250000;
        }
    }
    return b;
}

/** Program seeds every experiment point is averaged over. The same
 *  seeds are used for every scheme, so scheme-vs-scheme comparisons
 *  are paired and generator variance cancels. */
constexpr uint64_t kSeeds[] = {11, 22, 33};

/** Run one configuration, averaged over kSeeds. */
inline sim::RunResult
runOne(const std::string &bench, unsigned width, sim::Scheme scheme,
       const Budget &budget, unsigned pregs = 64)
{
    sim::RunParams p;
    p.benchmark = bench;
    p.width = width;
    p.scheme = scheme;
    p.physRegs = pregs;
    p.warmupInsts = budget.warmup;
    p.measureInsts = budget.measure;

    sim::RunResult acc;
    unsigned n = 0;
    for (uint64_t seed : kSeeds) {
        p.seed = seed;
        const auto r = sim::simulate(p);
        if (n == 0) {
            acc = r;
        } else {
            acc.ipc += r.ipc;
            acc.cycles += r.cycles;
            acc.insts += r.insts;
            acc.avgIntOccupancy += r.avgIntOccupancy;
            acc.avgFpOccupancy += r.avgFpOccupancy;
            acc.lifeAllocToWrite += r.lifeAllocToWrite;
            acc.lifeWriteToLastRead += r.lifeWriteToLastRead;
            acc.lifeLastReadToRelease += r.lifeLastReadToRelease;
            acc.branchMispredictRate += r.branchMispredictRate;
            acc.dl1MissRate += r.dl1MissRate;
            acc.priEarlyFrees += r.priEarlyFrees;
            acc.erEarlyFrees += r.erEarlyFrees;
            acc.inlinedFrac += r.inlinedFrac;
        }
        ++n;
    }
    const double inv = 1.0 / n;
    acc.ipc *= inv;
    acc.avgIntOccupancy *= inv;
    acc.avgFpOccupancy *= inv;
    acc.lifeAllocToWrite *= inv;
    acc.lifeWriteToLastRead *= inv;
    acc.lifeLastReadToRelease *= inv;
    acc.branchMispredictRate *= inv;
    acc.dl1MissRate *= inv;
    acc.priEarlyFrees *= inv;
    acc.erEarlyFrees *= inv;
    acc.inlinedFrac *= inv;
    return acc;
}

/** Geometric mean of a vector of ratios. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

/** Names of the SPECint-like workloads, in paper order. */
inline std::vector<std::string>
intBenchmarks()
{
    std::vector<std::string> v;
    for (const auto &p : workload::specIntProfiles())
        v.push_back(p.name);
    return v;
}

/** Names of the SPECfp-like workloads, in paper order. */
inline std::vector<std::string>
fpBenchmarks()
{
    std::vector<std::string> v;
    for (const auto &p : workload::specFpProfiles())
        v.push_back(p.name);
    return v;
}

} // namespace pri::bench

#endif // PRI_BENCH_BENCH_UTIL_HH
