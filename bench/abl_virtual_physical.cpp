/**
 * @file
 * Ablation (paper §6 future work): interaction of PRI with delayed
 * register allocation (virtual-physical registers, after [7]/[17]).
 * Under VP, renaming never stalls for a register; physical storage
 * is claimed at writeback. PRI composes naturally: an inlined value
 * never claims storage at all. Sweep the storage budget and compare
 * Base, PRI, VP, VP+PRI, and InfPR.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pri;
    const auto opts = bench::parseOptions(argc, argv);
    const auto &budget = opts.budget;
    const unsigned sizes[] = {40, 48, 56, 64, 80};
    const sim::Scheme panel[] = {
        sim::Scheme::Base,
        sim::Scheme::PriRefcountCkptcount,
        sim::Scheme::VirtualPhysical,
        sim::Scheme::VirtualPhysicalPlusPri,
    };
    const std::string benches[] = {"gzip", "crafty", "gcc",
                                   "equake"};

    std::printf("=== Ablation: virtual-physical registers x PRI "
                "(4-wide) ===\n\n");

    std::vector<bench::Point> pts;
    for (const auto &b : benches) {
        pts.push_back(
            bench::Point{b, 4, sim::Scheme::InfinitePregs, 64});
        for (unsigned pr : sizes)
            for (auto s : panel)
                pts.push_back(bench::Point{b, 4, s, pr});
    }
    bench::prefetchPoints(pts, opts);

    for (const auto &b : benches) {
        const auto inf = bench::runOne(
            b, 4, sim::Scheme::InfinitePregs, budget);
        std::printf("%s  (InfPR IPC %.3f)\n", b.c_str(), inf.ipc);
        std::printf("%6s %10s %10s %10s %10s\n", "PR", "Base",
                    "PRI", "VP", "VP+PRI");
        for (unsigned pr : sizes) {
            std::printf("%6u", pr);
            for (auto s : panel) {
                const auto r = bench::runOne(b, 4, s, budget, pr);
                std::printf(" %10.3f", r.ipc);
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("expected shape: VP removes rename stalls and nears "
                "InfPR when storage suffices; at small budgets "
                "VP alone hits the storage wall at writeback and "
                "VP+PRI recovers (inlined values never claim "
                "storage)\n");
    bench::writeJson(opts);
    return 0;
}
