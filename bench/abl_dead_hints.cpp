/**
 * @file
 * Ablation (paper §6 future work): software dead-value hints. The
 * paper observes that PRI enables a binary-compatible way for the
 * compiler to communicate register deadness: insert a
 * load-immediate of a narrow value into a dead register, and the
 * hardware frees the corresponding physical register by inlining
 * the value into the map.
 *
 * Sweep the hint density on wide-value benchmarks (where plain PRI
 * has little to inline) and show that hints recover register-file
 * headroom — but only when PRI is present to exploit them.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/core.hh"
#include "workload/program.hh"

namespace
{

double
runHints(const std::string &bench, double hint_frac, bool pri_on,
         const pri::bench::Budget &budget)
{
    using namespace pri;
    double ipc_sum = 0.0;
    for (uint64_t seed : bench::kSeeds) {
        // Profile copy must outlive the program (held by reference).
        workload::BenchmarkProfile prof =
            workload::profileByName(bench);
        prof.deadHintFrac = hint_frac;
        workload::SyntheticProgram prog(prof, seed);
        const auto rc = pri_on
            ? rename::RenameConfig::priRefcountCkptcount(64, 7)
            : rename::RenameConfig::base(64, 7);
        StatGroup stats;
        core::OutOfOrderCore cpu(core::CoreConfig::fourWide(rc),
                                 prog, stats);
        cpu.run(budget.warmup);
        cpu.beginMeasurement();
        cpu.run(budget.measure);
        ipc_sum += cpu.ipc();
    }
    return ipc_sum / std::size(pri::bench::kSeeds);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace pri;
    const auto opts = bench::parseOptions(argc, argv);
    const auto &budget = opts.budget;
    const double densities[] = {0.0, 0.25, 0.5, 1.0};
    const std::string benches[] = {"crafty", "eon", "vortex"};

    std::printf("=== Ablation: software dead-value hints x PRI "
                "(4-wide, 64 PR) ===\n");
    std::printf("(hint density = probability a basic block ends "
                "with a dead-register zeroing)\n\n");

    // Flatten (bench x density x {off,on}) into runner jobs; the
    // tables print in order afterwards.
    const size_t n_cells =
        std::size(benches) * std::size(densities);
    std::vector<double> off_ipc(n_cells), on_ipc(n_cells);
    sim::SimulationRunner(opts.jobs).forEach(
        n_cells * 2, [&](size_t i) {
            const size_t cell = i / 2;
            const auto &b = benches[cell / std::size(densities)];
            const double d = densities[cell % std::size(densities)];
            if (i % 2 == 0)
                off_ipc[cell] = runHints(b, d, false, budget);
            else
                on_ipc[cell] = runHints(b, d, true, budget);
        });

    for (size_t bi = 0; bi < std::size(benches); ++bi) {
        std::printf("%s\n%10s %12s %12s %14s\n",
                    benches[bi].c_str(), "density", "IPC(noPRI)",
                    "IPC(PRI)", "PRI speedup");
        for (size_t di = 0; di < std::size(densities); ++di) {
            const size_t cell = bi * std::size(densities) + di;
            const double off = off_ipc[cell];
            const double on = on_ipc[cell];
            std::printf("%10.2f %12.3f %12.3f %13.1f%%\n",
                        densities[di], off, on,
                        100.0 * (on / off - 1.0));
        }
        std::printf("\n");
    }
    std::printf("expected shape: without PRI the hints are pure "
                "overhead; with PRI, higher densities free dead "
                "registers earlier and the speedup grows on "
                "wide-value codes\n");
    return 0;
}
